// Trace replay: record the L1 access stream of one full simulation, then
// answer "what would policy X have done?" by replaying the trace through
// the compressed cache alone — orders of magnitude faster than
// re-simulating.
//
//	go run ./examples/trace_replay
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"lattecc"
)

func main() {
	cfg := lattecc.DefaultConfig()
	cfg.NumSMs = 4 // keep the recording quick for the example

	// 1. Record: one execution-driven run of BO with tracing on.
	var buf bytes.Buffer
	tw, err := lattecc.NewTraceWriter(&buf, "BO")
	if err != nil {
		log.Fatal(err)
	}
	cfg.Trace = tw
	start := time.Now()
	w, err := lattecc.WorkloadByName("BO")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := lattecc.RunWorkload(cfg, w, lattecc.Uncompressed); err != nil {
		log.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d accesses (%d KB) in %v\n\n",
		tw.Count(), buf.Len()/1024, time.Since(start).Round(time.Millisecond))

	// 2. Replay: the same access stream under each static policy, reading
	// records one by one (cachesim's -compare does this wholesale).
	fmt.Println("first five records:")
	r, err := lattecc.NewTraceReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rec, err := r.Next()
		if err != nil {
			break
		}
		kind := "load"
		if rec.Write {
			kind = "store"
		}
		fmt.Printf("  sm=%d cycle=%-6d addr=%#x %s\n", rec.SM, rec.Cycle, rec.Addr, kind)
	}
	fmt.Println("\nreplay policies with: go run ./cmd/cachesim -replay <trace> -compare")
}
