// Compression explorer: run the five cache-line codecs standalone over
// data with different value-locality characteristics and see which
// algorithm wins where — the Figure 2 phenomenon in miniature.
//
//	go run ./examples/compression_explorer
package main

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"lattecc"
)

// lineOf fills a 128-byte cache line via gen.
func lineOf(gen func(i int) uint32) []byte {
	b := make([]byte, lattecc.LineSize)
	for i := 0; i < lattecc.LineSize/4; i++ {
		binary.LittleEndian.PutUint32(b[i*4:], gen(i))
	}
	return b
}

func main() {
	rng := rand.New(rand.NewSource(42))

	// Three corpora with distinct value locality.
	corpora := []struct {
		name  string
		lines [][]byte
	}{
		{"array indices (spatial locality)", mkLines(200, func(l, i int) uint32 {
			return uint32(l*1024 + i*4) // smooth within-line deltas: BDI's case
		})},
		{"FP constants (temporal locality)", mkLines(200, func(l, i int) uint32 {
			dict := [8]uint32{0x3F800000, 0x40490FDB, 0x402DF854, 0xBF000000,
				0x3E99999A, 0x41200000, 0x00000000, 0x42C80000}
			return dict[(l*31+i*7)%8] // few distinct values: SC's case
		})},
		{"random (incompressible)", mkLines(200, func(l, i int) uint32 {
			return rng.Uint32()
		})},
	}

	for _, corpus := range corpora {
		// SC needs its value-frequency table trained first, exactly like
		// the hardware VFT snooping the fill path.
		sc := lattecc.NewSC()
		for _, l := range corpus.lines {
			sc.Train(l)
		}
		sc.Rebuild()

		codecs := []lattecc.Codec{
			lattecc.NewBDI(), lattecc.NewFPC(), lattecc.NewCPACK(),
			lattecc.NewBPC(), sc,
		}

		fmt.Printf("%s:\n", corpus.name)
		for _, c := range codecs {
			var in, out int
			for _, l := range corpus.lines {
				enc := c.Compress(l)
				in += lattecc.LineSize
				out += enc.Size

				// Every codec round-trips exactly.
				dec, err := c.Decompress(enc)
				if err != nil {
					panic(err)
				}
				if string(dec) != string(l) {
					panic("round-trip mismatch")
				}
			}
			fmt.Printf("  %-8s ratio %.2fx  (decompression %2d cycles)\n",
				c.Name(), float64(in)/float64(out), c.DecompLatency())
		}
		fmt.Println()
	}
}

func mkLines(n int, gen func(line, word int) uint32) [][]byte {
	out := make([][]byte, n)
	for l := 0; l < n; l++ {
		l := l
		out[l] = lineOf(func(i int) uint32 { return gen(l, i) })
	}
	return out
}
