// Quickstart: simulate one GPGPU benchmark under the baseline cache and
// under LATTE-CC adaptive compression, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lattecc"
)

func main() {
	cfg := lattecc.DefaultConfig() // the paper's Table II GPU

	// SS (Similarity Score) is the paper's illustrating application: its
	// dictionary-valued float data compresses 3x+ under SC, and its
	// latency tolerance swings over time, so the best compression mode
	// changes within the kernel.
	base, err := lattecc.Run(cfg, "SS", lattecc.Uncompressed)
	if err != nil {
		log.Fatal(err)
	}
	latte, err := lattecc.Run(cfg, "SS", lattecc.LatteCC)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SS on the Table II GPU:")
	fmt.Printf("  baseline:  %8d cycles, IPC %5.2f, L1 hit rate %.1f%%\n",
		base.Cycles, base.IPC(), 100*base.Cache.HitRate())
	fmt.Printf("  LATTE-CC:  %8d cycles, IPC %5.2f, L1 hit rate %.1f%%\n",
		latte.Cycles, latte.IPC(), 100*latte.Cache.HitRate())
	fmt.Printf("  speedup:   %.1f%%\n", 100*(float64(base.Cycles)/float64(latte.Cycles)-1))
	fmt.Printf("  L1 misses: %d -> %d (%.1f%% reduction)\n",
		base.Cache.Misses, latte.Cache.Misses,
		100*(1-float64(latte.Cache.Misses)/float64(base.Cache.Misses)))

	// Energy, via the GPUWattch-style event model.
	params := lattecc.DefaultEnergyParams()
	eb := lattecc.EvaluateEnergy(base, params)
	el := lattecc.EvaluateEnergy(latte, params)
	fmt.Printf("  energy:    %.1f%% of baseline\n", 100*el.Total()/eb.Total())

	// How the controller spent its experimental phases.
	fmt.Printf("  adaptive EPs: none=%d low-latency=%d high-capacity=%d (switches=%d)\n",
		latte.ModeEPs[0], latte.ModeEPs[1], latte.ModeEPs[2], latte.Switches)
}
