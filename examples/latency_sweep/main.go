// Latency sweep: recreate Figure 1's motivation on a custom workload —
// how much added L1 hit latency can a kernel tolerate, as a function of
// its warp-level parallelism?
//
//	go run ./examples/latency_sweep
package main

import (
	"fmt"
	"log"

	"lattecc"
)

// kernel builds a hit-dominated workload with the given warp count; more
// resident warps give the scheduler more material to hide latency with.
func kernel(warpsPerBlock int) *lattecc.WorkloadSpec {
	return &lattecc.WorkloadSpec{
		WName: fmt.Sprintf("sweep-%dw", warpsPerBlock),
		Regions: []lattecc.Region{
			{Start: 0, Lines: 1 << 14, Style: lattecc.StyleSmallInt, Seed: 7},
		},
		KernelSeq: []lattecc.KernelSpec{{
			Name: "k", Blocks: 15, WarpsPerBlock: warpsPerBlock,
			Phases: []lattecc.PhaseSpec{
				{Kind: lattecc.PhaseReuse, Region: 0, Iters: 3000, ALU: 6, WSLines: 18},
			},
		}},
	}
}

func main() {
	latencies := []uint64{0, 2, 5, 9, 14} // BDI is +2, SC is +14
	fmt.Printf("%-10s", "warps")
	for _, l := range latencies {
		fmt.Printf("  +%-5d", l)
	}
	fmt.Println("\n" + "(normalized IPC vs zero added latency)")

	for _, warps := range []int{2, 8, 24} {
		cfg := lattecc.DefaultConfig()
		w := kernel(warps)

		var baseIPC float64
		fmt.Printf("%-10d", warps)
		for _, lat := range latencies {
			cfg.Cache.ExtraHitLatency = lat
			res, err := lattecc.RunWorkload(cfg, w, lattecc.Uncompressed)
			if err != nil {
				log.Fatal(err)
			}
			if lat == 0 {
				baseIPC = res.IPC()
			}
			fmt.Printf("  %.3f ", res.IPC()/baseIPC)
		}
		fmt.Println()
	}
	fmt.Println("\nFew warps: every extra cycle shows. Many warps: the scheduler")
	fmt.Println("hides most of it — the latency tolerance LATTE-CC exploits.")
}
