// Adaptive demo: build a workload whose best compression mode changes
// over time and watch LATTE-CC beat both static policies and the
// kernel-granularity oracle — the paper's Section V-C phenomenon.
//
//	go run ./examples/adaptive_demo
package main

import (
	"fmt"
	"log"

	"lattecc"
)

// phaseChanger alternates, inside one kernel, between arithmetic-dense
// phases (high latency tolerance: the high-capacity codec's latency is
// free, its 3x ratio pure win) and load-dominated phases (no tolerance:
// every decompression cycle is exposed).
func phaseChanger() *lattecc.WorkloadSpec {
	var phases []lattecc.PhaseSpec
	for round := 0; round < 3; round++ {
		phases = append(phases,
			lattecc.PhaseSpec{ // tolerant: 6 ALU ops cover each load
				Kind: lattecc.PhaseReuse, Region: 0,
				Iters: 450, ALU: 6, WSLines: 20,
			},
			lattecc.PhaseSpec{ // intolerant: back-to-back dependent loads
				Kind: lattecc.PhaseReuse, Region: 0,
				Iters: 1000, ALU: 0, WSLines: 6,
			},
		)
	}
	return &lattecc.WorkloadSpec{
		WName: "phase-changer",
		Regions: []lattecc.Region{
			// Dictionary-valued floats: SC compresses ~3x, BDI gets nothing.
			{Start: 0, Lines: 1 << 15, Style: lattecc.StyleDictFloat, Seed: 99, Dict: 128},
		},
		KernelSeq: []lattecc.KernelSpec{{
			Name: "phased", Blocks: 60, WarpsPerBlock: 8, Phases: phases,
		}},
	}
}

func main() {
	cfg := lattecc.DefaultConfig()
	w := phaseChanger()

	policies := []lattecc.Policy{
		lattecc.Uncompressed, lattecc.StaticBDI, lattecc.StaticSC,
		lattecc.KernelOpt, lattecc.LatteCC,
	}

	var baseCycles uint64
	fmt.Println("one kernel, alternating tolerant and intolerant phases:")
	for _, p := range policies {
		res, err := lattecc.RunWorkload(cfg, w, p)
		if err != nil {
			log.Fatal(err)
		}
		if p == lattecc.Uncompressed {
			baseCycles = res.Cycles
		}
		extra := ""
		if n := res.ModeEPs[0] + res.ModeEPs[1] + res.ModeEPs[2]; n > 0 {
			extra = fmt.Sprintf("  (EPs: none=%d lowlat=%d highcap=%d, %d switches)",
				res.ModeEPs[0], res.ModeEPs[1], res.ModeEPs[2], res.Switches)
		}
		fmt.Printf("  %-18s %8d cycles  speedup %.3f%s\n",
			p, res.Cycles, float64(baseCycles)/float64(res.Cycles), extra)
	}

	fmt.Println("\nKernel-OPT must commit to one mode for the whole kernel;")
	fmt.Println("LATTE-CC re-decides every 256 accesses and captures both phases.")
}
