//go:build race

package harness

// raceEnabled reports whether the race detector is compiled in. Heavy
// tests shrink their instruction budgets under -race (see raceScaled):
// the detector multiplies simulation cost several-fold, and on a small
// machine the unscaled suite blows the per-package test timeout.
const raceEnabled = true
