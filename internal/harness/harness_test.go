package harness

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"lattecc/internal/modes"
	"lattecc/internal/sim"
	"lattecc/internal/workload"
)

// quickConfig shrinks the GPU so harness tests stay fast.
func quickConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.NumSMs = 2
	return cfg
}

// raceScaled shrinks a test's instruction budget when the race detector
// is compiled in. These tests check plumbing and determinism, not
// simulation fidelity, so a quarter-size run keeps the package inside
// the per-package test timeout on small machines.
func raceScaled(n uint64) uint64 {
	if raceEnabled {
		return n / 4
	}
	return n
}

func TestSuiteCachesRuns(t *testing.T) {
	s := NewSuite(quickConfig())
	r1, err := s.Run("BO", Uncompressed, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.results) != 1 {
		t.Fatalf("cache holds %d entries, want 1", len(s.results))
	}
	r2, _ := s.Run("BO", Uncompressed, Variant{})
	if len(s.results) != 1 {
		t.Fatal("second identical run must hit the cache")
	}
	if r1.Cycles != r2.Cycles {
		t.Fatal("cached result differs")
	}
	// A different variant is a different run.
	s.MustRun("BO", Uncompressed, Variant{ExtraHitLatency: 5})
	if len(s.results) != 2 {
		t.Fatal("variant must be part of the cache key")
	}
}

func TestUnknownWorkloadAndPolicy(t *testing.T) {
	s := NewSuite(quickConfig())
	if _, err := s.Run("NOPE", Uncompressed, Variant{}); err == nil {
		t.Fatal("unknown workload must error")
	}
	if _, err := s.Run("BO", Policy("bogus"), Variant{}); err == nil {
		t.Fatal("unknown policy must error")
	}
}

func TestSpeedupBaselineIsOne(t *testing.T) {
	s := NewSuite(quickConfig())
	spd, err := s.Speedup("BO", Uncompressed, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if spd != 1 {
		t.Fatalf("baseline self-speedup = %v", spd)
	}
}

func TestMissReductionSign(t *testing.T) {
	// FW's occupancy is tuned for the full 15-SM machine; the quick
	// config would overload each SM and change the story.
	s := NewSuite(sim.DefaultConfig())
	// FW is the BDI showcase: Static-BDI must cut misses substantially.
	mr, err := s.MissReduction("FW", StaticBDI)
	if err != nil {
		t.Fatal(err)
	}
	if mr < 0.2 {
		t.Fatalf("FW BDI miss reduction = %v, want >= 0.2", mr)
	}
}

func TestKernelOptPicksBestStaticPerKernel(t *testing.T) {
	s := NewSuite(sim.DefaultConfig())
	sched, err := s.kernelOptSchedule("FW", Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 1 {
		t.Fatalf("FW has 1 kernel, schedule %v", sched)
	}
	// FW's stride data is BDI territory; the oracle must pick LowLat.
	if sched[0] != modes.LowLat {
		t.Fatalf("FW oracle mode = %v, want low-latency", sched[0])
	}
	// The Kernel-OPT run must then perform like Static-BDI.
	ko := s.MustRun("FW", KernelOpt, Variant{})
	bdi := s.MustRun("FW", StaticBDI, Variant{})
	diff := float64(ko.Cycles) - float64(bdi.Cycles)
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(bdi.Cycles) > 0.02 {
		t.Fatalf("Kernel-OPT (%d cycles) should match Static-BDI (%d)", ko.Cycles, bdi.Cycles)
	}
}

func TestRunWorkloadCustom(t *testing.T) {
	w := &workload.Spec{
		WName: "custom", Cat: 0,
		Regions: []workload.Region{{Start: 0, Lines: 512, Style: workload.StyleStrideInt, Seed: 1}},
		KernelSeq: []workload.KernelSpec{{
			Name: "k", Blocks: 4, WarpsPerBlock: 4,
			Phases: []workload.Phase{{Kind: workload.PhaseReuse, Region: 0, Iters: 200, ALU: 1, WSLines: 8}},
		}},
	}
	res, err := RunWorkload(quickConfig(), w, LatteCC)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != string(LatteCC) || res.Instructions == 0 {
		t.Fatalf("bad custom run: %+v", res)
	}
	// Kernel-OPT path over a custom workload.
	ko, err := RunWorkload(quickConfig(), w, KernelOpt)
	if err != nil {
		t.Fatal(err)
	}
	if ko.Cycles == 0 {
		t.Fatal("empty Kernel-OPT run")
	}
}

func TestExperimentRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, want := range []string{"tab1", "fig1", "fig2", "fig11", "fig13", "fig15", "fig17", "fig18", "sens48k"} {
		if !seen[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
	if _, ok := ExperimentByID("fig11"); !ok {
		t.Fatal("ExperimentByID must find fig11")
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Fatal("ExperimentByID must reject unknown ids")
	}
}

func TestOfflineExperimentsRender(t *testing.T) {
	// tab1/tab2/tab3/fig2 need no (or almost no) simulation; they must
	// render non-empty tables with a row per workload / codec.
	s := NewSuite(quickConfig())
	out, err := Tab1(s)
	if err != nil {
		t.Fatalf("tab1: %v", err)
	}
	for _, name := range []string{"BDI", "FPC", "CPACK-Z", "BPC", "SC"} {
		if !strings.Contains(out, name) {
			t.Fatalf("tab1 missing %s:\n%s", name, out)
		}
	}
	out, err = Fig2(s)
	if err != nil {
		t.Fatalf("fig2: %v", err)
	}
	for _, w := range Workloads() {
		if !strings.Contains(out, w) {
			t.Fatalf("fig2 missing %s", w)
		}
	}
	if out, err = Tab2(s); err != nil || !strings.Contains(out, "GTO") {
		t.Fatalf("tab2 must state the scheduler (err %v)", err)
	}
	if out, err = Tab3(s); err != nil || !strings.Contains(out, "C-Sens") {
		t.Fatalf("tab3 must show categories (err %v)", err)
	}
}

func TestFig2ShowsAffinityContrast(t *testing.T) {
	// The Figure 2 data must separate the suites' affinities: SS (dict
	// floats) compresses far better under SC than BDI; FW (stride ints)
	// the other way.
	lines := map[string][]string{}
	fig2, err := Fig2(NewSuite(quickConfig()))
	if err != nil {
		t.Fatalf("fig2: %v", err)
	}
	for _, l := range strings.Split(fig2, "\n") {
		f := strings.Fields(l)
		if len(f) >= 6 {
			lines[f[0]] = f
		}
	}
	parse := func(w string, col int) float64 {
		v, err := strconv.ParseFloat(lines[w][col], 64)
		if err != nil {
			return 0
		}
		return v
	}
	ssBDI, ssSC := parse("SS", 1), parse("SS", 5)
	fwBDI, fwSC := parse("FW", 1), parse("FW", 5)
	if ssSC < 1.5*ssBDI {
		t.Fatalf("SS must favour SC: BDI %.2f SC %.2f", ssBDI, ssSC)
	}
	if fwBDI < 1.2*fwSC {
		t.Fatalf("FW must favour BDI: BDI %.2f SC %.2f", fwBDI, fwSC)
	}
}

func TestWorkloadNameHelpers(t *testing.T) {
	all := Workloads()
	if len(all) != len(CSensNames())+len(CInSensNames()) {
		t.Fatal("category split must partition the suite")
	}
	if _, err := Category("SS"); err != nil {
		t.Fatal(err)
	}
	if _, err := Category("NOPE"); err == nil {
		t.Fatal("unknown workload category must error")
	}
}

func TestCacheSensitivityCriterion(t *testing.T) {
	// Table III's classification rule: a workload is C-Sens iff a 4x L1
	// gives >20% speedup. Validate a representative sample of each class
	// on the full Table II machine (the criterion is defined there).
	if testing.Short() {
		t.Skip("full-machine classification check")
	}
	if raceEnabled {
		t.Skip("pure fidelity check, no concurrency; minutes of race overhead for nothing")
	}
	cfg := sim.DefaultConfig()
	cfg4 := cfg
	cfg4.Cache.SizeBytes *= 4
	s, s4 := NewSuite(cfg), NewSuite(cfg4)
	check := func(name string, wantSens bool) {
		base := s.MustRun(name, Uncompressed, Variant{})
		big := s4.MustRun(name, Uncompressed, Variant{})
		spd := float64(base.Cycles) / float64(big.Cycles)
		if wantSens && spd <= 1.2 {
			t.Errorf("%s classified C-Sens but 4x-cache speedup is %.3f", name, spd)
		}
		if !wantSens && spd > 1.2 {
			t.Errorf("%s classified C-InSens but 4x-cache speedup is %.3f", name, spd)
		}
	}
	for _, n := range []string{"SS", "FW", "BC", "PRK"} {
		check(n, true)
	}
	for _, n := range []string{"BO", "NW", "BFS", "HW"} {
		check(n, false)
	}
}

func TestHeadlineOrderingRegression(t *testing.T) {
	// The paper's central result, pinned as a regression test: over a
	// representative C-Sens subset, LATTE-CC's geomean speedup beats both
	// static schemes, and Static-SC trails Static-BDI (Figure 11). The
	// subset pairs SC-affine (SS, KM, MM) with BDI-affine (FW, CLR)
	// workloads so neither static can win on class affinity alone.
	if testing.Short() {
		t.Skip("full-machine regression check")
	}
	if raceEnabled {
		t.Skip("pure fidelity check, no concurrency; minutes of race overhead for nothing")
	}
	s := NewSuite(sim.DefaultConfig())
	subset := []string{"SS", "KM", "MM", "FW", "CLR"}
	geomean := func(p Policy) float64 {
		prod := 1.0
		for _, name := range subset {
			spd, err := s.Speedup(name, p, Variant{})
			if err != nil {
				t.Fatal(err)
			}
			prod *= spd
		}
		return math.Pow(prod, 1/float64(len(subset)))
	}
	bdi := geomean(StaticBDI)
	sc := geomean(StaticSC)
	latte := geomean(LatteCC)
	t.Logf("geomeans: Static-BDI %.3f, Static-SC %.3f, LATTE-CC %.3f", bdi, sc, latte)
	if latte <= bdi || latte <= sc {
		t.Fatalf("LATTE-CC (%.3f) must beat Static-BDI (%.3f) and Static-SC (%.3f)", latte, bdi, sc)
	}
	if latte < 1.1 {
		t.Fatalf("LATTE-CC geomean %.3f below the +10%% floor", latte)
	}
}

func TestSimBackedExperimentsSmoke(t *testing.T) {
	// Render the cheaper sim-backed experiments end-to-end on a tiny
	// machine: they must produce non-empty output without panicking.
	// (fig11/fig13/etc. run the full matrix and are exercised by the CLI
	// and benches instead.)
	if testing.Short() {
		t.Skip("multi-simulation smoke test")
	}
	cfg := quickConfig()
	cfg.MaxInstructions = raceScaled(400_000) // keep each run tiny
	s := NewSuite(cfg)
	for _, id := range []string{"fig5", "fig16"} {
		e, ok := ExperimentByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		out, err := e.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out) < 40 {
			t.Fatalf("%s output suspiciously short: %q", id, out)
		}
	}
}

func TestEveryExperimentRendersOnTinyMachine(t *testing.T) {
	// Run every registered experiment end-to-end on a 2-SM machine with a
	// hard instruction cap: each must produce plausible output without
	// panicking. Numbers are meaningless at this scale — the full-machine
	// results live in experiments_output.txt — but every code path runs.
	if testing.Short() {
		t.Skip("runs every experiment (minutes)")
	}
	cfg := quickConfig()
	cfg.MaxInstructions = raceScaled(120_000)
	s := NewSuite(cfg)
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(s)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(out) < 40 {
				t.Fatalf("%s output suspiciously short: %q", e.ID, out)
			}
			if e.Table != nil {
				tab, err := e.Table(s)
				if err != nil {
					t.Fatalf("%s table: %v", e.ID, err)
				}
				if len(tab.Rows()) == 0 {
					t.Fatalf("%s table has no rows", e.ID)
				}
				if csv := tab.CSV(); !strings.Contains(csv, ",") {
					t.Fatalf("%s CSV malformed: %q", e.ID, csv)
				}
			}
		})
	}
}
