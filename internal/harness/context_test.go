package harness

import (
	"context"
	"errors"
	"testing"
)

// reporterFunc adapts a function to the Reporter interface for tests.
type reporterFunc func(RunEvent)

func (f reporterFunc) RunDone(e RunEvent) { f(e) }

// TestRunAllContextPreCancelled: a context that is already dead must
// dispatch nothing, surface the cancellation, and hand the queued
// requests back so a later drain still serves them.
func TestRunAllContextPreCancelled(t *testing.T) {
	cfg := quickConfig()
	cfg.MaxInstructions = raceScaled(50_000)

	s := NewSuite(cfg)
	s.Jobs = 2
	reqs := []RunRequest{
		{Workload: "BO", Policy: Uncompressed},
		{Workload: "SS", Policy: Uncompressed},
		{Workload: "FW", Policy: Uncompressed},
	}
	s.Prefetch(reqs...)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.RunAllContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := s.Simulations(); got != 0 {
		t.Fatalf("cancelled pool simulated %d runs, want 0", got)
	}

	// The requests were requeued, not lost: a healthy drain completes.
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := s.Simulations(); got != uint64(len(reqs)) {
		t.Fatalf("post-cancel drain simulated %d runs, want %d", got, len(reqs))
	}
}

// TestRunAllContextCancelMidDrain cancels from the Reporter after the
// first completed run. With one worker the pool must stop at exactly
// one simulation instead of draining the whole prefetch set, and the
// other requests must survive for a later drain.
func TestRunAllContextCancelMidDrain(t *testing.T) {
	cfg := quickConfig()
	cfg.MaxInstructions = raceScaled(50_000)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	s := NewSuite(cfg)
	s.Jobs = 1
	s.Reporter = reporterFunc(func(RunEvent) { cancel() })
	reqs := []RunRequest{
		{Workload: "BO", Policy: Uncompressed},
		{Workload: "SS", Policy: Uncompressed},
		{Workload: "FW", Policy: Uncompressed},
		{Workload: "NW", Policy: Uncompressed},
	}
	s.Prefetch(reqs...)

	err := s.RunAllContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := s.Simulations(); got != 1 {
		t.Fatalf("single worker past cancellation simulated %d runs, want 1", got)
	}

	s.Reporter = nil
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := s.Simulations(); got != uint64(len(reqs)) {
		t.Fatalf("post-cancel drain simulated %d runs, want %d", got, len(reqs))
	}
}

// TestCacheHitCounter pins the Run-level hit/fresh split the serving
// layer exposes: every Run call lands in exactly one of Simulations or
// CacheHits.
func TestCacheHitCounter(t *testing.T) {
	cfg := quickConfig()
	cfg.MaxInstructions = raceScaled(50_000)

	s := NewSuite(cfg)
	if _, err := s.Run("BO", Uncompressed, Variant{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("BO", Uncompressed, Variant{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("BO", Uncompressed, Variant{}); err != nil {
		t.Fatal(err)
	}
	if sims, hits := s.Simulations(), s.CacheHits(); sims != 1 || hits != 2 {
		t.Fatalf("sims=%d hits=%d, want 1 and 2", sims, hits)
	}
}
