package harness

import (
	"runtime"
	"testing"
)

// TestSMJobsParityAllPolicies pins the epoch engine's determinism
// contract at the harness level: for EVERY policy the harness can run
// (including KernelOpt, whose schedule derivation itself runs
// simulations), the StateHash must be identical across SMJobs values of
// 1, 2, and NumSMs. The sim-level TestSMJobsParity covers structural
// corner cases; this one covers the full controller/codec matrix on real
// workloads. CI runs the package under -race, which makes this the
// harness-level data-race gate for the worker pool too.
func TestSMJobsParityAllPolicies(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	if prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}

	workloads := []string{"SS", "FW"}
	base := quickConfig()
	base.NumSMs = 4
	base.MaxInstructions = raceScaled(40_000)

	type key struct {
		w string
		p Policy
	}
	hashes := map[int]map[key]uint64{}
	for _, jobs := range []int{1, 2, base.NumSMs} {
		cfg := base
		cfg.SMJobs = jobs
		s := NewSuite(cfg)
		hashes[jobs] = map[key]uint64{}
		for _, w := range workloads {
			for _, p := range Policies() {
				res, err := s.Run(w, p, Variant{})
				if err != nil {
					t.Fatalf("jobs=%d %s/%s: %v", jobs, w, p, err)
				}
				hashes[jobs][key{w, p}] = res.StateHash()
			}
		}
	}
	for _, jobs := range []int{2, base.NumSMs} {
		for k, h1 := range hashes[1] {
			if h := hashes[jobs][k]; h != h1 {
				t.Errorf("%s/%s: StateHash(SMJobs=%d)=%#x != StateHash(SMJobs=1)=%#x",
					k.w, k.p, jobs, h, h1)
			}
		}
	}
}
