package harness

import (
	"errors"
	"testing"

	"lattecc/internal/fault"
	"lattecc/internal/invariant"
	"lattecc/internal/sim"
	"lattecc/internal/workload"
)

// TestRunRecoversPanicAndRetries: an injected codec fault trips the
// paranoid fill round-trip check, which panics. The suite must (a)
// surface the panic as a *PanicError instead of crashing the process,
// and (b) not cache it — the retry after the fault clears must simulate
// fresh and match a clean suite's result bit for bit.
func TestRunRecoversPanicAndRetries(t *testing.T) {
	prev := invariant.SetActive(true)
	defer invariant.SetActive(prev)
	defer fault.Reset()

	cfg := sim.DefaultConfig()
	cfg.NumSMs = 1
	cfg.MaxInstructions = 10_000
	name := workload.Names()[0]

	s := NewSuite(cfg)
	fault.Arm("codec.decode", 1)
	_, err := s.Run(name, StaticBDI, Variant{})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError from poisoned run, got %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("recovered panic carries no stack")
	}

	// The fault was one-shot; the retry must not see the cached panic.
	res, err := s.Run(name, StaticBDI, Variant{})
	if err != nil {
		t.Fatalf("retry after fault cleared: %v", err)
	}

	clean := NewSuite(cfg)
	want, err := clean.Run(name, StaticBDI, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if res.StateHash() != want.StateHash() {
		t.Errorf("retry state hash %#x differs from clean run %#x", res.StateHash(), want.StateHash())
	}
}
