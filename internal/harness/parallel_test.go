package harness

import (
	"strings"
	"sync"
	"testing"
)

// TestParallelMatchesSerialFig11 is the parallel-determinism lock: the
// full Figure 11 run set executed serially (Jobs=1) and through an
// 8-worker pool must produce the same StateHash for every run and
// byte-identical rendered tables. Completion order must not leak into
// results or output.
func TestParallelMatchesSerialFig11(t *testing.T) {
	if testing.Short() {
		t.Skip("two full fig11 passes (minutes)")
	}
	cfg := quickConfig()
	cfg.MaxInstructions = raceScaled(60_000) // fidelity is irrelevant here; equality is the point

	reqs := fig11Runs()
	pass := func(jobs int) (map[string]uint64, string) {
		s := NewSuite(cfg)
		s.Jobs = jobs
		s.Prefetch(reqs...)
		if err := s.RunAll(); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		hashes := make(map[string]uint64, len(reqs))
		for _, r := range reqs {
			res, err := s.Run(r.Workload, r.Policy, r.Variant)
			if err != nil {
				t.Fatalf("jobs=%d %s/%s: %v", jobs, r.Workload, r.Policy, err)
			}
			hashes[r.Workload+"/"+string(r.Policy)] = res.StateHash()
		}
		tab, err := fig11Table(s)
		if err != nil {
			t.Fatalf("jobs=%d fig11 table: %v", jobs, err)
		}
		return hashes, tab.String()
	}

	serialHashes, serialTable := pass(1)
	parHashes, parTable := pass(8)

	if len(serialHashes) != len(parHashes) {
		t.Fatalf("run-set size differs: %d serial vs %d parallel", len(serialHashes), len(parHashes))
	}
	for k, h := range serialHashes {
		if ph := parHashes[k]; ph != h {
			t.Errorf("%s: state hash diverged: serial %#x parallel %#x", k, h, ph)
		}
	}
	if serialTable != parTable {
		t.Errorf("rendered fig11 tables differ:\n--- serial ---\n%s\n--- jobs=8 ---\n%s", serialTable, parTable)
	}
}

// TestSingleFlightSharedRuns submits overlapping run sets from several
// concurrent "experiments" and asserts each shared (workload, policy)
// pair simulated exactly once.
func TestSingleFlightSharedRuns(t *testing.T) {
	cfg := quickConfig()
	cfg.MaxInstructions = raceScaled(100_000)

	s := NewSuite(cfg)
	shared := []RunRequest{
		{Workload: "BO", Policy: Uncompressed},
		{Workload: "SS", Policy: Uncompressed},
		{Workload: "SS", Policy: LatteCC},
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, r := range shared {
				if _, err := s.Run(r.Workload, r.Policy, r.Variant); err != nil {
					t.Errorf("%s/%s: %v", r.Workload, r.Policy, err)
				}
			}
		}()
	}
	wg.Wait()

	if got := s.Simulations(); got != uint64(len(shared)) {
		t.Fatalf("shared runs simulated %d times, want exactly %d", got, len(shared))
	}

	// Prefetch is idempotent too: re-submitting the same set and
	// draining again must not re-simulate anything.
	s.Prefetch(shared...)
	s.Prefetch(shared...)
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := s.Simulations(); got != uint64(len(shared)) {
		t.Fatalf("RunAll re-simulated cached runs: %d sims, want %d", got, len(shared))
	}
}

// TestRunAllSurfacesErrors checks that a bad request fails RunAll with
// an identifying error while the healthy requests still complete.
func TestRunAllSurfacesErrors(t *testing.T) {
	cfg := quickConfig()
	cfg.MaxInstructions = raceScaled(50_000)

	s := NewSuite(cfg)
	s.Jobs = 4
	s.Prefetch(
		RunRequest{Workload: "BO", Policy: Uncompressed},
		RunRequest{Workload: "NOPE", Policy: Uncompressed},
		RunRequest{Workload: "BO", Policy: Policy("bogus")},
	)
	err := s.RunAll()
	if err == nil {
		t.Fatal("RunAll must surface request errors")
	}
	for _, frag := range []string{"NOPE", "bogus"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not identify failing request %q", err, frag)
		}
	}
	if _, err := s.Run("BO", Uncompressed, Variant{}); err != nil {
		t.Errorf("healthy request must still be served: %v", err)
	}
	if got := s.Simulations(); got != 1 {
		t.Errorf("exactly the healthy request should have simulated, got %d", got)
	}
}

// TestProgressReporterEvents drains a small pool with a recording
// reporter and checks every completed run reports with consistent
// progress counters.
func TestProgressReporterEvents(t *testing.T) {
	cfg := quickConfig()
	cfg.MaxInstructions = raceScaled(50_000)

	rec := &recordingReporter{}
	s := NewSuite(cfg)
	s.Jobs = 4
	s.Reporter = rec
	reqs := []RunRequest{
		{Workload: "BO", Policy: Uncompressed},
		{Workload: "SS", Policy: Uncompressed},
		{Workload: "FW", Policy: Uncompressed},
	}
	s.Prefetch(reqs...)
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.events) != len(reqs) {
		t.Fatalf("reporter saw %d events, want %d", len(rec.events), len(reqs))
	}
	seenDone := map[int]bool{}
	for _, e := range rec.events {
		if e.Total != len(reqs) {
			t.Errorf("event total = %d, want %d", e.Total, len(reqs))
		}
		if e.Done < 1 || e.Done > len(reqs) || seenDone[e.Done] {
			t.Errorf("bad or duplicate done counter %d", e.Done)
		}
		seenDone[e.Done] = true
		if e.Result.Cycles == 0 {
			t.Errorf("%s/%s: event carries empty result", e.Workload, e.Policy)
		}
		if e.Duration <= 0 {
			t.Errorf("%s/%s: event carries no per-run duration", e.Workload, e.Policy)
		}
	}
}

type recordingReporter struct {
	mu     sync.Mutex
	events []RunEvent
}

func (r *recordingReporter) RunDone(e RunEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}
