package harness

import (
	"sync"
	"testing"

	"lattecc/internal/invariant"
)

// TestDeterministicReplay is the repo's bit-determinism lock: two fresh
// suites over the same config must produce byte-identical results for
// every (workload, policy) pair, compared via the FNV-1a fold of every
// counter in sim.Result. It runs with the paranoid invariant layer
// forced on, so compressed-size bounds, set occupancy, and fill
// round-trips are also re-verified on both passes.
func TestDeterministicReplay(t *testing.T) {
	prev := invariant.SetActive(true)
	defer invariant.SetActive(prev)

	cfg := quickConfig()
	cfg.MaxInstructions = raceScaled(300_000) // keep both passes fast

	workloads := []string{"BO", "SS", "FW"}
	policies := []Policy{Uncompressed, LatteCC, StaticBDI}

	pass := func() map[string]uint64 {
		s := NewSuite(cfg)
		hashes := map[string]uint64{}
		for _, w := range workloads {
			for _, p := range policies {
				res, err := s.Run(w, p, Variant{})
				if err != nil {
					t.Fatalf("%s/%s: %v", w, p, err)
				}
				hashes[w+"/"+string(p)] = res.StateHash()
			}
		}
		return hashes
	}

	first := pass()
	second := pass()
	for k, h1 := range first {
		if h2 := second[k]; h1 != h2 {
			t.Errorf("%s: state hash diverged across replays: %#x vs %#x", k, h1, h2)
		}
	}
}

// TestConcurrentSuiteAccess drives one shared Suite from several
// goroutines. Under `go test -race` (the CI configuration) this fails
// on any unsynchronised access to the result cache; it also checks the
// concurrent results agree with a serial replay.
func TestConcurrentSuiteAccess(t *testing.T) {
	cfg := quickConfig()
	cfg.MaxInstructions = raceScaled(150_000)

	jobs := []struct {
		w string
		p Policy
	}{
		{"BO", Uncompressed}, {"BO", LatteCC},
		{"SS", Uncompressed}, {"SS", LatteCC},
	}

	s := NewSuite(cfg)
	got := make([]uint64, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, w string, p Policy) {
			defer wg.Done()
			res, err := s.Run(w, p, Variant{})
			if err != nil {
				t.Errorf("%s/%s: %v", w, p, err)
				return
			}
			got[i] = res.StateHash()
		}(i, j.w, j.p)
	}
	wg.Wait()

	serial := NewSuite(cfg)
	for i, j := range jobs {
		res, err := serial.Run(j.w, j.p, Variant{})
		if err != nil {
			t.Fatalf("%s/%s: %v", j.w, j.p, err)
		}
		if res.StateHash() != got[i] {
			t.Errorf("%s/%s: concurrent result diverges from serial replay", j.w, j.p)
		}
	}
}
