// Run-set enumerators: one function per simulation-backed experiment,
// listing every (workload, policy, variant) the experiment will request
// so cmd/experiments can pre-submit the union to the parallel pool
// (Suite.Prefetch / RunAll) before the serial rendering pass. The
// enumerations mirror the loops in experiments.go; keeping them next to
// each other is what the harness tests cross-check.
package harness

// cross enumerates names x policies under one variant, in order.
func cross(names []string, pols []Policy, v Variant) []RunRequest {
	reqs := make([]RunRequest, 0, len(names)*len(pols))
	for _, n := range names {
		for _, p := range pols {
			reqs = append(reqs, RunRequest{Workload: n, Policy: p, Variant: v})
		}
	}
	return reqs
}

func fig1Runs() []RunRequest {
	reqs := cross(fig1Workloads, []Policy{Uncompressed}, Variant{})
	for _, lat := range fig1Latencies {
		reqs = append(reqs, cross(fig1Workloads, []Policy{Uncompressed}, Variant{ExtraHitLatency: lat})...)
	}
	return reqs
}

func fig3Runs() []RunRequest {
	reqs := cross(Workloads(), []Policy{Uncompressed}, Variant{})
	reqs = append(reqs, cross(Workloads(), []Policy{StaticBDI, StaticSC}, Variant{CapacityOnly: true})...)
	return reqs
}

func fig4Runs() []RunRequest {
	reqs := cross(Workloads(), []Policy{Uncompressed}, Variant{})
	reqs = append(reqs, cross(Workloads(), []Policy{StaticBDI, StaticSC}, Variant{LatencyOnly: true})...)
	return reqs
}

func fig5Runs() []RunRequest {
	return []RunRequest{{Workload: "SS", Policy: LatteCC, Variant: Variant{SampleSeries: true}}}
}

func fig6Runs() []RunRequest {
	return cross(CSensNames(), []Policy{Uncompressed, StaticBDI, StaticSC, LatteCC}, Variant{})
}

// fig11Runs also serves Figure 12: both walk the same policy set with
// the plain variant. The Kernel-OPT prerequisites (the three statics)
// are members of the set already, so they parallelize as peer tasks.
func fig11Runs() []RunRequest {
	return cross(Workloads(), append([]Policy{Uncompressed}, fig11Policies...), Variant{})
}

func fig13Runs() []RunRequest {
	return cross(Workloads(), []Policy{Uncompressed, StaticBDI, StaticSC, LatteCC}, Variant{})
}

func fig14Runs() []RunRequest {
	return cross(CSensNames(), []Policy{Uncompressed, LatteCC}, Variant{})
}

func fig15Runs() []RunRequest {
	return cross(CSensNames(), []Policy{Uncompressed, StaticBDI, StaticSC, LatteCC, KernelOpt}, Variant{})
}

func fig16Runs() []RunRequest {
	return cross([]string{"SS"}, []Policy{StaticBDI, StaticSC, LatteCC}, Variant{SampleSeries: true})
}

func fig17Runs() []RunRequest {
	return cross(CSensNames(), []Policy{Uncompressed, AdaptiveHits, AdaptiveCMP, LatteCC}, Variant{})
}

func fig18Runs() []RunRequest {
	return cross(CSensNames(), []Policy{Uncompressed, LatteCC, LatteBDIBPC}, Variant{})
}

// writePolicyRuns covers the default-machine half of the write-policy
// study; the write-through half runs on a child suite the experiment
// prefetches internally.
func writePolicyRuns() []RunRequest {
	return cross(writePolicyWorkloads, []Policy{Uncompressed, LatteCC}, Variant{})
}

func sensParamsRuns() []RunRequest {
	return []RunRequest{{Workload: "SS", Policy: Uncompressed, Variant: Variant{}}}
}

func ablationRuns() []RunRequest {
	return cross(ablationWorkloads, []Policy{Uncompressed, LatteCC}, Variant{})
}
