package harness

import (
	"sync"
	"testing"

	"lattecc/internal/sim"
)

// mapStore is an in-memory harness.Store for unit-testing the suite's
// consult-on-miss / save-on-complete wiring without disk I/O.
type mapStore struct {
	mu    sync.Mutex
	m     map[StoreKey]sim.Result
	loads int
	saves int
}

func newMapStore() *mapStore { return &mapStore{m: map[StoreKey]sim.Result{}} }

func (s *mapStore) Load(k StoreKey) (sim.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loads++
	res, ok := s.m[k]
	return res, ok
}

func (s *mapStore) Save(k StoreKey, res sim.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.saves++
	s.m[k] = res
}

func storeTestConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.NumSMs = 2
	cfg.MaxInstructions = 30_000
	return cfg
}

func TestSuiteStoreRoundTrip(t *testing.T) {
	cfg := storeTestConfig()
	store := newMapStore()

	s1 := NewSuite(cfg)
	s1.Store = store
	cold, err := s1.Run("SS", LatteCC, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if store.saves != 1 {
		t.Fatalf("fresh simulation must be saved: saves=%d", store.saves)
	}
	if s1.Simulations() != 1 || s1.StoreHits() != 0 {
		t.Fatalf("cold suite counters: sims=%d storeHits=%d", s1.Simulations(), s1.StoreHits())
	}

	// A fresh suite over the same config (the restarted process) must be
	// served entirely from the store, bit-identically.
	s2 := NewSuite(cfg)
	s2.Store = store
	warm, err := s2.Run("SS", LatteCC, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := warm.StateHash(), cold.StateHash(); got != want {
		t.Fatalf("store-served StateHash 0x%016x != cold 0x%016x", got, want)
	}
	if s2.Simulations() != 0 || s2.StoreHits() != 1 {
		t.Fatalf("warm suite counters: sims=%d storeHits=%d", s2.Simulations(), s2.StoreHits())
	}
	// Second Run on the warm suite is an in-memory hit, not another
	// store load: the tiers stack, they don't race.
	if _, err := s2.Run("SS", LatteCC, Variant{}); err != nil {
		t.Fatal(err)
	}
	if s2.CacheHits() != 1 || s2.StoreHits() != 1 {
		t.Fatalf("tier split: memHits=%d storeHits=%d", s2.CacheHits(), s2.StoreHits())
	}
}

func TestSuiteStoreKeyCarriesFingerprint(t *testing.T) {
	cfg := storeTestConfig()
	store := newMapStore()
	s := NewSuite(cfg)
	s.Store = store
	if _, err := s.Run("SS", Uncompressed, Variant{}); err != nil {
		t.Fatal(err)
	}
	want := StoreKey{Fingerprint: cfg.Fingerprint(), Workload: "SS", Policy: Uncompressed}
	if _, ok := store.m[want]; !ok {
		t.Fatalf("saved under wrong key; store holds %v", keysOf(store.m))
	}

	// A different machine must never be served from this key: its suite
	// computes a different fingerprint and misses.
	cfg2 := cfg
	cfg2.MaxInstructions = 31_000
	s2 := NewSuite(cfg2)
	s2.Store = store
	if _, err := s2.Run("SS", Uncompressed, Variant{}); err != nil {
		t.Fatal(err)
	}
	if s2.StoreHits() != 0 || s2.Simulations() != 1 {
		t.Fatalf("different fingerprint must miss: storeHits=%d sims=%d",
			s2.StoreHits(), s2.Simulations())
	}
}

func keysOf(m map[StoreKey]sim.Result) []StoreKey {
	var out []StoreKey
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestSuiteStoreErrorsNotSaved(t *testing.T) {
	store := newMapStore()
	s := NewSuite(storeTestConfig())
	s.Store = store
	if _, err := s.Run("SS", Policy("no-such-policy"), Variant{}); err == nil {
		t.Fatal("unknown policy must error")
	}
	if store.saves != 0 {
		t.Fatalf("failed runs must not be persisted: saves=%d", store.saves)
	}
}

func TestSuiteStoreServesKernelOptWithoutStatics(t *testing.T) {
	cfg := storeTestConfig()
	store := newMapStore()

	s1 := NewSuite(cfg)
	s1.Store = store
	cold, err := s1.Run("SS", KernelOpt, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	// Kernel-OPT simulated its three static prerequisites too; all four
	// results were persisted.
	if store.saves != 4 {
		t.Fatalf("Kernel-OPT must persist its statics as well: saves=%d", store.saves)
	}

	// On the warm path the stored Kernel-OPT result short-circuits the
	// whole measure-then-replay protocol: zero simulations, one load.
	s2 := NewSuite(cfg)
	s2.Store = store
	warm, err := s2.Run("SS", KernelOpt, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.StateHash() != cold.StateHash() {
		t.Fatal("warm Kernel-OPT hash differs")
	}
	if s2.Simulations() != 0 || s2.StoreHits() != 1 {
		t.Fatalf("warm Kernel-OPT: sims=%d storeHits=%d (statics must not re-run)",
			s2.Simulations(), s2.StoreHits())
	}
}

func TestChildSuiteInheritsStore(t *testing.T) {
	store := newMapStore()
	s := NewSuite(storeTestConfig())
	s.Store = store
	cfg2 := s.Config()
	cfg2.MaxInstructions = 31_000
	c := s.child(cfg2)
	if c.Store != Store(store) {
		t.Fatal("child suite must inherit the parent's store")
	}
	if c.Fingerprint() == s.Fingerprint() {
		t.Fatal("child over a different machine must have a different fingerprint")
	}
}
