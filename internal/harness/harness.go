// Package harness orchestrates the paper's evaluation: it wires policies
// to simulator runs, caches results so the figures that share runs
// (Figures 11-14) simulate each (workload, policy) pair once, implements
// the Kernel-OPT oracle's measure-then-replay protocol, and renders every
// table and figure of the paper as text tables (package experiments
// functions on the Suite).
package harness

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"lattecc/internal/compress"
	"lattecc/internal/core"
	"lattecc/internal/modes"
	"lattecc/internal/policy"
	"lattecc/internal/sim"
	"lattecc/internal/trace"
	"lattecc/internal/workload"
)

// Policy names a compression-management policy.
type Policy string

// The policies evaluated in the paper.
const (
	Uncompressed Policy = "Uncompressed"
	StaticBDI    Policy = "Static-BDI"
	StaticSC     Policy = "Static-SC"
	StaticBPC    Policy = "Static-BPC"
	LatteCC      Policy = "LATTE-CC"
	LatteBDIBPC  Policy = "LATTE-CC-BDI-BPC"
	AdaptiveHits Policy = "Adaptive-Hit-Count"
	AdaptiveCMP  Policy = "Adaptive-CMP"
	KernelOpt    Policy = "Kernel-OPT"
)

// latteEPLen / lattePeriod are the Section IV-C3 parameters, shared with
// the static policies' code-book maintenance cadence.
const (
	latteEPLen  = 256
	lattePeriod = 10
)

// Variant adjusts a run for the motivation studies.
type Variant struct {
	// CapacityOnly grants compression's capacity benefit with zero
	// decompression latency (Figure 3's upper bound).
	CapacityOnly bool
	// LatencyOnly charges decompression latency without any capacity
	// benefit (Figure 4).
	LatencyOnly bool
	// ExtraHitLatency adds cycles to every L1 hit (Figure 1's sweep).
	ExtraHitLatency uint64
	// SampleSeries enables the over-time probes (Figures 5 and 16).
	SampleSeries bool
}

// key identifies a cached run.
type key struct {
	workload string
	policy   Policy
	variant  Variant
}

// StoreKey identifies one run result in a persistent Store. It is the
// in-memory cache key widened by the machine-config fingerprint
// (sim.Config.Fingerprint), so one store directory can safely hold
// results from many machines — and so a store entry computed by one
// daemon is addressable by any other daemon serving the same machine.
type StoreKey struct {
	Fingerprint uint64
	Workload    string
	Policy      Policy
	Variant     Variant
}

// Store is the optional persistence tier below the suite's in-memory
// single-flight cache (internal/resultstore implements it; the daemon
// layers cluster peers on top). Run consults it after a cache miss and
// writes every fresh simulation back through it. Implementations must
// be safe for concurrent use and must fail closed: Load returns ok only
// for a result it has verified (StateHash recomputed from the decoded
// bytes) — a corrupt or truncated entry is a miss, never a wrong
// result. Errors are not persisted: only successful simulations reach
// Save.
type Store interface {
	Load(k StoreKey) (sim.Result, bool)
	Save(k StoreKey, res sim.Result)
}

// entry is one single-flight cache slot: the first caller of a key
// installs the entry and simulates; everyone else blocks on done.
type entry struct {
	done chan struct{} // closed once res/err are valid
	res  sim.Result
	err  error
}

// Suite runs and caches simulations for one GPU configuration.
//
// Locking contract (machine-checked by lattelint's lock-contract rule
// via the //lint: annotations below): mu guards only the result map and
// the prefetch queue — never a running simulation. Run installs a
// placeholder entry under mu, releases mu, simulates, then closes the
// entry's done channel; concurrent callers of the same (workload,
// policy, variant) key block on done instead of re-simulating, so every
// key simulates exactly once no matter how many experiments request it
// concurrently (single-flight). Because mu is declared nocalls, the
// analyzer also proves no function call (and hence no simulation, no
// Reporter callback, no Store I/O) ever runs with mu held. Jobs,
// Reporter, and Store are configuration: set them before the first
// Run/RunAll and leave them alone afterwards.
type Suite struct {
	cfg sim.Config

	// Jobs bounds how many simulations RunAll executes concurrently;
	// <= 0 means runtime.GOMAXPROCS(0).
	Jobs int
	// Reporter, when non-nil, receives one event per run drained by
	// RunAll (progress/ETA reporting). Implementations must be safe for
	// concurrent use; the suite never holds mu across a call.
	Reporter Reporter
	// Store, when non-nil, is the persistence tier consulted on a cache
	// miss and written on every fresh simulate-complete. Like Jobs and
	// Reporter it is configuration: set before the first Run. Store
	// calls happen with mu released (single-flight already serializes
	// per-key access), so a slow disk or peer fetch never blocks other
	// keys.
	Store Store

	fp uint64 // cfg.Fingerprint(), precomputed for store keys

	mu sync.Mutex //lint:mutex nocalls
	//lint:guards mu
	results map[key]*entry
	//lint:guards mu
	queue []RunRequest
	//lint:guards mu
	queued    map[key]bool
	sims      atomic.Uint64
	hits      atomic.Uint64
	storeHits atomic.Uint64
}

// NewSuite returns a Suite over the given configuration (typically
// sim.DefaultConfig(), the paper's Table II machine).
func NewSuite(cfg sim.Config) *Suite {
	return &Suite{
		cfg:     cfg,
		fp:      cfg.Fingerprint(),
		results: make(map[key]*entry),
		queued:  make(map[key]bool),
	}
}

// child returns a fresh suite over cfg inheriting the parent's Jobs and
// Reporter, for experiments that re-run subsets on modified machines
// (48KB L1, write-through, ablations).
func (s *Suite) child(cfg sim.Config) *Suite {
	c := NewSuite(cfg)
	c.Jobs = s.Jobs
	c.Reporter = s.Reporter
	c.Store = s.Store
	return c
}

// Fingerprint returns the machine-config fingerprint the suite keys
// persistent-store entries with (sim.Config.Fingerprint of its config).
func (s *Suite) Fingerprint() uint64 { return s.fp }

// Config returns the suite's base configuration.
func (s *Suite) Config() sim.Config { return s.cfg }

// Simulations returns how many simulations actually executed on this
// suite; cache hits and single-flight waiters do not count.
func (s *Suite) Simulations() uint64 { return s.sims.Load() }

// CacheHits returns how many Run calls were served from the in-memory
// result cache instead of executing a simulation — completed results and
// single-flight joins of in-flight ones both count. Together with
// Simulations and StoreHits it gives a serving layer its full split:
// every Run call lands in exactly one of the three counters (memory
// hit, store hit, or fresh simulation).
func (s *Suite) CacheHits() uint64 { return s.hits.Load() }

// StoreHits returns how many Run calls were served from the persistent
// Store tier (validated disk or peer entries) instead of simulating.
// Always zero when no Store is configured.
func (s *Suite) StoreHits() uint64 { return s.storeHits.Load() }

// Policies lists every named policy the harness can run, in a stable
// order — the admission-validation surface for servers and CLIs.
func Policies() []Policy {
	return []Policy{
		Uncompressed, StaticBDI, StaticSC, StaticBPC,
		LatteCC, LatteBDIBPC, AdaptiveHits, AdaptiveCMP, KernelOpt,
	}
}

// factory builds the controller factory and the cache codec override for
// a policy. The returned highCap codec constructor replaces the HighCap
// slot when non-nil (Static-BPC and the BDI+BPC LATTE variant).
func factoryFor(p Policy, schedule []modes.Mode) (sim.ControllerFactory, func() compress.Codec, error) {
	switch p {
	case Uncompressed:
		return func(int) modes.Controller {
			return policy.NewStatic(modes.None, string(Uncompressed), latteEPLen, lattePeriod)
		}, nil, nil
	case StaticBDI:
		return func(int) modes.Controller {
			return policy.NewStatic(modes.LowLat, string(StaticBDI), latteEPLen, lattePeriod)
		}, nil, nil
	case StaticSC:
		return func(int) modes.Controller {
			return policy.NewStatic(modes.HighCap, string(StaticSC), latteEPLen, lattePeriod)
		}, nil, nil
	case StaticBPC:
		return func(int) modes.Controller {
			return policy.NewStatic(modes.HighCap, string(StaticBPC), latteEPLen, lattePeriod)
		}, func() compress.Codec { return compress.NewBPC() }, nil
	case LatteCC:
		return func(n int) modes.Controller { return core.New(core.DefaultConfig(n)) }, nil, nil
	case LatteBDIBPC:
		return func(n int) modes.Controller {
			cfg := core.DefaultConfig(n)
			cfg.DecompLatency[modes.HighCap] = uint64(compress.NewBPC().DecompLatency())
			return core.New(cfg)
		}, func() compress.Codec { return compress.NewBPC() }, nil
	case AdaptiveHits:
		return func(n int) modes.Controller { return policy.NewAdaptiveHitCount(n) }, nil, nil
	case AdaptiveCMP:
		return func(n int) modes.Controller { return policy.NewAdaptiveCMP(n) }, nil, nil
	case KernelOpt:
		return func(int) modes.Controller {
			return policy.NewScheduled(string(KernelOpt), schedule, latteEPLen, lattePeriod)
		}, nil, nil
	default:
		return nil, nil, fmt.Errorf("harness: unknown policy %q", p)
	}
}

// Run simulates one (workload, policy, variant) combination, caching the
// result. Kernel-OPT internally requires the three static runs of the
// same variant; they are cached too. Run is safe for concurrent use:
// the first caller of a key simulates while later callers block until
// that result is ready (errors are cached alongside results — the
// failure modes here are deterministic, so retrying cannot help).
func (s *Suite) Run(workloadName string, p Policy, v Variant) (sim.Result, error) {
	k := key{workload: workloadName, policy: p, variant: v}
	s.mu.Lock()
	if e, ok := s.results[k]; ok {
		s.mu.Unlock()
		s.hits.Add(1)
		<-e.done
		return e.res, e.err
	}
	e := &entry{done: make(chan struct{})}
	s.results[k] = e
	s.mu.Unlock()

	// Persistence tier: a validated store entry (local disk or a cluster
	// peer) replaces the simulation entirely — including Kernel-OPT's
	// static prerequisites, which only a fresh simulate needs.
	if st := s.Store; st != nil {
		sk := StoreKey{Fingerprint: s.fp, Workload: workloadName, Policy: p, Variant: v}
		if res, ok := st.Load(sk); ok {
			s.storeHits.Add(1)
			e.res = res
			close(e.done)
			return e.res, e.err
		}
	}

	e.res, e.err = s.simulate(workloadName, p, v)
	if e.err == nil {
		s.sims.Add(1)
		if st := s.Store; st != nil {
			st.Save(StoreKey{Fingerprint: s.fp, Workload: workloadName, Policy: p, Variant: v}, e.res)
		}
	}
	// Deterministic failures stay cached, but a recovered panic is not
	// assumed deterministic (fault injection and invariant trips are
	// per-run conditions): drop the entry so a later Run retries instead
	// of replaying a stale crash. Waiters already holding e still see
	// this attempt's error.
	var pe *PanicError
	if errors.As(e.err, &pe) {
		s.mu.Lock()
		if s.results[k] == e {
			delete(s.results, k)
		}
		s.mu.Unlock()
	}
	close(e.done)
	return e.res, e.err
}

// PanicError wraps a panic recovered from a simulation so one poisoned
// run (an injected fault, a tripped invariant, a codec bug) surfaces as
// a job failure instead of killing the whole daemon or test process.
type PanicError struct {
	Val   interface{}
	Stack []byte
}

// Error reports the panic value; the captured stack is for logs.
func (e *PanicError) Error() string { return fmt.Sprintf("simulation panicked: %v", e.Val) }

// recoverSim converts a panic on the simulation path into a *PanicError
// assigned to err. Use in a defer with named returns.
func recoverSim(err *error) {
	if r := recover(); r != nil {
		*err = &PanicError{Val: r, Stack: debug.Stack()}
	}
}

// simulate executes one uncached run. It holds no locks: Kernel-OPT
// recurses into Run for its three static prerequisites, which either
// join in-flight simulations or execute inline on this goroutine.
func (s *Suite) simulate(workloadName string, p Policy, v Variant) (res sim.Result, err error) {
	defer recoverSim(&err)
	w, err := workload.ByName(workloadName)
	if err != nil {
		return sim.Result{}, err
	}

	var schedule []modes.Mode
	if p == KernelOpt {
		schedule, err = s.kernelOptSchedule(workloadName, v)
		if err != nil {
			return sim.Result{}, err
		}
	}

	factory, highCap, err := factoryFor(p, schedule)
	if err != nil {
		return sim.Result{}, err
	}

	cfg := s.cfg
	cfg.Cache.CapacityOnly = v.CapacityOnly
	cfg.Cache.LatencyOnly = v.LatencyOnly
	cfg.Cache.ExtraHitLatency = v.ExtraHitLatency
	if v.SampleSeries {
		cfg.SampleEvery = 512
	}
	if highCap != nil {
		cfg.Cache.Codecs[modes.HighCap] = highCap()
	}

	res = sim.New(cfg, w, factory).Run()
	res.Policy = string(p)
	return res, nil
}

// MustRun is Run, panicking on error (experiment code paths where the
// workload/policy names are compile-time constants).
func (s *Suite) MustRun(workloadName string, p Policy, v Variant) sim.Result {
	res, err := s.Run(workloadName, p, v)
	if err != nil {
		panic(err)
	}
	return res
}

// kernelOptSchedule builds the oracle per-kernel schedule: run the
// workload once per static mode, then pick, for every kernel, the mode
// with the fewest cycles (Section V-B).
func (s *Suite) kernelOptSchedule(workloadName string, v Variant) ([]modes.Mode, error) {
	statics := []struct {
		p Policy
		m modes.Mode
	}{
		{Uncompressed, modes.None},
		{StaticBDI, modes.LowLat},
		{StaticSC, modes.HighCap},
	}
	var runs []sim.Result
	for _, st := range statics {
		r, err := s.Run(workloadName, st.p, v)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	nk := len(runs[0].Kernels)
	schedule := make([]modes.Mode, 0, nk)
	for ki := 0; ki < nk; ki++ {
		best := modes.None
		bestCycles := ^uint64(0)
		for si, st := range statics {
			if ki >= len(runs[si].Kernels) {
				continue
			}
			if c := runs[si].Kernels[ki].Cycles; c < bestCycles {
				bestCycles = c
				best = st.m
			}
		}
		schedule = append(schedule, best)
	}
	return schedule, nil
}

// Speedup returns policy p's speedup over the uncompressed baseline for a
// workload (same variant for both runs).
func (s *Suite) Speedup(workloadName string, p Policy, v Variant) (float64, error) {
	base, err := s.Run(workloadName, Uncompressed, Variant{
		ExtraHitLatency: 0, SampleSeries: false,
	})
	if err != nil {
		return 0, err
	}
	run, err := s.Run(workloadName, p, v)
	if err != nil {
		return 0, err
	}
	if run.Cycles == 0 {
		return 0, fmt.Errorf("harness: zero-cycle run for %s/%s", workloadName, p)
	}
	return float64(base.Cycles) / float64(run.Cycles), nil
}

// MissReduction returns the relative L1 miss reduction of policy p vs the
// baseline (positive = fewer misses).
func (s *Suite) MissReduction(workloadName string, p Policy) (float64, error) {
	base, err := s.Run(workloadName, Uncompressed, Variant{})
	if err != nil {
		return 0, err
	}
	run, err := s.Run(workloadName, p, Variant{})
	if err != nil {
		return 0, err
	}
	if base.Cache.Misses == 0 {
		return 0, nil
	}
	return 1 - float64(run.Cache.Misses)/float64(base.Cache.Misses), nil
}

// RunWorkload simulates a custom workload under a policy on the given
// machine, uncached (custom workloads have no stable identity to key on).
// Kernel-OPT is supported: the three static runs execute first.
func RunWorkload(cfg sim.Config, w trace.Workload, p Policy) (res sim.Result, err error) {
	defer recoverSim(&err)
	var schedule []modes.Mode
	if p == KernelOpt {
		statics := []struct {
			pol Policy
			m   modes.Mode
		}{{Uncompressed, modes.None}, {StaticBDI, modes.LowLat}, {StaticSC, modes.HighCap}}
		var runs []sim.Result
		for _, st := range statics {
			f, hc, err := factoryFor(st.pol, nil)
			if err != nil {
				return sim.Result{}, err
			}
			c := cfg
			if hc != nil {
				c.Cache.Codecs[modes.HighCap] = hc()
			}
			runs = append(runs, sim.New(c, w, f).Run())
		}
		nk := len(runs[0].Kernels)
		for ki := 0; ki < nk; ki++ {
			best := modes.None
			bestCycles := ^uint64(0)
			for si, st := range statics {
				if ki < len(runs[si].Kernels) && runs[si].Kernels[ki].Cycles < bestCycles {
					bestCycles = runs[si].Kernels[ki].Cycles
					best = st.m
				}
			}
			schedule = append(schedule, best)
		}
	}
	factory, highCap, err := factoryFor(p, schedule)
	if err != nil {
		return sim.Result{}, err
	}
	if highCap != nil {
		cfg.Cache.Codecs[modes.HighCap] = highCap()
	}
	res = sim.New(cfg, w, factory).Run()
	res.Policy = string(p)
	return res, nil
}

// Workloads lists all benchmark names in figure order.
func Workloads() []string { return workload.Names() }

// CSensNames lists the cache-sensitive benchmark names.
func CSensNames() []string {
	var out []string
	for _, w := range workload.CSens() {
		out = append(out, w.Name())
	}
	return out
}

// CInSensNames lists the cache-insensitive benchmark names.
func CInSensNames() []string {
	var out []string
	for _, w := range workload.CInSens() {
		out = append(out, w.Name())
	}
	return out
}

// Category returns a workload's category by name.
func Category(name string) (trace.Category, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return 0, err
	}
	return w.Category(), nil
}
