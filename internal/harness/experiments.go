package harness

import (
	"fmt"
	"strings"

	"lattecc/internal/compress"
	"lattecc/internal/core"
	"lattecc/internal/energy"
	"lattecc/internal/modes"
	"lattecc/internal/sim"
	"lattecc/internal/stats"
	"lattecc/internal/trace"
	"lattecc/internal/workload"
)

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	// Run renders the experiment as human-readable text. Simulation
	// failures (unknown workloads, zero-cycle runs) come back as errors
	// for the cmd/ binaries to surface; they never panic.
	Run func(s *Suite) (string, error)
	// Table returns the underlying data table for machine-readable output
	// (CSV); nil for prose/series experiments (fig5, fig16, ablation).
	Table func(s *Suite) (*stats.Table, error)
	// Runs enumerates the simulations the experiment performs on the
	// shared suite, so callers can Prefetch the union of several
	// experiments and drain it through the parallel pool before
	// rendering. Nil for offline experiments and for those that run
	// entirely on privately configured child suites (sens48k).
	Runs func() []RunRequest
}

// renderTable adapts a table builder into an Experiment.Run renderer.
func renderTable(f func(*Suite) (*stats.Table, error)) func(*Suite) (string, error) {
	return func(s *Suite) (string, error) {
		t, err := f(s)
		if err != nil {
			return "", err
		}
		return t.String(), nil
	}
}

// Experiments lists every table and figure of the paper's evaluation, in
// paper order. `cmd/experiments -exp <id>` runs one; DESIGN.md carries
// the full index.
func Experiments() []Experiment {
	return []Experiment{
		{"tab1", "Table I: compression algorithm comparison", Tab1, tab1Table, nil},
		{"fig1", "Figure 1: IPC sensitivity to added L1 hit latency", Fig1, fig1Table, fig1Runs},
		{"fig2", "Figure 2: compression ratio of inserted L1 lines", Fig2, fig2Table, nil},
		{"fig3", "Figure 3: capacity-only speedup upper bound", Fig3, fig3Table, fig3Runs},
		{"fig4", "Figure 4: degradation from decompression latency alone", Fig4, fig4Table, fig4Runs},
		{"fig5", "Figure 5: SS latency tolerance over time", Fig5, nil, fig5Runs},
		{"fig6", "Figure 6: potential performance and energy impact", Fig6, fig6Table, fig6Runs},
		{"tab2", "Table II: simulated baseline configuration", Tab2, tab2Table, nil},
		{"tab3", "Table III: benchmarks", Tab3, tab3Table, nil},
		{"fig11", "Figure 11: speedup vs baseline (all policies)", Fig11, fig11Table, fig11Runs},
		{"fig12", "Figure 12: L1 miss reduction", Fig12, fig12Table, fig11Runs},
		{"fig13", "Figure 13: normalized GPU energy", Fig13, fig13Table, fig13Runs},
		{"fig14", "Figure 14: LATTE-CC energy savings breakdown", Fig14, fig14Table, fig14Runs},
		{"fig15", "Figure 15: LATTE-CC vs Kernel-OPT agreement", Fig15, fig15Table, fig15Runs},
		{"fig16", "Figure 16: SS effective cache capacity over time", Fig16, nil, fig16Runs},
		{"fig17", "Figure 17: adaptive policy comparison", Fig17, fig17Table, fig17Runs},
		{"fig18", "Figure 18: LATTE-CC with BDI+BPC modes", Fig18, fig18Table, fig18Runs},
		{"sens48k", "Section V-E: 48KB L1 sensitivity", Sens48K, sens48KTable, nil},
		{"writepolicy", "Section IV-C3: write-avoid vs write-through L1", WritePolicy, writePolicyTable, writePolicyRuns},
		{"sensparams", "LATTE-CC parameter sensitivity (EP length, sampling sets, decompressor)", SensParams, sensParamsTable, sensParamsRuns},
		{"ablation", "Design-choice ablations (DESIGN.md section 4)", Ablation, nil, ablationRuns},
	}
}

// ExperimentByID finds an experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// sampledLines returns up to n data lines a workload's programs touch,
// weighted by access frequency (every 8th transaction is sampled), for
// the offline compressibility studies (Table I / Figure 2). Frequency
// weighting approximates the paper's "all cache lines inserted in the
// L1" population: regions a kernel leans on dominate the sample the way
// they dominate insertions.
func sampledLines(w trace.Workload, n int) [][]byte {
	data := w.Data()
	var out [][]byte
	count := 0
	for _, k := range w.Kernels() {
		// Spread sampled warps across the grid so the sample's distinct-
		// line diversity matches the runtime footprint (a single block's
		// warps would make the value population look far smaller than the
		// working set the VFT actually faces).
		blockStride := k.Blocks/8 + 1
		perProgram := n/16 + 1
		for bi := 0; bi < k.Blocks && len(out) < n; bi += blockStride {
			for wi := 0; wi < k.WarpsPerBlock && len(out) < n; wi++ {
				p := k.Program(bi, wi)
				taken := 0
				for len(out) < n && taken < perProgram {
					inst, ok := p.Next()
					if !ok {
						break
					}
					for _, addr := range inst.Addrs {
						count++
						if count%8 != 0 {
							continue
						}
						out = append(out, data.Line(addr/uint64(workload.LineSize)))
						taken++
						if len(out) >= n || taken >= perProgram {
							break
						}
					}
				}
			}
		}
	}
	return out
}

// allCodecs returns fresh instances of the five Table I codecs, with SC
// pre-trained on the sample (its hardware trains online; offline studies
// give it one training pass, mirroring a warmed VFT).
func allCodecs(sample [][]byte) []compress.Codec {
	sc := compress.NewSC()
	for _, l := range sample {
		sc.Train(l)
	}
	sc.Rebuild()
	return []compress.Codec{
		compress.NewBDI(), compress.NewFPC(), compress.NewCPACK(),
		compress.NewBPC(), sc,
	}
}

// ratioOver computes a codec's average compression ratio over lines.
func ratioOver(c compress.Codec, lines [][]byte) float64 {
	var un, co float64
	for _, l := range lines {
		enc := c.Compress(l)
		un += float64(compress.LineSize)
		co += float64(enc.Size)
	}
	if co == 0 {
		return 1
	}
	return un / co
}

// Tab1 reproduces Table I: per-algorithm decompression latency and the
// measured average compression ratio over the whole suite's data.
func tab1Table(s *Suite) (*stats.Table, error) {
	var all [][]byte
	for _, w := range workload.All() {
		all = append(all, sampledLines(w, 200)...)
	}
	t := stats.NewTable("algorithm", "decomp-cycles", "comp-cycles", "avg-ratio", "locality")
	locality := map[string]string{
		"BDI": "spatial", "FPC": "spatial", "CPACK-Z": "both",
		"BPC": "spatial", "SC": "temporal",
	}
	for _, c := range allCodecs(all) {
		t.AddRow(c.Name(), c.DecompLatency(), c.CompLatency(), ratioOver(c, all), locality[c.Name()])
	}
	return t, nil
}

// Tab1 renders the table.
func Tab1(s *Suite) (string, error) { return renderTable(tab1Table)(s) }

// fig1Workloads are the example workloads of Figure 1.
var fig1Workloads = []string{"PRK", "CLR", "MIS", "BC", "FW"}

// fig1Latencies is the swept added hit latency (BDI=2 ... SC=14).
var fig1Latencies = []uint64{0, 2, 5, 9, 14}

// Fig1 reproduces Figure 1: normalized IPC as L1 hit latency grows.
func fig1Table(s *Suite) (*stats.Table, error) {
	header := []string{"workload"}
	for _, l := range fig1Latencies {
		header = append(header, fmt.Sprintf("+%d", l))
	}
	t := stats.NewTable(header...)
	for _, name := range fig1Workloads {
		base := s.MustRun(name, Uncompressed, Variant{})
		row := []interface{}{name}
		for _, lat := range fig1Latencies {
			r := s.MustRun(name, Uncompressed, Variant{ExtraHitLatency: lat})
			row = append(row, float64(base.Cycles)/float64(r.Cycles))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig1 renders the table.
func Fig1(s *Suite) (string, error) { return renderTable(fig1Table)(s) }

// Fig2 reproduces Figure 2: per-workload compression ratio under the five
// algorithms, over the lines the workload actually inserts.
func fig2Table(s *Suite) (*stats.Table, error) {
	t := stats.NewTable("workload", "BDI", "FPC", "CPACK-Z", "BPC", "SC")
	var sums [5]float64
	n := 0
	for _, w := range workload.All() {
		lines := sampledLines(w, 400)
		codecs := allCodecs(lines)
		row := []interface{}{w.Name()}
		for i, c := range codecs {
			r := ratioOver(c, lines)
			sums[i] += r
			row = append(row, r)
		}
		n++
		t.AddRow(row...)
	}
	avg := []interface{}{"MEAN"}
	for _, s := range sums {
		avg = append(avg, s/float64(n))
	}
	t.AddRow(avg...)
	return t, nil
}

// Fig2 renders the table.
func Fig2(s *Suite) (string, error) { return renderTable(fig2Table)(s) }

// Fig3 reproduces Figure 3: speedup upper bound when compression's
// capacity is free (zero decompression latency).
func fig3Table(s *Suite) (*stats.Table, error) {
	t := stats.NewTable("workload", "cat", "BDI-cap-only", "SC-cap-only")
	var bdis, scs []float64
	for _, name := range Workloads() {
		cat, _ := Category(name)
		b, err := s.Speedup(name, StaticBDI, Variant{CapacityOnly: true})
		if err != nil {
			return nil, err
		}
		c, err := s.Speedup(name, StaticSC, Variant{CapacityOnly: true})
		if err != nil {
			return nil, err
		}
		if cat == trace.CSens {
			bdis = append(bdis, b)
			scs = append(scs, c)
		}
		t.AddRow(name, cat.String(), b, c)
	}
	t.AddRow("GEOMEAN(C-Sens)", "", stats.Geomean(bdis), stats.Geomean(scs))
	return t, nil
}

// Fig3 renders the table.
func Fig3(s *Suite) (string, error) { return renderTable(fig3Table)(s) }

// Fig4 reproduces Figure 4: slowdown when decompression latency applies
// but capacity does not.
func fig4Table(s *Suite) (*stats.Table, error) {
	t := stats.NewTable("workload", "cat", "BDI-lat-only", "SC-lat-only")
	for _, name := range Workloads() {
		cat, _ := Category(name)
		b, err := s.Speedup(name, StaticBDI, Variant{LatencyOnly: true})
		if err != nil {
			return nil, err
		}
		c, err := s.Speedup(name, StaticSC, Variant{LatencyOnly: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(name, cat.String(), b, c)
	}
	return t, nil
}

// Fig4 renders the table.
func Fig4(s *Suite) (string, error) { return renderTable(fig4Table)(s) }

// Fig5 reproduces Figure 5: SS's latency-tolerance estimate over time.
func Fig5(s *Suite) (string, error) {
	res, err := s.Run("SS", LatteCC, Variant{SampleSeries: true})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "SS latency tolerance over time (SM0, %d samples)\n", res.ToleranceSeries.Len())
	fmt.Fprintf(&b, "%s\n\n", stats.Sparkline(res.ToleranceSeries.Points(), 72))
	t := stats.NewTable("cycle", "tolerance")
	for _, p := range res.ToleranceSeries.Points() {
		t.AddRow(p.Cycle, p.Value)
	}
	b.WriteString(t.String())
	return b.String(), nil
}

// Fig6 reproduces Figure 6: potential performance (a) and energy (b)
// impact of Static-BDI, Static-SC, and the adaptive scheme, C-Sens.
func fig6Table(s *Suite) (*stats.Table, error) {
	t := stats.NewTable("workload", "BDI-spd", "SC-spd", "LATTE-spd", "BDI-energy", "SC-energy", "LATTE-energy")
	p := energy.DefaultParams()
	for _, name := range CSensNames() {
		base := s.MustRun(name, Uncompressed, Variant{})
		eb := energy.Evaluate(base, p)
		row := []interface{}{name}
		var spd, en []float64
		for _, pol := range []Policy{StaticBDI, StaticSC, LatteCC} {
			r := s.MustRun(name, pol, Variant{})
			spd = append(spd, float64(base.Cycles)/float64(r.Cycles))
			en = append(en, energy.Normalized(energy.Evaluate(r, p), eb))
		}
		row = append(row, spd[0], spd[1], spd[2], en[0], en[1], en[2])
		t.AddRow(row...)
	}
	return t, nil
}

// Fig6 renders the table.
func Fig6(s *Suite) (string, error) { return renderTable(fig6Table)(s) }

// Tab2 prints the simulated configuration (Table II).
func tab2Table(s *Suite) (*stats.Table, error) {
	cfg := s.Config()
	t := stats.NewTable("parameter", "value")
	t.AddRow("Num. of SMs", cfg.NumSMs)
	t.AddRow("Max warps per SM", cfg.MaxWarpsPerSM)
	t.AddRow("Max blocks per SM", cfg.MaxBlocksPerSM)
	t.AddRow("Schedulers per SM", cfg.SchedulersPerSM)
	t.AddRow("Warp size", cfg.WarpSize)
	t.AddRow("L1 data cache", fmt.Sprintf("%dKB/SM, %dB lines, %d-way",
		cfg.Cache.SizeBytes/1024, cfg.Cache.LineSize, cfg.Cache.Ways))
	t.AddRow("L2 cache", fmt.Sprintf("%dKB, %d banks, %d-way",
		cfg.Mem.L2SizeBytes/1024, cfg.Mem.L2Banks, cfg.Mem.L2Ways))
	t.AddRow("Min L2 latency", cfg.Mem.L2Latency)
	t.AddRow("Min DRAM latency", cfg.Mem.L2Latency+cfg.Mem.DRAMLatency)
	t.AddRow("Warp scheduler", "GTO")
	t.AddRow("MSHRs per SM", cfg.MSHRs)
	t.AddRow("L1 ports", cfg.L1Ports)
	return t, nil
}

// Tab2 renders the table.
func Tab2(s *Suite) (string, error) { return renderTable(tab2Table)(s) }

// Tab3 prints the benchmark suite (Table III).
func tab3Table(s *Suite) (*stats.Table, error) {
	t := stats.NewTable("abbr", "category", "kernels", "approx-insts")
	for _, w := range workload.All() {
		var insts int
		for _, k := range w.Kernels() {
			perWarp := 0
			p := k.Program(0, 0)
			for {
				if _, ok := p.Next(); !ok {
					break
				}
				perWarp++
			}
			insts += perWarp * k.Blocks * k.WarpsPerBlock
		}
		t.AddRow(w.Name(), w.Category().String(), len(w.Kernels()), insts)
	}
	return t, nil
}

// Tab3 renders the table.
func Tab3(s *Suite) (string, error) { return renderTable(tab3Table)(s) }

// fig11Policies is the Figure 11 policy set.
var fig11Policies = []Policy{StaticBDI, StaticSC, LatteCC, KernelOpt}

// Fig11 reproduces Figure 11: speedup over the uncompressed baseline.
func fig11Table(s *Suite) (*stats.Table, error) {
	header := []string{"workload", "cat"}
	for _, p := range fig11Policies {
		header = append(header, string(p))
	}
	t := stats.NewTable(header...)
	agg := map[Policy][]float64{}
	for _, name := range Workloads() {
		cat, _ := Category(name)
		row := []interface{}{name, cat.String()}
		for _, p := range fig11Policies {
			spd, err := s.Speedup(name, p, Variant{})
			if err != nil {
				return nil, err
			}
			row = append(row, spd)
			if cat == trace.CSens {
				agg[p] = append(agg[p], spd)
			}
		}
		t.AddRow(row...)
	}
	row := []interface{}{"GEOMEAN", "C-Sens"}
	for _, p := range fig11Policies {
		row = append(row, stats.Geomean(agg[p]))
	}
	t.AddRow(row...)
	return t, nil
}

// Fig11 renders the table.
func Fig11(s *Suite) (string, error) { return renderTable(fig11Table)(s) }

// Fig12 reproduces Figure 12: L1 miss reduction per policy.
func fig12Table(s *Suite) (*stats.Table, error) {
	header := []string{"workload", "cat"}
	for _, p := range fig11Policies {
		header = append(header, string(p))
	}
	t := stats.NewTable(header...)
	agg := map[Policy][]float64{}
	for _, name := range Workloads() {
		cat, _ := Category(name)
		row := []interface{}{name, cat.String()}
		for _, p := range fig11Policies {
			mr, err := s.MissReduction(name, p)
			if err != nil {
				return nil, err
			}
			row = append(row, mr)
			if cat == trace.CSens {
				agg[p] = append(agg[p], mr)
			}
		}
		t.AddRow(row...)
	}
	row := []interface{}{"MEAN", "C-Sens"}
	for _, p := range fig11Policies {
		row = append(row, stats.Mean(agg[p]))
	}
	t.AddRow(row...)
	return t, nil
}

// Fig12 renders the table.
func Fig12(s *Suite) (string, error) { return renderTable(fig12Table)(s) }

// Fig13 reproduces Figure 13: GPU energy normalized to the baseline.
func fig13Table(s *Suite) (*stats.Table, error) {
	pols := []Policy{StaticBDI, StaticSC, LatteCC}
	header := []string{"workload", "cat"}
	for _, p := range pols {
		header = append(header, string(p))
	}
	t := stats.NewTable(header...)
	params := energy.DefaultParams()
	agg := map[Policy][]float64{}
	for _, name := range Workloads() {
		cat, _ := Category(name)
		base := energy.Evaluate(s.MustRun(name, Uncompressed, Variant{}), params)
		row := []interface{}{name, cat.String()}
		for _, p := range pols {
			e := energy.Normalized(energy.Evaluate(s.MustRun(name, p, Variant{}), params), base)
			row = append(row, e)
			if cat == trace.CSens {
				agg[p] = append(agg[p], e)
			}
		}
		t.AddRow(row...)
	}
	row := []interface{}{"MEAN", "C-Sens"}
	for _, p := range pols {
		row = append(row, stats.Mean(agg[p]))
	}
	t.AddRow(row...)
	return t, nil
}

// Fig13 renders the table.
func Fig13(s *Suite) (string, error) { return renderTable(fig13Table)(s) }

// Fig14 reproduces Figure 14: the breakdown of LATTE-CC's energy savings
// for C-Sens workloads.
func fig14Table(s *Suite) (*stats.Table, error) {
	t := stats.NewTable("workload", "static", "data-movement", "mem-hierarchy", "exec", "codec-cost", "net")
	params := energy.DefaultParams()
	var sums energy.SavingsBreakdown
	n := 0
	for _, name := range CSensNames() {
		base := energy.Evaluate(s.MustRun(name, Uncompressed, Variant{}), params)
		run := energy.Evaluate(s.MustRun(name, LatteCC, Variant{}), params)
		sv := energy.Savings(run, base)
		t.AddRow(name, sv.Static, sv.DataMovement, sv.MemHierarchy, sv.Exec, sv.CodecCost, sv.Net)
		sums.Add(sv)
		n++
	}
	mean := sums.Scale(1 / float64(n))
	t.AddRow("MEAN", mean.Static, mean.DataMovement, mean.MemHierarchy, mean.Exec, mean.CodecCost, mean.Net)
	return t, nil
}

// Fig14 renders the table.
func Fig14(s *Suite) (string, error) { return renderTable(fig14Table)(s) }

// Fig15 reproduces Figure 15: fraction of execution where LATTE-CC's
// decision agrees with Kernel-OPT's, and the performance delta.
func fig15Table(s *Suite) (*stats.Table, error) {
	t := stats.NewTable("workload", "agree-frac", "perf-delta(KernelOPT - LATTE)")
	for _, name := range CSensNames() {
		latte := s.MustRun(name, LatteCC, Variant{})
		sched, err := s.kernelOptSchedule(name, Variant{})
		if err != nil {
			return nil, err
		}
		agree, total := 0, 0
		for i, m := range latte.EPLog {
			ki := 0
			if i < len(latte.EPKernels) {
				ki = int(latte.EPKernels[i])
			}
			if ki >= len(sched) {
				ki = len(sched) - 1
			}
			if ki >= 0 && sched[ki] == m {
				agree++
			}
			total++
		}
		frac := 0.0
		if total > 0 {
			frac = float64(agree) / float64(total)
		}
		lspd, _ := s.Speedup(name, LatteCC, Variant{})
		kspd, _ := s.Speedup(name, KernelOpt, Variant{})
		t.AddRow(name, frac, kspd-lspd)
	}
	return t, nil
}

// Fig15 renders the table.
func Fig15(s *Suite) (string, error) { return renderTable(fig15Table)(s) }

// Fig16 reproduces Figure 16: SS's effective cache capacity over time for
// Static-BDI, Static-SC, and LATTE-CC.
func Fig16(s *Suite) (string, error) {
	var b strings.Builder
	for _, p := range []Policy{StaticBDI, StaticSC, LatteCC} {
		res, err := s.Run("SS", p, Variant{SampleSeries: true})
		if err != nil {
			return "", err
		}
		pts := res.CapacitySeries.Points()
		var avg float64
		for _, pt := range pts {
			avg += pt.Value
		}
		if len(pts) > 0 {
			avg /= float64(len(pts))
		}
		fmt.Fprintf(&b, "%-12s avg effective capacity %.2fx (%d samples)\n", p, avg, len(pts))
	}
	res, err := s.Run("SS", LatteCC, Variant{SampleSeries: true})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\nLATTE-CC capacity over time:\n%s\n\n", stats.Sparkline(res.CapacitySeries.Points(), 72))
	b.WriteString("LATTE-CC capacity series:\n")
	t := stats.NewTable("cycle", "effective-capacity-x")
	for _, p := range res.CapacitySeries.Points() {
		t.AddRow(p.Cycle, p.Value)
	}
	b.WriteString(t.String())
	return b.String(), nil
}

// Fig17 reproduces Figure 17: LATTE-CC against the tolerance-blind
// adaptive baselines, C-Sens workloads.
func fig17Table(s *Suite) (*stats.Table, error) {
	pols := []Policy{AdaptiveHits, AdaptiveCMP, LatteCC}
	header := []string{"workload"}
	for _, p := range pols {
		header = append(header, string(p)+"-spd", string(p)+"-missred")
	}
	t := stats.NewTable(header...)
	agg := map[Policy][]float64{}
	for _, name := range CSensNames() {
		row := []interface{}{name}
		for _, p := range pols {
			spd, err := s.Speedup(name, p, Variant{})
			if err != nil {
				return nil, err
			}
			mr, _ := s.MissReduction(name, p)
			row = append(row, spd, mr)
			agg[p] = append(agg[p], spd)
		}
		t.AddRow(row...)
	}
	row := []interface{}{"GEOMEAN"}
	for _, p := range pols {
		row = append(row, stats.Geomean(agg[p]), "")
	}
	t.AddRow(row...)
	return t, nil
}

// Fig17 renders the table.
func Fig17(s *Suite) (string, error) { return renderTable(fig17Table)(s) }

// Fig18 reproduces Figure 18: LATTE-CC with BDI+BPC component codecs.
func fig18Table(s *Suite) (*stats.Table, error) {
	t := stats.NewTable("workload", "LATTE-CC", "LATTE-CC-BDI-BPC")
	var a, b []float64
	for _, name := range CSensNames() {
		l, err := s.Speedup(name, LatteCC, Variant{})
		if err != nil {
			return nil, err
		}
		bp, err := s.Speedup(name, LatteBDIBPC, Variant{})
		if err != nil {
			return nil, err
		}
		a = append(a, l)
		b = append(b, bp)
		t.AddRow(name, l, bp)
	}
	t.AddRow("GEOMEAN", stats.Geomean(a), stats.Geomean(b))
	return t, nil
}

// Fig18 renders the table.
func Fig18(s *Suite) (string, error) { return renderTable(fig18Table)(s) }

// Sens48K reproduces the Section V-E cache-size sensitivity: the same
// comparison with a 48KB L1 (the alternative NVIDIA carve-out).
func sens48KTable(s *Suite) (*stats.Table, error) {
	cfg := s.Config()
	cfg.Cache.SizeBytes = 48 * 1024
	big := s.child(cfg)
	big.Prefetch(cross(CSensNames(), []Policy{Uncompressed, StaticBDI, LatteCC}, Variant{})...)
	if err := big.RunAll(); err != nil {
		return nil, err
	}
	t := stats.NewTable("workload", "Static-BDI", "LATTE-CC")
	var bs, ls []float64
	for _, name := range CSensNames() {
		b, err := big.Speedup(name, StaticBDI, Variant{})
		if err != nil {
			return nil, err
		}
		l, err := big.Speedup(name, LatteCC, Variant{})
		if err != nil {
			return nil, err
		}
		bs, ls = append(bs, b), append(ls, l)
		t.AddRow(name, b, l)
	}
	t.AddRow("GEOMEAN", stats.Geomean(bs), stats.Geomean(ls))
	return t, nil
}

// Sens48K renders the table.
func Sens48K(s *Suite) (string, error) { return renderTable(sens48KTable)(s) }

// writePolicyWorkloads are the store-carrying benchmarks of the
// Section IV-C3 write-policy study.
var writePolicyWorkloads = []string{"FWT", "BP", "WC", "SR1", "SS", "KM"}

// WritePolicy verifies the paper's Section IV-C3 claim that the L1 write
// policy has negligible performance impact, by re-running store-carrying
// workloads with a write-through L1 (write hits expand compressed lines
// and may evict neighbours) against the default write-avoid policy.
func writePolicyTable(s *Suite) (*stats.Table, error) {
	cfg := s.Config()
	cfg.WriteThroughL1 = true
	wt := s.child(cfg)
	wt.Prefetch(writePolicyRuns()...)
	if err := wt.RunAll(); err != nil {
		return nil, err
	}
	t := stats.NewTable("workload", "write-avoid", "write-through", "delta%%")
	for _, name := range writePolicyWorkloads {
		a, err := s.Speedup(name, LatteCC, Variant{})
		if err != nil {
			return nil, err
		}
		b, err := wt.Speedup(name, LatteCC, Variant{})
		if err != nil {
			return nil, err
		}
		t.AddRow(name, a, b, 100*(b/a-1))
	}

	// Worst-case bound: a kernel that repeatedly stores into a resident,
	// compressed working set — every store is a write hit that expands a
	// compressed line. Real workloads sit far from this corner.
	stress := &workload.Spec{
		WName: "WSTRESS", Cat: trace.CSens,
		Regions: []workload.Region{{Start: 0, Lines: 1 << 13, Style: workload.StyleDictFloat, Seed: 77, Dict: 64}},
		KernelSeq: []workload.KernelSpec{{
			Name: "stress", Blocks: 60, WarpsPerBlock: 8,
			Phases: []workload.Phase{
				{Kind: workload.PhaseReuse, Region: 0, Iters: 600, ALU: 2, WSLines: 10},
				{Kind: workload.PhaseStore, Region: 0, Iters: 300, ALU: 1},
				{Kind: workload.PhaseReuse, Region: 0, Iters: 600, ALU: 2, WSLines: 10},
			},
		}},
	}
	stressSpeedup := func(cfg sim.Config) (float64, error) {
		baseRes, err := RunWorkload(cfg, stress, Uncompressed)
		if err != nil {
			return 0, err
		}
		res, err := RunWorkload(cfg, stress, LatteCC)
		if err != nil {
			return 0, err
		}
		return float64(baseRes.Cycles) / float64(res.Cycles), nil
	}
	a, err := stressSpeedup(s.Config())
	if err != nil {
		return nil, err
	}
	bCfg := s.Config()
	bCfg.WriteThroughL1 = true
	bv, err := stressSpeedup(bCfg)
	if err != nil {
		return nil, err
	}
	t.AddRow("WSTRESS(bound)", a, bv, 100*(bv/a-1))
	return t, nil
}

// WritePolicy renders the table.
func WritePolicy(s *Suite) (string, error) { return renderTable(writePolicyTable)(s) }

// SensParams sweeps LATTE-CC's own parameters (Section IV-C3 choices) on
// SS: the EP length, the number of dedicated sampling sets, and the
// decompressor initiation interval.
func sensParamsTable(s *Suite) (*stats.Table, error) {
	base, err := s.Run("SS", Uncompressed, Variant{})
	if err != nil {
		return nil, err
	}
	w, err := workload.ByName("SS")
	if err != nil {
		return nil, err
	}
	latteSpeedup := func(cfg sim.Config, mutate func(*core.Config)) float64 {
		res := sim.New(cfg, w, func(n int) modes.Controller {
			c := core.DefaultConfig(n)
			if mutate != nil {
				mutate(&c)
			}
			return core.New(c)
		}).Run()
		return float64(base.Cycles) / float64(res.Cycles)
	}

	t := stats.NewTable("parameter", "value", "SS-speedup")
	for _, ep := range []uint64{64, 128, 256, 512, 1024} {
		ep := ep
		t.AddRow("EP length (accesses)", ep, latteSpeedup(s.Config(), func(c *core.Config) { c.EPAccesses = ep }))
	}
	for _, ded := range []int{1, 2, 4, 8} {
		ded := ded
		t.AddRow("dedicated sets/mode", ded, latteSpeedup(s.Config(), func(c *core.Config) { c.DedicatedSetsPerMode = ded }))
	}
	for _, ii := range []uint64{1, 2, 4, 8} {
		cfg := s.Config()
		cfg.Cache.DecompInitInterval = ii
		t.AddRow("decompressor II (cycles)", ii, latteSpeedup(cfg, nil))
	}
	return t, nil
}

// SensParams renders the table.
func SensParams(s *Suite) (string, error) { return renderTable(sensParamsTable)(s) }

// ablationWorkloads pick a representative C-Sens pair (one SC-affine,
// one BDI-affine) plus a latency-critical C-InSens victim.
var ablationWorkloads = []string{"SS", "FW", "NW"}

// Ablation quantifies the design choices DESIGN.md sections 4-5 call
// out, on the ablationWorkloads trio.
func Ablation(s *Suite) (string, error) {
	var b strings.Builder
	b.WriteString("Ablations on SS (SC-affine), FW (BDI-affine), NW (latency-critical):\n\n")
	names := ablationWorkloads
	t := stats.NewTable("ablation", "SS", "FW", "NW")

	row := func(label string, run func(name string) (float64, error)) error {
		cells := []interface{}{label}
		for _, n := range names {
			v, err := run(n)
			if err != nil {
				return err
			}
			cells = append(cells, v)
		}
		t.AddRow(cells...)
		return nil
	}

	speedupWith := func(suite *Suite, name string) (float64, error) {
		return suite.Speedup(name, LatteCC, Variant{})
	}

	// The three child machines (unbounded decompressor, round-robin
	// scheduler, decompressed-line buffer) are independent of the main
	// suite; pre-submit their run sets through one shared pool so the
	// row-by-row rendering below is all cache hits.
	cfg := s.Config()
	cfg.Cache.UnboundedDecompressor = true
	noQueue := s.child(cfg)
	rrCfg := s.Config()
	rrCfg.Scheduler = sim.SchedRR
	rr := s.child(rrCfg)
	bufCfg := s.Config()
	bufCfg.Cache.DecompBufferEntries = 8
	buf := s.child(bufCfg)
	for _, c := range []*Suite{noQueue, rr, buf} {
		c.Prefetch(ablationRuns()...)
	}
	if err := RunAllSuites(s.Jobs, noQueue, rr, buf); err != nil {
		return "", err
	}

	// Default configuration.
	if err := row("default", func(n string) (float64, error) { return speedupWith(s, n) }); err != nil {
		return "", err
	}

	// 1. Unbounded decompressor (Equation 3 queue term removed).
	if err := row("no-decomp-queue", func(n string) (float64, error) { return speedupWith(noQueue, n) }); err != nil {
		return "", err
	}

	// 2. Paper-literal controller layout: learning first (cold-biased
	// sampling), no warmup decontamination, no sampling backoff.
	if err := row("paper-literal-controller", func(n string) (float64, error) {
		return latteVariantSpeedup(s, n, func(c *core.Config) {
			c.LearningStartEP = 0
			c.WarmupEPs = 0
			c.SampleEveryPeriods = 0
		})
	}); err != nil {
		return "", err
	}

	// 3. No hit-count carryover EP (Section III-B1's generational-reuse
	// argument).
	if err := row("no-carryover", func(n string) (float64, error) {
		return latteVariantSpeedup(s, n, func(c *core.Config) { c.CarryoverEPs = 0 })
	}); err != nil {
		return "", err
	}

	// 4. No sampling backoff (pay the sampling overhead every period).
	if err := row("no-sampling-backoff", func(n string) (float64, error) {
		return latteVariantSpeedup(s, n, func(c *core.Config) { c.SampleEveryPeriods = 0 })
	}); err != nil {
		return "", err
	}

	// 5. Round-robin scheduler (Section III-B2's simpler tolerance case).
	if err := row("rr-scheduler", func(n string) (float64, error) { return speedupWith(rr, n) }); err != nil {
		return "", err
	}

	// 6. Decompressed-line buffer extension (beyond the paper): 8 entries
	// of recently decompressed lines short-circuit repeat decompressions.
	if err := row("decomp-buffer-8", func(n string) (float64, error) { return speedupWith(buf, n) }); err != nil {
		return "", err
	}

	b.WriteString(t.String())
	return b.String(), nil
}

// latteVariantSpeedup runs a workload under a LATTE-CC controller with a
// modified configuration, against the suite's cached baseline.
func latteVariantSpeedup(s *Suite, name string, mutate func(*core.Config)) (float64, error) {
	base, err := s.Run(name, Uncompressed, Variant{})
	if err != nil {
		return 0, err
	}
	w, err := workload.ByName(name)
	if err != nil {
		return 0, err
	}
	res := sim.New(s.Config(), w, func(n int) modes.Controller {
		cfg := core.DefaultConfig(n)
		mutate(&cfg)
		return core.New(cfg)
	}).Run()
	return float64(base.Cycles) / float64(res.Cycles), nil
}
