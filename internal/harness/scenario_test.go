package harness

import (
	"path/filepath"
	"testing"

	"lattecc/internal/modes"
	"lattecc/internal/sim"
	"lattecc/internal/tracefile"
)

// Scenario conformance/calibration suite: qualitative assertions that
// each scenario class exercises the controller behaviour it was designed
// to exercise, on the full Table II machine where the paper's parameters
// are calibrated. Thresholds carry generous margins over measured values
// (noted inline) so fidelity-neutral refactors don't trip them.

// fullMachine gates the calibration tests the way the other fidelity
// checks are gated: they assert simulator behaviour, not concurrency, so
// -short and -race runs skip them.
func fullMachine(t *testing.T) *Suite {
	t.Helper()
	if testing.Short() {
		t.Skip("full-machine calibration check")
	}
	if raceEnabled {
		t.Skip("pure fidelity check, no concurrency; race overhead for nothing")
	}
	return NewSuite(sim.DefaultConfig())
}

// dominantModePerKernel folds SM0's EP decision log by kernel index and
// returns each kernel's most-decided mode.
func dominantModePerKernel(r sim.Result) map[int32]modes.Mode {
	counts := map[int32][modes.NumModes]int{}
	for i, m := range r.EPLog {
		k := r.EPKernels[i]
		c := counts[k]
		c[m]++
		counts[k] = c
	}
	out := make(map[int32]modes.Mode, len(counts))
	for k, c := range counts {
		best, bestN := modes.None, -1
		for m, n := range c {
			if n > bestN {
				best, bestN = modes.Mode(m), n
			}
		}
		out[k] = best
	}
	return out
}

// TestScenarioMultiKernelCalibration: MKS's three kernels have opposed
// mode affinities, so (a) the adaptive controller's per-kernel dominant
// decision must change at a kernel boundary, (b) the Kernel-OPT schedule
// must use at least two distinct modes, and (c) the per-kernel oracle
// must strictly beat every single static policy — the property that
// makes Kernel-OPT meaningful at all, unreachable by any single-kernel
// workload. (Measured: dominant HighCap/LowLat/LowLat; schedule
// [HighCap LowLat HighCap]; Kernel-OPT 224k cycles vs best-static 247k.)
func TestScenarioMultiKernelCalibration(t *testing.T) {
	s := fullMachine(t)
	r := s.MustRun("MKS", LatteCC, Variant{})
	if len(r.Kernels) != 3 {
		t.Fatalf("MKS ran %d kernels, want 3", len(r.Kernels))
	}
	seen := map[int32]bool{}
	for _, k := range r.EPKernels {
		seen[k] = true
	}
	if len(seen) < 3 {
		t.Fatalf("EP decisions span %d kernels, want all 3 (EPKernels broken?)", len(seen))
	}
	dom := dominantModePerKernel(r)
	if dom[0] == dom[1] && dom[1] == dom[2] {
		t.Errorf("dominant mode never changes across MKS kernels (all %v); boundaries invisible to the controller", dom[0])
	}
	if dom[0] != modes.HighCap {
		t.Errorf("MKS dict kernel dominant mode = %v, want HighCap (deep ALU cover + dictionary values)", dom[0])
	}
	if dom[1] != modes.LowLat {
		t.Errorf("MKS stride kernel dominant mode = %v, want LowLat (no latency cover)", dom[1])
	}

	sched, err := s.kernelOptSchedule("MKS", Variant{})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[modes.Mode]bool{}
	for _, m := range sched {
		distinct[m] = true
	}
	if len(distinct) < 2 {
		t.Errorf("Kernel-OPT schedule %v uses one mode; MKS must force a per-kernel choice", sched)
	}

	ko := s.MustRun("MKS", KernelOpt, Variant{})
	for _, p := range []Policy{Uncompressed, StaticBDI, StaticSC} {
		st := s.MustRun("MKS", p, Variant{})
		if ko.Cycles >= st.Cycles {
			t.Errorf("Kernel-OPT (%d cycles) does not beat %s (%d): per-kernel choice is not meaningful",
				ko.Cycles, p, st.Cycles)
		}
	}
}

// TestScenarioConcurrentMixCalibration: MKM stripes two opposed programs
// through one launch, so SM0's decision log must mix modes within the
// single kernel (no clean per-kernel signal exists), while the adaptive
// run still beats the uncompressed baseline. (Measured: decisions
// 13/30/23 across the three modes; speedup 1.27.)
func TestScenarioConcurrentMixCalibration(t *testing.T) {
	s := fullMachine(t)
	r := s.MustRun("MKM", LatteCC, Variant{})
	if len(r.Kernels) != 1 {
		t.Fatalf("MKM ran %d kernels, want 1 (Mix is intra-launch)", len(r.Kernels))
	}
	distinct := map[modes.Mode]bool{}
	for _, m := range r.EPLog {
		distinct[m] = true
	}
	if len(distinct) < 2 {
		t.Errorf("MKM decision log uses a single mode (%v); the block mix should deny a stable winner", r.EPLog)
	}
	spd, err := s.Speedup("MKM", LatteCC, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if spd < 1.1 {
		t.Errorf("MKM LATTE-CC speedup %.3f < 1.1: the mix should still profit from compression", spd)
	}
}

// TestScenarioAdversarialBoundedLag: AVF/AVS flip compressibility at a
// cadence incommensurate with the EP, the worst case for the predictor.
// The controller must (a) actually chase (mode switches occur and both
// flip targets win EPs somewhere), (b) not thrash — switches stay a
// small fraction of total adaptive decisions, because hysteresis and the
// incumbent margin damp the lag — and (c) never fall materially below
// the uncompressed baseline. (Measured: AVF 77 switches / 1350
// decisions, speedup 1.02; AVS 103/1515, 1.03.)
func TestScenarioAdversarialBoundedLag(t *testing.T) {
	s := fullMachine(t)
	cases := []struct {
		name      string
		flipModes [2]modes.Mode // the two regimes the flip alternates between
	}{
		{"AVF", [2]modes.Mode{modes.LowLat, modes.None}},
		{"AVS", [2]modes.Mode{modes.HighCap, modes.None}},
	}
	for _, tc := range cases {
		r := s.MustRun(tc.name, LatteCC, Variant{})
		var decisions uint64
		for _, n := range r.ModeEPs {
			decisions += n
		}
		if decisions == 0 || r.Switches == 0 {
			t.Errorf("%s: switches=%d decisions=%d; the adversary should force some chasing", tc.name, r.Switches, decisions)
			continue
		}
		for _, m := range tc.flipModes {
			if r.ModeEPs[m] == 0 {
				t.Errorf("%s: mode %v never wins an EP; both flip regimes should surface", tc.name, m)
			}
		}
		if frac := float64(r.Switches) / float64(decisions); frac > 0.25 {
			t.Errorf("%s: switch fraction %.3f > 0.25 — predictor thrashing, hysteresis not damping the flips", tc.name, frac)
		}
		spd, err := s.Speedup(tc.name, LatteCC, Variant{})
		if err != nil {
			t.Fatal(err)
		}
		if spd < 0.95 {
			t.Errorf("%s: LATTE-CC speedup %.3f < 0.95 — the adversary drives the controller below baseline", tc.name, spd)
		}
	}
}

// TestScenarioCategoriesStayCalibrated applies the Table III
// classification criterion (C-Sens iff a 4x L1 yields >20% speedup) to
// every new scenario, including the committed trace-corpus replays —
// each scenario's declared category must survive measurement. (Measured
// 4x speedups: MKS 2.78, MKM 1.80, AVF 4.88, AVS 3.20, DPS 1.33,
// TSS 1.26 vs DPI 1.01, TBO 1.00.)
func TestScenarioCategoriesStayCalibrated(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine classification check")
	}
	if raceEnabled {
		t.Skip("pure fidelity check, no concurrency; race overhead for nothing")
	}
	cfg := sim.DefaultConfig()
	cfg4 := cfg
	cfg4.Cache.SizeBytes *= 4
	s, s4 := NewSuite(cfg), NewSuite(cfg4)
	check := func(name string, wantSens bool, spd float64) {
		t.Helper()
		if wantSens && spd <= 1.2 {
			t.Errorf("%s declared C-Sens but 4x-cache speedup is %.3f", name, spd)
		}
		if !wantSens && spd > 1.2 {
			t.Errorf("%s declared C-InSens but 4x-cache speedup is %.3f", name, spd)
		}
	}
	for _, tc := range []struct {
		name string
		sens bool
	}{
		{"MKS", true}, {"MKM", true}, {"AVF", true}, {"AVS", true}, {"DPS", true},
		{"DPI", false},
	} {
		base := s.MustRun(tc.name, Uncompressed, Variant{})
		big := s4.MustRun(tc.name, Uncompressed, Variant{})
		check(tc.name, tc.sens, float64(base.Cycles)/float64(big.Cycles))
	}
	// Corpus replays run uncached through RunWorkload (no registry write,
	// so this test cannot perturb the package's workload list).
	ws, err := tracefile.LoadCorpus(filepath.Join("..", "..", "testdata", "traces"))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		base, err := RunWorkload(cfg, w, Uncompressed)
		if err != nil {
			t.Fatal(err)
		}
		big, err := RunWorkload(cfg4, w, Uncompressed)
		if err != nil {
			t.Fatal(err)
		}
		wantSens := w.Category().String() == "C-Sens"
		check(w.Name(), wantSens, float64(base.Cycles)/float64(big.Cycles))
	}
}

// TestScenarioDeterminismPins: every scenario class must produce
// bit-identical StateHashes whether its runs execute serially or through
// a 4-worker suite pool — the harness-level determinism contract the new
// workloads ride on. Runs on a tiny machine (and under -race in CI,
// where it doubles as the data-race gate over the scenario paths).
func TestScenarioDeterminismPins(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.NumSMs = 2
	cfg.MaxInstructions = raceScaled(60_000)
	reqs := []RunRequest{
		{Workload: "MKS", Policy: LatteCC},
		{Workload: "MKS", Policy: KernelOpt},
		{Workload: "MKM", Policy: LatteCC},
		{Workload: "AVF", Policy: LatteCC},
		{Workload: "AVS", Policy: StaticSC},
		{Workload: "DPS", Policy: LatteCC},
		{Workload: "DPI", Policy: StaticBDI},
	}
	hashes := make([][]uint64, 2)
	for i, jobs := range []int{1, 4} {
		s := NewSuite(cfg)
		s.Jobs = jobs
		s.Prefetch(reqs...)
		if err := s.RunAll(); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for _, r := range reqs {
			res, err := s.Run(r.Workload, r.Policy, r.Variant)
			if err != nil {
				t.Fatalf("jobs=%d %s/%s: %v", jobs, r.Workload, r.Policy, err)
			}
			hashes[i] = append(hashes[i], res.StateHash())
		}
	}
	for k, r := range reqs {
		if hashes[0][k] != hashes[1][k] {
			t.Errorf("%s/%s: StateHash differs between -jobs 1 (%#x) and -jobs 4 (%#x)",
				r.Workload, r.Policy, hashes[0][k], hashes[1][k])
		}
	}

	// Corpus replays: double-run equality through the uncached custom
	// path (RunWorkload), covering load→chunk→replay end to end.
	ws, err := tracefile.LoadCorpus(filepath.Join("..", "..", "testdata", "traces"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("committed trace corpus is empty")
	}
	for _, w := range ws {
		a, err := RunWorkload(cfg, w, LatteCC)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunWorkload(cfg, w, LatteCC)
		if err != nil {
			t.Fatal(err)
		}
		if a.StateHash() != b.StateHash() {
			t.Errorf("%s: repeated replay differs: %#x vs %#x", w.Name(), a.StateHash(), b.StateHash())
		}
	}
}
