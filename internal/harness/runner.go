package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lattecc/internal/sim"
)

// RunRequest names one simulation for Prefetch/RunAll.
type RunRequest struct {
	Workload string
	Policy   Policy
	Variant  Variant
}

// Prefetch queues requests for a later RunAll. Duplicates are queued
// once, preserving first-submission order; experiments that share runs
// (Figures 11-14 share every (workload, policy) pair) can therefore all
// submit their full run set and the pool still simulates each pair
// exactly once.
func (s *Suite) Prefetch(reqs ...RunRequest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range reqs {
		k := key{workload: r.Workload, policy: r.Policy, variant: r.Variant}
		if s.queued[k] {
			continue
		}
		s.queued[k] = true
		s.queue = append(s.queue, r)
	}
}

// requeue returns an undispatched request to the queue after a
// cancelled RunAll. The request's queued-mark is still set from its
// original Prefetch, so it must bypass the dedup check.
func (s *Suite) requeue(r RunRequest) {
	s.mu.Lock()
	s.queue = append(s.queue, r)
	s.mu.Unlock()
}

// RunAll drains every prefetched request through a bounded worker pool
// of Jobs workers and returns the failures joined in submission order.
// Results land in the suite's cache, so the serial rendering pass that
// follows sees only cache hits — output is byte-identical to a fully
// serial execution regardless of completion order.
func (s *Suite) RunAll() error { return RunAllSuites(s.Jobs, s) }

// RunAllContext is RunAll under a context: a cancelled or expired ctx
// stops the pool from dispatching further queued runs (see
// RunAllSuitesContext for the exact semantics).
func (s *Suite) RunAllContext(ctx context.Context) error {
	return RunAllSuitesContext(ctx, s.Jobs, s)
}

// RunAllSuites drains the prefetched sets of several suites through one
// shared pool of jobs workers (<= 0 means GOMAXPROCS), for tools that
// sweep a parameter across per-configuration suites. Tasks execute in
// any order; errors are joined deterministically in submission order.
func RunAllSuites(jobs int, suites ...*Suite) error {
	return RunAllSuitesContext(context.Background(), jobs, suites...)
}

// RunAllSuitesContext is RunAllSuites under a context. Cancellation is
// dispatch-level: workers stop claiming queued runs once ctx is done,
// but a simulation already in flight runs to completion (the cycle loop
// is not interruptible — determinism would otherwise depend on when the
// cancel landed). Undispatched requests are returned to their suites'
// queues so a later RunAll, or an inline Run, can still serve them; the
// returned error joins any per-run failures with ctx's error.
func RunAllSuitesContext(ctx context.Context, jobs int, suites ...*Suite) error {
	type task struct {
		s   *Suite
		req RunRequest
	}
	var tasks []task
	for _, s := range suites {
		s.mu.Lock()
		for _, r := range s.queue {
			tasks = append(tasks, task{s: s, req: r})
		}
		s.queue = nil
		s.mu.Unlock()
	}
	if len(tasks) == 0 {
		return ctx.Err()
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(tasks) {
		jobs = len(tasks)
	}

	// Wall-clock time below is display-only (progress/ETA); nothing
	// cycle-level ever observes it.
	start := time.Now()
	total := len(tasks)
	errs := make([]error, len(tasks))
	var next, done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				t := tasks[i]
				runStart := time.Now()
				res, err := t.s.Run(t.req.Workload, t.req.Policy, t.req.Variant)
				d := int(done.Add(1))
				if err != nil {
					errs[i] = fmt.Errorf("%s/%s: %w", t.req.Workload, t.req.Policy, err)
					continue
				}
				if rep := t.s.Reporter; rep != nil {
					rep.RunDone(RunEvent{
						Workload: t.req.Workload,
						Policy:   t.req.Policy,
						Variant:  t.req.Variant,
						Result:   res,
						Done:     d,
						Total:    total,
						Elapsed:  time.Since(start),
						Duration: time.Since(runStart),
					})
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// Tasks past the final claim counter were never dispatched;
		// hand them back (the queued-marks are still set, so Prefetch
		// keeps deduplicating against them).
		if n := int(next.Load()); n < total {
			for _, t := range tasks[n:] {
				t.s.requeue(t.req)
			}
		}
		errs = append(errs, fmt.Errorf("harness: run pool cancelled: %w", err))
	}
	return errors.Join(errs...)
}

// RunEvent describes one run drained by RunAll.
type RunEvent struct {
	Workload string
	Policy   Policy
	Variant  Variant
	Result   sim.Result
	// Done and Total report pool progress; Elapsed is the pool's
	// wall-clock age when the run completed, Duration this run's own
	// wall-clock cost (the latency a serving layer should histogram).
	Done     int
	Total    int
	Elapsed  time.Duration
	Duration time.Duration
}

// Reporter receives completion events from RunAll. Implementations must
// be safe for concurrent use.
type Reporter interface {
	RunDone(RunEvent)
}

// NewProgressReporter returns a Reporter that prints one line per
// completed run with [done/total] progress and an ETA extrapolated from
// the pool's throughput so far. It serializes writes internally.
func NewProgressReporter(w io.Writer) Reporter {
	return &progressReporter{w: w}
}

type progressReporter struct {
	mu sync.Mutex
	w  io.Writer
}

func (p *progressReporter) RunDone(e RunEvent) {
	eta := ""
	if e.Done > 0 && e.Done < e.Total {
		left := time.Duration(float64(e.Elapsed) / float64(e.Done) * float64(e.Total-e.Done))
		eta = fmt.Sprintf("  eta %s", left.Round(time.Second))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "[%3d/%3d] ran %-4s %-18s cycles=%9d ipc=%6.2f hit=%.3f%s\n",
		e.Done, e.Total, e.Workload, e.Policy,
		e.Result.Cycles, e.Result.IPC(), e.Result.Cache.HitRate(), eta)
}
