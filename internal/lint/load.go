package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load parses and type-checks the packages selected by patterns
// (relative to the module root: "./..." for everything, or "./internal/sim"
// style paths) and returns them ready for Run.
//
// The loader is deliberately stdlib-only: module-internal imports
// resolve to directories under the module root, standard-library imports
// are type-checked from $GOROOT/src with function bodies skipped. This
// avoids both go/packages (an external module) and importer.Default()
// (which needs prebuilt export data modern toolchains no longer ship).
func Load(root string, patterns []string) ([]*Package, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := selectDirs(root, patterns)
	if err != nil {
		return nil, err
	}
	imp := newModuleImporter(modPath, root)
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := imp.loadForAnalysis(dir)
		if err != nil {
			if err == errNoGoFiles {
				continue
			}
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// modulePath reads the module directive from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s/go.mod: no module directive", root)
}

// selectDirs expands patterns into package directories under root.
func selectDirs(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		base := root
		recursive := false
		if pat == "..." {
			recursive = true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base = filepath.Join(root, rest)
			recursive = true
		} else if pat != "" && pat != "." {
			base = filepath.Join(root, pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

var errNoGoFiles = fmt.Errorf("no buildable Go files")

// moduleImporter resolves import paths to source directories and
// type-checks them on demand, caching results. It implements
// types.Importer for the dependency side of the analysis.
type moduleImporter struct {
	fset    *token.FileSet
	modPath string
	modRoot string
	cache   map[string]*types.Package
}

func newModuleImporter(modPath, modRoot string) *moduleImporter {
	return &moduleImporter{
		fset:    token.NewFileSet(),
		modPath: modPath,
		modRoot: modRoot,
		cache:   map[string]*types.Package{},
	}
}

// dirFor maps an import path to its source directory.
func (im *moduleImporter) dirFor(path string) (string, error) {
	if path == im.modPath {
		return im.modRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, im.modPath+"/"); ok {
		return filepath.Join(im.modRoot, rest), nil
	}
	dir := filepath.Join(build.Default.GOROOT, "src", path)
	if _, err := os.Stat(dir); err != nil {
		return "", fmt.Errorf("cannot resolve import %q: %w", path, err)
	}
	return dir, nil
}

// Import satisfies types.Importer. Dependencies are checked with
// function bodies skipped: the analyses only need their exported shape.
func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := im.cache[path]; ok {
		return pkg, nil
	}
	dir, err := im.dirFor(path)
	if err != nil {
		return nil, err
	}
	files, err := im.parseDir(dir, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	cfg := types.Config{
		Importer:         im,
		IgnoreFuncBodies: true,
		// Dependencies only need to be complete enough to describe
		// their exported API; swallow their internal errors.
		Error: func(error) {},
	}
	pkg, _ := cfg.Check(path, im.fset, files, nil)
	im.cache[path] = pkg
	return pkg, nil
}

// loadForAnalysis fully type-checks one module directory, bodies
// included, and wraps it as a lint.Package.
func (im *moduleImporter) loadForAnalysis(dir string) (*Package, error) {
	rel, err := filepath.Rel(im.modRoot, dir)
	if err != nil {
		return nil, err
	}
	pkgPath := im.modPath
	if rel != "." {
		pkgPath = im.modPath + "/" + filepath.ToSlash(rel)
	}
	files, err := im.parseDir(dir, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErr error
	cfg := types.Config{
		Importer: im,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	// Note: the result is deliberately NOT stored in im.cache. Cached
	// entries form one shared type universe for cross-package imports;
	// replacing one mid-run would split type identity (two distinct
	// compress.Codec objects) and break later checks. Each analysis
	// package is its own root over that stable dependency cache.
	tpkg, _ := cfg.Check(pkgPath, im.fset, files, info)
	if typeErr != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, typeErr)
	}
	return &Package{
		PkgPath: pkgPath,
		Fset:    im.fset,
		Files:   files,
		Info:    info,
		Types:   tpkg,
	}, nil
}

// parseDir parses the build-tag-selected non-test Go files of dir.
func (im *moduleImporter) parseDir(dir string, mode parser.Mode) ([]*ast.File, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, noGo := err.(*build.NoGoError); noGo {
			return nil, errNoGoFiles
		}
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, errNoGoFiles
	}
	return files, nil
}
