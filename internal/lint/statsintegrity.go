package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// checkStatsIntegrity flags `x.field += <float>` accumulation in
// cycle-level and harness packages. Floating-point summation is not
// associative: ad-hoc accumulators scattered through simulation code
// make the reported metric depend on evaluation order, which is exactly
// what internal/stats (Welford-style Running, EWMA) and
// internal/energy's breakdown types exist to centralise.
func checkStatsIntegrity(p *Package) []Finding {
	if !cyclePackages[p.PkgPath] && !harnessPackages[p.PkgPath] {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		if p.isTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ADD_ASSIGN || len(as.Lhs) != 1 {
				return true
			}
			sel, ok := as.Lhs[0].(*ast.SelectorExpr)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(sel)
			if t == nil {
				return true
			}
			if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsFloat != 0 {
				out = append(out, Finding{
					Pos:     p.Fset.Position(as.Pos()),
					Rule:    "stats-integrity",
					Message: fmt.Sprintf("float accumulation into %s.%s outside internal/stats; use stats.Running/EWMA or an accumulator type owned by the metric's package", exprString(sel.X), sel.Sel.Name),
				})
			}
			return true
		})
	}
	return out
}

// exprString renders a short form of simple receiver expressions for
// messages; anything complex collapses to "…".
func exprString(x ast.Expr) string {
	switch x := x.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	default:
		return "…"
	}
}
