package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// goroutine-hygiene: the daemon, the harness, and (since PR 7) the
// epoch engine own every goroutine the simulator spawns, and the
// shutdown paths (drain/deadline/SIGTERM in the daemon, pool close at
// the end of Sim.Run) only work if each of them has a bounded
// lifecycle. The rule enforces two properties in internal/server,
// internal/harness, and internal/sim:
//
//  1. Every `go` statement's target must be resolvable in-package (a
//     function literal or a same-package function/method) and its body
//     must contain at least one lifecycle signal: a ctx.Done()/ctx.Err()
//     check, a WaitGroup Done/Wait, a close(), or a channel operation.
//     A goroutine with none of those can neither be told to stop nor
//     observed to finish — exactly the leak -race cannot see.
//
//  2. lostcancel: a context.CancelFunc returned by WithCancel /
//     WithTimeout / WithDeadline must not be dropped (assigned to _) and
//     must be referenced somewhere in the enclosing function.
//
// The evidence is name-based (method names Done/Wait/Err, channel
// sends/receives) so the rule also works on parse-only fixtures; with
// type info the context package is verified for lostcancel.

// goroutinePackages are the packages whose goroutines must be bounded.
var goroutinePackages = map[string]bool{
	"lattecc/internal/server":  true,
	"lattecc/internal/harness": true,
	// The cluster router (PR 8) spawns a health-probe loop and one
	// status watcher per in-flight job; drain only terminates if every
	// one of them has a bounded lifecycle.
	"lattecc/internal/cluster": true,
	// The epoch engine's worker pool (PR 7). Concurrency below the
	// determinism boundary is otherwise banned outright by the
	// determinism rule; here it is legal but must still be bounded.
	"lattecc/internal/sim": true,
	// The persistent result store (PR 9) is hit concurrently by every
	// pool worker on a suite miss; its locking is also policed by the
	// lock-contract rule (//lint:mutex nocalls + //lint:guards).
	"lattecc/internal/resultstore": true,
}

func checkGoroutineHygiene(p *Package) []Finding {
	if !goroutinePackages[p.PkgPath] {
		return nil
	}
	var out []Finding
	decls := packageFuncBodies(p)
	for _, file := range p.Files {
		if p.isTestFile(file.Pos()) {
			continue
		}
		for _, fd := range enclosingFuncs(file) {
			if fd.Body == nil {
				continue
			}
			out = append(out, checkGoStmts(p, decls, fd)...)
			out = append(out, checkLostCancel(p, fd)...)
		}
	}
	return out
}

// packageFuncBodies indexes every function/method body by name so `go
// s.worker()` can be resolved without type information.
func packageFuncBodies(p *Package) map[string]*ast.BlockStmt {
	bodies := map[string]*ast.BlockStmt{}
	for _, file := range p.Files {
		for _, fd := range enclosingFuncs(file) {
			if fd.Body != nil {
				bodies[fd.Name.Name] = fd.Body
			}
		}
	}
	return bodies
}

func checkGoStmts(p *Package, decls map[string]*ast.BlockStmt, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body := goTargetBody(p, decls, gs.Call)
		switch {
		case body == nil:
			out = append(out, Finding{
				Pos:  p.Fset.Position(gs.Pos()),
				Rule: "goroutine-hygiene",
				Message: fmt.Sprintf("goroutine target %s is not resolvable in this package; its lifecycle cannot be verified as bounded",
					exprString(gs.Call.Fun)),
			})
		case !boundedLifecycle(body):
			out = append(out, Finding{
				Pos:  p.Fset.Position(gs.Pos()),
				Rule: "goroutine-hygiene",
				Message: fmt.Sprintf("goroutine %s has no bounded lifecycle: no ctx.Done/Err check, WaitGroup Done/Wait, close, or channel operation in its body",
					exprString(gs.Call.Fun)),
			})
		}
		return true
	})
	return out
}

// goTargetBody resolves the spawned callable to a body we can inspect:
// a function literal, or a same-package function or method.
func goTargetBody(p *Package, decls map[string]*ast.BlockStmt, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		return decls[fun.Name]
	case *ast.SelectorExpr:
		// s.worker(): with type info, require the method to live in this
		// package; parse-only falls back to the name index.
		if obj, ok := p.Info.Uses[fun.Sel]; ok {
			fn, isFn := obj.(*types.Func)
			if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != p.PkgPath {
				return nil
			}
		}
		return decls[fun.Sel.Name]
	}
	return nil
}

// lifecycleMethodNames are method calls accepted as evidence that the
// goroutine participates in a shutdown/completion protocol.
var lifecycleMethodNames = map[string]bool{
	"Done": true, // ctx.Done(), wg.Done()
	"Wait": true, // wg.Wait()
	"Err":  true, // ctx.Err()
}

// boundedLifecycle reports whether a goroutine body shows any lifecycle
// signal. Nested function literals count: the signal is reachable from
// the spawn site.
func boundedLifecycle(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.SelectorExpr:
				if lifecycleMethodNames[fun.Sel.Name] {
					found = true
				}
			case *ast.Ident:
				if fun.Name == "close" {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.SendStmt:
			found = true
		case *ast.RangeStmt:
			// for v := range ch receives until the channel closes.
			found = true
		}
		return !found
	})
	return found
}

// cancelFactoryNames are the context constructors that return a
// CancelFunc which must not be lost.
var cancelFactoryNames = map[string]bool{
	"WithCancel":   true,
	"WithTimeout":  true,
	"WithDeadline": true,
}

func checkLostCancel(p *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !cancelFactoryNames[sel.Sel.Name] {
			return true
		}
		if obj, ok := p.Info.Uses[sel.Sel]; ok {
			fn, isFn := obj.(*types.Func)
			if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
		} else if base, ok := sel.X.(*ast.Ident); !ok || base.Name != "context" {
			return true
		}
		cancel, ok := as.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		if cancel.Name == "_" {
			out = append(out, Finding{
				Pos:     p.Fset.Position(cancel.Pos()),
				Rule:    "goroutine-hygiene",
				Message: fmt.Sprintf("the context.CancelFunc from %s is discarded; the context and its timer leak until the parent is done", sel.Sel.Name),
			})
			return true
		}
		if !cancelUsed(p, fd, cancel) {
			out = append(out, Finding{
				Pos:     p.Fset.Position(cancel.Pos()),
				Rule:    "goroutine-hygiene",
				Message: fmt.Sprintf("%s is never called; defer %s() after %s", cancel.Name, cancel.Name, sel.Sel.Name),
			})
		}
		return true
	})
	return out
}

// cancelUsed reports whether the cancel variable is referenced anywhere
// else in the enclosing function (a defer cancel() or an error-path
// call both count). With type info the check is object-identity-exact;
// parse-only falls back to name matching.
func cancelUsed(p *Package, fd *ast.FuncDecl, def *ast.Ident) bool {
	obj := types.Object(p.Info.Defs[def])
	if obj == nil {
		obj = p.Info.Uses[def] // plain = assignment to an existing var
	}
	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == def {
			return true
		}
		if obj != nil {
			if p.Info.Uses[id] == obj {
				used = true
			}
		} else if id.Name == def.Name {
			used = true
		}
		return !used
	})
	return used
}
