// Package lint is LATTE-CC's simulator-aware static-analysis pass. It
// layers seven project-specific rules on top of go vet's generic
// checks, each encoding an invariant the cycle-level model depends on
// but the compiler cannot enforce:
//
//   - determinism: cycle-level packages must not read wall-clock time,
//     draw from the shared math/rand source, or iterate Go maps (whose
//     order is deliberately randomised) — any of these makes two runs of
//     the same seed diverge.
//   - panic-audit: panics are reserved for configuration/geometry
//     validation during construction; hot simulation paths and harness
//     I/O must return errors instead.
//   - config-mutation: Config structs are immutable after construction;
//     methods must not write their fields. Structs embedding sync.Mutex
//     must not be copied by value.
//   - stats-integrity: floating-point metric accumulation (+= on float
//     fields) belongs in internal/stats (or internal/energy), not
//     scattered through simulation code where summation order varies.
//   - lock-contract: fields annotated //lint:guards mu may only be
//     touched while mu is held; mutexes annotated //lint:mutex nocalls
//     may not be held across any call; and the module-wide lock-order
//     companion check (lock-order) rejects acquisition cycles and
//     self-deadlocks.
//   - goroutine-hygiene: every go statement in server/harness must have
//     a bounded lifecycle, and context.CancelFuncs must not be dropped.
//   - hotpath-alloc: //lint:hotpath functions must not contain
//     allocating constructs; the escape gate (lattelint -escape) pins
//     the compiler's -m=2 heap-escape output for them to a committed
//     baseline.
//
// Findings are suppressed line-by-line with a justification comment:
//
//	//lint:allow <rule> <reason>
//
// placed on the offending line or the line directly above it. The
// cmd/lattelint binary drives this package over the module tree.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// Package is one type-checked package presented to the rules.
type Package struct {
	PkgPath string // import path, e.g. lattecc/internal/sim
	Fset    *token.FileSet
	Files   []*ast.File
	Info    *types.Info
	Types   *types.Package
}

// Rule is one analyzer. Check reports violations; the driver handles
// //lint:allow suppression and ordering.
type Rule struct {
	Name  string
	Doc   string
	Check func(p *Package) []Finding
}

// Rules returns every registered analyzer.
func Rules() []Rule {
	return []Rule{
		{
			Name:  "determinism",
			Doc:   "no wall-clock, global rand, or map iteration in cycle-level packages",
			Check: checkDeterminism,
		},
		{
			Name:  "panic-audit",
			Doc:   "panic() only in construction/validation paths",
			Check: checkPanicAudit,
		},
		{
			Name:  "config-mutation",
			Doc:   "Config fields are read-only after construction; never copy mutex-bearing structs",
			Check: checkConfigMutation,
		},
		{
			Name:  "stats-integrity",
			Doc:   "float metric accumulation belongs in internal/stats",
			Check: checkStatsIntegrity,
		},
		{
			Name:  "lock-contract",
			Doc:   "//lint:guards fields only touched under their mutex; //lint:mutex nocalls held across no calls",
			Check: checkLockContract,
		},
		{
			Name:  "goroutine-hygiene",
			Doc:   "go statements in server/harness/sim have bounded lifecycles; context cancels are not dropped",
			Check: checkGoroutineHygiene,
		},
		{
			Name:  "hotpath-alloc",
			Doc:   "//lint:hotpath functions contain no allocating constructs",
			Check: checkHotpathAlloc,
		},
	}
}

// cyclePackages are the bit-deterministic core of the simulator: any
// nondeterminism here changes simulation results, not just logs.
var cyclePackages = map[string]bool{
	"lattecc/internal/sim":      true,
	"lattecc/internal/cache":    true,
	"lattecc/internal/core":     true,
	"lattecc/internal/mem":      true,
	"lattecc/internal/compress": true,
	"lattecc/internal/workload": true,
}

// harnessPackages additionally hold experiment orchestration and file
// I/O; they may be slower but must still fail via errors, not panics.
var harnessPackages = map[string]bool{
	"lattecc/internal/harness": true,
}

// determinismOnlyPackages sit below the determinism boundary — their
// results must be a pure function of (config, seed) so divergences
// replay — but are exempt from the performance-oriented rules
// (panic-audit, stats-integrity): the reference models in the oracle
// are deliberately naive, never run inside a sweep, and panic loudly on
// internal drift by design.
var determinismOnlyPackages = map[string]bool{
	"lattecc/internal/oracle": true,
}

// Run executes every rule over every package, drops findings covered by
// //lint:allow comments, and returns the rest in file/line order.
func Run(pkgs []*Package) []Finding {
	var out []Finding
	allow := allowSet{}
	for _, p := range pkgs {
		mergeAllows(allow, collectAllows(p))
	}
	for _, p := range pkgs {
		for _, r := range Rules() {
			for _, f := range r.Check(p) {
				if allow.covers(f) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	// The lock-order analysis is module-wide (the harness/server call
	// graph crosses package boundaries), so it runs over the whole
	// package set rather than per package.
	for _, f := range checkLockOrder(pkgs) {
		if allow.covers(f) {
			continue
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return out
}

// allowSet records, per file and line, which rules are suppressed.
type allowSet map[string]map[int]map[string]bool

// mergeAllows folds src into dst; filenames are globally unique, so
// per-package allow sets merge without collisions.
func mergeAllows(dst, src allowSet) {
	for file, lines := range src {
		dst[file] = lines
	}
}

// covers reports whether a //lint:allow comment for the finding's rule
// sits on the finding's line or the line directly above it.
func (a allowSet) covers(f Finding) bool {
	lines := a[f.Pos.Filename]
	if lines == nil {
		return false
	}
	return lines[f.Pos.Line][f.Rule] || lines[f.Pos.Line-1][f.Rule]
}

// collectAllows scans comments for "//lint:allow <rule> <reason>"
// directives. A missing reason still suppresses but is itself reported
// by the driver as a style finding — justifications are mandatory.
func collectAllows(p *Package) allowSet {
	set := allowSet{}
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					set[pos.Filename] = byLine
				}
				rules := byLine[pos.Line]
				if rules == nil {
					rules = map[string]bool{}
					byLine[pos.Line] = rules
				}
				rules[fields[0]] = true
			}
		}
	}
	return set
}

// MissingReasons reports //lint:allow directives that omit the
// mandatory justification text after the rule name.
func MissingReasons(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				if fields := strings.Fields(text); len(fields) < 2 {
					out = append(out, Finding{
						Pos:     p.Fset.Position(c.Pos()),
						Rule:    "allow-reason",
						Message: "//lint:allow requires a rule name and a justification",
					})
				}
			}
		}
	}
	return out
}

// isTestFile reports whether the file the node lives in is a _test.go
// file; test-only code may use maps and clocks freely.
func (p *Package) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// enclosingFuncs pairs each top-level function with its name so rules
// can apply per-function policies (constructors vs hot paths).
func enclosingFuncs(file *ast.File) []*ast.FuncDecl {
	var fns []*ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			fns = append(fns, fd)
		}
	}
	return fns
}
