package lint

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Escape gate: the hotpath-alloc rule's second layer. The driver
// (cmd/lattelint -escape) runs
//
//	go build -gcflags=-m=2 <packages>
//
// from the module root and feeds the compiler's escape-analysis
// diagnostics through ParseEscapes. EscapeReport then renders one
// stanza per //lint:hotpath function — "clean" or the list of escape
// messages attributed to its body — and the committed
// internal/lint/testdata/escapes_baseline.txt pins the expected report.
// Any drift (a new heap escape in an annotated function, a function
// added or removed from the annotated set) fails CI with a line diff.
//
// The report deliberately omits line numbers: unrelated edits that move
// a function within its file must not churn the baseline. Attribution
// of a diagnostic to a function still uses exact file:line ranges
// internally.
//
// Only "escapes to heap" and "moved to heap" diagnostics count.
// "leaking param" lines describe how pointers flow through a function —
// a property of the signature, not an allocation — and "does not
// escape" lines are the proofs of cleanliness themselves.

// EscapeDiag is one heap-escape diagnostic from the compiler.
type EscapeDiag struct {
	File string // slash path as printed by go build (module-root-relative)
	Line int
	Msg  string // diagnostic text without position or trailing colon
}

// escapeLineRE matches top-level -m diagnostics; indented flow-detail
// lines from -m=2 deliberately do not match.
var escapeLineRE = regexp.MustCompile(`^(\S+\.go):(\d+):(\d+): (.+)$`)

// ParseEscapes extracts heap-escape diagnostics from `go build
// -gcflags=-m=2` output.
func ParseEscapes(r io.Reader) ([]EscapeDiag, error) {
	var out []EscapeDiag
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := escapeLineRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := strings.TrimSuffix(m[4], ":")
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		line, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("lint: bad escape diagnostic line %q", sc.Text())
		}
		out = append(out, EscapeDiag{
			File: strings.TrimPrefix(strings.ReplaceAll(m[1], "\\", "/"), "./"),
			Line: line,
			Msg:  msg,
		})
	}
	return out, sc.Err()
}

// EscapeReport renders the gate's canonical report: one stanza per
// annotated function, sorted, with each function's escape diagnostics
// (deduplicated and sorted) indented below it.
func EscapeReport(funcs []HotpathFunc, diags []EscapeDiag) string {
	var b strings.Builder
	b.WriteString("# lattelint escape baseline: go build -gcflags=-m=2 over //lint:hotpath functions.\n")
	b.WriteString("# \"clean\" = zero heap escapes. Regenerate with: go run ./cmd/lattelint -escape -escape-update\n")
	for _, fn := range funcs {
		msgs := map[string]bool{}
		for _, d := range diags {
			if d.File == fn.File && d.Line >= fn.StartLine && d.Line <= fn.EndLine {
				msgs[d.Msg] = true
			}
		}
		if len(msgs) == 0 {
			fmt.Fprintf(&b, "%s.%s: clean\n", fn.PkgPath, fn.Name)
			continue
		}
		sorted := make([]string, 0, len(msgs))
		for m := range msgs {
			sorted = append(sorted, m)
		}
		sort.Strings(sorted)
		fmt.Fprintf(&b, "%s.%s: %d escape(s)\n", fn.PkgPath, fn.Name, len(sorted))
		for _, m := range sorted {
			fmt.Fprintf(&b, "    %s\n", m)
		}
	}
	return b.String()
}

// DiffReports compares the committed baseline against the current
// report and returns a line-oriented diff ("" when identical). The diff
// is an LCS-free two-pointer walk — report lines are ordered by the
// same sort, so it stays readable.
func DiffReports(baseline, current string) string {
	if baseline == current {
		return ""
	}
	oldLines := splitLines(baseline)
	newLines := splitLines(current)
	oldSet := map[string]int{}
	for _, l := range oldLines {
		oldSet[l]++
	}
	newSet := map[string]int{}
	for _, l := range newLines {
		newSet[l]++
	}
	var b strings.Builder
	for _, l := range oldLines {
		if newSet[l] > 0 {
			newSet[l]--
			continue
		}
		fmt.Fprintf(&b, "-%s\n", l)
	}
	for _, l := range newLines {
		if oldSet[l] > 0 {
			oldSet[l]--
			continue
		}
		fmt.Fprintf(&b, "+%s\n", l)
	}
	return b.String()
}

func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
