package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// checkPanicAudit flags panic() calls outside construction/validation
// paths. In cycle-level packages a panic on the hot path kills a
// multi-hour sweep; in the harness it hides file-I/O failures the cmd/
// binaries should surface as errors. Panics remain legitimate in:
//
//   - constructors (New*) and deliberate Must* wrappers, where a bad
//     geometry means the experiment itself is misconfigured;
//   - validation helpers (names containing Validate/validate/check),
//     which exist to fail fast on impossible configurations.
func checkPanicAudit(p *Package) []Finding {
	if !cyclePackages[p.PkgPath] && !harnessPackages[p.PkgPath] {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		if p.isTestFile(file.Pos()) {
			continue
		}
		for _, fn := range enclosingFuncs(file) {
			if fn.Body == nil || panicAllowedIn(fn.Name.Name) {
				continue
			}
			name := fn.Name.Name
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" && isBuiltinUse(p, id) {
					out = append(out, Finding{
						Pos:     p.Fset.Position(call.Pos()),
						Rule:    "panic-audit",
						Message: fmt.Sprintf("panic in %s: not a constructor or validation path; return an error instead", name),
					})
				}
				return true
			})
		}
	}
	return out
}

// isBuiltinUse reports whether the identifier resolves to the builtin
// of the same name (and not, say, a local function shadowing it).
func isBuiltinUse(p *Package, id *ast.Ident) bool {
	obj := p.Info.Uses[id]
	if obj == nil {
		return true // no type info: assume builtin rather than miss findings
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// panicAllowedIn reports whether a function name marks a path where
// panicking on impossible input is the contract.
func panicAllowedIn(name string) bool {
	if strings.HasPrefix(name, "New") || strings.HasPrefix(name, "Must") {
		return true
	}
	lower := strings.ToLower(name)
	return strings.Contains(lower, "validate") || strings.Contains(lower, "check")
}
