package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// checkConfigMutation enforces two structural invariants:
//
//  1. Config structs are frozen after construction. Every simulator
//     component copies its Config at New() time; a method that later
//     writes a Config field silently desynchronises the component from
//     the settings the experiment recorded.
//  2. Structs embedding a sync.Mutex must never be copied by value —
//     the copy shares no lock state with the original, which is how
//     the harness's result map would silently lose its race
//     protection.
func checkConfigMutation(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		if p.isTestFile(file.Pos()) {
			continue
		}
		for _, fn := range enclosingFuncs(file) {
			if fn.Body == nil {
				continue
			}
			isMethod := fn.Recv != nil
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					// Constructors and validation methods may still fill
					// defaults; everything after that is frozen.
					if isMethod && !panicAllowedIn(fn.Name.Name) {
						for _, lhs := range n.Lhs {
							if tname, ok := writesConfigField(p, lhs); ok && !localConfigCopy(p, fn, lhs) {
								out = append(out, Finding{
									Pos:     p.Fset.Position(lhs.Pos()),
									Rule:    "config-mutation",
									Message: fmt.Sprintf("method %s writes %s field after construction; Config is frozen at New()", fn.Name.Name, tname),
								})
							}
						}
					}
					for i, rhs := range n.Rhs {
						if i < len(n.Lhs) {
							if tname, ok := copiesLockedStruct(p, rhs); ok {
								out = append(out, Finding{
									Pos:     p.Fset.Position(rhs.Pos()),
									Rule:    "config-mutation",
									Message: fmt.Sprintf("copies %s by value; it embeds a sync mutex whose state the copy will not share", tname),
								})
							}
						}
					}
				case *ast.RangeStmt:
					if n.Value != nil {
						if t := p.Info.TypeOf(n.X); t != nil {
							if elem := elementType(t); elem != nil && lockName(elem) != "" {
								out = append(out, Finding{
									Pos:     p.Fset.Position(n.Value.Pos()),
									Rule:    "config-mutation",
									Message: fmt.Sprintf("range copies %s elements by value; they embed a sync mutex", lockName(elem)),
								})
							}
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// writesConfigField reports whether lhs assigns into (a field of) a
// value whose named type ends in "Config" — either replacing the whole
// struct (c.cfg = x) or one field (c.cfg.LineSize = x).
func writesConfigField(p *Package, lhs ast.Expr) (string, bool) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// Field write: the base expression is Config-typed.
	if name := configTypeName(p.Info.TypeOf(sel.X)); name != "" {
		return name, true
	}
	// Whole-struct replacement: the selector itself is Config-typed and
	// selects a struct field (not a local variable).
	if name := configTypeName(p.Info.TypeOf(sel)); name != "" {
		if _, isField := p.Info.Selections[sel]; isField {
			return name, true
		}
	}
	return "", false
}

// localConfigCopy reports whether the written selector chain roots at a
// plain local variable other than the receiver: `cfg := s.cfg;
// cfg.X = y` builds a fresh config for construction and is allowed,
// while `s.cfg.X = y` mutates shared state and is not.
func localConfigCopy(p *Package, fn *ast.FuncDecl, lhs ast.Expr) bool {
	root := lhs
	for {
		sel, ok := root.(*ast.SelectorExpr)
		if !ok {
			break
		}
		root = sel.X
	}
	id, ok := root.(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	// Package-level variables are shared state, not local copies.
	if v.Parent() == p.Types.Scope() || v.Parent() == types.Universe {
		return false
	}
	// The receiver is how methods reach shared state; writes through it
	// are exactly what this rule exists to catch.
	if fn.Recv != nil {
		for _, field := range fn.Recv.List {
			for _, name := range field.Names {
				if p.Info.Defs[name] == obj {
					return false
				}
			}
		}
	}
	// A pointer-typed local still aliases the original struct.
	if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
		return false
	}
	return true
}

// configTypeName returns the type's name if it is a named struct type
// ending in "Config" (after stripping pointers), else "".
func configTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return ""
	}
	name := named.Obj().Name()
	if strings.HasSuffix(name, "Config") {
		return name
	}
	return ""
}

// copiesLockedStruct reports whether evaluating rhs produces a by-value
// copy of a mutex-bearing struct: dereferences (*p), plain variable
// reads, and field selections. Composite literals and function results
// are fresh values, not copies, and are exempt.
func copiesLockedStruct(p *Package, rhs ast.Expr) (string, bool) {
	switch rhs.(type) {
	case *ast.Ident, *ast.StarExpr, *ast.SelectorExpr, *ast.IndexExpr:
	default:
		return "", false
	}
	t := p.Info.TypeOf(rhs)
	if t == nil {
		return "", false
	}
	if name := lockName(t); name != "" {
		return name, true
	}
	return "", false
}

// lockName returns the named type's name when t (a value, not a
// pointer) is or contains a sync.Mutex/RWMutex, else "".
func lockName(t types.Type) string {
	named, ok := t.(*types.Named)
	if ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex" || obj.Name() == "WaitGroup") {
			return "sync." + obj.Name()
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if lockName(st.Field(i).Type()) != "" {
			if named != nil {
				return named.Obj().Name()
			}
			return "struct{...}"
		}
	}
	return ""
}

// elementType returns what a range yields as its second variable.
func elementType(t types.Type) types.Type {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Map:
		return u.Elem()
	}
	return nil
}
