package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// randConstructors are package-level math/rand functions that merely
// build deterministic generators from an explicit seed; everything else
// at package level draws from the shared, unseeded global source.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// checkDeterminism flags wall-clock reads, global math/rand draws, and
// map iteration inside cycle-level packages. All three make a run's
// result depend on something other than (config, seed, trace).
func checkDeterminism(p *Package) []Finding {
	if !cyclePackages[p.PkgPath] {
		return nil
	}
	var out []Finding
	report := func(n ast.Node, format string, args ...interface{}) {
		out = append(out, Finding{
			Pos:     p.Fset.Position(n.Pos()),
			Rule:    "determinism",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, file := range p.Files {
		if p.isTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pkgName, ok := importedPackage(p, n.X)
				if !ok {
					return true
				}
				switch pkgName.Imported().Path() {
				case "time":
					if n.Sel.Name == "Now" || n.Sel.Name == "Since" || n.Sel.Name == "Until" {
						report(n, "time.%s leaks wall-clock time into cycle-level state", n.Sel.Name)
					}
				case "math/rand", "math/rand/v2":
					if !randConstructors[n.Sel.Name] {
						report(n, "global rand.%s draws from the shared source; use an explicitly seeded *rand.Rand", n.Sel.Name)
					}
				}
			case *ast.RangeStmt:
				t := p.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					report(n, "range over map %s iterates in randomised order; sort the keys first", types.TypeString(t, types.RelativeTo(p.Types)))
				}
			}
			return true
		})
	}
	return out
}

// importedPackage resolves an expression to the package it names, if it
// is a bare package qualifier (e.g. the "time" in time.Now).
func importedPackage(p *Package, x ast.Expr) (*types.PkgName, bool) {
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return pn, ok
}
