package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
)

// randConstructors are package-level math/rand functions that merely
// build deterministic generators from an explicit seed; everything else
// at package level draws from the shared, unseeded global source.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// boundaryImports are serving-layer packages that must never leak below
// the determinism boundary. The daemon (internal/server) may read wall
// clocks and talk HTTP; the cycle-level model may not even *see* that
// layer — an import edge from a cycle package into the serving stack is
// the first step toward request state influencing simulation results.
var boundaryImports = map[string]string{
	"lattecc/internal/server":      "the serving daemon sits above the determinism boundary",
	"lattecc/internal/cluster":     "the cluster router sits above the determinism boundary, one layer above even the daemon",
	"lattecc/internal/harness":     "orchestration must depend on the model, never the reverse",
	"lattecc/internal/resultstore": "the persistent result store is an I/O layer above the determinism boundary; disk state must never feed back into the model",
	"net/http":                     "cycle-level code has no business speaking HTTP",
}

// parallelCyclePackages are cycle-level packages that may use sync
// primitives and goroutines: the epoch engine in internal/sim runs
// phase A of each cycle across a worker pool, which is legal because
// workers touch only SM-private state and merge at a deterministic
// barrier (DESIGN.md §12). Concurrency there is policed by
// goroutine-hygiene and the lock contracts instead of banned outright.
// Wall-clock time stays banned even here: a worker pool must never let
// scheduling influence results, and a clock read is exactly such an
// influence.
var parallelCyclePackages = map[string]bool{
	"lattecc/internal/sim": true,
}

// concurrencyImports bring scheduler-dependent execution into whatever
// package imports them. Below the determinism boundary that is only
// tolerable where a barrier protocol restores bit-identical results —
// i.e. in parallelCyclePackages.
var concurrencyImports = map[string]bool{
	"sync":        true,
	"sync/atomic": true,
}

// checkDeterminism flags wall-clock reads, global math/rand draws, map
// iteration, serving-layer imports, and — outside the epoch engine —
// goroutines and sync imports inside cycle-level packages. Any of
// these makes a run's result depend on something other than
// (config, seed, trace). The same constructs are deliberately legal in
// the layers above the boundary (internal/server, internal/harness,
// cmd/*): a daemon needs clocks and sockets; the model must not.
func checkDeterminism(p *Package) []Finding {
	if !cyclePackages[p.PkgPath] && !determinismOnlyPackages[p.PkgPath] {
		return nil
	}
	var out []Finding
	report := func(n ast.Node, format string, args ...interface{}) {
		out = append(out, Finding{
			Pos:     p.Fset.Position(n.Pos()),
			Rule:    "determinism",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, file := range p.Files {
		if p.isTestFile(file.Pos()) {
			continue
		}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, banned := boundaryImports[path]; banned {
				report(imp, "import of %s crosses the determinism boundary: %s", path, why)
			}
			if concurrencyImports[path] && cyclePackages[p.PkgPath] && !parallelCyclePackages[p.PkgPath] {
				report(imp, "import of %s brings scheduler-dependent concurrency into a cycle-level package; only the epoch engine (internal/sim) may coordinate goroutines", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pkgName, ok := importedPackage(p, n.X)
				if !ok {
					return true
				}
				switch pkgName.Imported().Path() {
				case "time":
					if n.Sel.Name == "Now" || n.Sel.Name == "Since" || n.Sel.Name == "Until" {
						report(n, "time.%s leaks wall-clock time into cycle-level state", n.Sel.Name)
					}
				case "math/rand", "math/rand/v2":
					// Type references (*rand.Rand in a signature) are not
					// draws; only calls through the package's global source
					// are.
					if _, isType := p.Info.Uses[n.Sel].(*types.TypeName); isType {
						return true
					}
					if !randConstructors[n.Sel.Name] {
						report(n, "global rand.%s draws from the shared source; use an explicitly seeded *rand.Rand", n.Sel.Name)
					}
				}
			case *ast.GoStmt:
				if cyclePackages[p.PkgPath] && !parallelCyclePackages[p.PkgPath] {
					report(n, "go statement spawns a goroutine inside a cycle-level package; only the epoch engine (internal/sim) may run the model concurrently")
				}
			case *ast.RangeStmt:
				t := p.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					report(n, "range over map %s iterates in randomised order; sort the keys first", types.TypeString(t, types.RelativeTo(p.Types)))
				}
			}
			return true
		})
	}
	return out
}

// importedPackage resolves an expression to the package it names, if it
// is a bare package qualifier (e.g. the "time" in time.Now).
func importedPackage(p *Package, x ast.Expr) (*types.PkgName, bool) {
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return pn, ok
}
