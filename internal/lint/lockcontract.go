package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lock-contract turns the prose locking comments in internal/harness and
// internal/server into machine-checked annotations:
//
//	//lint:guards mu      — on a struct field or package var: every read
//	                        or write must happen while mu is held.
//	//lint:mutex nocalls  — on the mutex itself: no function or method
//	                        call may happen while it is held (builtins,
//	                        type conversions, and sync/atomic operations
//	                        are exempt — none of them can block).
//
// The checker is flow-sensitive per function: it tracks the set of held
// mutexes statement by statement, forking the state at branches and
// merging with set-intersection, so the common
//
//	mu.Lock(); if hit { mu.Unlock(); return }; ...; mu.Unlock()
//
// shape is handled precisely. defer mu.Unlock() keeps the lock held to
// the end of the function. Loop bodies are analyzed once with the
// loop-entry state (locks are assumed balanced across iterations), and
// function literals spawned with `go` start with an empty held set.
//
// Identity is intentionally syntactic: the held set is keyed by the
// rendered receiver expression ("s.mu", "srv.admit"), so guarding
// s.results requires a lock of s.mu through the same base expression.
// Aliasing a suite pointer and locking through the alias defeats the
// checker; the repo's style (lock through the receiver) keeps this
// sound in practice.

// nameKey identifies a struct field by (type name, field name) for
// parse-only fixtures where go/types objects are unavailable.
type nameKey struct {
	recv  string
	field string
}

// lockContracts holds one package's collected annotations.
type lockContracts struct {
	fieldGuard map[types.Object]string // guarded field -> mutex field name
	nameGuard  map[nameKey]string      // parse-only fallback
	varGuard   map[types.Object]string // guarded package var -> mutex var name
	nocallsObj map[types.Object]bool   // mutex fields/vars declared nocalls
	nocallsKey map[nameKey]bool        // parse-only fallback (struct fields)
	nocallsVar map[string]bool         // parse-only fallback (package vars)
	errs       []Finding               // malformed/unsatisfiable annotations
}

func (c *lockContracts) empty() bool {
	return len(c.fieldGuard) == 0 && len(c.nameGuard) == 0 &&
		len(c.varGuard) == 0 && len(c.nocallsObj) == 0 &&
		len(c.nocallsKey) == 0 && len(c.nocallsVar) == 0
}

// directiveArgs extracts the arguments of a "//lint:<name> ..." comment
// from a comment group, e.g. directiveArgs(cg, "guards") -> "mu".
func directiveArgs(cg *ast.CommentGroup, name string) (string, bool) {
	if cg == nil {
		return "", false
	}
	prefix := "//lint:" + name
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, prefix)
		if !ok {
			continue
		}
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // e.g. //lint:guardsx
		}
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// fieldDirective checks both the doc comment above a field/spec and the
// trailing same-line comment.
func fieldDirective(doc, comment *ast.CommentGroup, name string) (string, bool) {
	if args, ok := directiveArgs(doc, name); ok {
		return args, true
	}
	return directiveArgs(comment, name)
}

// collectLockContracts walks the package's struct types and var blocks
// for //lint:guards and //lint:mutex annotations, validating that every
// named mutex actually exists alongside the guarded declaration.
func collectLockContracts(p *Package) *lockContracts {
	c := &lockContracts{
		fieldGuard: map[types.Object]string{},
		nameGuard:  map[nameKey]string{},
		varGuard:   map[types.Object]string{},
		nocallsObj: map[types.Object]bool{},
		nocallsKey: map[nameKey]bool{},
		nocallsVar: map[string]bool{},
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.TYPE:
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					c.collectStruct(p, ts.Name.Name, st)
				}
			case token.VAR:
				c.collectVars(p, gd)
			}
		}
	}
	return c
}

func (c *lockContracts) collectStruct(p *Package, typeName string, st *ast.StructType) {
	fields := map[string]bool{}
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			fields[n.Name] = true
		}
	}
	for _, f := range st.Fields.List {
		if mux, ok := fieldDirective(f.Doc, f.Comment, "guards"); ok {
			if mux == "" || !fields[mux] {
				c.errs = append(c.errs, Finding{
					Pos:     p.Fset.Position(f.Pos()),
					Rule:    "lock-contract",
					Message: fmt.Sprintf("//lint:guards names %q, which is not a field of %s", mux, typeName),
				})
			} else {
				for _, n := range f.Names {
					c.nameGuard[nameKey{typeName, n.Name}] = mux
					if obj := p.Info.Defs[n]; obj != nil {
						c.fieldGuard[obj] = mux
					}
				}
			}
		}
		if args, ok := fieldDirective(f.Doc, f.Comment, "mutex"); ok {
			if args != "nocalls" {
				c.errs = append(c.errs, Finding{
					Pos:     p.Fset.Position(f.Pos()),
					Rule:    "lock-contract",
					Message: fmt.Sprintf("unknown //lint:mutex flag %q (only \"nocalls\" is defined)", args),
				})
				continue
			}
			for _, n := range f.Names {
				c.nocallsKey[nameKey{typeName, n.Name}] = true
				if obj := p.Info.Defs[n]; obj != nil {
					c.nocallsObj[obj] = true
				}
			}
		}
	}
}

func (c *lockContracts) collectVars(p *Package, gd *ast.GenDecl) {
	names := map[string]bool{}
	for _, spec := range gd.Specs {
		if vs, ok := spec.(*ast.ValueSpec); ok {
			for _, n := range vs.Names {
				names[n.Name] = true
			}
		}
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if mux, ok := fieldDirective(vs.Doc, vs.Comment, "guards"); ok {
			if mux == "" || !names[mux] {
				c.errs = append(c.errs, Finding{
					Pos:     p.Fset.Position(vs.Pos()),
					Rule:    "lock-contract",
					Message: fmt.Sprintf("//lint:guards names %q, which is not declared in the same var block", mux),
				})
			} else {
				for _, n := range vs.Names {
					if obj := p.Info.Defs[n]; obj != nil {
						c.varGuard[obj] = mux
					}
				}
			}
		}
		if args, ok := fieldDirective(vs.Doc, vs.Comment, "mutex"); ok {
			if args != "nocalls" {
				c.errs = append(c.errs, Finding{
					Pos:     p.Fset.Position(vs.Pos()),
					Rule:    "lock-contract",
					Message: fmt.Sprintf("unknown //lint:mutex flag %q (only \"nocalls\" is defined)", args),
				})
				continue
			}
			for _, n := range vs.Names {
				c.nocallsVar[n.Name] = true
				if obj := p.Info.Defs[n]; obj != nil {
					c.nocallsObj[obj] = true
				}
			}
		}
	}
}

// heldLock is one mutex currently held on the path being analyzed.
type heldLock struct {
	nocalls bool
	id      string // global id ("pkg.Type.field" / "pkg.var"), "" if unresolved
}

// lockState maps rendered mutex expressions ("s.mu") to held locks.
type lockState map[string]heldLock

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s lockState) replaceWith(o lockState) {
	for k := range s {
		delete(s, k)
	}
	for k, v := range o {
		s[k] = v
	}
}

// intersectAll keeps only locks held on every non-terminated path.
func intersectAll(states []lockState) lockState {
	if len(states) == 0 {
		return lockState{}
	}
	out := states[0].clone()
	for _, st := range states[1:] {
		for k := range out {
			if _, ok := st[k]; !ok {
				delete(out, k)
			}
		}
	}
	return out
}

// checkLockContract is the per-package rule entry point: it validates
// annotations, then scans every non-test function for guarded-field
// accesses outside the lock and for calls made while a nocalls mutex is
// held.
func checkLockContract(p *Package) []Finding {
	c := collectLockContracts(p)
	out := c.errs
	if c.empty() {
		return out
	}
	for _, file := range p.Files {
		if p.isTestFile(file.Pos()) {
			continue
		}
		for _, fd := range enclosingFuncs(file) {
			if fd.Body == nil {
				continue
			}
			out = append(out, scanFuncLockContract(p, c, fd)...)
		}
	}
	return out
}

// receiverInfo extracts (type name, receiver name) from a method decl.
func receiverInfo(fd *ast.FuncDecl) (string, string) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "", ""
	}
	r := fd.Recv.List[0]
	t := r.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	typeName := ""
	if id, ok := t.(*ast.Ident); ok {
		typeName = id.Name
	}
	recvName := ""
	if len(r.Names) > 0 {
		recvName = r.Names[0].Name
	}
	return typeName, recvName
}

func scanFuncLockContract(p *Package, c *lockContracts, fd *ast.FuncDecl) []Finding {
	var out []Finding
	seen := map[string]bool{} // "line:message" — dedups x = append(x, ...) double hits
	report := func(f Finding) {
		key := fmt.Sprintf("%s:%d:%s", f.Pos.Filename, f.Pos.Line, f.Message)
		if !seen[key] {
			seen[key] = true
			out = append(out, f)
		}
	}
	recvType, recvName := receiverInfo(fd)
	sc := &lockScanner{p: p, c: c, recvType: recvType, recvName: recvName}
	sc.visit = func(n ast.Node, held lockState) {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			mux, owner, ok := sc.guardOf(n)
			if !ok {
				return
			}
			need := exprString(n.X) + "." + mux
			if _, held := held[need]; !held {
				report(Finding{
					Pos:  p.Fset.Position(n.Pos()),
					Rule: "lock-contract",
					Message: fmt.Sprintf("%s.%s is guarded by %s (//lint:guards) but accessed without holding %s",
						owner, n.Sel.Name, mux, need),
				})
			}
		case *ast.Ident:
			obj := p.Info.Uses[n]
			if obj == nil {
				return
			}
			mux, ok := c.varGuard[obj]
			if !ok {
				return
			}
			if _, held := held[mux]; !held {
				report(Finding{
					Pos:  p.Fset.Position(n.Pos()),
					Rule: "lock-contract",
					Message: fmt.Sprintf("package var %s is guarded by %s (//lint:guards) but accessed without holding it",
						n.Name, mux),
				})
			}
		case *ast.CallExpr:
			var lock string
			for key, h := range held {
				if h.nocalls {
					lock = key
					break
				}
			}
			if lock == "" || sc.exemptCall(n) {
				return
			}
			report(Finding{
				Pos:  p.Fset.Position(n.Pos()),
				Rule: "lock-contract",
				Message: fmt.Sprintf("call to %s while holding %s, which is declared //lint:mutex nocalls",
					exprString(n.Fun), lock),
			})
		}
	}
	sc.scanBody(fd.Body)
	return out
}

// guardOf resolves a selector expression to a guarded field, returning
// the mutex name and a description of the owning type.
func (sc *lockScanner) guardOf(n *ast.SelectorExpr) (mux, owner string, ok bool) {
	if sel := sc.p.Info.Selections[n]; sel != nil {
		if sel.Kind() != types.FieldVal {
			return "", "", false
		}
		mux, ok := sc.c.fieldGuard[sel.Obj()]
		if !ok {
			return "", "", false
		}
		return mux, exprString(n.X), true
	}
	// Parse-only fallback: receiver-based resolution inside methods.
	if id, isIdent := n.X.(*ast.Ident); isIdent && id.Name == sc.recvName && sc.recvName != "" {
		if mux, ok := sc.c.nameGuard[nameKey{sc.recvType, n.Sel.Name}]; ok {
			return mux, sc.recvName, true
		}
	}
	return "", "", false
}

// builtinNames covers the parse-only fallback for exemptCall.
var builtinNames = map[string]bool{
	"append": true, "cap": true, "clear": true, "close": true,
	"copy": true, "delete": true, "len": true, "make": true,
	"max": true, "min": true, "new": true, "panic": true,
	"print": true, "println": true, "recover": true,
}

// atomicMethodNames covers sync/atomic's method set for parse-only mode.
var atomicMethodNames = map[string]bool{
	"Load": true, "Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "Or": true, "And": true,
}

// exemptCall reports whether a call is allowed while a nocalls mutex is
// held: builtins, type conversions, and sync/atomic operations cannot
// block, so the critical section stays bounded.
func (sc *lockScanner) exemptCall(call *ast.CallExpr) bool {
	p := sc.p
	// Type conversion, e.g. time.Duration(x).
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := p.Info.Uses[fun]; ok {
			_, isBuiltin := obj.(*types.Builtin)
			return isBuiltin
		}
		return builtinNames[fun.Name] // parse-only fallback
	case *ast.SelectorExpr:
		if obj, ok := p.Info.Uses[fun.Sel]; ok {
			fn, isFn := obj.(*types.Func)
			return isFn && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
		}
		return atomicMethodNames[fun.Sel.Name] // parse-only fallback
	}
	return false
}

// lockKind classifies a mutex method call.
type lockKind int

const (
	lockNone lockKind = iota
	lockAcquire
	lockRelease
)

// lockScanner walks a function body tracking the held-mutex set.
type lockScanner struct {
	p                  *Package
	c                  *lockContracts
	recvType, recvName string

	// visit is called on every expression node in evaluation order with
	// the current held set (lock/unlock calls themselves excluded).
	visit func(n ast.Node, held lockState)
	// onAcquire is called when a mutex is locked (id may be "" when the
	// mutex cannot be resolved to a package-level declaration).
	onAcquire func(id string, pos token.Pos, held lockState)
	// onCall is called for every non-lock call expression.
	onCall func(call *ast.CallExpr, held lockState)
	// async suppresses onAcquire/onCall inside go/defer function
	// literals, whose events are not synchronous with the caller.
	async int
}

func (sc *lockScanner) scanBody(body *ast.BlockStmt) {
	sc.block(body.List, lockState{})
}

// block scans a statement list; the returned bool reports whether the
// path terminated (return/panic/branch) before falling off the end.
func (sc *lockScanner) block(list []ast.Stmt, held lockState) bool {
	for _, st := range list {
		if sc.stmt(st, held) {
			return true
		}
	}
	return false
}

func (sc *lockScanner) stmt(st ast.Stmt, held lockState) bool {
	switch st := st.(type) {
	case nil:
		return false
	case *ast.ExprStmt:
		sc.expr(st.X, held)
		return sc.isPanicCall(st.X)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			sc.expr(e, held)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave this block; the path does not fall
		// through to the next statement.
		return true
	case *ast.DeferStmt:
		sc.deferStmt(st, held)
		return false
	case *ast.GoStmt:
		for _, a := range st.Call.Args {
			sc.expr(a, held)
		}
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			sc.async++
			sc.block(fl.Body.List, lockState{})
			sc.async--
		}
		return false
	case *ast.BlockStmt:
		return sc.block(st.List, held)
	case *ast.LabeledStmt:
		return sc.stmt(st.Stmt, held)
	case *ast.IfStmt:
		return sc.ifStmt(st, held)
	case *ast.ForStmt:
		if st.Init != nil {
			sc.stmt(st.Init, held)
		}
		if st.Cond != nil {
			sc.expr(st.Cond, held)
		}
		body := held.clone()
		sc.block(st.Body.List, body)
		if st.Post != nil {
			sc.stmt(st.Post, body)
		}
		return false
	case *ast.RangeStmt:
		sc.expr(st.X, held)
		sc.block(st.Body.List, held.clone())
		return false
	case *ast.SwitchStmt:
		if st.Init != nil {
			sc.stmt(st.Init, held)
		}
		if st.Tag != nil {
			sc.expr(st.Tag, held)
		}
		return sc.caseClauses(st.Body.List, held)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			sc.stmt(st.Init, held)
		}
		sc.stmt(st.Assign, held)
		return sc.caseClauses(st.Body.List, held)
	case *ast.SelectStmt:
		return sc.selectStmt(st, held)
	default:
		// Assign/Decl/IncDec/Send and anything else: scan contained
		// expressions with the current state.
		sc.exprNode(st, held)
		return false
	}
}

func (sc *lockScanner) ifStmt(st *ast.IfStmt, held lockState) bool {
	if st.Init != nil {
		sc.stmt(st.Init, held)
	}
	sc.expr(st.Cond, held)
	thenHeld := held.clone()
	thenTerm := sc.block(st.Body.List, thenHeld)
	elseHeld := held.clone()
	elseTerm := false
	if st.Else != nil {
		elseTerm = sc.stmt(st.Else, elseHeld)
	}
	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		held.replaceWith(elseHeld)
	case elseTerm:
		held.replaceWith(thenHeld)
	default:
		held.replaceWith(intersectAll([]lockState{thenHeld, elseHeld}))
	}
	return false
}

// caseClauses merges switch/type-switch case bodies: each runs on a
// copy of the entry state; the post-state is the intersection of every
// non-terminated body (plus the entry state if there is no default).
func (sc *lockScanner) caseClauses(list []ast.Stmt, held lockState) bool {
	var states []lockState
	hasDefault := false
	for _, s := range list {
		cc, ok := s.(*ast.CaseClause)
		if !ok {
			continue
		}
		h := held.clone()
		for _, e := range cc.List {
			sc.expr(e, h)
		}
		if cc.List == nil {
			hasDefault = true
		}
		if !sc.block(cc.Body, h) {
			states = append(states, h)
		}
	}
	if !hasDefault {
		states = append(states, held.clone())
	}
	if len(states) == 0 {
		return true
	}
	held.replaceWith(intersectAll(states))
	return false
}

func (sc *lockScanner) selectStmt(st *ast.SelectStmt, held lockState) bool {
	var states []lockState
	for _, s := range st.Body.List {
		cc, ok := s.(*ast.CommClause)
		if !ok {
			continue
		}
		h := held.clone()
		if cc.Comm != nil {
			sc.stmt(cc.Comm, h)
		}
		if !sc.block(cc.Body, h) {
			states = append(states, h)
		}
	}
	if len(states) == 0 {
		return true
	}
	held.replaceWith(intersectAll(states))
	return false
}

// deferStmt: defer mu.Unlock() keeps the mutex held to the end of the
// function (no state change). Other deferred calls run at exit with
// unknowable held state, so only their arguments are scanned now.
func (sc *lockScanner) deferStmt(st *ast.DeferStmt, held lockState) {
	if _, kind := sc.lockMethod(st.Call); kind != lockNone {
		return
	}
	for _, a := range st.Call.Args {
		sc.expr(a, held)
	}
	if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
		sc.async++
		sc.block(fl.Body.List, lockState{})
		sc.async--
	}
}

// exprNode scans every expression hanging off a statement node.
func (sc *lockScanner) exprNode(n ast.Node, held lockState) {
	ast.Inspect(n, func(child ast.Node) bool {
		if e, ok := child.(ast.Expr); ok {
			sc.expr(e, held)
			return false
		}
		return true
	})
}

// expr walks one expression in pre-order, applying lock transitions and
// invoking the visit callback.
func (sc *lockScanner) expr(e ast.Expr, held lockState) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Immediately-invoked literals are rare; analyzed with a
			// fresh state either way, which is conservative for guards.
			sc.block(n.Body.List, lockState{})
			return false
		case *ast.CallExpr:
			if base, kind := sc.lockMethod(n); kind != lockNone {
				key := exprString(base)
				switch kind {
				case lockAcquire:
					h := sc.resolveMutex(base)
					held[key] = h
					if sc.onAcquire != nil && sc.async == 0 {
						sc.onAcquire(h.id, n.Pos(), held)
					}
				case lockRelease:
					delete(held, key)
				}
				return false
			}
			if sc.visit != nil {
				sc.visit(n, held)
			}
			if sc.onCall != nil && sc.async == 0 {
				sc.onCall(n, held)
			}
			return true
		case *ast.SelectorExpr:
			if sc.visit != nil {
				sc.visit(n, held)
			}
			// Descend into X only: the Sel ident must not be re-checked
			// as a standalone identifier.
			sc.expr(n.X, held)
			return false
		case *ast.Ident:
			if sc.visit != nil {
				sc.visit(n, held)
			}
			return false
		}
		return true
	})
}

// lockMethod recognizes mu.Lock/RLock/Unlock/RUnlock calls. With type
// info the method must come from package sync; parse-only mode matches
// by name.
func (sc *lockScanner) lockMethod(call *ast.CallExpr) (ast.Expr, lockKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, lockNone
	}
	var kind lockKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = lockAcquire
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return nil, lockNone
	}
	if obj, ok := sc.p.Info.Uses[sel.Sel]; ok {
		fn, isFn := obj.(*types.Func)
		if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return nil, lockNone
		}
	}
	return sel.X, kind
}

// resolveMutex identifies the locked mutex: its nocalls flag and a
// package-qualified id for the cross-package lock-order analysis.
func (sc *lockScanner) resolveMutex(base ast.Expr) heldLock {
	p := sc.p
	switch b := base.(type) {
	case *ast.SelectorExpr:
		if sel := p.Info.Selections[b]; sel != nil && sel.Kind() == types.FieldVal {
			obj := sel.Obj()
			id := ""
			if named := namedRecvType(sel.Recv()); named != "" {
				id = p.PkgPath + "." + named + "." + obj.Name()
			}
			return heldLock{nocalls: sc.c.nocallsObj[obj], id: id}
		}
		// Parse-only: s.mu inside a method of recvType.
		if id, ok := b.X.(*ast.Ident); ok && id.Name == sc.recvName && sc.recvName != "" {
			return heldLock{nocalls: sc.c.nocallsKey[nameKey{sc.recvType, b.Sel.Name}]}
		}
	case *ast.Ident:
		if obj, ok := p.Info.Uses[b]; ok {
			if v, isVar := obj.(*types.Var); isVar && p.Types != nil && v.Parent() == p.Types.Scope() {
				return heldLock{nocalls: sc.c.nocallsObj[obj], id: p.PkgPath + "." + v.Name()}
			}
			return heldLock{nocalls: sc.c.nocallsObj[obj]}
		}
		return heldLock{nocalls: sc.c.nocallsVar[b.Name]}
	}
	return heldLock{}
}

// namedRecvType renders the defining type name of a field selection's
// receiver ("Server" for s.mu where s is a *Server).
func namedRecvType(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		default:
			return ""
		}
	}
}

// isPanicCall reports whether an expression statement is a panic(...),
// which terminates the path like a return.
func (sc *lockScanner) isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if obj, ok := sc.p.Info.Uses[id]; ok {
		_, isBuiltin := obj.(*types.Builtin)
		return isBuiltin
	}
	return true
}
