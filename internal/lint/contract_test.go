package lint

import (
	"go/ast"
	"go/parser"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLockContractFixture runs the full driver over the typed fixture:
// five violations survive suppression, in source order — a lock-free
// map read, a use-after-unlock, a call under a nocalls mutex, a
// partially-released branch merge, and a lock-free package-var read.
func TestLockContractFixture(t *testing.T) {
	p := loadFixture(t, "lockcontract_fix.go", "lattecc/internal/sim", "")
	got := ruleFindings(p, "lock-contract")
	want := []string{
		"r.entries is guarded by mu",
		"r.order is guarded by mu",
		"call to r.refresh while holding r.mu",
		"r.entries is guarded by mu",
		"package var table is guarded by tableMu",
	}
	if len(got) != len(want) {
		t.Fatalf("want %d findings, got %d:\n%s", len(want), len(got), renderAll(got))
	}
	for i, frag := range want {
		if !strings.Contains(got[i].Message, frag) {
			t.Errorf("finding %d: want message containing %q, got %q", i, frag, got[i].Message)
		}
	}

	// Acceptance pin: the seeded violation is reported with exact
	// file:line — the line carrying the "want: r.entries accessed
	// without holding r.mu" marker in the fixture source.
	src, err := os.ReadFile(filepath.Join("testdata", "lockcontract_fix.go"))
	if err != nil {
		t.Fatal(err)
	}
	wantLine := 0
	for i, l := range strings.Split(string(src), "\n") {
		if strings.Contains(l, "// want: r.entries accessed without holding r.mu") {
			wantLine = i + 1
			break
		}
	}
	if wantLine == 0 {
		t.Fatal("fixture lost its want-marker line")
	}
	if got[0].Pos.Line != wantLine || !strings.HasSuffix(got[0].Pos.Filename, "lockcontract_fix.go") {
		t.Errorf("seeded violation reported at %s:%d, want testdata/lockcontract_fix.go:%d",
			got[0].Pos.Filename, got[0].Pos.Line, wantLine)
	}
}

// TestLockContractAllowSuppression: stripping the //lint:allow comment
// surfaces the sixth finding (the racy len read in snapshotLen).
func TestLockContractAllowSuppression(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "lockcontract_fix.go"))
	if err != nil {
		t.Fatal(err)
	}
	stripped := strings.ReplaceAll(string(src), "//lint:allow", "// lint disabled:")
	im := newModuleImporter("lattecc", "unused")
	f, err := parser.ParseFile(im.fset, "testdata/stripped_lock.go", stripped, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := (&types.Config{Importer: im}).Check("lattecc/internal/sim", im.fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	p := &Package{PkgPath: "lattecc/internal/sim", Fset: im.fset, Files: []*ast.File{f}, Info: info, Types: tpkg}
	if got := ruleFindings(p, "lock-contract"); len(got) != 6 {
		t.Fatalf("stripping //lint:allow should surface 6 findings, got %d:\n%s", len(got), renderAll(got))
	}
}

// TestLockContractParseOnly: receiver-based resolution with no type
// information still catches the lock-free read and the call under a
// nocalls mutex.
func TestLockContractParseOnly(t *testing.T) {
	p := loadFixtureParseOnly(t, "lockcontract_parseonly_fix.go", "lattecc/internal/sim")
	got := checkLockContract(p)
	want := []string{
		"b.val is guarded by mu",
		"call to b.frob while holding b.mu",
	}
	if len(got) != len(want) {
		t.Fatalf("want %d findings, got %d:\n%s", len(want), len(got), renderAll(got))
	}
	for i, frag := range want {
		if !strings.Contains(got[i].Message, frag) {
			t.Errorf("finding %d: want message containing %q, got %q", i, frag, got[i].Message)
		}
	}
}

// TestLockOrderFixture: the opposite-order pair (one side through a
// callee's acquire-set) yields a cycle, and re-acquiring a held lock
// through a call yields a self-deadlock.
func TestLockOrderFixture(t *testing.T) {
	p := loadFixture(t, "lockorder_fix.go", "lattecc/internal/sim", "")
	got := ruleFindings(p, "lock-order")
	if len(got) != 2 {
		t.Fatalf("want 2 findings, got %d:\n%s", len(got), renderAll(got))
	}
	if !strings.Contains(got[0].Message, "lock acquisition order cycle") ||
		!strings.Contains(got[0].Message, "sim.g.a -> lattecc/internal/sim.g.b") {
		t.Errorf("finding 0: want canonical a->b cycle, got %q", got[0].Message)
	}
	if !strings.Contains(got[1].Message, "may self-deadlock") {
		t.Errorf("finding 1: want self-deadlock, got %q", got[1].Message)
	}
}

// TestGoroutineHygieneFixture: two bounded spawns pass; the unbounded
// literal, the unresolvable target, and the dropped CancelFunc are
// reported; the //lint:allow'd fire-and-forget stays quiet.
func TestGoroutineHygieneFixture(t *testing.T) {
	p := loadFixture(t, "goroutine_fix.go", "lattecc/internal/server", "")
	got := ruleFindings(p, "goroutine-hygiene")
	want := []string{
		"no bounded lifecycle",
		"not resolvable",
		"CancelFunc from WithCancel is discarded",
	}
	if len(got) != len(want) {
		t.Fatalf("want %d findings, got %d:\n%s", len(want), len(got), renderAll(got))
	}
	for i, frag := range want {
		if !strings.Contains(got[i].Message, frag) {
			t.Errorf("finding %d: want message containing %q, got %q", i, frag, got[i].Message)
		}
	}
}

// TestGoroutineHygieneScope: the same spawns outside server/harness/sim
// are out of scope. (internal/sim joined the policed set with PR 7's
// epoch engine — see TestGoroutineHygieneCoversSim.)
func TestGoroutineHygieneScope(t *testing.T) {
	p := loadFixture(t, "goroutine_fix.go", "lattecc/cmd/sweep", "")
	if got := ruleFindings(p, "goroutine-hygiene"); len(got) != 0 {
		t.Fatalf("goroutine-hygiene must only police server/harness/sim, got:\n%s", renderAll(got))
	}
}

// TestGoroutineHygieneParseOnly: name-based evidence and the
// declaration index work without type information.
func TestGoroutineHygieneParseOnly(t *testing.T) {
	p := loadFixtureParseOnly(t, "goroutine_parseonly_fix.go", "lattecc/internal/harness")
	got := checkGoroutineHygiene(p)
	want := []string{
		"no bounded lifecycle",
		"cancel is never called",
	}
	if len(got) != len(want) {
		t.Fatalf("want %d findings, got %d:\n%s", len(want), len(got), renderAll(got))
	}
	for i, frag := range want {
		if !strings.Contains(got[i].Message, frag) {
			t.Errorf("finding %d: want message containing %q, got %q", i, frag, got[i].Message)
		}
	}
}

// TestHotpathAllocFixture: every allocating construct in the annotated
// function is reported; the append-into-scratch idiom and unannotated
// functions pass; the justified make() is suppressed.
func TestHotpathAllocFixture(t *testing.T) {
	p := loadFixture(t, "hotpath_fix.go", "lattecc/internal/compress", "")
	got := ruleFindings(p, "hotpath-alloc")
	want := []string{
		"make()",
		"slice literal",
		"fmt.Sprintf()",
		"map literal",
		"&entry{...}",
	}
	if len(got) != len(want) {
		t.Fatalf("want %d findings, got %d:\n%s", len(want), len(got), renderAll(got))
	}
	for i, frag := range want {
		if !strings.Contains(got[i].Message, frag) {
			t.Errorf("finding %d: want message containing %q, got %q", i, frag, got[i].Message)
		}
	}
}

// TestHotpathAllocParseOnly: make and the fmt family match by name
// without type information.
func TestHotpathAllocParseOnly(t *testing.T) {
	p := loadFixtureParseOnly(t, "hotpath_parseonly_fix.go", "lattecc/internal/compress")
	got := checkHotpathAlloc(p)
	want := []string{"make()", "fmt.Sprintf()"}
	if len(got) != len(want) {
		t.Fatalf("want %d findings, got %d:\n%s", len(want), len(got), renderAll(got))
	}
	for i, frag := range want {
		if !strings.Contains(got[i].Message, frag) {
			t.Errorf("finding %d: want message containing %q, got %q", i, frag, got[i].Message)
		}
	}
}

// TestGuardsAnnotationValidated: a //lint:guards naming a nonexistent
// mutex is itself a finding — annotations are machine-checked too.
func TestGuardsAnnotationValidated(t *testing.T) {
	src := `package fixture

import "sync"

type s struct {
	mu sync.Mutex
	//lint:guards lock
	data []int
}
`
	im := newModuleImporter("lattecc", "unused")
	f, err := parser.ParseFile(im.fset, "testdata/inline_guards.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := (&types.Config{Importer: im}).Check("lattecc/internal/sim", im.fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	p := &Package{PkgPath: "lattecc/internal/sim", Fset: im.fset, Files: []*ast.File{f}, Info: info, Types: tpkg}
	got := checkLockContract(p)
	if len(got) != 1 || !strings.Contains(got[0].Message, `//lint:guards names "lock"`) {
		t.Fatalf("want one bad-annotation finding, got:\n%s", renderAll(got))
	}
}
