// Fixture for the module-wide lock-order analysis: two mutexes
// acquired in opposite orders (one side through a callee, so the
// transitive acquire-set matters) plus a re-acquisition through a call
// while the same lock is held.
package fixture

import "sync"

type g struct {
	a sync.Mutex
	b sync.Mutex
}

// ab establishes the order a -> b.
func (x *g) ab() {
	x.a.Lock()
	defer x.a.Unlock()
	x.b.Lock()
	defer x.b.Unlock()
}

// ba establishes b -> a through lockA's acquire-set, closing the cycle.
func (x *g) ba() {
	x.b.Lock()
	defer x.b.Unlock()
	x.lockA() // want: lock acquisition order cycle
}

func (x *g) lockA() {
	x.a.Lock()
	x.a.Unlock()
}

// reenter holds a and calls a function that acquires a again.
func (x *g) reenter() {
	x.a.Lock()
	defer x.a.Unlock()
	x.lockA() // want: may self-deadlock
}
