// Fixture for the goroutine-hygiene rule: bounded worker shapes that
// must pass (WaitGroup + ctx.Done select, channel-range drainer), the
// leaks that must not (an unbounded literal, an unresolvable target),
// and a dropped context.CancelFunc.
package fixture

import (
	"context"
	"sync"
)

type pool struct {
	wg   sync.WaitGroup
	jobs chan int
}

// start spawns two bounded goroutines; no findings.
func (p *pool) start(ctx context.Context) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-p.jobs:
				_ = j
			}
		}
	}()
	go p.drain()
}

// drain receives until the channel closes: a bounded lifecycle.
func (p *pool) drain() {
	for range p.jobs {
	}
}

// leak spins forever with no stop signal.
func (p *pool) leak() {
	go func() { // want: no bounded lifecycle
		for {
		}
	}()
}

// spawn launches an arbitrary callable the analysis cannot see into.
func spawn(f func()) {
	go f() // want: target not resolvable
}

// dropped discards the CancelFunc; the context's resources leak until
// the parent is done.
func dropped(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent) // want: CancelFunc discarded
	return ctx
}

// used defers the cancel properly; no finding.
func used(parent context.Context) context.Context {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	return ctx
}

// fireAndForget is a justified suppression.
func fireAndForget() {
	//lint:allow goroutine-hygiene one-shot banner print exits on its own
	go func() {
		println("ready")
	}()
}
