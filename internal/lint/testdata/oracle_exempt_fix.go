// Package fixture pins the internal/oracle lint posture: the oracle
// sits below the determinism boundary (serving-stack imports are
// violations) but is exempt from the performance rules (its hot-path
// panic is legal — reference models panic loudly on internal drift by
// design). lint_test.go loads this file parse-only under both
// lattecc/internal/oracle and lattecc/internal/sim and compares the
// finding sets.
package fixture

import (
	_ "net/http"

	_ "lattecc/internal/cluster"
	_ "lattecc/internal/harness"
	_ "lattecc/internal/resultstore"
	_ "lattecc/internal/server"
)

// tick panics outside a constructor/validation path: a panic-audit
// violation in cycle-level packages, legal in the oracle.
func tick() {
	panic("hot-path panic")
}
