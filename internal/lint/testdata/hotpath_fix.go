// Fixture for the hotpath-alloc rule: an annotated encoder that only
// appends into caller-owned scratch (allowed), an annotated function
// hitting every flagged construct, and a justified suppression.
package fixture

import "fmt"

type codec struct {
	scratch []byte
}

type entry struct{ n int }

// encode is the idiomatic zero-steady-state-allocation shape; append
// into the receiver's scratch is allowed. No findings.
//
//lint:hotpath
func (c *codec) encode(line []byte) int {
	n := 0
	for _, b := range line {
		if b != 0 {
			n++
		}
	}
	c.scratch = append(c.scratch[:0], line...)
	return n
}

// bad hits every allocating construct the static rule flags.
//
//lint:hotpath
func (c *codec) bad(line []byte) []byte {
	buf := make([]byte, len(line)) // want: make()
	copy(buf, line)
	hdr := []byte{0xFF}                 // want: slice literal
	_ = fmt.Sprintf("n=%d", len(line))  // want: fmt.Sprintf()
	counts := map[int]int{len(line): 1} // want: map literal
	_ = counts
	e := &entry{n: len(line)} // want: &entry{...}
	_ = e
	return append(hdr, buf...)
}

// suppressed documents a one-time cold-path allocation.
//
//lint:hotpath
func suppressed(line []byte) []byte {
	//lint:allow hotpath-alloc cold-start table build, runs once per VFT rebuild
	out := make([]byte, len(line))
	copy(out, line)
	return out
}

// unannotated functions allocate freely; no findings.
func unannotated(n int) []byte {
	return make([]byte, n)
}
