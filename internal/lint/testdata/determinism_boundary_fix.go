// Package fixture seeds determinism-boundary violations for
// lint_test.go: a cycle-level package reaching up into the serving
// stack. The module imports cannot resolve under the standalone test
// importer, so the boundary tests parse this file without type-checking
// — the import rule is deliberately syntactic.
package fixture

import (
	"net/http"

	"lattecc/internal/cluster"
	"lattecc/internal/harness"
	"lattecc/internal/resultstore"
	"lattecc/internal/server"
)

// touch keeps the imports referenced so the fixture would also survive
// a future type-checking loader.
func touch() {
	_ = http.MethodGet
	_ = cluster.Config{}
	_ = harness.RunRequest{}
	_ = resultstore.Options{}
	_ = server.Config{}
}
