// Package escapefixture is the escape gate's deliberately regressed
// input: Leak's buffer is stored in a package variable, so escape
// analysis must heap-allocate it, and `lattelint -escape` over this
// package must report the escape and fail against a clean baseline.
// The package is under testdata so module-wide walks skip it; the gate
// tests load it explicitly.
package escapefixture

// Sink keeps the allocation alive beyond the call.
var Sink []byte

//lint:hotpath
func Leak(n int) {
	buf := make([]byte, n) //lint:allow hotpath-alloc deliberate regression for the escape-gate test
	Sink = buf
}
