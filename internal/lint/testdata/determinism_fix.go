// Package fixture seeds determinism violations for lint_test.go. It is
// never compiled into the module (testdata is invisible to the go tool);
// the tests parse and type-check it standalone under a cycle-level
// package path.
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

type table struct {
	counts map[uint32]uint16
}

func wallClock() int64 {
	return time.Now().UnixNano() // want determinism: wall clock
}

func globalRand() int {
	return rand.Intn(16) // want determinism: global source
}

func seededRand() int {
	r := rand.New(rand.NewSource(42)) // ok: explicit deterministic seed
	return r.Intn(16)
}

func mapIteration(t table) uint64 {
	var sum uint64
	for _, c := range t.counts { // want determinism: map order
		sum += uint64(c)
	}
	return sum
}

func sortedIteration(t table) []uint32 {
	keys := make([]uint32, 0, len(t.counts))
	//lint:allow determinism keys are sorted before any use
	for k := range t.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func suppressedClock() time.Time {
	return time.Now() //lint:allow determinism fixture exercises same-line suppression
}
