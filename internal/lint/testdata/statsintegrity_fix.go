// Stats-integrity fixture: float += on struct fields is ad-hoc metric
// accumulation; integers and locals are fine.
package fixture

type metrics struct {
	ipc    float64
	misses uint64
}

func (m *metrics) observe(sample float64) {
	m.ipc += sample // want stats-integrity
	m.misses++      // ok: integer counters are exact
}

func localSum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x // ok: local accumulator, not a stored metric
	}
	return sum
}

func (m *metrics) integerDelta(d uint64) {
	m.misses += d // ok: integer
}

func (m *metrics) blessed(sample float64) {
	//lint:allow stats-integrity fixture exercises suppression
	m.ipc += sample
}
