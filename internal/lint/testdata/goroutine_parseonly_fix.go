// Parse-only fixture for the goroutine-hygiene rule: the unresolved
// context import means the lostcancel check runs on names alone, and
// goroutine targets resolve through the package's declaration index.
package fixture

func work(stop chan struct{}) {
	go func() { // bounded: receives from stop; no finding
		<-stop
	}()
	go orphan() // want: no bounded lifecycle

	ctx, cancel := context.WithCancel(nil) // want: cancel is never called
	_ = ctx
}

func orphan() {
	for {
	}
}
