// Config-mutation fixture: methods writing Config fields after
// construction, and by-value copies of mutex-bearing structs.
package fixture

import "sync"

type CacheConfig struct {
	Ways     int
	LineSize int
}

type component struct {
	cfg CacheConfig
	mu  sync.Mutex
	ids []int
}

func (c *component) resize(ways int) {
	c.cfg.Ways = ways // want config-mutation: field write after construction
}

func (c *component) replace(cfg CacheConfig) {
	c.cfg = cfg // want config-mutation: whole-struct replacement
}

func (c *component) derived() CacheConfig {
	cfg := c.cfg
	cfg.Ways *= 2 // ok: local copy feeding a new construction
	return cfg
}

func (c *component) Validate() {
	if c.cfg.Ways == 0 {
		c.cfg.Ways = 4 // ok: validation fills defaults
	}
}

func (c *component) annotated() {
	//lint:allow config-mutation fixture exercises suppression
	c.cfg.LineSize = 64
}

func copyByValue(c *component) {
	d := *c // want config-mutation: copies the mutex
	d.ids = nil
}

func rangeCopies(cs []component) int {
	n := 0
	for _, c := range cs { // want config-mutation: range copies the mutex
		n += len(c.ids)
	}
	return n
}

func pointersAreFine(cs []*component) int {
	n := 0
	for _, c := range cs { // ok: pointer elements share the lock
		n += len(c.ids)
	}
	return n
}
