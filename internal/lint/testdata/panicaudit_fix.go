// Panic-audit fixture: panics outside construction/validation paths
// must be flagged; New*/Must*/validate/check functions are exempt.
package fixture

import "fmt"

type engine struct{ n int }

func NewEngine(n int) *engine {
	if n <= 0 {
		panic("bad geometry") // ok: constructor
	}
	return &engine{n: n}
}

func MustParse(s string) int {
	if s == "" {
		panic("empty") // ok: Must* contract
	}
	return len(s)
}

func validateShape(n int) {
	if n%2 != 0 {
		panic("odd") // ok: validation helper
	}
}

func checkBounds(i, n int) {
	if i >= n {
		panic(fmt.Sprintf("index %d out of %d", i, n)) // ok: check helper
	}
}

func (e *engine) tick() int {
	if e.n == 0 {
		panic("hot path") // want panic-audit
	}
	return e.n
}

func loadFile(name string) []byte {
	if name == "" {
		panic("no file") // want panic-audit: I/O must return errors
	}
	return nil
}

func deadlockGuard(cycles int) {
	if cycles > 1<<40 {
		//lint:allow panic-audit wedged simulation has no error path
		panic("cycle guard")
	}
}
