// Parse-only fixture for the lock-contract rule: no imports resolve
// and no type information exists, so the checker falls back to
// receiver-based resolution. Guarded-field access and nocalls findings
// must still fire syntactically.
package fixture

type box struct {
	mu sync.Mutex //lint:mutex nocalls
	//lint:guards mu
	val int
}

// good holds the lock across the read; no finding.
func (b *box) good() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.val
}

// bad reads the guarded field without the lock.
func (b *box) bad() int {
	return b.val // want: b.val accessed without holding b.mu
}

// badCall calls a method while the nocalls mutex is held.
func (b *box) badCall() {
	b.mu.Lock()
	b.frob() // want: call while holding b.mu
	b.mu.Unlock()
}

func (b *box) frob() {}
