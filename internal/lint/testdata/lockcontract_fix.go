// Fixture for the lock-contract rule: a registry whose map and
// insertion-order slice are guarded by a nocalls mutex, with the
// canonical correct shapes (defer unlock, early-return unlock) and the
// violations the rule must catch — a lock-free read, a use-after-
// unlock, a call under a nocalls mutex, a branch that only sometimes
// releases, and a lock-free package-var access.
package fixture

import (
	"sync"
	"sync/atomic"
)

type registry struct {
	mu sync.Mutex //lint:mutex nocalls
	//lint:guards mu
	entries map[string]int
	//lint:guards mu
	order []string

	gen   atomic.Uint64
	plain int // unguarded on purpose
}

// get uses the early-return unlock shape; no findings.
func (r *registry) get(k string) (int, bool) {
	r.mu.Lock()
	v, ok := r.entries[k]
	if !ok {
		r.mu.Unlock()
		return 0, false
	}
	r.mu.Unlock()
	return v, true
}

// put uses defer unlock; builtin calls (append) are exempt from
// nocalls. No findings.
func (r *registry) put(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[k] = v
	r.order = append(r.order, k)
}

// exemptCalls proves builtins, sync/atomic operations, and type
// conversions pass under a nocalls mutex. No findings.
func (r *registry) exemptCalls() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = make(map[string]int)
	r.gen.Add(1)
	r.plain = int(uint32(len(r.order)))
}

// leakRead reads the guarded map without the lock.
func (r *registry) leakRead(k string) int {
	return r.entries[k] // want: r.entries accessed without holding r.mu
}

// leakAfterUnlock releases the mutex and keeps writing.
func (r *registry) leakAfterUnlock(k string) {
	r.mu.Lock()
	r.entries[k]++
	r.mu.Unlock()
	r.order = append(r.order, k) // want: r.order accessed without holding r.mu
}

// callUnderLock calls a method while holding a nocalls mutex.
func (r *registry) callUnderLock() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.refresh() // want: call while holding r.mu
}

func (r *registry) refresh() {}

// partialUnlock only releases on one branch; after the merge the lock
// is not provably held.
func (r *registry) partialUnlock(flush bool, k string) {
	r.mu.Lock()
	if flush {
		r.mu.Unlock()
	}
	r.entries[k]++ // want: r.entries accessed without holding r.mu
	if !flush {
		r.mu.Unlock()
	}
}

// snapshotLen is a justified suppression: a racy len read for logging.
func (r *registry) snapshotLen() int {
	//lint:allow lock-contract racy len is fine for the log line
	return len(r.entries)
}

var (
	//lint:mutex nocalls
	tableMu sync.Mutex
	//lint:guards tableMu
	table = map[string]int{}
)

// lookup holds the package-level mutex correctly.
func lookup(k string) int {
	tableMu.Lock()
	defer tableMu.Unlock()
	return table[k]
}

// leakVar reads the guarded package var without its mutex.
func leakVar(k string) int {
	return table[k] // want: package var table accessed without tableMu
}
