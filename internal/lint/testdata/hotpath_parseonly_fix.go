// Parse-only fixture for the hotpath-alloc rule: with no type
// information the rule matches make/new by name and the fmt family by
// the selector's package identifier.
package fixture

//lint:hotpath
func badMeasure(line []byte) string {
	buf := make([]byte, 8) // want: make()
	_ = buf
	return fmt.Sprintf("%d", len(line)) // want: fmt.Sprintf()
}
