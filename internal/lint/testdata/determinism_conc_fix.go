// Package fixture exercises the concurrency half of the determinism
// rule (PR 7): below the determinism boundary, only the epoch engine
// (internal/sim) may import sync or spawn goroutines; every other
// cycle-level package must stay single-threaded so a run's result is a
// pure function of (config, seed, trace). The clock read at the bottom
// must fire under BOTH package paths — the sim exemption covers
// coordination, never wall-clock time.
package fixture

import (
	"sync"
	"time"
)

type bank struct {
	mu   sync.Mutex
	hits uint64
}

// tick fans a lookup out to a goroutine. The lifecycle is perfectly
// bounded (wg.Done/Wait), so goroutine-hygiene is satisfied — the
// determinism finding is about WHERE the concurrency lives, not how
// well it shuts down.
func (b *bank) tick() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b.mu.Lock()
		b.hits++
		b.mu.Unlock()
	}()
	wg.Wait()
}

// stamp reads the wall clock: banned in every cycle-level package,
// including the epoch engine.
func stamp() int64 { return time.Now().UnixNano() }
