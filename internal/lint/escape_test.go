package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseEscapes: only top-level "escapes to heap" / "moved to heap"
// diagnostics count; "does not escape", "leaking param", and indented
// -m=2 flow-detail lines are all excluded.
func TestParseEscapes(t *testing.T) {
	input := strings.Join([]string{
		"internal/compress/bdi.go:120:18: make([]byte, 8) escapes to heap:",
		"internal/compress/bdi.go:120:18:   flow: {heap} = &{storage for make([]byte, 8)}:",
		"internal/compress/bdi.go:120:18:     from make([]byte, 8) (spill) at ./bdi.go:120:18",
		"./internal/compress/fpc.go:60:6: moved to heap: w",
		"internal/compress/fpc.go:58:20: leaking param: line",
		"internal/compress/fpc.go:70:14: words does not escape",
		"# lattecc/internal/compress",
		"internal/compress/sc.go:90:10: \"sc\" escapes to heap",
	}, "\n")
	got, err := ParseEscapes(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("want 3 diagnostics, got %d: %+v", len(got), got)
	}
	if got[0].File != "internal/compress/bdi.go" || got[0].Line != 120 ||
		got[0].Msg != "make([]byte, 8) escapes to heap" {
		t.Errorf("diag 0 = %+v", got[0])
	}
	if got[1].File != "internal/compress/fpc.go" || got[1].Msg != "moved to heap: w" {
		t.Errorf("diag 1 = %+v", got[1])
	}
}

// TestEscapeReportAndDiff: clean and regressed reports render stably
// and DiffReports shows exactly the drifted lines.
func TestEscapeReportAndDiff(t *testing.T) {
	funcs := []HotpathFunc{
		{PkgPath: "lattecc/internal/compress", Name: "(*BDI).Measure", File: "internal/compress/bdi.go", StartLine: 100, EndLine: 140},
		{PkgPath: "lattecc/internal/compress", Name: "(*FPC).Measure", File: "internal/compress/fpc.go", StartLine: 50, EndLine: 80},
	}
	clean := EscapeReport(funcs, nil)
	if !strings.Contains(clean, "lattecc/internal/compress.(*BDI).Measure: clean\n") ||
		!strings.Contains(clean, "lattecc/internal/compress.(*FPC).Measure: clean\n") {
		t.Fatalf("clean report malformed:\n%s", clean)
	}
	if d := DiffReports(clean, clean); d != "" {
		t.Fatalf("identical reports must diff empty, got:\n%s", d)
	}

	regressed := EscapeReport(funcs, []EscapeDiag{
		{File: "internal/compress/bdi.go", Line: 120, Msg: "make([]byte, 8) escapes to heap"},
		{File: "internal/compress/bdi.go", Line: 121, Msg: "make([]byte, 8) escapes to heap"}, // dedups
		{File: "internal/compress/other.go", Line: 120, Msg: "unrelated escapes to heap"},     // wrong file
		{File: "internal/compress/bdi.go", Line: 99, Msg: "outside escapes to heap"},          // outside range
	})
	if !strings.Contains(regressed, "(*BDI).Measure: 1 escape(s)\n    make([]byte, 8) escapes to heap\n") {
		t.Fatalf("regressed report malformed:\n%s", regressed)
	}
	diff := DiffReports(clean, regressed)
	if !strings.Contains(diff, "-lattecc/internal/compress.(*BDI).Measure: clean") ||
		!strings.Contains(diff, "+lattecc/internal/compress.(*BDI).Measure: 1 escape(s)") ||
		strings.Contains(diff, "FPC") {
		t.Fatalf("diff malformed:\n%s", diff)
	}
}

// runEscapeBuild mirrors cmd/lattelint's driver: go build -gcflags=-m=2
// from the module root, diagnostics on stderr. The Go build cache
// replays the full diagnostic stream on cached builds, so this is
// byte-stable across runs.
func runEscapeBuild(t *testing.T, root string, patterns ...string) []EscapeDiag {
	t.Helper()
	args := append([]string{"build", "-gcflags=-m=2"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go %s failed: %v\n%s", strings.Join(args, " "), err, out)
	}
	diags, err := ParseEscapes(strings.NewReader(string(out)))
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func moduleRootForTest(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestEscapeGateRealTree is the acceptance lock: the committed baseline
// matches a fresh -m=2 run over the annotated packages, and every
// annotated codec/cache function in it is clean.
func TestEscapeGateRealTree(t *testing.T) {
	root := moduleRootForTest(t)
	pkgs, err := Load(root, []string{"./internal/cache", "./internal/compress"})
	if err != nil {
		t.Fatal(err)
	}
	funcs := HotpathFuncs(pkgs, root)
	if len(funcs) < 8 {
		t.Fatalf("expected the codec/cache hot paths to be annotated, found %d //lint:hotpath functions", len(funcs))
	}
	diags := runEscapeBuild(t, root, "./internal/cache", "./internal/compress")
	current := EscapeReport(funcs, diags)

	baseline, err := os.ReadFile(filepath.Join("testdata", "escapes_baseline.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if diff := DiffReports(string(baseline), current); diff != "" {
		t.Fatalf("escape report drifted from testdata/escapes_baseline.txt:\n%s\nregenerate with: go run ./cmd/lattelint -escape -escape-update", diff)
	}
	for _, l := range strings.Split(current, "\n") {
		if l == "" || strings.HasPrefix(l, "#") || strings.HasPrefix(l, "    ") {
			continue
		}
		if !strings.HasSuffix(l, ": clean") {
			t.Errorf("annotated hot-path function is not escape-free: %s", l)
		}
	}
}

// TestEscapeGateCatchesRegression: the deliberately regressed fixture
// package produces a non-clean report that fails against its clean
// expectation.
func TestEscapeGateCatchesRegression(t *testing.T) {
	root := moduleRootForTest(t)
	pkgs, err := Load(root, []string{"./internal/lint/testdata/escapefixture"})
	if err != nil {
		t.Fatal(err)
	}
	funcs := HotpathFuncs(pkgs, root)
	if len(funcs) != 1 || funcs[0].Name != "Leak" {
		t.Fatalf("fixture should expose exactly Leak, got %+v", funcs)
	}
	diags := runEscapeBuild(t, root, "./internal/lint/testdata/escapefixture")
	report := EscapeReport(funcs, diags)
	if !strings.Contains(report, "Leak: 1 escape(s)") || !strings.Contains(report, "escapes to heap") {
		t.Fatalf("regressed fixture must report its escape, got:\n%s", report)
	}
	clean := EscapeReport(funcs, nil)
	if diff := DiffReports(clean, report); diff == "" {
		t.Fatal("gate must fail the regressed fixture against a clean baseline")
	}
}
