package lint

import (
	"go/ast"
	"go/parser"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture parses one testdata file standalone and type-checks it
// under an artificial package path so package-scoped rules fire. The
// optional asName overrides the filename seen by the analyses (used to
// prove _test.go files are skipped).
func loadFixture(t *testing.T, file, pkgPath, asName string) *Package {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", file))
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Join("testdata", file)
	if asName != "" {
		name = filepath.Join("testdata", asName)
	}
	im := newModuleImporter("lattecc", "testdata-has-no-module-files")
	f, err := parser.ParseFile(im.fset, name, src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := types.Config{Importer: im}
	tpkg, err := cfg.Check(pkgPath, im.fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("fixture %s does not type-check: %v", file, err)
	}
	return &Package{PkgPath: pkgPath, Fset: im.fset, Files: []*ast.File{f}, Info: info, Types: tpkg}
}

// ruleFindings runs the full driver (including //lint:allow handling)
// and keeps only one rule's findings.
func ruleFindings(p *Package, rule string) []Finding {
	var out []Finding
	for _, f := range Run([]*Package{p}) {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

func TestRulesOnFixtures(t *testing.T) {
	cases := []struct {
		file string
		rule string
		// wantSubstrings must each appear in exactly the flagged
		// messages, in source order; the count doubles as the expected
		// number of findings after suppression.
		wantSubstrings []string
	}{
		{
			file: "determinism_fix.go",
			rule: "determinism",
			wantSubstrings: []string{
				"time.Now",
				"rand.Intn",
				"range over map",
			},
		},
		{
			file: "panicaudit_fix.go",
			rule: "panic-audit",
			wantSubstrings: []string{
				"panic in tick",
				"panic in loadFile",
			},
		},
		{
			file: "configmutation_fix.go",
			rule: "config-mutation",
			wantSubstrings: []string{
				"method resize writes CacheConfig",
				"method replace writes CacheConfig",
				"copies component by value",
				"range copies component",
			},
		},
		{
			file: "statsintegrity_fix.go",
			rule: "stats-integrity",
			wantSubstrings: []string{
				"float accumulation into m.ipc",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			p := loadFixture(t, tc.file, "lattecc/internal/sim", "")
			got := ruleFindings(p, tc.rule)
			if len(got) != len(tc.wantSubstrings) {
				t.Fatalf("want %d findings, got %d:\n%s",
					len(tc.wantSubstrings), len(got), renderAll(got))
			}
			for i, want := range tc.wantSubstrings {
				if !strings.Contains(got[i].Message, want) {
					t.Errorf("finding %d: want message containing %q, got %q", i, want, got[i].Message)
				}
			}
		})
	}
}

func TestAllowSuppressesSameAndPreviousLine(t *testing.T) {
	// Each fixture carries one deliberately suppressed violation; the
	// unsuppressed counts in TestRulesOnFixtures prove they stay
	// hidden. This test pins the mechanism itself: strip the allow
	// comments and the extra findings reappear.
	src, err := os.ReadFile(filepath.Join("testdata", "determinism_fix.go"))
	if err != nil {
		t.Fatal(err)
	}
	stripped := strings.ReplaceAll(string(src), "//lint:allow", "// lint disabled:")
	im := newModuleImporter("lattecc", "unused")
	f, err := parser.ParseFile(im.fset, "testdata/stripped.go", stripped, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := (&types.Config{Importer: im}).Check("lattecc/internal/sim", im.fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	p := &Package{PkgPath: "lattecc/internal/sim", Fset: im.fset, Files: []*ast.File{f}, Info: info, Types: tpkg}
	got := ruleFindings(p, "determinism")
	// 3 unsuppressed + 2 previously allowed (sorted-keys range, same-line time.Now).
	if len(got) != 5 {
		t.Fatalf("stripping //lint:allow should surface 5 findings, got %d:\n%s", len(got), renderAll(got))
	}
}

func TestRulesSkipTestFiles(t *testing.T) {
	p := loadFixture(t, "determinism_fix.go", "lattecc/internal/sim", "determinism_fix_test.go")
	if got := ruleFindings(p, "determinism"); len(got) != 0 {
		t.Fatalf("_test.go files must be exempt, got:\n%s", renderAll(got))
	}
}

func TestRulesScopedToCyclePackages(t *testing.T) {
	// The same violations under a non-cycle-level package path (e.g.
	// cmd/ tooling) are out of scope for determinism and
	// stats-integrity.
	p := loadFixture(t, "determinism_fix.go", "lattecc/cmd/sweep", "")
	if got := ruleFindings(p, "determinism"); len(got) != 0 {
		t.Fatalf("determinism must only police cycle-level packages, got:\n%s", renderAll(got))
	}
	p = loadFixture(t, "statsintegrity_fix.go", "lattecc/cmd/sweep", "")
	if got := ruleFindings(p, "stats-integrity"); len(got) != 0 {
		t.Fatalf("stats-integrity must only police cycle-level packages, got:\n%s", renderAll(got))
	}
}

// loadFixtureParseOnly parses a fixture without type-checking, for
// rules (the boundary-import check) that must fire syntactically. The
// Info maps are present but empty, exactly like a package whose
// imports failed to resolve.
func loadFixtureParseOnly(t *testing.T, file, pkgPath string) *Package {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", file))
	if err != nil {
		t.Fatal(err)
	}
	im := newModuleImporter("lattecc", "unused")
	f, err := parser.ParseFile(im.fset, filepath.Join("testdata", file), src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	return &Package{PkgPath: pkgPath, Fset: im.fset, Files: []*ast.File{f}, Info: info, Types: types.NewPackage(pkgPath, "fixture")}
}

// TestDeterminismBoundaryImports: a cycle-level package importing the
// serving stack (internal/server, internal/harness, net/http) trips the
// determinism rule — once per banned import, reported syntactically so
// even a package that fails to type-check cannot smuggle the edge in.
func TestDeterminismBoundaryImports(t *testing.T) {
	p := loadFixtureParseOnly(t, "determinism_boundary_fix.go", "lattecc/internal/sim")
	got := checkDeterminism(p)
	want := []string{
		"net/http",
		"lattecc/internal/cluster",
		"lattecc/internal/harness",
		"lattecc/internal/resultstore",
		"lattecc/internal/server",
	}
	if len(got) != len(want) {
		t.Fatalf("want %d boundary findings, got %d:\n%s", len(want), len(got), renderAll(got))
	}
	for i, frag := range want {
		if !strings.Contains(got[i].Message, frag) {
			t.Errorf("finding %d: want message naming %q, got %q", i, frag, got[i].Message)
		}
		if !strings.Contains(got[i].Message, "determinism boundary") {
			t.Errorf("finding %d: message %q does not name the boundary", i, got[i].Message)
		}
	}

	// Same imports under cache (also cycle-level) still fire; under the
	// server's own path they are of course legal.
	if got := checkDeterminism(loadFixtureParseOnly(t, "determinism_boundary_fix.go", "lattecc/internal/cache")); len(got) != len(want) {
		t.Errorf("cache package: want %d findings, got %d", len(want), len(got))
	}
	if got := checkDeterminism(loadFixtureParseOnly(t, "determinism_boundary_fix.go", "lattecc/internal/server")); len(got) != 0 {
		t.Errorf("server package must be above the boundary, got:\n%s", renderAll(got))
	}
}

// TestOracleDeterminismOnlyExemption pins the oracle's lint posture:
// internal/oracle is held to the determinism rules (it sits below the
// boundary so divergences replay from a seed) but not to the
// performance rules — its reference models are deliberately naive and
// panic on internal drift. The same fixture under a cycle-level path
// must additionally trip panic-audit.
func TestOracleDeterminismOnlyExemption(t *testing.T) {
	wantBoundary := []string{
		"net/http",
		"lattecc/internal/cluster",
		"lattecc/internal/harness",
		"lattecc/internal/resultstore",
		"lattecc/internal/server",
	}

	oracle := loadFixtureParseOnly(t, "oracle_exempt_fix.go", "lattecc/internal/oracle")
	got := checkDeterminism(oracle)
	if len(got) != len(wantBoundary) {
		t.Fatalf("oracle: want %d boundary findings, got %d:\n%s", len(wantBoundary), len(got), renderAll(got))
	}
	for i, frag := range wantBoundary {
		if !strings.Contains(got[i].Message, frag) {
			t.Errorf("oracle finding %d: want message naming %q, got %q", i, frag, got[i].Message)
		}
	}
	if got := checkPanicAudit(oracle); len(got) != 0 {
		t.Errorf("oracle is exempt from panic-audit, got:\n%s", renderAll(got))
	}
	if got := checkStatsIntegrity(oracle); len(got) != 0 {
		t.Errorf("oracle is exempt from stats-integrity, got:\n%s", renderAll(got))
	}

	// The identical file inside the simulator core is held to both rule
	// families: same three boundary findings plus the hot-path panic.
	sim := loadFixtureParseOnly(t, "oracle_exempt_fix.go", "lattecc/internal/sim")
	if got := checkDeterminism(sim); len(got) != len(wantBoundary) {
		t.Errorf("sim: want %d boundary findings, got %d:\n%s", len(wantBoundary), len(got), renderAll(got))
	}
	pa := checkPanicAudit(sim)
	if len(pa) != 1 || !strings.Contains(pa[0].Message, "panic in tick") {
		t.Errorf("sim: want one panic-audit finding in tick, got:\n%s", renderAll(pa))
	}
}

// TestDeterminismConcurrency pins PR 7's split of the concurrency ban:
// a sync import and a go statement are findings in every cycle-level
// package EXCEPT internal/sim, whose epoch engine coordinates workers
// behind a deterministic barrier; the wall-clock read in the same file
// stays a finding even there. Above the boundary nothing fires.
func TestDeterminismConcurrency(t *testing.T) {
	p := loadFixture(t, "determinism_conc_fix.go", "lattecc/internal/cache", "")
	got := ruleFindings(p, "determinism")
	want := []string{
		"import of sync",
		"go statement",
		"time.Now",
	}
	if len(got) != len(want) {
		t.Fatalf("cache: want %d findings, got %d:\n%s", len(want), len(got), renderAll(got))
	}
	for i, frag := range want {
		if !strings.Contains(got[i].Message, frag) {
			t.Errorf("cache finding %d: want message containing %q, got %q", i, frag, got[i].Message)
		}
	}

	p = loadFixture(t, "determinism_conc_fix.go", "lattecc/internal/sim", "")
	got = ruleFindings(p, "determinism")
	if len(got) != 1 || !strings.Contains(got[0].Message, "time.Now") {
		t.Fatalf("sim: want exactly the wall-clock finding, got:\n%s", renderAll(got))
	}

	p = loadFixture(t, "determinism_conc_fix.go", "lattecc/internal/harness", "")
	if got := ruleFindings(p, "determinism"); len(got) != 0 {
		t.Fatalf("harness sits above the boundary, got:\n%s", renderAll(got))
	}
}

// TestGoroutineHygieneCoversSim pins the companion rule change: sim is
// now in goroutinePackages, so an unbounded goroutine there is a
// goroutine-hygiene finding (the bounded one in the concurrency fixture
// is not).
func TestGoroutineHygieneCoversSim(t *testing.T) {
	p := loadFixture(t, "determinism_conc_fix.go", "lattecc/internal/sim", "")
	if got := ruleFindings(p, "goroutine-hygiene"); len(got) != 0 {
		t.Fatalf("bounded goroutine must pass hygiene, got:\n%s", renderAll(got))
	}
	p = loadFixture(t, "goroutine_fix.go", "lattecc/internal/sim", "")
	if got := ruleFindings(p, "goroutine-hygiene"); len(got) == 0 {
		t.Fatal("goroutine fixture under internal/sim should now produce hygiene findings")
	}
}

// TestDeterminismLegalInServer pins the other half of the boundary
// contract: wall-clock reads, global rand, and map iteration — all
// banned below the boundary — produce zero findings under the
// daemon's package path.
func TestDeterminismLegalInServer(t *testing.T) {
	p := loadFixture(t, "determinism_fix.go", "lattecc/internal/server", "")
	if got := ruleFindings(p, "determinism"); len(got) != 0 {
		t.Fatalf("wall-clock/rand/maps are legal in internal/server, got:\n%s", renderAll(got))
	}
}

func TestMissingReasonReported(t *testing.T) {
	src := `package fixture
func f() int {
	//lint:allow determinism
	return 0
}
`
	im := newModuleImporter("lattecc", "unused")
	f, err := parser.ParseFile(im.fset, "testdata/inline.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	p := &Package{PkgPath: "lattecc/internal/sim", Fset: im.fset, Files: []*ast.File{f}}
	got := MissingReasons(p)
	if len(got) != 1 || got[0].Rule != "allow-reason" {
		t.Fatalf("want one allow-reason finding, got %v", got)
	}
}

// TestModuleTreeIsClean is the regression lock for the whole PR: the
// repaired tree must produce zero findings, so any future reintroduction
// of a clock read, hot-path panic, config write, or ad-hoc float
// accumulator fails `go test` as well as CI's lattelint step.
func TestModuleTreeIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loader found only %d packages; module walk is broken", len(pkgs))
	}
	findings := Run(pkgs)
	for _, p := range pkgs {
		findings = append(findings, MissingReasons(p)...)
	}
	if len(findings) != 0 {
		t.Fatalf("module tree has %d lint findings:\n%s", len(findings), renderAll(findings))
	}
}

func renderAll(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.String())
		b.WriteString("\n")
	}
	return b.String()
}
