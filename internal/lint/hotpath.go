package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// hotpath-alloc: functions annotated
//
//	//lint:hotpath
//
// (codec Measure/encode cores, cache access paths) run once per
// simulated L1 access — hundreds of millions of times per sweep — and
// must not allocate. Two layers enforce that:
//
//   - this static rule flags the constructs that always or usually
//     allocate: make, new, slice/map composite literals, address-of
//     composite literals, and calls into fmt/strings/strconv/errors/sort
//     (formatting machinery allocates even on discarded paths);
//   - the escape gate (escape.go + `lattelint -escape`) parses the
//     compiler's own -gcflags=-m=2 output and fails if any annotated
//     function gains a heap escape, catching what syntax cannot (escape
//     of locals, closure captures, interface boxing).
//
// append is deliberately NOT flagged: appending into a caller-owned or
// amortized scratch buffer is the repo's idiom for zero-steady-state
// allocation, and the escape gate still catches the backing array if it
// escapes.

// allocPackageNames are stdlib packages whose exported calls allocate.
var allocPackageNames = map[string]bool{
	"fmt": true, "strings": true, "strconv": true,
	"errors": true, "sort": true,
}

// hotpathAnnotated reports whether a function declaration carries the
// //lint:hotpath annotation.
func hotpathAnnotated(fd *ast.FuncDecl) bool {
	_, ok := directiveArgs(fd.Doc, "hotpath")
	return ok
}

func checkHotpathAlloc(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		if p.isTestFile(file.Pos()) {
			continue
		}
		for _, fd := range enclosingFuncs(file) {
			if fd.Body == nil || !hotpathAnnotated(fd) {
				continue
			}
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if why := allocCall(p, n); why != "" {
						out = append(out, Finding{
							Pos:     p.Fset.Position(n.Pos()),
							Rule:    "hotpath-alloc",
							Message: fmt.Sprintf("%s in //lint:hotpath function %s allocates on every call", why, name),
						})
					}
				case *ast.CompositeLit:
					if why := allocComposite(p, n); why != "" {
						out = append(out, Finding{
							Pos:     p.Fset.Position(n.Pos()),
							Rule:    "hotpath-alloc",
							Message: fmt.Sprintf("%s in //lint:hotpath function %s allocates on every call", why, name),
						})
						return false
					}
				case *ast.UnaryExpr:
					if n.Op.String() == "&" {
						if cl, ok := n.X.(*ast.CompositeLit); ok {
							out = append(out, Finding{
								Pos:     p.Fset.Position(n.Pos()),
								Rule:    "hotpath-alloc",
								Message: fmt.Sprintf("&%s{...} in //lint:hotpath function %s heap-allocates unless proven otherwise; hoist to a scratch field", compositeName(cl), name),
							})
							return false
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// allocCall classifies a call as allocating: make/new builtins and
// calls into the formatting/sorting stdlib families.
func allocCall(p *Package, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "make" && fun.Name != "new" {
			return ""
		}
		if obj, ok := p.Info.Uses[fun]; ok {
			if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
				return ""
			}
		}
		return fun.Name + "()"
	case *ast.SelectorExpr:
		base, ok := fun.X.(*ast.Ident)
		if !ok {
			return ""
		}
		if obj, ok := p.Info.Uses[base]; ok {
			pn, isPkg := obj.(*types.PkgName)
			if !isPkg || !allocPackageNames[pn.Imported().Path()] {
				return ""
			}
		} else if !allocPackageNames[base.Name] {
			return ""
		}
		return base.Name + "." + fun.Sel.Name + "()"
	}
	return ""
}

// allocComposite flags slice and map literals; struct and array values
// live on the stack and pass.
func allocComposite(p *Package, cl *ast.CompositeLit) string {
	if tv, ok := p.Info.Types[cl]; ok && tv.Type != nil {
		switch tv.Type.Underlying().(type) {
		case *types.Slice:
			return "slice literal"
		case *types.Map:
			return "map literal"
		}
		return ""
	}
	// Parse-only fallback on the literal's syntactic type.
	switch t := cl.Type.(type) {
	case *ast.ArrayType:
		if t.Len == nil {
			return "slice literal"
		}
	case *ast.MapType:
		return "map literal"
	}
	return ""
}

func compositeName(cl *ast.CompositeLit) string {
	if cl.Type == nil {
		return "composite"
	}
	s := exprString(cl.Type)
	if s == "…" {
		return "composite"
	}
	return s
}

// HotpathFunc is one annotated function, keyed for the escape gate by
// its file and body line range (compiler diagnostics are positional).
type HotpathFunc struct {
	PkgPath   string
	Name      string // receiver-qualified, e.g. (*Cache).Fill
	File      string // slash path relative to the module root
	StartLine int
	EndLine   int
}

// HotpathFuncs collects every //lint:hotpath function in the loaded
// packages, sorted by package/file/line, with file paths relative to
// root for matching against `go build` output.
func HotpathFuncs(pkgs []*Package, root string) []HotpathFunc {
	var out []HotpathFunc
	for _, p := range pkgs {
		for _, file := range p.Files {
			if p.isTestFile(file.Pos()) {
				continue
			}
			for _, fd := range enclosingFuncs(file) {
				if fd.Body == nil || !hotpathAnnotated(fd) {
					continue
				}
				start := p.Fset.Position(fd.Pos())
				end := p.Fset.Position(fd.End())
				out = append(out, HotpathFunc{
					PkgPath:   p.PkgPath,
					Name:      qualifiedFuncName(fd),
					File:      relSlash(root, start.Filename),
					StartLine: start.Line,
					EndLine:   end.Line,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		if a.File != b.File {
			return a.File < b.File
		}
		return a.StartLine < b.StartLine
	})
	return out
}

// qualifiedFuncName renders "(*Cache).Fill" / "Measure" style names.
func qualifiedFuncName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		return "(*" + exprString(star.X) + ")." + fd.Name.Name
	}
	return exprString(t) + "." + fd.Name.Name
}

// relSlash renders filename relative to root with forward slashes; if
// filename is not under root it is returned cleaned as-is.
func relSlash(root, filename string) string {
	f := strings.ReplaceAll(filename, "\\", "/")
	r := strings.ReplaceAll(root, "\\", "/")
	if r != "" && strings.HasPrefix(f, r) {
		f = strings.TrimPrefix(strings.TrimPrefix(f, r), "/")
	}
	return f
}
