package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lock-order analysis: a lightweight, module-wide call graph over every
// statically resolvable call (direct function calls and concrete method
// calls — interface dispatch is skipped), combined with the per-function
// held-lock scan from lockcontract.go.
//
// For every function we record (a) which package-level locks it
// acquires directly and where, and (b) every call site together with
// the locks held at it. A fixed-point pass then computes each
// function's transitive acquire-set, and an edge L -> M is added to the
// lock-order graph whenever M can be acquired (directly or through a
// callee) while L is held. A cycle in that graph is a potential
// deadlock; holding L while calling code that re-acquires L is a
// potential self-deadlock (for sync.Mutex always, for RWMutex whenever
// a writer is queued between the two acquisitions).
//
// Lock identity is declaration-based ("pkg.Type.field" or "pkg.var"),
// not instance-based: two different Suite values share the id
// lattecc/internal/harness.Suite.mu. That is deliberately conservative
// — a real per-instance ordering scheme (e.g. locking parent before
// child suites) would need an //lint:allow with its justification.

// orderCall is one call site with the locks held when it executes.
type orderCall struct {
	callee string // types.Func FullName
	pos    token.Pos
	held   []string // lock ids held at the call (resolved ones only)
}

// orderAcquire is one direct lock acquisition.
type orderAcquire struct {
	lock string
	pos  token.Pos
	held []string // lock ids already held
}

// fnLockSummary is the per-function slice of the call graph.
type fnLockSummary struct {
	pkg      *Package
	calls    []orderCall
	acquires []orderAcquire
}

// heldIDs extracts the resolved lock ids from a held-state map, sorted
// for determinism.
func heldIDs(held lockState) []string {
	var ids []string
	for _, h := range held {
		if h.id != "" {
			ids = append(ids, h.id)
		}
	}
	sort.Strings(ids)
	return ids
}

// calleeName resolves a call expression to the *types.Func it invokes,
// if that target is statically known and has a body we may have
// summarized. Interface method calls return "".
func calleeName(p *Package, call *ast.CallExpr) string {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel := p.Info.Selections[fun]; sel != nil {
			if sel.Kind() != types.MethodVal {
				return ""
			}
			if types.IsInterface(sel.Recv()) {
				return ""
			}
		}
		obj = p.Info.Uses[fun.Sel]
	default:
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	return fn.FullName()
}

// summarizeLocks builds the lock summaries for every function in every
// package. Keys are types.Func full names, which are stable strings
// across the loader's per-package type-check universes.
func summarizeLocks(pkgs []*Package) map[string]*fnLockSummary {
	sums := map[string]*fnLockSummary{}
	for _, p := range pkgs {
		if len(p.Info.Defs) == 0 {
			continue // parse-only package: no resolvable call graph
		}
		c := collectLockContracts(p)
		for _, file := range p.Files {
			if p.isTestFile(file.Pos()) {
				continue
			}
			for _, fd := range enclosingFuncs(file) {
				if fd.Body == nil {
					continue
				}
				fnObj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sum := &fnLockSummary{pkg: p}
				recvType, recvName := receiverInfo(fd)
				sc := &lockScanner{p: p, c: c, recvType: recvType, recvName: recvName}
				sc.onAcquire = func(id string, pos token.Pos, held lockState) {
					if id == "" {
						return
					}
					ids := heldIDs(held)
					// held already includes the new lock; drop it.
					filtered := ids[:0]
					for _, h := range ids {
						if h != id {
							filtered = append(filtered, h)
						}
					}
					sum.acquires = append(sum.acquires, orderAcquire{lock: id, pos: pos, held: filtered})
				}
				sc.onCall = func(call *ast.CallExpr, held lockState) {
					callee := calleeName(p, call)
					if callee == "" {
						return
					}
					sum.calls = append(sum.calls, orderCall{callee: callee, pos: call.Pos(), held: heldIDs(held)})
				}
				sc.scanBody(fd.Body)
				sums[fnObj.FullName()] = sum
			}
		}
	}
	return sums
}

// checkLockOrder runs the module-wide analysis and reports lock-order
// cycles and potential self-deadlocks.
func checkLockOrder(pkgs []*Package) []Finding {
	sums := summarizeLocks(pkgs)
	if len(sums) == 0 {
		return nil
	}

	// Transitive acquire-sets by fixed point over the call graph.
	acq := map[string]map[string]bool{}
	for name, sum := range sums {
		set := map[string]bool{}
		for _, a := range sum.acquires {
			set[a.lock] = true
		}
		acq[name] = set
	}
	for changed := true; changed; {
		changed = false
		for name, sum := range sums {
			set := acq[name]
			for _, c := range sum.calls {
				for l := range acq[c.callee] {
					if !set[l] {
						set[l] = true
						changed = true
					}
				}
			}
		}
	}

	// Build the lock-order graph and collect self-deadlock witnesses.
	type edgeKey struct{ from, to string }
	edges := map[edgeKey]token.Position{}
	addEdge := func(from, to string, pos token.Position) {
		k := edgeKey{from, to}
		if old, ok := edges[k]; !ok || pos.Filename < old.Filename ||
			(pos.Filename == old.Filename && pos.Line < old.Line) {
			edges[k] = pos
		}
	}
	var out []Finding
	fnNames := make([]string, 0, len(sums))
	for name := range sums {
		fnNames = append(fnNames, name)
	}
	sort.Strings(fnNames)
	for _, name := range fnNames {
		sum := sums[name]
		for _, a := range sum.acquires {
			pos := sum.pkg.Fset.Position(a.pos)
			for _, h := range a.held {
				if h == a.lock {
					continue
				}
				addEdge(h, a.lock, pos)
			}
		}
		for _, c := range sum.calls {
			if len(c.held) == 0 {
				continue
			}
			callee := acq[c.callee]
			if len(callee) == 0 {
				continue
			}
			pos := sum.pkg.Fset.Position(c.pos)
			locks := make([]string, 0, len(callee))
			for l := range callee {
				locks = append(locks, l)
			}
			sort.Strings(locks)
			for _, l := range locks {
				for _, h := range c.held {
					if h == l {
						out = append(out, Finding{
							Pos:  pos,
							Rule: "lock-order",
							Message: fmt.Sprintf("calling %s while holding %s may self-deadlock: the callee acquires the same lock",
								shortFn(c.callee), l),
						})
					} else {
						addEdge(h, l, pos)
					}
				}
			}
		}
	}

	// Cycle detection over the lock-order graph.
	adj := map[string][]string{}
	for k := range edges {
		adj[k.from] = append(adj[k.from], k.to)
	}
	for _, succ := range adj {
		sort.Strings(succ)
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	reported := map[string]bool{}
	var dfs func(n string)
	dfs = func(n string) {
		color[n] = gray
		stack = append(stack, n)
		for _, m := range adj[n] {
			switch color[m] {
			case white:
				dfs(m)
			case gray:
				// Found a cycle: stack suffix from m to n, closed by n->m.
				i := len(stack) - 1
				for i >= 0 && stack[i] != m {
					i--
				}
				cycle := append(append([]string{}, stack[i:]...), m)
				canon := canonicalCycle(cycle)
				if !reported[canon] {
					reported[canon] = true
					pos := edges[edgeKey{n, m}]
					out = append(out, Finding{
						Pos:     pos,
						Rule:    "lock-order",
						Message: fmt.Sprintf("lock acquisition order cycle: %s (closing edge acquired here)", canon),
					})
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			dfs(n)
		}
	}
	return out
}

// canonicalCycle renders a cycle rotated to start at its smallest lock
// id so the same cycle found from different entry points dedups.
func canonicalCycle(cycle []string) string {
	// cycle is [a b c a]; drop the duplicate tail.
	ring := cycle[:len(cycle)-1]
	min := 0
	for i := range ring {
		if ring[i] < ring[min] {
			min = i
		}
	}
	parts := make([]string, 0, len(ring)+1)
	for i := 0; i <= len(ring); i++ {
		parts = append(parts, ring[(min+i)%len(ring)])
	}
	return strings.Join(parts, " -> ")
}

// shortFn trims the module prefix from a function's full name for
// readable messages.
func shortFn(full string) string {
	return strings.ReplaceAll(full, "lattecc/internal/", "")
}
