package tracefile

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"lattecc/internal/modes"
	"lattecc/internal/policy"
	"lattecc/internal/sim"
	"lattecc/internal/workload"
)

func TestRoundTripRecords(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "TESTWL")
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{SM: 0, Cycle: 10, Addr: 0x1000, Write: false},
		{SM: 1, Cycle: 5, Addr: 0x2000, Write: true},
		{SM: 0, Cycle: 12, Addr: 0x1080, Write: false},
		{SM: 0, Cycle: 12, Addr: 0x1100, Write: false}, // same-cycle delta 0
		{SM: 1, Cycle: 900, Addr: 0xFFFFFF80, Write: false},
	}
	for _, rec := range recs {
		w.Record(rec.SM, rec.Cycle, rec.Addr, rec.Write)
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload() != "TESTWL" {
		t.Fatalf("workload = %q", r.Workload())
	}
	for i, want := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic must error")
	}
	if _, err := NewReader(strings.NewReader("LC")); err == nil {
		t.Fatal("short header must error")
	}
	// Truncated record after a valid header.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "X")
	w.Record(0, 1, 128, false)
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-1]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated record must fail loudly, got %v", err)
	}
}

// recordedTrace runs a small simulation with tracing enabled.
func recordedTrace(t *testing.T, workloadName string) (*bytes.Buffer, sim.Result) {
	t.Helper()
	wl, err := workload.ByName(workloadName)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, workloadName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.NumSMs = 2
	cfg.Trace = tw
	res := sim.New(cfg, wl, func(int) modes.Controller {
		return policy.NewStatic(modes.None, "Uncompressed", 256, 10)
	}).Run()
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Count() == 0 {
		t.Fatal("no records captured")
	}
	return &buf, res
}

func TestReplayMatchesSimulatedHitRate(t *testing.T) {
	buf, res := recordedTrace(t, "BO")
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wl, _ := workload.ByName("BO")
	cacheCfg := sim.DefaultConfig().Cache
	rep, err := Replay(r, cacheCfg, func(int) modes.Controller {
		return policy.NewStatic(modes.None, "Uncompressed", 256, 10)
	}, wl.Data(), "Uncompressed")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "BO" {
		t.Fatalf("workload = %q", rep.Workload)
	}
	// Replay reproduces the same access stream through the same structure;
	// the access count matches exactly, and the hit count lands within 2%
	// (replay fills misses immediately — no MSHR in-flight window — so
	// secondary misses become hits).
	if rep.Cache.Accesses != res.Cache.Accesses {
		t.Fatalf("accesses %d vs simulated %d", rep.Cache.Accesses, res.Cache.Accesses)
	}
	simHR := float64(res.Cache.Hits) / float64(res.Cache.Accesses)
	repHR := float64(rep.Cache.Hits) / float64(rep.Cache.Accesses)
	if diff := repHR - simHR; diff < -0.02 || diff > 0.02 {
		t.Fatalf("replay hit rate %.4f vs simulated %.4f (diff %.4f)", repHR, simHR, diff)
	}
}

func TestReplayPolicyComparison(t *testing.T) {
	// Record once with the baseline, replay under Static-BDI: on the
	// stride-data FW workload, BDI replay must show more hits.
	buf, _ := recordedTrace(t, "FW")
	cacheCfg := sim.DefaultConfig().Cache
	wl, _ := workload.ByName("FW")

	replayWith := func(m modes.Mode, name string) ReplayResult {
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Replay(r, cacheCfg, func(int) modes.Controller {
			return policy.NewStatic(m, name, 256, 10)
		}, wl.Data(), name)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := replayWith(modes.None, "Uncompressed")
	bdi := replayWith(modes.LowLat, "Static-BDI")
	if bdi.Cache.Hits <= base.Cache.Hits {
		t.Fatalf("BDI replay hits %d must exceed baseline %d on FW",
			bdi.Cache.Hits, base.Cache.Hits)
	}
	if bdi.Cache.InsertsByMode[modes.LowLat] == 0 {
		t.Fatal("BDI replay must insert compressed lines")
	}
}

func TestTraceFormatGolden(t *testing.T) {
	// Lock the on-disk byte format: traces written today must stay
	// readable by future versions.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "GL")
	w.Record(0, 3, 256, false)
	w.Record(1, 7, 128, true)
	w.Flush()
	want := []byte{
		'L', 'C', 'T', '1',
		2, 'G', 'L', // name
		0, 3, 0x80, 2, 0, // sm=0 delta=3 addr=256(varint 0x80 0x02) flags=0
		1, 7, 0x80, 1, 1, // sm=1 delta=7 addr=128 flags=1(write)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("format drifted:\n got %v\nwant %v", buf.Bytes(), want)
	}
}
