// Package tracefile records L1 access traces from full simulations and
// replays them through the compressed cache alone. Replay skips the SM
// pipeline entirely, so cache-policy questions (hit rates, compression
// ratios, insertion mixes under different controllers) answer one to two
// orders of magnitude faster than re-simulating — the standard
// trace-driven companion to an execution-driven simulator.
//
// The binary format is deliberately simple and delta-compressed:
//
//	magic "LCT1" | uvarint workloadNameLen | name bytes
//	records: uvarint sm | uvarint cycleDelta | uvarint lineAddr | byte flags
//
// cycleDelta is relative to the previous record of the same SM. flags bit
// 0 is the write bit. Timing is advisory on replay (the cache model is
// structural); it is preserved so decompressor-queue effects stay
// meaningful.
package tracefile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"lattecc/internal/cache"
	"lattecc/internal/compress"
	"lattecc/internal/modes"
	"lattecc/internal/trace"
)

// magic identifies trace files.
const magic = "LCT1"

// Record is one L1 access.
type Record struct {
	SM    int
	Cycle uint64
	Addr  uint64
	Write bool
}

// Writer streams records to an underlying writer.
type Writer struct {
	w         *bufio.Writer
	lastCycle map[int]uint64
	count     uint64
	err       error
}

// NewWriter writes a trace header for the named workload.
func NewWriter(w io.Writer, workloadName string) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(workloadName)))
	bw.Write(buf[:n])
	bw.WriteString(workloadName)
	return &Writer{w: bw, lastCycle: make(map[int]uint64)}, nil
}

// Record implements the simulator's access hook.
func (t *Writer) Record(sm int, cycle uint64, addr uint64, write bool) {
	if t.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	emit := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		if _, err := t.w.Write(buf[:n]); err != nil {
			t.err = err
		}
	}
	last := t.lastCycle[sm]
	delta := uint64(0)
	if cycle > last {
		delta = cycle - last
	}
	t.lastCycle[sm] = cycle
	emit(uint64(sm))
	emit(delta)
	emit(addr)
	flags := byte(0)
	if write {
		flags |= 1
	}
	if t.err == nil {
		t.err = t.w.WriteByte(flags)
	}
	t.count++
}

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.count }

// Flush completes the trace.
func (t *Writer) Flush() error {
	if t.err != nil {
		return fmt.Errorf("tracefile: %w", t.err)
	}
	return t.w.Flush()
}

// Reader iterates a trace.
type Reader struct {
	r         *bufio.Reader
	workload  string
	lastCycle map[int]uint64
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("tracefile: header: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("tracefile: bad magic %q", head)
	}
	n, err := readUvarint(br)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // header promised a name length
		}
		return nil, fmt.Errorf("tracefile: name length: %w", err)
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("tracefile: implausible name length %d", n)
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("tracefile: name: %w", err)
	}
	return &Reader{r: br, workload: string(name), lastCycle: make(map[int]uint64)}, nil
}

// Workload returns the workload name stored in the header.
func (r *Reader) Workload() string { return r.workload }

// Next returns the next record, or io.EOF at the end. io.EOF only ever
// means a clean end on a record boundary: a stream cut anywhere inside
// a record — including mid-uvarint — comes back as a wrapped
// io.ErrUnexpectedEOF, never a silent short read.
func (r *Reader) Next() (Record, error) {
	sm, err := readUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF // clean end between records
		}
		return Record{}, fmt.Errorf("tracefile: truncated record (sm): %w", err)
	}
	delta, err := r.readField("cycle delta")
	if err != nil {
		return Record{}, err
	}
	addr, err := r.readField("line addr")
	if err != nil {
		return Record{}, err
	}
	flags, err := r.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Record{}, fmt.Errorf("tracefile: truncated record (flags): %w", err)
	}
	cycle := r.lastCycle[int(sm)] + delta
	r.lastCycle[int(sm)] = cycle
	return Record{SM: int(sm), Cycle: cycle, Addr: addr, Write: flags&1 != 0}, nil
}

// readField decodes a uvarint that must be present — the record already
// started, so even a clean EOF here is a truncation.
func (r *Reader) readField(name string) (uint64, error) {
	v, err := readUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, fmt.Errorf("tracefile: truncated record (%s): %w", name, err)
	}
	return v, nil
}

// readUvarint is binary.ReadUvarint with honest truncation reporting:
// the stdlib version returns a bare io.EOF even when the stream dies in
// the middle of a multi-byte varint, which a record loop would mistake
// for a clean end of trace. Here io.EOF can only surface before the
// first byte; EOF after that becomes io.ErrUnexpectedEOF.
func readUvarint(br *bufio.Reader) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if i == binary.MaxVarintLen64 || (i == binary.MaxVarintLen64-1 && b > 1) {
			return 0, fmt.Errorf("uvarint overflows 64 bits")
		}
		if b < 0x80 {
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// ReplayResult aggregates per-policy replay statistics.
type ReplayResult struct {
	Workload string
	Policy   string
	Records  uint64
	Cache    cache.Stats // aggregated over SMs
}

// Replay drives a trace through one compressed cache per SM, with a fresh
// controller from the factory for each, filling misses from the data
// source. Writes are ignored (the simulated L1 is write-avoid).
//
// Replay is structural, not timed: misses fill immediately instead of
// after the memory latency, so lines become resident slightly earlier
// than in the execution-driven run and secondary misses to in-flight
// lines turn into hits. Expect replayed hit counts within a couple of
// percent of the full simulation — the standard trade of trace-driven
// models.
func Replay(r *Reader, cacheCfg cache.Config, factory func(numSets int) modes.Controller, data trace.DataSource, policyName string) (ReplayResult, error) {
	res := ReplayResult{Workload: r.Workload(), Policy: policyName}
	caches := map[int]*cache.Cache{}
	numSets := cacheCfg.SizeBytes / (cacheCfg.LineSize * cacheCfg.Ways)
	lineSize := uint64(cacheCfg.LineSize)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return res, err
		}
		if rec.Write {
			continue
		}
		c := caches[rec.SM]
		if c == nil {
			cfg := cacheCfg
			cfg.Codecs = freshCodecs(cacheCfg)
			c = cache.New(cfg, factory(numSets))
			caches[rec.SM] = c
		}
		res.Records++
		if out := c.Access(rec.Addr, rec.Cycle); !out.Hit {
			c.Fill(rec.Addr, data.Line(rec.Addr/lineSize), rec.Cycle)
		}
	}
	for _, c := range caches {
		cs := c.Stats()
		res.Cache.Accesses += cs.Accesses
		res.Cache.Hits += cs.Hits
		res.Cache.Misses += cs.Misses
		res.Cache.CompressedHits += cs.CompressedHits
		res.Cache.DecompWait += cs.DecompWait
		res.Cache.Fills += cs.Fills
		res.Cache.Evictions += cs.Evictions
		res.Cache.UncompressedSize += cs.UncompressedSize
		res.Cache.CompressedSize += cs.CompressedSize
		for m := range cs.InsertsByMode {
			res.Cache.InsertsByMode[m] += cs.InsertsByMode[m]
			res.Cache.HitsByMode[m] += cs.HitsByMode[m]
		}
	}
	return res, nil
}

// freshCodecs clones the codec set so each replayed SM gets independent
// SC state (mirrors the simulator's per-SM codec instantiation).
func freshCodecs(cfg cache.Config) [modes.NumModes]compress.Codec {
	var out [modes.NumModes]compress.Codec
	for m, codec := range cfg.Codecs {
		if codec == nil {
			continue
		}
		switch codec.(type) {
		case *compress.SC:
			out[m] = compress.NewSC()
		case *compress.BDI:
			out[m] = compress.NewBDI()
		case *compress.BPC:
			out[m] = compress.NewBPC()
		case *compress.FPC:
			out[m] = compress.NewFPC()
		case *compress.CPACK:
			out[m] = compress.NewCPACK()
		default:
			out[m] = codec
		}
	}
	return out
}
