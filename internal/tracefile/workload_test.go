package tracefile

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lattecc/internal/core"
	"lattecc/internal/modes"
	"lattecc/internal/sim"
	"lattecc/internal/trace"
	"lattecc/internal/workload"
)

// corpusFixture builds a small valid corpus entry in memory: a 120-record
// trace over two regions plus its sidecar.
func corpusFixture(t *testing.T, name string) (lct, meta []byte) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, name)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		sm := i % 2
		addr := uint64(i%48) * 128 // byte addresses within region 0
		if i%5 == 0 {
			addr = 1<<18 + uint64(i%32)*128 // region 1
		}
		w.Record(sm, uint64(i*3), addr, i%7 == 0)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	meta, err = EncodeCorpusMeta(CorpusEntry{
		Name: name, Source: "unit", Category: trace.CSens,
		Blocks: 4, WarpsPerBlock: 2, ALUGapCap: 8,
		Regions: []workload.Region{
			{Start: 0, Lines: 64, Style: workload.StyleStrideInt, Seed: 9},
			{Start: 1 << 11, Lines: 64, Style: workload.StyleRandom, Seed: 10},
		},
	}, buf.Bytes(), w.Count())
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), meta
}

// mutateMeta decodes the sidecar, applies the mutation, and re-encodes.
func mutateMeta(t *testing.T, meta []byte, mutate func(map[string]any)) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(meta, &m); err != nil {
		t.Fatal(err)
	}
	mutate(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCorpusLoadsValidEntry(t *testing.T) {
	lct, meta := corpusFixture(t, "UNIT")
	w, err := LoadWorkloadBytes(lct, meta)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "UNIT" || w.Source() != "unit" || w.Records() != 120 {
		t.Fatalf("loaded workload %s/%s with %d records", w.Name(), w.Source(), w.Records())
	}
	ks := w.Kernels()
	if len(ks) != 1 || ks[0].Blocks != 4 || ks[0].WarpsPerBlock != 2 {
		t.Fatalf("unexpected kernel geometry: %+v", ks[0])
	}
	ks[0].Validate()
	// Every record must reappear as exactly one memory instruction, in
	// capture order, partitioned across the 8 warp programs.
	total := 0
	for b := 0; b < ks[0].Blocks; b++ {
		for wi := 0; wi < ks[0].WarpsPerBlock; wi++ {
			p := ks[0].Program(b, wi)
			for {
				inst, ok := p.Next()
				if !ok {
					break
				}
				if inst.Op == trace.OpLoad || inst.Op == trace.OpStore {
					total++
				}
			}
		}
	}
	if total != 120 {
		t.Fatalf("replay programs carry %d memory ops, capture had 120", total)
	}
}

// TestCorpusTraceTruncationSweep truncates the trace at every byte
// offset: all must fail closed (the sidecar checksum covers the whole
// stream, so even record-boundary truncation — invisible to the LCT1
// reader — is caught) and none may panic.
func TestCorpusTraceTruncationSweep(t *testing.T) {
	lct, meta := corpusFixture(t, "UNIT")
	for cut := 0; cut < len(lct); cut++ {
		if _, err := LoadWorkloadBytes(lct[:cut], meta); err == nil {
			t.Fatalf("truncation at byte %d/%d loaded successfully", cut, len(lct))
		}
	}
}

// TestCorpusTraceBitflipSweep flips one bit in every byte of the trace:
// the checksum must catch each.
func TestCorpusTraceBitflipSweep(t *testing.T) {
	lct, meta := corpusFixture(t, "UNIT")
	for i := range lct {
		mut := append([]byte(nil), lct...)
		mut[i] ^= 1 << uint(i%8)
		if _, err := LoadWorkloadBytes(mut, meta); err == nil {
			t.Fatalf("bit flip at byte %d loaded successfully", i)
		}
	}
}

// TestCorpusSidecarRejections sweeps the sidecar's rejection surface.
func TestCorpusSidecarRejections(t *testing.T) {
	lct, meta := corpusFixture(t, "UNIT")
	cases := []struct {
		name   string
		mutate func(map[string]any)
		want   string
	}{
		{"unknown-field", func(m map[string]any) { m["surprise"] = 1 }, "unknown field"},
		{"missing-name", func(m map[string]any) { m["name"] = "" }, "missing name"},
		{"bad-category", func(m map[string]any) { m["category"] = "C-Maybe" }, "unknown category"},
		{"zero-blocks", func(m map[string]any) { m["blocks"] = 0 }, "positive blocks"},
		{"negative-warps", func(m map[string]any) { m["warpsPerBlock"] = -1 }, "positive blocks"},
		{"gapcap-over-max", func(m map[string]any) { m["aluGapCap"] = maxALUGapCap + 1 }, "exceeds"},
		{"zero-records", func(m map[string]any) { m["records"] = 0 }, "zero records"},
		{"records-mismatch", func(m map[string]any) { m["records"] = 121 }, "sidecar promises"},
		{"bad-checksum", func(m map[string]any) { m["checksum"] = "fnv1a64:0000000000000000" }, "checksum mismatch"},
		{"no-regions", func(m map[string]any) { m["regions"] = []any{} }, "no data regions"},
		{"unknown-style", func(m map[string]any) {
			m["regions"].([]any)[0].(map[string]any)["style"] = "prime-sieve"
		}, "unknown style"},
		{"zero-lines", func(m map[string]any) {
			m["regions"].([]any)[0].(map[string]any)["lines"] = 0
		}, "zero lines"},
		{"too-many-warps", func(m map[string]any) { m["blocks"] = 100; m["warpsPerBlock"] = 8 }, "cannot fill"},
	}
	for _, tc := range cases {
		mut := mutateMeta(t, meta, tc.mutate)
		_, err := LoadWorkloadBytes(lct, mut)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Trailing data after the JSON document.
	if _, err := LoadWorkloadBytes(lct, append(append([]byte(nil), meta...), []byte("{}")...)); err == nil {
		t.Error("trailing data accepted")
	}
	// A header/sidecar name disagreement (both individually valid).
	otherLct, _ := corpusFixture(t, "OTHER")
	fixed := mutateMeta(t, meta, func(m map[string]any) {
		m["checksum"] = checksumOf(otherLct)
	})
	if _, err := LoadWorkloadBytes(otherLct, fixed); err == nil || !strings.Contains(err.Error(), "trace header names") {
		t.Errorf("header-name mismatch not rejected: %v", err)
	}
}

// TestLoadCorpusDirectory covers the directory-level contract: stem
// pairing, name-vs-filename agreement, orphan detection, and whole-load
// failure on any bad entry.
func TestLoadCorpusDirectory(t *testing.T) {
	lct, meta := corpusFixture(t, "UNIT")
	write := func(dir, name string, b []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("valid", func(t *testing.T) {
		dir := t.TempDir()
		write(dir, "UNIT.lct", lct)
		write(dir, "UNIT.json", meta)
		ws, err := LoadCorpus(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ws) != 1 || ws[0].Name() != "UNIT" {
			t.Fatalf("loaded %d entries", len(ws))
		}
	})
	t.Run("stem-mismatch", func(t *testing.T) {
		dir := t.TempDir()
		write(dir, "ALIAS.lct", lct)
		write(dir, "ALIAS.json", meta)
		if _, err := LoadCorpus(dir); err == nil || !strings.Contains(err.Error(), "sidecar names") {
			t.Fatalf("filename/sidecar name mismatch not rejected: %v", err)
		}
	})
	t.Run("missing-sidecar", func(t *testing.T) {
		dir := t.TempDir()
		write(dir, "UNIT.lct", lct)
		if _, err := LoadCorpus(dir); err == nil {
			t.Fatal(".lct without sidecar accepted")
		}
	})
	t.Run("orphan-sidecar", func(t *testing.T) {
		dir := t.TempDir()
		write(dir, "UNIT.lct", lct)
		write(dir, "UNIT.json", meta)
		write(dir, "GHOST.json", meta)
		if _, err := LoadCorpus(dir); err == nil || !strings.Contains(err.Error(), "GHOST.json") {
			t.Fatalf("orphan sidecar not rejected: %v", err)
		}
	})
	t.Run("one-bad-entry-fails-all", func(t *testing.T) {
		dir := t.TempDir()
		write(dir, "UNIT.lct", lct)
		write(dir, "UNIT.json", meta)
		otherLct, otherMeta := corpusFixture(t, "ZBAD")
		write(dir, "ZBAD.lct", otherLct[:len(otherLct)-3])
		write(dir, "ZBAD.json", otherMeta)
		if _, err := LoadCorpus(dir); err == nil {
			t.Fatal("corpus with one corrupt entry loaded")
		}
	})
}

// TestCommittedCorpusReplayDeterminism drives the committed corpus
// entries end to end: each must load, run under the full adaptive
// controller, and produce a StateHash that is stable across repeated
// runs and across the SM-parallel epoch engine.
func TestCommittedCorpusReplayDeterminism(t *testing.T) {
	ws, err := LoadCorpus(filepath.Join("..", "..", "testdata", "traces"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("committed corpus is empty")
	}
	cfg := sim.DefaultConfig()
	cfg.NumSMs = 2
	cfg.MaxInstructions = 30_000
	latte := func(n int) modes.Controller { return core.New(core.DefaultConfig(n)) }
	for _, w := range ws {
		run := func(smJobs int) uint64 {
			c := cfg
			c.SMJobs = smJobs
			return sim.New(c, w, latte).Run().StateHash()
		}
		serial := run(1)
		if again := run(1); again != serial {
			t.Errorf("%s: repeated replay differs: %#x vs %#x", w.Name(), serial, again)
		}
		if par := run(2); par != serial {
			t.Errorf("%s: StateHash(SMJobs=2)=%#x != serial %#x", w.Name(), par, serial)
		}
	}
}
