package tracefile

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"lattecc/internal/modes"
	"lattecc/internal/policy"
	"lattecc/internal/sim"
	"lattecc/internal/workload"
)

// TestCorruptHeader covers every way the fixed header can go wrong:
// empty input, a cut magic, a wrong magic, a name length cut mid-varint,
// an absurd name length, and a name shorter than promised. All must
// error from NewReader; none may succeed or panic.
func TestCorruptHeader(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"partial magic", "LC"},
		{"bad magic", "NOPE...."},
		{"magic only", "LCT1"},
		{"name length cut mid-varint", "LCT1\x80"},
		{"name shorter than promised", "LCT1\x05AB"},
	}
	for _, tc := range cases {
		r, err := NewReader(strings.NewReader(tc.input))
		if err == nil {
			t.Errorf("%s: NewReader accepted corrupt header (workload %q)", tc.name, r.Workload())
			continue
		}
		if err == io.EOF {
			t.Errorf("%s: bare io.EOF leaks a silent short read: %v", tc.name, err)
		}
	}

	// Implausible name length must be rejected before allocating it.
	huge := append([]byte(magic), 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	if _, err := NewReader(bytes.NewReader(huge)); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Errorf("huge name length: got %v", err)
	}
}

// TestTruncationAtEveryByte writes a real multi-record trace and then
// replays it cut at every possible byte offset. The contract under
// test: io.EOF surfaces only on record boundaries (a clean end), every
// other cut point reports a wrapped io.ErrUnexpectedEOF, and no cut
// panics or silently drops the tail. Multi-byte varint addresses make
// sure several cut points land mid-uvarint.
func TestTruncationAtEveryByte(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "T")
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{SM: 0, Cycle: 1, Addr: 0x80, Write: false},        // 2-byte addr varint
		{SM: 1, Cycle: 300, Addr: 0xFFFFFF80, Write: true}, // multi-byte delta and addr
		{SM: 0, Cycle: 2, Addr: 0x40, Write: false},
	}
	// Flush after every record to learn each boundary's byte offset.
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	headerLen := buf.Len()
	boundaries := map[int]bool{headerLen: true}
	for _, rec := range recs {
		w.Record(rec.SM, rec.Cycle, rec.Addr, rec.Write)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		boundaries[buf.Len()] = true
	}
	full := buf.Bytes()

	for cut := headerLen; cut <= len(full); cut++ {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: header rejected: %v", cut, err)
		}
		n := 0
		for {
			_, err = r.Next()
			if err != nil {
				break
			}
			n++
		}
		if boundaries[cut] {
			if err != io.EOF {
				t.Errorf("cut %d is a record boundary, want clean io.EOF, got %v", cut, err)
			}
		} else {
			if err == io.EOF {
				t.Errorf("cut %d: mid-record truncation surfaced as clean io.EOF after %d records", cut, n)
			} else if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Errorf("cut %d: want wrapped io.ErrUnexpectedEOF, got %v", cut, err)
			}
		}
	}
}

// TestUvarintOverflow feeds a varint that never terminates within 64
// bits; the reader must reject it rather than loop or wrap around.
func TestUvarintOverflow(t *testing.T) {
	evil := append([]byte("LCT1\x01T"), bytes.Repeat([]byte{0xFF}, 11)...)
	r, err := NewReader(bytes.NewReader(evil))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Next()
	if err == nil || !strings.Contains(err.Error(), "overflows") {
		t.Fatalf("want overflow error, got %v", err)
	}
}

// TestReplayRejectsTruncatedTrace: a cut trace must fail Replay with an
// identifying error, not return statistics over a silently shortened
// access stream.
func TestReplayRejectsTruncatedTrace(t *testing.T) {
	buf, _ := recordedTrace(t, "BO")
	full := buf.Bytes()
	trunc := full[:len(full)-3] // inside the final record

	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	wl, _ := workload.ByName("BO")
	_, err = Replay(r, sim.DefaultConfig().Cache, func(int) modes.Controller {
		return policy.NewStatic(modes.None, "Uncompressed", 256, 10)
	}, wl.Data(), "Uncompressed")
	if err == nil {
		t.Fatal("Replay accepted a truncated trace")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want io.ErrUnexpectedEOF, got %v", err)
	}
}
