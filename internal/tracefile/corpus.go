// Trace-corpus registry: recorded traces promoted to first-class
// workloads. A corpus directory holds pairs of files per entry —
// <NAME>.lct (the LCT1 record stream) and <NAME>.json (a sidecar with
// the replay geometry, the data-region table needed to regenerate line
// bytes, and integrity metadata). LoadCorpus validates fail-closed: a
// truncated or bit-flipped trace, a record-count mismatch, or a
// malformed sidecar rejects the entry with an error rather than
// replaying a silently different workload — mirroring resultstore's
// checksum-then-decode discipline.
package tracefile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"lattecc/internal/trace"
	"lattecc/internal/workload"
)

// corpusMeta is the sidecar JSON schema.
type corpusMeta struct {
	Name          string         `json:"name"`
	Source        string         `json:"source,omitempty"` // workload the trace was captured from
	Category      string         `json:"category"`         // "C-Sens" or "C-InSens"
	Blocks        int            `json:"blocks"`
	WarpsPerBlock int            `json:"warpsPerBlock"`
	// ALUGapCap paces replay: the cycle gap between consecutive records of
	// a warp's chunk becomes one ALU instruction of that latency, capped
	// here (0 disables pacing entirely).
	ALUGapCap uint32         `json:"aluGapCap"`
	Records   uint64         `json:"records"`
	Checksum  string         `json:"checksum"` // fnv1a64:<16 hex> over the .lct bytes
	Regions   []corpusRegion `json:"regions"`
}

type corpusRegion struct {
	Start uint64 `json:"start"`
	Lines uint64 `json:"lines"`
	Style string `json:"style"`
	Seed  uint64 `json:"seed"`
	Dict  uint32 `json:"dict,omitempty"`
}

// maxALUGapCap bounds the pacing latency a sidecar may request; beyond
// this a corrupt field would turn replay into an idle-cycle marathon.
const maxALUGapCap = 4096

// CorpusEntry describes one corpus entry for sidecar generation
// (cmd/tracegen). Regions use the workload package's region table so the
// replayed lines carry the same bytes the capture compressed.
type CorpusEntry struct {
	Name          string
	Source        string
	Category      trace.Category
	Blocks        int
	WarpsPerBlock int
	ALUGapCap     uint32
	Regions       []workload.Region
}

// checksumOf renders the integrity line for a trace byte stream.
func checksumOf(traceBytes []byte) string {
	h := fnv.New64a()
	h.Write(traceBytes)
	return fmt.Sprintf("fnv1a64:%016x", h.Sum64())
}

// EncodeCorpusMeta renders the sidecar JSON for a corpus entry whose
// trace file holds traceBytes with the given record count.
func EncodeCorpusMeta(e CorpusEntry, traceBytes []byte, records uint64) ([]byte, error) {
	m := corpusMeta{
		Name: e.Name, Source: e.Source, Category: e.Category.String(),
		Blocks: e.Blocks, WarpsPerBlock: e.WarpsPerBlock,
		ALUGapCap: e.ALUGapCap, Records: records,
		Checksum: checksumOf(traceBytes),
	}
	for _, r := range e.Regions {
		name := workload.StyleName(r.Style)
		if name == "" {
			return nil, fmt.Errorf("tracefile: corpus %s: unknown value style %d", e.Name, r.Style)
		}
		m.Regions = append(m.Regions, corpusRegion{
			Start: r.Start, Lines: r.Lines, Style: name, Seed: r.Seed, Dict: r.Dict,
		})
	}
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("tracefile: corpus %s: %w", e.Name, err)
	}
	return append(out, '\n'), nil
}

// ReplayWorkload is a recorded trace packaged as a trace.Workload: the
// record stream is split into per-warp instruction slices at load time,
// so replay runs through the full simulator (SM pipelines, harness
// cache, result store, daemon) like any synthetic workload. Programs are
// read-only after construction, keeping Data/Kernels safe for the
// simulator's SM-parallel epoch engine.
type ReplayWorkload struct {
	name    string
	source  string
	cat     trace.Category
	blocks  int
	perWarp int
	regions []workload.Region
	warps   [][]trace.Inst
	records uint64
}

var _ trace.Workload = (*ReplayWorkload)(nil)

// Name implements trace.Workload.
func (w *ReplayWorkload) Name() string { return w.name }

// Source returns the workload the trace was captured from ("" if
// unrecorded).
func (w *ReplayWorkload) Source() string { return w.source }

// Records returns the number of trace records behind the workload.
func (w *ReplayWorkload) Records() uint64 { return w.records }

// Category implements trace.Workload.
func (w *ReplayWorkload) Category() trace.Category { return w.cat }

// Data implements trace.Workload.
func (w *ReplayWorkload) Data() trace.DataSource { return workload.NewData(w.regions) }

// Kernels implements trace.Workload: one kernel whose warp programs
// replay the per-warp record chunks.
func (w *ReplayWorkload) Kernels() []trace.Kernel {
	return []trace.Kernel{{
		Name:          w.name + "-replay",
		Blocks:        w.blocks,
		WarpsPerBlock: w.perWarp,
		Program: func(block, warp int) trace.Program {
			return trace.NewSliceProgram(w.warps[block*w.perWarp+warp])
		},
	}}
}

// parseCategory resolves the sidecar's category string.
func parseCategory(s string) (trace.Category, error) {
	switch s {
	case "C-Sens":
		return trace.CSens, nil
	case "C-InSens":
		return trace.CInSens, nil
	default:
		return 0, fmt.Errorf("unknown category %q (want C-Sens or C-InSens)", s)
	}
}

// LoadWorkload builds a ReplayWorkload from a trace file and its
// sidecar. Every validation failure is fatal for the entry (fail-closed).
func LoadWorkload(lctPath, metaPath string) (*ReplayWorkload, error) {
	metaBytes, err := os.ReadFile(metaPath)
	if err != nil {
		return nil, fmt.Errorf("tracefile: corpus sidecar: %w", err)
	}
	traceBytes, err := os.ReadFile(lctPath)
	if err != nil {
		return nil, fmt.Errorf("tracefile: corpus: %w", err)
	}
	w, err := LoadWorkloadBytes(traceBytes, metaBytes)
	if err != nil {
		return nil, err
	}
	stem := strings.TrimSuffix(filepath.Base(lctPath), ".lct")
	if w.Name() != stem {
		return nil, fmt.Errorf("tracefile: corpus %s: sidecar names %q, file is %q", lctPath, w.Name(), stem)
	}
	return w, nil
}

// LoadWorkloadBytes is LoadWorkload over in-memory trace and sidecar
// bytes (no filename-stem check) — the path tests and the oracle use to
// round-trip capture→replay without touching disk.
func LoadWorkloadBytes(traceBytes, metaBytes []byte) (*ReplayWorkload, error) {
	dec := json.NewDecoder(bytes.NewReader(metaBytes))
	dec.DisallowUnknownFields()
	var m corpusMeta
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("tracefile: corpus sidecar: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("tracefile: corpus sidecar: trailing data")
	}
	if m.Name == "" {
		return nil, fmt.Errorf("tracefile: corpus sidecar: missing name")
	}
	cat, err := parseCategory(m.Category)
	if err != nil {
		return nil, fmt.Errorf("tracefile: corpus %s: %w", m.Name, err)
	}
	if m.Blocks <= 0 || m.WarpsPerBlock <= 0 {
		return nil, fmt.Errorf("tracefile: corpus %s: need positive blocks and warpsPerBlock", m.Name)
	}
	if m.ALUGapCap > maxALUGapCap {
		return nil, fmt.Errorf("tracefile: corpus %s: aluGapCap %d exceeds %d", m.Name, m.ALUGapCap, maxALUGapCap)
	}
	if m.Records == 0 {
		return nil, fmt.Errorf("tracefile: corpus %s: zero records", m.Name)
	}
	if len(m.Regions) == 0 {
		return nil, fmt.Errorf("tracefile: corpus %s: no data regions", m.Name)
	}
	w := &ReplayWorkload{
		name: m.Name, source: m.Source, cat: cat,
		blocks: m.Blocks, perWarp: m.WarpsPerBlock,
	}
	for ri, rj := range m.Regions {
		style, ok := workload.ParseStyle(rj.Style)
		if !ok {
			return nil, fmt.Errorf("tracefile: corpus %s: region %d: unknown style %q", m.Name, ri, rj.Style)
		}
		if rj.Lines == 0 {
			return nil, fmt.Errorf("tracefile: corpus %s: region %d: zero lines", m.Name, ri)
		}
		w.regions = append(w.regions, workload.Region{
			Start: rj.Start, Lines: rj.Lines, Style: style, Seed: rj.Seed, Dict: rj.Dict,
		})
	}

	if got := checksumOf(traceBytes); got != m.Checksum {
		return nil, fmt.Errorf("tracefile: corpus %s: checksum mismatch (file %s, sidecar %s)", m.Name, got, m.Checksum)
	}
	r, err := NewReader(bytes.NewReader(traceBytes))
	if err != nil {
		return nil, err
	}
	if r.Workload() != m.Name {
		return nil, fmt.Errorf("tracefile: corpus %s: trace header names %q", m.Name, r.Workload())
	}
	recs := make([]Record, 0, m.Records)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	if uint64(len(recs)) != m.Records {
		return nil, fmt.Errorf("tracefile: corpus %s: %d records, sidecar promises %d", m.Name, len(recs), m.Records)
	}
	nWarps := m.Blocks * m.WarpsPerBlock
	if len(recs) < nWarps {
		return nil, fmt.Errorf("tracefile: corpus %s: %d records cannot fill %d warps", m.Name, len(recs), nWarps)
	}
	w.records = m.Records
	w.warps = chunkRecords(recs, nWarps, m.ALUGapCap)
	return w, nil
}

// chunkRecords splits the record stream into nWarps contiguous chunks
// and converts each to an instruction slice: every record becomes one
// memory instruction, and the recorded cycle gap to the chunk's previous
// record becomes a pacing ALU instruction (capped at gapCap; 0 disables
// pacing). Contiguous chunks preserve the capture's access locality
// within each warp; timing stays advisory, as in structural Replay.
func chunkRecords(recs []Record, nWarps int, gapCap uint32) [][]trace.Inst {
	warps := make([][]trace.Inst, nWarps)
	chunk := (len(recs) + nWarps - 1) / nWarps
	for wi := 0; wi < nWarps; wi++ {
		lo := wi * chunk
		hi := lo + chunk
		if lo > len(recs) {
			lo = len(recs)
		}
		if hi > len(recs) {
			hi = len(recs)
		}
		insts := make([]trace.Inst, 0, (hi-lo)*2)
		for j := lo; j < hi; j++ {
			rec := recs[j]
			if gapCap > 0 && j > lo && rec.Cycle > recs[j-1].Cycle {
				gap := rec.Cycle - recs[j-1].Cycle
				if gap > uint64(gapCap) {
					gap = uint64(gapCap)
				}
				insts = append(insts, trace.Inst{Op: trace.OpALU, Lat: uint32(gap)})
			}
			op := trace.OpLoad
			if rec.Write {
				op = trace.OpStore
			}
			insts = append(insts, trace.Inst{Op: op, Addrs: []uint64{rec.Addr}})
		}
		warps[wi] = insts
	}
	return warps
}

// LoadCorpus loads every entry of a corpus directory, sorted by name.
// Any invalid entry — including an .lct without a sidecar or a sidecar
// without an .lct — fails the whole load: a corpus that silently dropped
// entries would change Names() ordering underneath the harness.
func LoadCorpus(dir string) ([]*ReplayWorkload, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tracefile: corpus: %w", err)
	}
	var stems []string
	seen := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".lct"):
			stems = append(stems, strings.TrimSuffix(name, ".lct"))
		case strings.HasSuffix(name, ".json"):
			seen[strings.TrimSuffix(name, ".json")] = true
		}
	}
	sort.Strings(stems)
	var out []*ReplayWorkload
	for _, stem := range stems {
		w, err := LoadWorkload(filepath.Join(dir, stem+".lct"), filepath.Join(dir, stem+".json"))
		if err != nil {
			return nil, err
		}
		delete(seen, stem)
		out = append(out, w)
	}
	if len(seen) > 0 {
		orphans := make([]string, 0, len(seen))
		//lint:allow determinism keys are sorted before use
		for stem := range seen {
			orphans = append(orphans, stem)
		}
		sort.Strings(orphans)
		return nil, fmt.Errorf("tracefile: corpus: sidecar %s.json has no matching .lct", orphans[0])
	}
	return out, nil
}

// RegisterCorpus loads a corpus directory and registers every entry in
// the global workload registry (startup-only; see
// workload.RegisterExternal). Returns the registered names in order.
func RegisterCorpus(dir string) ([]string, error) {
	ws, err := LoadCorpus(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ws))
	for _, w := range ws {
		if err := workload.RegisterExternal(w); err != nil {
			return nil, err
		}
		names = append(names, w.Name())
	}
	return names, nil
}
