// Package stats provides the measurement primitives shared across the
// simulator: running averages, bounded time series for the paper's
// over-time figures, histograms, and aggregate helpers (geometric mean is
// the standard aggregation for speedups in architecture papers).
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Running maintains a running mean without storing samples.
type Running struct {
	n   uint64
	sum float64
}

// Add records one sample.
func (r *Running) Add(v float64) { r.n++; r.sum += v }

// AddN records a pre-aggregated batch of n samples summing to sum.
func (r *Running) AddN(sum float64, n uint64) { r.n += n; r.sum += sum }

// Mean returns the running mean, or 0 with no samples.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// Count returns the number of samples.
func (r *Running) Count() uint64 { return r.n }

// Sum returns the sample sum.
func (r *Running) Sum() float64 { return r.sum }

// Reset clears the accumulator.
func (r *Running) Reset() { r.n, r.sum = 0, 0 }

// EWMA is an exponentially weighted moving average; the simulator uses it
// for slowly drifting quantities like observed miss latency.
type EWMA struct {
	alpha float64
	v     float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Add folds one sample into the average.
func (e *EWMA) Add(v float64) {
	if !e.init {
		e.v, e.init = v, true
		return
	}
	e.v = e.alpha*v + (1-e.alpha)*e.v
}

// Value returns the current average (0 before any sample).
func (e *EWMA) Value() float64 { return e.v }

// Initialized reports whether at least one sample has been folded in.
func (e *EWMA) Initialized() bool { return e.init }

// Point is one time-series sample.
type Point struct {
	Cycle uint64
	Value float64
}

// Series is a bounded time series. When the sample budget is exceeded the
// series halves its resolution by averaging adjacent pairs, so memory stays
// bounded over arbitrarily long runs while preserving shape — exactly what
// the paper's Figures 5 and 16 need.
type Series struct {
	Name    string
	maxLen  int
	pts     []Point
	pending *Point // accumulates pairs during downsampled operation
	stride  int    // how many raw samples fold into one stored point
	seen    int    // raw samples folded into pending so far
	sumC    float64
	sumV    float64
}

// NewSeries returns a series that stores at most maxLen points.
func NewSeries(name string, maxLen int) *Series {
	if maxLen < 4 {
		maxLen = 4
	}
	return &Series{Name: name, maxLen: maxLen, stride: 1}
}

// RestoreSeries rebuilds a series from previously captured points — the
// persistent result store's deserialization path. The restored series
// holds exactly pts (Points returns them verbatim, so StateHash over the
// points is unchanged); it is a snapshot for reading, not a live
// accumulator, and further Add calls may downsample on a different
// cadence than the original.
func RestoreSeries(name string, pts []Point) *Series {
	maxLen := 2 * len(pts)
	if maxLen < 4 {
		maxLen = 4
	}
	return &Series{Name: name, maxLen: maxLen, stride: 1, pts: pts}
}

// Add appends a sample, downsampling if the budget is exceeded.
func (s *Series) Add(cycle uint64, v float64) {
	s.sumC += float64(cycle)
	s.sumV += v
	s.seen++
	if s.seen < s.stride {
		return
	}
	s.pts = append(s.pts, Point{Cycle: uint64(s.sumC / float64(s.seen)), Value: s.sumV / float64(s.seen)})
	s.sumC, s.sumV, s.seen = 0, 0, 0
	if len(s.pts) >= s.maxLen {
		half := make([]Point, 0, (len(s.pts)+1)/2)
		for i := 0; i+1 < len(s.pts); i += 2 {
			a, b := s.pts[i], s.pts[i+1]
			half = append(half, Point{Cycle: (a.Cycle + b.Cycle) / 2, Value: (a.Value + b.Value) / 2})
		}
		if len(s.pts)%2 == 1 {
			half = append(half, s.pts[len(s.pts)-1])
		}
		s.pts = half
		s.stride *= 2
	}
}

// Points returns the stored (possibly downsampled) samples.
func (s *Series) Points() []Point { return s.pts }

// MarshalJSON emits the series as {"name":..., "points":[{...}]}.
func (s *Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Name   string  `json:"name"`
		Points []Point `json:"points"`
	}{Name: s.Name, Points: s.pts})
}

// Len returns the stored point count.
func (s *Series) Len() int { return len(s.pts) }

// Histogram is a fixed-bucket histogram over non-negative values.
type Histogram struct {
	bucketWidth float64
	buckets     []uint64
	overflow    uint64
	n           uint64
	sum         float64
}

// NewHistogram returns a histogram with nbuckets buckets of the given width.
func NewHistogram(bucketWidth float64, nbuckets int) *Histogram {
	return &Histogram{bucketWidth: bucketWidth, buckets: make([]uint64, nbuckets)}
}

// Add records one value.
func (h *Histogram) Add(v float64) {
	h.n++
	h.sum += v
	idx := int(v / h.bucketWidth)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.buckets) {
		h.overflow++
		return
	}
	h.buckets[idx]++
}

// Count returns the total number of samples.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Percentile returns an approximate percentile (p in [0,100]) using bucket
// lower bounds. Overflowed samples count as the top bucket.
func (h *Histogram) Percentile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.n)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return float64(i) * h.bucketWidth
		}
	}
	return float64(len(h.buckets)) * h.bucketWidth
}

// Geomean returns the geometric mean of vs; zero and negative inputs are
// clamped to a small positive epsilon so a single pathological sample does
// not zero the aggregate.
func Geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	const eps = 1e-9
	var acc float64
	for _, v := range vs {
		if v < eps {
			v = eps
		}
		acc += math.Log(v)
	}
	return math.Exp(acc / float64(len(vs)))
}

// Mean returns the arithmetic mean of vs (0 for empty input).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Table renders aligned text tables for the experiment CLI output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// CSV renders the table as RFC-4180-ish CSV (cells containing commas or
// quotes are quoted), for piping experiment output into plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Rows returns the formatted cell values (without the header).
func (t *Table) Rows() [][]string { return t.rows }

// Header returns the column headers.
func (t *Table) Header() []string { return t.header }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// SortedKeys returns the keys of a string-keyed map in sorted order, for
// deterministic report output.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sparkline renders a series as a compact ASCII chart: one column per
// point bucket, eight height levels. It makes the over-time figures
// (paper Figures 5 and 16) legible directly in a terminal.
func Sparkline(pts []Point, width int) string {
	if len(pts) == 0 || width <= 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	// Bucket points into width columns by index.
	cols := make([]float64, 0, width)
	if len(pts) <= width {
		for _, p := range pts {
			cols = append(cols, p.Value)
		}
	} else {
		per := float64(len(pts)) / float64(width)
		for c := 0; c < width; c++ {
			lo, hi := int(float64(c)*per), int(float64(c+1)*per)
			if hi > len(pts) {
				hi = len(pts)
			}
			if lo >= hi {
				lo = hi - 1
			}
			var sum float64
			for _, p := range pts[lo:hi] {
				sum += p.Value
			}
			cols = append(cols, sum/float64(hi-lo))
		}
	}
	min, max := cols[0], cols[0]
	for _, v := range cols {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	span := max - min
	for _, v := range cols {
		idx := 0
		if span > 0 {
			idx = int((v - min) / span * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	fmt.Fprintf(&b, "  [%.2f .. %.2f]", min, max)
	return b.String()
}
