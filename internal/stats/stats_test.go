package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRunningMean(t *testing.T) {
	var r Running
	if r.Mean() != 0 {
		t.Fatal("empty mean must be 0")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		r.Add(v)
	}
	if r.Mean() != 2.5 || r.Count() != 4 || r.Sum() != 10 {
		t.Fatalf("mean=%v count=%v sum=%v", r.Mean(), r.Count(), r.Sum())
	}
	r.AddN(10, 2)
	if r.Mean() != 20.0/6 {
		t.Fatalf("AddN mean = %v", r.Mean())
	}
	r.Reset()
	if r.Count() != 0 || r.Mean() != 0 {
		t.Fatal("reset failed")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EWMA must be uninitialized")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first sample sets value, got %v", e.Value())
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Fatalf("EWMA = %v, want 15", e.Value())
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on alpha 0")
		}
	}()
	NewEWMA(0)
}

func TestSeriesDownsampling(t *testing.T) {
	s := NewSeries("x", 16)
	for i := 0; i < 10000; i++ {
		s.Add(uint64(i), float64(i))
	}
	if s.Len() > 16 {
		t.Fatalf("series length %d exceeds budget 16", s.Len())
	}
	pts := s.Points()
	if len(pts) < 4 {
		t.Fatalf("too few points kept: %d", len(pts))
	}
	// Monotone input must stay monotone after averaging.
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].Cycle < pts[i-1].Cycle {
			t.Fatalf("downsampled series not monotone at %d: %+v %+v", i, pts[i-1], pts[i])
		}
	}
	// Values must stay within the input range.
	for _, p := range pts {
		if p.Value < 0 || p.Value > 9999 {
			t.Fatalf("point value %v out of input range", p.Value)
		}
	}
}

func TestSeriesDownsamplePreservesMeanQuick(t *testing.T) {
	f := func(seed uint32) bool {
		s := NewSeries("q", 8)
		n := int(seed%1000) + 50
		var sum float64
		for i := 0; i < n; i++ {
			v := float64((int(seed) + i*7919) % 100)
			sum += v
			s.Add(uint64(i), v)
		}
		var got float64
		for _, p := range s.Points() {
			got += p.Value
		}
		gotMean := got / float64(s.Len())
		// Downsampling by pair-averaging keeps the mean within the value range.
		return gotMean >= 0 && gotMean <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	h.Add(1e9) // overflow
	if h.Count() != 101 {
		t.Fatalf("count = %d", h.Count())
	}
	if p := h.Percentile(50); p < 40 || p > 60 {
		t.Fatalf("p50 = %v, want ~50", p)
	}
	if p := h.Percentile(100); p != 100 {
		t.Fatalf("p100 with overflow = %v, want top bound 100", p)
	}
	if m := h.Mean(); m < 1e7/101.0 {
		t.Fatalf("mean = %v should include overflow sample", m)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1, 4)
	if h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram must return zeros")
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean(1,4) = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v", g)
	}
	// Zero inputs are clamped, not propagated to 0.
	if g := Geomean([]float64{0, 4}); g <= 0 {
		t.Fatalf("geomean with zero = %v, want positive", g)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{2, 4, 6}); m != 4 {
		t.Fatalf("mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("mean(nil) = %v", m)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("speedup", 1.19234)
	tab.AddRow("long-name-row", 42)
	out := tab.String()
	if !strings.Contains(out, "1.192") {
		t.Fatalf("float formatting missing: %q", out)
	}
	if !strings.Contains(out, "long-name-row") || !strings.Contains(out, "42") {
		t.Fatalf("row content missing: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+sep+2 rows, got %d lines", len(lines))
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow("plain", 1.5)
	tab.AddRow(`quote"inside`, "with,comma")
	out := tab.CSV()
	want := "a,b\nplain,1.500\n\"quote\"\"inside\",\"with,comma\"\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
	if len(tab.Rows()) != 2 || tab.Header()[1] != "b" {
		t.Fatal("accessors wrong")
	}
}

func TestSparkline(t *testing.T) {
	var pts []Point
	for i := 0; i < 100; i++ {
		pts = append(pts, Point{Cycle: uint64(i), Value: float64(i % 10)})
	}
	out := Sparkline(pts, 20)
	if out == "" {
		t.Fatal("empty sparkline")
	}
	if !strings.Contains(out, "..") || !strings.Contains(out, "[") {
		t.Fatalf("range annotation missing: %q", out)
	}
	// Width respected: 20 rune columns plus the annotation.
	runes := []rune(strings.Split(out, "  [")[0])
	if len(runes) != 20 {
		t.Fatalf("got %d columns, want 20", len(runes))
	}
	if Sparkline(nil, 10) != "" {
		t.Fatal("nil points must render empty")
	}
	// Flat series: all columns at the lowest level, no division by zero.
	flat := Sparkline([]Point{{0, 5}, {1, 5}, {2, 5}}, 10)
	if !strings.Contains(flat, "▁▁▁") {
		t.Fatalf("flat series wrong: %q", flat)
	}
}
