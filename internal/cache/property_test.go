package cache

import (
	"math/rand"
	"testing"

	"lattecc/internal/modes"
)

// cyclingController rotates insertion modes and periodically issues
// rebuild/flush directives, so property runs traverse every structural
// path (mixed-mode sets, HighCap flushes, sampling flushes).
type cyclingController struct {
	n    int
	dirN int
}

func (c *cyclingController) Name() string { return "cycling" }

func (c *cyclingController) InsertMode(set int) modes.Mode {
	c.n++
	return modes.Mode(c.n % modes.NumModes)
}

func (c *cyclingController) RecordAccess(set int, hit bool, lineMode modes.Mode, extraLat uint64, now uint64) modes.Directive {
	c.dirN++
	switch {
	case c.dirN%97 == 0:
		return modes.Directive{RebuildHighCap: true, FlushHighCap: true}
	case c.dirN%61 == 0:
		return modes.Directive{FlushMismatch: []modes.SetMode{
			{Set: set, Mode: lineMode, KeepUncompressed: c.dirN%2 == 0},
		}}
	}
	return modes.Directive{}
}

func (c *cyclingController) RecordMissLatency(uint64) {}
func (c *cyclingController) RecordTolerance(float64)  {}

// recountSet recomputes one set's accounting from scratch.
func recountSet(c *Cache, si int) (used, valid int) {
	s := &c.sets[si]
	for i := range s.lines {
		if s.lines[i].valid {
			used += s.lines[i].subBlocks
			valid++
		}
	}
	return used, valid
}

// checkAccounting asserts the eviction/occupancy invariants the cache
// maintains incrementally, against a from-scratch recount.
func checkAccounting(t *testing.T, c *Cache, when string) {
	t.Helper()
	totalValid := 0
	for si := 0; si < c.numSets; si++ {
		s := &c.sets[si]
		used, valid := recountSet(c, si)
		totalValid += valid
		if used+s.freeSub != s.totalSub {
			t.Fatalf("%s: set %d: used %d + free %d != capacity %d", when, si, used, s.freeSub, s.totalSub)
		}
		if s.freeSub < 0 {
			t.Fatalf("%s: set %d: negative free sub-blocks %d", when, si, s.freeSub)
		}
		for i := range s.lines {
			if !s.lines[i].valid {
				continue
			}
			if sb := s.lines[i].subBlocks; sb <= 0 || sb > c.subBlocksPerLine() {
				t.Fatalf("%s: set %d line %d: %d sub-blocks outside (0, %d]", when, si, i, sb, c.subBlocksPerLine())
			}
		}
		view := c.SnapshotSet(si)
		if view.FreeSub != s.freeSub || len(view.Lines) != valid {
			t.Fatalf("%s: set %d: snapshot free %d lines %d, recount free %d lines %d",
				when, si, view.FreeSub, len(view.Lines), s.freeSub, valid)
		}
	}
	if totalValid != c.validCnt {
		t.Fatalf("%s: valid-line counter %d, recount %d", when, c.validCnt, totalValid)
	}
	st := c.Stats()
	var fills, hits uint64
	for m := 0; m < modes.NumModes; m++ {
		fills += st.InsertsByMode[m]
		hits += st.HitsByMode[m]
	}
	if fills != st.Fills {
		t.Fatalf("%s: per-mode inserts %d != fills %d", when, fills, st.Fills)
	}
	if hits != st.Hits {
		t.Fatalf("%s: per-mode hits %d != hits %d", when, hits, st.Hits)
	}
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("%s: hits %d + misses %d != accesses %d", when, st.Hits, st.Misses, st.Accesses)
	}
	if st.CompressedSize > st.UncompressedSize {
		t.Fatalf("%s: compressed bytes %d exceed uncompressed %d", when, st.CompressedSize, st.UncompressedSize)
	}
}

// TestEvictionAccountingProperty drives seeded random operation
// sequences — fills of varied compressibility, accesses, write-touch
// expansions, flushes — and recounts every accounting structure from
// scratch after each operation.
func TestEvictionAccountingProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := testConfig()
		cfg.SizeBytes = cfg.LineSize * cfg.Ways * 4 // 4 sets: dense conflicts
		cfg.DecompBufferEntries = 2
		c := New(cfg, &cyclingController{})

		pool := c.NumSets() * cfg.Ways * 4
		var now uint64
		for op := 0; op < 3000; op++ {
			now += uint64(rng.Intn(3))
			addr := uint64(rng.Intn(pool)) * uint64(cfg.LineSize)
			switch r := rng.Intn(100); {
			case r < 40:
				c.Access(addr, now)
			case r < 85:
				var data []byte
				if rng.Intn(2) == 0 {
					data = compressibleLine()
				} else {
					data = randomLine(rng)
				}
				c.Fill(addr, data, now)
			case r < 95:
				c.WriteTouch(addr, now)
			case r < 98:
				// Kernel-boundary flush must return every sub-block.
				c.Flush()
			default:
				c.ResetStats()
			}
			if op%7 == 0 {
				checkAccounting(t, c, "mid-run")
			}
		}
		checkAccounting(t, c, "final")

		c.Flush()
		if c.ValidLines() != 0 {
			t.Fatalf("seed %d: %d valid lines survive a full flush", seed, c.ValidLines())
		}
		for si := 0; si < c.NumSets(); si++ {
			if c.sets[si].freeSub != c.sets[si].totalSub {
				t.Fatalf("seed %d: set %d not fully free after flush", seed, si)
			}
		}
	}
}
