// Package cache implements the compressed GPU L1 data cache of the
// LATTE-CC paper (Section IV-A): a sectored, set-associative cache
// provisioned with four times the tag blocks of the baseline, storing
// compressed data in 32-byte sub-blocks. A set that holds only
// uncompressed lines degenerates to the baseline 4-way cache; fully
// compressed 32-byte lines let a set hold up to 16 lines in the same data
// space.
//
// The cache is a pure structure: it performs lookups, insertions with
// compression, evictions, and decompression-queue timing, but does not
// talk to the memory system. The SM model (package sim) handles misses,
// MSHRs, and fills.
package cache

import (
	"bytes"
	"fmt"
	"sort"

	"lattecc/internal/compress"
	"lattecc/internal/invariant"
	"lattecc/internal/modes"
)

// SubBlockSize is the compressed data allocation granularity in bytes
// (Section IV-A: "allows data to be stored in 32B sub blocks").
const SubBlockSize = 32

// TagFactor is the tag over-provisioning of the compressed cache
// (Section IV-A: "provisioned with four times the tag blocks").
const TagFactor = 4

// Config describes one L1 data cache instance.
type Config struct {
	SizeBytes int // data capacity (Table II: 16KB per SM)
	LineSize  int // 128B
	Ways      int // baseline associativity (4)

	// HitLatency is the baseline L1 hit latency in cycles, before any
	// decompression penalty.
	HitLatency uint64
	// ExtraHitLatency is added to every hit; the Figure 1 sensitivity
	// sweep uses it to study hit-latency tolerance in isolation.
	ExtraHitLatency uint64

	// Codecs maps each compression mode to its codec. Codecs[modes.None]
	// is ignored; LowLat/HighCap must be set if the controller can ever
	// select those modes.
	Codecs [modes.NumModes]compress.Codec

	// CapacityOnly makes decompression free (0 extra cycles). It isolates
	// the capacity benefit of compression — the Figure 3 upper bound.
	CapacityOnly bool
	// LatencyOnly stores every line at full size while still charging
	// decompression latency — the Figure 4 penalty-only study.
	LatencyOnly bool
	// UnboundedDecompressor removes decompression-queue contention
	// (infinite bandwidth); an ablation of the Equation 3 queue term.
	UnboundedDecompressor bool
	// DecompInitInterval is the decompressor's initiation interval in
	// cycles: a new decompression can start every II cycles (the unit is
	// pipelined, as the SC hardware of Section IV-C2 must be to sustain
	// GPU hit bandwidth). Requests arriving faster queue (Equation 3).
	// 0 defaults to 2.
	DecompInitInterval uint64
	// DecompBufferEntries enables an extension beyond the paper: a small
	// fully-associative buffer of recently decompressed lines. A hit in
	// the buffer returns data without re-decompressing, cutting both
	// latency and decompressor contention for hot compressed lines.
	// 0 (the paper's design) disables it.
	DecompBufferEntries int
}

// Stats counts cache events.
type Stats struct {
	Accesses         uint64
	Hits             uint64
	Misses           uint64
	CompressedHits   uint64
	DecompWait       uint64 // total decompression-queue wait cycles
	DecompBusy       uint64 // total cycles spent decompressing
	DecompBufferHits uint64 // decompressions avoided by the line buffer
	Evictions        uint64
	Fills            uint64
	FlushedLines     uint64 // lines invalidated by code-book rebuilds
	WriteExpansions  uint64 // compressed lines expanded by write hits

	InsertsByMode    [modes.NumModes]uint64
	HitsByMode       [modes.NumModes]uint64 // hits by the hit line's stored mode
	SubBlocksByMode  [modes.NumModes]uint64 // sub-blocks allocated at insert
	UncompressedSize uint64                 // bytes represented by all fills
	CompressedSize   uint64                 // bytes stored for all fills
}

// Add accumulates another cache's counters into s, field by field (the
// same shape as energy.SavingsBreakdown.Add). The simulator merges its
// per-SM L1 stats with this instead of a hand-rolled loop, so a field
// added to Stats is aggregated — and therefore StateHash-covered — by
// construction; TestStatsAddCoversEveryField enforces completeness by
// reflection.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.CompressedHits += o.CompressedHits
	s.DecompWait += o.DecompWait
	s.DecompBusy += o.DecompBusy
	s.DecompBufferHits += o.DecompBufferHits
	s.Evictions += o.Evictions
	s.Fills += o.Fills
	s.FlushedLines += o.FlushedLines
	s.WriteExpansions += o.WriteExpansions
	s.UncompressedSize += o.UncompressedSize
	s.CompressedSize += o.CompressedSize
	s.AddModes(o)
}

// AddModes accumulates only the per-mode (mode-indexed) counters of o.
func (s *Stats) AddModes(o Stats) {
	for m := 0; m < modes.NumModes; m++ {
		s.InsertsByMode[m] += o.InsertsByMode[m]
		s.HitsByMode[m] += o.HitsByMode[m]
		s.SubBlocksByMode[m] += o.SubBlocksByMode[m]
	}
}

// HitRate returns hits/accesses (0 for no accesses).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// AvgCompressionRatio returns the insertion-weighted compression ratio.
func (s Stats) AvgCompressionRatio() float64 {
	if s.CompressedSize == 0 {
		return 1
	}
	return float64(s.UncompressedSize) / float64(s.CompressedSize)
}

// Result reports the outcome of one access.
type Result struct {
	Hit      bool
	LineMode modes.Mode // mode the hit line was stored with
	// ExtraLatency is the decompression penalty actually experienced:
	// decompression latency plus queue wait (Equation 3). Zero for
	// uncompressed hits and for misses.
	ExtraLatency uint64
	// Ready is the cycle the data is available on a hit (undefined on
	// miss): now + HitLatency + ExtraHitLatency + ExtraLatency.
	Ready uint64
}

// line is one tag entry of the compressed cache.
type line struct {
	valid     bool
	tag       uint64
	mode      modes.Mode
	subBlocks int
	gen       uint64 // HighCap code-book generation
	lru       uint64
}

// set is one cache set: TagFactor×Ways tags sharing Ways×LineSize bytes of
// data storage, allocated in sub-blocks.
type set struct {
	lines    []line
	freeSub  int
	lruClock uint64
	totalSub int
}

// Cache is one SM's L1 data cache.
type Cache struct {
	cfg      Config
	ctrl     modes.Controller
	sets     []set
	numSets  int
	stats    Stats
	validCnt int // valid lines across all sets (effective capacity probe)

	// decompressor occupancy (one unit per SM, shared by both schedulers)
	decompFree uint64
	// decompBuf holds the line addresses of recently decompressed lines
	// (FIFO); see Config.DecompBufferEntries.
	decompBuf []uint64
}

// New builds a cache; it panics on inconsistent geometry (configs come
// from this repository's harness, not external input).
func New(cfg Config, ctrl modes.Controller) *Cache {
	if cfg.LineSize <= 0 || cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic(fmt.Sprintf("cache: bad config %+v", cfg))
	}
	if cfg.LineSize%SubBlockSize != 0 {
		panic("cache: line size must be a multiple of the sub-block size")
	}
	numSets := cfg.SizeBytes / (cfg.LineSize * cfg.Ways)
	if numSets == 0 {
		panic("cache: zero sets")
	}
	c := &Cache{cfg: cfg, ctrl: ctrl, numSets: numSets, sets: make([]set, numSets)}
	subPerSet := cfg.Ways * cfg.LineSize / SubBlockSize
	for i := range c.sets {
		c.sets[i] = set{
			lines:    make([]line, cfg.Ways*TagFactor),
			freeSub:  subPerSet,
			totalSub: subPerSet,
		}
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// subBlocksPerLine is the sub-block count of an uncompressed line.
func (c *Cache) subBlocksPerLine() int { return c.cfg.LineSize / SubBlockSize }

// setIndex maps a line address to its set.
func (c *Cache) setIndex(lineAddr uint64) int { return int(lineAddr % uint64(c.numSets)) }

// Access looks up the line containing addr at cycle now. On a hit the
// result carries the data-ready cycle including any decompression penalty.
// On a miss the caller must fetch the line and call Fill. The controller
// observes every access; a returned flush directive is applied before the
// result is returned.
//
//lint:hotpath
func (c *Cache) Access(addr uint64, now uint64) Result {
	lineAddr := addr / uint64(c.cfg.LineSize)
	si := c.setIndex(lineAddr)
	s := &c.sets[si]
	c.stats.Accesses++

	res := Result{}
	for i := range s.lines {
		l := &s.lines[i]
		if l.valid && l.tag == lineAddr {
			s.lruClock++
			l.lru = s.lruClock
			res.Hit = true
			res.LineMode = l.mode
			if l.mode != modes.None && !c.cfg.CapacityOnly {
				if c.decompBufLookup(lineAddr) {
					c.stats.DecompBufferHits++
				} else {
					res.ExtraLatency = c.decompress(l.mode, now)
					c.stats.CompressedHits++
					c.decompBufInsert(lineAddr)
				}
			}
			break
		}
	}
	if res.Hit {
		c.stats.Hits++
		c.stats.HitsByMode[res.LineMode]++
		res.Ready = now + c.cfg.HitLatency + c.cfg.ExtraHitLatency + res.ExtraLatency
	} else {
		c.stats.Misses++
	}

	dir := c.ctrl.RecordAccess(si, res.Hit, res.LineMode, res.ExtraLatency, now)
	c.applyDirective(dir)
	return res
}

// decompress models the shared decompression unit (Equation 3): the
// request waits for a pipeline slot (one issue per initiation interval),
// then takes the codec's full decompression latency. Returns the extra
// cycles beyond a normal hit.
//
//lint:hotpath
func (c *Cache) decompress(m modes.Mode, now uint64) uint64 {
	codec := c.cfg.Codecs[m]
	if codec == nil {
		return 0
	}
	lat := uint64(codec.DecompLatency())
	c.stats.DecompBusy += lat
	if c.cfg.UnboundedDecompressor {
		return lat
	}
	ii := c.cfg.DecompInitInterval
	if ii == 0 {
		ii = 2
	}
	start := now
	if c.decompFree > now {
		start = c.decompFree
	}
	wait := start - now
	c.decompFree = start + ii
	c.stats.DecompWait += wait
	return wait + lat
}

// decompBufLookup reports whether the line's decompressed copy is still
// buffered.
//
//lint:hotpath
func (c *Cache) decompBufLookup(lineAddr uint64) bool {
	for _, a := range c.decompBuf {
		if a == lineAddr {
			return true
		}
	}
	return false
}

// decompBufInsert records a freshly decompressed line (FIFO replacement).
//
//lint:hotpath
func (c *Cache) decompBufInsert(lineAddr uint64) {
	n := c.cfg.DecompBufferEntries
	if n <= 0 {
		return
	}
	if len(c.decompBuf) < n {
		c.decompBuf = append(c.decompBuf, lineAddr)
		return
	}
	copy(c.decompBuf, c.decompBuf[1:])
	c.decompBuf[len(c.decompBuf)-1] = lineAddr
}

// decompBufDrop invalidates one line's buffered copy (re-fill changes the
// data).
func (c *Cache) decompBufDrop(lineAddr uint64) {
	for i, a := range c.decompBuf {
		if a == lineAddr {
			c.decompBuf = append(c.decompBuf[:i], c.decompBuf[i+1:]...)
			return
		}
	}
}

// Fill installs the line containing addr with the given data bytes,
// compressed according to the controller's mode for the set. It returns
// the mode used. Fill also trains the high-capacity codec's value table:
// the hardware VFT snoops the fill path regardless of the selected mode.
//
// The cache only ever stores sizes and modes, never encoded bytes, so
// the steady-state fill uses Codec.Measure and allocates nothing; under
// paranoid mode it runs the full Compress instead and verifies both the
// round trip and that Measure agrees with it.
//
//lint:hotpath
func (c *Cache) Fill(addr uint64, data []byte, now uint64) modes.Mode {
	lineAddr := addr / uint64(c.cfg.LineSize)
	si := c.setIndex(lineAddr)
	s := &c.sets[si]

	if sc := c.highCapTrainer(); sc != nil {
		sc.Train(data)
	}

	mode := c.ctrl.InsertMode(si)
	if !mode.Valid() {
		badControllerMode(mode)
	}
	sub := c.subBlocksPerLine()
	var gen uint64
	if mode != modes.None {
		codec := c.cfg.Codecs[mode]
		if codec == nil {
			mode = modes.None
		} else {
			var enc compress.Encoded
			if invariant.Active() {
				enc = codec.Compress(data)
				c.verifyEncoding(codec, enc, data)
			} else {
				enc = codec.Measure(data)
			}
			gen = enc.Generation
			if c.cfg.LatencyOnly {
				sub = c.subBlocksPerLine()
			} else {
				sub = (enc.Size + SubBlockSize - 1) / SubBlockSize
			}
			c.stats.UncompressedSize += uint64(c.cfg.LineSize)
			c.stats.CompressedSize += uint64(enc.Size)
			if enc.Raw {
				// Incompressible under this codec: the hardware stores the
				// line verbatim (encoding bits in the tag say "raw"), so
				// hits pay no decompression latency.
				mode = modes.None
			}
		}
	} else {
		c.stats.UncompressedSize += uint64(c.cfg.LineSize)
		c.stats.CompressedSize += uint64(c.cfg.LineSize)
	}

	// If the line is somehow present (racing fills), replace it in place.
	c.invalidateLine(s, lineAddr)
	c.decompBufDrop(lineAddr)

	// Make room: need a free tag and sub sub-blocks.
	for !c.hasRoom(s, sub) {
		if !c.evictLRU(s) {
			fillNoRoom()
		}
	}
	for i := range s.lines {
		l := &s.lines[i]
		if !l.valid {
			s.lruClock++
			*l = line{valid: true, tag: lineAddr, mode: mode, subBlocks: sub, gen: gen, lru: s.lruClock}
			s.freeSub -= sub
			c.validCnt++
			break
		}
	}
	c.stats.Fills++
	c.stats.InsertsByMode[mode]++
	c.stats.SubBlocksByMode[mode] += uint64(sub)
	if invariant.Active() {
		c.checkSet(si)
	}
	return mode
}

// badControllerMode and fillNoRoom keep Fill's panic construction (and
// its fmt boxing) out of the //lint:hotpath escape-analysis range; the
// go:noinline stops the compiler from hauling it back in.
//
//go:noinline
func badControllerMode(mode modes.Mode) {
	//lint:allow panic-audit controller contract violation corrupts every stat; halt the run
	panic(fmt.Sprintf("cache: controller returned invalid mode %d", mode))
}

//go:noinline
func fillNoRoom() {
	//lint:allow panic-audit unreachable by geometry; continuing would loop forever
	panic("cache: cannot make room — geometry bug")
}

// verifyEncoding runs the paranoid-mode fill checks: the compressed size
// must fit in (0, LineSize], the encoding must round-trip back to the
// exact inserted bytes (a codec that silently corrupts data would
// otherwise only skew hit latencies, never fail a run), and Measure must
// report exactly what Compress produced — the steady-state fill path
// trusts Measure alone.
func (c *Cache) verifyEncoding(codec compress.Codec, enc compress.Encoded, data []byte) {
	invariant.Assert(enc.Size > 0 && enc.Size <= c.cfg.LineSize,
		"%s: compressed size %d outside (0, %d]", codec.Name(), enc.Size, c.cfg.LineSize)
	dec, err := codec.Decompress(enc)
	if err != nil {
		invariant.Violationf("%s: fill round trip: %v", codec.Name(), err)
	}
	invariant.Assert(bytes.Equal(dec, data),
		"%s: fill round trip produced different bytes", codec.Name())
	m := codec.Measure(data)
	invariant.Assert(m.Size == enc.Size && m.Raw == enc.Raw && m.Generation == enc.Generation,
		"%s: Measure (size %d, raw %v, gen %d) disagrees with Compress (size %d, raw %v, gen %d)",
		codec.Name(), m.Size, m.Raw, m.Generation, enc.Size, enc.Raw, enc.Generation)
}

// checkSet verifies one set's occupancy accounting after a structural
// change: allocated sub-blocks of valid lines plus the free count must
// equal the set's capacity, and no line may exceed an uncompressed
// line's footprint.
func (c *Cache) checkSet(si int) {
	s := &c.sets[si]
	used := 0
	for i := range s.lines {
		if !s.lines[i].valid {
			continue
		}
		sub := s.lines[i].subBlocks
		invariant.Assert(sub > 0 && sub <= c.subBlocksPerLine(),
			"set %d: line holds %d sub-blocks, line size is %d", si, sub, c.subBlocksPerLine())
		used += sub
	}
	invariant.Assert(used+s.freeSub == s.totalSub,
		"set %d: occupancy %d + free %d != capacity %d", si, used, s.freeSub, s.totalSub)
	invariant.Assert(s.freeSub >= 0,
		"set %d: negative free sub-blocks %d", si, s.freeSub)
}

// hasRoom reports whether the set has a free tag and sub free sub-blocks.
func (c *Cache) hasRoom(s *set, sub int) bool {
	if s.freeSub < sub {
		return false
	}
	for i := range s.lines {
		if !s.lines[i].valid {
			return true
		}
	}
	return false
}

// evictLRU removes the least recently used valid line from the set.
func (c *Cache) evictLRU(s *set) bool {
	victim := -1
	oldest := ^uint64(0)
	for i := range s.lines {
		if s.lines[i].valid && s.lines[i].lru < oldest {
			oldest = s.lines[i].lru
			victim = i
		}
	}
	if victim < 0 {
		return false
	}
	s.freeSub += s.lines[victim].subBlocks
	s.lines[victim] = line{}
	c.validCnt--
	c.stats.Evictions++
	return true
}

// invalidateLine removes a specific line if present.
func (c *Cache) invalidateLine(s *set, lineAddr uint64) {
	for i := range s.lines {
		if s.lines[i].valid && s.lines[i].tag == lineAddr {
			s.freeSub += s.lines[i].subBlocks
			s.lines[i] = line{}
			c.validCnt--
			return
		}
	}
}

// applyDirective handles controller requests: flushing compressed lines
// and rebuilding the high-capacity code book (Section IV-C2). The flush
// only happens when a rebuild actually changed the code book — lines
// encoded under an unchanged book stay decodable.
func (c *Cache) applyDirective(dir modes.Directive) {
	if dir.RebuildHighCap {
		sc := c.highCapTrainer()
		if sc == nil {
			return
		}
		if !sc.Rebuild() {
			return
		}
	}
	if dir.FlushHighCap {
		c.decompBuf = c.decompBuf[:0]
		for si := range c.sets {
			s := &c.sets[si]
			for i := range s.lines {
				if s.lines[i].valid && s.lines[i].mode == modes.HighCap {
					s.freeSub += s.lines[i].subBlocks
					s.lines[i] = line{}
					c.validCnt--
					c.stats.FlushedLines++
				}
			}
		}
	}
	for _, sm := range dir.FlushMismatch {
		if sm.Set < 0 || sm.Set >= c.numSets {
			continue
		}
		s := &c.sets[sm.Set]
		for i := range s.lines {
			if !s.lines[i].valid || s.lines[i].mode == sm.Mode {
				continue
			}
			if sm.KeepUncompressed && s.lines[i].mode == modes.None {
				continue
			}
			s.freeSub += s.lines[i].subBlocks
			s.lines[i] = line{}
			c.validCnt--
			c.stats.FlushedLines++
		}
	}
}

// highCapTrainer returns the high-capacity codec's training interface if
// it has one (SC does; BPC is stateless).
func (c *Cache) highCapTrainer() interface {
	Train([]byte)
	Rebuild() bool
} {
	if sc, ok := c.cfg.Codecs[modes.HighCap].(*compress.SC); ok {
		return sc
	}
	return nil
}

// WriteTouch models a write hit under a write-through L1 (the policy the
// paper declines in Section IV-C3): the stored line's contents change, so
// a compressed line can no longer be assumed to fit its old encoding. The
// conservative hardware response modelled here stores the written line
// uncompressed, growing it to full size and evicting LRU lines if the
// set overflows — exactly the "potentially evict other cache lines on
// write hits" cost the paper's write-avoid choice sidesteps. Misses are
// ignored (no write-allocate).
func (c *Cache) WriteTouch(addr uint64, now uint64) {
	lineAddr := addr / uint64(c.cfg.LineSize)
	si := c.setIndex(lineAddr)
	s := &c.sets[si]
	for i := range s.lines {
		l := &s.lines[i]
		if !l.valid || l.tag != lineAddr {
			continue
		}
		if l.mode == modes.None {
			return
		}
		grow := c.subBlocksPerLine() - l.subBlocks
		for s.freeSub < grow {
			if !c.evictLRUExcept(s, i) {
				// Nothing else to evict: drop the written line itself
				// (write-no-allocate fallback).
				s.freeSub += l.subBlocks
				*l = line{}
				c.validCnt--
				c.stats.Evictions++
				return
			}
		}
		s.freeSub -= grow
		l.mode = modes.None
		l.subBlocks = c.subBlocksPerLine()
		c.stats.WriteExpansions++
		return
	}
}

// evictLRUExcept evicts the least recently used valid line other than
// the keep index.
func (c *Cache) evictLRUExcept(s *set, keep int) bool {
	victim := -1
	oldest := ^uint64(0)
	for i := range s.lines {
		if i == keep {
			continue
		}
		if s.lines[i].valid && s.lines[i].lru < oldest {
			oldest = s.lines[i].lru
			victim = i
		}
	}
	if victim < 0 {
		return false
	}
	s.freeSub += s.lines[victim].subBlocks
	s.lines[victim] = line{}
	c.validCnt--
	c.stats.Evictions++
	return true
}

// TrainHighCap feeds line data into the high-capacity codec's
// value-frequency table. The cache already trains on every fill; the SM
// additionally samples hit data through this method, because the VFT
// tracks the frequency of *used* values (Section IV-C2), not just newly
// inserted ones — an all-hit period would otherwise starve the table.
func (c *Cache) TrainHighCap(data []byte) {
	if sc := c.highCapTrainer(); sc != nil {
		sc.Train(data)
	}
}

// ValidLines returns the number of valid lines currently cached — the
// effective-capacity probe of Figure 16 (each valid line represents
// LineSize bytes of uncompressed data regardless of its stored size).
func (c *Cache) ValidLines() int { return c.validCnt }

// EffectiveCapacityRatio returns effective capacity relative to the
// baseline uncompressed cache (valid uncompressed bytes / SizeBytes).
func (c *Cache) EffectiveCapacityRatio() float64 {
	return float64(c.validCnt*c.cfg.LineSize) / float64(c.cfg.SizeBytes)
}

// Flush invalidates every line (kernel boundary, or period boundary for
// code-book rebuilds driven externally).
func (c *Cache) Flush() {
	c.decompBuf = c.decompBuf[:0]
	for si := range c.sets {
		s := &c.sets[si]
		for i := range s.lines {
			if s.lines[i].valid {
				s.freeSub += s.lines[i].subBlocks
				s.lines[i] = line{}
				c.validCnt--
			}
		}
	}
}

// ResetStats zeroes the counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// LineView is one valid line as exposed to external verifiers (the
// differential oracle): everything that determines future behaviour
// except the opaque LRU counter, whose effect is captured by SetView's
// ordering instead.
type LineView struct {
	Tag       uint64
	Mode      modes.Mode
	SubBlocks int
	Gen       uint64
}

// SetView is one set's observable state: the valid lines in recency
// order (least recently used first, so Lines[0] is the next victim) and
// the sub-block occupancy accounting.
type SetView struct {
	Lines    []LineView
	FreeSub  int
	TotalSub int
}

// SnapshotSet renders one set for state diffing. It panics on an
// out-of-range index (verification tooling passing a bad set is a
// programming error, not input).
func (c *Cache) SnapshotSet(si int) SetView {
	if si < 0 || si >= c.numSets {
		//lint:allow panic-audit verifier-facing accessor; an out-of-range set index is a caller bug
		panic(fmt.Sprintf("cache: SnapshotSet(%d) with %d sets", si, c.numSets))
	}
	s := &c.sets[si]
	type ranked struct {
		lru  uint64
		view LineView
	}
	var rs []ranked
	for i := range s.lines {
		l := &s.lines[i]
		if !l.valid {
			continue
		}
		rs = append(rs, ranked{lru: l.lru, view: LineView{
			Tag: l.tag, Mode: l.mode, SubBlocks: l.subBlocks, Gen: l.gen,
		}})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].lru < rs[j].lru })
	v := SetView{FreeSub: s.freeSub, TotalSub: s.totalSub}
	for _, r := range rs {
		v.Lines = append(v.Lines, r.view)
	}
	return v
}
