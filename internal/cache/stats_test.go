package cache

import (
	"reflect"
	"testing"
)

// fillDistinct sets every field of a Stats (including array elements) to
// a distinct nonzero value and returns the next unused value.
func fillDistinct(v reflect.Value, next uint64) uint64 {
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(next)
			next++
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetUint(next)
				next++
			}
		default:
			panic("Stats grew a field kind fillDistinct does not handle: " + f.Kind().String())
		}
	}
	return next
}

// TestStatsAddCoversEveryField is the completeness guard behind
// Stats.Add: adding a fully-populated Stats onto a zero value must
// reproduce it exactly, so a newly added field that Add forgets shows up
// as a mismatch here instead of silently vanishing from the simulator's
// aggregated result (that is exactly how DecompBufferHits and
// WriteExpansions went missing from Sim.Run's hand-rolled loop).
func TestStatsAddCoversEveryField(t *testing.T) {
	var src Stats
	fillDistinct(reflect.ValueOf(&src).Elem(), 1)

	var dst Stats
	dst.Add(src)
	if dst != src {
		t.Fatalf("Add does not cover every field:\n got %+v\nwant %+v", dst, src)
	}

	dst.Add(src)
	var want Stats
	wv := reflect.ValueOf(&want).Elem()
	sv := reflect.ValueOf(&src).Elem()
	for i := 0; i < wv.NumField(); i++ {
		f, sf := wv.Field(i), sv.Field(i)
		if f.Kind() == reflect.Array {
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetUint(2 * sf.Index(j).Uint())
			}
			continue
		}
		f.SetUint(2 * sf.Uint())
	}
	if dst != want {
		t.Fatalf("Add is not additive:\n got %+v\nwant %+v", dst, want)
	}
}

// TestStatsAddModes: the mode-indexed add must touch only the per-mode
// arrays, leaving scalar counters alone.
func TestStatsAddModes(t *testing.T) {
	var src Stats
	fillDistinct(reflect.ValueOf(&src).Elem(), 1)

	var dst Stats
	dst.AddModes(src)

	want := Stats{
		InsertsByMode:   src.InsertsByMode,
		HitsByMode:      src.HitsByMode,
		SubBlocksByMode: src.SubBlocksByMode,
	}
	if dst != want {
		t.Fatalf("AddModes touched scalar fields:\n got %+v\nwant %+v", dst, want)
	}
}
