package cache

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"lattecc/internal/compress"
	"lattecc/internal/modes"
	"lattecc/internal/policy"
)

func testConfig() Config {
	var codecs [modes.NumModes]compress.Codec
	codecs[modes.LowLat] = compress.NewBDI()
	codecs[modes.HighCap] = compress.NewSC()
	return Config{
		SizeBytes:  16 * 1024,
		LineSize:   128,
		Ways:       4,
		HitLatency: 1,
		Codecs:     codecs,
	}
}

func uncompressedCache() *Cache {
	return New(testConfig(), policy.NewStatic(modes.None, "base", 256, 10))
}

func bdiCache() *Cache {
	return New(testConfig(), policy.NewStatic(modes.LowLat, "bdi", 256, 10))
}

// compressibleLine returns stride data that BDI compresses to b4d1
// (4B base + 32 deltas + 4B mask ≈ 40B → 2 sub-blocks).
func compressibleLine() []byte {
	b := make([]byte, 128)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(b[i*4:], 0x40000000+uint32(i))
	}
	return b
}

func randomLine(rng *rand.Rand) []byte {
	b := make([]byte, 128)
	rng.Read(b)
	return b
}

func TestMissThenFillThenHit(t *testing.T) {
	c := uncompressedCache()
	addr := uint64(0x4000)
	if r := c.Access(addr, 0); r.Hit {
		t.Fatal("cold access must miss")
	}
	c.Fill(addr, make([]byte, 128), 10)
	r := c.Access(addr, 20)
	if !r.Hit {
		t.Fatal("post-fill access must hit")
	}
	if r.Ready != 20+c.cfg.HitLatency {
		t.Fatalf("ready = %d, want %d", r.Ready, 20+c.cfg.HitLatency)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Fills != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestBaselineCapacityIsFourWays(t *testing.T) {
	c := uncompressedCache()
	sets := c.NumSets()
	// Fill 5 lines mapping to set 0; only 4 fit uncompressed.
	for i := 0; i < 5; i++ {
		addr := uint64(i*sets) * 128
		c.Access(addr, 0)
		c.Fill(addr, make([]byte, 128), 0)
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("want exactly 1 eviction, got %d", c.Stats().Evictions)
	}
	// The LRU line (i=0) must be gone, the rest present.
	if r := c.Access(0, 100); r.Hit {
		t.Fatal("LRU line should have been evicted")
	}
	for i := 1; i < 5; i++ {
		if r := c.Access(uint64(i*sets)*128, 100); !r.Hit {
			t.Fatalf("line %d should be resident", i)
		}
	}
}

func TestCompressionExpandsCapacity(t *testing.T) {
	c := bdiCache()
	sets := c.NumSets()
	// Compressible lines take 2 sub-blocks each; a set has 16 sub-blocks
	// and 16 tags, so 8 lines fit.
	for i := 0; i < 8; i++ {
		addr := uint64(i*sets) * 128
		c.Access(addr, 0)
		c.Fill(addr, compressibleLine(), 0)
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("8 compressed lines should fit without eviction, got %d evictions", ev)
	}
	for i := 0; i < 8; i++ {
		if r := c.Access(uint64(i*sets)*128, 100); !r.Hit {
			t.Fatalf("compressed line %d should be resident", i)
		}
	}
	if ratio := c.EffectiveCapacityRatio(); ratio <= 0 {
		t.Fatalf("effective capacity ratio %v", ratio)
	}
}

func TestTagLimitSixteenLinesPerSet(t *testing.T) {
	// Even infinitely compressible lines are capped by the 4x tag array.
	c := bdiCache()
	sets := c.NumSets()
	for i := 0; i < 20; i++ {
		addr := uint64(i*sets) * 128
		c.Access(addr, 0)
		c.Fill(addr, make([]byte, 128), 0) // zero lines → 1 sub-block
	}
	hits := 0
	for i := 0; i < 20; i++ {
		if r := c.Access(uint64(i*sets)*128, 1000); r.Hit {
			hits++
		}
	}
	if hits != 16 {
		t.Fatalf("tag-limited set should hold exactly 16 lines, got %d", hits)
	}
}

func TestDecompressionLatencyCharged(t *testing.T) {
	c := bdiCache()
	addr := uint64(0)
	c.Access(addr, 0)
	c.Fill(addr, compressibleLine(), 0)
	r := c.Access(addr, 50)
	if !r.Hit || r.LineMode != modes.LowLat {
		t.Fatalf("want compressed hit, got %+v", r)
	}
	wantExtra := uint64(compress.NewBDI().DecompLatency())
	if r.ExtraLatency != wantExtra {
		t.Fatalf("extra latency = %d, want %d", r.ExtraLatency, wantExtra)
	}
	if r.Ready != 50+c.cfg.HitLatency+wantExtra {
		t.Fatalf("ready = %d", r.Ready)
	}
}

func TestDecompressorQueueContention(t *testing.T) {
	c := bdiCache()
	addr := uint64(0)
	c.Access(addr, 0)
	c.Fill(addr, compressibleLine(), 0)
	r1 := c.Access(addr, 100)
	r2 := c.Access(addr, 100) // same cycle: must queue behind r1
	if r2.ExtraLatency <= r1.ExtraLatency {
		t.Fatalf("second decompression must wait: %d vs %d", r2.ExtraLatency, r1.ExtraLatency)
	}
	if c.Stats().DecompWait == 0 {
		t.Fatal("queue wait must be recorded")
	}
}

func TestUnboundedDecompressorAblation(t *testing.T) {
	cfg := testConfig()
	cfg.UnboundedDecompressor = true
	c := New(cfg, policy.NewStatic(modes.LowLat, "bdi", 256, 10))
	addr := uint64(0)
	c.Access(addr, 0)
	c.Fill(addr, compressibleLine(), 0)
	r1 := c.Access(addr, 100)
	r2 := c.Access(addr, 100)
	if r1.ExtraLatency != r2.ExtraLatency {
		t.Fatal("unbounded decompressor must not queue")
	}
	if c.Stats().DecompWait != 0 {
		t.Fatal("no wait should accrue")
	}
}

func TestCapacityOnlyNoLatency(t *testing.T) {
	cfg := testConfig()
	cfg.CapacityOnly = true
	c := New(cfg, policy.NewStatic(modes.LowLat, "bdi", 256, 10))
	addr := uint64(0)
	c.Access(addr, 0)
	c.Fill(addr, compressibleLine(), 0)
	r := c.Access(addr, 10)
	if r.ExtraLatency != 0 {
		t.Fatalf("capacity-only mode must charge no decompression latency, got %d", r.ExtraLatency)
	}
}

func TestLatencyOnlyNoCapacity(t *testing.T) {
	cfg := testConfig()
	cfg.LatencyOnly = true
	c := New(cfg, policy.NewStatic(modes.LowLat, "bdi", 256, 10))
	sets := c.NumSets()
	for i := 0; i < 5; i++ {
		addr := uint64(i*sets) * 128
		c.Access(addr, 0)
		c.Fill(addr, compressibleLine(), 0)
	}
	// Full-size storage: the 5th line must evict, like the baseline.
	if c.Stats().Evictions != 1 {
		t.Fatalf("latency-only must not expand capacity: %d evictions", c.Stats().Evictions)
	}
	r := c.Access(uint64(4*sets)*128, 100)
	if r.ExtraLatency == 0 {
		t.Fatal("latency-only must still charge decompression latency")
	}
}

func TestExtraHitLatencySweepKnob(t *testing.T) {
	cfg := testConfig()
	cfg.ExtraHitLatency = 9
	c := New(cfg, policy.NewStatic(modes.None, "base", 256, 10))
	c.Access(0, 0)
	c.Fill(0, make([]byte, 128), 0)
	r := c.Access(0, 10)
	if r.Ready != 10+cfg.HitLatency+9 {
		t.Fatalf("ready = %d, want %d", r.Ready, 10+cfg.HitLatency+9)
	}
}

func TestFlushInvalidatesEverything(t *testing.T) {
	c := bdiCache()
	for i := 0; i < 10; i++ {
		addr := uint64(i) * 128
		c.Access(addr, 0)
		c.Fill(addr, compressibleLine(), 0)
	}
	if c.ValidLines() != 10 {
		t.Fatalf("valid = %d", c.ValidLines())
	}
	c.Flush()
	if c.ValidLines() != 0 {
		t.Fatalf("flush left %d lines", c.ValidLines())
	}
	if r := c.Access(0, 100); r.Hit {
		t.Fatal("flushed line must miss")
	}
}

func TestStaticSCRebuildFlushesCompressedLines(t *testing.T) {
	cfg := testConfig()
	epLen, eps := uint64(16), uint64(4)
	ctrl := policy.NewStatic(modes.HighCap, "Static-SC", epLen, eps)
	c := New(cfg, ctrl)
	// Before the first rebuild SC has no code book, so period-1 lines are
	// stored raw (and demoted to uncompressed — they stay valid across the
	// first rebuild). During period 2 the trained code book compresses
	// insertions; the second period-end flush must invalidate those.
	rng := rand.New(rand.NewSource(1))
	var accesses uint64
	scLine := func() []byte {
		// Lines drawn from a tiny word dictionary: highly SC-compressible.
		b := make([]byte, 128)
		for i := 0; i < 32; i++ {
			binary.LittleEndian.PutUint32(b[i*4:], uint32(rng.Intn(8))*0x01010101)
		}
		return b
	}
	for accesses < 2*epLen*eps-1 {
		addr := uint64(rng.Intn(64)) * 128
		r := c.Access(addr, accesses)
		accesses++
		if !r.Hit {
			c.Fill(addr, scLine(), accesses)
		}
	}
	if c.ValidLines() == 0 {
		t.Fatal("cache should have contents before period end")
	}
	// The access that completes period 2 triggers flush+rebuild; lines
	// compressed under the old code book must be gone.
	c.Access(uint64(9999)*128, accesses)
	if c.Stats().FlushedLines == 0 {
		t.Fatal("second period-end flush must invalidate compressed lines")
	}
}

func TestSubBlockAccountingInvariant(t *testing.T) {
	// Property: after arbitrary access/fill sequences, every set's free
	// sub-block count equals capacity minus the sum of resident lines.
	f := func(seed int64, ops uint16) bool {
		c := bdiCache()
		rng := rand.New(rand.NewSource(seed))
		n := int(ops)%500 + 50
		for i := 0; i < n; i++ {
			addr := uint64(rng.Intn(2048)) * 128
			r := c.Access(addr, uint64(i))
			if !r.Hit {
				var data []byte
				if rng.Intn(2) == 0 {
					data = compressibleLine()
				} else {
					data = randomLine(rng)
				}
				c.Fill(addr, data, uint64(i))
			}
		}
		valid := 0
		for si := range c.sets {
			s := &c.sets[si]
			used := 0
			for _, l := range s.lines {
				if l.valid {
					used += l.subBlocks
					valid++
					if l.subBlocks < 1 || l.subBlocks > 4 {
						return false
					}
				}
			}
			if s.freeSub != s.totalSub-used || s.freeSub < 0 {
				return false
			}
		}
		return valid == c.ValidLines()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHitRateAndRatioStats(t *testing.T) {
	c := bdiCache()
	c.Access(0, 0)
	c.Fill(0, compressibleLine(), 0)
	c.Access(0, 10)
	st := c.Stats()
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", st.HitRate())
	}
	if st.AvgCompressionRatio() < 2 {
		t.Fatalf("ratio = %v, want >= 2 for stride data", st.AvgCompressionRatio())
	}
}

func TestEmptyStatsDefaults(t *testing.T) {
	var st Stats
	if st.HitRate() != 0 || st.AvgCompressionRatio() != 1 {
		t.Fatal("empty stats defaults wrong")
	}
}

func TestGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{SizeBytes: 16384, LineSize: 100, Ways: 4}, // not sub-block aligned
	} {
		func() {
			defer func() { recover() }()
			New(cfg, policy.NewStatic(modes.None, "x", 1, 1))
			t.Errorf("config %+v should panic", cfg)
		}()
	}
}

func TestSetIndexDistribution(t *testing.T) {
	c := uncompressedCache()
	counts := make(map[int]int)
	for i := 0; i < c.NumSets()*4; i++ {
		counts[c.setIndex(uint64(i))]++
	}
	for s, n := range counts {
		if n != 4 {
			t.Fatalf("set %d got %d lines, want uniform 4", s, n)
		}
	}
}

func TestWriteTouchExpandsCompressedLine(t *testing.T) {
	c := bdiCache()
	sets := c.NumSets()
	// Fill a set with 8 compressed lines (2 sub-blocks each).
	for i := 0; i < 8; i++ {
		addr := uint64(i*sets) * 128
		c.Access(addr, 0)
		c.Fill(addr, compressibleLine(), 0)
	}
	if c.ValidLines() != 8 {
		t.Fatalf("valid = %d", c.ValidLines())
	}
	// Write-touch one line: it expands to 4 sub-blocks; the set had 0
	// free, so an LRU neighbour must be evicted.
	c.WriteTouch(0, 10)
	st := c.Stats()
	if st.WriteExpansions != 1 {
		t.Fatalf("write expansions = %d", st.WriteExpansions)
	}
	if st.Evictions == 0 {
		t.Fatal("expansion with a full set must evict")
	}
	// The written line itself must survive, now uncompressed.
	r := c.Access(0, 20)
	if !r.Hit {
		t.Fatal("written line must stay resident")
	}
	if r.ExtraLatency != 0 {
		t.Fatal("expanded line must be uncompressed (no decompression)")
	}
}

func TestWriteTouchMissAndUncompressedAreNoOps(t *testing.T) {
	c := bdiCache()
	c.WriteTouch(0x7777000, 0) // miss: nothing happens
	if c.Stats().WriteExpansions != 0 || c.Stats().Evictions != 0 {
		t.Fatal("write-touch miss must be a no-op")
	}
	ctrl := policy.NewStatic(modes.None, "base", 256, 10)
	cu := New(testConfig(), ctrl)
	cu.Access(0, 0)
	cu.Fill(0, make([]byte, 128), 0)
	cu.WriteTouch(0, 1)
	if cu.Stats().WriteExpansions != 0 {
		t.Fatal("uncompressed lines need no expansion")
	}
}

func TestDecompressedLineBuffer(t *testing.T) {
	cfg := testConfig()
	cfg.DecompBufferEntries = 2
	c := New(cfg, policy.NewStatic(modes.LowLat, "bdi", 256, 10))
	addr := uint64(0)
	c.Access(addr, 0)
	c.Fill(addr, compressibleLine(), 0)

	// First hit decompresses; second hit is buffered and free.
	r1 := c.Access(addr, 100)
	if r1.ExtraLatency == 0 {
		t.Fatal("first hit must decompress")
	}
	r2 := c.Access(addr, 200)
	if r2.ExtraLatency != 0 {
		t.Fatalf("buffered hit must be free, got %d", r2.ExtraLatency)
	}
	if c.Stats().DecompBufferHits != 1 {
		t.Fatalf("buffer hits = %d", c.Stats().DecompBufferHits)
	}

	// FIFO capacity 2: touching two more lines evicts addr's entry.
	for i := 1; i <= 2; i++ {
		a := uint64(i) * 128 * uint64(c.NumSets()) // same set chain, distinct lines
		c.Access(a, 300)
		c.Fill(a, compressibleLine(), 300)
		c.Access(a, 310)
	}
	r3 := c.Access(addr, 400)
	if r3.ExtraLatency == 0 {
		t.Fatal("evicted buffer entry must re-decompress")
	}

	// A re-fill of the line invalidates its buffered copy.
	c.Access(addr, 500)                   // buffer it again
	c.Fill(addr, compressibleLine(), 510) // new data
	if r := c.Access(addr, 520); r.ExtraLatency == 0 {
		t.Fatal("refilled line must not serve stale buffered data")
	}

	// Flush clears the buffer.
	c.Access(addr, 600)
	c.Flush()
	if len(c.decompBuf) != 0 {
		t.Fatal("flush must clear the decompression buffer")
	}
}

func TestDecompressedLineBufferDisabledByDefault(t *testing.T) {
	c := bdiCache()
	c.Access(0, 0)
	c.Fill(0, compressibleLine(), 0)
	c.Access(0, 10)
	c.Access(0, 50)
	if c.Stats().DecompBufferHits != 0 {
		t.Fatal("buffer must be off by default (the paper's design)")
	}
}
