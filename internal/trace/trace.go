// Package trace defines the execution abstractions the simulator runs:
// per-warp instruction programs, kernels, and workloads. Programs are lazy
// generators, so multi-million-instruction workloads never materialize
// full traces in memory.
//
// The model is deliberately latency-accurate rather than ISA-accurate: an
// instruction is an opcode, a latency, and (for memory operations) the set
// of coalesced line-granular transactions the warp's 32 threads produce.
// That is exactly the level at which cache compression and warp-level
// latency hiding interact; PTX decoding fidelity adds nothing to the
// studied mechanisms (see DESIGN.md, substitutions table).
package trace

import "fmt"

// OpKind is the instruction class.
type OpKind uint8

const (
	// OpALU is a compute instruction with a fixed latency; the issuing
	// warp cannot issue again until the latency elapses (dependent-chain
	// model).
	OpALU OpKind = iota
	// OpLoad reads memory; the warp blocks until all transactions return.
	OpLoad
	// OpStore writes memory; stores retire without blocking the warp
	// beyond the issue cycle (GPU write-avoid L1, Section IV-C3).
	OpStore
	// OpBarrier blocks the warp until every live warp of its thread
	// block has reached a barrier (__syncthreads).
	OpBarrier
)

// Inst is one warp-level instruction.
type Inst struct {
	Op OpKind
	// Lat is the execution latency for OpALU (>= 1).
	Lat uint32
	// Addrs are the byte addresses of the coalesced transactions of a
	// memory instruction: one entry per distinct cache line touched by
	// the warp (1 for fully coalesced, up to 32 for fully divergent).
	Addrs []uint64
}

// Program yields a warp's instruction stream.
type Program interface {
	// Next returns the next instruction, or ok=false when the warp ends.
	//
	// The returned Inst.Addrs slice is only valid until the next call to
	// Next on the same Program: generators may reuse one backing array to
	// keep multi-million-instruction runs allocation-free. Consumers that
	// hold a memory instruction across issue boundaries (the simulator's
	// LSU does) must copy the addresses out.
	Next() (inst Inst, ok bool)
}

// Kernel is one GPU kernel launch: a grid of thread blocks, each composed
// of warps running programs produced by the factory.
type Kernel struct {
	// Name identifies the kernel in per-kernel reports (Kernel-OPT).
	Name string
	// Blocks is the number of thread blocks in the grid.
	Blocks int
	// WarpsPerBlock is the warp count per block.
	WarpsPerBlock int
	// Program builds the instruction stream for one warp.
	Program func(block, warp int) Program
}

// Validate panics on malformed kernels — kernels are authored inside this
// repository, so errors are programming mistakes.
func (k Kernel) Validate() {
	if k.Blocks <= 0 || k.WarpsPerBlock <= 0 || k.Program == nil {
		panic(fmt.Sprintf("trace: malformed kernel %q: %+v", k.Name, k))
	}
}

// Category classifies workloads by cache sensitivity (Section IV-B: more
// than 20%% speedup with a 4x cache → cache sensitive).
type Category uint8

const (
	// CInSens marks cache-insensitive workloads.
	CInSens Category = iota
	// CSens marks cache-sensitive workloads.
	CSens
)

// String returns the paper's abbreviation for the category.
func (c Category) String() string {
	if c == CSens {
		return "C-Sens"
	}
	return "C-InSens"
}

// DataSource supplies the backing data for cache lines, so compression
// operates on real bytes. lineAddr is the line number (byte address /
// line size); implementations must return exactly one line-size slice and
// must be deterministic for a given address.
type DataSource interface {
	Line(lineAddr uint64) []byte
}

// LineFiller is an optional DataSource extension: LineInto renders the
// line into caller-owned storage instead of allocating a fresh slice per
// call. The simulator probes for it and passes a per-SM scratch buffer,
// which is safe because the cache copies (or measures) fill data without
// retaining the slice. dst must be exactly one line long; the fill must
// overwrite every byte (callers reuse dst across lines).
type LineFiller interface {
	LineInto(dst []byte, lineAddr uint64)
}

// Workload is a complete benchmark: its kernels and its data image.
type Workload interface {
	// Name returns the paper's abbreviation (e.g. "SS", "BC").
	Name() string
	// Category returns the cache-sensitivity class.
	Category() Category
	// Kernels returns the kernels executed in order.
	Kernels() []Kernel
	// Data returns the backing store for the workload's address space.
	Data() DataSource
}

// SliceProgram replays a fixed instruction slice; used by tests and
// micro-workloads.
type SliceProgram struct {
	insts []Inst
	pos   int
}

// NewSliceProgram returns a Program over the given instructions.
func NewSliceProgram(insts []Inst) *SliceProgram { return &SliceProgram{insts: insts} }

// Next implements Program.
func (p *SliceProgram) Next() (Inst, bool) {
	if p.pos >= len(p.insts) {
		return Inst{}, false
	}
	i := p.insts[p.pos]
	p.pos++
	return i, true
}

// FuncProgram adapts a closure to Program.
type FuncProgram func() (Inst, bool)

// Next implements Program.
func (f FuncProgram) Next() (Inst, bool) { return f() }
