package trace

import "testing"

func TestSliceProgram(t *testing.T) {
	insts := []Inst{
		{Op: OpALU, Lat: 2},
		{Op: OpLoad, Addrs: []uint64{128}},
		{Op: OpStore, Addrs: []uint64{256}},
	}
	p := NewSliceProgram(insts)
	for i, want := range insts {
		got, ok := p.Next()
		if !ok {
			t.Fatalf("program ended early at %d", i)
		}
		if got.Op != want.Op || got.Lat != want.Lat {
			t.Fatalf("inst %d = %+v, want %+v", i, got, want)
		}
	}
	if _, ok := p.Next(); ok {
		t.Fatal("program must end after the slice")
	}
	if _, ok := p.Next(); ok {
		t.Fatal("ended programs must stay ended")
	}
}

func TestFuncProgram(t *testing.T) {
	n := 0
	p := FuncProgram(func() (Inst, bool) {
		if n >= 3 {
			return Inst{}, false
		}
		n++
		return Inst{Op: OpALU}, true
	})
	count := 0
	for {
		if _, ok := p.Next(); !ok {
			break
		}
		count++
	}
	if count != 3 {
		t.Fatalf("got %d insts, want 3", count)
	}
}

func TestKernelValidate(t *testing.T) {
	good := Kernel{Name: "k", Blocks: 1, WarpsPerBlock: 1,
		Program: func(int, int) Program { return NewSliceProgram(nil) }}
	good.Validate() // must not panic

	bad := []Kernel{
		{Name: "no-blocks", WarpsPerBlock: 1, Program: good.Program},
		{Name: "no-warps", Blocks: 1, Program: good.Program},
		{Name: "no-program", Blocks: 1, WarpsPerBlock: 1},
	}
	for _, k := range bad {
		k := k
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("kernel %q must fail validation", k.Name)
				}
			}()
			k.Validate()
		}()
	}
}

func TestCategoryString(t *testing.T) {
	if CSens.String() != "C-Sens" || CInSens.String() != "C-InSens" {
		t.Fatal("category strings must match the paper's abbreviations")
	}
}
