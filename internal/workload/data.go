// Package workload implements synthetic versions of the paper's benchmark
// suite (Table III). Each workload recreates the qualitative properties
// the LATTE-CC mechanisms respond to: data-value locality (spatial vs
// temporal, controlling which codec compresses it), working-set size
// (controlling cache sensitivity), warp-level parallelism and its phase
// behaviour (controlling latency tolerance), and coalescing/divergence.
//
// DESIGN.md documents the substitution: the original CUDA benchmarks
// cannot run without GPGPU-Sim, so these generators stand in for them,
// tuned per workload to land in the paper's qualitative classes.
package workload

import "encoding/binary"

// LineSize matches the simulator's cache line size.
const LineSize = 128

// wordsPerLine is the number of 32-bit words per line.
const wordsPerLine = LineSize / 4

// ValueStyle selects the data-value generator for a region, which in turn
// determines which compression algorithm the region favours.
type ValueStyle uint8

const (
	// StyleZeroHeavy produces mostly-zero lines (everything compresses).
	StyleZeroHeavy ValueStyle = iota
	// StyleSmallInt produces small integers: spatial AND temporal value
	// locality (graph degrees, counters). BDI and SC both do well.
	StyleSmallInt
	// StyleStrideInt produces per-line arithmetic sequences from large,
	// line-dependent bases: strong spatial locality, no cross-line value
	// reuse. BDI-friendly, SC-hostile (array indices, offsets).
	StyleStrideInt
	// StylePointer produces 8-byte pointers into a line-dependent arena:
	// BDI's classic case (b8d2/b8d4), SC-hostile.
	StylePointer
	// StyleDictFloat draws 32-bit words from a small global dictionary of
	// high-entropy values: no within-line delta structure (BDI-hostile)
	// but heavy cross-line value reuse (SC's case — clustering
	// centroids, lookup tables, repeated FP constants).
	StyleDictFloat
	// StyleExpFloat produces float-like words with a shared exponent and
	// a large constant mantissa stride: deltas too wide for BDI but
	// collapsing to near-empty bit planes under BPC's transforms.
	StyleExpFloat
	// StyleRandom is incompressible noise.
	StyleRandom
)

// splitmix64 is the deterministic value hash used throughout the
// generators (no math/rand state, so Line is pure).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Region is a contiguous range of lines sharing one value style — one
// logical array of the original benchmark.
type Region struct {
	Start uint64 // first line number
	Lines uint64 // extent in lines
	Style ValueStyle
	Seed  uint64
	// Dict is the dictionary size for StyleDictFloat (default 128).
	Dict uint32
}

// contains reports whether the region covers lineAddr.
func (r Region) contains(lineAddr uint64) bool {
	return lineAddr >= r.Start && lineAddr < r.Start+r.Lines
}

// Data is a trace.DataSource over a set of regions. Lines outside all
// regions are zero (untouched address space).
type Data struct {
	regions []Region
}

// NewData builds a data source from regions.
func NewData(regions []Region) *Data { return &Data{regions: regions} }

// Line implements trace.DataSource.
func (d *Data) Line(lineAddr uint64) []byte {
	b := make([]byte, LineSize)
	d.LineInto(b, lineAddr)
	return b
}

// LineInto implements trace.LineFiller: it renders the line into dst
// (which must be LineSize bytes) so hot callers can reuse one buffer
// instead of allocating per access.
func (d *Data) LineInto(dst []byte, lineAddr uint64) {
	for _, r := range d.regions {
		if r.contains(lineAddr) {
			genLine(dst, r, lineAddr)
			return
		}
	}
	for i := range dst {
		dst[i] = 0
	}
}

// genLine deterministically renders one line of a region into b,
// overwriting all LineSize bytes.
func genLine(b []byte, r Region, lineAddr uint64) {
	h := splitmix64(r.Seed ^ lineAddr*0x9E3779B97F4A7C15)
	switch r.Style {
	case StyleZeroHeavy:
		// ~25% of words are small non-zero values; the rest stay zero.
		for i := 0; i < wordsPerLine; i++ {
			v := splitmix64(h + uint64(i))
			if v%4 == 0 {
				binary.LittleEndian.PutUint32(b[i*4:], uint32(v>>32)&0xFF)
			} else {
				binary.LittleEndian.PutUint32(b[i*4:], 0)
			}
		}
	case StyleSmallInt:
		for i := 0; i < wordsPerLine; i++ {
			v := uint32(splitmix64(h+uint64(i)) & 0x3F) // 64 distinct values
			binary.LittleEndian.PutUint32(b[i*4:], v)
		}
	case StyleStrideInt:
		base := uint32(h) &^ 0xFFF    // large line-dependent base
		stride := uint32(h>>32)%4 + 1 // deltas stay within BDI's 1-byte b4d1 range
		for i := 0; i < wordsPerLine; i++ {
			noise := uint32(splitmix64(h+uint64(i)) & 0x3)
			binary.LittleEndian.PutUint32(b[i*4:], base+uint32(i)*stride+noise)
		}
	case StylePointer:
		base := (h &^ 0xFFFF) | 0x7F0000000000
		for i := 0; i < LineSize/8; i++ {
			off := splitmix64(h+uint64(i)) & 0x7FF8
			binary.LittleEndian.PutUint64(b[i*8:], base+off)
		}
	case StyleDictFloat:
		dict := r.Dict
		if dict == 0 {
			dict = 128
		}
		for i := 0; i < wordsPerLine; i++ {
			slot := splitmix64(h+uint64(i)) % uint64(dict)
			// Dictionary entry: derived only from seed+slot so it repeats
			// across lines (temporal value locality).
			v := uint32(splitmix64(r.Seed*0x5851F42D4C957F2D + slot))
			binary.LittleEndian.PutUint32(b[i*4:], v)
		}
	case StyleExpFloat:
		exp := uint32(0x42000000) | uint32(h>>56)<<16
		mant := uint32(h) & 0x7FFF
		const stride = 3 << 14 // too wide for BDI's 2-byte deltas
		for i := 0; i < wordsPerLine; i++ {
			binary.LittleEndian.PutUint32(b[i*4:], exp|(mant+uint32(i)*stride)&0x7FFFFF)
		}
	case StyleRandom:
		for i := 0; i < wordsPerLine; i++ {
			binary.LittleEndian.PutUint32(b[i*4:], uint32(splitmix64(h+uint64(i))))
		}
	default:
		// Unknown style: deterministic zero line (b may be a reused buffer,
		// so it must still be overwritten).
		for i := range b {
			b[i] = 0
		}
	}
}
