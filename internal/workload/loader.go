package workload

import (
	"encoding/json"
	"fmt"
	"os"

	"lattecc/internal/trace"
)

// JSON schema for user-defined workloads, so new benchmarks can be added
// without writing Go. Styles and phase kinds use the names documented on
// the ValueStyle and PhaseKind constants.
//
// Example:
//
//	{
//	  "name": "MYAPP",
//	  "category": "C-Sens",
//	  "regions": [
//	    {"start": 0, "lines": 16384, "style": "dict-float", "seed": 7, "dict": 96}
//	  ],
//	  "kernels": [
//	    {
//	      "name": "main", "blocks": 60, "warpsPerBlock": 8,
//	      "phases": [
//	        {"kind": "reuse", "region": 0, "iters": 800, "alu": 3, "wsLines": 16},
//	        {"kind": "barrier", "iters": 1},
//	        {"kind": "store", "region": 0, "iters": 100, "alu": 1}
//	      ]
//	    }
//	  ]
//	}

// specJSON mirrors Spec for decoding.
type specJSON struct {
	Name     string       `json:"name"`
	Category string       `json:"category"`
	Regions  []regionJSON `json:"regions"`
	Kernels  []kernelJSON `json:"kernels"`
}

type regionJSON struct {
	Start uint64 `json:"start"`
	Lines uint64 `json:"lines"`
	Style string `json:"style"`
	Seed  uint64 `json:"seed"`
	Dict  uint32 `json:"dict"`
}

type kernelJSON struct {
	Name          string      `json:"name"`
	Blocks        int         `json:"blocks"`
	WarpsPerBlock int         `json:"warpsPerBlock"`
	Phases        []phaseJSON `json:"phases"`
}

type phaseJSON struct {
	Kind       string `json:"kind"`
	Region     int    `json:"region"`
	Iters      int    `json:"iters"`
	ALU        int    `json:"alu"`
	ALULat     uint32 `json:"aluLat"`
	WSLines    int    `json:"wsLines"`
	Shared     bool   `json:"shared"`
	Divergence int    `json:"divergence"`
}

var styleNames = map[string]ValueStyle{
	"zero-heavy": StyleZeroHeavy,
	"small-int":  StyleSmallInt,
	"stride-int": StyleStrideInt,
	"pointer":    StylePointer,
	"dict-float": StyleDictFloat,
	"exp-float":  StyleExpFloat,
	"random":     StyleRandom,
}

var kindNames = map[string]PhaseKind{
	"stream":  PhaseStream,
	"reuse":   PhaseReuse,
	"random":  PhaseRandom,
	"compute": PhaseCompute,
	"store":   PhaseStore,
	"barrier": PhaseBarrier,
}

// ParseSpec decodes a JSON workload definition and validates it.
func ParseSpec(data []byte) (*Spec, error) {
	var sj specJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return nil, fmt.Errorf("workload: parse: %w", err)
	}
	if sj.Name == "" {
		return nil, fmt.Errorf("workload: missing name")
	}
	spec := &Spec{WName: sj.Name}
	switch sj.Category {
	case "C-Sens":
		spec.Cat = trace.CSens
	case "C-InSens", "":
		spec.Cat = trace.CInSens
	default:
		return nil, fmt.Errorf("workload %s: unknown category %q (want C-Sens or C-InSens)", sj.Name, sj.Category)
	}
	if len(sj.Regions) == 0 {
		return nil, fmt.Errorf("workload %s: no regions", sj.Name)
	}
	for ri, rj := range sj.Regions {
		style, ok := styleNames[rj.Style]
		if !ok {
			return nil, fmt.Errorf("workload %s: region %d: unknown style %q", sj.Name, ri, rj.Style)
		}
		if rj.Lines == 0 {
			return nil, fmt.Errorf("workload %s: region %d: zero lines", sj.Name, ri)
		}
		spec.Regions = append(spec.Regions, Region{
			Start: rj.Start, Lines: rj.Lines, Style: style, Seed: rj.Seed, Dict: rj.Dict,
		})
	}
	if len(sj.Kernels) == 0 {
		return nil, fmt.Errorf("workload %s: no kernels", sj.Name)
	}
	for ki, kj := range sj.Kernels {
		if kj.Blocks <= 0 || kj.WarpsPerBlock <= 0 {
			return nil, fmt.Errorf("workload %s: kernel %d: need positive blocks and warpsPerBlock", sj.Name, ki)
		}
		if len(kj.Phases) == 0 {
			return nil, fmt.Errorf("workload %s: kernel %d: no phases", sj.Name, ki)
		}
		ks := KernelSpec{Name: kj.Name, Blocks: kj.Blocks, WarpsPerBlock: kj.WarpsPerBlock}
		if ks.Name == "" {
			ks.Name = fmt.Sprintf("%s-k%d", sj.Name, ki)
		}
		for pi, pj := range kj.Phases {
			kind, ok := kindNames[pj.Kind]
			if !ok {
				return nil, fmt.Errorf("workload %s: kernel %d phase %d: unknown kind %q", sj.Name, ki, pi, pj.Kind)
			}
			if kind != PhaseCompute && kind != PhaseBarrier {
				if pj.Region < 0 || pj.Region >= len(spec.Regions) {
					return nil, fmt.Errorf("workload %s: kernel %d phase %d: region %d out of range", sj.Name, ki, pi, pj.Region)
				}
			}
			if pj.Iters <= 0 {
				return nil, fmt.Errorf("workload %s: kernel %d phase %d: need positive iters", sj.Name, ki, pi)
			}
			ks.Phases = append(ks.Phases, Phase{
				Kind: kind, Region: pj.Region, Iters: pj.Iters, ALU: pj.ALU,
				ALULat: pj.ALULat, WSLines: pj.WSLines, Shared: pj.Shared,
				Divergence: pj.Divergence,
			})
		}
		spec.KernelSeq = append(spec.KernelSeq, ks)
	}
	return spec, nil
}

// LoadSpecFile reads and parses a JSON workload definition from a file.
func LoadSpecFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return ParseSpec(data)
}
