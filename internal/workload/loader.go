package workload

import (
	"encoding/json"
	"fmt"
	"os"

	"lattecc/internal/trace"
)

// JSON schema for user-defined workloads, so new benchmarks can be added
// without writing Go. Styles and phase kinds use the names documented on
// the ValueStyle and PhaseKind constants.
//
// Example:
//
//	{
//	  "name": "MYAPP",
//	  "category": "C-Sens",
//	  "regions": [
//	    {"start": 0, "lines": 16384, "style": "dict-float", "seed": 7, "dict": 96}
//	  ],
//	  "kernels": [
//	    {
//	      "name": "main", "blocks": 60, "warpsPerBlock": 8,
//	      "phases": [
//	        {"kind": "reuse", "region": 0, "iters": 800, "alu": 3, "wsLines": 16},
//	        {"kind": "barrier", "iters": 1},
//	        {"kind": "store", "region": 0, "iters": 100, "alu": 1}
//	      ]
//	    }
//	  ]
//	}

// specJSON mirrors Spec for decoding.
type specJSON struct {
	Name     string       `json:"name"`
	Category string       `json:"category"`
	Regions  []regionJSON `json:"regions"`
	Kernels  []kernelJSON `json:"kernels"`
}

type regionJSON struct {
	Start uint64 `json:"start"`
	Lines uint64 `json:"lines"`
	Style string `json:"style"`
	Seed  uint64 `json:"seed"`
	Dict  uint32 `json:"dict"`
}

type kernelJSON struct {
	Name          string        `json:"name"`
	Blocks        int           `json:"blocks"`
	WarpsPerBlock int           `json:"warpsPerBlock"`
	Phases        []phaseJSON   `json:"phases"`
	Mix           [][]phaseJSON `json:"mix"`
}

type phaseJSON struct {
	Kind       string `json:"kind"`
	Region     int    `json:"region"`
	Iters      int    `json:"iters"`
	ALU        int    `json:"alu"`
	ALULat     uint32 `json:"aluLat"`
	WSLines    int    `json:"wsLines"`
	Shared     bool   `json:"shared"`
	Divergence int    `json:"divergence"`
	FlipEvery  int    `json:"flipEvery"`
	FlipRegion int    `json:"flipRegion"`
}

var styleNames = map[string]ValueStyle{
	"zero-heavy": StyleZeroHeavy,
	"small-int":  StyleSmallInt,
	"stride-int": StyleStrideInt,
	"pointer":    StylePointer,
	"dict-float": StyleDictFloat,
	"exp-float":  StyleExpFloat,
	"random":     StyleRandom,
}

var kindNames = map[string]PhaseKind{
	"stream":  PhaseStream,
	"reuse":   PhaseReuse,
	"random":  PhaseRandom,
	"compute": PhaseCompute,
	"store":   PhaseStore,
	"barrier": PhaseBarrier,
}

// ParseStyle resolves a JSON style name to its ValueStyle.
func ParseStyle(name string) (ValueStyle, bool) {
	s, ok := styleNames[name]
	return s, ok
}

// StyleName returns the JSON name of a value style ("" if unknown) —
// the inverse of ParseStyle, used by trace-corpus sidecar writers.
func StyleName(s ValueStyle) string {
	switch s {
	case StyleZeroHeavy:
		return "zero-heavy"
	case StyleSmallInt:
		return "small-int"
	case StyleStrideInt:
		return "stride-int"
	case StylePointer:
		return "pointer"
	case StyleDictFloat:
		return "dict-float"
	case StyleExpFloat:
		return "exp-float"
	case StyleRandom:
		return "random"
	default:
		return ""
	}
}

// ParseSpec decodes a JSON workload definition and validates it.
func ParseSpec(data []byte) (*Spec, error) {
	var sj specJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return nil, fmt.Errorf("workload: parse: %w", err)
	}
	if sj.Name == "" {
		return nil, fmt.Errorf("workload: missing name")
	}
	spec := &Spec{WName: sj.Name}
	switch sj.Category {
	case "C-Sens":
		spec.Cat = trace.CSens
	case "C-InSens", "":
		spec.Cat = trace.CInSens
	default:
		return nil, fmt.Errorf("workload %s: unknown category %q (want C-Sens or C-InSens)", sj.Name, sj.Category)
	}
	if len(sj.Regions) == 0 {
		return nil, fmt.Errorf("workload %s: no regions", sj.Name)
	}
	for ri, rj := range sj.Regions {
		style, ok := styleNames[rj.Style]
		if !ok {
			return nil, fmt.Errorf("workload %s: region %d: unknown style %q", sj.Name, ri, rj.Style)
		}
		if rj.Lines == 0 {
			return nil, fmt.Errorf("workload %s: region %d: zero lines", sj.Name, ri)
		}
		spec.Regions = append(spec.Regions, Region{
			Start: rj.Start, Lines: rj.Lines, Style: style, Seed: rj.Seed, Dict: rj.Dict,
		})
	}
	if len(sj.Kernels) == 0 {
		return nil, fmt.Errorf("workload %s: no kernels", sj.Name)
	}
	for ki, kj := range sj.Kernels {
		if kj.Blocks <= 0 || kj.WarpsPerBlock <= 0 {
			return nil, fmt.Errorf("workload %s: kernel %d: need positive blocks and warpsPerBlock", sj.Name, ki)
		}
		if (len(kj.Phases) == 0) == (len(kj.Mix) == 0) {
			return nil, fmt.Errorf("workload %s: kernel %d: exactly one of phases and mix must be set", sj.Name, ki)
		}
		ks := KernelSpec{Name: kj.Name, Blocks: kj.Blocks, WarpsPerBlock: kj.WarpsPerBlock}
		if ks.Name == "" {
			ks.Name = fmt.Sprintf("%s-k%d", sj.Name, ki)
		}
		var err error
		if ks.Phases, err = parsePhases(spec, sj.Name, ki, kj.Phases); err != nil {
			return nil, err
		}
		for mi, mj := range kj.Mix {
			if len(mj) == 0 {
				return nil, fmt.Errorf("workload %s: kernel %d: mix program %d is empty", sj.Name, ki, mi)
			}
			ph, err := parsePhases(spec, sj.Name, ki, mj)
			if err != nil {
				return nil, err
			}
			ks.Mix = append(ks.Mix, ph)
		}
		spec.KernelSeq = append(spec.KernelSeq, ks)
	}
	return spec, nil
}

// parsePhases validates and converts one phase list of a kernel.
func parsePhases(spec *Spec, name string, ki int, phs []phaseJSON) ([]Phase, error) {
	var out []Phase
	for pi, pj := range phs {
		kind, ok := kindNames[pj.Kind]
		if !ok {
			return nil, fmt.Errorf("workload %s: kernel %d phase %d: unknown kind %q", name, ki, pi, pj.Kind)
		}
		if kind != PhaseCompute && kind != PhaseBarrier {
			if pj.Region < 0 || pj.Region >= len(spec.Regions) {
				return nil, fmt.Errorf("workload %s: kernel %d phase %d: region %d out of range", name, ki, pi, pj.Region)
			}
		}
		if pj.Iters <= 0 {
			return nil, fmt.Errorf("workload %s: kernel %d phase %d: need positive iters", name, ki, pi)
		}
		if pj.FlipEvery < 0 {
			return nil, fmt.Errorf("workload %s: kernel %d phase %d: negative flipEvery", name, ki, pi)
		}
		if pj.FlipEvery > 0 && (pj.FlipRegion < 0 || pj.FlipRegion >= len(spec.Regions)) {
			return nil, fmt.Errorf("workload %s: kernel %d phase %d: flipRegion %d out of range", name, ki, pi, pj.FlipRegion)
		}
		out = append(out, Phase{
			Kind: kind, Region: pj.Region, Iters: pj.Iters, ALU: pj.ALU,
			ALULat: pj.ALULat, WSLines: pj.WSLines, Shared: pj.Shared,
			Divergence: pj.Divergence, FlipEvery: pj.FlipEvery, FlipRegion: pj.FlipRegion,
		})
	}
	return out, nil
}

// LoadSpecFile reads and parses a JSON workload definition from a file.
func LoadSpecFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return ParseSpec(data)
}
