// Scenario-diversity workloads (ROADMAP "scenario diversity"): multi-
// kernel sequences, concurrent-kernel mixes, adversarial phase-shifting
// generators, and distribution-parameterized profiles. Unlike the Table
// III reproductions these do not model specific paper benchmarks; they
// exist to exercise controller behaviours the single-kernel suite cannot
// reach — EP state across kernel boundaries (making Kernel-OPT
// meaningful), intra-launch compressibility mixes, and predictor lag
// under compressibility flips faster than the EP decision cadence.
package workload

import (
	"fmt"

	"lattecc/internal/trace"
)

// MKS is a multi-kernel compressibility shift: three kernels with
// distinct value-locality classes run back to back on the same L1 —
// dictionary floats (the high-capacity codec's case), strided integers
// (the low-latency codec's case), then incompressible noise. The best
// static mode changes at every kernel boundary, so a per-kernel oracle
// (Kernel-OPT) beats any single static choice and the adaptive
// controller must re-learn after each launch.
func MKS() *Spec {
	return &Spec{
		WName: "MKS", Cat: trace.CSens,
		Regions: []Region{
			{Start: 0, Lines: 1 << 15, Style: StyleDictFloat, Seed: 0x3501, Dict: 112},
			{Start: 1 << 16, Lines: 1 << 14, Style: StyleStrideInt, Seed: 0x3502},
			{Start: 1 << 17, Lines: 1 << 14, Style: StyleRandom, Seed: 0x3503},
		},
		KernelSeq: []KernelSpec{
			{
				// Dictionary-value phase with deep ALU cover: tolerant, so the
				// high-capacity mode's latency hides and its ratio wins.
				Name: "mks-dict", Blocks: 30, WarpsPerBlock: 6,
				Phases: []Phase{
					{Kind: PhaseReuse, Region: 0, Iters: 1600, ALU: 5, WSLines: 20},
				},
			},
			{
				// Strided integers with back-to-back loads: only the cheap
				// low-latency codec is affordable.
				Name: "mks-stride", Blocks: 30, WarpsPerBlock: 6,
				Phases: []Phase{
					{Kind: PhaseReuse, Region: 1, Iters: 1600, ALU: 1, WSLines: 24},
				},
			},
			{
				// Incompressible noise: every compression mode is pure cost.
				Name: "mks-noise", Blocks: 30, WarpsPerBlock: 6,
				Phases: []Phase{
					{Kind: PhaseReuse, Region: 2, Iters: 1200, ALU: 1, WSLines: 24},
				},
			},
		},
	}
}

// MKM is a concurrent-kernel mix: one launch whose blocks stripe two
// programs (KernelSpec.Mix), modelling two kernels co-resident on every
// SM. Half the blocks loop over dictionary floats with heavy arithmetic,
// half over strided integers with none, so each L1 serves both value
// classes and both tolerance regimes at once — no single-mode sample set
// sees a clean signal.
func MKM() *Spec {
	return &Spec{
		WName: "MKM", Cat: trace.CSens,
		Regions: []Region{
			{Start: 0, Lines: 1 << 15, Style: StyleDictFloat, Seed: 0x3504, Dict: 96},
			{Start: 1 << 16, Lines: 1 << 14, Style: StyleStrideInt, Seed: 0x3505},
		},
		KernelSeq: []KernelSpec{{
			Name: "mkm-pair", Blocks: 30, WarpsPerBlock: 6,
			Mix: [][]Phase{
				{{Kind: PhaseReuse, Region: 0, Iters: 2400, ALU: 6, WSLines: 18}},
				{{Kind: PhaseReuse, Region: 1, Iters: 2400, ALU: 1, WSLines: 22}},
			},
		}},
	}
}

// AVF is an adversarial phase-shifter against the low-latency codec: a
// reuse loop whose target flips between BDI-friendly strided integers
// and incompressible noise every 40 iterations — a cadence
// incommensurate with the 256-access EP, so flips land mid-EP and the
// sampled counters always mix both regimes (predictor-lag probe).
func AVF() *Spec {
	return &Spec{
		WName: "AVF", Cat: trace.CSens,
		Regions: []Region{
			{Start: 0, Lines: 1 << 14, Style: StyleStrideInt, Seed: 0xA7F0},
			{Start: 1 << 15, Lines: 1 << 14, Style: StyleRandom, Seed: 0xA7F1},
		},
		KernelSeq: []KernelSpec{{
			Name: "avf-flip", Blocks: 30, WarpsPerBlock: 4,
			Phases: []Phase{
				{Kind: PhaseReuse, Region: 0, Iters: 4800, ALU: 1, WSLines: 24,
					FlipEvery: 40, FlipRegion: 1},
			},
		}},
	}
}

// AVS is the high-capacity-codec variant of AVF: dictionary floats
// (trained into the code book each period) flipping to incompressible
// noise every 28 iterations under enough arithmetic cover that the
// high-capacity mode looks attractive whenever the compressible half is
// being sampled.
func AVS() *Spec {
	return &Spec{
		WName: "AVS", Cat: trace.CSens,
		Regions: []Region{
			{Start: 0, Lines: 1 << 15, Style: StyleDictFloat, Seed: 0xA750, Dict: 128},
			{Start: 1 << 16, Lines: 1 << 14, Style: StyleRandom, Seed: 0xA751},
		},
		KernelSeq: []KernelSpec{{
			Name: "avs-flip", Blocks: 30, WarpsPerBlock: 6,
			Phases: []Phase{
				{Kind: PhaseReuse, Region: 0, Iters: 3600, ALU: 5, WSLines: 20,
					FlipEvery: 28, FlipRegion: 1},
			},
		}},
	}
}

// StyleShare is one component of a Profile's value-style mix.
type StyleShare struct {
	Style ValueStyle
	Pct   int    // share of the footprint, percent
	Dict  uint32 // dictionary size for StyleDictFloat (0 = default)
}

// Profile is a distribution-parameterized workload description: instead
// of hand-authored phases it carries the summary statistics a trace fit
// would produce — footprint, value-style mix, access-kind shares,
// arithmetic intensity, occupancy — and FromProfile expands them into a
// Spec. This is the ServeGen-style path for opening new scenarios from
// measured distributions rather than hand tuning.
type Profile struct {
	Name     string
	Category trace.Category
	// Styles partitions the footprint by value style; Pct must sum to 100.
	Styles []StyleShare
	// FootprintLines is the total data footprint in cache lines.
	FootprintLines uint64
	// HotLines is the per-warp working-set size of the reuse fraction.
	HotLines int
	// ReusePct/RandomPct split MemOps into reuse, random, and (remainder)
	// streaming accesses.
	ReusePct  int
	RandomPct int
	// MemOps is the number of memory operations per warp.
	MemOps int
	// ALUPerMem is the arithmetic instructions per memory operation — the
	// latency-tolerance driver.
	ALUPerMem int
	// Divergence is the distinct lines per random access (0 = coalesced).
	Divergence int
	Blocks     int
	WarpsPer   int
	Seed       uint64
}

// FromProfile expands a Profile into a Spec. The footprint is split into
// one region per style share; each region gets the profile's reuse,
// stream, and random access shares so every style sees the full access
// mix (the per-region iteration counts divide MemOps evenly).
func FromProfile(p Profile) (*Spec, error) {
	if p.Name == "" {
		return nil, fmt.Errorf("workload: profile needs a name")
	}
	if len(p.Styles) == 0 {
		return nil, fmt.Errorf("workload %s: profile needs at least one style share", p.Name)
	}
	pctSum := 0
	for _, s := range p.Styles {
		if s.Pct <= 0 {
			return nil, fmt.Errorf("workload %s: style share must be positive", p.Name)
		}
		pctSum += s.Pct
	}
	if pctSum != 100 {
		return nil, fmt.Errorf("workload %s: style shares sum to %d, want 100", p.Name, pctSum)
	}
	if p.FootprintLines == 0 || p.MemOps <= 0 || p.Blocks <= 0 || p.WarpsPer <= 0 {
		return nil, fmt.Errorf("workload %s: need positive footprint, memOps, blocks, warpsPer", p.Name)
	}
	if p.ReusePct < 0 || p.RandomPct < 0 || p.ReusePct+p.RandomPct > 100 {
		return nil, fmt.Errorf("workload %s: reuse%%+random%% must stay within [0,100]", p.Name)
	}
	spec := &Spec{WName: p.Name, Cat: p.Category}
	start := uint64(0)
	for i, s := range p.Styles {
		lines := p.FootprintLines * uint64(s.Pct) / 100
		if lines == 0 {
			lines = 1
		}
		spec.Regions = append(spec.Regions, Region{
			Start: start, Lines: lines, Style: s.Style,
			Seed: p.Seed + uint64(i)*0x9E37, Dict: s.Dict,
		})
		// Leave a gap between regions so per-region address arithmetic can
		// never bleed across style boundaries.
		start += lines + 64
	}
	nr := len(spec.Regions)
	reuse := p.MemOps * p.ReusePct / 100 / nr
	random := p.MemOps * p.RandomPct / 100 / nr
	stream := p.MemOps/nr - reuse - random
	hot := p.HotLines
	if hot <= 0 {
		hot = 1
	}
	var phases []Phase
	for ri := range spec.Regions {
		if reuse > 0 {
			phases = append(phases, Phase{
				Kind: PhaseReuse, Region: ri, Iters: reuse,
				ALU: p.ALUPerMem, WSLines: hot,
			})
		}
		if stream > 0 {
			phases = append(phases, Phase{
				Kind: PhaseStream, Region: ri, Iters: stream, ALU: p.ALUPerMem,
			})
		}
		if random > 0 {
			phases = append(phases, Phase{
				Kind: PhaseRandom, Region: ri, Iters: random,
				ALU: p.ALUPerMem, Divergence: p.Divergence,
			})
		}
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload %s: profile expands to an empty program", p.Name)
	}
	spec.KernelSeq = []KernelSpec{{
		Name: p.Name + "-main", Blocks: p.Blocks, WarpsPerBlock: p.WarpsPer, Phases: phases,
	}}
	return spec, nil
}

// mustProfile expands a registry-owned profile, panicking on error —
// registry profiles are authored in this file, so failures are
// programming mistakes caught by the registry tests.
func mustProfile(p Profile) *Spec {
	s, err := FromProfile(p)
	if err != nil {
		//lint:allow panic-audit registry profiles are compile-time constants; the registry test exercises every builder
		panic(err)
	}
	return s
}

// DPS is a distribution-parameterized cache-sensitive workload: the
// similarity-score class (dictionary-heavy values, reuse-dominated,
// moderate arithmetic) expressed as fitted statistics instead of
// hand-authored phases.
func DPS() *Spec {
	return mustProfile(Profile{
		Name: "DPS", Category: trace.CSens,
		Styles: []StyleShare{
			{Style: StyleDictFloat, Pct: 70, Dict: 112},
			{Style: StyleStrideInt, Pct: 30},
		},
		FootprintLines: 1 << 15,
		HotLines:       18,
		ReusePct:       82,
		RandomPct:      4,
		MemOps:         2000,
		ALUPerMem:      3,
		Blocks:         45, WarpsPer: 6,
		Seed: 0xD150,
	})
}

// DPI is the insensitive counterpart: a frontier-expansion class
// (small-integer and strided data, random-dominated, tiny hot set) whose
// misses no capacity can fix but whose high occupancy hides any latency.
func DPI() *Spec {
	return mustProfile(Profile{
		Name: "DPI", Category: trace.CInSens,
		Styles: []StyleShare{
			{Style: StyleSmallInt, Pct: 50},
			{Style: StyleStrideInt, Pct: 50},
		},
		FootprintLines: 1 << 15,
		HotLines:       2,
		ReusePct:       10,
		RandomPct:      60,
		MemOps:         480,
		ALUPerMem:      1,
		Divergence:     2,
		Blocks:         60, WarpsPer: 8,
		Seed: 0xD151,
	})
}
