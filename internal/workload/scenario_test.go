package workload

import (
	"strings"
	"testing"

	"lattecc/internal/trace"
)

// scenarioTestRegions puts each region in a disjoint address range so a
// memory instruction's region is recoverable from its address.
func scenarioTestRegions() []Region {
	return []Region{
		{Start: 0, Lines: 64, Style: StyleStrideInt, Seed: 1},
		{Start: 1 << 12, Lines: 64, Style: StyleRandom, Seed: 2},
		{Start: 1 << 13, Lines: 64, Style: StyleDictFloat, Seed: 3, Dict: 64},
	}
}

// regionOf classifies a byte address against scenarioTestRegions.
func regionOf(t *testing.T, addr uint64) int {
	t.Helper()
	for i, r := range scenarioTestRegions() {
		if addr >= r.Start*LineSize && addr < (r.Start+r.Lines)*LineSize {
			return i
		}
	}
	t.Fatalf("address %#x outside every region", addr)
	return -1
}

// drainMemRegions runs a program to completion and returns the region of
// every memory instruction in order.
func drainMemRegions(t *testing.T, p trace.Program) []int {
	t.Helper()
	var out []int
	for i := 0; i < 1_000_000; i++ {
		inst, ok := p.Next()
		if !ok {
			return out
		}
		if inst.Op == trace.OpLoad || inst.Op == trace.OpStore {
			out = append(out, regionOf(t, inst.Addrs[0]))
		}
	}
	t.Fatal("program did not terminate")
	return nil
}

// TestFlipCadenceAlternation pins the FlipEvery semantics: iteration
// windows [0,F) target Region, [F,2F) target FlipRegion, and so on, for
// the program's whole life.
func TestFlipCadenceAlternation(t *testing.T) {
	const flipEvery = 4
	p := &program{
		regions: scenarioTestRegions(),
		phases: []Phase{{
			Kind: PhaseStream, Region: 0, Iters: 32,
			FlipEvery: flipEvery, FlipRegion: 1,
		}},
	}
	regions := drainMemRegions(t, p)
	if len(regions) != 32 {
		t.Fatalf("expected 32 memory ops, got %d", len(regions))
	}
	for i, got := range regions {
		want := 0
		if (i/flipEvery)%2 == 1 {
			want = 1
		}
		if got != want {
			t.Errorf("iteration %d: targeted region %d, want %d", i, got, want)
		}
	}
}

// TestMixBlockStriping pins the concurrent-kernel semantics: block b of a
// Mix kernel runs Mix[b % len(Mix)].
func TestMixBlockStriping(t *testing.T) {
	spec := &Spec{
		WName: "mix-test", Cat: trace.CSens, Regions: scenarioTestRegions(),
		KernelSeq: []KernelSpec{{
			Name: "pair", Blocks: 5, WarpsPerBlock: 2,
			Mix: [][]Phase{
				{{Kind: PhaseStream, Region: 0, Iters: 8}},
				{{Kind: PhaseStream, Region: 2, Iters: 8}},
			},
		}},
	}
	ks := spec.Kernels()
	if len(ks) != 1 {
		t.Fatalf("expected 1 kernel, got %d", len(ks))
	}
	for block := 0; block < 5; block++ {
		want := 0
		if block%2 == 1 {
			want = 2
		}
		for warp := 0; warp < 2; warp++ {
			regions := drainMemRegions(t, ks[0].Program(block, warp))
			if len(regions) == 0 {
				t.Fatalf("block %d warp %d emitted no memory ops", block, warp)
			}
			for i, got := range regions {
				if got != want {
					t.Fatalf("block %d warp %d op %d: region %d, want %d (Mix striping broken)",
						block, warp, i, got, want)
				}
			}
		}
	}
}

// TestKernelSpecExactlyOneProgramSource: a kernel with both Phases and
// Mix (or neither) is a programming mistake and must panic loudly.
func TestKernelSpecExactlyOneProgramSource(t *testing.T) {
	mustPanic := func(name string, ks KernelSpec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Kernels() did not panic", name)
			}
		}()
		(&Spec{WName: "bad", Regions: scenarioTestRegions(), KernelSeq: []KernelSpec{ks}}).Kernels()
	}
	mustPanic("neither", KernelSpec{Name: "k", Blocks: 1, WarpsPerBlock: 1})
	mustPanic("both", KernelSpec{
		Name: "k", Blocks: 1, WarpsPerBlock: 1,
		Phases: []Phase{{Kind: PhaseStream, Region: 0, Iters: 1}},
		Mix:    [][]Phase{{{Kind: PhaseStream, Region: 0, Iters: 1}}},
	})
}

// TestFromProfileValidation sweeps the rejection surface of the
// distribution-parameterized path.
func TestFromProfileValidation(t *testing.T) {
	valid := func() Profile {
		return Profile{
			Name: "p", Category: trace.CSens,
			Styles:         []StyleShare{{Style: StyleStrideInt, Pct: 100}},
			FootprintLines: 1024, HotLines: 4,
			ReusePct: 50, RandomPct: 10,
			MemOps: 100, ALUPerMem: 1, Blocks: 2, WarpsPer: 2,
		}
	}
	cases := []struct {
		name    string
		mutate  func(*Profile)
		wantErr string
	}{
		{"empty-name", func(p *Profile) { p.Name = "" }, "needs a name"},
		{"no-styles", func(p *Profile) { p.Styles = nil }, "style share"},
		{"zero-pct", func(p *Profile) { p.Styles[0].Pct = 0 }, "positive"},
		{"pct-sum", func(p *Profile) { p.Styles[0].Pct = 99 }, "sum to 99"},
		{"zero-footprint", func(p *Profile) { p.FootprintLines = 0 }, "positive footprint"},
		{"zero-memops", func(p *Profile) { p.MemOps = 0 }, "positive footprint"},
		{"zero-blocks", func(p *Profile) { p.Blocks = 0 }, "positive footprint"},
		{"neg-reuse", func(p *Profile) { p.ReusePct = -1 }, "within [0,100]"},
		{"over-100", func(p *Profile) { p.ReusePct = 60; p.RandomPct = 50 }, "within [0,100]"},
	}
	for _, tc := range cases {
		p := valid()
		tc.mutate(&p)
		if _, err := FromProfile(p); err == nil {
			t.Errorf("%s: FromProfile accepted an invalid profile", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
	if _, err := FromProfile(valid()); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
}

// TestFromProfileExpansion checks the structural promises of a profile
// expansion: one region per style share, disjoint region ranges, every
// region receiving the full access-kind mix, and runnable programs.
func TestFromProfileExpansion(t *testing.T) {
	spec, err := FromProfile(Profile{
		Name: "exp", Category: trace.CSens,
		Styles: []StyleShare{
			{Style: StyleDictFloat, Pct: 60, Dict: 80},
			{Style: StyleRandom, Pct: 40},
		},
		FootprintLines: 2000, HotLines: 6,
		ReusePct: 50, RandomPct: 20,
		MemOps: 300, ALUPerMem: 2, Divergence: 2,
		Blocks: 3, WarpsPer: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Regions) != 2 {
		t.Fatalf("expected 2 regions, got %d", len(spec.Regions))
	}
	if spec.Regions[0].Lines != 1200 || spec.Regions[1].Lines != 800 {
		t.Errorf("region sizes %d/%d, want 1200/800 (60/40 split of 2000)",
			spec.Regions[0].Lines, spec.Regions[1].Lines)
	}
	if end0 := spec.Regions[0].Start + spec.Regions[0].Lines; spec.Regions[1].Start <= end0 {
		t.Errorf("regions overlap or touch: region 0 ends at line %d, region 1 starts at %d",
			end0, spec.Regions[1].Start)
	}
	kinds := map[PhaseKind]int{}
	for _, ph := range spec.KernelSeq[0].Phases {
		kinds[ph.Kind]++
	}
	for _, k := range []PhaseKind{PhaseReuse, PhaseStream, PhaseRandom} {
		if kinds[k] != 2 {
			t.Errorf("phase kind %d appears %d times, want once per region", k, kinds[k])
		}
	}
	// The expansion must produce runnable programs over valid addresses.
	for _, k := range spec.Kernels() {
		k.Validate()
		p := k.Program(0, 0)
		n := 0
		for {
			inst, ok := p.Next()
			if !ok {
				break
			}
			n++
			if inst.Op == trace.OpLoad || inst.Op == trace.OpStore {
				addr := inst.Addrs[0] / LineSize
				in := false
				for _, r := range spec.Regions {
					if addr >= r.Start && addr < r.Start+r.Lines {
						in = true
						break
					}
				}
				if !in {
					t.Fatalf("memory op to line %#x outside every region", addr)
				}
			}
			if n > 10_000 {
				t.Fatal("program too long for the profile's MemOps")
			}
		}
		if n == 0 {
			t.Fatal("profile expanded to an empty program")
		}
	}
}

// fakeExternal is a minimal trace.Workload for registry tests.
type fakeExternal struct {
	name string
	cat  trace.Category
}

func (f fakeExternal) Name() string             { return f.name }
func (f fakeExternal) Category() trace.Category { return f.cat }
func (f fakeExternal) Data() trace.DataSource   { return NewData(nil) }
func (f fakeExternal) Kernels() []trace.Kernel  { return nil }

// swapExternal snapshots the external registry and restores it on
// cleanup, so registry tests cannot leak workloads into other tests in
// this package (the registry contract is startup-only registration; tests
// in-package may reach underneath it serially).
func swapExternal(t *testing.T) {
	t.Helper()
	saved := external
	external = map[string]trace.Workload{}
	t.Cleanup(func() { external = saved })
}

func TestRegisterExternalValidation(t *testing.T) {
	swapExternal(t)
	if err := RegisterExternal(nil); err == nil {
		t.Error("nil workload accepted")
	}
	if err := RegisterExternal(fakeExternal{name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if err := RegisterExternal(fakeExternal{name: "SS"}); err == nil || !strings.Contains(err.Error(), "built-in") {
		t.Errorf("built-in collision not rejected: %v", err)
	}
	if err := RegisterExternal(fakeExternal{name: "ZX1", cat: trace.CSens}); err != nil {
		t.Fatalf("first registration failed: %v", err)
	}
	if err := RegisterExternal(fakeExternal{name: "ZX1"}); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate not rejected: %v", err)
	}
}

func TestRegisterExternalOrdering(t *testing.T) {
	swapExternal(t)
	base := Names()
	for _, f := range []fakeExternal{
		{name: "ZSE", cat: trace.CSens},
		{name: "ZIN", cat: trace.CInSens},
	} {
		if err := RegisterExternal(f); err != nil {
			t.Fatal(err)
		}
	}
	got := Names()
	if len(got) != len(base)+2 {
		t.Fatalf("Names() has %d entries, want %d", len(got), len(base)+2)
	}
	// Grouping invariant: all C-InSens names precede all C-Sens names, and
	// each group stays sorted with externals interleaved alphabetically.
	split := -1
	for i, n := range got {
		w, err := ByName(n)
		if err != nil {
			t.Fatalf("Names() entry %q not resolvable: %v", n, err)
		}
		if w.Category() == trace.CSens && split == -1 {
			split = i
		}
		if w.Category() == trace.CInSens && split != -1 {
			t.Fatalf("C-InSens workload %q after the C-Sens group started", n)
		}
	}
	for _, grp := range [][]string{got[:split], got[split:]} {
		for i := 1; i < len(grp); i++ {
			if grp[i-1] >= grp[i] {
				t.Fatalf("group not sorted: %q before %q", grp[i-1], grp[i])
			}
		}
	}
	if w, err := ByName("ZSE"); err != nil || w.Name() != "ZSE" {
		t.Fatalf("ByName(ZSE) = %v, %v", w, err)
	}
}
