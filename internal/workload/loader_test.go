package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lattecc/internal/trace"
)

const validSpec = `{
  "name": "MYAPP",
  "category": "C-Sens",
  "regions": [
    {"start": 0, "lines": 16384, "style": "dict-float", "seed": 7, "dict": 96},
    {"start": 65536, "lines": 4096, "style": "stride-int", "seed": 9}
  ],
  "kernels": [
    {
      "name": "main", "blocks": 60, "warpsPerBlock": 8,
      "phases": [
        {"kind": "reuse", "region": 0, "iters": 800, "alu": 3, "wsLines": 16},
        {"kind": "barrier", "iters": 1},
        {"kind": "store", "region": 1, "iters": 100, "alu": 1}
      ]
    }
  ]
}`

func TestParseSpecValid(t *testing.T) {
	spec, err := ParseSpec([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name() != "MYAPP" || spec.Category() != trace.CSens {
		t.Fatalf("header: %s %v", spec.Name(), spec.Category())
	}
	if len(spec.Regions) != 2 || spec.Regions[0].Style != StyleDictFloat || spec.Regions[0].Dict != 96 {
		t.Fatalf("regions: %+v", spec.Regions)
	}
	ks := spec.KernelSeq
	if len(ks) != 1 || ks[0].Name != "main" || len(ks[0].Phases) != 3 {
		t.Fatalf("kernels: %+v", ks)
	}
	if ks[0].Phases[1].Kind != PhaseBarrier {
		t.Fatal("barrier phase lost")
	}
	// The loaded spec must produce runnable programs.
	for _, k := range spec.Kernels() {
		k.Validate()
		p := k.Program(0, 0)
		steps := 0
		for {
			if _, ok := p.Next(); !ok {
				break
			}
			steps++
		}
		// 800*(1+3) + 1 + 100*(1+1) = 3401
		if steps != 3401 {
			t.Fatalf("program steps = %d, want 3401", steps)
		}
	}
}

func TestParseSpecDefaults(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
	  "name": "X",
	  "regions": [{"lines": 16, "style": "random"}],
	  "kernels": [{"blocks": 1, "warpsPerBlock": 1,
	    "phases": [{"kind": "stream", "iters": 4}]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Category() != trace.CInSens {
		t.Fatal("missing category must default to C-InSens")
	}
	if spec.KernelSeq[0].Name != "X-k0" {
		t.Fatalf("default kernel name = %q", spec.KernelSeq[0].Name)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":         `{`,
		"missing name":     `{"regions":[{"lines":1,"style":"random"}],"kernels":[{"blocks":1,"warpsPerBlock":1,"phases":[{"kind":"stream","iters":1}]}]}`,
		"unknown category": `{"name":"X","category":"weird","regions":[{"lines":1,"style":"random"}],"kernels":[{"blocks":1,"warpsPerBlock":1,"phases":[{"kind":"stream","iters":1}]}]}`,
		"no regions":       `{"name":"X","kernels":[{"blocks":1,"warpsPerBlock":1,"phases":[{"kind":"stream","iters":1}]}]}`,
		"unknown style":    `{"name":"X","regions":[{"lines":1,"style":"nope"}],"kernels":[{"blocks":1,"warpsPerBlock":1,"phases":[{"kind":"stream","iters":1}]}]}`,
		"zero lines":       `{"name":"X","regions":[{"lines":0,"style":"random"}],"kernels":[{"blocks":1,"warpsPerBlock":1,"phases":[{"kind":"stream","iters":1}]}]}`,
		"no kernels":       `{"name":"X","regions":[{"lines":1,"style":"random"}]}`,
		"bad blocks":       `{"name":"X","regions":[{"lines":1,"style":"random"}],"kernels":[{"blocks":0,"warpsPerBlock":1,"phases":[{"kind":"stream","iters":1}]}]}`,
		"no phases":        `{"name":"X","regions":[{"lines":1,"style":"random"}],"kernels":[{"blocks":1,"warpsPerBlock":1}]}`,
		"unknown kind":     `{"name":"X","regions":[{"lines":1,"style":"random"}],"kernels":[{"blocks":1,"warpsPerBlock":1,"phases":[{"kind":"zap","iters":1}]}]}`,
		"region range":     `{"name":"X","regions":[{"lines":1,"style":"random"}],"kernels":[{"blocks":1,"warpsPerBlock":1,"phases":[{"kind":"stream","region":5,"iters":1}]}]}`,
		"zero iters":       `{"name":"X","regions":[{"lines":1,"style":"random"}],"kernels":[{"blocks":1,"warpsPerBlock":1,"phases":[{"kind":"stream","iters":0}]}]}`,
	}
	for label, in := range cases {
		if _, err := ParseSpec([]byte(in)); err == nil {
			t.Errorf("%s: want error", label)
		}
	}
}

func TestLoadSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.json")
	if err := os.WriteFile(path, []byte(validSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := LoadSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name() != "MYAPP" {
		t.Fatal("wrong spec loaded")
	}
	if _, err := LoadSpecFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestAllStylesAndKindsHaveNames(t *testing.T) {
	// Every defined constant must be reachable from JSON.
	styles := []ValueStyle{StyleZeroHeavy, StyleSmallInt, StyleStrideInt,
		StylePointer, StyleDictFloat, StyleExpFloat, StyleRandom}
	if len(styleNames) != len(styles) {
		t.Fatalf("styleNames has %d entries, want %d", len(styleNames), len(styles))
	}
	kinds := []PhaseKind{PhaseStream, PhaseReuse, PhaseRandom, PhaseCompute, PhaseStore, PhaseBarrier}
	if len(kindNames) != len(kinds) {
		t.Fatalf("kindNames has %d entries, want %d", len(kindNames), len(kinds))
	}
	for name := range styleNames {
		if strings.TrimSpace(name) == "" {
			t.Fatal("empty style name")
		}
	}
}
