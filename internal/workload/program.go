package workload

import (
	"fmt"

	"lattecc/internal/trace"
)

// PhaseKind is the access pattern of one program phase.
type PhaseKind uint8

const (
	// PhaseStream walks the region sequentially with no reuse.
	PhaseStream PhaseKind = iota
	// PhaseReuse loops over a per-warp working-set slice of the region —
	// the cache-sensitivity driver.
	PhaseReuse
	// PhaseRandom touches hashed locations of the region (graph
	// traversals, hash tables).
	PhaseRandom
	// PhaseCompute issues only ALU work (no memory).
	PhaseCompute
	// PhaseStore streams stores through the region.
	PhaseStore
	// PhaseBarrier emits one block-level barrier per iteration
	// (__syncthreads between wavefronts, stencil sweeps, ...).
	PhaseBarrier
)

// Phase describes one phase of a warp program. Every phase iteration
// emits one memory instruction (except PhaseCompute) followed by ALU
// instructions; the ALU:memory ratio is the workload's arithmetic
// intensity and, with the warp count, determines latency tolerance.
type Phase struct {
	Kind   PhaseKind
	Region int // index into the workload's regions
	Iters  int // memory ops (or ALU bursts for PhaseCompute)
	ALU    int // ALU ops per iteration
	ALULat uint32

	// WSLines is the per-warp working-set size for PhaseReuse.
	WSLines int
	// Shared makes PhaseReuse warps of the same block share one working
	// set instead of using disjoint slices.
	Shared bool
	// Divergence is the number of distinct lines per load (1 =
	// coalesced, up to 32 = fully divergent).
	Divergence int

	// FlipEvery, when > 0, alternates the phase's target between Region
	// and FlipRegion every FlipEvery iterations: iterations [0,FlipEvery)
	// hit Region, [FlipEvery,2*FlipEvery) hit FlipRegion, and so on. With
	// regions of different value styles this flips the access stream's
	// compressibility mid-phase — the adversarial probe for predictor lag
	// (a cadence shorter than an EP flips faster than the controller can
	// re-decide). 0 disables flipping.
	FlipEvery int
	// FlipRegion is the alternate region index used by FlipEvery.
	FlipRegion int
}

// program walks a warp through its phases lazily.
type program struct {
	regions    []Region
	phases     []Phase
	warpGlob   uint64 // global warp index
	block      int
	phase      int
	iter       int
	aluLeft    int
	emittedMem bool

	// addrScratch backs every memory Inst's Addrs slice, reused across
	// Next calls per the trace.Program contract (the simulator copies
	// addresses at issue).
	addrScratch [32]uint64
}

// Next implements trace.Program.
func (p *program) Next() (trace.Inst, bool) {
	for p.phase < len(p.phases) {
		ph := &p.phases[p.phase]
		if p.iter >= ph.Iters {
			p.phase++
			p.iter = 0
			p.aluLeft = 0
			p.emittedMem = false
			continue
		}
		// ALU tail of the current iteration.
		if p.aluLeft > 0 {
			p.aluLeft--
			if p.aluLeft == 0 {
				p.iter++
				p.emittedMem = false
			}
			return trace.Inst{Op: trace.OpALU, Lat: ph.ALULat}, true
		}
		if ph.Kind == PhaseCompute {
			p.aluLeft = ph.ALU
			if p.aluLeft == 0 {
				p.iter++
				continue
			}
			continue
		}
		if ph.Kind == PhaseBarrier {
			p.iter++
			return trace.Inst{Op: trace.OpBarrier}, true
		}
		if !p.emittedMem {
			p.emittedMem = true
			p.aluLeft = ph.ALU
			inst := p.memInst(ph)
			if p.aluLeft == 0 {
				p.iter++
				p.emittedMem = false
			}
			return inst, true
		}
		// Memory op emitted and no ALU tail: advance.
		p.iter++
		p.emittedMem = false
	}
	return trace.Inst{}, false
}

// memInst builds the memory instruction for the current iteration.
func (p *program) memInst(ph *Phase) trace.Inst {
	reg := ph.Region
	if ph.FlipEvery > 0 && (p.iter/ph.FlipEvery)%2 == 1 {
		reg = ph.FlipRegion
	}
	r := p.regions[reg]
	var lineOff uint64
	i := uint64(p.iter)
	switch ph.Kind {
	case PhaseStream, PhaseStore:
		lineOff = (p.warpGlob*uint64(ph.Iters) + i) % r.Lines
	case PhaseReuse:
		ws := uint64(ph.WSLines)
		if ws == 0 {
			ws = 1
		}
		slice := p.warpGlob
		if ph.Shared {
			slice = uint64(p.block)
		}
		// Hashed index within the working set rather than a cyclic walk: a
		// cyclic walk over ws > capacity is the LRU worst case (0% hits),
		// whereas real kernels see graceful capacity/ws hit-rate scaling.
		lineOff = (slice*ws + splitmix64(i*0x9E3779B9+slice)%ws) % r.Lines
	case PhaseRandom:
		lineOff = splitmix64(r.Seed^(p.warpGlob<<32|i)) % r.Lines
	}
	div := ph.Divergence
	if div < 1 {
		div = 1
	}
	addrs := p.addrScratch[:0]
	if div > len(p.addrScratch) {
		addrs = make([]uint64, 0, div)
	}
	for j := 0; j < div; j++ {
		off := lineOff
		if j > 0 {
			off = (lineOff + splitmix64(i*uint64(div)+uint64(j))%r.Lines) % r.Lines
		}
		addrs = append(addrs, (r.Start+off)*LineSize)
	}
	op := trace.OpLoad
	if ph.Kind == PhaseStore {
		op = trace.OpStore
	}
	return trace.Inst{Op: op, Addrs: addrs}
}

// Spec is a declarative synthetic workload: a data image plus one kernel
// shape (or several, via MultiSpec) executed by phase-driven programs.
type Spec struct {
	WName     string
	Cat       trace.Category
	Regions   []Region
	KernelSeq []KernelSpec
}

// KernelSpec shapes one kernel launch. Exactly one of Phases and Mix
// must be set: Phases gives every block the same program, Mix models
// concurrent kernels co-resident on the SMs by striping block programs —
// block b runs Mix[b % len(Mix)], so programs with different
// compressibility classes time-share each SM's L1 within one launch.
type KernelSpec struct {
	Name          string
	Blocks        int
	WarpsPerBlock int
	Phases        []Phase
	Mix           [][]Phase
}

// phasesFor returns the phase list block runs under this kernel spec.
func (ks *KernelSpec) phasesFor(block int) []Phase {
	if len(ks.Mix) > 0 {
		return ks.Mix[block%len(ks.Mix)]
	}
	return ks.Phases
}

var _ trace.Workload = (*Spec)(nil)

// Name implements trace.Workload.
func (s *Spec) Name() string { return s.WName }

// Category implements trace.Workload.
func (s *Spec) Category() trace.Category { return s.Cat }

// Data implements trace.Workload.
func (s *Spec) Data() trace.DataSource { return NewData(s.Regions) }

// Kernels implements trace.Workload.
func (s *Spec) Kernels() []trace.Kernel {
	if len(s.KernelSeq) == 0 {
		//lint:allow panic-audit geometry validation: an empty kernel sequence is a misconfigured workload spec
		panic(fmt.Sprintf("workload %s: no kernels", s.WName))
	}
	kernels := make([]trace.Kernel, 0, len(s.KernelSeq))
	for _, ks := range s.KernelSeq {
		ks := ks
		if (len(ks.Phases) == 0) == (len(ks.Mix) == 0) {
			//lint:allow panic-audit geometry validation: a kernel spec must set exactly one of Phases and Mix
			panic(fmt.Sprintf("workload %s: kernel %s: exactly one of Phases and Mix must be set", s.WName, ks.Name))
		}
		kernels = append(kernels, trace.Kernel{
			Name:          ks.Name,
			Blocks:        ks.Blocks,
			WarpsPerBlock: ks.WarpsPerBlock,
			Program: func(block, warp int) trace.Program {
				return &program{
					regions:  s.Regions,
					phases:   ks.phasesFor(block),
					block:    block,
					warpGlob: uint64(block*ks.WarpsPerBlock + warp),
				}
			},
		})
	}
	return kernels
}
