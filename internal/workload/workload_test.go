package workload

import (
	"bytes"
	"testing"
	"testing/quick"

	"lattecc/internal/compress"
	"lattecc/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 28 {
		t.Fatalf("suite has %d workloads, want 28: %v", len(names), names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %s", n)
		}
		seen[n] = true
		w, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name() != n {
			t.Fatalf("workload %s reports name %s", n, w.Name())
		}
		for _, k := range w.Kernels() {
			k.Validate()
		}
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Fatal("unknown name must error")
	}
}

func TestCategorySplit(t *testing.T) {
	sens, insens := CSens(), CInSens()
	if len(sens) != 15 || len(insens) != 13 {
		t.Fatalf("split %d C-Sens / %d C-InSens, want 15/13", len(sens), len(insens))
	}
	for _, w := range sens {
		if w.Category() != trace.CSens {
			t.Fatalf("%s misclassified", w.Name())
		}
	}
}

func TestDataDeterministicAndSized(t *testing.T) {
	for _, w := range All() {
		d := w.Data()
		for _, line := range []uint64{0, 1, 77, 1 << 14, 1 << 20} {
			a := d.Line(line)
			b := d.Line(line)
			if len(a) != LineSize {
				t.Fatalf("%s: line length %d", w.Name(), len(a))
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("%s: non-deterministic data at line %d", w.Name(), line)
			}
		}
	}
}

func TestProgramsTerminateAndStayInRegions(t *testing.T) {
	for _, w := range All() {
		spec := mustSpec(t, w)
		for _, k := range w.Kernels() {
			// Sample a few warps; every program must terminate and only
			// touch declared regions.
			for _, wi := range []int{0, k.WarpsPerBlock - 1} {
				p := k.Program(k.Blocks-1, wi)
				steps := 0
				for {
					inst, ok := p.Next()
					if !ok {
						break
					}
					steps++
					if steps > 5_000_000 {
						t.Fatalf("%s/%s: program does not terminate", w.Name(), k.Name)
					}
					for _, addr := range inst.Addrs {
						line := addr / LineSize
						if !inRegions(spec.Regions, line) {
							t.Fatalf("%s/%s: address %#x outside regions", w.Name(), k.Name, addr)
						}
					}
				}
				if steps == 0 {
					t.Fatalf("%s/%s: empty program", w.Name(), k.Name)
				}
			}
		}
	}
}

func mustSpec(t *testing.T, w trace.Workload) *Spec {
	t.Helper()
	s, ok := w.(*Spec)
	if !ok {
		t.Fatalf("%s is not a *Spec", w.Name())
	}
	return s
}

func inRegions(rs []Region, line uint64) bool {
	for _, r := range rs {
		if r.contains(line) {
			return true
		}
	}
	return false
}

func TestProgramInstructionCount(t *testing.T) {
	// One phase: iters*(1+ALU) instructions.
	s := &Spec{
		WName: "x", Cat: trace.CInSens,
		Regions: []Region{{Start: 0, Lines: 64, Style: StyleSmallInt}},
		KernelSeq: []KernelSpec{{
			Name: "k", Blocks: 1, WarpsPerBlock: 1,
			Phases: []Phase{{Kind: PhaseReuse, Region: 0, Iters: 10, ALU: 3, WSLines: 4}},
		}},
	}
	p := s.Kernels()[0].Program(0, 0)
	loads, alus := 0, 0
	for {
		inst, ok := p.Next()
		if !ok {
			break
		}
		switch inst.Op {
		case trace.OpLoad:
			loads++
		case trace.OpALU:
			alus++
		}
	}
	if loads != 10 || alus != 30 {
		t.Fatalf("loads=%d alus=%d, want 10/30", loads, alus)
	}
}

func TestComputePhaseEmitsOnlyALU(t *testing.T) {
	s := &Spec{
		WName: "x", Cat: trace.CInSens,
		Regions: []Region{{Start: 0, Lines: 4, Style: StyleSmallInt}},
		KernelSeq: []KernelSpec{{
			Name: "k", Blocks: 1, WarpsPerBlock: 1,
			Phases: []Phase{{Kind: PhaseCompute, Region: 0, Iters: 5, ALU: 4}},
		}},
	}
	p := s.Kernels()[0].Program(0, 0)
	n := 0
	for {
		inst, ok := p.Next()
		if !ok {
			break
		}
		if inst.Op != trace.OpALU {
			t.Fatalf("compute phase emitted %v", inst.Op)
		}
		n++
	}
	if n != 20 {
		t.Fatalf("alus = %d, want 20", n)
	}
}

func TestDivergenceProducesDistinctLines(t *testing.T) {
	s := &Spec{
		WName: "x", Cat: trace.CInSens,
		Regions: []Region{{Start: 0, Lines: 4096, Style: StyleSmallInt, Seed: 9}},
		KernelSeq: []KernelSpec{{
			Name: "k", Blocks: 1, WarpsPerBlock: 1,
			Phases: []Phase{{Kind: PhaseRandom, Region: 0, Iters: 20, Divergence: 8}},
		}},
	}
	p := s.Kernels()[0].Program(0, 0)
	for {
		inst, ok := p.Next()
		if !ok {
			break
		}
		if len(inst.Addrs) != 8 {
			t.Fatalf("divergence 8 produced %d addrs", len(inst.Addrs))
		}
	}
}

func TestSharedReuseGivesBlockmatesSameLines(t *testing.T) {
	s := &Spec{
		WName: "x", Cat: trace.CInSens,
		Regions: []Region{{Start: 0, Lines: 4096, Style: StyleSmallInt}},
		KernelSeq: []KernelSpec{{
			Name: "k", Blocks: 2, WarpsPerBlock: 2,
			Phases: []Phase{{Kind: PhaseReuse, Region: 0, Iters: 6, WSLines: 4, Shared: true}},
		}},
	}
	k := s.Kernels()[0]
	addrsOf := func(block, warp int) []uint64 {
		var out []uint64
		p := k.Program(block, warp)
		for {
			inst, ok := p.Next()
			if !ok {
				return out
			}
			out = append(out, inst.Addrs...)
		}
	}
	w0 := addrsOf(0, 0)
	w1 := addrsOf(0, 1)
	other := addrsOf(1, 0)
	for i := range w0 {
		if w0[i] != w1[i] {
			t.Fatal("shared reuse: warps of the same block must touch the same lines")
		}
	}
	same := true
	for i := range w0 {
		if w0[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different blocks must have different shared sets")
	}
}

// Compression-affinity tests: the value styles must land each codec in
// the Figure 2 qualitative classes.

// lineOf renders one region line into a fresh slice (test convenience
// around the buffer-filling genLine).
func lineOf(r Region, lineAddr uint64) []byte {
	b := make([]byte, LineSize)
	genLine(b, r, lineAddr)
	return b
}

func ratioOf(c compress.Codec, r Region, nLines int) float64 {
	var un, co float64
	for i := 0; i < nLines; i++ {
		enc := c.Compress(lineOf(r, r.Start+uint64(i)))
		un += float64(compress.LineSize)
		co += float64(enc.Size)
	}
	return un / co
}

func trainedSC(r Region, nLines int) *compress.SC {
	sc := compress.NewSC()
	for i := 0; i < nLines; i++ {
		sc.Train(lineOf(r, r.Start+uint64(i)))
	}
	sc.Rebuild()
	return sc
}

func TestStrideIntFavorsBDI(t *testing.T) {
	r := Region{Start: 0, Lines: 4096, Style: StyleStrideInt, Seed: 1}
	if got := ratioOf(compress.NewBDI(), r, 200); got < 2 {
		t.Fatalf("BDI on StrideInt = %.2f, want >= 2", got)
	}
	sc := trainedSC(r, 400)
	if got := ratioOf(sc, r, 200); got > 1.5 {
		t.Fatalf("SC on StrideInt = %.2f, want hostile (<= 1.5)", got)
	}
}

func TestDictFloatFavorsSC(t *testing.T) {
	r := Region{Start: 0, Lines: 4096, Style: StyleDictFloat, Seed: 2, Dict: 128}
	if got := ratioOf(compress.NewBDI(), r, 200); got > 1.3 {
		t.Fatalf("BDI on DictFloat = %.2f, want ~1 (hostile)", got)
	}
	sc := trainedSC(r, 400)
	if got := ratioOf(sc, r, 200); got < 2 {
		t.Fatalf("SC on DictFloat = %.2f, want >= 2", got)
	}
}

func TestExpFloatFavorsBPC(t *testing.T) {
	r := Region{Start: 0, Lines: 4096, Style: StyleExpFloat, Seed: 3}
	if got := ratioOf(compress.NewBPC(), r, 200); got < 3 {
		t.Fatalf("BPC on ExpFloat = %.2f, want >= 3", got)
	}
	if got := ratioOf(compress.NewBDI(), r, 200); got > 1.3 {
		t.Fatalf("BDI on ExpFloat = %.2f, want ~1 (hostile)", got)
	}
}

func TestPointerFavorsBDI(t *testing.T) {
	r := Region{Start: 0, Lines: 4096, Style: StylePointer, Seed: 4}
	if got := ratioOf(compress.NewBDI(), r, 200); got < 2 {
		t.Fatalf("BDI on Pointer = %.2f, want >= 2", got)
	}
}

func TestRandomIsIncompressible(t *testing.T) {
	r := Region{Start: 0, Lines: 4096, Style: StyleRandom, Seed: 5}
	for _, c := range []compress.Codec{compress.NewBDI(), compress.NewFPC(), compress.NewBPC()} {
		if got := ratioOf(c, r, 100); got > 1.1 {
			t.Fatalf("%s on Random = %.2f, want ~1", c.Name(), got)
		}
	}
}

func TestZeroHeavyCompressesEverywhere(t *testing.T) {
	r := Region{Start: 0, Lines: 4096, Style: StyleZeroHeavy, Seed: 6}
	for _, c := range []compress.Codec{compress.NewBDI(), compress.NewFPC(), compress.NewCPACK()} {
		if got := ratioOf(c, r, 100); got < 1.5 {
			t.Fatalf("%s on ZeroHeavy = %.2f, want >= 1.5", c.Name(), got)
		}
	}
}

func TestOutOfRegionLinesAreZero(t *testing.T) {
	d := NewData([]Region{{Start: 100, Lines: 10, Style: StyleRandom, Seed: 7}})
	line := d.Line(50)
	for _, b := range line {
		if b != 0 {
			t.Fatal("unmapped lines must be zero")
		}
	}
}

func TestSplitmixAvalancheQuick(t *testing.T) {
	f := func(x uint64) bool {
		return splitmix64(x) != splitmix64(x+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
