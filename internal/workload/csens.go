package workload

import "lattecc/internal/trace"

// ---------------------------------------------------------------------
// Cache-sensitive workloads (Table III lower block). All of them have
// working sets that overflow the 16KB baseline L1 but compress into it
// (or closer to it), so compression mode choice moves performance by
// tens of percent. They differ in which value locality their data
// exhibits (deciding BDI vs SC vs BPC) and how much latency tolerance
// their warp behaviour leaves (deciding whether decompression is
// affordable).
//
// Calibration notes (probe data in EXPERIMENTS.md):
//   - per-SM resident working set 2-3x the 16KB L1 → baseline thrashes;
//   - aggregate touched footprint near or beyond the 768KB L2 for the
//     high-occupancy workloads → misses are DRAM-expensive;
//   - low-occupancy workloads (FW, BC) expose even L2-latency misses
//     because nothing covers the stall.
// ---------------------------------------------------------------------

// BC models Betweenness Centrality: graph arrays with strong spatial
// value locality (BDI's case) accessed with little arithmetic between
// loads and mild divergence — low latency tolerance. The paper reports
// BDI helping and SC's 14-cycle latency costing ~22%.
func BC() *Spec {
	return &Spec{
		WName: "BC", Cat: trace.CSens,
		Regions: []Region{
			{Start: 0, Lines: 1 << 14, Style: StyleStrideInt, Seed: 0xBC0},
			{Start: 1 << 15, Lines: 1 << 13, Style: StyleSmallInt, Seed: 0xBC1},
		},
		KernelSeq: []KernelSpec{{
			Name: "bc", Blocks: 30, WarpsPerBlock: 4,
			Phases: []Phase{
				{Kind: PhaseReuse, Region: 0, Iters: 2500, ALU: 1, WSLines: 40},
				{Kind: PhaseRandom, Region: 1, Iters: 300, ALU: 1, Divergence: 2},
			},
		}},
	}
}

// CLR models Graph Coloring: BDI/BPC-friendly adjacency data, medium
// occupancy — Figure 1 shows CLR tolerating up to ~9 extra cycles, so
// low-latency compression is free but SC is marginal.
func CLR() *Spec {
	return &Spec{
		WName: "CLR", Cat: trace.CSens,
		Regions: []Region{
			{Start: 0, Lines: 1 << 14, Style: StyleStrideInt, Seed: 0xC18},
		},
		KernelSeq: []KernelSpec{{
			Name: "coloring", Blocks: 45, WarpsPerBlock: 6,
			Phases: []Phase{
				{Kind: PhaseReuse, Region: 0, Iters: 1500, ALU: 2, WSLines: 18},
				{Kind: PhaseRandom, Region: 0, Iters: 200, ALU: 2},
			},
		}},
	}
}

// FW models Floyd-Warshall: a distance matrix walked with almost no
// arithmetic per load and few resident warps — the paper's least
// latency-tolerant workload (47% degradation under SC's latency) and a
// clear BDI winner.
func FW() *Spec {
	return &Spec{
		WName: "FW", Cat: trace.CSens,
		Regions: []Region{
			{Start: 0, Lines: 1 << 14, Style: StyleStrideInt, Seed: 0xF3},
		},
		KernelSeq: []KernelSpec{{
			Name: "floyd-warshall", Blocks: 15, WarpsPerBlock: 4,
			Phases: []Phase{
				{Kind: PhaseReuse, Region: 0, Iters: 6000, ALU: 2, WSLines: 40},
			},
		}},
	}
}

// DJK models Dijkstra-ALL: pointer-valued edge lists plus small-integer
// distance arrays, BDI-friendly, moderate occupancy and tolerance.
func DJK() *Spec {
	return &Spec{
		WName: "DJK", Cat: trace.CSens,
		Regions: []Region{
			{Start: 0, Lines: 1 << 14, Style: StylePointer, Seed: 0xD7},
			{Start: 1 << 15, Lines: 1 << 13, Style: StyleSmallInt, Seed: 0xD8},
		},
		KernelSeq: []KernelSpec{{
			Name: "dijkstra", Blocks: 30, WarpsPerBlock: 6,
			Phases: []Phase{
				{Kind: PhaseReuse, Region: 0, Iters: 1500, ALU: 1, WSLines: 24},
				{Kind: PhaseRandom, Region: 1, Iters: 250, ALU: 1},
			},
		}},
	}
}

// MIS models Maximal Independent Set: BPC-affine numeric data (Figure 2
// lists MIS among the BPC-preferring workloads), medium tolerance
// (Figure 1: tolerates ~9 cycles).
func MIS() *Spec {
	return &Spec{
		WName: "MIS", Cat: trace.CSens,
		Regions: []Region{
			{Start: 0, Lines: 1 << 14, Style: StyleExpFloat, Seed: 0x315},
			{Start: 1 << 15, Lines: 1 << 13, Style: StyleStrideInt, Seed: 0x316},
		},
		KernelSeq: []KernelSpec{{
			Name: "mis", Blocks: 45, WarpsPerBlock: 6,
			Phases: []Phase{
				{Kind: PhaseReuse, Region: 0, Iters: 1100, ALU: 2, WSLines: 16},
				{Kind: PhaseReuse, Region: 1, Iters: 400, ALU: 2, WSLines: 6},
			},
		}},
	}
}

// PF models Particle Filter: floating-point particle state with spatial
// structure that BPC exploits far better than BDI (Figure 2) — the
// workload that motivates the LATTE-CC-BDI-BPC variant (Figure 18).
func PF() *Spec {
	return &Spec{
		WName: "PF", Cat: trace.CSens,
		Regions: []Region{
			{Start: 0, Lines: 1 << 14, Style: StyleExpFloat, Seed: 0x9F},
		},
		KernelSeq: []KernelSpec{{
			Name: "particlefilter", Blocks: 30, WarpsPerBlock: 6,
			Phases: []Phase{
				{Kind: PhaseReuse, Region: 0, Iters: 1800, ALU: 2, WSLines: 20},
			},
		}},
	}
}

// PRK models PageRank (SPMV): rank vectors full of repeated FP values
// (SC's case) streamed under very high warp-level parallelism — Figure 1
// shows PRK shrugging off even +14 cycles of hit latency, so the
// high-capacity mode is the right choice almost always.
func PRK() *Spec {
	return &Spec{
		WName: "PRK", Cat: trace.CSens,
		Regions: []Region{
			{Start: 0, Lines: 1 << 15, Style: StyleDictFloat, Seed: 0x12A, Dict: 96},
			{Start: 1 << 16, Lines: 1 << 14, Style: StyleStrideInt, Seed: 0x12B},
		},
		KernelSeq: []KernelSpec{{
			Name: "pagerank", Blocks: 60, WarpsPerBlock: 8,
			Phases: []Phase{
				{Kind: PhaseReuse, Region: 0, Iters: 1000, ALU: 3, WSLines: 20},
				{Kind: PhaseRandom, Region: 1, Iters: 250, ALU: 3, Divergence: 2},
			},
		}},
	}
}

// timeVaryingPhases builds the alternating high/low-tolerance structure
// shared by the paper's fine-grained-adaptation showcases (SS, KM, MM):
// arithmetic-dense phases where even SC's latency hides completely,
// interleaved with load-dominated phases where decompression throttles
// the pipeline. A kernel-granularity oracle must pick one mode for all
// of it; LATTE-CC re-decides every EP (Section V-C).
func timeVaryingPhases(hiIters, loIters, rounds, hiWS, loWS int) []Phase {
	var ph []Phase
	for r := 0; r < rounds; r++ {
		ph = append(ph,
			// High tolerance: deep ALU cover per load, overflowing set.
			Phase{Kind: PhaseReuse, Region: 0, Iters: hiIters, ALU: 6, WSLines: hiWS},
			// Low tolerance: back-to-back dependent loads on a hot set.
			Phase{Kind: PhaseReuse, Region: 0, Iters: loIters, ALU: 0, WSLines: loWS},
		)
	}
	return ph
}

// SS models Similarity Score: the paper's illustrating application
// (Section V-C, Figures 5 and 16). Dictionary-value FP data gives SC a
// 3x+ ratio while BDI gets almost nothing; tolerance swings between
// phases, so the best mode changes within the kernel.
func SS() *Spec {
	return &Spec{
		WName: "SS", Cat: trace.CSens,
		Regions: []Region{
			{Start: 0, Lines: 1 << 15, Style: StyleDictFloat, Seed: 0x55F, Dict: 128},
		},
		KernelSeq: []KernelSpec{{
			Name: "similarity", Blocks: 60, WarpsPerBlock: 8,
			Phases: timeVaryingPhases(450, 1000, 3, 20, 6),
		}},
	}
}

// KM models K-Means: centroid tables of repeated FP values (SC-friendly)
// with alternating assignment (memory-bound) and update (compute-dense)
// phases — another fine-grained-adaptation winner (26.9% in the paper).
func KM() *Spec {
	return &Spec{
		WName: "KM", Cat: trace.CSens,
		Regions: []Region{
			{Start: 0, Lines: 1 << 15, Style: StyleDictFloat, Seed: 0x6B, Dict: 64},
			{Start: 1 << 16, Lines: 1 << 14, Style: StyleDictFloat, Seed: 0x6C, Dict: 64},
		},
		KernelSeq: []KernelSpec{{
			Name: "kmeans", Blocks: 60, WarpsPerBlock: 8,
			Phases: append(
				timeVaryingPhases(500, 700, 2, 18, 6),
				Phase{Kind: PhaseStream, Region: 1, Iters: 200, ALU: 2},
			),
		}},
	}
}

// MM models Matrix Multiplication (Mars): tiled multiply whose tiles of
// repeated FP values favour SC, with compute-dense inner products and
// memory-bound tile loads alternating (21.2% under LATTE-CC).
func MM() *Spec {
	return &Spec{
		WName: "MM", Cat: trace.CSens,
		Regions: []Region{
			{Start: 0, Lines: 1 << 15, Style: StyleDictFloat, Seed: 0x3131, Dict: 160},
		},
		KernelSeq: []KernelSpec{{
			Name: "matmul", Blocks: 60, WarpsPerBlock: 8,
			Phases: timeVaryingPhases(600, 600, 2, 20, 8),
		}},
	}
}
