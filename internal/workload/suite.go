package workload

import (
	"fmt"
	"sort"

	"lattecc/internal/trace"
)

// builders maps each Table III abbreviation to its constructor. Each
// synthetic workload recreates the paper benchmark's qualitative class;
// the per-workload comments state the targeted behaviours.
var builders = map[string]func() *Spec{
	// C-InSens
	"BO":  BO,
	"PTH": PTH,
	"HOT": HOT,
	"FWT": FWT,
	"BP":  BP,
	"NW":  NW,
	"SR1": SR1,
	"HW":  HW,
	"SCL": SCL,
	"BT":  BT,
	"WC":  WC,
	"BFS": BFS,
	// C-Sens
	"PF":  PF,
	"SS":  SS,
	"MM":  MM,
	"KM":  KM,
	"BC":  BC,
	"CLR": CLR,
	"FW":  FW,
	"PRK": PRK,
	"DJK": DJK,
	"MIS": MIS,
	// Scenario-diversity workloads (scenario.go): multi-kernel,
	// concurrent-mix, adversarial phase-shifting, profile-derived.
	"MKS": MKS,
	"MKM": MKM,
	"AVF": AVF,
	"AVS": AVS,
	"DPS": DPS,
	"DPI": DPI,
}

// external holds workloads registered at process startup — trace-corpus
// replays and embedder-supplied workloads. It is a plain map with no
// lock on purpose: internal/workload sits below the determinism boundary
// where sync imports are banned, so the registration contract is
// startup-only. RegisterExternal must only be called before any
// concurrent use of Names/ByName/All (in practice: from main() or
// TestMain before Suites, pools, or the daemon are constructed). The
// cmd wiring honours this by loading -trace-dir first thing.
var external = map[string]trace.Workload{}

// RegisterExternal adds a workload to the registry under its own name.
// See the external map's contract: startup-only, before concurrent use.
func RegisterExternal(w trace.Workload) error {
	if w == nil {
		return fmt.Errorf("workload: register: nil workload")
	}
	name := w.Name()
	if name == "" {
		return fmt.Errorf("workload: register: empty name")
	}
	if _, ok := builders[name]; ok {
		return fmt.Errorf("workload: register: %q collides with a built-in workload", name)
	}
	if _, ok := external[name]; ok {
		return fmt.Errorf("workload: register: %q already registered", name)
	}
	external[name] = w
	return nil
}

// externalNames returns the registered external names in sorted order
// (same determinism rationale as builderNames).
func externalNames() []string {
	names := make([]string, 0, len(external))
	//lint:allow determinism keys are sorted before use
	for name := range external {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// builderNames returns the registry's keys in sorted order. Every
// enumeration of the builders map goes through this helper so map
// iteration order can never reach a caller (workload order decides
// block-dispatch interleaving, so it must be identical across runs).
func builderNames() []string {
	names := make([]string, 0, len(builders))
	//lint:allow determinism keys are sorted before use
	for name := range builders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Names returns every workload abbreviation, sorted, C-Sens last — the
// order the paper's figures use (insensitive group then sensitive group).
func Names() []string {
	var ins, sens []string
	add := func(name string, cat trace.Category) {
		if cat == trace.CSens {
			sens = append(sens, name)
		} else {
			ins = append(ins, name)
		}
	}
	for _, name := range builderNames() {
		add(name, builders[name]().Category())
	}
	for _, name := range externalNames() {
		add(name, external[name].Category())
	}
	sort.Strings(ins)
	sort.Strings(sens)
	return append(ins, sens...)
}

// ByName builds the named workload.
func ByName(name string) (trace.Workload, error) {
	if b, ok := builders[name]; ok {
		return b(), nil
	}
	if w, ok := external[name]; ok {
		return w, nil
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q", name)
}

// All builds every workload in Names() order.
func All() []trace.Workload {
	names := Names()
	out := make([]trace.Workload, 0, len(names))
	for _, n := range names {
		w, _ := ByName(n)
		out = append(out, w)
	}
	return out
}

// CSens builds the cache-sensitive workloads.
func CSens() []trace.Workload { return byCat(trace.CSens) }

// CInSens builds the cache-insensitive workloads.
func CInSens() []trace.Workload { return byCat(trace.CInSens) }

func byCat(cat trace.Category) []trace.Workload {
	var out []trace.Workload
	for _, w := range All() {
		if w.Category() == cat {
			out = append(out, w)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Cache-insensitive workloads (Table III upper block). These either fit
// in the baseline L1 or stream without reuse, so extra effective capacity
// is worthless — what distinguishes them is how much added hit latency
// they tolerate (NW, HW, SCL, BT are the paper's Static-SC victims).
// ---------------------------------------------------------------------

// BO models Binomial Options: compute-bound finance kernel, small hot
// working set, high occupancy. High latency tolerance; capacity
// insensitive.
func BO() *Spec {
	return &Spec{
		WName: "BO", Cat: trace.CInSens,
		Regions: []Region{{Start: 0, Lines: 4096, Style: StyleExpFloat, Seed: 0xB0}},
		KernelSeq: []KernelSpec{{
			Name: "binomial", Blocks: 60, WarpsPerBlock: 8,
			Phases: []Phase{
				{Kind: PhaseReuse, Region: 0, Iters: 220, ALU: 7, WSLines: 2},
			},
		}},
	}
}

// PTH models PathFinder: row-by-row dynamic programming, streaming reads
// with high warp counts. Tolerant, insensitive.
func PTH() *Spec {
	return &Spec{
		WName: "PTH", Cat: trace.CInSens,
		Regions: []Region{{Start: 0, Lines: 1 << 15, Style: StyleSmallInt, Seed: 0x971}},
		KernelSeq: []KernelSpec{{
			Name: "pathfinder", Blocks: 60, WarpsPerBlock: 8,
			Phases: []Phase{
				{Kind: PhaseStream, Region: 0, Iters: 300, ALU: 2},
			},
		}},
	}
}

// HOT models Hotspot: a stencil whose per-block tile fits in the L1.
// Moderate ALU intensity, high occupancy.
func HOT() *Spec {
	return &Spec{
		WName: "HOT", Cat: trace.CInSens,
		Regions: []Region{{Start: 0, Lines: 8192, Style: StyleStrideInt, Seed: 0x407}},
		KernelSeq: []KernelSpec{{
			Name: "hotspot", Blocks: 60, WarpsPerBlock: 8,
			Phases: []Phase{
				{Kind: PhaseReuse, Region: 0, Iters: 260, ALU: 3, WSLines: 3},
			},
		}},
	}
}

// FWT models Fast Walsh Transform: butterfly passes streaming a float
// array, stores back each stage.
func FWT() *Spec {
	return &Spec{
		WName: "FWT", Cat: trace.CInSens,
		Regions: []Region{{Start: 0, Lines: 1 << 14, Style: StyleExpFloat, Seed: 0xF37}},
		KernelSeq: []KernelSpec{{
			Name: "fwt", Blocks: 60, WarpsPerBlock: 8,
			Phases: []Phase{
				{Kind: PhaseStream, Region: 0, Iters: 160, ALU: 3},
				{Kind: PhaseStore, Region: 0, Iters: 80, ALU: 1},
			},
		}},
	}
}

// BP models Back Propagation: weight-matrix streaming with repeated FP
// constants (dictionary-like values), stores for updates.
func BP() *Spec {
	return &Spec{
		WName: "BP", Cat: trace.CInSens,
		Regions: []Region{{Start: 0, Lines: 1 << 14, Style: StyleDictFloat, Seed: 0xB9, Dict: 256}},
		KernelSeq: []KernelSpec{{
			Name: "backprop", Blocks: 60, WarpsPerBlock: 8,
			Phases: []Phase{
				{Kind: PhaseStream, Region: 0, Iters: 200, ALU: 3},
				{Kind: PhaseStore, Region: 0, Iters: 60, ALU: 1},
			},
		}},
	}
}

// NW models Needleman-Wunsch: wavefront parallelism, very few concurrent
// warps, hit-dominated accesses over compressible score rows. The
// paper's archetype of a workload with almost no latency tolerance —
// Static-SC degrades it badly. Two diagonal-sweep kernels re-insert the
// rows once the SC code book exists.
func NW() *Spec {
	kernel := func(name string) KernelSpec {
		// Four diagonal wavefronts per kernel, block-synchronized between
		// them (the DP dependence structure).
		var phases []Phase
		for wave := 0; wave < 4; wave++ {
			phases = append(phases,
				Phase{Kind: PhaseReuse, Region: 0, Iters: 1000, ALU: 1, WSLines: 4},
				Phase{Kind: PhaseBarrier, Iters: 1},
			)
		}
		return KernelSpec{Name: name, Blocks: 15, WarpsPerBlock: 2, Phases: phases}
	}
	return &Spec{
		WName: "NW", Cat: trace.CInSens,
		Regions:   []Region{{Start: 0, Lines: 2048, Style: StyleSmallInt, Seed: 0x8A}},
		KernelSeq: []KernelSpec{kernel("nw-fwd"), kernel("nw-back")},
	}
}

// SR1 models SRAD1: image-processing stencil, streaming float reads with
// moderate compute and stores.
func SR1() *Spec {
	return &Spec{
		WName: "SR1", Cat: trace.CInSens,
		Regions: []Region{{Start: 0, Lines: 1 << 14, Style: StyleExpFloat, Seed: 0x521}},
		KernelSeq: []KernelSpec{{
			Name: "srad1", Blocks: 60, WarpsPerBlock: 8,
			Phases: []Phase{
				{Kind: PhaseStream, Region: 0, Iters: 220, ALU: 4},
				{Kind: PhaseStore, Region: 0, Iters: 40, ALU: 1},
			},
		}},
	}
}

// HW models Heartwall: low occupancy, hit-heavy loops over compressible
// tracking state, one kernel per video frame. With SC the decompression
// latency lands on a pipeline with nothing to hide it — the paper's
// worst energy case (+53%).
func HW() *Spec {
	var ks []KernelSpec
	for _, frame := range []string{"f0", "f1", "f2", "f3", "f4", "f5"} {
		ks = append(ks, KernelSpec{
			Name: "heartwall-" + frame, Blocks: 15, WarpsPerBlock: 2,
			Phases: []Phase{
				{Kind: PhaseReuse, Region: 0, Iters: 3000, ALU: 1, WSLines: 5},
			},
		})
	}
	return &Spec{
		WName: "HW", Cat: trace.CInSens,
		Regions:   []Region{{Start: 0, Lines: 2048, Style: StyleDictFloat, Seed: 0x44, Dict: 128}},
		KernelSeq: ks,
	}
}

// SCL models Streamcluster: distance computations against a small set of
// cluster centres (hit-heavy, compressible) at modest occupancy.
func SCL() *Spec {
	return &Spec{
		WName: "SCL", Cat: trace.CInSens,
		Regions: []Region{
			{Start: 0, Lines: 1024, Style: StyleDictFloat, Seed: 0x5C, Dict: 192},
			{Start: 1 << 16, Lines: 1 << 14, Style: StyleDictFloat, Seed: 0x5D, Dict: 192},
		},
		KernelSeq: []KernelSpec{{
			Name: "streamcluster", Blocks: 30, WarpsPerBlock: 4,
			Phases: []Phase{
				{Kind: PhaseReuse, Region: 0, Iters: 2000, ALU: 2, WSLines: 4, Shared: true},
				{Kind: PhaseStream, Region: 1, Iters: 300, ALU: 2},
			},
		}},
	}
}

// BT models B+Tree: pointer-chasing queries. Upper tree levels hit and
// are compressible; occupancy is low, so added hit latency is exposed.
func BT() *Spec {
	return &Spec{
		WName: "BT", Cat: trace.CInSens,
		Regions: []Region{
			{Start: 0, Lines: 512, Style: StylePointer, Seed: 0xB7},           // hot upper levels
			{Start: 1 << 16, Lines: 1 << 15, Style: StylePointer, Seed: 0xB8}, // leaves
		},
		KernelSeq: []KernelSpec{
			{
				Name: "btree-batch1", Blocks: 30, WarpsPerBlock: 4,
				Phases: []Phase{
					{Kind: PhaseReuse, Region: 0, Iters: 1500, ALU: 1, WSLines: 3, Shared: true},
					{Kind: PhaseRandom, Region: 1, Iters: 400, ALU: 1, Divergence: 2},
				},
			},
			{
				Name: "btree-batch2", Blocks: 30, WarpsPerBlock: 4,
				Phases: []Phase{
					{Kind: PhaseReuse, Region: 0, Iters: 1500, ALU: 1, WSLines: 3, Shared: true},
					{Kind: PhaseRandom, Region: 1, Iters: 400, ALU: 1, Divergence: 2},
				},
			},
		},
	}
}

// WC models Word Count (Mars map-reduce): streaming text with counter
// stores, high occupancy, fully latency tolerant.
func WC() *Spec {
	return &Spec{
		WName: "WC", Cat: trace.CInSens,
		Regions: []Region{
			{Start: 0, Lines: 1 << 14, Style: StyleZeroHeavy, Seed: 0x3C},
			{Start: 1 << 16, Lines: 4096, Style: StyleSmallInt, Seed: 0x3D},
		},
		KernelSeq: []KernelSpec{{
			Name: "wordcount", Blocks: 60, WarpsPerBlock: 8,
			Phases: []Phase{
				{Kind: PhaseStream, Region: 0, Iters: 200, ALU: 2},
				{Kind: PhaseStore, Region: 1, Iters: 60, ALU: 1},
			},
		}},
	}
}

// BFS models Breadth-First Search: irregular frontier expansion with
// divergent accesses over compressible adjacency data. Miss-dominated,
// so compression's capacity cannot help (C-InSens), but high warp counts
// tolerate any added latency.
func BFS() *Spec {
	return &Spec{
		WName: "BFS", Cat: trace.CInSens,
		Regions: []Region{
			{Start: 0, Lines: 1 << 15, Style: StyleSmallInt, Seed: 0xBF5},
			{Start: 1 << 16, Lines: 1 << 15, Style: StyleStrideInt, Seed: 0xBF6},
		},
		KernelSeq: []KernelSpec{{
			Name: "bfs", Blocks: 60, WarpsPerBlock: 8,
			Phases: []Phase{
				{Kind: PhaseRandom, Region: 0, Iters: 120, ALU: 1, Divergence: 3},
				{Kind: PhaseRandom, Region: 1, Iters: 120, ALU: 1, Divergence: 2},
			},
		}},
	}
}
