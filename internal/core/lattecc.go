// Package core implements the LATTE-CC adaptive compression controller —
// the primary contribution of the paper (Section III). The controller
// divides execution into periods of Experimental Phases (EPs), uses
// set-sampling during a learning phase to estimate the cache-capacity
// benefit of each compression mode, continuously estimates the GPU
// pipeline's latency tolerance, and selects the mode that minimizes
// AMAT_GPU (Equation 2) for every EP of the adaptive phase.
//
// The same sampling machinery also powers the two adaptive baselines of
// Figure 17 — Adaptive-Hit-Count (decides on hit counts alone) and
// Adaptive-CMP (latency aware but tolerance oblivious) — selected through
// the Decision knob. This mirrors the paper's framing: the baselines
// differ from LATTE-CC only in what the decision function knows.
package core

import (
	"fmt"
	"math"

	"lattecc/internal/modes"
	"lattecc/internal/stats"
)

// Decision selects the mode-decision function.
type Decision int

const (
	// DecisionLatte is the full LATTE-CC decision: minimize AMAT_GPU with
	// the latency-tolerance clamp of Equation 2.
	DecisionLatte Decision = iota
	// DecisionHitCount picks the mode with the most sampled hits
	// (equivalently, fewest misses) — the Adaptive-Hit-Count baseline.
	DecisionHitCount
	// DecisionCMP minimizes conventional AMAT (Equation 1) including
	// decompression latency but ignoring latency tolerance — the
	// Adaptive-CMP baseline (Alameldeen-style, adapted to mode selection).
	DecisionCMP
)

// String names the decision for reports.
func (d Decision) String() string {
	switch d {
	case DecisionLatte:
		return "LATTE-CC"
	case DecisionHitCount:
		return "Adaptive-Hit-Count"
	case DecisionCMP:
		return "Adaptive-CMP"
	default:
		return fmt.Sprintf("decision(%d)", int(d))
	}
}

// Config holds the LATTE-CC parameters (Section IV-C3 defaults via
// DefaultConfig).
type Config struct {
	NumSets      int    // L1 sets (32 for the Table II cache)
	EPAccesses   uint64 // accesses per experimental phase (256)
	EPsPerPeriod uint64 // EPs per period (10)
	LearningEPs  uint64 // EPs in the learning phase (1)
	CarryoverEPs uint64 // extra EPs that keep counting hits (1)
	// LearningStartEP places the learning phase within the period. The
	// period boundary flushes every high-capacity line (code book
	// rebuild), so sampling immediately after it would watch the
	// high-capacity sets refill from cold and systematically undercount
	// their hits. Starting the learning phase a few EPs into the period
	// samples warm, steady-state sets. 0 reproduces the paper-literal
	// layout (learning first).
	LearningStartEP uint64
	// WarmupEPs is how many EPs before the learning phase the dedicated
	// sets switch to inserting their own mode, without counting. Without
	// a warmup the dedicated sets still hold the previous winner's lines
	// when sampling opens, so every mode gets credited with the
	// incumbent's capacity and the signal collapses (see DESIGN.md).
	// Outside warmup+learning the dedicated sets follow the winner, as
	// the paper specifies, bounding the sampling overhead.
	WarmupEPs uint64
	// DedicatedSetsPerMode is the number of sampling sets per mode (4 in
	// Section IV-C3).
	DedicatedSetsPerMode int

	BaseHitLatency uint64                 // L1 hit latency without compression
	DecompLatency  [modes.NumModes]uint64 // per-mode decompression latency

	// MissLatencyInit seeds the observed-miss-latency average before any
	// miss completes (roughly the minimum L2 latency).
	MissLatencyInit float64

	// SampleEveryPeriods rate-limits sampling once the prediction is
	// stable: after StableBeforeBackoff consecutive periods with an
	// unchanged winner, only every SampleEveryPeriods-th period runs the
	// warmup/learning window. Sampling has a real cost — dedicated sets
	// must run non-winning modes — and a stable workload does not need to
	// pay it every period. Tolerance-driven re-decisions still happen
	// every EP; only the capacity counters go stale. 0 disables backoff.
	SampleEveryPeriods  uint64
	StableBeforeBackoff uint64

	// KernelBoundaryReset restarts the period state machine whenever a new
	// kernel launches: the sampling window reopens immediately and the
	// stable-prediction backoff resets, so the controller re-learns the new
	// kernel's capacity signal instead of trusting counters sampled from
	// the previous kernel's access mix for up to SampleEveryPeriods
	// periods. False reproduces the paper's hardware model, where the EP
	// machinery is oblivious to kernel launches and state simply persists
	// (the winner carries over and re-learning waits for the next sampling
	// window).
	KernelBoundaryReset bool

	Decision Decision
}

// DefaultConfig returns the Section IV-C3 parameters for a cache with the
// given set count and the BDI/SC latencies of Section IV-C.
func DefaultConfig(numSets int) Config {
	return Config{
		NumSets:              numSets,
		EPAccesses:           256,
		EPsPerPeriod:         10,
		LearningEPs:          1,
		CarryoverEPs:         1,
		LearningStartEP:      3,
		WarmupEPs:            2,
		DedicatedSetsPerMode: 4,
		SampleEveryPeriods:   4,
		StableBeforeBackoff:  3,
		BaseHitLatency:       4,
		DecompLatency:        [modes.NumModes]uint64{0, 2, 14},
		MissLatencyInit:      150,
		Decision:             DecisionLatte,
	}
}

// Controller is the LATTE-CC adaptive compression controller. It
// implements modes.Controller.
type Controller struct {
	cfg  Config
	name string

	// dedicated[set] is the mode a set samples during the learning phase,
	// or -1 for follower sets. dedicatedList enumerates the dedicated set
	// indices for the sampling-window flush.
	dedicated     []int8
	dedicatedList []modes.SetMode

	// Per-mode sampling counters for the current period (Section III-B1).
	hits    [modes.NumModes]uint64
	inserts [modes.NumModes]uint64

	accesses   uint64 // total accesses (EP clock)
	epInPeriod uint64
	periods    uint64

	winner        modes.Mode      // current follower mode
	stablePeriods uint64          // consecutive periods without a winner change
	sampling      bool            // whether this period runs the sampling window
	cleanupList   []modes.SetMode // end-of-window cleanup (winner, keep-uncompressed)

	missLat   *stats.EWMA                 // observed miss service latency
	queueWait [modes.NumModes]*stats.EWMA // observed decompression queue wait per mode

	tolEP      stats.Running // tolerance samples within the current EP
	toleranceC float64       // tolerance estimate used for decisions (last EP mean)

	// Trace, when non-nil, receives a snapshot of every EP decision
	// (debugging and the experiment harness's agreement analysis).
	Trace func(DecisionTrace)

	// Instrumentation.
	epLog     []modes.Mode // winner at each adaptive-phase EP boundary
	epKernel  []int32      // kernel index active at each logged EP
	curKernel int32
	epsInMode [modes.NumModes]uint64
	decisions uint64
	switches  uint64
}

var _ modes.Controller = (*Controller)(nil)
var _ modes.Snapshotter = (*Controller)(nil)

// New builds a controller. It panics if the dedicated sets cannot fit in
// the cache's set count.
func New(cfg Config) *Controller {
	need := cfg.DedicatedSetsPerMode * int(modes.NumModes)
	if cfg.NumSets < need {
		panic(fmt.Sprintf("core: %d sets cannot host %d dedicated sets", cfg.NumSets, need))
	}
	if cfg.EPAccesses == 0 || cfg.EPsPerPeriod == 0 || cfg.LearningEPs == 0 {
		panic("core: zero-length phases")
	}
	if cfg.LearningStartEP+cfg.LearningEPs+cfg.CarryoverEPs > cfg.EPsPerPeriod {
		panic("core: learning window exceeds period")
	}
	if cfg.WarmupEPs > cfg.LearningStartEP {
		panic("core: warmup window starts before the period")
	}
	c := &Controller{
		cfg:       cfg,
		name:      cfg.Decision.String(),
		dedicated: make([]int8, cfg.NumSets),
		missLat:   stats.NewEWMA(0.1),
		winner:    modes.None,
		sampling:  true,
	}
	for m := range c.queueWait {
		c.queueWait[m] = stats.NewEWMA(0.1)
	}
	for i := range c.dedicated {
		c.dedicated[i] = -1
	}
	// Spread the dedicated sets across the index space so sampling sees a
	// representative address mix (stride = NumSets / (modes*setsPerMode)).
	stride := cfg.NumSets / need
	if stride == 0 {
		stride = 1
	}
	idx := 0
	for i := 0; i < cfg.DedicatedSetsPerMode; i++ {
		for _, m := range modes.All() {
			c.dedicated[idx%cfg.NumSets] = int8(m)
			c.dedicatedList = append(c.dedicatedList, modes.SetMode{Set: idx % cfg.NumSets, Mode: m})
			idx += stride
		}
	}
	return c
}

// Name implements modes.Controller.
func (c *Controller) Name() string { return c.name }

// CurrentMode implements modes.Snapshotter.
func (c *Controller) CurrentMode() modes.Mode { return c.winner }

// Tolerance returns the latency-tolerance estimate currently used for
// decisions, in cycles.
func (c *Controller) Tolerance() float64 { return c.toleranceC }

// Periods returns the number of completed periods.
func (c *Controller) Periods() uint64 { return c.periods }

// EPLog returns the winner decided at each adaptive EP boundary, for the
// Figure 15 agreement analysis.
func (c *Controller) EPLog() []modes.Mode { return c.epLog }

// EPKernels returns, parallel to EPLog, the kernel index each decision
// was made in.
func (c *Controller) EPKernels() []int32 { return c.epKernel }

// KernelStart tags subsequent EP-log entries with the kernel index; the
// simulator calls it at kernel boundaries. With KernelBoundaryReset set,
// entering a different kernel also restarts the period state machine
// (fresh sampling window, cleared counters, backoff reset) — the winner
// itself is retained until the reopened window decides otherwise.
func (c *Controller) KernelStart(idx int) {
	if c.cfg.KernelBoundaryReset && int32(idx) != c.curKernel {
		c.epInPeriod = 0
		c.sampling = true
		c.stablePeriods = 0
		for m := range c.hits {
			c.hits[m], c.inserts[m] = 0, 0
		}
		c.tolEP.Reset()
	}
	c.curKernel = int32(idx)
}

// EPsInMode returns how many adaptive EPs each mode won.
func (c *Controller) EPsInMode() [modes.NumModes]uint64 { return c.epsInMode }

// Switches returns how many EP boundaries changed the winning mode.
func (c *Controller) Switches() uint64 { return c.switches }

// learning reports whether the current EP is in the learning phase.
func (c *Controller) learning() bool {
	return c.sampling && c.epInPeriod >= c.cfg.LearningStartEP &&
		c.epInPeriod < c.cfg.LearningStartEP+c.cfg.LearningEPs
}

// dedicating reports whether dedicated sets currently insert their own
// mode (warmup + learning window); otherwise they follow the winner.
func (c *Controller) dedicating() bool {
	return c.sampling && c.epInPeriod >= c.cfg.LearningStartEP-c.cfg.WarmupEPs &&
		c.epInPeriod < c.cfg.LearningStartEP+c.cfg.LearningEPs
}

// countingHits reports whether dedicated-set hits still update the
// sampling counters (learning phase plus the carryover EPs; Section
// III-B1: "the benefit of compression might manifest later in time").
func (c *Controller) countingHits() bool {
	return c.sampling && c.epInPeriod >= c.cfg.LearningStartEP &&
		c.epInPeriod < c.cfg.LearningStartEP+c.cfg.LearningEPs+c.cfg.CarryoverEPs
}

// InsertMode implements modes.Controller. Dedicated sets force their
// sampling mode during the warmup and learning EPs and follow the winner
// otherwise (Section III-B1's follower behaviour, with the warmup
// extension documented in Config.WarmupEPs).
func (c *Controller) InsertMode(set int) modes.Mode {
	if c.dedicating() {
		if d := c.dedicated[set]; d >= 0 {
			return modes.Mode(d)
		}
	}
	return c.winner
}

// RecordAccess implements modes.Controller: it updates the sampling
// counters and advances the EP/period state machine.
func (c *Controller) RecordAccess(set int, hit bool, lineMode modes.Mode, extraLat uint64, now uint64) modes.Directive {
	// Sampling counter updates (dedicated sets only).
	if d := c.dedicated[set]; d >= 0 {
		m := modes.Mode(d)
		switch {
		case c.learning():
			if hit {
				c.hits[m]++
			} else {
				c.inserts[m]++ // every miss inserts a line in this model
			}
		case c.countingHits():
			if hit {
				c.hits[m]++
			}
		}
	}
	// Queue-wait observation: decompression penalty beyond the codec
	// latency, attributed to the line's mode.
	if hit && lineMode != modes.None && extraLat > 0 {
		dec := c.cfg.DecompLatency[lineMode]
		if extraLat >= dec {
			c.queueWait[lineMode].Add(float64(extraLat - dec))
		}
	}

	c.accesses++
	if c.accesses%c.cfg.EPAccesses != 0 {
		return modes.Directive{}
	}
	return c.epBoundary()
}

// epBoundary advances the EP state machine, re-deciding the winner each
// adaptive EP and rolling periods over.
func (c *Controller) epBoundary() modes.Directive {
	c.epInPeriod++

	// Fold this EP's tolerance samples into the decision estimate.
	if c.tolEP.Count() > 0 {
		c.toleranceC = c.tolEP.Mean()
	}
	c.tolEP.Reset()

	// Section IV-C2: the VFT is built during the first EP of the first
	// period, so the high-capacity codec gets its first code book at the
	// first EP boundary (no flush needed — nothing compressed yet).
	var dir modes.Directive
	if c.accesses == c.cfg.EPAccesses {
		dir.RebuildHighCap = true
	}

	if c.epInPeriod >= c.cfg.EPsPerPeriod {
		// Period rollover: new SC code book (Section IV-C2: rebuilt during
		// the final EP of each period; older compressed lines are
		// invalidated).
		c.epInPeriod = 0
		c.periods++
		dir.FlushHighCap = true
		dir.RebuildHighCap = true
		// Sampling backoff: stable predictions sample less often.
		c.sampling = true
		if c.cfg.SampleEveryPeriods > 0 && c.stablePeriods >= c.cfg.StableBeforeBackoff {
			c.sampling = c.periods%c.cfg.SampleEveryPeriods == 0
		}
	}

	if c.sampling && c.epInPeriod+c.cfg.WarmupEPs == c.cfg.LearningStartEP {
		// Sampling window opens: decontaminate the dedicated sets so each
		// holds only lines of its own mode (the incumbent's leftovers
		// would otherwise credit their capacity to whatever label the set
		// carries). Matching lines survive, so the incumbent's own sets
		// flush nothing.
		dir.FlushMismatch = c.dedicatedList
	}
	if c.sampling && c.epInPeriod == c.cfg.LearningStartEP {
		// Learning phase opens: fresh sampling counters.
		for m := range c.hits {
			c.hits[m], c.inserts[m] = 0, 0
		}
	}

	if c.sampling && c.epInPeriod == c.cfg.LearningStartEP+c.cfg.LearningEPs+c.cfg.CarryoverEPs {
		// Sampling window closed: clear lingering compressed lines of
		// non-winning modes out of the dedicated sets, so a sampling pass
		// does not tax hit-dominated workloads for the rest of the
		// period. Uncompressed lines stay — they cost nothing on hits.
		if c.cleanupList == nil {
			c.cleanupList = make([]modes.SetMode, len(c.dedicatedList))
		}
		for i, sm := range c.dedicatedList {
			c.cleanupList[i] = modes.SetMode{Set: sm.Set, Mode: c.winner, KeepUncompressed: true}
		}
		dir.FlushMismatch = c.cleanupList
	}

	if c.epInPeriod != 0 && c.epInPeriod >= c.cfg.LearningStartEP+c.cfg.LearningEPs {
		prev := c.winner
		c.winner = c.decide()
		c.decisions++
		if c.winner != prev {
			c.switches++
			c.stablePeriods = 0
		} else if c.epInPeriod == c.cfg.EPsPerPeriod-1 {
			c.stablePeriods++
		}
		c.epsInMode[c.winner]++
		c.epLog = append(c.epLog, c.winner)
		c.epKernel = append(c.epKernel, c.curKernel)
		if c.Trace != nil {
			c.Trace(DecisionTrace{
				Hits:      c.hits,
				Inserts:   c.inserts,
				Tolerance: c.toleranceC,
				MissLat:   c.missLatency(),
				Winner:    c.winner,
			})
		}
	}
	return dir
}

// DecisionTrace is a debugging snapshot of one EP decision.
type DecisionTrace struct {
	Hits      [modes.NumModes]uint64
	Inserts   [modes.NumModes]uint64
	Tolerance float64
	MissLat   float64
	Winner    modes.Mode
}

// RecordMissLatency implements modes.Controller.
func (c *Controller) RecordMissLatency(lat uint64) { c.missLat.Add(float64(lat)) }

// RecordTolerance implements modes.Controller.
func (c *Controller) RecordTolerance(tol float64) { c.tolEP.Add(tol) }

// missLatency returns the observed miss latency or the configured seed.
func (c *Controller) missLatency() float64 {
	if c.missLat.Initialized() {
		return c.missLat.Value()
	}
	return c.cfg.MissLatencyInit
}

// hitLatency returns the estimated hit latency for a mode: the base L1
// latency plus decompression latency plus the observed queue wait
// (Equation 3).
func (c *Controller) hitLatency(m modes.Mode) float64 {
	lat := float64(c.cfg.BaseHitLatency + c.cfg.DecompLatency[m])
	if m != modes.None {
		lat += c.queueWait[m].Value()
	}
	return lat
}

// AMATGPU computes Equation 2: hits pay max(hitLat - tolerance, 0), misses
// pay the full miss latency.
func AMATGPU(hits, misses uint64, hitLat, tolerance, missLat float64) float64 {
	n := hits + misses
	if n == 0 {
		return 0
	}
	effHit := hitLat - tolerance
	if effHit < 0 {
		effHit = 0
	}
	return (float64(hits)*effHit + float64(misses)*missLat) / float64(n)
}

// AMAT computes Equation 1: conventional AMAT without latency tolerance.
func AMAT(hits, misses uint64, hitLat, missLat float64) float64 {
	return AMATGPU(hits, misses, hitLat, 0, missLat)
}

// decide picks the winner from the sampled counters per the configured
// decision function.
func (c *Controller) decide() modes.Mode {
	if c.cfg.Decision == DecisionHitCount {
		best := modes.None
		for _, m := range modes.All() {
			if c.hits[m] > c.hits[best] {
				best = m
			}
		}
		return best
	}
	tol := c.toleranceC
	if c.cfg.Decision == DecisionCMP {
		tol = 0
	}
	miss := c.missLatency()
	var amat [modes.NumModes]float64
	var sampled [modes.NumModes]bool
	for _, m := range modes.All() {
		if c.hits[m]+c.inserts[m] == 0 {
			// No samples for this mode this period: unknown, not free.
			continue
		}
		sampled[m] = true
		amat[m] = AMATGPU(c.hits[m], c.inserts[m], c.hitLatency(m), tol, miss)
	}
	// Incumbent hysteresis: a challenger must beat the current winner's
	// AMAT by a clear margin before taking over. With 2 sampling sets per
	// mode an EP's counters hold only a few dozen samples, so near-ties
	// are statistical noise; oscillating on them costs real capacity
	// (every mode switch refills the cache with differently-sized lines).
	const margin = 0.9
	best := c.winner
	bestAMAT := math.Inf(1)
	if sampled[best] {
		bestAMAT = amat[best] * margin
	}
	for _, m := range modes.All() {
		if !sampled[m] || m == c.winner {
			continue
		}
		if amat[m] < bestAMAT {
			best, bestAMAT = m, amat[m]*margin
		}
	}
	return best
}
