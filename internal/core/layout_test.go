package core

import (
	"testing"

	"lattecc/internal/modes"
)

// defaultCfg is the shipping mid-period layout (unlike testCfg's
// paper-literal layout in lattecc_test.go).
func defaultCfg() Config { return DefaultConfig(32) }

// drive pushes n accesses round-robin over all sets, reporting hits for
// dedicated sets per hitFor, and returns every directive emitted.
func drive(c *Controller, n uint64, hitFor map[modes.Mode]bool) []modes.Directive {
	var dirs []modes.Directive
	for i := uint64(0); i < n; i++ {
		set := int(i) % c.cfg.NumSets
		hit := false
		lineMode := modes.None
		if d := c.dedicated[set]; d >= 0 {
			m := modes.Mode(d)
			hit = hitFor[m]
			lineMode = m
		}
		dirs = append(dirs, c.RecordAccess(set, hit, lineMode, 0, i))
	}
	return dirs
}

func TestMidPeriodLearningWindow(t *testing.T) {
	c := New(defaultCfg())
	// EPs 0..(LearningStart-Warmup-1): followers everywhere.
	if c.dedicating() || c.learning() {
		t.Fatal("period must open in follower mode")
	}
	perEP := c.cfg.EPAccesses
	// Advance to the warmup window (end of EP0 = boundary 1).
	drive(c, perEP*(c.cfg.LearningStartEP-c.cfg.WarmupEPs), nil)
	if !c.dedicating() {
		t.Fatalf("EP %d should start the warmup window", c.epInPeriod)
	}
	if c.learning() {
		t.Fatal("warmup must not count")
	}
	// Advance to the learning EP.
	drive(c, perEP*c.cfg.WarmupEPs, nil)
	if !c.learning() || !c.dedicating() {
		t.Fatalf("EP %d should be the learning EP", c.epInPeriod)
	}
	// After learning+carryover the dedicated sets follow again.
	drive(c, perEP*(c.cfg.LearningEPs+c.cfg.CarryoverEPs), nil)
	if c.dedicating() || c.countingHits() {
		t.Fatal("window must be closed after carryover")
	}
}

func TestMismatchFlushAtWindowOpenAndClose(t *testing.T) {
	c := New(defaultCfg())
	perEP := c.cfg.EPAccesses
	dirs := drive(c, perEP*c.cfg.EPsPerPeriod, map[modes.Mode]bool{modes.LowLat: true})
	var openFlush, closeFlush int
	for i, d := range dirs {
		if len(d.FlushMismatch) == 0 {
			continue
		}
		ep := uint64(i+1) / perEP // directive fires at the boundary access
		switch ep {
		case c.cfg.LearningStartEP - c.cfg.WarmupEPs:
			openFlush++
			for _, sm := range d.FlushMismatch {
				if sm.KeepUncompressed {
					t.Fatal("window-open flush must clear everything mismatched")
				}
				if c.dedicated[sm.Set] < 0 || modes.Mode(c.dedicated[sm.Set]) != sm.Mode {
					t.Fatal("window-open flush must target dedicated sets with their own mode")
				}
			}
		case c.cfg.LearningStartEP + c.cfg.LearningEPs + c.cfg.CarryoverEPs:
			closeFlush++
			for _, sm := range d.FlushMismatch {
				if !sm.KeepUncompressed {
					t.Fatal("window-close flush must keep uncompressed lines")
				}
				if sm.Mode != c.CurrentMode() {
					t.Fatal("window-close flush must keep the winner's mode")
				}
			}
		default:
			t.Fatalf("unexpected mismatch flush at EP %d", ep)
		}
	}
	if openFlush != 1 || closeFlush != 1 {
		t.Fatalf("flushes: open=%d close=%d, want 1/1", openFlush, closeFlush)
	}
}

func TestSamplingBackoff(t *testing.T) {
	cfg := defaultCfg()
	cfg.StableBeforeBackoff = 2
	cfg.SampleEveryPeriods = 4
	c := New(cfg)
	perPeriod := cfg.EPAccesses * cfg.EPsPerPeriod
	// A stable scenario: LowLat sets always hit, so the winner never
	// changes after the first decision.
	hits := map[modes.Mode]bool{modes.LowLat: true}
	samplingPeriods := 0
	for period := 0; period < 12; period++ {
		drive(c, perPeriod, hits)
		if c.sampling {
			samplingPeriods++
		}
	}
	if samplingPeriods >= 12 {
		t.Fatal("backoff never engaged")
	}
	// With backoff 4, after stabilization roughly 1 in 4 periods samples.
	if samplingPeriods > 7 {
		t.Fatalf("sampled %d of 12 periods, expected backoff to ~1 in 4", samplingPeriods)
	}
}

func TestBackoffDisabled(t *testing.T) {
	cfg := defaultCfg()
	cfg.SampleEveryPeriods = 0
	c := New(cfg)
	perPeriod := cfg.EPAccesses * cfg.EPsPerPeriod
	for period := 0; period < 8; period++ {
		drive(c, perPeriod, map[modes.Mode]bool{modes.LowLat: true})
		if !c.sampling {
			t.Fatal("sampling must stay on when backoff is disabled")
		}
	}
}

func TestWinnerChangeRearmsSampling(t *testing.T) {
	cfg := defaultCfg()
	cfg.StableBeforeBackoff = 1
	cfg.SampleEveryPeriods = 8
	c := New(cfg)
	perPeriod := cfg.EPAccesses * cfg.EPsPerPeriod
	// Stabilize on LowLat.
	for period := 0; period < 4; period++ {
		drive(c, perPeriod, map[modes.Mode]bool{modes.LowLat: true})
	}
	if c.stablePeriods == 0 {
		t.Fatal("should have stabilized")
	}
	// Force a winner change during a sampling period: make HighCap hit
	// and LowLat miss until the decision flips.
	for period := 0; period < 16 && c.CurrentMode() != modes.HighCap; period++ {
		c.RecordTolerance(100) // hide SC latency
		drive(c, perPeriod, map[modes.Mode]bool{modes.HighCap: true})
	}
	if c.CurrentMode() != modes.HighCap {
		t.Fatal("phase change never detected — backoff starved adaptation")
	}
}

func TestWarmupValidation(t *testing.T) {
	cfg := defaultCfg()
	cfg.WarmupEPs = cfg.LearningStartEP + 1
	defer func() {
		if recover() == nil {
			t.Fatal("warmup before period start must panic")
		}
	}()
	New(cfg)
}
