package core

import (
	"math"
	"testing"
	"testing/quick"

	"lattecc/internal/modes"
)

// testCfg uses the paper-literal layout (learning first, no warmup,
// dedicated sets follow in the adaptive phase) so the unit tests can
// reason about phase positions directly. The mid-period default layout
// has its own tests below.
func testCfg() Config {
	cfg := DefaultConfig(32)
	cfg.LearningStartEP = 0
	cfg.WarmupEPs = 0
	return cfg
}

func TestDedicatedSetLayout(t *testing.T) {
	c := New(testCfg())
	counts := map[modes.Mode]int{}
	for _, d := range c.dedicated {
		if d >= 0 {
			counts[modes.Mode(d)]++
		}
	}
	for _, m := range modes.All() {
		if counts[m] != 4 {
			t.Fatalf("mode %v has %d dedicated sets, want 4", m, counts[m])
		}
	}
}

func TestLearningPhaseForcesDedicatedModes(t *testing.T) {
	c := New(testCfg())
	for set, d := range c.dedicated {
		want := c.winner
		if d >= 0 {
			want = modes.Mode(d)
		}
		if got := c.InsertMode(set); got != want {
			t.Fatalf("set %d: InsertMode = %v, want %v", set, got, want)
		}
	}
}

func TestFollowersUseWinnerAfterLearning(t *testing.T) {
	c := New(testCfg())
	// Drive one EP of accesses to leave the learning phase.
	for i := uint64(0); i < c.cfg.EPAccesses; i++ {
		c.RecordAccess(int(i)%c.cfg.NumSets, false, modes.None, 0, i)
	}
	if c.learning() {
		t.Fatal("should have left learning phase")
	}
	for set := range c.dedicated {
		if got := c.InsertMode(set); got != c.winner {
			t.Fatalf("adaptive phase set %d: %v != winner %v", set, got, c.winner)
		}
	}
}

// driveEP pushes one EP of accesses with the given per-mode hit behaviour.
// hitFor[m] makes accesses to mode-m dedicated sets hit; follower sets miss.
func driveEP(c *Controller, hitFor map[modes.Mode]bool) modes.Directive {
	var dir modes.Directive
	var n uint64
	for n < c.cfg.EPAccesses {
		for set := 0; set < c.cfg.NumSets && n < c.cfg.EPAccesses; set++ {
			hit := false
			lineMode := modes.None
			if d := c.dedicated[set]; d >= 0 {
				m := modes.Mode(d)
				hit = hitFor[m]
				lineMode = m
			}
			d := c.RecordAccess(set, hit, lineMode, 0, n)
			if d.FlushHighCap || d.RebuildHighCap {
				dir = d
			}
			n++
		}
	}
	return dir
}

func TestWinnerPicksHighHitModeUnderHighTolerance(t *testing.T) {
	cfg := testCfg()
	c := New(cfg)
	// High tolerance hides even SC's latency.
	for i := 0; i < 100; i++ {
		c.RecordTolerance(50)
	}
	// HighCap sets hit, others miss → SC has best sampled hit rate.
	driveEP(c, map[modes.Mode]bool{modes.HighCap: true})
	if c.winner != modes.HighCap {
		t.Fatalf("winner = %v, want HighCap (hits dominate, latency hidden)", c.winner)
	}
}

func TestWinnerAvoidsHighCapUnderLowTolerance(t *testing.T) {
	cfg := testCfg()
	cfg.MissLatencyInit = 20 // misses barely cost more than an SC hit
	c := New(cfg)
	c.RecordTolerance(0) // no tolerance at all
	// All modes hit equally — the only differentiator is hit latency.
	driveEP(c, map[modes.Mode]bool{modes.None: true, modes.LowLat: true, modes.HighCap: true})
	if c.winner != modes.None {
		t.Fatalf("winner = %v, want None (equal hits, zero tolerance)", c.winner)
	}
}

func TestLatteVsCMPDisagreeWhenToleranceMatters(t *testing.T) {
	// Same observations; LATTE-CC knows the pipeline hides 14 cycles, the
	// CMP decision does not. SC hits more; with tolerance its latency is
	// free, without it the extra 14 cycles must be paid on every hit.
	run := func(d Decision, tol float64) modes.Mode {
		cfg := testCfg()
		cfg.Decision = d
		cfg.MissLatencyInit = 40
		c := New(cfg)
		c.RecordTolerance(tol)
		// HighCap hits 100%, None hits too (so "fewest misses" alone
		// cannot separate LATTE from CMP — latency does).
		driveEP(c, map[modes.Mode]bool{modes.HighCap: true, modes.None: true, modes.LowLat: true})
		return c.CurrentMode()
	}
	if got := run(DecisionLatte, 20); got != modes.None {
		// All modes hit equally; with everything hidden the tie favours None.
		t.Fatalf("LATTE with equal hits: %v", got)
	}
	if got := run(DecisionCMP, 20); got != modes.None {
		t.Fatalf("CMP with equal hits: %v", got)
	}
}

func TestHitCountDecisionIgnoresLatency(t *testing.T) {
	cfg := testCfg()
	cfg.Decision = DecisionHitCount
	c := New(cfg)
	c.RecordTolerance(0) // would make LATTE avoid SC
	driveEP(c, map[modes.Mode]bool{modes.HighCap: true})
	if c.CurrentMode() != modes.HighCap {
		t.Fatalf("Adaptive-Hit-Count must chase hits: %v", c.CurrentMode())
	}
}

func TestLatteAvoidsSCButHitCountDoesNot(t *testing.T) {
	// The Figure 17 scenario: SC hits most, but with zero tolerance and a
	// cheap miss path, paying 14 cycles on every hit is worse than the
	// baseline's miss rate. LATTE-CC must decline SC; hit-count takes it.
	mk := func(d Decision) *Controller {
		cfg := testCfg()
		cfg.Decision = d
		cfg.MissLatencyInit = 10
		c := New(cfg)
		c.RecordTolerance(0)
		return c
	}
	hits := map[modes.Mode]bool{modes.HighCap: true}
	latte := mk(DecisionLatte)
	driveEP(latte, hits)
	hc := mk(DecisionHitCount)
	driveEP(hc, hits)
	if latte.CurrentMode() == modes.HighCap {
		t.Fatal("LATTE-CC should not pick SC at zero tolerance with cheap misses")
	}
	if hc.CurrentMode() != modes.HighCap {
		t.Fatalf("hit-count should pick SC, got %v", hc.CurrentMode())
	}
}

func TestPeriodRolloverFlushesAndResets(t *testing.T) {
	c := New(testCfg())
	total := c.cfg.EPAccesses * c.cfg.EPsPerPeriod
	var gotFlush bool
	for i := uint64(0); i < total; i++ {
		dir := c.RecordAccess(int(i)%c.cfg.NumSets, true, modes.None, 0, i)
		if dir.FlushHighCap && dir.RebuildHighCap {
			gotFlush = true
			if i != total-1 {
				t.Fatalf("flush at access %d, want only at period end %d", i, total-1)
			}
		}
	}
	if !gotFlush {
		t.Fatal("period end must request flush+rebuild")
	}
	if c.Periods() != 1 {
		t.Fatalf("periods = %d", c.Periods())
	}
	for _, m := range modes.All() {
		if c.hits[m] != 0 || c.inserts[m] != 0 {
			t.Fatal("counters must reset at period rollover")
		}
	}
	if !c.learning() {
		t.Fatal("new period must start in the learning phase")
	}
}

func TestCarryoverCountsHitsOneExtraEP(t *testing.T) {
	c := New(testCfg())
	// EP0 (learning): all misses in dedicated sets.
	driveEP(c, nil)
	insertsAfterLearning := c.inserts
	// EP1 (carryover): hits in HighCap sets must still count; new misses
	// must NOT count as inserts.
	before := c.hits[modes.HighCap]
	driveEP(c, map[modes.Mode]bool{modes.HighCap: true})
	if c.hits[modes.HighCap] <= before {
		t.Fatal("carryover EP must keep counting dedicated-set hits")
	}
	if c.inserts != insertsAfterLearning {
		t.Fatal("inserts must freeze after the learning phase")
	}
	// EP2: hits no longer counted.
	frozen := c.hits[modes.HighCap]
	driveEP(c, map[modes.Mode]bool{modes.HighCap: true})
	if c.hits[modes.HighCap] != frozen {
		t.Fatal("hit counting must stop after the carryover EP")
	}
}

func TestToleranceUpdatesPerEP(t *testing.T) {
	c := New(testCfg())
	for i := 0; i < 10; i++ {
		c.RecordTolerance(30)
	}
	if c.Tolerance() != 0 {
		t.Fatal("tolerance must only take effect at the EP boundary")
	}
	driveEP(c, nil)
	if got := c.Tolerance(); math.Abs(got-30) > 1e-9 {
		t.Fatalf("tolerance = %v, want 30", got)
	}
}

func TestQueueWaitObservation(t *testing.T) {
	c := New(testCfg())
	// HighCap hits with extra latency 20 = 14 decomp + 6 queue.
	for i := 0; i < 50; i++ {
		c.RecordAccess(0, true, modes.HighCap, 20, uint64(i))
	}
	if w := c.queueWait[modes.HighCap].Value(); math.Abs(w-6) > 1e-9 {
		t.Fatalf("queue wait = %v, want 6", w)
	}
	// hitLatency folds base + decomp + queue.
	want := float64(c.cfg.BaseHitLatency) + 14 + 6
	if got := c.hitLatency(modes.HighCap); math.Abs(got-want) > 1e-9 {
		t.Fatalf("hitLatency = %v, want %v", got, want)
	}
}

func TestAMATGPUEquation(t *testing.T) {
	// 100 hits at latency 10 with tolerance 4 → eff 6; 50 misses at 100.
	got := AMATGPU(100, 50, 10, 4, 100)
	want := (100*6.0 + 50*100.0) / 150.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("AMAT_GPU = %v, want %v", got, want)
	}
	// Tolerance exceeding hit latency clamps to zero, not negative.
	got = AMATGPU(100, 0, 10, 50, 100)
	if got != 0 {
		t.Fatalf("clamped AMAT = %v, want 0", got)
	}
	if AMATGPU(0, 0, 1, 1, 1) != 0 {
		t.Fatal("no accesses → AMAT 0")
	}
}

func TestAMATConventionalIsToleranceFree(t *testing.T) {
	if AMAT(10, 10, 8, 100) != AMATGPU(10, 10, 8, 0, 100) {
		t.Fatal("AMAT must equal AMAT_GPU with zero tolerance")
	}
}

func TestAMATMonotonicInToleranceQuick(t *testing.T) {
	f := func(hits, misses uint16, hitLat, tol1, tol2, missLat uint8) bool {
		t1, t2 := float64(tol1), float64(tol2)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		a1 := AMATGPU(uint64(hits), uint64(misses), float64(hitLat), t1, float64(missLat))
		a2 := AMATGPU(uint64(hits), uint64(misses), float64(hitLat), t2, float64(missLat))
		return a2 <= a1+1e-9 // more tolerance never increases AMAT_GPU
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecisionLogAndSwitchCounting(t *testing.T) {
	c := New(testCfg())
	driveEP(c, map[modes.Mode]bool{modes.LowLat: true}) // LowLat wins EP1
	if len(c.EPLog()) != 1 {
		t.Fatalf("EP log length %d, want 1", len(c.EPLog()))
	}
	total := c.EPsInMode()
	var sum uint64
	for _, n := range total {
		sum += n
	}
	if sum != c.decisions {
		t.Fatal("EPsInMode must sum to decision count")
	}
}

func TestMissLatencySeedAndUpdate(t *testing.T) {
	c := New(testCfg())
	if c.missLatency() != c.cfg.MissLatencyInit {
		t.Fatal("seed miss latency expected before observations")
	}
	c.RecordMissLatency(400)
	if c.missLatency() != 400 {
		t.Fatalf("first observation should set the EWMA: %v", c.missLatency())
	}
}

func TestConfigValidationPanics(t *testing.T) {
	cases := []Config{
		{NumSets: 4, EPAccesses: 256, EPsPerPeriod: 10, LearningEPs: 1, DedicatedSetsPerMode: 4},
		{NumSets: 32, EPAccesses: 0, EPsPerPeriod: 10, LearningEPs: 1, DedicatedSetsPerMode: 4},
		{NumSets: 32, EPAccesses: 256, EPsPerPeriod: 2, LearningEPs: 2, CarryoverEPs: 2, DedicatedSetsPerMode: 4},
	}
	for i, cfg := range cases {
		func() {
			defer func() { recover() }()
			New(cfg)
			t.Errorf("case %d should panic", i)
		}()
	}
}

func TestNoSamplesKeepsBaseline(t *testing.T) {
	cfg := testCfg()
	c := New(cfg)
	// An EP where no dedicated set is ever touched: all accesses go to one
	// follower set.
	follower := -1
	for s, d := range c.dedicated {
		if d < 0 {
			follower = s
			break
		}
	}
	for i := uint64(0); i < cfg.EPAccesses; i++ {
		c.RecordAccess(follower, false, modes.None, 0, i)
	}
	if c.CurrentMode() != modes.None {
		t.Fatalf("with no samples the controller must hold the baseline, got %v", c.CurrentMode())
	}
}

// TestKernelStartDefaultOnlyTags pins the paper-model default: the
// controller state machine runs across kernel boundaries (EP state, the
// sampling counters, and the tolerance accumulator all survive); the
// boundary only changes the kernel tag on subsequent EP-log entries.
func TestKernelStartDefaultOnlyTags(t *testing.T) {
	c := New(testCfg())
	driveEP(c, map[modes.Mode]bool{modes.LowLat: true})
	c.RecordTolerance(12)
	ep, hits, inserts := c.epInPeriod, c.hits, c.inserts
	tolN := c.tolEP.Count()

	c.KernelStart(1)
	if c.epInPeriod != ep || c.hits != hits || c.inserts != inserts || c.tolEP.Count() != tolN {
		t.Fatal("default KernelStart mutated controller state beyond the kernel tag")
	}
	if c.curKernel != 1 {
		t.Fatalf("curKernel = %d, want 1", c.curKernel)
	}
}

// TestKernelBoundaryResetRestartsPeriod pins the opt-in flush-at-launch
// model: entering a different kernel restarts the period state machine
// (EP position, sampling window, backoff, counters, tolerance samples)
// while retaining the incumbent winner; re-announcing the same kernel is
// a no-op.
func TestKernelBoundaryResetRestartsPeriod(t *testing.T) {
	cfg := testCfg()
	cfg.KernelBoundaryReset = true
	c := New(cfg)
	driveEP(c, map[modes.Mode]bool{modes.LowLat: true})
	c.RecordTolerance(30)
	if c.winner != modes.LowLat {
		t.Fatalf("setup: winner = %v, want LowLat", c.winner)
	}
	// Put the backoff machinery in a non-default state so the reset is
	// observable on every field it promises to touch.
	c.sampling = false
	c.stablePeriods = 5

	// Same kernel index: nothing resets.
	ep := c.epInPeriod
	c.KernelStart(0)
	if c.epInPeriod != ep || c.sampling || c.stablePeriods != 5 || c.tolEP.Count() == 0 {
		t.Fatal("KernelStart with the current kernel index must be a no-op")
	}

	c.KernelStart(1)
	if c.epInPeriod != 0 {
		t.Errorf("epInPeriod = %d, want 0 after boundary reset", c.epInPeriod)
	}
	if !c.sampling {
		t.Error("sampling window not reopened at kernel boundary")
	}
	if c.stablePeriods != 0 {
		t.Errorf("stablePeriods = %d, want 0 (backoff reset)", c.stablePeriods)
	}
	for m := range c.hits {
		if c.hits[m] != 0 || c.inserts[m] != 0 {
			t.Fatalf("mode %d counters not cleared: hits=%d inserts=%d", m, c.hits[m], c.inserts[m])
		}
	}
	if c.tolEP.Count() != 0 {
		t.Error("tolerance accumulator not cleared at kernel boundary")
	}
	if c.winner != modes.LowLat {
		t.Errorf("winner = %v, want the incumbent LowLat retained across the reset", c.winner)
	}
	if c.curKernel != 1 {
		t.Errorf("curKernel = %d, want 1", c.curKernel)
	}
}
