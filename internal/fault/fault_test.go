package fault

import "testing"

func TestArmHitDisarm(t *testing.T) {
	defer Reset()

	if Hit("x") {
		t.Fatal("unarmed point fired")
	}
	Arm("x", 2)
	if !Hit("x") || !Hit("x") {
		t.Fatal("armed point did not fire twice")
	}
	if Hit("x") {
		t.Fatal("point fired beyond its shot count")
	}

	Arm("y", -1)
	for i := 0; i < 5; i++ {
		if !Hit("y") {
			t.Fatal("unbounded point stopped firing")
		}
	}
	Disarm("y")
	if Hit("y") {
		t.Fatal("disarmed point fired")
	}
}

func TestResetClearsAll(t *testing.T) {
	Arm("a", -1)
	Arm("b", 3)
	Reset()
	if Hit("a") || Hit("b") {
		t.Fatal("Reset left a point armed")
	}
}

func TestErrorfTagsInjection(t *testing.T) {
	err := Errorf("codec.decode", "boom %d", 7)
	want := "injected fault codec.decode: boom 7"
	if err.Error() != want {
		t.Fatalf("Errorf = %q, want %q", err, want)
	}
}
