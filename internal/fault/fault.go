// Package fault is LATTE-CC's fault-injection registry: named hook
// points in production code ask Hit whether an injected fault should
// fire, and tests (or the LATTECC_FAULT environment variable) arm those
// points with a bounded shot count. The conformance layer uses it to
// prove the daemon and harness degrade gracefully — a codec decode
// error, a full admission queue, a cancelled run — instead of wedging
// or corrupting the result cache.
//
// Hook points currently wired:
//
//	codec.decode          every codec's Decompress returns an error
//	server.queue-overflow handleSubmit behaves as if the queue is full
//	server.cancel-run     a job's context is cancelled at execution start
//
// Arm points programmatically (fault.Arm("codec.decode", 1)) or at
// process start: LATTECC_FAULT=codec.decode:1,server.queue-overflow
// (a missing :count arms the point permanently).
//
// The disarmed fast path is one atomic load, so production code may
// call Hit unconditionally on hot-ish paths. Faults are process-global:
// tests that arm points must not run in parallel with each other and
// must Reset when done.
package fault

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// armed is the fast-path gate: true while any point has shots left.
var armed atomic.Bool

var (
	mu sync.Mutex //lint:mutex nocalls
	//lint:guards mu
	points = map[string]int{} // point -> remaining shots (-1 = unbounded)
)

func init() {
	spec := os.Getenv("LATTECC_FAULT")
	if spec == "" {
		return
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, countStr, hasCount := strings.Cut(part, ":")
		count := -1
		if hasCount {
			n, err := strconv.Atoi(countStr)
			if err != nil || n < 0 {
				continue // malformed specs are ignored, never fatal
			}
			count = n
		}
		Arm(name, count)
	}
}

// Arm schedules the named point to fire times times (times < 0 means
// every time until Disarm). Arming with times == 0 disarms the point.
func Arm(name string, times int) {
	mu.Lock()
	defer mu.Unlock()
	if times == 0 {
		delete(points, name)
	} else {
		points[name] = times
	}
	armed.Store(len(points) > 0)
}

// Disarm clears one point.
func Disarm(name string) { Arm(name, 0) }

// Reset clears every armed point (test cleanup).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]int{}
	armed.Store(false)
}

// Hit reports whether the named point should fire now, consuming one
// shot when it does. Disarmed cost is a single atomic load.
func Hit(name string) bool {
	if !armed.Load() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	n, ok := points[name]
	if !ok {
		return false
	}
	if n > 0 {
		n--
		if n == 0 {
			delete(points, name)
		} else {
			points[name] = n
		}
		armed.Store(len(points) > 0)
	}
	return true
}

// Errorf builds the error an armed hook point should return, tagged so
// tests can tell an injected failure from a genuine one.
func Errorf(name, format string, args ...interface{}) error {
	return fmt.Errorf("injected fault %s: %s", name, fmt.Sprintf(format, args...))
}
