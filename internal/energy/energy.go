// Package energy implements the event-based GPU energy model used for the
// paper's Figures 6(b), 13, and 14. It substitutes for GPUWattch (see
// DESIGN.md): each architectural event carries a per-event energy, static
// power integrates over the run's cycle count, and the codec energies are
// the paper's own Section IV-C numbers (BDI 0.192/0.056 nJ, SC 0.42/0.336
// nJ per compression/decompression).
//
// Absolute joules are not the target — the figures report energy
// normalized to the uncompressed baseline, which depends only on the
// relative component weights. The defaults put the breakdown near a
// GPGPU-typical split (roughly: static ~35%, SM dynamic ~30%, memory
// hierarchy + data movement ~35%).
package energy

import (
	"lattecc/internal/modes"
	"lattecc/internal/sim"
)

// Params holds per-event energies in nanojoules and static power terms.
type Params struct {
	// InstEnergy is the SM dynamic energy per warp instruction (fetch,
	// decode, register file, and 32 lanes of execution).
	InstEnergy float64
	// L1Access is the energy per L1 data cache access.
	L1Access float64
	// L2Access is the energy per L2 access.
	L2Access float64
	// DRAMAccess is the energy per DRAM transaction (row + I/O).
	DRAMAccess float64
	// NoCPerByte is the interconnect energy per byte moved between the
	// SMs and L2 (data movement energy).
	NoCPerByte float64
	// DRAMBusPerByte is the off-chip bus energy per byte.
	DRAMBusPerByte float64

	// CompressEnergy / DecompressEnergy per event, by mode
	// (Section IV-C: BDI 0.192/0.056 nJ, SC 0.42/0.336 nJ).
	CompressEnergy   [modes.NumModes]float64
	DecompressEnergy [modes.NumModes]float64

	// StaticPerCycle is the whole-GPU leakage + clock energy per cycle.
	StaticPerCycle float64
}

// DefaultParams returns the calibrated model.
func DefaultParams() Params {
	return Params{
		InstEnergy:     1.0,
		L1Access:       0.6,
		L2Access:       2.5,
		DRAMAccess:     25,
		NoCPerByte:     0.04,
		DRAMBusPerByte: 0.1,
		CompressEnergy: [modes.NumModes]float64{
			modes.LowLat:  0.192,
			modes.HighCap: 0.42,
		},
		DecompressEnergy: [modes.NumModes]float64{
			modes.LowLat:  0.056,
			modes.HighCap: 0.336,
		},
		StaticPerCycle: 28.6, // ~40W at 1.4GHz
	}
}

// Breakdown is the per-component energy of one run, in nanojoules.
type Breakdown struct {
	Exec       float64 // SM dynamic execution energy
	L1         float64
	L2         float64
	DRAM       float64
	NoC        float64 // SM<->L2 data movement
	DRAMBus    float64 // off-chip data movement
	Compress   float64
	Decompress float64
	Static     float64
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 {
	return b.Exec + b.L1 + b.L2 + b.DRAM + b.NoC + b.DRAMBus +
		b.Compress + b.Decompress + b.Static
}

// DataMovement returns the data-movement component (the Figure 14
// "data movement" category: interconnect plus off-chip bus energy).
func (b Breakdown) DataMovement() float64 { return b.NoC + b.DRAMBus }

// Evaluate computes the energy breakdown of a simulation result.
func Evaluate(res sim.Result, p Params) Breakdown {
	var b Breakdown
	b.Exec = float64(res.Instructions) * p.InstEnergy
	b.L1 = float64(res.Cache.Accesses) * p.L1Access
	b.L2 = float64(res.Mem.L2Accesses) * p.L2Access
	b.DRAM = float64(res.Mem.DRAMReads+res.Mem.DRAMWrites) * p.DRAMAccess
	b.NoC = float64(res.Mem.BytesL1L2) * p.NoCPerByte
	b.DRAMBus = float64(res.Mem.BytesL2DRAM) * p.DRAMBusPerByte
	for _, m := range modes.All() {
		if m == modes.None {
			continue
		}
		b.Compress += float64(res.Cache.InsertsByMode[m]) * p.CompressEnergy[m]
		b.Decompress += float64(res.Cache.HitsByMode[m]) * p.DecompressEnergy[m]
	}
	b.Static = float64(res.Cycles) * p.StaticPerCycle
	return b
}

// Normalized returns this breakdown's total relative to a baseline run's
// total (the y-axis of Figures 6(b) and 13).
func Normalized(b, baseline Breakdown) float64 {
	base := baseline.Total()
	if base == 0 {
		return 0
	}
	return b.Total() / base
}

// SavingsBreakdown decomposes the energy reduction of a run relative to
// the baseline into the Figure 14 categories, each expressed as a
// fraction of the baseline total (positive = saving).
type SavingsBreakdown struct {
	Static       float64 // runtime reduction → less leakage
	DataMovement float64 // NoC + off-chip bytes
	MemHierarchy float64 // L1 + L2 + DRAM access energy
	Exec         float64
	CodecCost    float64 // negative saving: compression/decompression cost
	Net          float64
}

// Savings computes the Figure 14 decomposition.
func Savings(run, baseline Breakdown) SavingsBreakdown {
	base := baseline.Total()
	if base == 0 {
		return SavingsBreakdown{}
	}
	s := SavingsBreakdown{
		Static:       (baseline.Static - run.Static) / base,
		DataMovement: (baseline.DataMovement() - run.DataMovement()) / base,
		MemHierarchy: (baseline.L1 + baseline.L2 + baseline.DRAM - run.L1 - run.L2 - run.DRAM) / base,
		Exec:         (baseline.Exec - run.Exec) / base,
		CodecCost:    -(run.Compress + run.Decompress - baseline.Compress - baseline.Decompress) / base,
	}
	s.Net = s.Static + s.DataMovement + s.MemHierarchy + s.Exec + s.CodecCost
	return s
}

// Add accumulates another breakdown into s, category by category. Callers
// averaging over a workload suite (Figure 14's MEAN row) sum with Add and
// divide with Scale, keeping metric arithmetic inside this package.
func (s *SavingsBreakdown) Add(o SavingsBreakdown) {
	s.Static += o.Static
	s.DataMovement += o.DataMovement
	s.MemHierarchy += o.MemHierarchy
	s.Exec += o.Exec
	s.CodecCost += o.CodecCost
	s.Net += o.Net
}

// Scale returns s with every category multiplied by f.
func (s SavingsBreakdown) Scale(f float64) SavingsBreakdown {
	return SavingsBreakdown{
		Static:       s.Static * f,
		DataMovement: s.DataMovement * f,
		MemHierarchy: s.MemHierarchy * f,
		Exec:         s.Exec * f,
		CodecCost:    s.CodecCost * f,
		Net:          s.Net * f,
	}
}
