package energy

import (
	"math"
	"testing"
	"testing/quick"

	"lattecc/internal/cache"
	"lattecc/internal/mem"
	"lattecc/internal/modes"
	"lattecc/internal/sim"
)

func sampleResult() sim.Result {
	var cs cache.Stats
	cs.Accesses = 1000
	cs.InsertsByMode[modes.LowLat] = 100
	cs.InsertsByMode[modes.HighCap] = 50
	cs.HitsByMode[modes.LowLat] = 400
	cs.HitsByMode[modes.HighCap] = 200
	return sim.Result{
		Cycles:       10000,
		Instructions: 5000,
		Cache:        cs,
		Mem: mem.Stats{
			L2Accesses:  300,
			DRAMReads:   60,
			DRAMWrites:  20,
			BytesL1L2:   300 * 128,
			BytesL2DRAM: 80 * 128,
		},
	}
}

func TestEvaluateComponents(t *testing.T) {
	p := DefaultParams()
	b := Evaluate(sampleResult(), p)
	if b.Exec != 5000*p.InstEnergy {
		t.Errorf("Exec = %v", b.Exec)
	}
	if b.L1 != 1000*p.L1Access {
		t.Errorf("L1 = %v", b.L1)
	}
	if b.DRAM != 80*p.DRAMAccess {
		t.Errorf("DRAM = %v", b.DRAM)
	}
	wantComp := 100*p.CompressEnergy[modes.LowLat] + 50*p.CompressEnergy[modes.HighCap]
	if math.Abs(b.Compress-wantComp) > 1e-9 {
		t.Errorf("Compress = %v, want %v", b.Compress, wantComp)
	}
	wantDec := 400*p.DecompressEnergy[modes.LowLat] + 200*p.DecompressEnergy[modes.HighCap]
	if math.Abs(b.Decompress-wantDec) > 1e-9 {
		t.Errorf("Decompress = %v, want %v", b.Decompress, wantDec)
	}
	if b.Static != 10000*p.StaticPerCycle {
		t.Errorf("Static = %v", b.Static)
	}
	sum := b.Exec + b.L1 + b.L2 + b.DRAM + b.NoC + b.DRAMBus + b.Compress + b.Decompress + b.Static
	if math.Abs(b.Total()-sum) > 1e-9 {
		t.Errorf("Total = %v, want %v", b.Total(), sum)
	}
}

func TestCodecEnergiesMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.CompressEnergy[modes.LowLat] != 0.192 || p.DecompressEnergy[modes.LowLat] != 0.056 {
		t.Error("BDI energies must match Section IV-C1")
	}
	if p.CompressEnergy[modes.HighCap] != 0.42 || p.DecompressEnergy[modes.HighCap] != 0.336 {
		t.Error("SC energies must match Section IV-C2")
	}
}

func TestNormalized(t *testing.T) {
	p := DefaultParams()
	res := sampleResult()
	b := Evaluate(res, p)
	if n := Normalized(b, b); math.Abs(n-1) > 1e-12 {
		t.Fatalf("self-normalized = %v", n)
	}
	// A run with half the cycles should consume less total energy.
	fast := res
	fast.Cycles = res.Cycles / 2
	bf := Evaluate(fast, p)
	if Normalized(bf, b) >= 1 {
		t.Fatal("shorter run must normalize below 1")
	}
	if Normalized(b, Breakdown{}) != 0 {
		t.Fatal("zero baseline must return 0")
	}
}

func TestSavingsDecompositionSumsToNet(t *testing.T) {
	f := func(cycScale, memScale uint8) bool {
		p := DefaultParams()
		base := Evaluate(sampleResult(), p)
		run := sampleResult()
		run.Cycles = run.Cycles * uint64(cycScale%100+1) / 100
		run.Mem.DRAMReads = run.Mem.DRAMReads * uint64(memScale%100+1) / 100
		rb := Evaluate(run, p)
		s := Savings(rb, base)
		want := (base.Total() - rb.Total()) / base.Total()
		return math.Abs(s.Net-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSavingsSignConventions(t *testing.T) {
	p := DefaultParams()
	base := Evaluate(sampleResult(), p)
	// A run identical to baseline but with codec activity has a negative
	// codec "saving" and zero elsewhere.
	run := sampleResult()
	run.Cache.InsertsByMode[modes.HighCap] += 1000
	rb := Evaluate(run, p)
	s := Savings(rb, base)
	if s.CodecCost >= 0 {
		t.Fatalf("extra codec work must show as negative saving, got %v", s.CodecCost)
	}
	if s.Static != 0 || s.Exec != 0 {
		t.Fatal("untouched components must show zero saving")
	}
}

func TestSavingsZeroBaseline(t *testing.T) {
	if s := Savings(Breakdown{}, Breakdown{}); s != (SavingsBreakdown{}) {
		t.Fatal("zero baseline must yield zero breakdown")
	}
}

func TestDataMovement(t *testing.T) {
	b := Breakdown{NoC: 3, DRAMBus: 4}
	if b.DataMovement() != 7 {
		t.Fatal("data movement must sum NoC and bus energy")
	}
}
