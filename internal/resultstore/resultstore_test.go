package resultstore

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lattecc/internal/harness"
	"lattecc/internal/modes"
	"lattecc/internal/sim"
	"lattecc/internal/stats"
)

// testResult hand-builds a result exercising every serialized field:
// kernels, EP logs, per-mode arrays, and both sampled series (including
// non-trivial float bit patterns).
func testResult(workload string) sim.Result {
	var res sim.Result
	res.Policy = "LATTE-CC"
	res.Workload = workload
	res.Cycles = 123_456
	res.Instructions = 987_654
	res.Cache.Accesses = 1000
	res.Cache.Hits = 700
	res.Cache.Misses = 300
	res.Cache.CompressedHits = 250
	res.Cache.DecompWait = 41
	res.Cache.DecompBusy = 42
	res.Cache.DecompBufferHits = 43
	res.Cache.Evictions = 44
	res.Cache.Fills = 45
	res.Cache.FlushedLines = 46
	res.Cache.WriteExpansions = 47
	res.Cache.UncompressedSize = 128 * 1024
	res.Cache.CompressedSize = 77 * 1024
	for m := 0; m < modes.NumModes; m++ {
		res.Cache.InsertsByMode[m] = uint64(100 + m)
		res.Cache.HitsByMode[m] = uint64(200 + m)
		res.Cache.SubBlocksByMode[m] = uint64(300 + m)
		res.ModeEPs[m] = uint64(400 + m)
	}
	res.Mem.L2Accesses = 11
	res.Mem.L2Hits = 12
	res.Mem.L2Misses = 13
	res.Mem.L2Writes = 14
	res.Mem.DRAMReads = 15
	res.Mem.DRAMWrites = 16
	res.Mem.BytesL1L2 = 17
	res.Mem.BytesL2DRAM = 18
	res.Kernels = []sim.KernelResult{
		{Name: "k0", Cycles: 5000, Start: 0},
		{Name: "k1", Cycles: 7000, Start: 5000},
	}
	res.LoadTxns = 800
	res.StoreTxns = 200
	res.MSHRStallCycles = 55
	res.Switches = 9
	res.EPLog = []modes.Mode{modes.None, modes.LowLat, modes.HighCap, modes.LowLat}
	res.EPKernels = []int32{0, 0, 1, 1}
	tol := stats.NewSeries("tolerance", 64)
	cap := stats.NewSeries("capacity", 64)
	for i := 0; i < 8; i++ {
		tol.Add(uint64(i*512), float64(i)*1.25+0.1)
		cap.Add(uint64(i*512), 16384.0/float64(i+1))
	}
	res.ToleranceSeries = tol
	res.CapacitySeries = cap
	return res
}

func testKey(workload string) harness.StoreKey {
	return harness.StoreKey{
		Fingerprint: 0xdeadbeefcafef00d,
		Workload:    workload,
		Policy:      harness.LatteCC,
		Variant:     harness.Variant{SampleSeries: true, ExtraHitLatency: 3},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	k := testKey("SS")
	res := testResult("SS")
	raw := Encode(k, res)
	dk, dec, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if dk != k {
		t.Fatalf("key round-trip: got %+v, want %+v", dk, k)
	}
	if got, want := dec.StateHash(), res.StateHash(); got != want {
		t.Fatalf("StateHash round-trip: got 0x%016x, want 0x%016x", got, want)
	}
	// Series restore must be point-exact (bit-identical floats).
	for i, pair := range [][2]*stats.Series{
		{res.ToleranceSeries, dec.ToleranceSeries},
		{res.CapacitySeries, dec.CapacitySeries},
	} {
		if !reflect.DeepEqual(pair[0].Points(), pair[1].Points()) {
			t.Errorf("series %d points differ after round-trip", i)
		}
		if pair[0].Name != pair[1].Name {
			t.Errorf("series %d name: got %q want %q", i, pair[1].Name, pair[0].Name)
		}
	}
	// Everything outside the series pointers must be identical field for
	// field, not merely hash-equal.
	a, b := res, dec
	a.ToleranceSeries, a.CapacitySeries = nil, nil
	b.ToleranceSeries, b.CapacitySeries = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("result round-trip differs:\n got %+v\nwant %+v", b, a)
	}
}

func TestEncodeDecodeNilSeriesAndEmptySlices(t *testing.T) {
	k := testKey("BO")
	res := testResult("BO")
	res.ToleranceSeries, res.CapacitySeries = nil, nil
	res.Kernels, res.EPLog, res.EPKernels = nil, nil, nil
	raw := Encode(k, res)
	_, dec, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got, want := dec.StateHash(), res.StateHash(); got != want {
		t.Fatalf("StateHash: got 0x%016x, want 0x%016x", got, want)
	}
	if dec.ToleranceSeries != nil || dec.CapacitySeries != nil {
		t.Fatal("nil series must stay nil")
	}
}

func TestStoreSaveLoad(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("SS")
	res := testResult("SS")

	if _, ok := st.Load(k); ok {
		t.Fatal("empty store must miss")
	}
	st.Save(k, res)
	got, ok := st.Load(k)
	if !ok {
		t.Fatal("saved entry must load")
	}
	if got.StateHash() != res.StateHash() {
		t.Fatalf("loaded StateHash 0x%016x != saved 0x%016x", got.StateHash(), res.StateHash())
	}
	c := st.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Saves != 1 || c.Corrupt != 0 || c.Entries != 1 {
		t.Fatalf("counters after miss+save+hit: %+v", c)
	}
	if c.Bytes <= 0 {
		t.Fatalf("byte accounting: %+v", c)
	}
}

func TestWarmStart(t *testing.T) {
	dir := t.TempDir()
	st1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"SS", "BO", "KM"}
	for _, w := range keys {
		st1.Save(testKey(w), testResult(w))
	}

	// A second store over the same directory (the restarted daemon) must
	// index every entry at open and serve them without re-saving.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c := st2.Counters(); c.Entries != len(keys) || c.Saves != 0 {
		t.Fatalf("warm-start index: %+v", c)
	}
	for _, w := range keys {
		got, ok := st2.Load(testKey(w))
		if !ok {
			t.Fatalf("warm-start load %s missed", w)
		}
		if want := testResult(w).StateHash(); got.StateHash() != want {
			t.Fatalf("warm-start %s: StateHash 0x%016x want 0x%016x", w, got.StateHash(), want)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	// All three entries have the same size (same-shape results, equal
	// name lengths), so a bound of 2.5 entries holds exactly two.
	size := int64(len(Encode(testKey("W1"), testResult("W1"))))
	dir := t.TempDir()
	st, err := Open(dir, Options{MaxBytes: 2*size + size/2})
	if err != nil {
		t.Fatal(err)
	}
	st.Save(testKey("W1"), testResult("W1"))
	st.Save(testKey("W2"), testResult("W2"))
	if _, ok := st.Load(testKey("W1")); !ok { // bump W1: W2 is now LRU
		t.Fatal("W1 must load")
	}
	st.Save(testKey("W3"), testResult("W3"))

	c := st.Counters()
	if c.Evictions != 1 || c.Entries != 2 {
		t.Fatalf("after spill: %+v", c)
	}
	if _, ok := st.Load(testKey("W2")); ok {
		t.Fatal("W2 was LRU and must be evicted")
	}
	for _, w := range []string{"W1", "W3"} {
		if _, ok := st.Load(testKey(w)); !ok {
			t.Fatalf("%s must survive the spill", w)
		}
	}
	// The evicted file is actually gone from disk.
	if _, err := os.Stat(filepath.Join(dir, KeyHex(testKey("W2"))+suffix)); !os.IsNotExist(err) {
		t.Fatalf("evicted entry still on disk (err=%v)", err)
	}
}

func TestNewestEntryRetainedOverBudget(t *testing.T) {
	st, err := Open(t.TempDir(), Options{MaxBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	st.Save(testKey("SS"), testResult("SS"))
	if _, ok := st.Load(testKey("SS")); !ok {
		t.Fatal("sole entry must be retained even over budget")
	}
}

func TestOpenEvictsPreexistingOverBudget(t *testing.T) {
	dir := t.TempDir()
	st1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"W1", "W2", "W3", "W4"} {
		st1.Save(testKey(w), testResult(w))
	}
	size := int64(len(Encode(testKey("W1"), testResult("W1"))))
	st2, err := Open(dir, Options{MaxBytes: 2*size + size/2})
	if err != nil {
		t.Fatal(err)
	}
	if c := st2.Counters(); c.Entries != 2 || c.Bytes > 2*size+size/2 {
		t.Fatalf("open over budget must evict down to bound: %+v", c)
	}
}

func TestKeyMismatchFailsClosed(t *testing.T) {
	// A valid entry filed under another key's filename (the shape of a
	// 64-bit filename-hash collision, or tampering): the bytes decode
	// cleanly, but the key block disagrees with the request, so Load must
	// refuse it rather than serve another run's result.
	dir := t.TempDir()
	kA, kB := testKey("AA"), testKey("BB")
	raw := Encode(kA, testResult("AA"))
	if err := os.WriteFile(filepath.Join(dir, KeyHex(kB)+suffix), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Load(kB); ok {
		t.Fatal("entry with mismatched key must not serve")
	}
	if c := st.Counters(); c.Corrupt != 1 {
		t.Fatalf("key mismatch must count as corrupt: %+v", c)
	}
}

func TestPutRawGetRaw(t *testing.T) {
	k := testKey("SS")
	res := testResult("SS")
	stA, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	stA.Save(k, res)

	raw, ok := stA.GetRaw(KeyHex(k))
	if !ok {
		t.Fatal("GetRaw must serve a saved entry")
	}
	if _, ok := stA.GetRaw("0123456789abcdef"); ok {
		t.Fatal("GetRaw of an absent key must miss")
	}
	if _, ok := stA.GetRaw("../../../etc/passwd"); ok {
		t.Fatal("GetRaw must reject non-keyhex names")
	}

	// The peer side: PutRaw validates and stores, then serves via Load.
	stB, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := stB.PutRaw(k, raw); err != nil {
		t.Fatalf("PutRaw of a valid entry: %v", err)
	}
	got, ok := stB.Load(k)
	if !ok || got.StateHash() != res.StateHash() {
		t.Fatalf("peer-installed entry must load with the same hash (ok=%v)", ok)
	}

	// A corrupted peer payload must be rejected before touching disk.
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0xFF
	if err := stB.PutRaw(k, bad); err == nil {
		t.Fatal("PutRaw must reject corrupt bytes")
	}
	// And a valid payload for the wrong key must be rejected too.
	other := Encode(testKey("ZZ"), testResult("ZZ"))
	if err := stB.PutRaw(k, other); err == nil {
		t.Fatal("PutRaw must reject a mismatched key")
	}
	if c := stB.Counters(); c.Corrupt != 2 {
		t.Fatalf("rejected PutRaws must count corrupt: %+v", c)
	}
}

func TestConcurrentSaveLoad(t *testing.T) {
	st, err := Open(t.TempDir(), Options{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			names := []string{"SS", "BO", "KM", "HS"}
			for i := 0; i < 20; i++ {
				w := names[(g+i)%len(names)]
				st.Save(testKey(w), testResult(w))
				if got, ok := st.Load(testKey(w)); ok {
					if want := testResult(w).StateHash(); got.StateHash() != want {
						t.Errorf("concurrent load %s: wrong hash", w)
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if c := st.Counters(); c.Corrupt != 0 {
		t.Fatalf("concurrent use must not manufacture corruption: %+v", c)
	}
}
