package resultstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"lattecc/internal/harness"
	"lattecc/internal/sim"
)

// suffix is the on-disk entry extension: <16-hex-keyhash>.lcr.
const suffix = ".lcr"

// Options configures a Store.
type Options struct {
	// MaxBytes bounds the total size of all entries; <= 0 is unbounded.
	// When a write pushes the store past the bound, least-recently-used
	// entries are deleted until it fits again — except the newest entry,
	// which is always retained (a store that immediately evicts what it
	// just learned would never serve anything).
	MaxBytes int64
}

// Counters is a snapshot of the store's activity, rendered on the
// daemon's /metrics and printed by `latteclient store`.
type Counters struct {
	Hits      uint64 // Loads served from a validated entry
	Misses    uint64 // Loads with no entry on disk
	Corrupt   uint64 // entries discarded by validation (also counted nowhere else)
	Evictions uint64 // entries deleted by the LRU size bound
	Saves     uint64 // entries written (Save and validated PutRaw)
	Entries   int    // entries currently indexed
	Bytes     int64  // total size of indexed entries
}

// Store is a directory of self-validating result entries. It implements
// harness.Store: Load returns only results whose recomputed StateHash
// matches the stored one; anything else is discarded and reported as a
// miss (fail closed — the caller re-simulates). All methods are safe for
// concurrent use.
//
// Locking contract (machine-checked by lattelint): mu guards only the
// entry index and its byte/clock accounting, never file I/O — reads and
// writes of entry files happen with mu released, so a slow disk never
// serializes unrelated keys. The filesystem itself is made safe by
// write-to-temp + rename (entries appear atomically) and by tolerating
// ENOENT on read (a concurrent eviction is just a miss).
type Store struct {
	dir      string
	maxBytes int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	corrupt   atomic.Uint64
	evictions atomic.Uint64
	saves     atomic.Uint64

	mu sync.Mutex //lint:mutex nocalls
	//lint:guards mu
	entries map[string]*entryMeta
	//lint:guards mu
	total int64
	//lint:guards mu
	clock uint64 // LRU tick; higher = more recently used
}

// entryMeta is the in-memory index record for one on-disk entry.
type entryMeta struct {
	size    int64
	lastUse uint64
}

// Open creates (if needed) and indexes a store directory. The warm-start
// scan only stats entries — validation is deferred to first Load, so a
// daemon restart over a large store is immediate. Pre-existing entries
// enter the LRU order by modification time; if the directory already
// exceeds MaxBytes, the oldest entries are evicted before Open returns.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: open %s: %w", dir, err)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("resultstore: scan %s: %w", dir, err)
	}
	type scanned struct {
		name  string
		size  int64
		mtime int64
	}
	var found []scanned
	for _, de := range des {
		name, ok := strings.CutSuffix(de.Name(), suffix)
		if !ok || !validKeyHex(name) || de.IsDir() {
			continue // temp files, foreign files
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with an eviction elsewhere
		}
		found = append(found, scanned{name: name, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })

	s := &Store{
		dir:      dir,
		maxBytes: opts.MaxBytes,
	}
	// The store is not yet shared, but the index fields carry a lock
	// contract; taking mu here keeps the contract unconditional.
	s.mu.Lock()
	s.entries = make(map[string]*entryMeta, len(found))
	for i, f := range found {
		s.entries[f.name] = &entryMeta{size: f.size, lastUse: uint64(i + 1)}
		s.total += f.size
	}
	s.clock = uint64(len(found))
	s.mu.Unlock()
	s.evictOverBudget()
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Counters returns a point-in-time snapshot of the store's activity.
func (s *Store) Counters() Counters {
	c := Counters{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Corrupt:   s.corrupt.Load(),
		Evictions: s.evictions.Load(),
		Saves:     s.saves.Load(),
	}
	s.mu.Lock()
	c.Entries = len(s.entries)
	c.Bytes = s.total
	s.mu.Unlock()
	return c
}

// Load implements harness.Store. It returns ok only for an entry that
// decoded cleanly, checksummed, matched the requested key field for
// field, and whose recomputed StateHash equals the stored one. Every
// other outcome — no entry, unreadable file, truncation, garbage, hash
// or key mismatch — is a miss; corrupt entries are deleted so they are
// paid for once.
func (s *Store) Load(k harness.StoreKey) (sim.Result, bool) {
	name := KeyHex(k)
	s.mu.Lock()
	m, ok := s.entries[name]
	if ok {
		s.clock++
		m.lastUse = s.clock
	}
	s.mu.Unlock()
	if !ok {
		s.misses.Add(1)
		return sim.Result{}, false
	}
	raw, err := os.ReadFile(s.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			// Concurrently evicted: the index already dropped it (or
			// will); this is an ordinary miss, not corruption.
			s.dropIndexed(name)
			s.misses.Add(1)
			return sim.Result{}, false
		}
		s.discardCorrupt(name)
		return sim.Result{}, false
	}
	dk, res, err := Decode(raw)
	if err != nil || dk != k {
		// Decode failure, or a 64-bit filename-hash collision / tampered
		// key block: either way this entry cannot serve k. Fail closed.
		s.discardCorrupt(name)
		return sim.Result{}, false
	}
	s.hits.Add(1)
	return res, true
}

// Save implements harness.Store: encode and persist one fresh result.
// Errors are deliberately swallowed after counting — the store is a
// cache, and a full disk must not fail the simulation that produced the
// result.
func (s *Store) Save(k harness.StoreKey, res sim.Result) {
	_ = s.put(KeyHex(k), Encode(k, res))
}

// PutRaw persists an entry fetched from a cluster peer. The bytes are
// validated exactly as Load would (decode, checksum, StateHash, key
// match) before touching disk, so a malicious or corrupt peer cannot
// poison the local store.
func (s *Store) PutRaw(k harness.StoreKey, raw []byte) error {
	dk, _, err := Decode(raw)
	if err != nil {
		s.corrupt.Add(1)
		return err
	}
	if dk != k {
		s.corrupt.Add(1)
		return corruptf("peer entry is for a different key")
	}
	return s.put(KeyHex(k), raw)
}

// GetRaw returns the raw bytes of an entry by its hex key — the server
// side of the cache-peer protocol. The bytes are served as-is; the
// requesting peer validates before use (and PutRaw validates before
// storing), so no trust is required between peers.
func (s *Store) GetRaw(keyHex string) ([]byte, bool) {
	if !validKeyHex(keyHex) {
		return nil, false
	}
	s.mu.Lock()
	m, ok := s.entries[keyHex]
	if ok {
		s.clock++
		m.lastUse = s.clock
	}
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	raw, err := os.ReadFile(s.path(keyHex))
	if err != nil {
		return nil, false
	}
	return raw, true
}

func (s *Store) path(name string) string { return filepath.Join(s.dir, name+suffix) }

// validKeyHex reports whether name is exactly the 16 lowercase hex
// digits KeyHex produces — the only names the store will index or serve
// (this is also what keeps peer-requested paths inside the directory).
func validKeyHex(name string) bool {
	if len(name) != 16 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// put writes raw atomically (temp + rename) and indexes it.
func (s *Store) put(name string, raw []byte) error {
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), s.path(name))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	s.mu.Lock()
	if old, ok := s.entries[name]; ok {
		s.total -= old.size
	}
	s.clock++
	s.entries[name] = &entryMeta{size: int64(len(raw)), lastUse: s.clock}
	s.total += int64(len(raw))
	s.mu.Unlock()
	s.saves.Add(1)
	s.evictOverBudget()
	return nil
}

// dropIndexed removes name from the index without touching disk.
func (s *Store) dropIndexed(name string) {
	s.mu.Lock()
	if m, ok := s.entries[name]; ok {
		s.total -= m.size
		delete(s.entries, name)
	}
	s.mu.Unlock()
}

// discardCorrupt counts, de-indexes, and deletes a failed entry.
func (s *Store) discardCorrupt(name string) {
	s.corrupt.Add(1)
	s.dropIndexed(name)
	os.Remove(s.path(name))
}

// evictOverBudget deletes LRU entries until the store fits MaxBytes,
// always retaining at least the most recently used entry. Victim
// selection runs under mu (pure index scan); file deletion does not.
func (s *Store) evictOverBudget() {
	if s.maxBytes <= 0 {
		return
	}
	for {
		s.mu.Lock()
		if s.total <= s.maxBytes || len(s.entries) <= 1 {
			s.mu.Unlock()
			return
		}
		victim := ""
		var oldest uint64
		for name, m := range s.entries {
			if victim == "" || m.lastUse < oldest {
				victim, oldest = name, m.lastUse
			}
		}
		m := s.entries[victim]
		s.total -= m.size
		delete(s.entries, victim)
		s.mu.Unlock()
		os.Remove(s.path(victim))
		s.evictions.Add(1)
	}
}
