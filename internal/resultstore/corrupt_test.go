package resultstore

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// These tests apply the tracefile corrupt-stream discipline to store
// entries: truncate at every byte offset and flip every byte (and every
// bit), at both the codec layer and the full store layer. The contract
// under test is fail-closed validation — every corruption must surface
// as ErrCorrupt / a clean miss with the corrupt counter bumped, never a
// panic and never a result whose StateHash differs from the original.

func TestDecodeTruncatedAtEveryOffset(t *testing.T) {
	raw := Encode(testKey("SS"), testResult("SS"))
	if _, _, err := Decode(raw); err != nil {
		t.Fatalf("intact entry must decode: %v", err)
	}
	for cut := 0; cut < len(raw); cut++ {
		if _, _, err := Decode(raw[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at %d/%d: want ErrCorrupt, got %v", cut, len(raw), err)
		}
	}
}

func TestDecodeFlipEveryByteAndBit(t *testing.T) {
	raw := Encode(testKey("SS"), testResult("SS"))
	buf := make([]byte, len(raw))
	for i := 0; i < len(raw); i++ {
		// Whole-byte flip plus each single bit: the trailing FNV-1a
		// checksum covers every preceding byte (and is itself compared),
		// so any one-byte change anywhere must fail validation.
		for _, mask := range []byte{0xFF, 1, 2, 4, 8, 16, 32, 64, 128} {
			copy(buf, raw)
			buf[i] ^= mask
			if _, _, err := Decode(buf); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip 0x%02x at %d: want ErrCorrupt, got %v", mask, i, err)
			}
		}
	}
}

// TestStoreCorruptSweep drives the same sweeps through the Store proper:
// each corrupted file is indexed by a fresh Open (the restarted-daemon
// path), must Load as a miss with the corrupt counter bumped, and must
// be deleted so the re-simulated result can be saved cleanly.
func TestStoreCorruptSweep(t *testing.T) {
	k := testKey("SS")
	res := testResult("SS")
	wantHash := res.StateHash()
	raw := Encode(k, res)
	dir := t.TempDir()
	path := filepath.Join(dir, KeyHex(k)+suffix)

	check := func(t *testing.T, mutated []byte, desc string) {
		t.Helper()
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("%s: Open: %v", desc, err)
		}
		got, ok := st.Load(k)
		if ok {
			// Only a byte-identical entry may serve — and then only with
			// the exact original hash ("never a wrong StateHash").
			if got.StateHash() != wantHash {
				t.Fatalf("%s: served a WRONG result (hash 0x%016x, want 0x%016x)",
					desc, got.StateHash(), wantHash)
			}
			t.Fatalf("%s: corrupt entry must miss, not serve", desc)
		}
		if c := st.Counters(); c.Corrupt != 1 {
			t.Fatalf("%s: corrupt counter = %d, want 1 (%+v)", desc, c.Corrupt, c)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("%s: corrupt entry must be deleted (err=%v)", desc, err)
		}
		// Re-simulation analog: a fresh Save over the discarded entry
		// must round-trip cleanly again.
		st.Save(k, res)
		if again, ok := st.Load(k); !ok || again.StateHash() != wantHash {
			t.Fatalf("%s: store must recover after re-save (ok=%v)", desc, ok)
		}
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("truncate-every-offset", func(t *testing.T) {
		for cut := 0; cut < len(raw); cut++ {
			check(t, raw[:cut], "cut "+strconv.Itoa(cut))
		}
	})
	t.Run("flip-every-byte", func(t *testing.T) {
		buf := make([]byte, len(raw))
		for i := 0; i < len(raw); i++ {
			copy(buf, raw)
			buf[i] ^= 0xFF
			check(t, buf, "flip "+strconv.Itoa(i))
		}
	})
	t.Run("garbage", func(t *testing.T) {
		check(t, []byte("not a result store entry at all, just prose"), "garbage")
		check(t, make([]byte, len(raw)), "zeros")
	})
}
