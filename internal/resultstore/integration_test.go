package resultstore_test

import (
	"testing"

	"lattecc/internal/harness"
	"lattecc/internal/resultstore"
	"lattecc/internal/sim"
)

// TestSuiteDiskRoundTripStateHashExact is the acceptance pin for the
// tentpole: a run served from disk by a fresh suite (the restarted
// process) must carry exactly the StateHash the cold run produced —
// the disk tier is byte-invisible to results.
func TestSuiteDiskRoundTripStateHashExact(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.NumSMs = 2
	cfg.MaxInstructions = 30_000

	st1, err := resultstore.Open(t.TempDir(), resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := st1.Dir()

	cold := harness.NewSuite(cfg)
	cold.Store = st1
	runs := []struct {
		w string
		p harness.Policy
		v harness.Variant
	}{
		{"SS", harness.LatteCC, harness.Variant{}},
		{"SS", harness.Uncompressed, harness.Variant{}},
		{"BO", harness.StaticSC, harness.Variant{SampleSeries: true}},
	}
	want := map[int]uint64{}
	for i, r := range runs {
		res, err := cold.Run(r.w, r.p, r.v)
		if err != nil {
			t.Fatalf("cold %s/%s: %v", r.w, r.p, err)
		}
		want[i] = res.StateHash()
	}

	// Reopen the directory (warm restart) under a brand-new suite.
	st2, err := resultstore.Open(dir, resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm := harness.NewSuite(cfg)
	warm.Store = st2
	for i, r := range runs {
		res, err := warm.Run(r.w, r.p, r.v)
		if err != nil {
			t.Fatalf("warm %s/%s: %v", r.w, r.p, err)
		}
		if res.StateHash() != want[i] {
			t.Fatalf("warm %s/%s: StateHash 0x%016x, want 0x%016x",
				r.w, r.p, res.StateHash(), want[i])
		}
	}
	if warm.Simulations() != 0 {
		t.Fatalf("warm suite simulated %d runs; every run must come from disk",
			warm.Simulations())
	}
	if warm.StoreHits() != uint64(len(runs)) {
		t.Fatalf("store hits = %d, want %d", warm.StoreHits(), len(runs))
	}
	if c := st2.Counters(); c.Corrupt != 0 || c.Hits != uint64(len(runs)) {
		t.Fatalf("store counters after warm pass: %+v", c)
	}
}
