// Package resultstore is the persistent tier below the harness's
// in-memory single-flight run cache: an on-disk store of serialized
// sim.Results keyed by (machine fingerprint, workload, policy, variant),
// with size-bounded LRU spill, a warm-start directory scan at open, and
// raw-entry access for the cluster's cache-peer protocol.
//
// The store's one hard contract is fail-closed validation: every entry
// carries the StateHash of the result it was encoded from plus a
// whole-file checksum, and Load recomputes the hash from the decoded
// result before returning it. Truncation, bit rot, version skew, or a
// filename-hash collision all degrade to a cache miss (the caller
// re-simulates); a wrong result is never returned. The corrupt-sweep
// tests pin this at every byte offset, the same discipline as
// internal/tracefile.
package resultstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"lattecc/internal/harness"
	"lattecc/internal/invariant"
	"lattecc/internal/modes"
	"lattecc/internal/sim"
	"lattecc/internal/stats"
)

// Entry format, version 1 (all integers are uvarint unless noted):
//
//	magic "LCR1" (4 bytes) | modes.NumModes (1 byte)
//	key:    fingerprint (8 bytes LE), workload, policy,
//	        variant flags (1 byte), variant extra-hit-latency
//	result: every sim.Result field, in struct order; series points carry
//	        the cycle as uvarint and the value as raw IEEE-754 bits (8
//	        bytes LE) so restored floats are bit-identical
//	hash:   StateHash of the encoded result (8 bytes LE)
//	sum:    FNV-1a over every preceding byte (8 bytes LE)
//
// Strings and slices are length-prefixed. Decode bounds every length
// against the bytes actually remaining, so a corrupt prefix can never
// drive an allocation larger than the (already size-checked) file.
const (
	magic = "LCR1"

	variantCapacityOnly = 1 << 0
	variantLatencyOnly  = 1 << 1
	variantSampleSeries = 1 << 2

	// footerLen is the stored StateHash plus the file checksum.
	footerLen = 16
)

// ErrCorrupt wraps every decode failure: truncation, checksum or
// StateHash mismatch, version skew, implausible lengths. Callers treat
// any of them identically — discard the entry and miss.
var ErrCorrupt = fmt.Errorf("resultstore: corrupt entry")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// KeyHash folds a store key into the 64-bit value used as the entry's
// filename (and the /v1/results/{key} path segment in the cache-peer
// protocol). Decode re-checks the full key fields, so a hash collision
// degrades to a miss, not a wrong result.
func KeyHash(k harness.StoreKey) uint64 {
	h := invariant.NewHash()
	h.Uint64(k.Fingerprint)
	h.String(k.Workload)
	h.String(string(k.Policy))
	h.Byte(variantFlags(k.Variant))
	h.Uint64(k.Variant.ExtraHitLatency)
	return h.Sum()
}

// KeyHex renders KeyHash the way entries are named on disk and
// addressed between peers: fixed-width lowercase hex.
func KeyHex(k harness.StoreKey) string { return fmt.Sprintf("%016x", KeyHash(k)) }

func variantFlags(v harness.Variant) byte {
	var f byte
	if v.CapacityOnly {
		f |= variantCapacityOnly
	}
	if v.LatencyOnly {
		f |= variantLatencyOnly
	}
	if v.SampleSeries {
		f |= variantSampleSeries
	}
	return f
}

// Encode serializes one (key, result) pair into a self-validating entry.
func Encode(k harness.StoreKey, res sim.Result) []byte {
	b := make([]byte, 0, 256+16*len(res.Kernels)+len(res.EPLog)+5*len(res.EPKernels)+
		16*(seriesLen(res.ToleranceSeries)+seriesLen(res.CapacitySeries)))
	b = append(b, magic...)
	b = append(b, byte(modes.NumModes))

	// Key block.
	b = binary.LittleEndian.AppendUint64(b, k.Fingerprint)
	b = appendString(b, k.Workload)
	b = appendString(b, string(k.Policy))
	b = append(b, variantFlags(k.Variant))
	b = binary.AppendUvarint(b, k.Variant.ExtraHitLatency)

	// Result block.
	b = appendString(b, res.Policy)
	b = appendString(b, res.Workload)
	b = binary.AppendUvarint(b, res.Cycles)
	b = binary.AppendUvarint(b, res.Instructions)

	for _, v := range []uint64{
		res.Cache.Accesses, res.Cache.Hits, res.Cache.Misses,
		res.Cache.CompressedHits, res.Cache.DecompWait, res.Cache.DecompBusy,
		res.Cache.DecompBufferHits, res.Cache.Evictions, res.Cache.Fills,
		res.Cache.FlushedLines, res.Cache.WriteExpansions,
		res.Cache.UncompressedSize, res.Cache.CompressedSize,
	} {
		b = binary.AppendUvarint(b, v)
	}
	for m := 0; m < modes.NumModes; m++ {
		b = binary.AppendUvarint(b, res.Cache.InsertsByMode[m])
		b = binary.AppendUvarint(b, res.Cache.HitsByMode[m])
		b = binary.AppendUvarint(b, res.Cache.SubBlocksByMode[m])
		b = binary.AppendUvarint(b, res.ModeEPs[m])
	}

	for _, v := range []uint64{
		res.Mem.L2Accesses, res.Mem.L2Hits, res.Mem.L2Misses, res.Mem.L2Writes,
		res.Mem.DRAMReads, res.Mem.DRAMWrites, res.Mem.BytesL1L2, res.Mem.BytesL2DRAM,
	} {
		b = binary.AppendUvarint(b, v)
	}

	b = binary.AppendUvarint(b, uint64(len(res.Kernels)))
	for _, kr := range res.Kernels {
		b = appendString(b, kr.Name)
		b = binary.AppendUvarint(b, kr.Cycles)
		b = binary.AppendUvarint(b, kr.Start)
	}

	b = binary.AppendUvarint(b, res.LoadTxns)
	b = binary.AppendUvarint(b, res.StoreTxns)
	b = binary.AppendUvarint(b, res.MSHRStallCycles)
	b = binary.AppendUvarint(b, res.Switches)

	b = binary.AppendUvarint(b, uint64(len(res.EPLog)))
	for _, m := range res.EPLog {
		b = append(b, byte(m))
	}
	b = binary.AppendUvarint(b, uint64(len(res.EPKernels)))
	for _, ki := range res.EPKernels {
		b = binary.AppendUvarint(b, uint64(uint32(ki)))
	}

	b = appendSeries(b, res.ToleranceSeries)
	b = appendSeries(b, res.CapacitySeries)

	// Footer: the result's own StateHash, then a checksum of everything.
	b = binary.LittleEndian.AppendUint64(b, res.StateHash())
	sum := invariant.NewHash()
	sum.Bytes(b)
	return binary.LittleEndian.AppendUint64(b, sum.Sum())
}

func seriesLen(s *stats.Series) int {
	if s == nil {
		return 0
	}
	return s.Len()
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendSeries(b []byte, s *stats.Series) []byte {
	if s == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendString(b, s.Name)
	pts := s.Points()
	b = binary.AppendUvarint(b, uint64(len(pts)))
	for _, p := range pts {
		b = binary.AppendUvarint(b, p.Cycle)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.Value))
	}
	return b
}

// Decode parses and validates one entry. It never panics on garbage:
// every length is bounds-checked before use, the trailing checksum must
// match, and the StateHash recomputed from the decoded result must equal
// the stored one. Any failure returns ErrCorrupt (wrapped with detail).
func Decode(raw []byte) (harness.StoreKey, sim.Result, error) {
	var k harness.StoreKey
	var res sim.Result
	if len(raw) < len(magic)+1+footerLen {
		return k, res, corruptf("short entry: %d bytes", len(raw))
	}
	sum := invariant.NewHash()
	sum.Bytes(raw[:len(raw)-8])
	if got := binary.LittleEndian.Uint64(raw[len(raw)-8:]); got != sum.Sum() {
		return k, res, corruptf("checksum mismatch")
	}
	storedHash := binary.LittleEndian.Uint64(raw[len(raw)-footerLen : len(raw)-8])

	r := &reader{data: raw[:len(raw)-footerLen]}
	if string(r.take(len(magic))) != magic {
		return k, res, corruptf("bad magic")
	}
	if nm := r.byte(); nm != modes.NumModes {
		return k, res, corruptf("mode-count skew: entry has %d, build has %d", nm, modes.NumModes)
	}

	k.Fingerprint = r.u64le()
	k.Workload = r.str()
	k.Policy = harness.Policy(r.str())
	flags := r.byte()
	k.Variant.CapacityOnly = flags&variantCapacityOnly != 0
	k.Variant.LatencyOnly = flags&variantLatencyOnly != 0
	k.Variant.SampleSeries = flags&variantSampleSeries != 0
	k.Variant.ExtraHitLatency = r.uvarint()

	res.Policy = r.str()
	res.Workload = r.str()
	res.Cycles = r.uvarint()
	res.Instructions = r.uvarint()

	for _, p := range []*uint64{
		&res.Cache.Accesses, &res.Cache.Hits, &res.Cache.Misses,
		&res.Cache.CompressedHits, &res.Cache.DecompWait, &res.Cache.DecompBusy,
		&res.Cache.DecompBufferHits, &res.Cache.Evictions, &res.Cache.Fills,
		&res.Cache.FlushedLines, &res.Cache.WriteExpansions,
		&res.Cache.UncompressedSize, &res.Cache.CompressedSize,
	} {
		*p = r.uvarint()
	}
	for m := 0; m < modes.NumModes; m++ {
		res.Cache.InsertsByMode[m] = r.uvarint()
		res.Cache.HitsByMode[m] = r.uvarint()
		res.Cache.SubBlocksByMode[m] = r.uvarint()
		res.ModeEPs[m] = r.uvarint()
	}

	for _, p := range []*uint64{
		&res.Mem.L2Accesses, &res.Mem.L2Hits, &res.Mem.L2Misses, &res.Mem.L2Writes,
		&res.Mem.DRAMReads, &res.Mem.DRAMWrites, &res.Mem.BytesL1L2, &res.Mem.BytesL2DRAM,
	} {
		*p = r.uvarint()
	}

	if n := r.count(); n > 0 {
		res.Kernels = make([]sim.KernelResult, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			res.Kernels = append(res.Kernels, sim.KernelResult{
				Name: r.str(), Cycles: r.uvarint(), Start: r.uvarint(),
			})
		}
	}

	res.LoadTxns = r.uvarint()
	res.StoreTxns = r.uvarint()
	res.MSHRStallCycles = r.uvarint()
	res.Switches = r.uvarint()

	if n := r.count(); n > 0 {
		res.EPLog = make([]modes.Mode, 0, n)
		for _, mb := range r.take(n) {
			res.EPLog = append(res.EPLog, modes.Mode(mb))
		}
	}
	if n := r.count(); n > 0 {
		res.EPKernels = make([]int32, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			res.EPKernels = append(res.EPKernels, int32(uint32(r.uvarint())))
		}
	}

	res.ToleranceSeries = r.series()
	res.CapacitySeries = r.series()

	if r.err != nil {
		return harness.StoreKey{}, sim.Result{}, r.err
	}
	if r.pos != len(r.data) {
		return harness.StoreKey{}, sim.Result{}, corruptf("%d trailing bytes", len(r.data)-r.pos)
	}
	if got := res.StateHash(); got != storedHash {
		return harness.StoreKey{}, sim.Result{}, corruptf(
			"state-hash mismatch: stored 0x%016x, recomputed 0x%016x", storedHash, got)
	}
	return k, res, nil
}

// reader is a bounds-checked cursor over an entry's body. The first
// failure latches err; every later read is a no-op returning zero, so
// Decode can run straight-line and check err once per variable-length
// section (and once at the end).
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = corruptf(format, args...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.data)-r.pos {
		r.fail("truncated at offset %d (want %d more bytes)", r.pos, n)
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u64le() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

// count reads a length prefix and rejects implausible values: a
// honest count can never exceed the bytes remaining (every counted
// element is at least one byte), so a corrupt length fails here instead
// of driving a giant allocation.
func (r *reader) count() int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.data)-r.pos) {
		r.fail("implausible count %d at offset %d (%d bytes remain)", v, r.pos, len(r.data)-r.pos)
		return 0
	}
	return int(v)
}

func (r *reader) str() string { return string(r.take(r.count())) }

func (r *reader) series() *stats.Series {
	switch r.byte() {
	case 0:
		return nil
	case 1:
	default:
		r.fail("bad series presence byte at offset %d", r.pos-1)
		return nil
	}
	name := r.str()
	n := r.count()
	if r.err != nil {
		return nil
	}
	pts := make([]stats.Point, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		pts = append(pts, stats.Point{Cycle: r.uvarint(), Value: math.Float64frombits(r.u64le())})
	}
	if r.err != nil {
		return nil
	}
	return stats.RestoreSeries(name, pts)
}
