package policy

import (
	"lattecc/internal/core"
	"lattecc/internal/modes"
)

// Scheduled is a controller that applies a fixed compression mode per
// kernel, switching at kernel boundaries. It is the execution half of the
// Kernel-OPT oracle (Section V-B): the harness first measures each kernel
// under every static mode, builds the per-kernel argmin schedule, and
// replays it through this controller. Such a policy cannot exist in real
// hardware — it uses oracle knowledge from the end of each kernel — but
// serves as the paper's reference point for coarse-grained adaptation.
type Scheduled struct {
	name     string
	schedule []modes.Mode
	kernel   int

	// High-capacity code-book maintenance, as in Static.
	epLen     uint64
	epsPerPer uint64
	accesses  uint64
}

var _ modes.Controller = (*Scheduled)(nil)

// NewScheduled returns a controller replaying the given per-kernel modes.
// Kernels beyond the schedule use the last entry.
func NewScheduled(name string, schedule []modes.Mode, epLen, epsPerPeriod uint64) *Scheduled {
	if len(schedule) == 0 {
		schedule = []modes.Mode{modes.None}
	}
	return &Scheduled{name: name, schedule: schedule, epLen: epLen, epsPerPer: epsPerPeriod}
}

// Name implements modes.Controller.
func (s *Scheduled) Name() string { return s.name }

// KernelStart is called by the simulator at each kernel boundary.
func (s *Scheduled) KernelStart(idx int) { s.kernel = idx }

// CurrentMode implements modes.Snapshotter.
func (s *Scheduled) CurrentMode() modes.Mode {
	i := s.kernel
	if i >= len(s.schedule) {
		i = len(s.schedule) - 1
	}
	return s.schedule[i]
}

// InsertMode implements modes.Controller.
func (s *Scheduled) InsertMode(int) modes.Mode { return s.CurrentMode() }

// RecordAccess implements modes.Controller, maintaining the high-capacity
// code book on the same period cadence as the other policies.
func (s *Scheduled) RecordAccess(int, bool, modes.Mode, uint64, uint64) modes.Directive {
	s.accesses++
	if s.accesses == s.epLen {
		return modes.Directive{RebuildHighCap: true}
	}
	if s.accesses%(s.epLen*s.epsPerPer) == 0 {
		return modes.Directive{FlushHighCap: true, RebuildHighCap: true}
	}
	return modes.Directive{}
}

// RecordMissLatency implements modes.Controller (unused).
func (s *Scheduled) RecordMissLatency(uint64) {}

// RecordTolerance implements modes.Controller (unused).
func (s *Scheduled) RecordTolerance(float64) {}

// NewAdaptiveHitCount returns the Figure 17 Adaptive-Hit-Count baseline:
// LATTE-CC's sampling machinery with a decision that only maximizes hit
// counts (minimizes misses), blind to latency.
func NewAdaptiveHitCount(numSets int) *core.Controller {
	cfg := core.DefaultConfig(numSets)
	cfg.Decision = core.DecisionHitCount
	return core.New(cfg)
}

// NewAdaptiveCMP returns the Figure 17 Adaptive-CMP baseline
// (Alameldeen-style): decompression-latency aware via conventional AMAT,
// but oblivious to the GPU's latency tolerance.
func NewAdaptiveCMP(numSets int) *core.Controller {
	cfg := core.DefaultConfig(numSets)
	cfg.Decision = core.DecisionCMP
	return core.New(cfg)
}
