// Package policy implements the compression-management policies LATTE-CC
// is compared against in the paper's evaluation:
//
//   - Uncompressed / Static-BDI / Static-SC / Static-BPC (Figures 11-13)
//   - Adaptive-Hit-Count — set sampling on hit counts only (Figure 17)
//   - Adaptive-CMP — Alameldeen-style, decompression-latency aware but
//     latency-tolerance oblivious (Figure 17)
//   - Kernel-OPT — the offline oracle that picks the best static mode per
//     kernel (Figures 11 and 15), driven by the harness
//
// The LATTE-CC controller itself lives in package core.
package policy

import "lattecc/internal/modes"

// Static is a controller that applies one compression mode to every line,
// unconditionally. Static(modes.None) is the baseline uncompressed cache;
// Static(modes.LowLat) is Static-BDI; Static(modes.HighCap) is Static-SC
// (or Static-BPC when the cache's high-capacity codec is BPC).
type Static struct {
	mode modes.Mode
	name string

	// Period bookkeeping for the high-capacity codec: even static SC needs
	// its VFT rebuilt periodically (Section IV-C2 applies the same period
	// structure to SC and LATTE-CC).
	epLen     uint64 // accesses per experimental phase
	epsPerPer uint64 // EPs per period
	accesses  uint64
	needsHC   bool
}

var _ modes.Controller = (*Static)(nil)

// NewStatic returns a static controller for the given mode. epLen and
// epsPerPeriod control the high-capacity code-book rebuild cadence; they
// are ignored unless mode is HighCap.
func NewStatic(mode modes.Mode, name string, epLen, epsPerPeriod uint64) *Static {
	return &Static{
		mode:      mode,
		name:      name,
		epLen:     epLen,
		epsPerPer: epsPerPeriod,
		needsHC:   mode == modes.HighCap,
	}
}

// Name implements modes.Controller.
func (s *Static) Name() string { return s.name }

// InsertMode implements modes.Controller.
func (s *Static) InsertMode(int) modes.Mode { return s.mode }

// CurrentMode implements modes.Snapshotter.
func (s *Static) CurrentMode() modes.Mode { return s.mode }

// RecordAccess implements modes.Controller. For Static-SC it requests the
// periodic VFT rebuild and the accompanying flush of compressed lines.
func (s *Static) RecordAccess(int, bool, modes.Mode, uint64, uint64) modes.Directive {
	if !s.needsHC {
		return modes.Directive{}
	}
	s.accesses++
	if s.accesses == s.epLen {
		// Section IV-C2: the VFT is built during the first EP of the
		// first period — the first code book exists from then on.
		return modes.Directive{RebuildHighCap: true}
	}
	if s.accesses%(s.epLen*s.epsPerPer) == 0 {
		return modes.Directive{FlushHighCap: true, RebuildHighCap: true}
	}
	return modes.Directive{}
}

// RecordMissLatency implements modes.Controller (unused by Static).
func (s *Static) RecordMissLatency(uint64) {}

// RecordTolerance implements modes.Controller (unused by Static).
func (s *Static) RecordTolerance(float64) {}
