package policy

import (
	"testing"

	"lattecc/internal/modes"
)

func TestStaticModes(t *testing.T) {
	for _, m := range modes.All() {
		s := NewStatic(m, "p-"+m.String(), 256, 10)
		if s.Name() != "p-"+m.String() {
			t.Errorf("name = %q", s.Name())
		}
		for set := 0; set < 32; set++ {
			if s.InsertMode(set) != m {
				t.Fatalf("static %v returned %v for set %d", m, s.InsertMode(set), set)
			}
		}
		if s.CurrentMode() != m {
			t.Fatal("CurrentMode must match the static mode")
		}
	}
}

func TestStaticNonHighCapNeverDirects(t *testing.T) {
	s := NewStatic(modes.LowLat, "bdi", 4, 2)
	for i := 0; i < 100; i++ {
		d := s.RecordAccess(0, true, modes.LowLat, 0, uint64(i))
		if d.FlushHighCap || d.RebuildHighCap || len(d.FlushMismatch) > 0 {
			t.Fatalf("BDI static issued directive %+v", d)
		}
	}
}

func TestStaticHighCapRebuildCadence(t *testing.T) {
	epLen, eps := uint64(4), uint64(3)
	s := NewStatic(modes.HighCap, "sc", epLen, eps)
	var firstRebuild, periodFlushes int
	for i := uint64(1); i <= 3*epLen*eps; i++ {
		d := s.RecordAccess(0, true, modes.HighCap, 0, i)
		if d.RebuildHighCap && !d.FlushHighCap {
			firstRebuild++
			if i != epLen {
				t.Fatalf("first rebuild at access %d, want %d", i, epLen)
			}
		}
		if d.FlushHighCap {
			if i%(epLen*eps) != 0 {
				t.Fatalf("period flush at access %d", i)
			}
			periodFlushes++
		}
	}
	if firstRebuild != 1 {
		t.Fatalf("first-EP rebuilds = %d, want 1", firstRebuild)
	}
	if periodFlushes != 3 {
		t.Fatalf("period flushes = %d, want 3", periodFlushes)
	}
}

func TestScheduledSwitchesAtKernelBoundaries(t *testing.T) {
	sched := []modes.Mode{modes.None, modes.HighCap, modes.LowLat}
	s := NewScheduled("Kernel-OPT", sched, 256, 10)
	if s.Name() != "Kernel-OPT" {
		t.Fatal("name")
	}
	for ki, want := range sched {
		s.KernelStart(ki)
		if s.InsertMode(0) != want {
			t.Fatalf("kernel %d mode = %v, want %v", ki, s.InsertMode(0), want)
		}
	}
	// Kernels past the schedule reuse the last entry.
	s.KernelStart(99)
	if s.InsertMode(0) != modes.LowLat {
		t.Fatal("overflow kernels must use the last scheduled mode")
	}
}

func TestScheduledEmptyScheduleDefaultsToNone(t *testing.T) {
	s := NewScheduled("ko", nil, 256, 10)
	if s.InsertMode(0) != modes.None {
		t.Fatal("empty schedule must default to the baseline")
	}
}

func TestScheduledMaintainsCodeBook(t *testing.T) {
	epLen, eps := uint64(8), uint64(2)
	s := NewScheduled("ko", []modes.Mode{modes.HighCap}, epLen, eps)
	sawFirst, sawPeriod := false, false
	for i := uint64(1); i <= 2*epLen*eps; i++ {
		d := s.RecordAccess(0, false, modes.None, 0, i)
		if d.RebuildHighCap && !d.FlushHighCap {
			sawFirst = true
		}
		if d.FlushHighCap && d.RebuildHighCap {
			sawPeriod = true
		}
	}
	if !sawFirst || !sawPeriod {
		t.Fatalf("scheduled policy must maintain the SC code book (first=%v period=%v)", sawFirst, sawPeriod)
	}
}

func TestAdaptiveBaselineConstructors(t *testing.T) {
	hc := NewAdaptiveHitCount(32)
	if hc.Name() != "Adaptive-Hit-Count" {
		t.Fatalf("name = %q", hc.Name())
	}
	cmp := NewAdaptiveCMP(32)
	if cmp.Name() != "Adaptive-CMP" {
		t.Fatalf("name = %q", cmp.Name())
	}
}

func TestControllerInterfaceCompliance(t *testing.T) {
	var _ modes.Controller = NewStatic(modes.None, "x", 1, 1)
	var _ modes.Controller = NewScheduled("x", nil, 1, 1)
	var _ modes.Snapshotter = NewStatic(modes.None, "x", 1, 1)
	var _ modes.Snapshotter = NewScheduled("x", nil, 1, 1)
}
