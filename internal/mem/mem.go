// Package mem models the GPU memory system below the L1 data caches: the
// banked unified L2 cache, the DRAM channels, and the interconnect traffic
// accounting. The model is latency-and-occupancy analytic rather than
// cycle-stepped: every request computes its completion time from the
// minimum latency plus queueing at the bank/channel it uses, which captures
// the first-order contention effects (bandwidth saturation, bank camping)
// that the paper's workloads exercise, without a per-cycle event loop.
//
// Table II parameters: 768KB unified L2, 128B lines, 8 ways, 12 banks,
// minimum 120-cycle L2 access latency, minimum 230-cycle DRAM latency.
package mem

import "fmt"

// Config describes the memory system.
type Config struct {
	LineSize int // cache line size in bytes

	L2SizeBytes int    // total L2 capacity
	L2Ways      int    // associativity
	L2Banks     int    // number of independent banks
	L2Latency   uint64 // minimum L1-miss-to-L2-data latency (incl. NoC)
	L2Service   uint64 // bank occupancy per request (bandwidth model)

	DRAMChannels int    // number of DRAM channels
	DRAMLatency  uint64 // minimum additional latency for an L2 miss
	DRAMService  uint64 // channel occupancy per request
}

// DefaultConfig returns the Table II configuration.
func DefaultConfig() Config {
	return Config{
		LineSize:     128,
		L2SizeBytes:  768 * 1024,
		L2Ways:       8,
		L2Banks:      12,
		L2Latency:    120,
		L2Service:    2,
		DRAMChannels: 6,
		DRAMLatency:  230,
		DRAMService:  8,
	}
}

// Stats counts memory-system events for performance and energy reporting.
type Stats struct {
	L2Accesses  uint64
	L2Hits      uint64
	L2Misses    uint64
	L2Writes    uint64
	DRAMReads   uint64
	DRAMWrites  uint64
	BytesL1L2   uint64 // interconnect traffic between SMs and L2
	BytesL2DRAM uint64 // off-chip traffic
}

// System is the shared memory hierarchy below the per-SM L1 caches.
type System struct {
	cfg   Config
	banks []*l2Bank
	chans []uint64 // per-channel next-free cycle
	stats Stats
}

// New creates a memory system; it panics on an inconsistent configuration
// since configs are produced by this repository's own harness.
func New(cfg Config) *System {
	if cfg.LineSize <= 0 || cfg.L2Banks <= 0 || cfg.DRAMChannels <= 0 {
		panic(fmt.Sprintf("mem: bad config %+v", cfg))
	}
	setsPerBank := cfg.L2SizeBytes / (cfg.LineSize * cfg.L2Ways * cfg.L2Banks)
	if setsPerBank == 0 {
		panic("mem: L2 too small for bank/way configuration")
	}
	s := &System{cfg: cfg, chans: make([]uint64, cfg.DRAMChannels)}
	for i := 0; i < cfg.L2Banks; i++ {
		s.banks = append(s.banks, newL2Bank(setsPerBank, cfg.L2Ways))
	}
	return s
}

// Stats returns a copy of the event counters.
func (s *System) Stats() Stats { return s.stats }

// Config returns the active configuration.
func (s *System) Config() Config { return s.cfg }

// Read services an L1 read miss for the line containing addr, issued at
// cycle now, and returns the cycle at which the fill data arrives at the
// L1. The line is installed in L2 on an L2 miss.
func (s *System) Read(addr uint64, now uint64) uint64 {
	line := addr / uint64(s.cfg.LineSize)
	bank := s.banks[line%uint64(len(s.banks))]
	s.stats.L2Accesses++
	s.stats.BytesL1L2 += uint64(s.cfg.LineSize)

	start := max64(now, bank.nextFree)
	bank.nextFree = start + s.cfg.L2Service

	local := line / uint64(len(s.banks))
	if hit, _ := bank.access(local, false, false); hit {
		s.stats.L2Hits++
		return start + s.cfg.L2Latency
	}
	s.stats.L2Misses++
	done := s.dramAccess(line, start+s.cfg.L2Latency, false)
	if _, wb := bank.access(local, true, false); wb {
		// Dirty victim: write-back occupies the DRAM channel but is off
		// the read's critical path.
		s.dramAccess(line, start+s.cfg.L2Latency, true)
	}
	return done
}

// Write services a store. The paper models L1 as write-avoid (Section
// IV-C3), so stores bypass L1 and go straight to L2 (write-allocate).
// The returned cycle is when the write is accepted; stores do not stall
// the warp beyond issue in this model.
func (s *System) Write(addr uint64, now uint64) uint64 {
	line := addr / uint64(s.cfg.LineSize)
	bank := s.banks[line%uint64(len(s.banks))]
	s.stats.L2Accesses++
	s.stats.L2Writes++
	s.stats.BytesL1L2 += uint64(s.cfg.LineSize)

	start := max64(now, bank.nextFree)
	bank.nextFree = start + s.cfg.L2Service
	local := line / uint64(len(s.banks))
	if hit, _ := bank.access(local, false, true); hit {
		s.stats.L2Hits++
		return start + s.cfg.L2Service
	}
	s.stats.L2Misses++
	// Write-allocate: fetch the line from DRAM, mark it dirty; the dirty
	// data reaches DRAM later, when the line is written back on eviction.
	s.dramAccess(line, start+s.cfg.L2Latency, false)
	if _, wb := bank.access(local, true, true); wb {
		s.dramAccess(line, start+s.cfg.L2Latency, true)
	}
	return start + s.cfg.L2Service
}

// dramAccess models one DRAM transaction starting no earlier than ready.
func (s *System) dramAccess(line uint64, ready uint64, write bool) uint64 {
	ch := int(line % uint64(len(s.chans)))
	start := max64(ready, s.chans[ch])
	s.chans[ch] = start + s.cfg.DRAMService
	if write {
		s.stats.DRAMWrites++
	} else {
		s.stats.DRAMReads++
	}
	s.stats.BytesL2DRAM += uint64(s.cfg.LineSize)
	return start + s.cfg.DRAMLatency
}

// Reset clears cache contents, queue state, and statistics, so one System
// can be reused across independent simulation runs.
func (s *System) Reset() {
	s.stats = Stats{}
	for i := range s.chans {
		s.chans[i] = 0
	}
	for _, b := range s.banks {
		b.reset()
	}
}

// l2Bank is one set-associative L2 bank with true-LRU replacement. Tags
// are real so L2 hit rates reflect actual workload reuse, but no data is
// stored (values live in the workload backing store).
type l2Bank struct {
	sets     [][]l2Way
	nextFree uint64
}

type l2Way struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64
}

func newL2Bank(sets, ways int) *l2Bank {
	b := &l2Bank{sets: make([][]l2Way, sets)}
	for i := range b.sets {
		b.sets[i] = make([]l2Way, ways)
	}
	return b
}

// access probes the bank for a line; if allocate is set, a miss installs
// the line, evicting the LRU way. dirty marks the line modified (store).
// It returns whether the line hit and whether a dirty victim was evicted
// (the caller issues the write-back). The caller passes the bank-local
// line number (global line / numBanks) so that all sets are reachable
// regardless of the bank count.
func (b *l2Bank) access(line uint64, allocate, dirty bool) (hit, wroteBack bool) {
	setIdx := line % uint64(len(b.sets))
	set := b.sets[setIdx]
	var stamp uint64
	victim := 0
	for i := range set {
		if set[i].lru > stamp {
			stamp = set[i].lru
		}
	}
	stamp++
	oldest := ^uint64(0)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].lru = stamp
			if dirty {
				set[i].dirty = true
			}
			return true, false
		}
		if !set[i].valid {
			oldest = 0
			victim = i
		} else if set[i].lru < oldest {
			oldest = set[i].lru
			victim = i
		}
	}
	if allocate {
		wroteBack = set[victim].valid && set[victim].dirty
		set[victim] = l2Way{valid: true, dirty: dirty, tag: line, lru: stamp}
	}
	return false, wroteBack
}

func (b *l2Bank) reset() {
	b.nextFree = 0
	for i := range b.sets {
		for j := range b.sets[i] {
			b.sets[i][j] = l2Way{}
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
