package mem

// This file is the memory-side half of the simulator's two-phase epoch
// engine (DESIGN.md §12). During the parallel phase of a cycle, SMs may
// not call System.Read/System.Write directly — the shared bank and
// channel queues would be mutated in goroutine-scheduling order and the
// run would stop being deterministic. Instead each SM owns a Port and
// appends its transactions there; at the epoch barrier a single
// goroutine drains every port through the Arbiter in (SM id, issue
// order), which is exactly the order the old serial loop produced.

// PortRequest is one L1-miss fetch or store transaction queued on an
// SM's memory port during the parallel phase of a cycle epoch.
type PortRequest struct {
	// Addr is the byte address of the transaction.
	Addr uint64
	// Store marks an L2 write (stores bypass or write through L1).
	Store bool
	// FillAt is produced by the Arbiter for loads: the cycle the fill
	// data arrives back at the L1. Zero until the port is drained, and
	// meaningless for stores (the simulator never waits on them).
	FillAt uint64
}

// Port is one SM's outbound memory queue for the current cycle epoch.
// It is written by exactly one SM during the parallel phase and read by
// the arbiter at the barrier, so it needs no locking; the buffer is
// preallocated and reused so steady-state cycles allocate nothing.
type Port struct {
	reqs []PortRequest
}

// NewPort returns a port with capacity for n requests before the slice
// has to grow. A good n is L1Ports (the most transactions an SM can
// start per cycle).
func NewPort(n int) *Port {
	return &Port{reqs: make([]PortRequest, 0, n)}
}

// PushLoad queues a fetch and returns its index, which stays valid until
// Reset and is how the SM finds the FillAt the arbiter wrote back.
func (p *Port) PushLoad(addr uint64) int {
	p.reqs = append(p.reqs, PortRequest{Addr: addr})
	return len(p.reqs) - 1
}

// PushStore queues a store. Stores have no response time: System.Write's
// return value was never consumed by SM code, so none is surfaced here.
func (p *Port) PushStore(addr uint64) {
	p.reqs = append(p.reqs, PortRequest{Addr: addr, Store: true})
}

// Len returns the number of queued requests.
func (p *Port) Len() int { return len(p.reqs) }

// FillAt returns the arbiter-assigned fill time of the load queued at
// index i. Only valid after the epoch's Drain.
func (p *Port) FillAt(i int) uint64 { return p.reqs[i].FillAt }

// Reset empties the port, keeping its buffer for the next epoch.
func (p *Port) Reset() { p.reqs = p.reqs[:0] }

// Arbiter drains a fixed set of ports into a System in deterministic
// order: ports in slice position order (SM id), requests within a port
// in issue order. Because that is byte-for-byte the order in which the
// old serial simulator called Read/Write, every queueing decision inside
// System — bank nextFree times, LRU state, channel contention — and
// therefore every counter and fill time is bit-identical regardless of
// how many goroutines produced the ports.
type Arbiter struct {
	sys   *System
	ports []*Port
}

// NewArbiter returns an arbiter over ports (position = SM id).
func NewArbiter(sys *System, ports []*Port) *Arbiter {
	return &Arbiter{sys: sys, ports: ports}
}

// Drain services every queued request against the System at cycle now,
// writing fill times back into the load requests. It must be called from
// exactly one goroutine, after the parallel phase has finished.
func (a *Arbiter) Drain(now uint64) {
	for _, p := range a.ports {
		for i := range p.reqs {
			r := &p.reqs[i]
			if r.Store {
				a.sys.Write(r.Addr, now)
			} else {
				r.FillAt = a.sys.Read(r.Addr, now)
			}
		}
	}
}
