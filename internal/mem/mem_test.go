package mem

import (
	"testing"
	"testing/quick"
)

func testConfig() Config {
	cfg := DefaultConfig()
	return cfg
}

func TestL2HitAfterFill(t *testing.T) {
	s := New(testConfig())
	addr := uint64(0x1000)
	d1 := s.Read(addr, 0)
	if d1 < s.cfg.L2Latency+s.cfg.DRAMLatency {
		t.Fatalf("cold read done at %d, want >= %d", d1, s.cfg.L2Latency+s.cfg.DRAMLatency)
	}
	st := s.Stats()
	if st.L2Misses != 1 || st.DRAMReads != 1 {
		t.Fatalf("stats after cold read: %+v", st)
	}
	d2 := s.Read(addr, 1000)
	if d2 != 1000+s.cfg.L2Latency {
		t.Fatalf("warm read done at %d, want %d", d2, 1000+s.cfg.L2Latency)
	}
	if s.Stats().L2Hits != 1 {
		t.Fatalf("want 1 L2 hit, got %+v", s.Stats())
	}
}

func TestBankContention(t *testing.T) {
	s := New(testConfig())
	// Hammer one bank (same line repeatedly → same bank) at the same cycle.
	addr := uint64(0)
	s.Read(addr, 0) // warm it
	base := s.Read(addr, 10000)
	next := s.Read(addr, 10000)
	if next <= base {
		t.Fatalf("second same-cycle request must queue behind the first: %d vs %d", next, base)
	}
	if next-base != s.cfg.L2Service {
		t.Fatalf("queueing delta = %d, want L2Service %d", next-base, s.cfg.L2Service)
	}
}

func TestDRAMChannelBandwidth(t *testing.T) {
	s := New(testConfig())
	// Distinct lines, same channel: line numbers differing by
	// DRAMChannels*K map to the same channel.
	step := uint64(s.cfg.LineSize) * uint64(s.cfg.DRAMChannels) * uint64(s.cfg.L2Banks)
	var last uint64
	for i := 0; i < 10; i++ {
		done := s.Read(uint64(i)*step*997, 0) // sparse: all L2 misses
		if done > last {
			last = done
		}
	}
	if s.Stats().DRAMReads != 10 {
		t.Fatalf("want 10 DRAM reads, got %+v", s.Stats())
	}
	if last < s.cfg.L2Latency+s.cfg.DRAMLatency {
		t.Fatalf("completion %d below minimum latency", last)
	}
}

func TestL2CapacityEviction(t *testing.T) {
	cfg := testConfig()
	s := New(cfg)
	lines := cfg.L2SizeBytes / cfg.LineSize
	// Touch 2x the L2 capacity of distinct lines, then re-touch the first:
	// it must have been evicted.
	for i := 0; i < 2*lines; i++ {
		s.Read(uint64(i*cfg.LineSize), 0)
	}
	missesBefore := s.Stats().L2Misses
	s.Read(0, 1<<40)
	if s.Stats().L2Misses != missesBefore+1 {
		t.Fatal("line 0 should have been evicted by capacity pressure")
	}
}

func TestL2AllSetsReachable(t *testing.T) {
	cfg := testConfig()
	s := New(cfg)
	// Insert exactly L2-capacity distinct lines; with proper bank-local
	// indexing none of them conflict-miss, so re-reading them all hits.
	lines := cfg.L2SizeBytes / cfg.LineSize
	for i := 0; i < lines; i++ {
		s.Read(uint64(i*cfg.LineSize), 0)
	}
	for i := 0; i < lines; i++ {
		s.Read(uint64(i*cfg.LineSize), 1<<30)
	}
	st := s.Stats()
	if st.L2Hits != uint64(lines) {
		t.Fatalf("want %d hits on re-read (full capacity usable), got %d", lines, st.L2Hits)
	}
}

func TestWriteAccountsTraffic(t *testing.T) {
	s := New(testConfig())
	s.Write(0x2000, 0)
	st := s.Stats()
	if st.L2Writes != 1 || st.BytesL1L2 != uint64(s.cfg.LineSize) {
		t.Fatalf("write stats: %+v", st)
	}
	if st.DRAMReads != 1 {
		t.Fatalf("write-allocate must fetch the line: %+v", st)
	}
	if st.DRAMWrites != 0 {
		t.Fatalf("write-back L2 defers dirty data until eviction: %+v", st)
	}
	// A second write to the same line hits in L2.
	s.Write(0x2000, 5000)
	if s.Stats().L2Hits != 1 {
		t.Fatalf("warm write should hit L2: %+v", s.Stats())
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := testConfig()
	s := New(cfg)
	// Dirty one line, then stream reads through twice the L2 capacity to
	// force its eviction: exactly one write-back must reach DRAM.
	s.Write(0x2000, 0)
	lines := cfg.L2SizeBytes / cfg.LineSize
	for i := 1; i <= 2*lines; i++ {
		s.Read(uint64(0x2000+i*cfg.LineSize), 100)
	}
	if wb := s.Stats().DRAMWrites; wb != 1 {
		t.Fatalf("dirty eviction write-backs = %d, want 1", wb)
	}
	// Clean evictions never write back: re-stream the same reads.
	before := s.Stats().DRAMWrites
	for i := 1; i <= 2*lines; i++ {
		s.Read(uint64(0x2000+i*cfg.LineSize), 200)
	}
	if s.Stats().DRAMWrites != before {
		t.Fatal("clean evictions must not write back")
	}
}

func TestWriteLatencyIsAcceptLatency(t *testing.T) {
	s := New(testConfig())
	done := s.Write(0x9000, 100)
	if done-100 > 4*s.cfg.L2Service {
		t.Fatalf("store accept latency %d too high; stores must not stall like loads", done-100)
	}
}

func TestResetClearsEverything(t *testing.T) {
	s := New(testConfig())
	s.Read(0, 0)
	s.Write(128, 0)
	s.Reset()
	if s.Stats() != (Stats{}) {
		t.Fatalf("stats not cleared: %+v", s.Stats())
	}
	// After reset, previously cached lines miss again.
	s.Read(0, 0)
	if s.Stats().L2Misses != 1 {
		t.Fatal("reset must clear L2 contents")
	}
}

func TestCompletionMonotonicWithIssueTime(t *testing.T) {
	// For a fixed address, issuing later can never complete earlier.
	f := func(t1, t2 uint32) bool {
		s := New(testConfig())
		a, b := uint64(t1), uint64(t2)
		if a > b {
			a, b = b, a
		}
		d1 := s.Read(0x100, a)
		d2 := s.Read(0x100, b)
		return d2 >= d1 || b >= d1 // either ordered, or second issued after first completed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadLatencyLowerBoundQuick(t *testing.T) {
	f := func(addrSeed uint32, now uint16) bool {
		s := New(testConfig())
		addr := uint64(addrSeed) * 64
		done := s.Read(addr, uint64(now))
		return done >= uint64(now)+s.cfg.L2Latency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on zero banks")
		}
	}()
	New(Config{LineSize: 128, L2Banks: 0, DRAMChannels: 1, L2SizeBytes: 1 << 20, L2Ways: 8})
}
