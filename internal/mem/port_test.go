package mem

import "testing"

// The arbiter's whole contract is order equivalence: draining ports in
// (port index, issue order) must leave the System in exactly the state a
// serial caller making the same calls in that order would, and must hand
// back the same fill times.
func TestArbiterMatchesSerialOrder(t *testing.T) {
	cfg := DefaultConfig()

	type txn struct {
		sm    int
		addr  uint64
		store bool
	}
	txns := []txn{
		{0, 0x0000, false},
		{0, 0x4000, false},
		{0, 0x8000, true},
		{1, 0x0000, false}, // same line as SM0: L2 hit ordering matters
		{1, 0xC000, true},
		{2, 0x4080, false},
		{2, 0x4100, false},
		{2, 0x4180, false},
	}

	serial := New(cfg)
	var wantFills []uint64
	for _, x := range txns {
		if x.store {
			serial.Write(x.addr, 7)
		} else {
			wantFills = append(wantFills, serial.Read(x.addr, 7))
		}
	}

	ported := New(cfg)
	ports := []*Port{NewPort(2), NewPort(2), NewPort(2)}
	type loadRef struct {
		sm, idx int
	}
	var loads []loadRef
	for _, x := range txns {
		if x.store {
			ports[x.sm].PushStore(x.addr)
		} else {
			loads = append(loads, loadRef{x.sm, ports[x.sm].PushLoad(x.addr)})
		}
	}
	NewArbiter(ported, ports).Drain(7)

	for i, l := range loads {
		if got := ports[l.sm].FillAt(l.idx); got != wantFills[i] {
			t.Errorf("load %d (sm %d): FillAt = %d, serial order gives %d", i, l.sm, got, wantFills[i])
		}
	}
	if serial.Stats() != ported.Stats() {
		t.Errorf("stats diverge:\nserial: %+v\nported: %+v", serial.Stats(), ported.Stats())
	}

	for _, p := range ports {
		p.Reset()
		if p.Len() != 0 {
			t.Fatal("Reset must empty the port")
		}
	}
}
