package compress

import "fmt"

// BPC implements Bit-Plane Compression (Kim et al., ISCA 2016). BPC first
// takes word-to-word deltas across the line (delta transform), then
// rotates the resulting delta array into bit planes (DBP) and XORs
// neighbouring planes (DBX). The two transforms concentrate the entropy of
// numerically smooth data — array indices, pointers, fixed-stride floats —
// into a handful of nonzero planes that run-length encode extremely well.
// Table I models an 11-cycle decompression latency.
//
// Layout for a 128-byte line:
//
//	base   — the first 32-bit word, encoded with a small FPC-like table
//	deltas — 31 deltas of consecutive words, each a 33-bit signed value
//	DBP    — 33 bit planes, each 31 bits wide (plane k = bit k of deltas)
//	DBX    — DBX[k] = DBP[k] ^ DBP[k+1]; DBX[32] = DBP[32]
//
// Each DBX plane is encoded with the original paper's code table:
//
//	01    + 5b   run of 2-33 consecutive all-zero DBX planes
//	001          single all-zero DBX plane
//	00000        all-ones DBX plane
//	00001        DBP plane is zero (DBX nonzero)
//	00010 + 5b   two consecutive ones (position of the pair)
//	00011 + 5b   single one (position)
//	1     + 31b  uncompressed plane
type BPC struct{}

// NewBPC returns the BPC codec.
func NewBPC() *BPC { return &BPC{} }

// Name implements Codec.
func (*BPC) Name() string { return "BPC" }

// CompLatency implements Codec.
func (*BPC) CompLatency() int { return 8 }

// DecompLatency implements Codec (Table I).
func (*BPC) DecompLatency() int { return 11 }

const (
	bpcNumDeltas = WordsPerLine - 1 // 31
	bpcNumPlanes = 33               // 33-bit signed deltas
	bpcPlaneMask = (uint64(1) << bpcNumDeltas) - 1
)

// bpcPlanes computes the DBP bit planes of the line's delta array.
// planes[k] holds bit k of every delta; bit i of planes[k] corresponds to
// delta i.
func bpcPlanes(words [WordsPerLine]uint32) (base uint32, planes [bpcNumPlanes]uint64) {
	base = words[0]
	for i := 0; i < bpcNumDeltas; i++ {
		d := int64(words[i+1]) - int64(words[i]) // fits in 33 bits
		ud := uint64(d) & ((1 << bpcNumPlanes) - 1)
		for k := 0; k < bpcNumPlanes; k++ {
			planes[k] |= (ud >> k & 1) << i
		}
	}
	return base, planes
}

// bpcUnplanes inverts bpcPlanes.
func bpcUnplanes(base uint32, planes [bpcNumPlanes]uint64) [WordsPerLine]uint32 {
	var words [WordsPerLine]uint32
	words[0] = base
	for i := 0; i < bpcNumDeltas; i++ {
		var ud uint64
		for k := 0; k < bpcNumPlanes; k++ {
			ud |= (planes[k] >> i & 1) << k
		}
		d := signExtend(ud, bpcNumPlanes)
		words[i+1] = uint32(int64(words[i]) + d)
	}
	return words
}

// Compress implements Codec.
func (*BPC) Compress(line []byte) Encoded {
	checkLine(line)
	var w bitWriter
	bpcEncodeLine(line, &w)
	size := w.SizeBytes()
	raw := false
	if size >= LineSize {
		size = LineSize
		raw = true
	}
	return Encoded{Data: w.Bytes(), Size: size, Raw: raw}
}

// Measure implements Codec: the same encode core against a counting
// writer, so the reported size is bit-exact with Compress.
//
//lint:hotpath
func (*BPC) Measure(line []byte) Encoded {
	checkLine(line)
	w := bitWriter{countOnly: true}
	bpcEncodeLine(line, &w)
	size := w.SizeBytes()
	raw := false
	if size >= LineSize {
		size = LineSize
		raw = true
	}
	return Encoded{Size: size, Raw: raw}
}

// bpcEncodeLine is the shared encode core behind Compress and Measure.
//
//lint:hotpath
func bpcEncodeLine(line []byte, w *bitWriter) {
	words := words32(line)
	base, dbp := bpcPlanes(words)

	bpcEncodeBase(w, base)

	// DBX planes, processed from the MSB plane downward so the decoder can
	// chain DBP[k] = DBX[k] ^ DBP[k+1] with DBP[33] == 0.
	var dbx [bpcNumPlanes]uint64
	for k := 0; k < bpcNumPlanes; k++ {
		if k == bpcNumPlanes-1 {
			dbx[k] = dbp[k]
		} else {
			dbx[k] = dbp[k] ^ dbp[k+1]
		}
	}
	for k := bpcNumPlanes - 1; k >= 0; {
		if dbx[k] == 0 {
			run := 1
			for k-run >= 0 && dbx[k-run] == 0 && run < 33 {
				run++
			}
			if run >= 2 {
				w.WriteBits(0b01, 2)
				w.WriteBits(uint64(run-2), 5)
			} else {
				w.WriteBits(0b001, 3)
			}
			k -= run
			continue
		}
		switch {
		case dbx[k] == bpcPlaneMask:
			w.WriteBits(0b00000, 5)
		case dbp[k] == 0:
			w.WriteBits(0b00001, 5)
		case bpcTwoConsecOnes(dbx[k]) >= 0:
			w.WriteBits(0b00010, 5)
			w.WriteBits(uint64(bpcTwoConsecOnes(dbx[k])), 5)
		case bpcSingleOne(dbx[k]) >= 0:
			w.WriteBits(0b00011, 5)
			w.WriteBits(uint64(bpcSingleOne(dbx[k])), 5)
		default:
			w.WriteBits(1, 1)
			w.WriteBits(dbx[k], bpcNumDeltas)
		}
		k--
	}
}

// bpcTwoConsecOnes returns the bit position of the lower of exactly two
// consecutive set bits, or -1.
func bpcTwoConsecOnes(p uint64) int {
	for i := 0; i < bpcNumDeltas-1; i++ {
		if p == 0b11<<i {
			return i
		}
	}
	return -1
}

// bpcSingleOne returns the position of the only set bit, or -1.
func bpcSingleOne(p uint64) int {
	if p == 0 || p&(p-1) != 0 {
		return -1
	}
	for i := 0; i < bpcNumDeltas; i++ {
		if p == 1<<i {
			return i
		}
	}
	return -1
}

// Base-word encoding: a compact FPC-like table.
const (
	bpcBaseZero = 0b000
	bpcBaseSE4  = 0b001
	bpcBaseSE8  = 0b010
	bpcBaseSE16 = 0b011
	bpcBaseRaw  = 0b111
)

func bpcEncodeBase(w *bitWriter, base uint32) {
	s := int64(int32(base))
	switch {
	case base == 0:
		w.WriteBits(bpcBaseZero, 3)
	case fitsSigned(s, 4):
		w.WriteBits(bpcBaseSE4, 3)
		w.WriteBits(uint64(base)&0xF, 4)
	case fitsSigned(s, 8):
		w.WriteBits(bpcBaseSE8, 3)
		w.WriteBits(uint64(base)&0xFF, 8)
	case fitsSigned(s, 16):
		w.WriteBits(bpcBaseSE16, 3)
		w.WriteBits(uint64(base)&0xFFFF, 16)
	default:
		w.WriteBits(bpcBaseRaw, 3)
		w.WriteBits(uint64(base), 32)
	}
}

func bpcDecodeBase(r *bitReader) (uint32, error) {
	code, err := r.ReadBits(3)
	if err != nil {
		return 0, err
	}
	switch code {
	case bpcBaseZero:
		return 0, nil
	case bpcBaseSE4:
		v, err := r.ReadBits(4)
		return uint32(signExtend(v, 4)), err
	case bpcBaseSE8:
		v, err := r.ReadBits(8)
		return uint32(signExtend(v, 8)), err
	case bpcBaseSE16:
		v, err := r.ReadBits(16)
		return uint32(signExtend(v, 16)), err
	case bpcBaseRaw:
		v, err := r.ReadBits(32)
		return uint32(v), err
	default:
		return 0, fmt.Errorf("bpc: bad base code %b", code)
	}
}

// Decompress implements Codec.
func (*BPC) Decompress(enc Encoded) ([]byte, error) {
	if err := decodeFault("bpc"); err != nil {
		return nil, err
	}
	r := bitReader{buf: enc.Data}
	base, err := bpcDecodeBase(&r)
	if err != nil {
		return nil, fmt.Errorf("bpc: %w", err)
	}
	var dbp [bpcNumPlanes]uint64
	prevDBP := uint64(0) // DBP[33] == 0
	for k := bpcNumPlanes - 1; k >= 0; {
		b, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("bpc: %w", err)
		}
		if b == 1 { // uncompressed plane
			dbx, err := r.ReadBits(bpcNumDeltas)
			if err != nil {
				return nil, fmt.Errorf("bpc: %w", err)
			}
			dbp[k] = dbx ^ prevDBP
			prevDBP = dbp[k]
			k--
			continue
		}
		b2, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("bpc: %w", err)
		}
		if b2 == 1 { // 01: zero run
			runBits, err := r.ReadBits(5)
			if err != nil {
				return nil, fmt.Errorf("bpc: %w", err)
			}
			run := int(runBits) + 2
			for j := 0; j < run; j++ {
				if k < 0 {
					return nil, fmt.Errorf("bpc: zero run overflows planes")
				}
				dbp[k] = prevDBP // DBX == 0 => DBP[k] == DBP[k+1]
				prevDBP = dbp[k]
				k--
			}
			continue
		}
		b3, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("bpc: %w", err)
		}
		if b3 == 1 { // 001: single zero plane
			dbp[k] = prevDBP
			prevDBP = dbp[k]
			k--
			continue
		}
		// 000xx: five-bit codes
		sub, err := r.ReadBits(2)
		if err != nil {
			return nil, fmt.Errorf("bpc: %w", err)
		}
		var dbx uint64
		switch sub {
		case 0b00: // all ones
			dbx = bpcPlaneMask
			dbp[k] = dbx ^ prevDBP
		case 0b01: // DBP plane zero
			dbp[k] = 0
		case 0b10: // two consecutive ones
			pos, err := r.ReadBits(5)
			if err != nil {
				return nil, fmt.Errorf("bpc: %w", err)
			}
			dbx = 0b11 << pos
			dbp[k] = dbx ^ prevDBP
		case 0b11: // single one
			pos, err := r.ReadBits(5)
			if err != nil {
				return nil, fmt.Errorf("bpc: %w", err)
			}
			dbx = 1 << pos
			dbp[k] = dbx ^ prevDBP
		}
		prevDBP = dbp[k]
		k--
	}
	words := bpcUnplanes(base, dbp)
	return putWords32(words), nil
}
