package compress

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// adversarialLines are seeds chosen to sit on codec decision
// boundaries: every heuristic (BDI delta width, FPC pattern match, SC
// dictionary hit rate) should flip somewhere in this set.
func adversarialLines() [][]byte {
	var lines [][]byte

	// All-distinct 32-bit words: nothing for a dictionary or
	// base-delta scheme to exploit; codecs must fall back to raw
	// without expanding past LineSize.
	distinct := make([]byte, LineSize)
	for i := 0; i < LineSize/4; i++ {
		binary.LittleEndian.PutUint32(distinct[i*4:], 0x9E3779B9*uint32(i+1))
	}
	lines = append(lines, distinct)

	// Sign-boundary deltas: values alternating around 0 and around
	// int32 min/max, where BDI's signed-delta width check is easiest
	// to get wrong.
	signs := make([]byte, LineSize)
	vals := []uint32{0, 0xFFFFFFFF, 1, 0xFFFFFFFE, 0x7FFFFFFF, 0x80000000, 0x80000001, 0x7FFFFFFE}
	for i := 0; i < LineSize/4; i++ {
		binary.LittleEndian.PutUint32(signs[i*4:], vals[i%len(vals)])
	}
	lines = append(lines, signs)

	// Denormal floats: tiny subnormal float64s whose exponent field is
	// zero but mantissa is not — the corner FPC-style float patterns
	// tend to mishandle.
	denorm := make([]byte, LineSize)
	for i := 0; i < LineSize/8; i++ {
		binary.LittleEndian.PutUint64(denorm[i*8:], math.Float64bits(math.SmallestNonzeroFloat64*float64(i+1)))
	}
	lines = append(lines, denorm)

	// Negative-zero / infinity bit patterns in alternating words.
	weird := make([]byte, LineSize)
	for i := 0; i < LineSize/8; i++ {
		bits := math.Float64bits(math.Inf(1 - 2*(i%2)))
		if i%3 == 0 {
			bits = math.Float64bits(math.Copysign(0, -1))
		}
		binary.LittleEndian.PutUint64(weird[i*8:], bits)
	}
	lines = append(lines, weird)

	return lines
}

// fuzzLine pads or truncates arbitrary fuzz input to one cache line.
func fuzzLine(data []byte) []byte {
	line := make([]byte, LineSize)
	copy(line, data)
	return line
}

// FuzzRoundTrip feeds arbitrary line contents through every codec:
// compression must succeed, report a sane size, and decompress back to
// the exact input.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, LineSize))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(bytes.Repeat([]byte{0xAB, 0x00, 0xCD, 0x01}, 32))
	for _, line := range adversarialLines() {
		f.Add(line)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		line := fuzzLine(data)
		sc := NewSC()
		sc.Train(line)
		sc.Rebuild()
		for _, c := range []Codec{NewBDI(), NewFPC(), NewCPACK(), NewBPC(), sc} {
			enc := c.Compress(line)
			if enc.Size <= 0 || enc.Size > LineSize {
				t.Fatalf("%s: size %d out of range", c.Name(), enc.Size)
			}
			dec, err := c.Decompress(enc)
			if err != nil {
				t.Fatalf("%s: decompress own output: %v", c.Name(), err)
			}
			if !bytes.Equal(dec, line) {
				t.Fatalf("%s: round trip mismatch", c.Name())
			}
		}
	})
}

// FuzzSCTrainMismatch drives SC's train/rebuild/compress cycle with a
// training line that differs from the compressed line. SC must stay
// exact via its escape path when the dictionary matches nothing, and
// its generation tag must fence off every encoding made under a
// superseded code book.
func FuzzSCTrainMismatch(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{9, 9, 9}, false)
	f.Add(bytes.Repeat([]byte{0xAA, 0xBB}, 64), bytes.Repeat([]byte{0xCC}, LineSize), true)
	for _, line := range adversarialLines() {
		f.Add(line, bytes.Repeat([]byte{0x5A}, LineSize), true)
	}
	f.Fuzz(func(t *testing.T, train, data []byte, retrain bool) {
		trainLine := fuzzLine(train)
		line := fuzzLine(data)

		sc := NewSC()
		sc.Train(trainLine)
		sc.Rebuild()

		enc := sc.Compress(line)
		if enc.Size <= 0 || enc.Size > LineSize {
			t.Fatalf("sc: size %d out of range", enc.Size)
		}
		dec, err := sc.Decompress(enc)
		if err != nil {
			t.Fatalf("sc: decompress own output: %v", err)
		}
		if !bytes.Equal(dec, line) {
			t.Fatal("sc: round trip mismatch with foreign training line")
		}

		if retrain {
			sc.Train(line)
			if !sc.Rebuild() {
				return // code book unchanged; old encodings stay valid
			}
			// Raw escapes carry their bytes verbatim and stay valid;
			// dictionary-coded lines under an old book must be refused.
			if !enc.Raw && enc.Generation != sc.Generation() {
				if _, err := sc.Decompress(enc); err == nil {
					t.Fatal("sc: decoded a stale-generation line without error")
				}
			}
			// The new book must still round-trip fresh encodings.
			enc2 := sc.Compress(line)
			dec2, err := sc.Decompress(enc2)
			if err != nil || !bytes.Equal(dec2, line) {
				t.Fatalf("sc: round trip after retrain: %v", err)
			}
		}
	})
}

// FuzzDecodeRobustness feeds arbitrary byte streams to every decoder:
// corrupt input must produce an error or a line, never a panic or an
// out-of-range result.
func FuzzDecodeRobustness(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xFF}, 140))
	// A valid BDI stream as a seed so mutations explore near-valid space.
	valid := NewBDI().Compress(fuzzLine([]byte{9, 9, 9})).Data
	f.Add(valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := NewSC()
		sc.Train(fuzzLine([]byte{1}))
		sc.Rebuild()
		for _, c := range []Codec{NewBDI(), NewFPC(), NewCPACK(), NewBPC(), sc} {
			dec, err := c.Decompress(Encoded{Data: data})
			if err == nil && len(dec) != LineSize {
				t.Fatalf("%s: accepted stream but returned %d bytes", c.Name(), len(dec))
			}
		}
	})
}
