package compress

import (
	"bytes"
	"testing"
)

// fuzzLine pads or truncates arbitrary fuzz input to one cache line.
func fuzzLine(data []byte) []byte {
	line := make([]byte, LineSize)
	copy(line, data)
	return line
}

// FuzzRoundTrip feeds arbitrary line contents through every codec:
// compression must succeed, report a sane size, and decompress back to
// the exact input.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, LineSize))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(bytes.Repeat([]byte{0xAB, 0x00, 0xCD, 0x01}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		line := fuzzLine(data)
		sc := NewSC()
		sc.Train(line)
		sc.Rebuild()
		for _, c := range []Codec{NewBDI(), NewFPC(), NewCPACK(), NewBPC(), sc} {
			enc := c.Compress(line)
			if enc.Size <= 0 || enc.Size > LineSize {
				t.Fatalf("%s: size %d out of range", c.Name(), enc.Size)
			}
			dec, err := c.Decompress(enc)
			if err != nil {
				t.Fatalf("%s: decompress own output: %v", c.Name(), err)
			}
			if !bytes.Equal(dec, line) {
				t.Fatalf("%s: round trip mismatch", c.Name())
			}
		}
	})
}

// FuzzDecodeRobustness feeds arbitrary byte streams to every decoder:
// corrupt input must produce an error or a line, never a panic or an
// out-of-range result.
func FuzzDecodeRobustness(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xFF}, 140))
	// A valid BDI stream as a seed so mutations explore near-valid space.
	valid := NewBDI().Compress(fuzzLine([]byte{9, 9, 9})).Data
	f.Add(valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := NewSC()
		sc.Train(fuzzLine([]byte{1}))
		sc.Rebuild()
		for _, c := range []Codec{NewBDI(), NewFPC(), NewCPACK(), NewBPC(), sc} {
			dec, err := c.Decompress(Encoded{Data: data})
			if err == nil && len(dec) != LineSize {
				t.Fatalf("%s: accepted stream but returned %d bytes", c.Name(), len(dec))
			}
		}
	})
}
