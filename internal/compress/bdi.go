package compress

import (
	"encoding/binary"
	"fmt"
)

// BDI implements Base-Delta-Immediate compression (Pekhimenko et al.).
//
// BDI views the cache line as an array of fixed-size blocks (2, 4, or 8
// bytes), picks the first block as the base, and stores each block as a
// narrow signed delta from either the base or from zero (the "immediate"
// part, which captures small values embedded among large ones). A one-bit
// mask per block selects base vs zero. The paper models a 2-cycle
// compression and 2-cycle decompression latency (Section IV-C1).
//
// The encodings tried, in order of preference (smallest first), follow the
// original paper and Section IV-C1:
//
//	zeros            — the whole line is zero
//	rep8             — one repeated 8-byte value
//	b8d1, b8d2, b8d4 — 8-byte base, 1/2/4-byte deltas
//	b4d1, b4d2       — 4-byte base, 1/2-byte deltas
//	b2d1             — 2-byte base, 1-byte deltas
//	raw              — incompressible, stored verbatim
type BDI struct{}

// NewBDI returns the BDI codec.
func NewBDI() *BDI { return &BDI{} }

// Name implements Codec.
func (*BDI) Name() string { return "BDI" }

// CompLatency implements Codec (2 cycles, Section IV-C1).
func (*BDI) CompLatency() int { return 2 }

// DecompLatency implements Codec (2 cycles, Section IV-C1).
func (*BDI) DecompLatency() int { return 2 }

// bdiEncoding identifies the chosen BDI encoding in the stream header.
type bdiEncoding uint8

const (
	bdiZeros bdiEncoding = iota
	bdiRep8
	bdiB8D1
	bdiB8D2
	bdiB8D4
	bdiB4D1
	bdiB4D2
	bdiB2D1
	bdiRaw
)

// bdiParams returns (base bytes, delta bytes) for base-delta encodings.
func (e bdiEncoding) params() (base, delta int) {
	switch e {
	case bdiB8D1:
		return 8, 1
	case bdiB8D2:
		return 8, 2
	case bdiB8D4:
		return 8, 4
	case bdiB4D1:
		return 4, 1
	case bdiB4D2:
		return 4, 2
	case bdiB2D1:
		return 2, 1
	default:
		return 0, 0
	}
}

func (e bdiEncoding) String() string {
	names := [...]string{"zeros", "rep8", "b8d1", "b8d2", "b8d4", "b4d1", "b4d2", "b2d1", "raw"}
	if int(e) < len(names) {
		return names[e]
	}
	return fmt.Sprintf("bdi(%d)", uint8(e))
}

// bdiEncodedSize returns the stored data size in bytes for an encoding,
// excluding the 4-bit compression_enc field that lives in the tag block
// (Section IV-C1 stores the encoding id in the tag, so it costs no data
// space; we keep the 1-byte software header out of the accounted size).
func bdiEncodedSize(e bdiEncoding) int {
	switch e {
	case bdiZeros:
		return 1 // hardware needs no data bytes; account 1 to stay nonzero
	case bdiRep8:
		return 8
	case bdiRaw:
		return LineSize
	default:
		base, delta := e.params()
		n := LineSize / base
		// base value + one delta per block + 1-bit base/zero mask per block
		return base + n*delta + (n+7)/8
	}
}

// Compress implements Codec.
func (*BDI) Compress(line []byte) Encoded {
	checkLine(line)
	enc, payload := bdiCompress(line)
	data := append([]byte{byte(enc)}, payload...)
	return Encoded{
		Data: data,
		Size: bdiEncodedSize(enc),
		Raw:  enc == bdiRaw,
	}
}

// Measure implements Codec: it picks the same encoding Compress would
// (bdiChoose shares the selection logic) but never builds a payload.
//
//lint:hotpath
func (*BDI) Measure(line []byte) Encoded {
	checkLine(line)
	e := bdiChoose(line)
	return Encoded{Size: bdiEncodedSize(e), Raw: e == bdiRaw}
}

// bdiTryOrder lists the base+delta encodings from smallest stored size
// to largest — the preference order of both Compress and Measure. A
// package-level array (not a slice) so ranging over it never allocates.
var bdiTryOrder = [...]bdiEncoding{bdiB2D1, bdiB4D1, bdiB8D1, bdiB4D2, bdiB8D2, bdiB8D4}

// bdiChoose returns the encoding bdiCompress would pick, allocation-free.
//
//lint:hotpath
func bdiChoose(line []byte) bdiEncoding {
	if isZeroLine(line) {
		return bdiZeros
	}
	if _, ok := bdiRepeated8(line); ok {
		return bdiRep8
	}
	best := bdiRaw
	bestSize := LineSize
	for _, e := range bdiTryOrder {
		if bdiFitsBaseDelta(line, e) {
			if size := bdiEncodedSize(e); size < bestSize {
				best, bestSize = e, size
			}
		}
	}
	return best
}

// bdiFitsBaseDelta reports whether bdiTryBaseDelta would succeed for e,
// using the same base selection but no payload materialisation.
//
//lint:hotpath
func bdiFitsBaseDelta(line []byte, e bdiEncoding) bool {
	baseSz, deltaSz := e.params()
	n := LineSize / baseSz
	deltaBits := uint(deltaSz * 8)
	base := bdiReadBlock(line, baseSz)
	for i := 0; i < n; i++ {
		if b := bdiReadBlock(line[i*baseSz:], baseSz); !fitsSigned(b, deltaBits) {
			base = b
			break
		}
	}
	for i := 0; i < n; i++ {
		b := bdiReadBlock(line[i*baseSz:], baseSz)
		if !fitsSigned(b-base, deltaBits) && !fitsSigned(b, deltaBits) {
			return false
		}
	}
	return true
}

// bdiCompress picks the smallest applicable encoding and returns it with
// its payload (excluding the encoding-id header byte).
func bdiCompress(line []byte) (bdiEncoding, []byte) {
	if isZeroLine(line) {
		return bdiZeros, nil
	}
	if rep, ok := bdiRepeated8(line); ok {
		payload := make([]byte, 8)
		binary.LittleEndian.PutUint64(payload, rep)
		return bdiRep8, payload
	}
	// Try encodings from smallest stored size to largest.
	best := bdiRaw
	bestSize := LineSize
	var bestPayload []byte
	for _, e := range bdiTryOrder {
		if payload, ok := bdiTryBaseDelta(line, e); ok {
			if size := bdiEncodedSize(e); size < bestSize {
				best, bestSize, bestPayload = e, size, payload
			}
		}
	}
	if best == bdiRaw {
		return bdiRaw, append([]byte(nil), line...)
	}
	return best, bestPayload
}

// bdiRepeated8 reports whether the line is one repeated 8-byte value.
func bdiRepeated8(line []byte) (uint64, bool) {
	v := binary.LittleEndian.Uint64(line)
	for off := 8; off < LineSize; off += 8 {
		if binary.LittleEndian.Uint64(line[off:]) != v {
			return 0, false
		}
	}
	return v, true
}

// bdiTryBaseDelta attempts one base+delta encoding. The payload layout is:
// base value (base bytes) | mask ((n+7)/8 bytes) | n deltas (delta bytes
// each, little-endian, sign-extended on decode). Mask bit i set means block
// i is a delta from the base; clear means a delta from zero (immediate).
func bdiTryBaseDelta(line []byte, e bdiEncoding) ([]byte, bool) {
	baseSz, deltaSz := e.params()
	n := LineSize / baseSz
	blocks := make([]int64, n)
	for i := 0; i < n; i++ {
		blocks[i] = bdiReadBlock(line[i*baseSz:], baseSz)
	}
	// The hardware uses the first non-immediate block as the base: blocks
	// that already fit in the delta width are encoded as deltas from zero,
	// so the base should be the first "large" value.
	deltaBits := uint(deltaSz * 8)
	base := blocks[0]
	for _, b := range blocks {
		if !fitsSigned(b, deltaBits) {
			base = b
			break
		}
	}
	mask := make([]byte, (n+7)/8)
	deltas := make([]int64, n)
	for i, b := range blocks {
		switch {
		case fitsSigned(b-base, deltaBits):
			mask[i/8] |= 1 << (i % 8)
			deltas[i] = b - base
		case fitsSigned(b, deltaBits):
			deltas[i] = b // immediate: delta from zero
		default:
			return nil, false
		}
	}
	payload := make([]byte, 0, baseSz+len(mask)+n*deltaSz)
	payload = appendIntLE(payload, base, baseSz)
	payload = append(payload, mask...)
	for _, d := range deltas {
		payload = appendIntLE(payload, d, deltaSz)
	}
	return payload, true
}

// bdiReadBlock reads a little-endian block of 2, 4, or 8 bytes as a signed
// value (two's complement over the block width, widened to int64).
func bdiReadBlock(b []byte, size int) int64 {
	switch size {
	case 2:
		return int64(int16(binary.LittleEndian.Uint16(b)))
	case 4:
		return int64(int32(binary.LittleEndian.Uint32(b)))
	case 8:
		return int64(binary.LittleEndian.Uint64(b))
	default:
		badBDIBlockSize()
		return 0
	}
}

// badBDIBlockSize stays out of line (go:noinline) so bdiReadBlock can
// inline into the //lint:hotpath fit checks with no escape of its own.
//
//go:noinline
func badBDIBlockSize() {
	//lint:allow panic-audit block size is one of the fixed BDI geometries; any other value is a codec bug
	panic("compress: bad BDI block size")
}

// appendIntLE appends the low size bytes of v in little-endian order.
func appendIntLE(dst []byte, v int64, size int) []byte {
	for i := 0; i < size; i++ {
		dst = append(dst, byte(uint64(v)>>(8*i)))
	}
	return dst
}

// Decompress implements Codec.
func (*BDI) Decompress(enc Encoded) ([]byte, error) {
	if err := decodeFault("bdi"); err != nil {
		return nil, err
	}
	if len(enc.Data) == 0 {
		return nil, fmt.Errorf("bdi: empty stream")
	}
	e := bdiEncoding(enc.Data[0])
	payload := enc.Data[1:]
	switch e {
	case bdiZeros:
		return make([]byte, LineSize), nil
	case bdiRep8:
		if len(payload) < 8 {
			return nil, fmt.Errorf("bdi: rep8 payload too short")
		}
		out := make([]byte, LineSize)
		for off := 0; off < LineSize; off += 8 {
			copy(out[off:], payload[:8])
		}
		return out, nil
	case bdiRaw:
		if len(payload) < LineSize {
			return nil, fmt.Errorf("bdi: raw payload too short")
		}
		return append([]byte(nil), payload[:LineSize]...), nil
	case bdiB8D1, bdiB8D2, bdiB8D4, bdiB4D1, bdiB4D2, bdiB2D1:
		return bdiDecodeBaseDelta(payload, e)
	default:
		return nil, fmt.Errorf("bdi: unknown encoding %d", e)
	}
}

func bdiDecodeBaseDelta(payload []byte, e bdiEncoding) ([]byte, error) {
	baseSz, deltaSz := e.params()
	n := LineSize / baseSz
	maskLen := (n + 7) / 8
	want := baseSz + maskLen + n*deltaSz
	if len(payload) < want {
		return nil, fmt.Errorf("bdi: %v payload %d bytes, want %d", e, len(payload), want)
	}
	base := readIntLE(payload[:baseSz], baseSz)
	mask := payload[baseSz : baseSz+maskLen]
	deltas := payload[baseSz+maskLen:]
	out := make([]byte, LineSize)
	for i := 0; i < n; i++ {
		d := readIntLE(deltas[i*deltaSz:], deltaSz)
		v := d
		if mask[i/8]&(1<<(i%8)) != 0 {
			v = base + d
		}
		writeIntLE(out[i*baseSz:], v, baseSz)
	}
	return out, nil
}

// readIntLE reads size little-endian bytes as a sign-extended int64.
func readIntLE(b []byte, size int) int64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return signExtend(v, uint(size*8))
}

// writeIntLE writes the low size bytes of v in little-endian order.
func writeIntLE(dst []byte, v int64, size int) {
	for i := 0; i < size; i++ {
		dst[i] = byte(uint64(v) >> (8 * i))
	}
}
