package compress

import "fmt"

// CPACK implements C-PACK (Cache Packer, Chen et al.) dictionary
// compression with zero-line detection (the "CPACK+Z" configuration of
// Table I). The line is scanned word by word; each 32-bit word is encoded
// as one of six patterns against a 16-entry dictionary of recently seen
// words, exploiting temporal value locality within the line. Table I
// models an 8-cycle decompression latency.
//
// Patterns (code | payload):
//
//	00         zzzz — all-zero word
//	01         xxxx — uncompressed word (pushed into the dictionary)
//	10  + idx  mmmm — full dictionary match
//	1100 + b   zzzx — word with only the low byte nonzero
//	1101 + idx+b    mmxx — dictionary match on upper 2 bytes, low 2 literal
//	1110 + idx+b    mmmx — dictionary match on upper 3 bytes, low 1 literal
type CPACK struct{}

// NewCPACK returns the C-PACK+Z codec.
func NewCPACK() *CPACK { return &CPACK{} }

// Name implements Codec.
func (*CPACK) Name() string { return "CPACK-Z" }

// CompLatency implements Codec.
func (*CPACK) CompLatency() int { return 6 }

// DecompLatency implements Codec (Table I).
func (*CPACK) DecompLatency() int { return 8 }

const cpackDictSize = 16
const cpackIdxBits = 4

// Compress implements Codec.
func (*CPACK) Compress(line []byte) Encoded {
	checkLine(line)
	if isZeroLine(line) {
		// Zero-line detection: a single flag, stored in the tag. Account
		// one byte so the size stays nonzero for the sub-block math.
		return Encoded{Data: []byte{0xFF}, Size: 1}
	}
	var w bitWriter
	cpackEncode(line, &w)
	size := w.SizeBytes() - 1 // marker byte is a software artifact
	raw := false
	if size >= LineSize {
		size = LineSize
		raw = true
	}
	return Encoded{Data: w.Bytes(), Size: size, Raw: raw}
}

// Measure implements Codec: the same encode core against a counting
// writer, so the reported size is bit-exact with Compress.
//
//lint:hotpath
func (*CPACK) Measure(line []byte) Encoded {
	checkLine(line)
	if isZeroLine(line) {
		return Encoded{Size: 1}
	}
	w := bitWriter{countOnly: true}
	cpackEncode(line, &w)
	size := w.SizeBytes() - 1
	raw := false
	if size >= LineSize {
		size = LineSize
		raw = true
	}
	return Encoded{Size: size, Raw: raw}
}

// cpackEncode is the shared encode core behind Compress and Measure for
// non-zero lines, including the software stream's marker byte.
//
//lint:hotpath
func cpackEncode(line []byte, w *bitWriter) {
	words := words32(line)
	var dict [cpackDictSize]uint32
	dictLen := 0
	push := func(v uint32) {
		// FIFO replacement, as in the C-PACK hardware.
		copy(dict[1:], dict[:cpackDictSize-1])
		dict[0] = v
		if dictLen < cpackDictSize {
			dictLen++
		}
	}
	w.WriteBits(0, 8) // non-zero-line marker byte for the software stream
	for _, v := range words {
		switch {
		case v == 0:
			w.WriteBits(0b00, 2)
		case cpackFind(dict[:dictLen], v, 0xFFFFFFFF) >= 0:
			idx := cpackFind(dict[:dictLen], v, 0xFFFFFFFF)
			w.WriteBits(0b10, 2)
			w.WriteBits(uint64(idx), cpackIdxBits)
		case v&0xFFFFFF00 == 0:
			w.WriteBits(0b1100, 4)
			w.WriteBits(uint64(v&0xFF), 8)
			push(v)
		case cpackFind(dict[:dictLen], v, 0xFFFFFF00) >= 0:
			idx := cpackFind(dict[:dictLen], v, 0xFFFFFF00)
			w.WriteBits(0b1110, 4)
			w.WriteBits(uint64(idx), cpackIdxBits)
			w.WriteBits(uint64(v&0xFF), 8)
			push(v)
		case cpackFind(dict[:dictLen], v, 0xFFFF0000) >= 0:
			idx := cpackFind(dict[:dictLen], v, 0xFFFF0000)
			w.WriteBits(0b1101, 4)
			w.WriteBits(uint64(idx), cpackIdxBits)
			w.WriteBits(uint64(v&0xFFFF), 16)
			push(v)
		default:
			w.WriteBits(0b01, 2)
			w.WriteBits(uint64(v), 32)
			push(v)
		}
	}
}

// cpackFind returns the index of the first dictionary entry equal to v
// under the given mask, or -1.
func cpackFind(dict []uint32, v, mask uint32) int {
	for i, d := range dict {
		if d&mask == v&mask {
			return i
		}
	}
	return -1
}

// Decompress implements Codec.
func (*CPACK) Decompress(enc Encoded) ([]byte, error) {
	if err := decodeFault("cpack"); err != nil {
		return nil, err
	}
	if len(enc.Data) == 0 {
		return nil, fmt.Errorf("cpack: empty stream")
	}
	if enc.Data[0] == 0xFF {
		return make([]byte, LineSize), nil
	}
	r := bitReader{buf: enc.Data, pos: 8}
	var dict [cpackDictSize]uint32
	dictLen := 0
	push := func(v uint32) {
		copy(dict[1:], dict[:cpackDictSize-1])
		dict[0] = v
		if dictLen < cpackDictSize {
			dictLen++
		}
	}
	readIdx := func() (int, error) {
		idx, err := r.ReadBits(cpackIdxBits)
		if err != nil {
			return 0, err
		}
		if int(idx) >= dictLen {
			return 0, fmt.Errorf("cpack: dictionary index %d out of range %d", idx, dictLen)
		}
		return int(idx), nil
	}
	var words [WordsPerLine]uint32
	for i := 0; i < WordsPerLine; i++ {
		c, err := r.ReadBits(2)
		if err != nil {
			return nil, fmt.Errorf("cpack: %w", err)
		}
		switch c {
		case 0b00: // zero word
		case 0b01:
			v, err := r.ReadBits(32)
			if err != nil {
				return nil, fmt.Errorf("cpack: %w", err)
			}
			words[i] = uint32(v)
			push(words[i])
		case 0b10:
			idx, err := readIdx()
			if err != nil {
				return nil, err
			}
			words[i] = dict[idx]
		case 0b11:
			sub, err := r.ReadBit()
			if err != nil {
				return nil, fmt.Errorf("cpack: %w", err)
			}
			subSub, err := r.ReadBit()
			if err != nil {
				return nil, fmt.Errorf("cpack: %w", err)
			}
			switch sub<<1 | subSub {
			case 0b00: // 1100 zzzx
				b, err := r.ReadBits(8)
				if err != nil {
					return nil, fmt.Errorf("cpack: %w", err)
				}
				words[i] = uint32(b)
				push(words[i])
			case 0b01: // 1101 mmxx
				idx, err := readIdx()
				if err != nil {
					return nil, err
				}
				lo, err := r.ReadBits(16)
				if err != nil {
					return nil, fmt.Errorf("cpack: %w", err)
				}
				words[i] = dict[idx]&0xFFFF0000 | uint32(lo)
				push(words[i])
			case 0b10: // 1110 mmmx
				idx, err := readIdx()
				if err != nil {
					return nil, err
				}
				b, err := r.ReadBits(8)
				if err != nil {
					return nil, fmt.Errorf("cpack: %w", err)
				}
				words[i] = dict[idx]&0xFFFFFF00 | uint32(b)
				push(words[i])
			default:
				return nil, fmt.Errorf("cpack: reserved code 1111")
			}
		}
	}
	return putWords32(words), nil
}
