package compress

import "fmt"

// FPC implements Frequent Pattern Compression (Alameldeen & Wood). Each
// 32-bit word is matched against a small set of frequent patterns and
// stored as a 3-bit prefix plus the pattern's significant bits. Table I
// models a 5-cycle decompression latency.
type FPC struct{}

// NewFPC returns the FPC codec.
func NewFPC() *FPC { return &FPC{} }

// Name implements Codec.
func (*FPC) Name() string { return "FPC" }

// CompLatency implements Codec.
func (*FPC) CompLatency() int { return 3 }

// DecompLatency implements Codec (Table I).
func (*FPC) DecompLatency() int { return 5 }

// FPC word patterns, in prefix order.
const (
	fpcZeroRun   = 0 // run of 1-8 all-zero words; 3-bit run length
	fpcSE4       = 1 // 4-bit sign-extended value
	fpcSE8       = 2 // 8-bit sign-extended value
	fpcSE16      = 3 // 16-bit sign-extended value
	fpcHalfZero  = 4 // lower halfword zero, upper halfword significant
	fpcTwoSE8    = 5 // two halfwords, each an 8-bit sign-extended value
	fpcRepBytes  = 6 // one byte repeated four times
	fpcUncompr   = 7 // verbatim 32-bit word
	fpcPrefixLen = 3
)

// fpcPayloadBits returns the payload bit count for each pattern.
func fpcPayloadBits(p uint64) uint {
	switch p {
	case fpcZeroRun:
		return 3
	case fpcSE4:
		return 4
	case fpcSE8:
		return 8
	case fpcSE16, fpcHalfZero, fpcTwoSE8:
		return 16
	case fpcRepBytes:
		return 8
	case fpcUncompr:
		return 32
	default:
		badFPCPattern()
		return 0
	}
}

// badFPCPattern stays out of line (go:noinline) so fpcPayloadBits can
// inline into the //lint:hotpath encode core with no escape of its own.
//
//go:noinline
func badFPCPattern() {
	//lint:allow panic-audit pattern tags are an exhaustive 3-bit enum written by this codec
	panic("compress: bad FPC pattern")
}

// Compress implements Codec.
func (*FPC) Compress(line []byte) Encoded {
	checkLine(line)
	var w bitWriter
	fpcEncode(line, &w)
	size := w.SizeBytes()
	raw := false
	if size >= LineSize {
		size = LineSize
		raw = true
	}
	return Encoded{Data: w.Bytes(), Size: size, Raw: raw}
}

// Measure implements Codec: the same encode core against a counting
// writer, so the reported size is bit-exact with Compress.
//
//lint:hotpath
func (*FPC) Measure(line []byte) Encoded {
	checkLine(line)
	w := bitWriter{countOnly: true}
	fpcEncode(line, &w)
	size := w.SizeBytes()
	raw := false
	if size >= LineSize {
		size = LineSize
		raw = true
	}
	return Encoded{Size: size, Raw: raw}
}

// fpcEncode is the shared encode core behind Compress and Measure.
//
//lint:hotpath
func fpcEncode(line []byte, w *bitWriter) {
	words := words32(line)
	for i := 0; i < WordsPerLine; {
		v := words[i]
		if v == 0 {
			run := 1
			for i+run < WordsPerLine && words[i+run] == 0 && run < 8 {
				run++
			}
			w.WriteBits(fpcZeroRun, fpcPrefixLen)
			w.WriteBits(uint64(run-1), 3)
			i += run
			continue
		}
		p, payload := fpcMatch(v)
		w.WriteBits(p, fpcPrefixLen)
		w.WriteBits(payload, fpcPayloadBits(p))
		i++
	}
}

// fpcMatch picks the best (smallest) pattern for a nonzero word.
func fpcMatch(v uint32) (pattern, payload uint64) {
	s := int64(int32(v))
	switch {
	case fitsSigned(s, 4):
		return fpcSE4, uint64(v) & 0xF
	case fitsSigned(s, 8):
		return fpcSE8, uint64(v) & 0xFF
	case fitsSigned(s, 16):
		return fpcSE16, uint64(v) & 0xFFFF
	case v&0xFFFF == 0:
		return fpcHalfZero, uint64(v >> 16)
	case fitsSigned(int64(int16(v&0xFFFF)), 8) && fitsSigned(int64(int16(v>>16)), 8):
		// Each halfword is representable as a sign-extended byte.
		return fpcTwoSE8, uint64(v>>16&0xFF)<<8 | uint64(v&0xFF)
	case fpcIsRepByte(v):
		return fpcRepBytes, uint64(v & 0xFF)
	default:
		return fpcUncompr, uint64(v)
	}
}

// fpcIsRepByte reports whether all four bytes of v are equal.
func fpcIsRepByte(v uint32) bool {
	b := v & 0xFF
	return v == b|b<<8|b<<16|b<<24
}

// Decompress implements Codec.
func (*FPC) Decompress(enc Encoded) ([]byte, error) {
	if err := decodeFault("fpc"); err != nil {
		return nil, err
	}
	r := bitReader{buf: enc.Data}
	var words [WordsPerLine]uint32
	for i := 0; i < WordsPerLine; {
		p, err := r.ReadBits(fpcPrefixLen)
		if err != nil {
			return nil, fmt.Errorf("fpc: %w", err)
		}
		payload, err := r.ReadBits(fpcPayloadBits(p))
		if err != nil {
			return nil, fmt.Errorf("fpc: %w", err)
		}
		switch p {
		case fpcZeroRun:
			run := int(payload) + 1
			if i+run > WordsPerLine {
				return nil, fmt.Errorf("fpc: zero run overflows line")
			}
			i += run // words are already zero
		case fpcSE4:
			words[i] = uint32(signExtend(payload, 4))
			i++
		case fpcSE8:
			words[i] = uint32(signExtend(payload, 8))
			i++
		case fpcSE16:
			words[i] = uint32(signExtend(payload, 16))
			i++
		case fpcHalfZero:
			words[i] = uint32(payload) << 16
			i++
		case fpcTwoSE8:
			lo := uint32(signExtend(payload&0xFF, 8)) & 0xFFFF
			hi := uint32(signExtend(payload>>8, 8)) & 0xFFFF
			words[i] = hi<<16 | lo
			i++
		case fpcRepBytes:
			b := uint32(payload)
			words[i] = b | b<<8 | b<<16 | b<<24
			i++
		case fpcUncompr:
			words[i] = uint32(payload)
			i++
		}
	}
	return putWords32(words), nil
}
