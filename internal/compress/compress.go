// Package compress implements the five cache-line compression algorithms
// evaluated in the LATTE-CC paper (Table I):
//
//   - BDI    — Base-Delta-Immediate (Pekhimenko et al., PACT 2012)
//   - FPC    — Frequent Pattern Compression (Alameldeen & Wood)
//   - CPACK  — C-PACK dictionary compression with zero-line detection
//   - BPC    — Bit-Plane Compression (Kim et al., ISCA 2016)
//   - SC     — Huffman-based Statistical Compression (Arelakis & Stenström)
//
// All codecs operate on fixed-size cache lines (LineSize bytes) and produce
// self-contained byte streams that round-trip exactly. Compressed sizes are
// reported in bytes; the compressed cache rounds them up to 32-byte
// sub-blocks when allocating data storage.
//
// Every codec is deterministic. SC is the only stateful codec: its Huffman
// code book is rebuilt periodically from a value-frequency table that is
// trained on inserted lines, mirroring the hardware VFT of Section IV-C2.
package compress

import (
	"encoding/binary"
	"fmt"

	"lattecc/internal/fault"
)

// LineSize is the cache line size in bytes (Table II: 128B lines).
const LineSize = 128

// WordsPerLine is the number of 32-bit words in a cache line.
const WordsPerLine = LineSize / 4

// Codec compresses and decompresses single cache lines.
type Codec interface {
	// Name returns the short algorithm name used in reports ("BDI", "SC", ...).
	Name() string

	// CompLatency returns the compression latency in SM cycles.
	CompLatency() int

	// DecompLatency returns the decompression latency in SM cycles. This
	// is the extra hit latency a compressed line pays (before queueing).
	DecompLatency() int

	// Compress encodes line (which must be LineSize bytes) and returns the
	// encoded form. If the line is incompressible under this algorithm the
	// codec returns the line stored verbatim (compressed size == LineSize
	// plus any unavoidable header); CompressedSize reports the size that
	// the cache should account for.
	Compress(line []byte) Encoded

	// Decompress decodes an Encoded value produced by this codec and
	// returns the original LineSize bytes. It returns an error if the
	// encoding is corrupt or was produced by an incompatible code book.
	Decompress(enc Encoded) ([]byte, error)

	// Measure returns what Compress would report for line — Size, Raw,
	// and Generation — without materialising the encoded stream (Data is
	// nil). The cache only ever stores sizes, so its fill path uses
	// Measure and never pays the stream's allocations; paranoid mode
	// cross-checks Measure against a full Compress on every fill.
	// Implementations are //lint:hotpath: they must not heap-allocate.
	Measure(line []byte) Encoded
}

// Encoded is a compressed cache line together with its accounting size.
type Encoded struct {
	// Data is the self-contained encoded byte stream.
	Data []byte
	// Size is the size in bytes the cache should account for. It can be
	// smaller than len(Data) when the hardware encoding packs bits more
	// tightly than the byte-aligned software stream, and is never larger
	// than LineSize (incompressible lines are stored raw).
	Size int
	// Raw reports that the line is stored uncompressed (no decompression
	// latency applies on hits).
	Raw bool
	// Generation tags stateful codecs' code books (SC). A line encoded
	// under an old generation cannot be decoded after a rebuild; the
	// cache flushes such lines when the controller requests it.
	Generation uint64
}

// CompressionRatio returns the ratio of the original line size to the
// compressed size (>= 1 for any successful compression).
func (e Encoded) CompressionRatio() float64 {
	if e.Size <= 0 {
		return 1
	}
	return float64(LineSize) / float64(e.Size)
}

// decodeFault is the codec.decode fault-injection point: every codec's
// Decompress consults it before touching its stream, so the conformance
// layer can prove that a decode failure surfaces as an error all the way
// up through the cache's paranoid fill checks and the daemon's job
// lifecycle — never as a panic or a silently wrong line.
func decodeFault(codec string) error {
	if fault.Hit("codec.decode") {
		return fault.Errorf("codec.decode", "%s decode failed", codec)
	}
	return nil
}

// checkLine panics if the input is not exactly one cache line. Codecs are
// internal components fed by the cache; a wrong size is a programming error.
func checkLine(line []byte) {
	if len(line) != LineSize {
		badLineSize(len(line))
	}
}

// badLineSize stays out of line (go:noinline) so checkLine can inline
// into the //lint:hotpath Measure paths without dragging the panic's
// fmt boxing into their escape-analysis range.
//
//go:noinline
func badLineSize(n int) {
	//lint:allow panic-audit a wrong line size is a cache-integration bug, not input; same contract as checkLine
	panic(fmt.Sprintf("compress: line must be %d bytes, got %d", LineSize, n))
}

// words32 reinterprets a line as little-endian 32-bit words.
func words32(line []byte) [WordsPerLine]uint32 {
	var w [WordsPerLine]uint32
	for i := range w {
		w[i] = binary.LittleEndian.Uint32(line[i*4:])
	}
	return w
}

// putWords32 writes little-endian 32-bit words into a LineSize buffer.
func putWords32(w [WordsPerLine]uint32) []byte {
	out := make([]byte, LineSize)
	for i, v := range w {
		binary.LittleEndian.PutUint32(out[i*4:], v)
	}
	return out
}

// isZeroLine reports whether every byte of the line is zero.
func isZeroLine(line []byte) bool {
	for _, b := range line {
		if b != 0 {
			return false
		}
	}
	return true
}

// bitWriter packs bits most-significant-first into a byte stream. The codecs
// use it to produce the exact bit counts the hardware encodings would, while
// still emitting a decodable software stream. With countOnly set it only
// tracks the bit count — the Measure fast path shares each codec's encode
// core without ever touching a buffer.
type bitWriter struct {
	buf       []byte
	nbit      uint
	countOnly bool
}

// WriteBits appends the low n bits of v (n <= 64), most significant first.
func (w *bitWriter) WriteBits(v uint64, n uint) {
	if n > 64 {
		badBitCount()
	}
	if w.countOnly {
		w.nbit += n
		return
	}
	for i := int(n) - 1; i >= 0; i-- {
		bit := (v >> uint(i)) & 1
		if w.nbit%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		if bit != 0 {
			w.buf[len(w.buf)-1] |= 1 << (7 - w.nbit%8)
		}
		w.nbit++
	}
}

// badBitCount stays out of line (go:noinline) so WriteBits can inline
// into the //lint:hotpath encode cores with no escape of its own.
//
//go:noinline
func badBitCount() {
	//lint:allow panic-audit bit-count is a compile-time codec constant; >64 is a codec bug, not input
	panic("compress: WriteBits n > 64")
}

// Bits returns the number of bits written so far.
func (w *bitWriter) Bits() int { return int(w.nbit) }

// Bytes returns the packed stream (final partial byte zero-padded).
func (w *bitWriter) Bytes() []byte { return w.buf }

// SizeBytes returns the stream size rounded up to whole bytes.
func (w *bitWriter) SizeBytes() int { return (int(w.nbit) + 7) / 8 }

// bitReader reads bits most-significant-first from a byte stream.
type bitReader struct {
	buf []byte
	pos uint // bit position
}

// ReadBits reads n bits (n <= 64) and returns them right-aligned. It
// returns an error if the stream is exhausted.
func (r *bitReader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		//lint:allow panic-audit bit-count is a compile-time codec constant; >64 is a codec bug, not input
		panic("compress: ReadBits n > 64")
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		byteIdx := r.pos / 8
		if int(byteIdx) >= len(r.buf) {
			return 0, fmt.Errorf("compress: bit stream exhausted at bit %d", r.pos)
		}
		bit := (r.buf[byteIdx] >> (7 - r.pos%8)) & 1
		v = v<<1 | uint64(bit)
		r.pos++
	}
	return v, nil
}

// ReadBit reads a single bit.
func (r *bitReader) ReadBit() (uint64, error) { return r.ReadBits(1) }

// signExtend sign-extends the low n bits of v to 64 bits.
func signExtend(v uint64, n uint) int64 {
	shift := 64 - n
	return int64(v<<shift) >> shift
}

// fitsSigned reports whether the signed value v is representable in n bits.
func fitsSigned(v int64, n uint) bool {
	if n >= 64 {
		return true
	}
	lim := int64(1) << (n - 1)
	return v >= -lim && v < lim
}
