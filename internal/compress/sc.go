package compress

import (
	"container/heap"
	"fmt"
	"sort"
)

// SC implements Huffman-coding based Statistical Compression (Arelakis &
// Stenström, "SC2"), as adapted for GPUs by the LATTE-CC paper
// (Section IV-C2). SC exploits temporal value locality: 32-bit values that
// recur across the working set receive short variable-length codes.
//
// The hardware organisation the paper models — and this codec mirrors — is:
//
//   - a 1024-entry value-frequency table (VFT) with 12-bit saturating
//     counters, trained on the values of inserted cache lines;
//   - a code-word table in the compressor and a decompression lookup table
//     (DeLUT), both (re)generated from the VFT at period boundaries;
//   - values absent from the code book escape to a literal encoding.
//
// Because a rebuild invalidates every line encoded under the old code
// book, Encoded values carry the code-book generation, and the cache
// flushes compressed lines when the controller requests the rebuild.
type SC struct {
	vft        *VFT
	table      *huffTable
	generation uint64
}

// NewSC returns an SC codec with an empty value-frequency table and no
// code book. Until the first Rebuild, Compress stores lines raw (the
// hardware behaves identically while the first period's VFT trains).
func NewSC() *SC { return &SC{vft: NewVFT(VFTEntries)} }

// Name implements Codec.
func (*SC) Name() string { return "SC" }

// CompLatency implements Codec (6 cycles, Section IV-C2).
func (*SC) CompLatency() int { return 6 }

// DecompLatency implements Codec (14 cycles, Section IV-C2).
func (*SC) DecompLatency() int { return 14 }

// Generation returns the current code-book generation. Lines encoded under
// older generations can no longer be decoded.
func (s *SC) Generation() uint64 { return s.generation }

// Train samples the 32-bit values of a line into the value-frequency
// table. The cache calls this on every insertion, matching the hardware
// VFT that snoops the fill path.
func (s *SC) Train(line []byte) {
	checkLine(line)
	w := words32(line)
	for _, v := range w[:] {
		s.vft.Observe(v)
	}
}

// Rebuild regenerates the Huffman code book from the current VFT contents,
// clears the VFT for the next period, and bumps the generation
// (Section IV-C2: the VFT is rebuilt during the final EP of each period).
// An empty VFT (a period with no sampled values) keeps the existing code
// book and generation — there is nothing to rebuild from, and invalidating
// lines for an unchanged book would be pure waste. It reports whether the
// code book changed (callers flush stale lines only in that case).
func (s *SC) Rebuild() bool {
	counts := s.vft.Snapshot()
	if len(counts) == 0 {
		return false
	}
	s.vft.Reset()
	s.generation++
	s.table = buildHuffTable(counts)
	return s.table != nil
}

// Compress implements Codec. Each 32-bit word is emitted as its Huffman
// code, or as the escape code followed by a 32-bit literal when the value
// is not in the code book.
func (s *SC) Compress(line []byte) Encoded {
	checkLine(line)
	if s.table == nil {
		return Encoded{Data: append([]byte(nil), line...), Size: LineSize, Raw: true, Generation: s.generation}
	}
	words := words32(line)
	var w bitWriter
	for _, v := range words {
		if c, ok := s.table.codes[v]; ok {
			w.WriteBits(c.bits, c.len)
		} else {
			esc := s.table.escape
			w.WriteBits(esc.bits, esc.len)
			w.WriteBits(uint64(v), 32)
		}
	}
	size := w.SizeBytes()
	if size >= LineSize {
		return Encoded{Data: append([]byte(nil), line...), Size: LineSize, Raw: true, Generation: s.generation}
	}
	return Encoded{Data: w.Bytes(), Size: size, Generation: s.generation}
}

// Measure implements Codec: code-length sums from the code book, no
// bit stream. The rounding matches bitWriter.SizeBytes, so the result
// is bit-exact with Compress under the same generation.
//
//lint:hotpath
func (s *SC) Measure(line []byte) Encoded {
	checkLine(line)
	if s.table == nil {
		return Encoded{Size: LineSize, Raw: true, Generation: s.generation}
	}
	words := words32(line)
	var nbit uint
	for _, v := range words {
		if c, ok := s.table.codes[v]; ok {
			nbit += c.len
		} else {
			nbit += s.table.escape.len + 32
		}
	}
	size := (int(nbit) + 7) / 8
	if size >= LineSize {
		return Encoded{Size: LineSize, Raw: true, Generation: s.generation}
	}
	return Encoded{Size: size, Generation: s.generation}
}

// Decompress implements Codec. It fails if the line was encoded under a
// different code-book generation — such lines must have been flushed.
func (s *SC) Decompress(enc Encoded) ([]byte, error) {
	if err := decodeFault("sc"); err != nil {
		return nil, err
	}
	if enc.Raw {
		if len(enc.Data) < LineSize {
			return nil, fmt.Errorf("sc: raw payload too short")
		}
		return append([]byte(nil), enc.Data[:LineSize]...), nil
	}
	if enc.Generation != s.generation {
		return nil, fmt.Errorf("sc: stale code book (line gen %d, current %d)", enc.Generation, s.generation)
	}
	if s.table == nil {
		return nil, fmt.Errorf("sc: no code book")
	}
	r := bitReader{buf: enc.Data}
	var words [WordsPerLine]uint32
	for i := range words {
		sym, err := s.table.decodeSymbol(&r)
		if err != nil {
			return nil, fmt.Errorf("sc: %w", err)
		}
		if sym.escape {
			lit, err := r.ReadBits(32)
			if err != nil {
				return nil, fmt.Errorf("sc: %w", err)
			}
			words[i] = uint32(lit)
		} else {
			words[i] = sym.value
		}
	}
	return putWords32(words), nil
}

// CodeEntry is one published code-book entry: the canonical Huffman code
// (Bits, MSB-first, Len bits long) for either a concrete 32-bit value or
// the escape symbol that prefixes 32-bit literals.
type CodeEntry struct {
	Value  uint32
	Escape bool
	Bits   uint64
	Len    uint
}

// CodeBook returns the current code book in canonical order (shortest
// codes first), or nil before the first rebuild. Independent reference
// decoders (internal/oracle) use it to decode SC streams bit by bit
// without sharing any of this codec's decode tables.
func (s *SC) CodeBook() []CodeEntry {
	if s.table == nil {
		return nil
	}
	t := s.table
	out := make([]CodeEntry, 0, len(t.symbols))
	for l := uint(1); l <= maxCodeLen; l++ {
		for i := 0; i < t.countAtLen[l]; i++ {
			sym := t.symbols[t.firstIndex[l]+i]
			out = append(out, CodeEntry{
				Value:  sym.value,
				Escape: sym.escape,
				Bits:   t.firstCode[l] + uint64(i),
				Len:    l,
			})
		}
	}
	return out
}

// VFTEntries is the value-frequency table capacity (Section IV-C2).
const VFTEntries = 1024

// vftCounterMax is the saturating limit of the 12-bit VFT counters.
const vftCounterMax = 1<<12 - 1

// VFT is a bounded value-frequency table with saturating counters. When
// full, unseen values are not admitted — matching a simple hardware table
// without replacement, which is the conservative choice.
type VFT struct {
	capacity int
	counts   map[uint32]uint16
}

// NewVFT returns an empty VFT with the given entry capacity.
func NewVFT(capacity int) *VFT {
	return &VFT{capacity: capacity, counts: make(map[uint32]uint16)}
}

// Observe counts one occurrence of v, saturating at the 12-bit limit.
func (t *VFT) Observe(v uint32) {
	c, ok := t.counts[v]
	if !ok {
		if len(t.counts) >= t.capacity {
			return
		}
		t.counts[v] = 1
		return
	}
	if c < vftCounterMax {
		t.counts[v] = c + 1
	}
}

// Len returns the number of tracked values.
func (t *VFT) Len() int { return len(t.counts) }

// Snapshot returns the tracked values and counts.
func (t *VFT) Snapshot() map[uint32]uint16 {
	out := make(map[uint32]uint16, len(t.counts))
	//lint:allow determinism map-to-map copy; iteration order cannot affect the result
	for v, c := range t.counts {
		out[v] = c
	}
	return out
}

// Reset clears the table.
func (t *VFT) Reset() { t.counts = make(map[uint32]uint16) }

// huffCode is one canonical Huffman code.
type huffCode struct {
	bits uint64
	len  uint
}

// huffSymbol is a decoded symbol: either a concrete value or the escape.
type huffSymbol struct {
	value  uint32
	escape bool
}

// huffTable is a canonical Huffman code book over 32-bit values plus one
// escape symbol, with a first-code decoding table (the DeLUT analogue).
type huffTable struct {
	codes  map[uint32]huffCode
	escape huffCode
	// canonical decode structures, indexed by code length 1..maxCodeLen
	firstCode  [maxCodeLen + 1]uint64
	firstIndex [maxCodeLen + 1]int
	countAtLen [maxCodeLen + 1]int
	symbols    []huffSymbol // in canonical order
}

// maxCodeLen bounds code lengths; frequencies are flattened until the
// bound holds, which mirrors the fixed-width DeLUT of the hardware.
const maxCodeLen = 24

// huffNode is a Huffman construction tree node.
type huffNode struct {
	weight      uint64
	sym         int // leaf symbol index, -1 for internal
	left, right *huffNode
	order       int // tie-break for determinism
}

type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].order < h[j].order
}
func (h huffHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x interface{}) { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// buildHuffTable constructs a canonical, length-bounded Huffman code book
// from value counts, adding an escape symbol with weight 1. Returns nil if
// there is nothing to encode.
func buildHuffTable(counts map[uint32]uint16) *huffTable {
	type sym struct {
		value  uint32
		escape bool
		weight uint64
	}
	syms := make([]sym, 0, len(counts)+1)
	//lint:allow determinism symbols are sorted by value immediately below, erasing map order
	for v, c := range counts {
		syms = append(syms, sym{value: v, weight: uint64(c)})
	}
	// Deterministic ordering for reproducible code books.
	sort.Slice(syms, func(i, j int) bool { return syms[i].value < syms[j].value })
	syms = append(syms, sym{escape: true, weight: 1})
	if len(syms) < 2 {
		return nil
	}

	weights := make([]uint64, len(syms))
	for i, s := range syms {
		weights[i] = s.weight
	}
	lengths := huffLengths(weights)
	// Flatten frequencies until the length bound holds.
	for tooLong(lengths) {
		for i := range weights {
			weights[i] = weights[i]/2 + 1
		}
		lengths = huffLengths(weights)
	}

	// Canonical assignment: sort symbols by (length, index).
	idx := make([]int, len(syms))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if lengths[idx[a]] != lengths[idx[b]] {
			return lengths[idx[a]] < lengths[idx[b]]
		}
		return idx[a] < idx[b]
	})

	t := &huffTable{codes: make(map[uint32]huffCode, len(syms))}
	t.symbols = make([]huffSymbol, len(syms))
	var code uint64
	var prevLen uint
	for rank, i := range idx {
		l := lengths[i]
		if l == 0 {
			l = 1 // degenerate single-symbol case
		}
		code <<= l - prevLen
		prevLen = l
		hc := huffCode{bits: code, len: l}
		if syms[i].escape {
			t.escape = hc
		} else {
			t.codes[syms[i].value] = hc
		}
		t.symbols[rank] = huffSymbol{value: syms[i].value, escape: syms[i].escape}
		if t.countAtLen[l] == 0 {
			t.firstCode[l] = code
			t.firstIndex[l] = rank
		}
		t.countAtLen[l]++
		code++
	}
	return t
}

// tooLong reports whether any code length exceeds the DeLUT bound.
func tooLong(lengths []uint) bool {
	for _, l := range lengths {
		if l > maxCodeLen {
			return true
		}
	}
	return false
}

// huffLengths computes Huffman code lengths for the given weights.
func huffLengths(weights []uint64) []uint {
	h := make(huffHeap, 0, len(weights))
	order := 0
	for i, w := range weights {
		h = append(h, &huffNode{weight: w, sym: i, order: order})
		order++
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*huffNode)
		b := heap.Pop(&h).(*huffNode)
		heap.Push(&h, &huffNode{weight: a.weight + b.weight, sym: -1, left: a, right: b, order: order})
		order++
	}
	lengths := make([]uint, len(weights))
	if h.Len() == 1 {
		assignDepths(h[0], 0, lengths)
	}
	return lengths
}

// assignDepths walks the tree recording leaf depths.
func assignDepths(n *huffNode, depth uint, lengths []uint) {
	if n.sym >= 0 {
		lengths[n.sym] = depth
		return
	}
	assignDepths(n.left, depth+1, lengths)
	assignDepths(n.right, depth+1, lengths)
}

// decodeSymbol reads one canonical code from the stream.
func (t *huffTable) decodeSymbol(r *bitReader) (huffSymbol, error) {
	var code uint64
	for l := uint(1); l <= maxCodeLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return huffSymbol{}, err
		}
		code = code<<1 | b
		if t.countAtLen[l] == 0 {
			continue
		}
		offset := int(code) - int(t.firstCode[l])
		if offset >= 0 && offset < t.countAtLen[l] {
			return t.symbols[t.firstIndex[l]+offset], nil
		}
	}
	return huffSymbol{}, fmt.Errorf("invalid Huffman code")
}
