package compress

import (
	"fmt"
	"sort"
)

// SC implements Huffman-coding based Statistical Compression (Arelakis &
// Stenström, "SC2"), as adapted for GPUs by the LATTE-CC paper
// (Section IV-C2). SC exploits temporal value locality: 32-bit values that
// recur across the working set receive short variable-length codes.
//
// The hardware organisation the paper models — and this codec mirrors — is:
//
//   - a 1024-entry value-frequency table (VFT) with 12-bit saturating
//     counters, trained on the values of inserted cache lines;
//   - a code-word table in the compressor and a decompression lookup table
//     (DeLUT), both (re)generated from the VFT at period boundaries;
//   - values absent from the code book escape to a literal encoding.
//
// Because a rebuild invalidates every line encoded under the old code
// book, Encoded values carry the code-book generation, and the cache
// flushes compressed lines when the controller requests the rebuild.
type SC struct {
	vft        *VFT
	table      *huffTable
	generation uint64
}

// NewSC returns an SC codec with an empty value-frequency table and no
// code book. Until the first Rebuild, Compress stores lines raw (the
// hardware behaves identically while the first period's VFT trains).
func NewSC() *SC { return &SC{vft: NewVFT(VFTEntries)} }

// Name implements Codec.
func (*SC) Name() string { return "SC" }

// CompLatency implements Codec (6 cycles, Section IV-C2).
func (*SC) CompLatency() int { return 6 }

// DecompLatency implements Codec (14 cycles, Section IV-C2).
func (*SC) DecompLatency() int { return 14 }

// Generation returns the current code-book generation. Lines encoded under
// older generations can no longer be decoded.
func (s *SC) Generation() uint64 { return s.generation }

// Train samples the 32-bit values of a line into the value-frequency
// table. The cache calls this on every insertion, matching the hardware
// VFT that snoops the fill path.
func (s *SC) Train(line []byte) {
	checkLine(line)
	w := words32(line)
	for _, v := range w[:] {
		s.vft.Observe(v)
	}
}

// Rebuild regenerates the Huffman code book from the current VFT contents,
// clears the VFT for the next period, and bumps the generation
// (Section IV-C2: the VFT is rebuilt during the final EP of each period).
// An empty VFT (a period with no sampled values) keeps the existing code
// book and generation — there is nothing to rebuild from, and invalidating
// lines for an unchanged book would be pure waste. It reports whether the
// code book changed (callers flush stale lines only in that case).
func (s *SC) Rebuild() bool {
	counts := s.vft.Snapshot()
	if len(counts) == 0 {
		return false
	}
	s.vft.Reset()
	s.generation++
	s.table = buildHuffTable(counts)
	return s.table != nil
}

// Compress implements Codec. Each 32-bit word is emitted as its Huffman
// code, or as the escape code followed by a 32-bit literal when the value
// is not in the code book.
func (s *SC) Compress(line []byte) Encoded {
	checkLine(line)
	if s.table == nil {
		return Encoded{Data: append([]byte(nil), line...), Size: LineSize, Raw: true, Generation: s.generation}
	}
	words := words32(line)
	var w bitWriter
	for _, v := range words {
		if c, ok := s.table.lookup.get(v); ok {
			w.WriteBits(c.bits, c.len)
		} else {
			esc := s.table.escape
			w.WriteBits(esc.bits, esc.len)
			w.WriteBits(uint64(v), 32)
		}
	}
	size := w.SizeBytes()
	if size >= LineSize {
		return Encoded{Data: append([]byte(nil), line...), Size: LineSize, Raw: true, Generation: s.generation}
	}
	return Encoded{Data: w.Bytes(), Size: size, Generation: s.generation}
}

// Measure implements Codec: code-length sums from the code book, no
// bit stream. The rounding matches bitWriter.SizeBytes, so the result
// is bit-exact with Compress under the same generation.
//
//lint:hotpath
func (s *SC) Measure(line []byte) Encoded {
	checkLine(line)
	if s.table == nil {
		return Encoded{Size: LineSize, Raw: true, Generation: s.generation}
	}
	words := words32(line)
	var nbit uint
	for _, v := range words {
		if c, ok := s.table.lookup.get(v); ok {
			nbit += c.len
		} else {
			nbit += s.table.escape.len + 32
		}
	}
	size := (int(nbit) + 7) / 8
	if size >= LineSize {
		return Encoded{Size: LineSize, Raw: true, Generation: s.generation}
	}
	return Encoded{Size: size, Generation: s.generation}
}

// Decompress implements Codec. It fails if the line was encoded under a
// different code-book generation — such lines must have been flushed.
func (s *SC) Decompress(enc Encoded) ([]byte, error) {
	if err := decodeFault("sc"); err != nil {
		return nil, err
	}
	if enc.Raw {
		if len(enc.Data) < LineSize {
			return nil, fmt.Errorf("sc: raw payload too short")
		}
		return append([]byte(nil), enc.Data[:LineSize]...), nil
	}
	if enc.Generation != s.generation {
		return nil, fmt.Errorf("sc: stale code book (line gen %d, current %d)", enc.Generation, s.generation)
	}
	if s.table == nil {
		return nil, fmt.Errorf("sc: no code book")
	}
	r := bitReader{buf: enc.Data}
	var words [WordsPerLine]uint32
	for i := range words {
		sym, err := s.table.decodeSymbol(&r)
		if err != nil {
			return nil, fmt.Errorf("sc: %w", err)
		}
		if sym.escape {
			lit, err := r.ReadBits(32)
			if err != nil {
				return nil, fmt.Errorf("sc: %w", err)
			}
			words[i] = uint32(lit)
		} else {
			words[i] = sym.value
		}
	}
	return putWords32(words), nil
}

// CodeEntry is one published code-book entry: the canonical Huffman code
// (Bits, MSB-first, Len bits long) for either a concrete 32-bit value or
// the escape symbol that prefixes 32-bit literals.
type CodeEntry struct {
	Value  uint32
	Escape bool
	Bits   uint64
	Len    uint
}

// CodeBook returns the current code book in canonical order (shortest
// codes first), or nil before the first rebuild. Independent reference
// decoders (internal/oracle) use it to decode SC streams bit by bit
// without sharing any of this codec's decode tables.
func (s *SC) CodeBook() []CodeEntry {
	if s.table == nil {
		return nil
	}
	t := s.table
	out := make([]CodeEntry, 0, len(t.symbols))
	for l := uint(1); l <= maxCodeLen; l++ {
		for i := 0; i < t.countAtLen[l]; i++ {
			sym := t.symbols[t.firstIndex[l]+i]
			out = append(out, CodeEntry{
				Value:  sym.value,
				Escape: sym.escape,
				Bits:   t.firstCode[l] + uint64(i),
				Len:    l,
			})
		}
	}
	return out
}

// VFTEntries is the value-frequency table capacity (Section IV-C2).
const VFTEntries = 1024

// vftCounterMax is the saturating limit of the 12-bit VFT counters.
const vftCounterMax = 1<<12 - 1

// VFT is a bounded value-frequency table with saturating counters. When
// full, unseen values are not admitted — matching a simple hardware table
// without replacement, which is the conservative choice.
// The table is open-addressed (linear probing over a power-of-two slot
// array at least 4x the entry capacity) rather than a Go map: Observe
// runs once per 32-bit word of every sampled fill, and the fixed probe
// sequence costs a fraction of a map access while allocating nothing
// after construction.
type VFT struct {
	capacity int
	size     int
	keys     []uint32
	counts   []uint16
	used     []bool
	mask     uint32
}

// NewVFT returns an empty VFT with the given entry capacity.
func NewVFT(capacity int) *VFT {
	slots := 16
	for slots < 4*capacity {
		slots <<= 1
	}
	return &VFT{
		capacity: capacity,
		keys:     make([]uint32, slots),
		counts:   make([]uint16, slots),
		used:     make([]bool, slots),
		mask:     uint32(slots - 1),
	}
}

// hashSlot mixes v (murmur3 finalizer) into a starting probe index.
// Load factor stays below 1/4, so probe chains are short; the sequence
// is a pure function of the inserted values, preserving determinism.
func hashSlot(v, mask uint32) uint32 {
	v ^= v >> 16
	v *= 0x85ebca6b
	v ^= v >> 13
	v *= 0xc2b2ae35
	v ^= v >> 16
	return v & mask
}

// Observe counts one occurrence of v, saturating at the 12-bit limit.
func (t *VFT) Observe(v uint32) {
	i := hashSlot(v, t.mask)
	for t.used[i] {
		if t.keys[i] == v {
			if t.counts[i] < vftCounterMax {
				t.counts[i]++
			}
			return
		}
		i = (i + 1) & t.mask
	}
	if t.size >= t.capacity {
		return
	}
	t.used[i] = true
	t.keys[i] = v
	t.counts[i] = 1
	t.size++
}

// Len returns the number of tracked values.
func (t *VFT) Len() int { return t.size }

// Snapshot returns the tracked values and counts.
func (t *VFT) Snapshot() map[uint32]uint16 {
	out := make(map[uint32]uint16, t.size)
	for i, u := range t.used {
		if u {
			out[t.keys[i]] = t.counts[i]
		}
	}
	return out
}

// Reset clears the table.
func (t *VFT) Reset() {
	for i := range t.used {
		t.used[i] = false
	}
	t.size = 0
}

// huffCode is one canonical Huffman code.
type huffCode struct {
	bits uint64
	len  uint
}

// huffSymbol is a decoded symbol: either a concrete value or the escape.
type huffSymbol struct {
	value  uint32
	escape bool
}

// huffTable is a canonical Huffman code book over 32-bit values plus one
// escape symbol, with a first-code decoding table (the DeLUT analogue).
type huffTable struct {
	codes  map[uint32]huffCode // full book, for inspection and tests
	lookup codeIndex           // open-addressed mirror of codes for the hot encode paths
	escape huffCode
	// canonical decode structures, indexed by code length 1..maxCodeLen
	firstCode  [maxCodeLen + 1]uint64
	firstIndex [maxCodeLen + 1]int
	countAtLen [maxCodeLen + 1]int
	symbols    []huffSymbol // in canonical order
}

// maxCodeLen bounds code lengths; frequencies are flattened until the
// bound holds, which mirrors the fixed-width DeLUT of the hardware.
const maxCodeLen = 24

// codeIndex is an open-addressed (linear-probing) value→code lookup,
// built once per Rebuild and read-only afterwards. Compress/Measure
// probe it once per 32-bit word of every line; see the VFT comment for
// why this beats a Go map on that path.
type codeIndex struct {
	keys  []uint32
	codes []huffCode
	used  []bool
	mask  uint32
}

func newCodeIndex(entries int) codeIndex {
	slots := 16
	for slots < 4*entries {
		slots <<= 1
	}
	return codeIndex{
		keys:  make([]uint32, slots),
		codes: make([]huffCode, slots),
		used:  make([]bool, slots),
		mask:  uint32(slots - 1),
	}
}

func (t *codeIndex) put(v uint32, c huffCode) {
	i := hashSlot(v, t.mask)
	for t.used[i] {
		if t.keys[i] == v {
			t.codes[i] = c
			return
		}
		i = (i + 1) & t.mask
	}
	t.used[i] = true
	t.keys[i] = v
	t.codes[i] = c
}

func (t *codeIndex) get(v uint32) (huffCode, bool) {
	i := hashSlot(v, t.mask)
	for t.used[i] {
		if t.keys[i] == v {
			return t.codes[i], true
		}
		i = (i + 1) & t.mask
	}
	return huffCode{}, false
}

// huffNode is a Huffman construction tree node. Nodes live in one slab
// per huffLengths call, addressed by index; the index doubles as the
// creation-order tie-break, so ordering by (weight, index) is total and
// the merge sequence is deterministic.
type huffNode struct {
	weight      uint64
	left, right int32 // slab indices of children, -1 for leaves
	sym         int32 // leaf symbol index, -1 for internal
	depth       uint32
}

// buildHuffTable constructs a canonical, length-bounded Huffman code book
// from value counts, adding an escape symbol with weight 1. Returns nil if
// there is nothing to encode.
func buildHuffTable(counts map[uint32]uint16) *huffTable {
	type sym struct {
		value  uint32
		escape bool
		weight uint64
	}
	syms := make([]sym, 0, len(counts)+1)
	//lint:allow determinism symbols are sorted by value immediately below, erasing map order
	for v, c := range counts {
		syms = append(syms, sym{value: v, weight: uint64(c)})
	}
	// Deterministic ordering for reproducible code books.
	sort.Slice(syms, func(i, j int) bool { return syms[i].value < syms[j].value })
	syms = append(syms, sym{escape: true, weight: 1})
	if len(syms) < 2 {
		return nil
	}

	weights := make([]uint64, len(syms))
	for i, s := range syms {
		weights[i] = s.weight
	}
	lengths := huffLengths(weights)
	// Flatten frequencies until the length bound holds.
	for tooLong(lengths) {
		for i := range weights {
			weights[i] = weights[i]/2 + 1
		}
		lengths = huffLengths(weights)
	}

	// Canonical assignment: sort symbols by (length, index).
	idx := make([]int, len(syms))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if lengths[idx[a]] != lengths[idx[b]] {
			return lengths[idx[a]] < lengths[idx[b]]
		}
		return idx[a] < idx[b]
	})

	t := &huffTable{
		codes:  make(map[uint32]huffCode, len(syms)),
		lookup: newCodeIndex(len(syms)),
	}
	t.symbols = make([]huffSymbol, len(syms))
	var code uint64
	var prevLen uint
	for rank, i := range idx {
		l := lengths[i]
		if l == 0 {
			l = 1 // degenerate single-symbol case
		}
		code <<= l - prevLen
		prevLen = l
		hc := huffCode{bits: code, len: l}
		if syms[i].escape {
			t.escape = hc
		} else {
			t.codes[syms[i].value] = hc
			t.lookup.put(syms[i].value, hc)
		}
		t.symbols[rank] = huffSymbol{value: syms[i].value, escape: syms[i].escape}
		if t.countAtLen[l] == 0 {
			t.firstCode[l] = code
			t.firstIndex[l] = rank
		}
		t.countAtLen[l]++
		code++
	}
	return t
}

// tooLong reports whether any code length exceeds the DeLUT bound.
func tooLong(lengths []uint) bool {
	for _, l := range lengths {
		if l > maxCodeLen {
			return true
		}
	}
	return false
}

// huffLengths computes Huffman code lengths for the given weights.
// Rebuild calls this from the flatten loop on every EP that retrains, so
// the construction is allocation-lean: one node slab and one index heap
// instead of a boxed pointer node per symbol and merge (which used to be
// ~90% of the simulator's total allocation count). The heap orders by
// (weight, slab index); slab index equals creation order, the ordering
// is total, and the pop/merge sequence — and therefore every code
// length — is identical to the container/heap version this replaces.
func huffLengths(weights []uint64) []uint {
	n := len(weights)
	lengths := make([]uint, n)
	if n == 0 {
		return lengths
	}
	nodes := make([]huffNode, n, 2*n-1)
	for i, w := range weights {
		nodes[i] = huffNode{weight: w, sym: int32(i), left: -1, right: -1}
	}
	less := func(a, b int32) bool {
		if nodes[a].weight != nodes[b].weight {
			return nodes[a].weight < nodes[b].weight
		}
		return a < b
	}
	h := make([]int32, n)
	for i := range h {
		h[i] = int32(i)
	}
	down := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(h) {
				return
			}
			c := l
			if r := l + 1; r < len(h) && less(h[r], h[l]) {
				c = r
			}
			if !less(h[c], h[i]) {
				return
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		down(i)
	}
	pop := func() int32 {
		top := h[0]
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		down(0)
		return top
	}
	for len(h) > 1 {
		a := pop()
		b := pop()
		nodes = append(nodes, huffNode{weight: nodes[a].weight + nodes[b].weight, left: a, right: b, sym: -1})
		// Push: sift the newly created node up from the tail.
		h = append(h, int32(len(nodes)-1))
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	// Children precede their parent in the slab, so one reverse pass from
	// the root assigns every leaf depth.
	root := h[0]
	for i := int(root); i >= 0; i-- {
		nd := &nodes[i]
		if nd.sym >= 0 {
			lengths[nd.sym] = uint(nd.depth)
		} else {
			nodes[nd.left].depth = nd.depth + 1
			nodes[nd.right].depth = nd.depth + 1
		}
	}
	return lengths
}

// decodeSymbol reads one canonical code from the stream.
func (t *huffTable) decodeSymbol(r *bitReader) (huffSymbol, error) {
	var code uint64
	for l := uint(1); l <= maxCodeLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return huffSymbol{}, err
		}
		code = code<<1 | b
		if t.countAtLen[l] == 0 {
			continue
		}
		offset := int(code) - int(t.firstCode[l])
		if offset >= 0 && offset < t.countAtLen[l] {
			return t.symbols[t.firstIndex[l]+offset], nil
		}
	}
	return huffSymbol{}, fmt.Errorf("invalid Huffman code")
}
