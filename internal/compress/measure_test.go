package compress

import (
	"math/rand"
	"testing"
)

// TestMeasureMatchesCompress: Measure is the sizing contract of the
// cache's fill path — for every codec and every line class it must
// report exactly the Size/Raw/Generation that Compress produces, while
// never materialising a stream.
func TestMeasureMatchesCompress(t *testing.T) {
	for _, c := range testCodecs(t) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1234))
			for name, gen := range lineGenerators {
				for trial := 0; trial < 50; trial++ {
					line := gen(rng)
					enc := c.Compress(line)
					m := c.Measure(line)
					if m.Size != enc.Size || m.Raw != enc.Raw || m.Generation != enc.Generation {
						t.Fatalf("%s/%s trial %d: Measure (size %d, raw %v, gen %d) != Compress (size %d, raw %v, gen %d)",
							c.Name(), name, trial, m.Size, m.Raw, m.Generation, enc.Size, enc.Raw, enc.Generation)
					}
					if m.Data != nil {
						t.Fatalf("%s/%s: Measure materialised a %d-byte stream", c.Name(), name, len(m.Data))
					}
				}
			}
		})
	}
}

// TestMeasureMatchesCompressUntrainedSC: before the first rebuild SC
// stores raw; Measure must agree on that path too.
func TestMeasureMatchesCompressUntrainedSC(t *testing.T) {
	sc := NewSC()
	rng := rand.New(rand.NewSource(5))
	line := lineGenerators["random"](rng)
	enc := sc.Compress(line)
	m := sc.Measure(line)
	if m.Size != enc.Size || m.Raw != enc.Raw || m.Generation != enc.Generation {
		t.Fatalf("untrained SC: Measure %+v disagrees with Compress size %d raw %v gen %d",
			m, enc.Size, enc.Raw, enc.Generation)
	}
}

// TestMeasureAllocationFree is the runtime half of the escape gate: every
// codec's Measure must run without a single heap allocation, on both a
// compressible and an incompressible line.
func TestMeasureAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	lines := [][]byte{
		make([]byte, LineSize),            // zero
		lineGenerators["stride"](rng),     // compressible
		lineGenerators["random"](rng),     // incompressible
		lineGenerators["small-ints"](rng), // immediate-heavy
	}
	for _, c := range testCodecs(t) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			for i, line := range lines {
				allocs := testing.AllocsPerRun(100, func() {
					_ = c.Measure(line)
				})
				if allocs != 0 {
					t.Errorf("line %d: Measure allocates %.1f times per call, want 0", i, allocs)
				}
			}
		})
	}
}
