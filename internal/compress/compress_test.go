package compress

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// testCodecs returns fresh instances of all five codecs. SC gets a trained
// code book seeded from a value dictionary so its compressing path is
// exercised, not just the raw fallback.
func testCodecs(t *testing.T) []Codec {
	t.Helper()
	sc := NewSC()
	rng := rand.New(rand.NewSource(7))
	dict := scTestDictionary()
	for i := 0; i < 200; i++ {
		sc.Train(lineFromDict(rng, dict))
	}
	if !sc.Rebuild() {
		t.Fatal("SC rebuild produced no code book")
	}
	return []Codec{NewBDI(), NewFPC(), NewCPACK(), NewBPC(), sc}
}

func scTestDictionary() []uint32 {
	dict := make([]uint32, 64)
	for i := range dict {
		dict[i] = uint32(i * 0x01010101)
	}
	return dict
}

func lineFromDict(rng *rand.Rand, dict []uint32) []byte {
	line := make([]byte, LineSize)
	for i := 0; i < WordsPerLine; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], dict[rng.Intn(len(dict))])
	}
	return line
}

// lineGenerators produce cache lines with qualitatively different value
// characteristics; every codec must round-trip all of them.
var lineGenerators = map[string]func(rng *rand.Rand) []byte{
	"zero": func(*rand.Rand) []byte { return make([]byte, LineSize) },
	"random": func(rng *rand.Rand) []byte {
		line := make([]byte, LineSize)
		rng.Read(line)
		return line
	},
	"small-ints": func(rng *rand.Rand) []byte {
		line := make([]byte, LineSize)
		for i := 0; i < WordsPerLine; i++ {
			binary.LittleEndian.PutUint32(line[i*4:], uint32(rng.Intn(256)))
		}
		return line
	},
	"pointers": func(rng *rand.Rand) []byte {
		line := make([]byte, LineSize)
		base := uint64(0x7FFE00000000) + uint64(rng.Intn(1<<20))*8
		for i := 0; i < LineSize/8; i++ {
			binary.LittleEndian.PutUint64(line[i*8:], base+uint64(rng.Intn(128))*8)
		}
		return line
	},
	"stride": func(rng *rand.Rand) []byte {
		line := make([]byte, LineSize)
		v := uint32(rng.Intn(1 << 24))
		stride := uint32(rng.Intn(64))
		for i := 0; i < WordsPerLine; i++ {
			binary.LittleEndian.PutUint32(line[i*4:], v)
			v += stride
		}
		return line
	},
	"repeated-word": func(rng *rand.Rand) []byte {
		line := make([]byte, LineSize)
		v := rng.Uint32()
		for i := 0; i < WordsPerLine; i++ {
			binary.LittleEndian.PutUint32(line[i*4:], v)
		}
		return line
	},
	"float-like": func(rng *rand.Rand) []byte {
		line := make([]byte, LineSize)
		for i := 0; i < WordsPerLine; i++ {
			// Shared exponent, noisy mantissa — typical FP32 array data.
			v := uint32(0x3F800000) | uint32(rng.Intn(1<<20))
			binary.LittleEndian.PutUint32(line[i*4:], v)
		}
		return line
	},
	"halfword": func(rng *rand.Rand) []byte {
		line := make([]byte, LineSize)
		for i := 0; i < WordsPerLine; i++ {
			binary.LittleEndian.PutUint32(line[i*4:], uint32(rng.Intn(1<<16))<<16)
		}
		return line
	},
}

func TestRoundTripAllCodecs(t *testing.T) {
	for _, c := range testCodecs(t) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for name, gen := range lineGenerators {
				for trial := 0; trial < 50; trial++ {
					line := gen(rng)
					enc := c.Compress(line)
					if enc.Size <= 0 || enc.Size > LineSize {
						t.Fatalf("%s/%s: size %d out of range", c.Name(), name, enc.Size)
					}
					got, err := c.Decompress(enc)
					if err != nil {
						t.Fatalf("%s/%s: decompress: %v", c.Name(), name, err)
					}
					if !bytes.Equal(got, line) {
						t.Fatalf("%s/%s trial %d: round trip mismatch", c.Name(), name, trial)
					}
				}
			}
		})
	}
}

func TestRoundTripQuick(t *testing.T) {
	for _, c := range testCodecs(t) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			f := func(seed int64, mode uint8) bool {
				rng := rand.New(rand.NewSource(seed))
				gens := []func(*rand.Rand) []byte{
					lineGenerators["random"], lineGenerators["small-ints"],
					lineGenerators["stride"], lineGenerators["pointers"],
					lineGenerators["float-like"],
				}
				line := gens[int(mode)%len(gens)](rng)
				enc := c.Compress(line)
				got, err := c.Decompress(enc)
				return err == nil && bytes.Equal(got, line)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCompressedSizeNeverExceedsLine(t *testing.T) {
	for _, c := range testCodecs(t) {
		rng := rand.New(rand.NewSource(1))
		for name, gen := range lineGenerators {
			for i := 0; i < 20; i++ {
				enc := c.Compress(gen(rng))
				if enc.Size > LineSize {
					t.Errorf("%s/%s: size %d > line size", c.Name(), name, enc.Size)
				}
			}
		}
	}
}

func TestZeroLineCompressesTiny(t *testing.T) {
	zero := make([]byte, LineSize)
	for _, c := range testCodecs(t) {
		if c.Name() == "SC" {
			continue // SC's zero-line size depends on the trained code book
		}
		enc := c.Compress(zero)
		if enc.Size > 32 {
			t.Errorf("%s: zero line compressed to %d bytes, want <= 32", c.Name(), enc.Size)
		}
	}
}

func TestBDIEncodings(t *testing.T) {
	cases := []struct {
		name string
		fill func([]byte)
		want bdiEncoding
	}{
		{"zeros", func(b []byte) {}, bdiZeros},
		{"rep8", func(b []byte) {
			for off := 0; off < LineSize; off += 8 {
				binary.LittleEndian.PutUint64(b[off:], 0xDEADBEEFCAFEF00D)
			}
		}, bdiRep8},
		{"b8d1", func(b []byte) {
			base := uint64(0x1000000000000)
			for i := 0; i < LineSize/8; i++ {
				binary.LittleEndian.PutUint64(b[i*8:], base+uint64(i))
			}
		}, bdiB8D1},
		{"b4d1", func(b []byte) {
			base := uint32(0x10000000)
			for i := 0; i < LineSize/4; i++ {
				binary.LittleEndian.PutUint32(b[i*4:], base+uint32(i))
			}
		}, bdiB4D1},
		{"b2d1", func(b []byte) {
			base := uint16(0x4000)
			for i := 0; i < LineSize/2; i++ {
				binary.LittleEndian.PutUint16(b[i*2:], base+uint16(i%100))
			}
		}, bdiB2D1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			line := make([]byte, LineSize)
			tc.fill(line)
			enc, _ := bdiCompress(line)
			if enc != tc.want {
				t.Fatalf("got encoding %v, want %v", enc, tc.want)
			}
		})
	}
}

func TestBDIImmediateMix(t *testing.T) {
	// Large bases mixed with small immediates is BDI's signature case: the
	// one-bit mask selects delta-from-base vs delta-from-zero per block.
	line := make([]byte, LineSize)
	base := uint32(0x80000000)
	for i := 0; i < WordsPerLine; i++ {
		if i%3 == 0 {
			binary.LittleEndian.PutUint32(line[i*4:], uint32(i)) // immediate
		} else {
			binary.LittleEndian.PutUint32(line[i*4:], base+uint32(i))
		}
	}
	bdi := NewBDI()
	enc := bdi.Compress(line)
	if enc.Raw {
		t.Fatal("immediate-mix line should compress under BDI")
	}
	got, err := bdi.Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, line) {
		t.Fatal("round trip mismatch")
	}
	if enc.Size >= LineSize/2 {
		t.Errorf("b4d? encoding should at least halve the line, got %d", enc.Size)
	}
}

func TestBDIRatioOnStrideData(t *testing.T) {
	line := make([]byte, LineSize)
	for i := 0; i < WordsPerLine; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], 0x0BAD0000+uint32(i*4))
	}
	enc := NewBDI().Compress(line)
	if r := enc.CompressionRatio(); r < 2.5 {
		t.Errorf("stride data should compress >= 2.5x under BDI, got %.2f (size %d)", r, enc.Size)
	}
}

func TestFPCPatterns(t *testing.T) {
	cases := []struct {
		v    uint32
		want uint64
	}{
		{0x00000007, fpcSE4},
		{0xFFFFFFF9, fpcSE4}, // -7
		{0x0000007F, fpcSE8},
		{0x00007FFF, fpcSE16},
		{0xABCD0000, fpcHalfZero},
		{0x00110022, fpcTwoSE8},
		{0x41414141, fpcRepBytes},
		{0x12345678, fpcUncompr},
	}
	for _, tc := range cases {
		p, _ := fpcMatch(tc.v)
		if p != tc.want {
			t.Errorf("fpcMatch(%#x) = %d, want %d", tc.v, p, tc.want)
		}
	}
}

func TestFPCZeroRunEncoding(t *testing.T) {
	// 32 zero words = 4 runs of 8 → 4 * (3+3) bits = 3 bytes.
	enc := NewFPC().Compress(make([]byte, LineSize))
	if enc.Size != 3 {
		t.Errorf("all-zero line FPC size = %d, want 3", enc.Size)
	}
}

func TestCPACKDictionaryReuse(t *testing.T) {
	// A line of few distinct full words should compress well via mmmm.
	line := make([]byte, LineSize)
	vals := []uint32{0xAABBCCDD, 0x11223344, 0x99887766}
	for i := 0; i < WordsPerLine; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], vals[i%len(vals)])
	}
	c := NewCPACK()
	enc := c.Compress(line)
	if enc.Raw {
		t.Fatal("dictionary-friendly line should compress")
	}
	// 3 uncompressed (2+32) + 29 matches (2+4) = 276 bits = 35 bytes.
	if enc.Size > 40 {
		t.Errorf("size = %d, want <= 40", enc.Size)
	}
	got, err := c.Decompress(enc)
	if err != nil || !bytes.Equal(got, line) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestCPACKZeroLine(t *testing.T) {
	enc := NewCPACK().Compress(make([]byte, LineSize))
	if enc.Size != 1 {
		t.Errorf("zero line size = %d, want 1", enc.Size)
	}
}

func TestBPCPlanesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		var words [WordsPerLine]uint32
		for j := range words {
			words[j] = rng.Uint32()
		}
		base, planes := bpcPlanes(words)
		back := bpcUnplanes(base, planes)
		if back != words {
			t.Fatalf("plane transform not invertible at trial %d", i)
		}
	}
}

func TestBPCStrideCompressesWell(t *testing.T) {
	// Constant-stride data has constant deltas → one nonzero DBX plane
	// pattern; BPC should crush it.
	line := make([]byte, LineSize)
	for i := 0; i < WordsPerLine; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], 0x10000+uint32(i)*12)
	}
	enc := NewBPC().Compress(line)
	if r := enc.CompressionRatio(); r < 6 {
		t.Errorf("stride data ratio %.2f, want >= 6 (size %d)", r, enc.Size)
	}
}

func TestSCLifecycle(t *testing.T) {
	sc := NewSC()
	// Before any rebuild: raw storage.
	line := make([]byte, LineSize)
	enc := sc.Compress(line)
	if !enc.Raw {
		t.Fatal("SC without code book must store raw")
	}

	rng := rand.New(rand.NewSource(5))
	dict := scTestDictionary()
	for i := 0; i < 500; i++ {
		sc.Train(lineFromDict(rng, dict))
	}
	if !sc.Rebuild() {
		t.Fatal("rebuild failed with trained VFT")
	}
	gen1 := sc.Generation()

	l := lineFromDict(rng, dict)
	enc = sc.Compress(l)
	if enc.Raw {
		t.Fatal("dictionary line should compress under trained SC")
	}
	if enc.CompressionRatio() < 2 {
		t.Errorf("dictionary line ratio %.2f, want >= 2", enc.CompressionRatio())
	}
	got, err := sc.Decompress(enc)
	if err != nil || !bytes.Equal(got, l) {
		t.Fatalf("round trip failed: %v", err)
	}

	// Rebuild invalidates old generations.
	sc.Train(l)
	sc.Rebuild()
	if sc.Generation() == gen1 {
		t.Fatal("generation must advance on rebuild")
	}
	if _, err := sc.Decompress(enc); err == nil {
		t.Fatal("stale-generation decode must fail")
	}
}

func TestSCEscapePath(t *testing.T) {
	sc := NewSC()
	dict := scTestDictionary()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		sc.Train(lineFromDict(rng, dict))
	}
	sc.Rebuild()
	// A line of values the code book has never seen: all escapes.
	line := make([]byte, LineSize)
	for i := 0; i < WordsPerLine; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], 0xF0000000+uint32(i)*997)
	}
	enc := sc.Compress(line)
	got, err := sc.Decompress(enc)
	if err != nil || !bytes.Equal(got, line) {
		t.Fatalf("escape round trip failed: %v", err)
	}
}

func TestVFTSaturationAndCapacity(t *testing.T) {
	vft := NewVFT(4)
	for i := 0; i < 10; i++ {
		vft.Observe(uint32(i))
	}
	if vft.Len() != 4 {
		t.Fatalf("VFT admitted %d values, capacity 4", vft.Len())
	}
	for i := 0; i < vftCounterMax+100; i++ {
		vft.Observe(1)
	}
	if c := vft.Snapshot()[1]; c != vftCounterMax {
		t.Fatalf("counter = %d, want saturated %d", c, vftCounterMax)
	}
}

func TestHuffCanonicalDecode(t *testing.T) {
	counts := map[uint32]uint16{10: 100, 20: 50, 30: 20, 40: 5, 50: 1}
	tab := buildHuffTable(counts)
	if tab == nil {
		t.Fatal("nil table")
	}
	// More frequent symbols must not get longer codes.
	if tab.codes[10].len > tab.codes[50].len {
		t.Errorf("code(10).len=%d > code(50).len=%d", tab.codes[10].len, tab.codes[50].len)
	}
	// Encode then decode each symbol.
	for v, c := range tab.codes {
		var w bitWriter
		w.WriteBits(c.bits, c.len)
		r := bitReader{buf: w.Bytes()}
		sym, err := tab.decodeSymbol(&r)
		if err != nil {
			t.Fatalf("decode %d: %v", v, err)
		}
		if sym.escape || sym.value != v {
			t.Fatalf("decode %d: got %+v", v, sym)
		}
	}
}

func TestHuffLengthBound(t *testing.T) {
	// Fibonacci-like weights force maximal skew; lengths must stay bounded.
	counts := make(map[uint32]uint16)
	a, b := uint16(1), uint16(1)
	for i := uint32(0); i < 30; i++ {
		counts[i] = a
		a, b = b, a+b
		if b < a { // overflow
			b = vftCounterMax
		}
	}
	tab := buildHuffTable(counts)
	for v, c := range tab.codes {
		if c.len > maxCodeLen {
			t.Fatalf("code for %d has length %d > bound %d", v, c.len, maxCodeLen)
		}
	}
}

func TestBitWriterReader(t *testing.T) {
	var w bitWriter
	vals := []struct {
		v uint64
		n uint
	}{{1, 1}, {0b101, 3}, {0xFFFF, 16}, {0, 7}, {0x123456789A, 40}, {1, 64}}
	for _, x := range vals {
		w.WriteBits(x.v, x.n)
	}
	r := bitReader{buf: w.Bytes()}
	for i, x := range vals {
		got, err := r.ReadBits(x.n)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := x.v
		if x.n < 64 {
			want &= (1 << x.n) - 1
		}
		if got != want {
			t.Fatalf("read %d: got %#x want %#x", i, got, want)
		}
	}
	if _, err := r.ReadBits(64); err == nil {
		t.Fatal("reading past end must error")
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := bitReader{buf: []byte{0xAB}}
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err == nil {
		t.Fatal("want error after stream end")
	}
}

func TestSignExtend(t *testing.T) {
	cases := []struct {
		v    uint64
		n    uint
		want int64
	}{
		{0xF, 4, -1}, {0x7, 4, 7}, {0x8, 4, -8},
		{0xFF, 8, -1}, {0x80, 8, -128}, {0x7F, 8, 127},
		{0x1FFFFFFFF, 33, -1},
	}
	for _, tc := range cases {
		if got := signExtend(tc.v, tc.n); got != tc.want {
			t.Errorf("signExtend(%#x, %d) = %d, want %d", tc.v, tc.n, got, tc.want)
		}
	}
}

func TestFitsSigned(t *testing.T) {
	if !fitsSigned(-128, 8) || fitsSigned(-129, 8) || !fitsSigned(127, 8) || fitsSigned(128, 8) {
		t.Fatal("fitsSigned 8-bit boundaries wrong")
	}
	if !fitsSigned(1<<40, 64) {
		t.Fatal("64-bit must fit anything")
	}
}

func TestEncodedCompressionRatio(t *testing.T) {
	if r := (Encoded{Size: 32}).CompressionRatio(); r != 4 {
		t.Errorf("ratio = %v, want 4", r)
	}
	if r := (Encoded{Size: 0}).CompressionRatio(); r != 1 {
		t.Errorf("zero-size ratio = %v, want 1 fallback", r)
	}
}

func TestDecompressCorruptStreams(t *testing.T) {
	for _, c := range testCodecs(t) {
		if _, err := c.Decompress(Encoded{Data: nil}); err == nil {
			t.Errorf("%s: empty stream must error", c.Name())
		}
	}
	if _, err := NewBDI().Decompress(Encoded{Data: []byte{byte(bdiB8D1), 1, 2}}); err == nil {
		t.Error("BDI truncated payload must error")
	}
	if _, err := NewBDI().Decompress(Encoded{Data: []byte{200}}); err == nil {
		t.Error("BDI unknown encoding must error")
	}
}

// decodeCorrupt feeds one corrupted encoding to a codec and enforces the
// robustness contract: the decoder must not panic or over-read, and must
// either report an error or return a full line. The payload carries no
// checksum, so corrupted streams that still parse may legally decode to
// different bytes — byte equality is NOT part of the contract here.
func decodeCorrupt(t *testing.T, c Codec, enc Encoded, what string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: %s: decoder panicked: %v", c.Name(), what, r)
		}
	}()
	dec, err := c.Decompress(enc)
	if err != nil {
		return
	}
	if len(dec) != LineSize {
		t.Errorf("%s: %s: no error but %d-byte line", c.Name(), what, len(dec))
	}
}

// TestDecompressCorruptStreamSweep is the table-driven robustness sweep:
// every codec, a corpus of value classes, and for each resulting
// encoding (a) truncation to every prefix length and (b) a bit flip at
// every bit of every byte offset.
func TestDecompressCorruptStreamSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dict := scTestDictionary()
	corpus := [][]byte{
		make([]byte, LineSize), // all zeros
		lineFromDict(rng, dict),
		lineFromDict(rng, dict),
	}
	{ // repeated 8-byte pattern
		line := make([]byte, LineSize)
		for off := 0; off < LineSize; off += 8 {
			copy(line[off:], []byte{1, 2, 3, 4, 5, 6, 7, 8})
		}
		corpus = append(corpus, line)
	}
	{ // small-stride words, then uniform noise
		line := make([]byte, LineSize)
		for i := 0; i < WordsPerLine; i++ {
			binary.LittleEndian.PutUint32(line[i*4:], 0x1000+uint32(i)*3)
		}
		corpus = append(corpus, line)
		noise := make([]byte, LineSize)
		rng.Read(noise)
		corpus = append(corpus, noise)
	}

	for _, c := range testCodecs(t) {
		for li, line := range corpus {
			enc := c.Compress(line)
			for cut := 0; cut < len(enc.Data); cut++ {
				trunc := enc
				trunc.Data = enc.Data[:cut]
				decodeCorrupt(t, c, trunc, fmt.Sprintf("line %d truncated to %d/%d bytes", li, cut, len(enc.Data)))
			}
			for off := 0; off < len(enc.Data); off++ {
				for bit := 0; bit < 8; bit++ {
					flip := enc
					flip.Data = append([]byte(nil), enc.Data...)
					flip.Data[off] ^= 1 << bit
					decodeCorrupt(t, c, flip, fmt.Sprintf("line %d bit %d of byte %d flipped", li, bit, off))
				}
			}
		}
	}
}

func TestCodecLatenciesMatchTableI(t *testing.T) {
	want := map[string]int{"BDI": 2, "FPC": 5, "CPACK-Z": 8, "BPC": 11, "SC": 14}
	for _, c := range testCodecs(t) {
		if got := c.DecompLatency(); got != want[c.Name()] {
			t.Errorf("%s decompression latency = %d, want %d", c.Name(), got, want[c.Name()])
		}
	}
}
