package invariant

import "testing"

func TestAssertInactiveByDefault(t *testing.T) {
	prev := SetActive(false)
	defer SetActive(prev)
	// Must not panic while inactive, however false the condition.
	Assert(false, "ignored while inactive")
}

func TestAssertPanicsWhenActive(t *testing.T) {
	prev := SetActive(true)
	defer SetActive(prev)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("active Assert(false) must panic")
		}
		msg, ok := r.(string)
		if !ok || msg != "invariant violation: set 7 over capacity" {
			t.Fatalf("unexpected panic payload %v", r)
		}
	}()
	Assert(false, "set %d over capacity", 7)
}

func TestAssertTrueNeverPanics(t *testing.T) {
	prev := SetActive(true)
	defer SetActive(prev)
	Assert(true, "should not fire")
}

// TestHashKnownVector pins the FNV-1a byte folding to the published
// constants: hashing "a" (0x61) from the offset basis gives the standard
// FNV-1a result.
func TestHashKnownVector(t *testing.T) {
	h := NewHash()
	h.Byte('a')
	const want = uint64(0xaf63dc4c8601ec8c) // FNV-1a 64-bit of "a"
	if got := h.Sum(); got != want {
		t.Fatalf("FNV-1a(%q) = %#x, want %#x", "a", got, want)
	}
}

func TestHashOrderAndTypeSensitivity(t *testing.T) {
	a, b := NewHash(), NewHash()
	a.Uint64(1)
	a.Uint64(2)
	b.Uint64(2)
	b.Uint64(1)
	if a.Sum() == b.Sum() {
		t.Fatal("hash must be order sensitive")
	}

	// Length prefixes keep adjacent strings from aliasing: ("ab","c")
	// must differ from ("a","bc").
	c, d := NewHash(), NewHash()
	c.String("ab")
	c.String("c")
	d.String("a")
	d.String("bc")
	if c.Sum() == d.Sum() {
		t.Fatal("string folding must not alias across boundaries")
	}
}

func TestHashFloatBitExact(t *testing.T) {
	x, y := 0.1, 0.2 // runtime addition, not exact constant folding
	a, b := NewHash(), NewHash()
	a.Float64(x + y)
	b.Float64(0.3)
	if a.Sum() == b.Sum() {
		t.Fatal("0.1+0.2 and 0.3 differ in bits; hashes must differ")
	}
	c, d := NewHash(), NewHash()
	c.Float64(1.5)
	d.Float64(1.5)
	if c.Sum() != d.Sum() {
		t.Fatal("identical floats must hash identically")
	}
}
