// Package invariant is the simulator's runtime self-checking layer. The
// cycle-level packages call into it at structural boundaries (cache
// fills, evictions, compression round trips) to verify properties that
// must hold for an experiment to be meaningful: compressed sizes stay
// within a cache line, set occupancy never exceeds capacity, and every
// compressed line decompresses back to the bytes that were inserted.
//
// Assertions are off in normal builds so the hot paths stay hot. They
// turn on when either
//
//   - the binary is built with the latteccdebug build tag
//     (go test -tags latteccdebug ./...), or
//   - the LATTECC_PARANOID=1 environment variable is set at startup, or
//   - a test calls SetActive(true).
//
// The package also provides the FNV-1a state hash the harness uses to
// prove two runs of the same seed/config are byte-identical: every field
// of a run's final statistics folds into one uint64, and the determinism
// regression test asserts the hashes match across runs.
package invariant

import (
	"fmt"
	"math"
	"os"
	"sync/atomic"
)

// active gates the assertions at runtime. It is atomic so the harness's
// parallel workers can read it while a test flips it.
var active atomic.Bool

func init() {
	if BuildEnabled || os.Getenv("LATTECC_PARANOID") == "1" {
		active.Store(true)
	}
}

// Active reports whether paranoid assertions are enabled. Hot paths
// should check it before building assertion arguments.
func Active() bool { return active.Load() }

// SetActive enables or disables assertions, returning the previous
// state (tests restore it when they finish).
func SetActive(on bool) bool {
	prev := active.Load()
	active.Store(on)
	return prev
}

// Assert panics with an invariant-violation message when cond is false
// and assertions are active. Callers on per-access paths should guard
// with Active() so argument construction costs nothing in normal runs.
func Assert(cond bool, format string, args ...interface{}) {
	if cond || !active.Load() {
		return
	}
	Violationf(format, args...)
}

// Violationf reports an invariant violation unconditionally. A violation
// means simulator state is corrupt and every number derived from the run
// is suspect, so it halts the run rather than returning an error.
func Violationf(format string, args ...interface{}) {
	panic("invariant violation: " + fmt.Sprintf(format, args...))
}

// FNV-1a (64-bit) parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash folds values into a 64-bit FNV-1a state hash. The zero value is
// not ready for use; call NewHash.
type Hash struct {
	h uint64
}

// NewHash returns a hash at the FNV-1a offset basis.
func NewHash() *Hash { return &Hash{h: fnvOffset64} }

// Byte folds one byte.
func (h *Hash) Byte(b byte) {
	h.h ^= uint64(b)
	h.h *= fnvPrime64
}

// Uint64 folds an unsigned integer, little-endian byte order.
func (h *Hash) Uint64(v uint64) {
	for i := 0; i < 8; i++ {
		h.Byte(byte(v >> (8 * i)))
	}
}

// Int folds a signed integer via its two's-complement bits.
func (h *Hash) Int(v int64) { h.Uint64(uint64(v)) }

// Float64 folds a float through its IEEE-754 bit pattern, so two runs
// hash equal only when their floats are bit-identical (not merely close).
func (h *Hash) Float64(v float64) { h.Uint64(math.Float64bits(v)) }

// String folds a length-prefixed string (the prefix keeps concatenated
// fields from aliasing each other).
func (h *Hash) String(s string) {
	h.Uint64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.Byte(s[i])
	}
}

// Bytes folds a length-prefixed byte slice.
func (h *Hash) Bytes(b []byte) {
	h.Uint64(uint64(len(b)))
	for _, v := range b {
		h.Byte(v)
	}
}

// Sum returns the current hash state.
func (h *Hash) Sum() uint64 { return h.h }
