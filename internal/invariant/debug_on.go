//go:build latteccdebug

package invariant

// BuildEnabled reports that this binary was built with the latteccdebug
// tag: assertions are on from startup, no environment variable needed.
const BuildEnabled = true
