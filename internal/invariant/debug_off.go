//go:build !latteccdebug

package invariant

// BuildEnabled is false in normal builds: assertions run only when
// LATTECC_PARANOID=1 is set or a test calls SetActive(true).
const BuildEnabled = false
