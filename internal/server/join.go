package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// Registrar keeps one worker registered with a cluster router
// (cmd/latteroute): it POSTs the worker's advertised URL to the
// router's /v1/workers endpoint at a fixed cadence, which doubles as
// the join (the first POST) and the heartbeat (every later one —
// registration is idempotent router-side, and a worker the router
// evicted as dead re-joins on its next beat). Stop deregisters so the
// router stops routing to a drained worker immediately instead of
// discovering the drain at its next health probe.
//
// The registrar never gives up: a router that is down when the worker
// starts (or restarts mid-flight) is simply retried next interval. The
// worker is fully functional unregistered — clusterless operation is
// the degenerate case of a fleet of one.
type Registrar struct {
	router    string // router base URL, e.g. http://127.0.0.1:8500
	advertise string // this worker's base URL as the router should dial it
	interval  time.Duration
	logf      func(format string, args ...any)
	client    *http.Client

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// StartRegistrar validates the two URLs, announces the worker once
// immediately, and starts the heartbeat loop. interval <= 0 selects 5s.
func StartRegistrar(router, advertise string, interval time.Duration, logf func(format string, args ...any)) (*Registrar, error) {
	for name, raw := range map[string]string{"router": router, "advertise": advertise} {
		u, err := url.Parse(raw)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("server: %s URL must be absolute http(s), got %q", name, raw)
		}
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	r := &Registrar{
		router:    router,
		advertise: advertise,
		interval:  interval,
		logf:      logf,
		client:    &http.Client{Timeout: 5 * time.Second},
		stop:      make(chan struct{}),
	}
	r.wg.Add(1)
	go r.run()
	return r, nil
}

// run is the heartbeat loop.
func (r *Registrar) run() {
	defer r.wg.Done()
	registered := false
	beat := func() {
		if err := r.register(); err != nil {
			if registered {
				r.logf("latteccd: cluster heartbeat to %s failed: %v", r.router, err)
			}
			registered = false
			return
		}
		if !registered {
			r.logf("latteccd: registered with router %s as %s", r.router, r.advertise)
		}
		registered = true
	}
	beat()
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			beat()
		}
	}
}

// register performs one announcement round-trip.
func (r *Registrar) register() error {
	body, err := json.Marshal(map[string]string{"url": r.advertise})
	if err != nil {
		return err
	}
	resp, err := r.client.Post(r.router+"/v1/workers", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("router answered %d", resp.StatusCode)
	}
	return nil
}

// Stop halts the heartbeat and deregisters from the router (bounded by
// ctx) so drain starts router-side immediately. Safe to call more than
// once.
func (r *Registrar) Stop(ctx context.Context) {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		r.router+"/v1/workers?url="+url.QueryEscape(r.advertise), nil)
	if err != nil {
		return
	}
	if resp, err := r.client.Do(req); err == nil {
		resp.Body.Close()
	}
}
