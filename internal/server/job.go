package server

import (
	"fmt"
	"sync"
	"time"

	"lattecc/internal/harness"
	"lattecc/internal/sim"
)

// jobState is a job's lifecycle position. Transitions are linear:
// queued → running → done|failed.
type jobState string

const (
	stateQueued  jobState = "queued"
	stateRunning jobState = "running"
	stateDone    jobState = "done"
	stateFailed  jobState = "failed"
)

// runKey identifies one (suite, workload, policy, variant) run for the
// reporter fan-out: suite-level completion events are routed to the
// jobs subscribed to exactly that run.
type runKey struct {
	fp       uint64
	workload string
	policy   harness.Policy
	variant  harness.Variant
}

// freshInfo is what the suite reporter learned about a run dispatched
// while this job was subscribed: it executed fresh (not from cache) and
// took this long.
type freshInfo struct {
	duration time.Duration
}

// Job is one admitted simulation batch. The daemon owns the job for its
// whole lifetime; HTTP handlers only ever read snapshots under mu.
type Job struct {
	id       string
	reqs     []harness.RunRequest
	suite    *harness.Suite
	fp       uint64
	fpx      string // fp pre-rendered; immutable, so readable under mu without a call
	deadline time.Duration

	// mu guards every mutable field; it is never held across a call
	// (machine-checked: lattelint lock-contract), which is what makes
	// appendEvent's close-and-replace notify scheme deadlock-free.
	mu sync.Mutex //lint:mutex nocalls
	//lint:guards mu
	state jobState
	//lint:guards mu
	errMsg string
	//lint:guards mu
	results []RunResult
	//lint:guards mu
	events []Event
	//lint:guards mu
	fresh map[runKey]freshInfo
	//lint:guards mu
	emitted map[runKey]bool
	//lint:guards mu
	notify chan struct{} // closed and replaced on every append
}

func newJob(id string, reqs []harness.RunRequest, suite *harness.Suite, fp uint64, deadline time.Duration) *Job {
	j := &Job{
		id:       id,
		reqs:     reqs,
		suite:    suite,
		fp:       fp,
		fpx:      fpHex(fp),
		deadline: deadline,
		state:    stateQueued,
		fresh:    map[runKey]freshInfo{},
		emitted:  map[runKey]bool{},
		notify:   make(chan struct{}),
	}
	j.appendEvent(Event{Type: "queued", Data: map[string]any{"id": id, "runs": len(reqs)}})
	return j
}

// Event is one frame of a job's SSE stream.
type Event struct {
	Type string // queued | running | run | done | failed
	Data any    // JSON-marshalled into the frame's data line
}

// appendEvent records an event and wakes every stream blocked on the
// job. Callers must NOT hold j.mu.
func (j *Job) appendEvent(ev Event) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// snapshot returns the append-only event log (safe to read up to its
// length), the current state, and a channel closed on the next change.
func (j *Job) snapshot() ([]Event, jobState, chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.events, j.state, j.notify
}

// setRunning marks the job dispatched to a worker.
func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = stateRunning
	j.mu.Unlock()
	j.appendEvent(Event{Type: "running", Data: map[string]any{"id": j.id}})
}

// complete finishes the job with its results.
func (j *Job) complete(results []RunResult) {
	j.mu.Lock()
	j.state = stateDone
	j.results = results
	j.mu.Unlock()
	j.appendEvent(Event{Type: "done", Data: map[string]any{"id": j.id, "runs": len(results)}})
}

// fail finishes the job with an error.
func (j *Job) fail(msg string) {
	j.mu.Lock()
	j.state = stateFailed
	j.errMsg = msg
	j.mu.Unlock()
	j.appendEvent(Event{Type: "failed", Data: map[string]any{"id": j.id, "error": msg}})
}

// noteFresh records a reporter event for one of this job's runs and
// emits the per-run SSE frame immediately — this is the live progress
// path while the pool is still draining the batch.
func (j *Job) noteFresh(k runKey, res RunResult) {
	j.mu.Lock()
	if j.emitted[k] {
		j.mu.Unlock()
		return
	}
	j.emitted[k] = true
	j.fresh[k] = freshInfo{duration: time.Duration(res.DurationMS * float64(time.Millisecond))}
	j.mu.Unlock()
	j.appendEvent(Event{Type: "run", Data: res})
}

// freshRun returns what the reporter recorded for k, if anything.
func (j *Job) freshRun(k runKey) (freshInfo, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	fi, ok := j.fresh[k]
	return fi, ok
}

// emitRunOnce emits the per-run frame for cache-served runs that never
// produced a reporter event.
func (j *Job) emitRunOnce(k runKey, res RunResult) {
	j.mu.Lock()
	if j.emitted[k] {
		j.mu.Unlock()
		return
	}
	j.emitted[k] = true
	j.mu.Unlock()
	j.appendEvent(Event{Type: "run", Data: res})
}

// status renders the job for GET /v1/runs/{id}.
func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:          j.id,
		Status:      string(j.state),
		Error:       j.errMsg,
		Runs:        len(j.reqs),
		Results:     j.results,
		Fingerprint: j.fpx,
	}
}

// fpHex renders a machine-config fingerprint the way StateHashes are
// rendered: fixed-width hex, stable for text diffs.
func fpHex(fp uint64) string { return fmt.Sprintf("0x%016x", fp) }

// --- wire types -------------------------------------------------------

// RunSpec names one simulation in a submission.
type RunSpec struct {
	Workload string      `json:"workload"`
	Policy   string      `json:"policy"`
	Variant  VariantSpec `json:"variant,omitempty"`
}

// VariantSpec mirrors harness.Variant on the wire.
type VariantSpec struct {
	CapacityOnly    bool   `json:"capacity_only,omitempty"`
	LatencyOnly     bool   `json:"latency_only,omitempty"`
	ExtraHitLatency uint64 `json:"extra_hit_latency,omitempty"`
	SampleSeries    bool   `json:"sample_series,omitempty"`
}

func (v VariantSpec) toVariant() harness.Variant {
	return harness.Variant{
		CapacityOnly:    v.CapacityOnly,
		LatencyOnly:     v.LatencyOnly,
		ExtraHitLatency: v.ExtraHitLatency,
		SampleSeries:    v.SampleSeries,
	}
}

// SubmitRequest is the body of POST /v1/runs: either one inline run
// (workload/policy/variant at the top level) or a batch under "runs",
// plus optional machine-config overrides and a per-job deadline.
type SubmitRequest struct {
	Workload string      `json:"workload,omitempty"`
	Policy   string      `json:"policy,omitempty"`
	Variant  VariantSpec `json:"variant,omitempty"`

	Runs []RunSpec `json:"runs,omitempty"`

	Config     *ConfigOverrides `json:"config,omitempty"`
	DeadlineMS int64            `json:"deadline_ms,omitempty"`
}

// SubmitResponse acknowledges an admitted job. Fingerprint is the
// machine-config fingerprint the job's suite is keyed on — the same key
// the cluster router consistent-hashes for fingerprint-affinity
// placement, exposed so routing decisions are auditable end to end.
type SubmitResponse struct {
	ID          string `json:"id"`
	Status      string `json:"status"`
	Runs        int    `json:"runs"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// LoadStatus is the GET /v1/load response: the admission-queue and
// worker-pool occupancy the cluster router's health checker polls, and
// the least-loaded routing policy weighs.
type LoadStatus struct {
	Queued        int64 `json:"queued"`
	Running       int64 `json:"running"`
	QueueCapacity int64 `json:"queue_capacity"`
	Draining      bool  `json:"draining"`
}

// RunResult is one completed run in a job's result set.
type RunResult struct {
	Workload     string      `json:"workload"`
	Policy       string      `json:"policy"`
	Variant      VariantSpec `json:"variant,omitempty"`
	Cycles       uint64      `json:"cycles"`
	Instructions uint64      `json:"instructions"`
	IPC          float64     `json:"ipc"`
	HitRate      float64     `json:"hit_rate"`
	// StateHash is sim.Result.StateHash rendered as 0x%016x — the
	// determinism contract: byte-identical to a direct Suite.MustRun of
	// the same (workload, policy, variant, config).
	StateHash string `json:"state_hash"`
	// Cached is best-effort attribution: false when this job observed
	// the run execute fresh, true when it was served from the resident
	// cache (possibly warmed by an earlier job).
	Cached     bool    `json:"cached"`
	DurationMS float64 `json:"duration_ms"`
}

// JobStatus renders a job's externally visible state. Fingerprint lets
// the cluster router verify that a worker's resident suite matches the
// affinity key it routed on.
type JobStatus struct {
	ID          string      `json:"id"`
	Status      string      `json:"status"`
	Error       string      `json:"error,omitempty"`
	Runs        int         `json:"runs"`
	Results     []RunResult `json:"results,omitempty"`
	Fingerprint string      `json:"fingerprint,omitempty"`
}

// ConfigOverrides is the subset of sim.Config a request may change.
// Pointer fields distinguish "absent" from zero; every present value is
// validated before a suite is keyed on it.
type ConfigOverrides struct {
	NumSMs          *int    `json:"num_sms,omitempty"`
	MaxWarpsPerSM   *int    `json:"max_warps_per_sm,omitempty"`
	L1Ports         *int    `json:"l1_ports,omitempty"`
	MSHRs           *int    `json:"mshrs,omitempty"`
	L1SizeBytes     *int    `json:"l1_size_bytes,omitempty"`
	L2SizeBytes     *int    `json:"l2_size_bytes,omitempty"`
	WriteThroughL1  *bool   `json:"write_through_l1,omitempty"`
	MaxInstructions *uint64 `json:"max_instructions,omitempty"`
	MaxCycles       *uint64 `json:"max_cycles,omitempty"`
	// SMJobs tunes intra-simulation parallelism only; results are
	// bit-identical for any value, so it does NOT enter the suite
	// fingerprint (a cached result computed at one width answers
	// requests at any other).
	SMJobs *int `json:"sm_jobs,omitempty"`
}

// Apply copies cfg, overlays the present overrides, and validates them.
// Exported for the cluster router, which applies a submission's
// overrides to its own base config to compute the affinity fingerprint
// without owning a suite.
func (o *ConfigOverrides) Apply(cfg sim.Config) (sim.Config, error) {
	if o == nil {
		return cfg, nil
	}
	setInt := func(name string, dst *int, v *int) error {
		if v == nil {
			return nil
		}
		if *v < 1 {
			return fmt.Errorf("config override %s must be >= 1, got %d", name, *v)
		}
		*dst = *v
		return nil
	}
	setUint := func(name string, dst *uint64, v *uint64) error {
		if v == nil {
			return nil
		}
		if *v == 0 {
			return fmt.Errorf("config override %s must be > 0", name)
		}
		*dst = *v
		return nil
	}
	for _, err := range []error{
		setInt("num_sms", &cfg.NumSMs, o.NumSMs),
		setInt("max_warps_per_sm", &cfg.MaxWarpsPerSM, o.MaxWarpsPerSM),
		setInt("l1_ports", &cfg.L1Ports, o.L1Ports),
		setInt("mshrs", &cfg.MSHRs, o.MSHRs),
		setInt("l1_size_bytes", &cfg.Cache.SizeBytes, o.L1SizeBytes),
		setInt("l2_size_bytes", &cfg.Mem.L2SizeBytes, o.L2SizeBytes),
		setUint("max_instructions", &cfg.MaxInstructions, o.MaxInstructions),
		setUint("max_cycles", &cfg.MaxCycles, o.MaxCycles),
	} {
		if err != nil {
			return sim.Config{}, err
		}
	}
	if o.WriteThroughL1 != nil {
		cfg.WriteThroughL1 = *o.WriteThroughL1
	}
	if o.SMJobs != nil {
		if *o.SMJobs < 0 {
			return sim.Config{}, fmt.Errorf("config override sm_jobs must be >= 0, got %d", *o.SMJobs)
		}
		cfg.SMJobs = *o.SMJobs
	}
	if cfg.Cache.SizeBytes < cfg.Cache.LineSize*cfg.Cache.Ways {
		return sim.Config{}, fmt.Errorf("config override l1_size_bytes %d is below one set (%d)",
			cfg.Cache.SizeBytes, cfg.Cache.LineSize*cfg.Cache.Ways)
	}
	return cfg, nil
}

// fingerprint keys resident suites by machine. The fold itself lives on
// sim.Config.Fingerprint so the harness's persistent result store keys
// entries with the exact value the daemon files suites under (and the
// router hashes for affinity routing).
// FingerprintConfig exposes the fingerprint to the cluster router: the
// router hashes the same key the worker will file the job's suite
// under, which is what makes fingerprint-affinity routing line up with
// worker-side cache residency.
func FingerprintConfig(cfg sim.Config) uint64 { return fingerprint(cfg) }

func fingerprint(cfg sim.Config) uint64 { return cfg.Fingerprint() }
