// Package server implements latteccd, LATTE-CC's simulation-as-a-service
// daemon. A long-lived process owns one harness.Suite per distinct
// machine configuration and serves simulation jobs over HTTP/JSON, so
// the (workload, policy, variant) result cache stays hot across
// requests instead of being rebuilt by every CLI invocation.
//
// Surface:
//
//	POST /v1/runs              submit one run or a batch; returns a job ID
//	GET  /v1/runs/{id}         job status + results (cycles, IPC, StateHash)
//	GET  /v1/runs/{id}/events  SSE progress stream (wired to harness.Reporter)
//	GET  /metrics              Prometheus text format
//	GET  /healthz, /readyz     liveness / readiness (503 while draining)
//
// Determinism is the contract: a job served by the daemon returns the
// same StateHash as a direct Suite.MustRun for the same (workload,
// policy, variant, config). The daemon only ever layers scheduling
// around the harness's single-flight cache — it never touches what is
// computed.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lattecc/internal/fault"
	"lattecc/internal/harness"
	"lattecc/internal/resultstore"
	"lattecc/internal/sim"
)

// Config parameterises a Server.
type Config struct {
	// BaseConfig is the machine every job starts from, before request
	// overrides. Typically sim.DefaultConfig().
	BaseConfig sim.Config
	// Workers is how many jobs execute concurrently (default 2).
	Workers int
	// RunJobs bounds each job's simulation pool width, i.e. the Jobs
	// knob of the underlying suites (<= 0 means GOMAXPROCS).
	RunJobs int
	// QueueDepth bounds the admission queue; a full queue answers 429
	// with Retry-After (default 64).
	QueueDepth int
	// DefaultDeadline applies to jobs that do not carry their own
	// deadline_ms (default 5 minutes).
	DefaultDeadline time.Duration

	// Store, when non-nil, is the persistent result tier attached to
	// every resident suite: consulted on cache miss, written on every
	// fresh simulate-complete, served to cluster peers via
	// GET /v1/results/{key}, and surfaced on /metrics.
	Store *resultstore.Store
	// Peers, when non-nil (and Store is set), lists the base URLs of
	// cluster peers whose stores are consulted on a local store miss —
	// the cache-peer protocol. Typically RouterPeers(join, advertise).
	Peers func() []string

	// startHook, when set (tests only), runs at the top of every job
	// execution — the seam that lets tests hold a worker in place.
	startHook func(*Job)
}

// Server is the daemon: admission queue, worker pool, resident suites,
// and the HTTP surface. Create with New, serve Handler(), stop with
// Shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics *metrics
	// store is the disk+peer tier installed on every resident suite;
	// nil when the daemon runs memory-only (no -store flag).
	store *tieredStore

	mu        sync.Mutex
	suites    map[uint64]*harness.Suite
	jobs      map[string]*Job
	subs      map[runKey][]*Job
	workloads map[string]bool
	policies  map[harness.Policy]bool

	queue    chan *Job
	drainCh  chan struct{}
	running  atomic.Int64
	draining atomic.Bool
	admit    sync.RWMutex // write-held by Shutdown to fence admission
	nextID   atomic.Uint64
	wg       sync.WaitGroup
}

// New builds a Server and starts its workers. The returned server is
// ready to serve; wire Handler() into an http.Server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.RunJobs <= 0 {
		cfg.RunJobs = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 5 * time.Minute
	}
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		metrics:   newMetrics(),
		suites:    map[uint64]*harness.Suite{},
		jobs:      map[string]*Job{},
		subs:      map[runKey][]*Job{},
		workloads: map[string]bool{},
		policies:  map[harness.Policy]bool{},
		queue:     make(chan *Job, cfg.QueueDepth),
		drainCh:   make(chan struct{}),
	}
	for _, w := range harness.Workloads() {
		s.workloads[w] = true
	}
	for _, p := range harness.Policies() {
		s.policies[p] = true
	}
	if cfg.Store != nil {
		s.store = newTieredStore(cfg.Store, cfg.Peers)
	}

	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/load", s.handleLoad)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown gracefully drains the daemon: new submissions are rejected
// with 503 immediately, jobs already queued or running complete, and
// Shutdown returns once every worker has exited — or ctx's deadline
// fires first, in which case the drain is reported incomplete. Safe to
// call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admit.Lock()
	if s.draining.CompareAndSwap(false, true) {
		close(s.drainCh)
	}
	s.admit.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain incomplete: %w", ctx.Err())
	}
}

// worker executes jobs until shutdown, then drains whatever is still
// queued and exits.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.execute(j)
		case <-s.drainCh:
			for {
				select {
				case j := <-s.queue:
					s.execute(j)
				default:
					return
				}
			}
		}
	}
}

// execute runs one job: subscribe for live reporter events, drain the
// batch through the harness pool under the job's deadline, then collect
// results serially from the cache.
func (s *Server) execute(j *Job) {
	s.running.Add(1)
	defer s.running.Add(-1)
	if h := s.cfg.startHook; h != nil {
		h(j)
	}
	j.setRunning()

	ctx, cancel := context.WithTimeout(context.Background(), j.deadline)
	defer cancel()
	if fault.Hit("server.cancel-run") {
		cancel() // injected fault: the deadline fires before any run starts
	}

	s.subscribe(j)
	defer s.unsubscribe(j)

	j.suite.Prefetch(j.reqs...)
	// The pool error is deliberately not inspected: failures of this
	// job's own runs resurface from the cached entries in the collect
	// loop below, failures of other jobs' runs (single-flight sharing)
	// are not this job's problem, and cancellation is visible on ctx.
	_ = harness.RunAllSuitesContext(ctx, s.cfg.RunJobs, j.suite)

	results := make([]RunResult, 0, len(j.reqs))
	for _, r := range j.reqs {
		if err := ctx.Err(); err != nil {
			s.metrics.jobsFailed.Add(1)
			j.fail(fmt.Sprintf("deadline exceeded: %v", err))
			return
		}
		res, err := j.suite.Run(r.Workload, r.Policy, r.Variant)
		if err != nil {
			s.metrics.jobsFailed.Add(1)
			j.fail(fmt.Sprintf("%s/%s: %v", r.Workload, r.Policy, err))
			return
		}
		k := runKey{fp: j.fp, workload: r.Workload, policy: r.Policy, variant: r.Variant}
		rr := makeRunResult(r, res)
		if fi, ok := j.freshRun(k); ok {
			rr.Cached = false
			rr.DurationMS = float64(fi.duration) / float64(time.Millisecond)
		} else {
			rr.Cached = true
		}
		j.emitRunOnce(k, rr)
		results = append(results, rr)
	}
	s.metrics.jobsCompleted.Add(1)
	j.complete(results)
}

// makeRunResult renders a sim.Result for the wire.
func makeRunResult(r harness.RunRequest, res sim.Result) RunResult {
	return RunResult{
		Workload:     r.Workload,
		Policy:       string(r.Policy),
		Variant:      variantSpec(r.Variant),
		Cycles:       res.Cycles,
		Instructions: res.Instructions,
		IPC:          res.IPC(),
		HitRate:      res.Cache.HitRate(),
		StateHash:    fmt.Sprintf("0x%016x", res.StateHash()),
	}
}

func variantSpec(v harness.Variant) VariantSpec {
	return VariantSpec{
		CapacityOnly:    v.CapacityOnly,
		LatencyOnly:     v.LatencyOnly,
		ExtraHitLatency: v.ExtraHitLatency,
		SampleSeries:    v.SampleSeries,
	}
}

// suiteFor returns the resident suite for cfg, creating it (with the
// server's fan-out reporter attached) on first use.
func (s *Server) suiteFor(cfg sim.Config) (*harness.Suite, uint64) {
	fp := fingerprint(cfg)
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.suites[fp]; ok {
		return st, fp
	}
	st := harness.NewSuite(cfg)
	st.Jobs = s.cfg.RunJobs
	st.Reporter = &suiteReporter{srv: s, fp: fp}
	if s.store != nil {
		// Guarded assignment: a nil *tieredStore inside a non-nil
		// harness.Store interface would defeat the suite's nil check.
		st.Store = s.store
	}
	s.suites[fp] = st
	return st, fp
}

// subscribe registers j for reporter events of every run in its batch.
func (s *Server) subscribe(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range j.reqs {
		k := runKey{fp: j.fp, workload: r.Workload, policy: r.Policy, variant: r.Variant}
		s.subs[k] = append(s.subs[k], j)
	}
}

func (s *Server) unsubscribe(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range j.reqs {
		k := runKey{fp: j.fp, workload: r.Workload, policy: r.Policy, variant: r.Variant}
		keep := s.subs[k][:0]
		for _, sub := range s.subs[k] {
			if sub != j {
				keep = append(keep, sub)
			}
		}
		if len(keep) == 0 {
			delete(s.subs, k)
		} else {
			s.subs[k] = keep
		}
	}
}

// suiteReporter is the harness.Reporter installed on every resident
// suite: it feeds the latency histograms and fans completion events out
// to the jobs subscribed to that run. It must be safe for concurrent
// use (the pool calls it from several workers).
type suiteReporter struct {
	srv *Server
	fp  uint64
}

func (r *suiteReporter) RunDone(e harness.RunEvent) {
	r.srv.metrics.observeRun(e.Workload, e.Duration)
	k := runKey{fp: r.fp, workload: e.Workload, policy: e.Policy, variant: e.Variant}
	r.srv.mu.Lock()
	subs := append([]*Job(nil), r.srv.subs[k]...)
	r.srv.mu.Unlock()
	if len(subs) == 0 {
		return
	}
	rr := makeRunResult(harness.RunRequest{Workload: e.Workload, Policy: e.Policy, Variant: e.Variant}, e.Result)
	rr.DurationMS = float64(e.Duration) / float64(time.Millisecond)
	for _, j := range subs {
		j.noteFresh(k, rr)
	}
}

// --- HTTP handlers ----------------------------------------------------

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Admission holds the read half of the shutdown fence: after
	// Shutdown flips draining (under the write lock), no job can slip
	// into the queue behind the workers' final drain pass.
	s.admit.RLock()
	defer s.admit.RUnlock()
	if s.draining.Load() {
		s.metrics.rejectedDraining.Add(1)
		writeJSONError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.rejectedInvalid.Add(1)
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}

	specs := req.Runs
	if req.Workload != "" || req.Policy != "" {
		if len(specs) > 0 {
			s.metrics.rejectedInvalid.Add(1)
			writeJSONError(w, http.StatusBadRequest, "give either an inline workload/policy or a runs batch, not both")
			return
		}
		specs = []RunSpec{{Workload: req.Workload, Policy: req.Policy, Variant: req.Variant}}
	}
	if len(specs) == 0 {
		s.metrics.rejectedInvalid.Add(1)
		writeJSONError(w, http.StatusBadRequest, "no runs submitted")
		return
	}

	reqs := make([]harness.RunRequest, 0, len(specs))
	for _, spec := range specs {
		if !s.workloads[spec.Workload] {
			s.metrics.rejectedInvalid.Add(1)
			writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("unknown workload %q", spec.Workload))
			return
		}
		if !s.policies[harness.Policy(spec.Policy)] {
			s.metrics.rejectedInvalid.Add(1)
			writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("unknown policy %q", spec.Policy))
			return
		}
		reqs = append(reqs, harness.RunRequest{
			Workload: spec.Workload,
			Policy:   harness.Policy(spec.Policy),
			Variant:  spec.Variant.toVariant(),
		})
	}

	cfg, err := req.Config.Apply(s.cfg.BaseConfig)
	if err != nil {
		s.metrics.rejectedInvalid.Add(1)
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}

	suite, fp := s.suiteFor(cfg)
	id := fmt.Sprintf("job-%06d", s.nextID.Add(1))
	job := newJob(id, reqs, suite, fp, deadline)

	s.mu.Lock()
	s.jobs[id] = job
	s.mu.Unlock()

	accepted := false
	if !fault.Hit("server.queue-overflow") { // injected fault: behave as if the queue were full
		select {
		case s.queue <- job:
			accepted = true
		default:
		}
	}
	if !accepted {
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		s.metrics.rejectedFull.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, http.StatusTooManyRequests, "job queue full")
		return
	}

	s.metrics.jobsAccepted.Add(1)
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, SubmitResponse{ID: id, Status: string(stateQueued), Runs: len(reqs), Fingerprint: fpHex(fp)})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeJSONError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, j.status())
}

// handleEvents streams a job's event log as Server-Sent Events: the
// full history replays first (so late subscribers of a finished job
// still see everything), then live events until the job reaches a
// terminal state or the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeJSONError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSONError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	sent := 0
	for {
		events, state, changed := j.snapshot()
		for ; sent < len(events); sent++ {
			data, err := json.Marshal(events[sent].Data)
			if err != nil {
				data = []byte(fmt.Sprintf("%q", err.Error()))
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", events[sent].Type, data)
		}
		fl.Flush()
		if state == stateDone || state == stateFailed {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleLoad answers the cluster router's health/load probe: how much
// work this worker holds and whether it is draining. Cheap by design —
// the router polls it once per health interval per worker.
func (s *Server) handleLoad(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, LoadStatus{
		Queued:        int64(len(s.queue)),
		Running:       s.running.Load(),
		QueueCapacity: int64(cap(s.queue)),
		Draining:      s.draining.Load(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := metricsSnapshot{
		queueDepth: len(s.queue),
		draining:   s.draining.Load(),
	}
	s.mu.Lock()
	snap.suites = len(s.suites)
	for _, st := range s.suites {
		snap.fresh += st.Simulations()
		snap.cacheHits += st.CacheHits()
		snap.storeHits += st.StoreHits()
	}
	s.mu.Unlock()
	if s.store != nil {
		snap.hasStore = true
		snap.store = s.store.disk.Counters()
		snap.peerHits = s.store.peerHits.Load()
		snap.peerMisses = s.store.peerMisses.Load()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, snap)
}

func (s *Server) jobByID(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func writeJSON(w http.ResponseWriter, v any) {
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
