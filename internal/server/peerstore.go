package server

import (
	"encoding/json"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"lattecc/internal/harness"
	"lattecc/internal/resultstore"
	"lattecc/internal/sim"
)

// maxPeerEntryBytes bounds a single entry fetched from a peer; anything
// larger is discarded unread. Real entries are a few KB (a serialized
// sim.Result), so this is purely a misbehaving-peer guard.
const maxPeerEntryBytes = 64 << 20

// tieredStore is the harness.Store the daemon installs on its resident
// suites: local disk first, then the cluster's cache-peer protocol. A
// result computed by any worker serves every worker — on a local miss
// each peer's GET /v1/results/{key} is tried in turn, and a fetched
// entry is validated (decode + checksum + StateHash + key match, the
// same fail-closed contract as a disk read) and written through to the
// local disk tier before being returned, so the next restart serves it
// locally.
type tieredStore struct {
	disk   *resultstore.Store
	peers  func() []string // nil = clusterless; consulted per miss, never cached
	client *http.Client

	peerHits   atomic.Uint64 // misses rescued by a peer entry
	peerMisses atomic.Uint64 // misses no peer could serve
}

func newTieredStore(disk *resultstore.Store, peers func() []string) *tieredStore {
	return &tieredStore{
		disk:   disk,
		peers:  peers,
		client: &http.Client{Timeout: 5 * time.Second},
	}
}

// Load implements harness.Store.
func (t *tieredStore) Load(k harness.StoreKey) (sim.Result, bool) {
	if res, ok := t.disk.Load(k); ok {
		return res, true
	}
	if t.peers == nil {
		return sim.Result{}, false
	}
	keyx := resultstore.KeyHex(k)
	for _, base := range t.peers() {
		raw, ok := t.fetch(base, keyx)
		if !ok {
			continue
		}
		// PutRaw validates the peer's bytes exactly as a disk read would;
		// a corrupt or mismatched entry bumps the store's corrupt counter
		// and the next peer is tried.
		if err := t.disk.PutRaw(k, raw); err != nil {
			continue
		}
		res, ok := t.disk.Load(k)
		if !ok {
			continue
		}
		t.peerHits.Add(1)
		return res, true
	}
	t.peerMisses.Add(1)
	return sim.Result{}, false
}

// Save implements harness.Store: fresh results land on the local disk
// tier only — peers pull on demand, nothing is pushed.
func (t *tieredStore) Save(k harness.StoreKey, res sim.Result) { t.disk.Save(k, res) }

// fetch retrieves one raw entry from a peer, tolerating every failure
// (dead peer, 404, oversized body) as a simple miss.
func (t *tieredStore) fetch(base, keyx string) ([]byte, bool) {
	resp, err := t.client.Get(base + "/v1/results/" + keyx)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerEntryBytes+1))
	if err != nil || len(raw) > maxPeerEntryBytes {
		return nil, false
	}
	return raw, true
}

// handleResult is the serving side of the cache-peer protocol: raw,
// unparsed entry bytes by hex key, 404 on any miss. Peers validate what
// they receive, so this endpoint never needs to decode.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeJSONError(w, http.StatusNotFound, "no result store configured")
		return
	}
	raw, ok := s.store.disk.GetRaw(r.PathValue("key"))
	if !ok {
		writeJSONError(w, http.StatusNotFound, "no such entry")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(raw)
}

// RouterPeers returns a registry-driven peer source for the cache-peer
// protocol: each call lists the base URLs of every worker currently
// registered with the router (GET /v1/workers), excluding this worker's
// own advertise URL. Draining workers are included — a worker that no
// longer accepts jobs still serves its store. Lookup failures yield an
// empty list: the cluster tier silently degrades to disk-only.
func RouterPeers(router, self string) func() []string {
	client := &http.Client{Timeout: 5 * time.Second}
	return func() []string {
		resp, err := client.Get(router + "/v1/workers")
		if err != nil {
			return nil
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil
		}
		var body struct {
			Workers []struct {
				URL string `json:"url"`
			} `json:"workers"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err != nil {
			return nil
		}
		peers := make([]string, 0, len(body.Workers))
		for _, w := range body.Workers {
			if w.URL != "" && w.URL != self {
				peers = append(peers, w.URL)
			}
		}
		return peers
	}
}
