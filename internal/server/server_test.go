package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lattecc/internal/harness"
	"lattecc/internal/sim"
)

// tinyConfig is the test machine: 2 SMs and a small instruction budget,
// the same shape the -tiny smoke configs use.
func tinyConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.NumSMs = 2
	cfg.MaxInstructions = 40_000
	return cfg
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.BaseConfig.NumSMs == 0 {
		cfg.BaseConfig = tinyConfig()
	}
	if cfg.DefaultDeadline == 0 {
		cfg.DefaultDeadline = time.Minute
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("cleanup shutdown: %v", err)
		}
	})
	return s, ts
}

func submit(t *testing.T, base string, req SubmitRequest) SubmitResponse {
	t.Helper()
	resp, body := post(t, base, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("submit response: %v (%s)", err, body)
	}
	return sr
}

func post(t *testing.T, base string, req SubmitRequest) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/runs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// waitJob polls a job to a terminal state.
func waitJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == string(stateDone) || st.Status == string(stateFailed) {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// TestSubmitStateHashMatchesDirect is the determinism contract: a batch
// served through the daemon — including one with config overrides —
// reports exactly the StateHash a direct Suite.MustRun computes for the
// same machine.
func TestSubmitStateHashMatchesDirect(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	sr := submit(t, ts.URL, SubmitRequest{Runs: []RunSpec{
		{Workload: "BO", Policy: "Uncompressed"},
		{Workload: "SS", Policy: "LATTE-CC"},
	}})
	if sr.Runs != 2 {
		t.Fatalf("accepted %d runs, want 2", sr.Runs)
	}
	st := waitJob(t, ts.URL, sr.ID)
	if st.Status != string(stateDone) {
		t.Fatalf("job failed: %s", st.Error)
	}

	direct := harness.NewSuite(tinyConfig())
	for _, r := range st.Results {
		res := direct.MustRun(r.Workload, harness.Policy(r.Policy), harness.Variant{})
		want := fmt.Sprintf("0x%016x", res.StateHash())
		if r.StateHash != want {
			t.Errorf("%s/%s: daemon hash %s, direct %s", r.Workload, r.Policy, r.StateHash, want)
		}
		if r.Cycles != res.Cycles || r.Instructions != res.Instructions {
			t.Errorf("%s/%s: counters diverge from direct run", r.Workload, r.Policy)
		}
	}

	// Same contract through a config override (distinct resident suite).
	smaller := 8
	sr2 := submit(t, ts.URL, SubmitRequest{
		Workload: "BO", Policy: "LATTE-CC",
		Config: &ConfigOverrides{MSHRs: &smaller},
	})
	st2 := waitJob(t, ts.URL, sr2.ID)
	if st2.Status != string(stateDone) {
		t.Fatalf("override job failed: %s", st2.Error)
	}
	cfg := tinyConfig()
	cfg.MSHRs = smaller
	res := harness.NewSuite(cfg).MustRun("BO", harness.LatteCC, harness.Variant{})
	if want := fmt.Sprintf("0x%016x", res.StateHash()); st2.Results[0].StateHash != want {
		t.Errorf("override run hash %s, direct %s", st2.Results[0].StateHash, want)
	}
}

// TestConcurrentSubmissionsDeterministic hammers the daemon with
// overlapping batches from many clients and checks (a) every job
// finishes, (b) all copies of the same run agree on the StateHash, and
// (c) the single-flight cache collapsed the duplicates to one fresh
// simulation per distinct run.
func TestConcurrentSubmissionsDeterministic(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})

	batch := []RunSpec{
		{Workload: "BO", Policy: "Uncompressed"},
		{Workload: "SS", Policy: "Uncompressed"},
		{Workload: "SS", Policy: "LATTE-CC"},
		{Workload: "FW", Policy: "LATTE-CC"},
	}
	const clients = 8
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = submit(t, ts.URL, SubmitRequest{Runs: batch}).ID
		}(i)
	}
	wg.Wait()

	hashes := map[string]string{}
	for _, id := range ids {
		st := waitJob(t, ts.URL, id)
		if st.Status != string(stateDone) {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		for _, r := range st.Results {
			key := r.Workload + "/" + r.Policy
			if prev, ok := hashes[key]; ok && prev != r.StateHash {
				t.Errorf("%s: hash diverged across jobs: %s vs %s", key, prev, r.StateHash)
			}
			hashes[key] = r.StateHash
		}
	}

	s.mu.Lock()
	var fresh uint64
	for _, st := range s.suites {
		fresh += st.Simulations()
	}
	s.mu.Unlock()
	if fresh != uint64(len(batch)) {
		t.Errorf("distinct runs simulated %d times, want %d", fresh, len(batch))
	}
}

// TestQueueOverflow fills the queue behind a held worker and checks the
// daemon answers 429 with Retry-After instead of blocking or dropping.
func TestQueueOverflow(t *testing.T) {
	started := make(chan *Job, 1)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		startHook: func(j *Job) {
			started <- j
			<-release
		},
	})
	defer close(release) // let cleanup shutdown drain

	one := SubmitRequest{Workload: "BO", Policy: "Uncompressed"}
	submit(t, ts.URL, one) // picked up by the single worker
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never picked up first job")
	}
	submit(t, ts.URL, one) // sits in the queue (depth 1)

	resp, body := post(t, ts.URL, one) // no room left
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	if got := s.metrics.rejectedFull.Load(); got != 1 {
		t.Errorf("rejectedFull = %d, want 1", got)
	}
}

// TestGracefulShutdown: Shutdown rejects new submissions immediately
// (503), completes the in-flight and queued jobs, and returns nil once
// drained.
func TestGracefulShutdown(t *testing.T) {
	started := make(chan *Job, 1)
	release := make(chan struct{})
	cfg := Config{
		BaseConfig: tinyConfig(),
		Workers:    1,
		QueueDepth: 4,
		startHook: func(j *Job) {
			select {
			case started <- j:
				<-release
			default: // queued job executing during drain: don't block
			}
		},
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inflight := submit(t, ts.URL, SubmitRequest{Workload: "BO", Policy: "Uncompressed"})
	<-started
	queued := submit(t, ts.URL, SubmitRequest{Workload: "SS", Policy: "Uncompressed"})

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Draining: new work must bounce with 503.
	waitFor(t, func() bool { return s.draining.Load() })
	resp, body := post(t, ts.URL, SubmitRequest{Workload: "FW", Policy: "Uncompressed"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: status %d, body %s", resp.StatusCode, body)
	}
	if rr, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		rr.Body.Close()
		if rr.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("readyz during drain: status %d, want 503", rr.StatusCode)
		}
	}

	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Both the in-flight and the queued job finished with results.
	for _, id := range []string{inflight.ID, queued.ID} {
		st := waitJob(t, ts.URL, id)
		if st.Status != string(stateDone) || len(st.Results) != 1 {
			t.Errorf("job %s after drain: status %s, %d results", id, st.Status, len(st.Results))
		}
	}

	// Shutdown is idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// TestMetricsAccounting pins the acceptance identity: the fresh and
// cache-hit counters exported by /metrics must sum to exactly what the
// resident suites report, and the rendered page carries the expected
// metric families.
func TestMetricsAccounting(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	batch := SubmitRequest{Runs: []RunSpec{
		{Workload: "BO", Policy: "Uncompressed"},
		{Workload: "SS", Policy: "Uncompressed"},
	}}
	first := submit(t, ts.URL, batch)
	waitJob(t, ts.URL, first.ID)
	second := submit(t, ts.URL, batch) // fully cache-served
	waitJob(t, ts.URL, second.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	var fresh, hits uint64
	for _, line := range strings.Split(string(page), "\n") {
		if n, _ := fmt.Sscanf(line, "latteccd_simulations_fresh_total %d", &fresh); n == 1 {
			continue
		}
		fmt.Sscanf(line, "latteccd_simulation_cache_hits_total %d", &hits)
	}

	s.mu.Lock()
	var wantFresh, wantHits uint64
	for _, st := range s.suites {
		wantFresh += st.Simulations()
		wantHits += st.CacheHits()
	}
	s.mu.Unlock()
	if fresh != wantFresh || hits != wantHits {
		t.Errorf("metrics fresh=%d hits=%d, suites report fresh=%d hits=%d", fresh, hits, wantFresh, wantHits)
	}
	if fresh+hits != wantFresh+wantHits {
		t.Errorf("fresh+hits = %d, want Simulations()+CacheHits() = %d", fresh+hits, wantFresh+wantHits)
	}
	if fresh != 2 {
		t.Errorf("fresh simulations = %d, want 2 (second batch must be cache-served)", fresh)
	}
	if hits < 2 {
		t.Errorf("cache hits = %d, want >= 2", hits)
	}

	for _, family := range []string{
		"latteccd_jobs_accepted_total",
		"latteccd_jobs_completed_total",
		"latteccd_jobs_rejected_total{reason=\"queue_full\"}",
		"latteccd_queue_depth",
		"latteccd_run_seconds_bucket",
		"latteccd_run_seconds_count",
	} {
		if !strings.Contains(string(page), family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
}

// TestSSEEvents reads a finished job's event stream and checks the full
// replay: queued, running, one run frame per request, done — in order.
func TestSSEEvents(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	sr := submit(t, ts.URL, SubmitRequest{Runs: []RunSpec{
		{Workload: "BO", Policy: "Uncompressed"},
		{Workload: "BO", Policy: "LATTE-CC"},
	}})
	waitJob(t, ts.URL, sr.ID)

	resp, err := http.Get(ts.URL + "/v1/runs/" + sr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var types []string
	var runFrames []RunResult
	sc := bufio.NewScanner(resp.Body)
	cur := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur = strings.TrimPrefix(line, "event: ")
			types = append(types, cur)
		case strings.HasPrefix(line, "data: ") && cur == "run":
			var rr RunResult
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rr); err != nil {
				t.Fatalf("run frame: %v", err)
			}
			runFrames = append(runFrames, rr)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	want := []string{"queued", "running", "run", "run", "done"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("event sequence %v, want %v", types, want)
	}
	for _, rr := range runFrames {
		if rr.StateHash == "" || rr.Cycles == 0 {
			t.Errorf("run frame %s/%s missing payload", rr.Workload, rr.Policy)
		}
	}
}

// TestValidation covers the 400/404 surface and a deadline failure.
func TestValidation(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	cases := []struct {
		name string
		req  SubmitRequest
	}{
		{"empty", SubmitRequest{}},
		{"unknown workload", SubmitRequest{Workload: "NOPE", Policy: "Uncompressed"}},
		{"unknown policy", SubmitRequest{Workload: "BO", Policy: "bogus"}},
		{"inline and batch", SubmitRequest{Workload: "BO", Policy: "Uncompressed",
			Runs: []RunSpec{{Workload: "SS", Policy: "Uncompressed"}}}},
		{"bad override", SubmitRequest{Workload: "BO", Policy: "Uncompressed",
			Config: &ConfigOverrides{NumSMs: new(int)}}}, // zero SMs
	}
	for _, tc := range cases {
		resp, body := post(t, ts.URL, tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s", tc.name, resp.StatusCode, body)
		}
	}
	if got := s.metrics.rejectedInvalid.Load(); got != uint64(len(cases)) {
		t.Errorf("rejectedInvalid = %d, want %d", got, len(cases))
	}

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}

	// Unknown job.
	resp, err = http.Get(ts.URL + "/v1/runs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp.StatusCode)
	}

	// A 1 ms deadline cannot cover a fresh simulation: the job must fail
	// cleanly, not hang. A private override keys a cold suite.
	sms := 1
	sr := submit(t, ts.URL, SubmitRequest{
		Workload: "BO", Policy: "Uncompressed",
		Config:     &ConfigOverrides{NumSMs: &sms},
		DeadlineMS: 1,
	})
	st := waitJob(t, ts.URL, sr.ID)
	if st.Status != string(stateFailed) || !strings.Contains(st.Error, "deadline") {
		t.Errorf("deadline job: status %s, error %q", st.Status, st.Error)
	}
}

// TestFingerprint pins suite-sharing semantics: identical configs map
// to one suite, any material override keys a new one.
func TestFingerprint(t *testing.T) {
	base := tinyConfig()
	if fingerprint(base) != fingerprint(tinyConfig()) {
		t.Error("identical configs must share a fingerprint")
	}
	mut := base
	mut.MSHRs++
	if fingerprint(mut) == fingerprint(base) {
		t.Error("changed MSHRs must change the fingerprint")
	}
	mut = base
	mut.Cache.SizeBytes *= 2
	if fingerprint(mut) == fingerprint(base) {
		t.Error("changed L1 size must change the fingerprint")
	}
	// SMJobs only changes how fast a result is computed, never the
	// result: suites must be shared across sm_jobs overrides.
	mut = base
	mut.SMJobs = 8
	if fingerprint(mut) != fingerprint(base) {
		t.Error("SMJobs must not key a new suite; results are worker-count-invariant")
	}
}

// TestOverrideApply covers the validation corners of ConfigOverrides.
func TestOverrideApply(t *testing.T) {
	base := tinyConfig()

	var nilOv *ConfigOverrides
	got, err := nilOv.Apply(base)
	if err != nil || got != base {
		t.Fatalf("nil overrides must be identity, got err %v", err)
	}

	bad := -1
	if _, err := (&ConfigOverrides{L1Ports: &bad}).Apply(base); err == nil {
		t.Error("negative l1_ports must be rejected")
	}
	var zero uint64
	if _, err := (&ConfigOverrides{MaxInstructions: &zero}).Apply(base); err == nil {
		t.Error("zero max_instructions must be rejected")
	}
	tooSmall := base.Cache.LineSize // one line < one set
	if _, err := (&ConfigOverrides{L1SizeBytes: &tooSmall}).Apply(base); err == nil {
		t.Error("sub-set l1_size_bytes must be rejected")
	}
	if _, err := (&ConfigOverrides{SMJobs: &bad}).Apply(base); err == nil {
		t.Error("negative sm_jobs must be rejected")
	}
	serialJobs := 0 // 0 is legal for sm_jobs (= serial), unlike the >= 1 fields
	if got, err := (&ConfigOverrides{SMJobs: &serialJobs}).Apply(base); err != nil || got.SMJobs != 0 {
		t.Errorf("sm_jobs 0 must be accepted as serial, got %d err %v", got.SMJobs, err)
	}

	n := 4
	got, err = (&ConfigOverrides{NumSMs: &n}).Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSMs != 4 {
		t.Errorf("NumSMs = %d, want 4", got.NumSMs)
	}
	if base.NumSMs != 2 {
		t.Error("apply must not mutate its input")
	}
}
