package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lattecc/internal/resultstore"
)

// metrics is latteccd's observability registry: a fixed set of counters
// and gauges plus per-workload run-latency histograms, rendered in
// Prometheus text exposition format by write(). It is deliberately
// stdlib-only — the daemon takes no dependency on client_golang.
//
// The fresh-simulation and cache-hit counters are NOT stored here: they
// are read at scrape time straight from the suites' own
// Simulations()/CacheHits() counters, so /metrics can never drift from
// the harness's ground truth.
type metrics struct {
	jobsAccepted  atomic.Uint64
	jobsCompleted atomic.Uint64
	jobsFailed    atomic.Uint64

	rejectedFull     atomic.Uint64 // 429: job queue at capacity
	rejectedDraining atomic.Uint64 // 503: shutdown in progress
	rejectedInvalid  atomic.Uint64 // 400: malformed submission

	mu sync.Mutex //lint:mutex nocalls
	//lint:guards mu
	runs map[string]*histogram // per-workload latency of fresh simulations
}

func newMetrics() *metrics {
	return &metrics{runs: map[string]*histogram{}}
}

// runBuckets are the histogram upper bounds in seconds. Tiny-machine
// smoke runs land in the first buckets, full Table II runs in the tail.
var runBuckets = []float64{0.005, 0.02, 0.1, 0.5, 2, 10, 60}

// histogram is one cumulative-on-render latency histogram. counts[i]
// holds observations in (runBuckets[i-1], runBuckets[i]]; the final
// slot is the +Inf overflow.
type histogram struct {
	counts []uint64 // len(runBuckets)+1
	sum    float64
	count  uint64
}

// observeRun records one fresh simulation's wall-clock latency.
func (m *metrics) observeRun(workload string, d time.Duration) {
	s := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.runs[workload]
	if h == nil {
		h = &histogram{counts: make([]uint64, len(runBuckets)+1)}
		m.runs[workload] = h
	}
	h.sum += s
	h.count++
	for i, ub := range runBuckets {
		if s <= ub {
			h.counts[i]++
			return
		}
	}
	h.counts[len(runBuckets)]++
}

// snapshot values the render pass reads from the rest of the server.
type metricsSnapshot struct {
	queueDepth int
	suites     int
	fresh      uint64 // sum of Suite.Simulations() over all suites
	cacheHits  uint64 // sum of Suite.CacheHits() over all suites
	storeHits  uint64 // sum of Suite.StoreHits() over all suites
	draining   bool

	// Persistent-store activity; rendered only when a store is
	// configured (hasStore), so memory-only daemons scrape identically
	// to pre-store builds.
	hasStore   bool
	store      resultstore.Counters
	peerHits   uint64
	peerMisses uint64
}

// write renders the registry in Prometheus text format. Workloads are
// emitted in sorted order so scrapes are byte-stable for tests.
func (m *metrics) write(w io.Writer, snap metricsSnapshot) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("latteccd_jobs_accepted_total", "Jobs admitted to the queue.", m.jobsAccepted.Load())
	counter("latteccd_jobs_completed_total", "Jobs that finished with results.", m.jobsCompleted.Load())
	counter("latteccd_jobs_failed_total", "Jobs that ended in an error (bad run, deadline).", m.jobsFailed.Load())

	fmt.Fprintf(w, "# HELP latteccd_jobs_rejected_total Submissions refused at admission, by reason.\n")
	fmt.Fprintf(w, "# TYPE latteccd_jobs_rejected_total counter\n")
	fmt.Fprintf(w, "latteccd_jobs_rejected_total{reason=\"queue_full\"} %d\n", m.rejectedFull.Load())
	fmt.Fprintf(w, "latteccd_jobs_rejected_total{reason=\"draining\"} %d\n", m.rejectedDraining.Load())
	fmt.Fprintf(w, "latteccd_jobs_rejected_total{reason=\"invalid\"} %d\n", m.rejectedInvalid.Load())

	gauge("latteccd_queue_depth", "Jobs waiting for a worker.", int64(snap.queueDepth))
	gauge("latteccd_suites", "Resident suites (one per distinct machine config).", int64(snap.suites))
	drain := int64(0)
	if snap.draining {
		drain = 1
	}
	gauge("latteccd_draining", "1 while shutdown is draining in-flight jobs.", drain)

	counter("latteccd_simulations_fresh_total",
		"Simulations actually executed (Suite.Simulations over all suites).", snap.fresh)
	counter("latteccd_simulation_cache_hits_total",
		"Run requests served from the result cache (Suite.CacheHits over all suites).", snap.cacheHits)
	counter("latteccd_simulation_store_hits_total",
		"Run requests served from the persistent result store (Suite.StoreHits over all suites).", snap.storeHits)

	if snap.hasStore {
		counter("latteccd_store_hits_total", "Store loads served from a validated disk entry.", snap.store.Hits)
		counter("latteccd_store_misses_total", "Store loads with no entry on disk.", snap.store.Misses)
		counter("latteccd_store_corrupt_total",
			"Entries discarded by fail-closed validation (truncation, checksum, StateHash, key mismatch).", snap.store.Corrupt)
		counter("latteccd_store_evictions_total", "Entries deleted by the LRU size bound.", snap.store.Evictions)
		counter("latteccd_store_saves_total", "Entries written to disk.", snap.store.Saves)
		gauge("latteccd_store_entries", "Entries currently indexed by the store.", int64(snap.store.Entries))
		gauge("latteccd_store_bytes", "Total bytes of indexed store entries.", snap.store.Bytes)
		counter("latteccd_store_peer_hits_total", "Local store misses rescued by a cluster peer's entry.", snap.peerHits)
		counter("latteccd_store_peer_misses_total", "Local store misses no cluster peer could serve.", snap.peerMisses)
	}

	// Snapshot the histograms under mu, render outside: mu is nocalls,
	// so holding it across Fprintf to a caller-supplied writer (an HTTP
	// response — an arbitrarily slow network peer) is a contract
	// violation lattelint rejects.
	m.mu.Lock()
	names := make([]string, 0, len(m.runs))
	hists := make(map[string]histogram, len(m.runs))
	for name, h := range m.runs {
		names = append(names, name)
		hists[name] = histogram{
			counts: append([]uint64(nil), h.counts...),
			sum:    h.sum,
			count:  h.count,
		}
	}
	m.mu.Unlock()

	sort.Strings(names)
	fmt.Fprintf(w, "# HELP latteccd_run_seconds Wall-clock latency of fresh simulations, per workload.\n")
	fmt.Fprintf(w, "# TYPE latteccd_run_seconds histogram\n")
	for _, name := range names {
		h := hists[name]
		cum := uint64(0)
		for i, ub := range runBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "latteccd_run_seconds_bucket{workload=%q,le=\"%g\"} %d\n", name, ub, cum)
		}
		cum += h.counts[len(runBuckets)]
		fmt.Fprintf(w, "latteccd_run_seconds_bucket{workload=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "latteccd_run_seconds_sum{workload=%q} %g\n", name, h.sum)
		fmt.Fprintf(w, "latteccd_run_seconds_count{workload=%q} %d\n", name, h.count)
	}
}
