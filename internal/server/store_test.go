package server

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lattecc/internal/resultstore"
)

func openStore(t *testing.T, dir string) *resultstore.Store {
	t.Helper()
	st, err := resultstore.Open(dir, resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func storeBatch() SubmitRequest {
	return SubmitRequest{Runs: []RunSpec{
		{Workload: "SS", Policy: "LATTE-CC"},
		{Workload: "SS", Policy: "Uncompressed"},
		{Workload: "BO", Policy: "Uncompressed"},
	}}
}

// TestDaemonWarmRestartStoreParity is the daemon-level restart contract:
// a second daemon over the same store directory serves the identical
// StateHashes with zero fresh simulations.
func TestDaemonWarmRestartStoreParity(t *testing.T) {
	dir := t.TempDir()

	s1, ts1 := newTestServer(t, Config{Store: openStore(t, dir)})
	cold := waitJob(t, ts1.URL, submit(t, ts1.URL, storeBatch()).ID)
	if cold.Status != string(stateDone) {
		t.Fatalf("cold job: %+v", cold)
	}
	if got := suiteCounters(s1); got.fresh != 3 || got.store != 0 {
		t.Fatalf("cold pass counters: %+v", got)
	}

	s2, ts2 := newTestServer(t, Config{Store: openStore(t, dir)})
	warm := waitJob(t, ts2.URL, submit(t, ts2.URL, storeBatch()).ID)
	if warm.Status != string(stateDone) {
		t.Fatalf("warm job: %+v", warm)
	}
	for i := range cold.Results {
		if cold.Results[i].StateHash != warm.Results[i].StateHash {
			t.Fatalf("run %d: warm hash %s != cold %s",
				i, warm.Results[i].StateHash, cold.Results[i].StateHash)
		}
	}
	if got := suiteCounters(s2); got.fresh != 0 || got.store != 3 {
		t.Fatalf("warm pass must serve everything from the store: %+v", got)
	}
}

// TestDaemonCorruptEntryResimulates corrupts one entry between daemon
// generations: the restarted daemon must discard it, re-simulate that
// one run to the same hash, and serve the rest from the store.
func TestDaemonCorruptEntryResimulates(t *testing.T) {
	dir := t.TempDir()

	_, ts1 := newTestServer(t, Config{Store: openStore(t, dir)})
	cold := waitJob(t, ts1.URL, submit(t, ts1.URL, storeBatch()).ID)

	ents, err := filepath.Glob(filepath.Join(dir, "*.lcr"))
	if err != nil || len(ents) != 3 {
		t.Fatalf("store entries: %v (err=%v)", ents, err)
	}
	if err := os.Truncate(ents[0], 40); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{Store: openStore(t, dir)})
	warm := waitJob(t, ts2.URL, submit(t, ts2.URL, storeBatch()).ID)
	for i := range cold.Results {
		if cold.Results[i].StateHash != warm.Results[i].StateHash {
			t.Fatalf("run %d: hash diverged after corruption", i)
		}
	}
	if got := suiteCounters(s2); got.fresh != 1 || got.store != 2 {
		t.Fatalf("exactly the corrupted entry must re-simulate: %+v", got)
	}
	if c := s2.cfg.Store.Counters(); c.Corrupt != 1 {
		t.Fatalf("corrupt counter: %+v", c)
	}
}

// TestCachePeerProtocol stands up two stored daemons and points B's peer
// source at A: a batch A has already computed must be served on B
// entirely by peer fetches — zero fresh simulations on B — and the
// fetched entries must land in B's own store.
func TestCachePeerProtocol(t *testing.T) {
	_, tsA := newTestServer(t, Config{Store: openStore(t, t.TempDir())})
	gold := waitJob(t, tsA.URL, submit(t, tsA.URL, storeBatch()).ID)

	dirB := t.TempDir()
	sB, tsB := newTestServer(t, Config{
		Store: openStore(t, dirB),
		Peers: func() []string { return []string{tsA.URL} },
	})
	got := waitJob(t, tsB.URL, submit(t, tsB.URL, storeBatch()).ID)
	for i := range gold.Results {
		if gold.Results[i].StateHash != got.Results[i].StateHash {
			t.Fatalf("run %d: peer-served hash %s != computed %s",
				i, got.Results[i].StateHash, gold.Results[i].StateHash)
		}
	}
	if c := suiteCounters(sB); c.fresh != 0 || c.store != 3 {
		t.Fatalf("B must simulate nothing: %+v", c)
	}
	if h := sB.store.peerHits.Load(); h != 3 {
		t.Fatalf("peer hits = %d, want 3", h)
	}
	// Write-through: B now owns the entries and can serve them (or a
	// restart) without A.
	if c := sB.cfg.Store.Counters(); c.Entries != 3 || c.Saves != 3 {
		t.Fatalf("peer entries must persist locally: %+v", c)
	}
}

// TestResultsEndpoint exercises the serving side directly: raw bytes for
// a present key, 404 otherwise, 404s on traversal attempts, and 404 on
// a storeless daemon.
func TestResultsEndpoint(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Store: openStore(t, dir)})
	waitJob(t, ts.URL, submit(t, ts.URL, SubmitRequest{Workload: "SS", Policy: "Uncompressed"}).ID)

	ents, _ := filepath.Glob(filepath.Join(dir, "*.lcr"))
	if len(ents) != 1 {
		t.Fatalf("want 1 entry, got %v", ents)
	}
	keyx := strings.TrimSuffix(filepath.Base(ents[0]), ".lcr")

	resp, err := http.Get(ts.URL + "/v1/results/" + keyx)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("present key: status %d", resp.StatusCode)
	}
	if _, _, err := resultstore.Decode(raw); err != nil {
		t.Fatalf("served entry must validate: %v", err)
	}

	for _, bad := range []string{"0000000000000000", "..%2f..%2fetc%2fpasswd", "nothex"} {
		resp, err := http.Get(ts.URL + "/v1/results/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("key %q: status %d, want 404", bad, resp.StatusCode)
		}
	}

	_, tsNoStore := newTestServer(t, Config{})
	resp2, err := http.Get(tsNoStore.URL + "/v1/results/" + keyx)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("storeless daemon: status %d, want 404", resp2.StatusCode)
	}
}

// suiteCounters sums the harness-level counters across resident suites.
type suiteCountersSnap struct {
	fresh, mem, store uint64
}

func suiteCounters(s *Server) suiteCountersSnap {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out suiteCountersSnap
	for _, st := range s.suites {
		out.fresh += st.Simulations()
		out.mem += st.CacheHits()
		out.store += st.StoreHits()
	}
	return out
}
