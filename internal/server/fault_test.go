package server

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"lattecc/internal/fault"
	"lattecc/internal/harness"
	"lattecc/internal/invariant"
)

// TestSSEClientKilledMidReplay: an events subscriber that disappears
// mid-stream must not disturb the job it was watching — the run
// completes, the reporter fan-out unregisters cleanly, a later
// subscriber still replays the full history, and /metrics stays
// serviceable.
func TestSSEClientKilledMidReplay(t *testing.T) {
	started := make(chan *Job, 1)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers: 1,
		startHook: func(j *Job) {
			select {
			case started <- j:
				<-release
			default:
			}
		},
	})

	sr := submit(t, ts.URL, SubmitRequest{Runs: []RunSpec{
		{Workload: "BO", Policy: "Uncompressed"},
		{Workload: "BO", Policy: "Static-BDI"},
	}})
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never picked up the job")
	}

	// Open the SSE stream while the job is held mid-execution, read the
	// first frame of the replay, then kill the client.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/runs/"+sr.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	gotFrame := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: ") {
			gotFrame = true
			break
		}
	}
	if !gotFrame {
		t.Fatal("no SSE frame before kill")
	}
	cancel()
	resp.Body.Close()

	// The abandoned stream must not wedge the run.
	close(release)
	st := waitJob(t, ts.URL, sr.ID)
	if st.Status != string(stateDone) {
		t.Fatalf("job after SSE kill: %s (%s)", st.Status, st.Error)
	}
	if len(st.Results) != 2 {
		t.Fatalf("job returned %d results, want 2", len(st.Results))
	}

	// Reporter fan-out unregisters: execute's deferred unsubscribe runs
	// just after the terminal state lands, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.subs)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d reporter subscriptions leaked after job completion", n)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A fresh subscriber replays the complete history.
	resp2, err := http.Get(ts.URL + "/v1/runs/" + sr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var types []string
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		if strings.HasPrefix(sc2.Text(), "event: ") {
			types = append(types, strings.TrimPrefix(sc2.Text(), "event: "))
		}
	}
	want := "queued,running,run,run,done"
	if strings.Join(types, ",") != want {
		t.Fatalf("replay after SSE kill: %v, want %s", types, want)
	}

	// Metrics endpoint stays consistent.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", mresp.StatusCode)
	}
	var buf strings.Builder
	sc3 := bufio.NewScanner(mresp.Body)
	for sc3.Scan() {
		buf.WriteString(sc3.Text() + "\n")
	}
	if !strings.Contains(buf.String(), "latteccd_jobs_accepted_total 1") {
		t.Errorf("metrics do not account the accepted job:\n%s", buf.String())
	}
}

// TestQueueOverflowFaultInjected: the injected queue-overflow fault must
// take exactly the real overflow path — 429 with Retry-After, no job
// leaked into the registry — and the daemon must accept the retry once
// the fault clears.
func TestQueueOverflowFaultInjected(t *testing.T) {
	defer fault.Reset()
	s, ts := newTestServer(t, Config{})

	one := SubmitRequest{Workload: "BO", Policy: "Uncompressed"}
	fault.Arm("server.queue-overflow", 1)
	resp, body := post(t, ts.URL, one)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("faulted submit: status %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	s.mu.Lock()
	leaked := len(s.jobs)
	s.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d jobs leaked by the rejected submission", leaked)
	}
	if got := s.metrics.rejectedFull.Load(); got != 1 {
		t.Errorf("rejectedFull = %d, want 1", got)
	}

	// One-shot fault consumed: the retry goes through and completes.
	sr := submit(t, ts.URL, one)
	if st := waitJob(t, ts.URL, sr.ID); st.Status != string(stateDone) {
		t.Fatalf("retry after fault: %s (%s)", st.Status, st.Error)
	}
}

// TestCancelRunFaultInjected: a context cancelled at the top of a run
// must fail that job gracefully — failed state with a deadline error, no
// result cache corruption — and leave the daemon ready for the
// resubmission, which must produce the canonical StateHash.
func TestCancelRunFaultInjected(t *testing.T) {
	defer fault.Reset()
	_, ts := newTestServer(t, Config{})

	one := SubmitRequest{Workload: "BO", Policy: "Static-BDI"}
	fault.Arm("server.cancel-run", 1)
	sr := submit(t, ts.URL, one)
	st := waitJob(t, ts.URL, sr.ID)
	if st.Status != string(stateFailed) {
		t.Fatalf("faulted job: %s, want failed", st.Status)
	}
	if !strings.Contains(st.Error, "deadline exceeded") {
		t.Fatalf("faulted job error %q, want a deadline failure", st.Error)
	}

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("daemon not ready after faulted job: %v %v", err, resp)
	}

	sr2 := submit(t, ts.URL, one)
	st2 := waitJob(t, ts.URL, sr2.ID)
	if st2.Status != string(stateDone) || len(st2.Results) != 1 {
		t.Fatalf("resubmission: %s (%s)", st2.Status, st2.Error)
	}
	direct := harness.NewSuite(tinyConfig())
	want := direct.MustRun("BO", harness.StaticBDI, harness.Variant{})
	if wantHash := fmt.Sprintf("0x%016x", want.StateHash()); st2.Results[0].StateHash != wantHash {
		t.Errorf("resubmitted state hash %s, want %s", st2.Results[0].StateHash, wantHash)
	}
}

// TestCodecFaultFailsJobNotDaemon: an injected codec decode error under
// paranoid invariants panics inside the simulation; the harness converts
// it to a job failure, the daemon survives, and — because panic results
// are not cached — the resubmission simulates fresh and succeeds with
// the canonical result. The fault is armed unbounded because the
// harness legitimately retries a panicked run (panics are evicted from
// the single-flight cache): a one-shot fault would be absorbed by the
// retry and the job would self-heal, which is its own graceful-
// degradation property but not the one under test here.
func TestCodecFaultFailsJobNotDaemon(t *testing.T) {
	prev := invariant.SetActive(true)
	defer invariant.SetActive(prev)
	defer fault.Reset()
	_, ts := newTestServer(t, Config{})

	one := SubmitRequest{Workload: "BO", Policy: "Static-BDI"}
	fault.Arm("codec.decode", -1)
	sr := submit(t, ts.URL, one)
	st := waitJob(t, ts.URL, sr.ID)
	if st.Status != string(stateFailed) {
		t.Fatalf("poisoned job: %s, want failed", st.Status)
	}
	if !strings.Contains(st.Error, "panicked") {
		t.Fatalf("poisoned job error %q, want recovered panic", st.Error)
	}

	fault.Disarm("codec.decode")
	sr2 := submit(t, ts.URL, one)
	st2 := waitJob(t, ts.URL, sr2.ID)
	if st2.Status != string(stateDone) || len(st2.Results) != 1 {
		t.Fatalf("resubmission after poisoned run: %s (%s)", st2.Status, st2.Error)
	}
	direct := harness.NewSuite(tinyConfig())
	want := direct.MustRun("BO", harness.StaticBDI, harness.Variant{})
	if wantHash := fmt.Sprintf("0x%016x", want.StateHash()); st2.Results[0].StateHash != wantHash {
		t.Errorf("state hash %s after recovery, want %s", st2.Results[0].StateHash, wantHash)
	}
}
