package cluster

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// routerMetrics is latteroute's own counter set, rendered ahead of the
// aggregated per-worker scrape in /metrics. Stdlib-only, like the
// worker daemon's registry.
type routerMetrics struct {
	jobsRouted        atomic.Uint64
	jobsCompleted     atomic.Uint64
	jobsFailed        atomic.Uint64
	retries           atomic.Uint64
	workersRegistered atomic.Uint64

	rejectedFull      atomic.Uint64 // 429: cluster at max in-flight
	rejectedDraining  atomic.Uint64 // 503: router shutting down
	rejectedInvalid   atomic.Uint64 // 4xx: malformed or worker-rejected
	rejectedNoWorkers atomic.Uint64 // 503: empty or unroutable fleet
}

// handleMetrics renders the router's own counters, a per-worker up/load
// gauge set, and the sum-aggregated scrape of every live worker's
// /metrics — so one scrape of the router observes the whole fleet.
func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	workers := rt.reg.Snapshot()
	rt.mu.Lock()
	inflight := rt.inflight
	rt.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	m := rt.metrics
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("latteroute_jobs_routed_total", "Cluster jobs admitted and placed on a worker.", m.jobsRouted.Load())
	counter("latteroute_jobs_completed_total", "Cluster jobs that reached done.", m.jobsCompleted.Load())
	counter("latteroute_jobs_failed_total", "Cluster jobs that reached failed.", m.jobsFailed.Load())
	counter("latteroute_retries_total", "Jobs re-placed on another worker after losing theirs.", m.retries.Load())
	counter("latteroute_workers_registered_total", "Distinct worker registrations accepted.", m.workersRegistered.Load())
	counter("latteroute_worker_evictions_total", "Workers force-removed after failed health probes.", rt.reg.Evictions())

	fmt.Fprintf(w, "# HELP latteroute_jobs_rejected_total Submissions refused at admission, by reason.\n")
	fmt.Fprintf(w, "# TYPE latteroute_jobs_rejected_total counter\n")
	fmt.Fprintf(w, "latteroute_jobs_rejected_total{reason=\"max_inflight\"} %d\n", m.rejectedFull.Load())
	fmt.Fprintf(w, "latteroute_jobs_rejected_total{reason=\"draining\"} %d\n", m.rejectedDraining.Load())
	fmt.Fprintf(w, "latteroute_jobs_rejected_total{reason=\"invalid\"} %d\n", m.rejectedInvalid.Load())
	fmt.Fprintf(w, "latteroute_jobs_rejected_total{reason=\"no_workers\"} %d\n", m.rejectedNoWorkers.Load())

	fmt.Fprintf(w, "# HELP latteroute_inflight_jobs Non-terminal cluster jobs.\n# TYPE latteroute_inflight_jobs gauge\nlatteroute_inflight_jobs %d\n", inflight)
	fmt.Fprintf(w, "# HELP latteroute_workers Live workers by state.\n# TYPE latteroute_workers gauge\n")
	alive, draining := 0, 0
	for _, wk := range workers {
		if wk.Draining {
			draining++
		} else {
			alive++
		}
	}
	fmt.Fprintf(w, "latteroute_workers{state=\"alive\"} %d\n", alive)
	fmt.Fprintf(w, "latteroute_workers{state=\"draining\"} %d\n", draining)

	fmt.Fprintf(w, "# HELP latteroute_worker_up Reachability of each registered worker at its last probe.\n# TYPE latteroute_worker_up gauge\n")
	for _, wk := range workers {
		up := 1
		if wk.Failures > 0 {
			up = 0
		}
		fmt.Fprintf(w, "latteroute_worker_up{worker=%q} %d\n", wk.URL, up)
	}

	agg := newAggregate()
	for _, wk := range workers {
		resp, err := rt.client.Get(wk.URL + "/metrics")
		if err != nil {
			continue
		}
		agg.consume(resp.Body)
		resp.Body.Close()
	}
	agg.render(w)
}

// aggregate sums Prometheus text-format scrapes from several workers
// into one fleet-wide series set: series with identical name+labels add
// (valid for counters and histogram buckets alike; gauges become fleet
// totals, e.g. latteccd_queue_depth is the cluster-wide queue depth).
type aggregate struct {
	values map[string]float64 // "name{labels}" -> summed value
	help   map[string]string  // metric name -> first-seen HELP text
	typ    map[string]string  // metric name -> first-seen TYPE
}

func newAggregate() *aggregate {
	return &aggregate{
		values: map[string]float64{},
		help:   map[string]string{},
		typ:    map[string]string{},
	}
}

// consume parses one scrape. Unparseable lines are skipped — a half-
// written scrape from a dying worker must not poison the aggregate.
func (a *aggregate) consume(r io.Reader) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 4 {
				switch fields[1] {
				case "HELP":
					if _, ok := a.help[fields[2]]; !ok {
						a.help[fields[2]] = fields[3]
					}
				case "TYPE":
					if _, ok := a.typ[fields[2]]; !ok {
						a.typ[fields[2]] = fields[3]
					}
				}
			}
			continue
		}
		// A sample line is "name value" or "name{labels} value"; the
		// value is everything after the last space.
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			continue
		}
		series, valText := line[:cut], line[cut+1:]
		v, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			continue
		}
		a.values[series] += v
	}
}

// seriesName strips the label set from a series key.
func seriesName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// render emits the aggregate sorted by series key, with each metric's
// HELP/TYPE header ahead of its first series.
func (a *aggregate) render(w io.Writer) {
	keys := make([]string, 0, len(a.values))
	for k := range a.values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lastName := ""
	for _, k := range keys {
		name := seriesName(k)
		if name != lastName {
			if help, ok := a.help[name]; ok {
				fmt.Fprintf(w, "# HELP %s %s\n", name, help)
			}
			if typ, ok := a.typ[name]; ok {
				fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
			}
			lastName = name
		}
		fmt.Fprintf(w, "%s %s\n", k, strconv.FormatFloat(a.values[k], 'g', -1, 64))
	}
}
