package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeWorker serves just the worker endpoints the registry touches:
// /v1/load with a settable report. It lets registry and policy tests
// exercise the probe path without spinning up a simulator.
type fakeWorker struct {
	ts *httptest.Server

	mu   sync.Mutex
	load loadStatus
}

func newFakeWorker(t *testing.T) *fakeWorker {
	t.Helper()
	f := &fakeWorker{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/load", func(w http.ResponseWriter, _ *http.Request) {
		f.mu.Lock()
		st := f.load
		f.mu.Unlock()
		_ = json.NewEncoder(w).Encode(st)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeWorker) setLoad(st loadStatus) {
	f.mu.Lock()
	f.load = st
	f.mu.Unlock()
}

func (f *fakeWorker) url() string { return f.ts.URL }

// TestLeastLoadedNeverRoutesToDraining is the satellite-5 property: a
// worker that reported draining=true at its last probe receives no new
// placements from the least-loaded policy (nor from affinity or
// round-robin), no matter how idle it looks.
func TestLeastLoadedNeverRoutesToDraining(t *testing.T) {
	busy := newFakeWorker(t)
	busy.setLoad(loadStatus{Queued: 50, Running: 2})
	idle := newFakeWorker(t)
	idle.setLoad(loadStatus{Draining: true}) // idle but leaving

	reg := NewRegistry(3, 0, busy.ts.Client())
	reg.Register(busy.url())
	reg.Register(idle.url())
	reg.ProbeAll(context.Background())

	policies := []Policy{leastLoadedPolicy{}, affinityPolicy{}, &roundRobinPolicy{}}
	for _, pol := range policies {
		for fp := uint64(0); fp < 200; fp++ {
			got, err := pol.Pick(fp, reg, "")
			if err != nil {
				t.Fatalf("%s: pick failed with a routable worker present: %v", pol.Name(), err)
			}
			if got == idle.url() {
				t.Fatalf("%s routed fingerprint %#x to a draining worker", pol.Name(), fp)
			}
		}
	}

	// Once every worker is draining, every policy must refuse rather
	// than violate the drain.
	busy.setLoad(loadStatus{Draining: true})
	reg.ProbeAll(context.Background())
	for _, pol := range policies {
		if got, err := pol.Pick(1, reg, ""); err != ErrNoWorkers {
			t.Fatalf("%s: picked %q from an all-draining fleet (err=%v)", pol.Name(), got, err)
		}
	}
}

// TestLeastLoadedPrefersIdleAndHonoursAssigned: placement follows the
// probe-reported load, and the optimistic assigned counter shifts a
// burst off the previously idlest worker before the next probe.
func TestLeastLoadedPrefersIdleAndHonoursAssigned(t *testing.T) {
	w1 := newFakeWorker(t)
	w1.setLoad(loadStatus{Queued: 9})
	w2 := newFakeWorker(t)
	w2.setLoad(loadStatus{Queued: 0})

	reg := NewRegistry(3, 0, w1.ts.Client())
	reg.Register(w1.url())
	reg.Register(w2.url())
	reg.ProbeAll(context.Background())

	pol := leastLoadedPolicy{}
	for i := 0; i < 9; i++ {
		got, err := pol.Pick(0, reg, "")
		if err != nil {
			t.Fatal(err)
		}
		if got != w2.url() {
			t.Fatalf("placement %d went to the busier worker", i)
		}
		reg.NoteAssigned(got, 1)
	}
	// w2 now carries 9 assigned vs w1's 9 queued; the tie breaks by URL
	// but one more assignment must tip the balance to w1.
	reg.NoteAssigned(w2.url(), 1)
	got, err := pol.Pick(0, reg, "")
	if err != nil {
		t.Fatal(err)
	}
	if got != w1.url() {
		t.Fatalf("assigned count not steering load: still routing to %s", got)
	}

	// A successful probe resets the optimistic count: the report now
	// covers reality.
	reg.ProbeAll(context.Background())
	for _, w := range reg.Snapshot() {
		if w.Assigned != 0 {
			t.Fatalf("probe did not reset assigned for %s: %d", w.URL, w.Assigned)
		}
	}
}

// TestRegistryEviction: deadAfter consecutive failures (probe or
// data-path) evict the worker and count it; a returning worker simply
// re-registers.
func TestRegistryEviction(t *testing.T) {
	reg := NewRegistry(3, 0, http.DefaultClient)
	reg.Register("http://w1")
	reg.Register("http://w2")

	if reg.ReportFailure("http://w1") || reg.ReportFailure("http://w1") {
		t.Fatal("evicted before deadAfter failures")
	}
	if !reg.ReportFailure("http://w1") {
		t.Fatal("third failure did not evict at deadAfter=3")
	}
	if got := reg.Evictions(); got != 1 {
		t.Fatalf("evictions=%d, want 1", got)
	}
	if reg.Routable("http://w1") {
		t.Fatal("evicted worker still routable")
	}
	if _, ok := reg.PickAffinity(7, ""); !ok {
		t.Fatal("survivor not reachable through the ring after eviction")
	}

	// Graceful deregistration is not an eviction.
	reg.Deregister("http://w2")
	if got := reg.Evictions(); got != 1 {
		t.Fatalf("deregister counted as eviction: %d", got)
	}

	// The dead worker comes back: plain re-registration, clean slate.
	if !reg.Register("http://w1") {
		t.Fatal("returning worker not accepted as new")
	}
	if !reg.Routable("http://w1") {
		t.Fatal("re-registered worker not routable")
	}
}

// TestRegistryConcurrentRegisterRouteEvict is the satellite-5 -race
// test: registration, routing picks through every policy, failure
// reporting, probing, and snapshots all interleave freely without a
// data race or a torn ring.
func TestRegistryConcurrentRegisterRouteEvict(t *testing.T) {
	workers := make([]*fakeWorker, 4)
	for i := range workers {
		workers[i] = newFakeWorker(t)
	}
	reg := NewRegistry(2, 16, workers[0].ts.Client())
	// One worker is always present so Pick has a live target throughout.
	anchor := newFakeWorker(t)
	reg.Register(anchor.url())

	var wg sync.WaitGroup
	var stop atomic.Bool
	const loops = 300

	wg.Add(1)
	go func() { // churn: register/deregister/evict the rotating fleet
		defer wg.Done()
		for i := 0; i < loops; i++ {
			w := workers[i%len(workers)]
			reg.Register(w.url())
			switch i % 3 {
			case 0:
				reg.Deregister(w.url())
			case 1:
				reg.Evict(w.url())
			case 2:
				reg.ReportFailure(w.url())
			}
		}
		stop.Store(true)
	}()

	pols := []Policy{affinityPolicy{}, leastLoadedPolicy{}, &roundRobinPolicy{}}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) { // route continuously while the fleet churns
			defer wg.Done()
			pol := pols[g]
			for i := 0; !stop.Load(); i++ {
				url, err := pol.Pick(uint64(i), reg, "")
				if err == nil && url == "" {
					t.Error("policy returned empty url without error")
					return
				}
				reg.NoteAssigned(url, 1)
				reg.NoteAssigned(url, -1)
			}
		}(g)
	}

	wg.Add(1)
	go func() { // observe
		defer wg.Done()
		for !stop.Load() {
			for _, w := range reg.Snapshot() {
				_ = w.Load()
			}
			reg.ProbeAll(context.Background())
		}
	}()

	wg.Wait()

	if _, ok := reg.PickAffinity(1, ""); !ok {
		t.Fatal("anchor worker lost during churn")
	}
}

// TestRoundRobinCycles: consecutive picks rotate through every routable
// worker before repeating.
func TestRoundRobinCycles(t *testing.T) {
	reg := NewRegistry(3, 0, http.DefaultClient)
	urls := []string{"http://a", "http://b", "http://c"}
	for _, u := range urls {
		reg.Register(u)
	}
	pol := &roundRobinPolicy{}
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		got, err := pol.Pick(0, reg, "")
		if err != nil {
			t.Fatal(err)
		}
		seen[got]++
	}
	for _, u := range urls {
		if seen[u] != 2 {
			t.Fatalf("round-robin uneven over 2 full cycles: %v", seen)
		}
	}
}

// TestPolicyExclude: every policy honours the exclude argument — the
// worker a retry is fleeing must not be picked even if it is the only
// ring owner for the fingerprint.
func TestPolicyExclude(t *testing.T) {
	reg := NewRegistry(3, 0, http.DefaultClient)
	reg.Register("http://a")
	reg.Register("http://b")
	for _, pol := range []Policy{affinityPolicy{}, leastLoadedPolicy{}, &roundRobinPolicy{}} {
		for fp := uint64(0); fp < 50; fp++ {
			got, err := pol.Pick(fp, reg, "http://a")
			if err != nil || got != "http://b" {
				t.Fatalf("%s: excluded worker picked (got %q, err %v)", pol.Name(), got, err)
			}
		}
	}
	// Excluding the only worker leaves nothing.
	reg.Deregister("http://b")
	for _, pol := range []Policy{affinityPolicy{}, leastLoadedPolicy{}, &roundRobinPolicy{}} {
		if _, err := pol.Pick(1, reg, "http://a"); err != ErrNoWorkers {
			t.Fatalf("%s: pick with only the excluded worker returned %v", pol.Name(), err)
		}
	}
}

// TestPolicyByName covers the flag surface: every documented name
// resolves, the affinity alias works, junk is rejected.
func TestPolicyByName(t *testing.T) {
	for _, name := range Policies() {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatalf("documented policy %q not constructible: %v", name, err)
		}
		if p.Name() == "" {
			t.Fatalf("policy %q has empty name", name)
		}
	}
	if p, err := PolicyByName("fingerprint-affinity"); err != nil || p.Name() != "fingerprint" {
		t.Fatalf("affinity alias broken: %v", err)
	}
	if _, err := PolicyByName("random"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
