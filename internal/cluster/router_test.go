package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lattecc/internal/harness"
	"lattecc/internal/server"
	"lattecc/internal/sim"
)

func tinyConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.NumSMs = 2
	cfg.MaxInstructions = 40_000
	return cfg
}

// startWorker boots a real latteccd worker (simulator and all) behind
// an httptest frontend.
func startWorker(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	s := server.New(server.Config{
		BaseConfig:      tinyConfig(),
		Workers:         2,
		DefaultDeadline: time.Minute,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("worker shutdown: %v", err)
		}
	})
	return s, ts
}

// startRouter boots a Router behind an httptest frontend with test-fast
// poll/probe cadences unless the caller set its own.
func startRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.BaseConfig.NumSMs == 0 {
		cfg.BaseConfig = tinyConfig()
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 20 * time.Millisecond
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 50 * time.Millisecond
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return rt, ts
}

// registerWorker joins a worker to the router through the public API.
func registerWorker(t *testing.T, routerURL, workerURL string) {
	t.Helper()
	body, _ := json.Marshal(RegisterRequest{URL: workerURL})
	resp, err := http.Post(routerURL+"/v1/workers", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("register %s: status %d: %s", workerURL, resp.StatusCode, msg)
	}
}

// submitCluster posts one submission to the router and requires 202.
func submitCluster(t *testing.T, routerURL string, req server.SubmitRequest) JobView {
	t.Helper()
	resp, body := postCluster(t, routerURL, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("submit response: %v (%s)", err, body)
	}
	return v
}

func postCluster(t *testing.T, routerURL string, req server.SubmitRequest) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(routerURL+"/v1/runs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// waitCluster polls a cluster job to a terminal state.
func waitCluster(t *testing.T, routerURL, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(routerURL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == "done" || v.Status == "failed" {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("cluster job %s did not finish", id)
	return JobView{}
}

// TestClusterStateHashParity is the cluster determinism contract: a
// batch routed through the router to real workers reports exactly the
// StateHash a direct Suite.MustRun computes, and a second submission of
// the same machine config lands on the same worker (fingerprint
// affinity keeps the resident suite hot).
func TestClusterStateHashParity(t *testing.T) {
	_, w1 := startWorker(t)
	_, w2 := startWorker(t)
	_, rts := startRouter(t, Config{Policy: "fingerprint"})
	registerWorker(t, rts.URL, w1.URL)
	registerWorker(t, rts.URL, w2.URL)

	runs := []server.RunSpec{
		{Workload: "BO", Policy: "Uncompressed"},
		{Workload: "SS", Policy: "LATTE-CC"},
		{Workload: "BO", Policy: "LATTE-CC"},
	}
	v := submitCluster(t, rts.URL, server.SubmitRequest{Runs: runs})
	if v.Runs != len(runs) {
		t.Fatalf("accepted %d runs, want %d", v.Runs, len(runs))
	}
	if v.Worker == "" || v.Fingerprint == "" {
		t.Fatalf("placement not reported: %+v", v)
	}
	final := waitCluster(t, rts.URL, v.ID)
	if final.Status != "done" {
		t.Fatalf("cluster job failed: %s", final.Error)
	}
	if len(final.Results) != len(runs) {
		t.Fatalf("%d results, want %d", len(final.Results), len(runs))
	}

	direct := harness.NewSuite(tinyConfig())
	for _, r := range final.Results {
		res := direct.MustRun(r.Workload, harness.Policy(r.Policy), harness.Variant{})
		want := fmt.Sprintf("0x%016x", res.StateHash())
		if r.StateHash != want {
			t.Errorf("%s/%s: cluster hash %s, direct %s", r.Workload, r.Policy, r.StateHash, want)
		}
	}

	// Same machine config -> same fingerprint -> same worker.
	v2 := submitCluster(t, rts.URL, server.SubmitRequest{Runs: runs[:1]})
	if v2.Fingerprint != v.Fingerprint {
		t.Fatalf("fingerprint drifted between identical configs: %s vs %s", v2.Fingerprint, v.Fingerprint)
	}
	if v2.Worker != v.Worker {
		t.Fatalf("affinity broken: same fingerprint placed on %s then %s", v.Worker, v2.Worker)
	}
	if got := waitCluster(t, rts.URL, v2.ID); got.Status != "done" {
		t.Fatalf("second job failed: %s", got.Error)
	}
}

// TestClusterRetryOnWorkerDeath kills a worker that holds a running job
// and requires the router to replay the job on the survivor with a
// bit-identical result — the ISSUE's retry-on-another-node guarantee.
func TestClusterRetryOnWorkerDeath(t *testing.T) {
	_, w1 := startWorker(t)
	_, w2 := startWorker(t)
	rt, rts := startRouter(t, Config{Policy: "round-robin", DeadAfter: 1, RetryLimit: 3})
	registerWorker(t, rts.URL, w1.URL)
	registerWorker(t, rts.URL, w2.URL)

	// A deliberately long run (10x the tiny instruction budget) so the
	// victim worker is guaranteed to still hold it when killed.
	big := uint64(400_000)
	v := submitCluster(t, rts.URL, server.SubmitRequest{
		Workload: "BO",
		Policy:   "LATTE-CC",
		Config:   &server.ConfigOverrides{MaxInstructions: &big},
	})
	if v.Worker == "" {
		t.Fatal("no placement reported")
	}
	victim := v.Worker
	for _, ts := range []*httptest.Server{w1, w2} {
		if ts.URL == victim {
			ts.CloseClientConnections()
			ts.Close()
		}
	}

	// More work arrives while the fleet is degraded; it must route
	// around the corpse.
	after := submitCluster(t, rts.URL, server.SubmitRequest{Runs: []server.RunSpec{
		{Workload: "SS", Policy: "Uncompressed"},
	}})

	final := waitCluster(t, rts.URL, v.ID)
	if final.Status != "done" {
		t.Fatalf("job lost to worker death did not recover: %s", final.Error)
	}
	if final.Retries < 1 {
		t.Fatalf("job completed without a retry despite its worker dying (worker %s)", final.Worker)
	}
	if final.Worker == victim {
		t.Fatalf("job claims to have finished on the dead worker %s", victim)
	}

	bigCfg := tinyConfig()
	bigCfg.MaxInstructions = big
	res := harness.NewSuite(bigCfg).MustRun("BO", harness.LatteCC, harness.Variant{})
	if want := fmt.Sprintf("0x%016x", res.StateHash()); final.Results[0].StateHash != want {
		t.Errorf("retried run hash %s, direct %s — retry changed the answer", final.Results[0].StateHash, want)
	}

	if got := waitCluster(t, rts.URL, after.ID); got.Status != "done" {
		t.Fatalf("post-death submission failed: %s", got.Error)
	}

	// The dead worker must have been evicted from the ring.
	deadline := time.Now().Add(10 * time.Second)
	for rt.Registry().Evictions() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if rt.Registry().Evictions() == 0 {
		t.Fatal("dead worker never evicted")
	}

	// Graceful drain with everything terminal returns promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// --- stub-worker tests: protocol behavior without a simulator ---------

type stubMode int

const (
	stubDone stubMode = iota // jobs complete immediately
	stubHold                 // jobs stay running forever
	stubLose                 // worker "restarted": 404 for every job
)

// stubWorker speaks just enough of the worker wire protocol to exercise
// the router's placement, retry, admission, and metrics paths without a
// simulator behind it.
type stubWorker struct {
	ts *httptest.Server

	mu       sync.Mutex
	mode     stubMode
	accepted int
	metrics  string
}

func newStubWorker(t *testing.T, mode stubMode) *stubWorker {
	t.Helper()
	s := &stubWorker{mode: mode}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.accepted++
		id := fmt.Sprintf("sj-%03d", s.accepted)
		s.mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(server.SubmitResponse{ID: id, Status: "queued", Runs: 1})
	})
	mux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st := server.JobStatus{ID: r.PathValue("id"), Runs: 1}
		switch s.getMode() {
		case stubLose:
			http.Error(w, "no such job", http.StatusNotFound)
			return
		case stubHold:
			st.Status = "running"
		default:
			st.Status = "done"
			st.Results = []server.RunResult{{
				Workload: "BO", Policy: "LATTE-CC", StateHash: "0x00000000deadbeef",
			}}
		}
		_ = json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("GET /v1/runs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprintf(w, "event: done\ndata: {\"id\":%q,\"status\":\"done\"}\n\n", r.PathValue("id"))
	})
	mux.HandleFunc("GET /v1/load", func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode(loadStatus{})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		body := s.metrics
		s.mu.Unlock()
		fmt.Fprint(w, body)
	})
	s.ts = httptest.NewServer(mux)
	t.Cleanup(s.ts.Close)
	return s
}

func (s *stubWorker) getMode() stubMode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mode
}

func (s *stubWorker) setMetrics(body string) {
	s.mu.Lock()
	s.metrics = body
	s.mu.Unlock()
}

// TestRouterRetryOnJobLost: a worker that answers but no longer knows
// the job (it restarted) triggers an immediate re-place on another
// worker, counted in Retries.
func TestRouterRetryOnJobLost(t *testing.T) {
	loser := newStubWorker(t, stubLose)
	runner := newStubWorker(t, stubDone)
	// A slow poll leaves ample time to register the second worker
	// between placement and the first (job-lost) status poll.
	rt, rts := startRouter(t, Config{Policy: "fingerprint", PollInterval: 150 * time.Millisecond})
	registerWorker(t, rts.URL, loser.ts.URL)

	v := submitCluster(t, rts.URL, server.SubmitRequest{Workload: "BO", Policy: "LATTE-CC"})
	if v.Worker != loser.ts.URL {
		t.Fatalf("job placed on %s, want the only worker %s", v.Worker, loser.ts.URL)
	}
	// The second worker joins after placement; the retry must find it.
	registerWorker(t, rts.URL, runner.ts.URL)

	final := waitCluster(t, rts.URL, v.ID)
	if final.Status != "done" {
		t.Fatalf("lost job did not recover: %s", final.Error)
	}
	if final.Retries < 1 || final.Worker != runner.ts.URL {
		t.Fatalf("expected retry onto %s, got worker=%s retries=%d", runner.ts.URL, final.Worker, final.Retries)
	}
	if rt.Inflight() != 0 {
		t.Fatalf("inflight=%d after terminal job", rt.Inflight())
	}
}

// TestRouterAdmissionControl: MaxInFlight overload answers 429 with
// Retry-After, and slots free when jobs finish.
func TestRouterAdmissionControl(t *testing.T) {
	holder := newStubWorker(t, stubHold)
	rt, rts := startRouter(t, Config{Policy: "fingerprint", MaxInFlight: 1})
	registerWorker(t, rts.URL, holder.ts.URL)

	v := submitCluster(t, rts.URL, server.SubmitRequest{Workload: "BO", Policy: "LATTE-CC"})
	resp, body := postCluster(t, rts.URL, server.SubmitRequest{Workload: "BO", Policy: "LATTE-CC"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload answered %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// The held job completes once the worker reports done; the freed
	// slot admits the next submission.
	holder.mu.Lock()
	holder.mode = stubDone
	holder.mu.Unlock()
	if got := waitCluster(t, rts.URL, v.ID); got.Status != "done" {
		t.Fatalf("held job ended %s: %s", got.Status, got.Error)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.Inflight() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	v2 := submitCluster(t, rts.URL, server.SubmitRequest{Workload: "BO", Policy: "LATTE-CC"})
	if got := waitCluster(t, rts.URL, v2.ID); got.Status != "done" {
		t.Fatalf("post-overload job failed: %s", got.Error)
	}
}

// TestRouterDrain: Shutdown completes in-flight work, then rejects new
// submissions with 503 while /healthz stays up and /readyz flips.
func TestRouterDrain(t *testing.T) {
	wkr := newStubWorker(t, stubDone)
	rt, rts := startRouter(t, Config{Policy: "fingerprint"})
	registerWorker(t, rts.URL, wkr.ts.URL)

	v := submitCluster(t, rts.URL, server.SubmitRequest{Workload: "BO", Policy: "LATTE-CC"})
	if got := waitCluster(t, rts.URL, v.ID); got.Status != "done" {
		t.Fatalf("job failed: %s", got.Error)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatalf("drain with no in-flight work: %v", err)
	}

	resp, _ := postCluster(t, rts.URL, server.SubmitRequest{Workload: "BO", Policy: "LATTE-CC"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit into drained router answered %d, want 503", resp.StatusCode)
	}
	if r, err := http.Get(rts.URL + "/readyz"); err != nil || r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %v %d", err, r.StatusCode)
	} else {
		r.Body.Close()
	}
	if r, err := http.Get(rts.URL + "/healthz"); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %v %d", err, r.StatusCode)
	} else {
		r.Body.Close()
	}
	// Terminal job status stays queryable after drain.
	if got := waitCluster(t, rts.URL, v.ID); got.Status != "done" {
		t.Fatal("terminal status lost after drain")
	}
}

// TestRouterRejections: malformed bodies, unknown fields, empty
// submissions, and a workerless fleet are all rejected with the right
// status codes.
func TestRouterRejections(t *testing.T) {
	_, rts := startRouter(t, Config{})

	for _, tc := range []struct {
		name string
		body string
		want int
	}{
		{"garbage", "{nope", http.StatusBadRequest},
		{"unknown field", `{"wrkload":"BO"}`, http.StatusBadRequest},
		{"empty", `{}`, http.StatusBadRequest},
		{"bad override", `{"workload":"BO","policy":"LATTE-CC","config":{"num_sms":-4}}`, http.StatusBadRequest},
		{"no workers", `{"workload":"BO","policy":"LATTE-CC"}`, http.StatusServiceUnavailable},
	} {
		resp, err := http.Post(rts.URL+"/v1/runs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	if resp, err := http.Get(rts.URL + "/v1/runs/cjob-999999"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status: %v %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Worker registration validates URLs.
	for _, bad := range []string{`{"url":"not-a-url"}`, `{"url":"ftp://x"}`, `{"url":""}`} {
		resp, err := http.Post(rts.URL+"/v1/workers", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("register %s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestRouterMetricsAggregation: the router's /metrics carries its own
// counters plus the per-worker scrapes summed by series.
func TestRouterMetricsAggregation(t *testing.T) {
	a := newStubWorker(t, stubDone)
	a.setMetrics("# HELP latteccd_jobs_accepted_total jobs\n# TYPE latteccd_jobs_accepted_total counter\nlatteccd_jobs_accepted_total 2\n")
	b := newStubWorker(t, stubDone)
	b.setMetrics("latteccd_jobs_accepted_total 3\n")
	_, rts := startRouter(t, Config{Policy: "round-robin"})
	registerWorker(t, rts.URL, a.ts.URL)
	registerWorker(t, rts.URL, b.ts.URL)

	v := submitCluster(t, rts.URL, server.SubmitRequest{Workload: "BO", Policy: "LATTE-CC"})
	if got := waitCluster(t, rts.URL, v.ID); got.Status != "done" {
		t.Fatalf("job failed: %s", got.Error)
	}

	resp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)

	for _, want := range []string{
		"latteroute_jobs_routed_total 1",
		"latteroute_jobs_completed_total 1",
		"latteroute_workers_registered_total 2",
		`latteroute_workers{state="alive"} 2`,
		"latteccd_jobs_accepted_total 5", // 2 + 3, summed across workers
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

// TestRouterEventsProxy: the SSE endpoint re-proxies the owning
// worker's stream to the client.
func TestRouterEventsProxy(t *testing.T) {
	wkr := newStubWorker(t, stubDone)
	_, rts := startRouter(t, Config{Policy: "fingerprint"})
	registerWorker(t, rts.URL, wkr.ts.URL)

	v := submitCluster(t, rts.URL, server.SubmitRequest{Workload: "BO", Policy: "LATTE-CC"})
	resp, err := http.Get(rts.URL + "/v1/runs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("events content-type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "event: done") {
		t.Fatalf("proxied stream missing terminal frame:\n%s", body)
	}
}
