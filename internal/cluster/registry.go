package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// WorkerInfo is one worker's externally visible state, as rendered by
// GET /v1/workers and consumed by the routing policies.
type WorkerInfo struct {
	URL      string `json:"url"`
	Draining bool   `json:"draining"`
	Queued   int64  `json:"queued"`
	Running  int64  `json:"running"`
	// Assigned counts jobs this router has routed to the worker since
	// its last successful health probe — the optimistic load signal that
	// spreads a burst before the next probe refreshes Queued/Running.
	Assigned int64 `json:"assigned"`
	// Failures is the count of consecutive failed health probes; the
	// worker is evicted when it reaches the registry's dead-after
	// threshold.
	Failures int `json:"failures"`
}

// Load is the worker's routable load: what it reported at the last
// probe plus what this router has optimistically assigned since.
func (w WorkerInfo) Load() int64 { return w.Queued + w.Running + w.Assigned }

// loadStatus mirrors the worker's GET /v1/load response
// (server.LoadStatus); redeclared here so the registry compiles against
// the wire shape, not the server package internals.
type loadStatus struct {
	Queued   int64 `json:"queued"`
	Running  int64 `json:"running"`
	Draining bool  `json:"draining"`
}

// workerEntry is the registry's mutable record for one live worker.
type workerEntry struct {
	url      string
	queued   int64
	running  int64
	draining bool
	failures int
	assigned int64
}

// Registry tracks the live worker fleet: registration (idempotent, so
// worker heartbeats re-register), health probing against each worker's
// /v1/load endpoint, load bookkeeping for the least-loaded policy, and
// eviction of workers whose probes fail deadAfter times in a row.
// Evicted workers leave the hash ring, so fingerprint-affinity keys
// they owned fall through to their ring successors; if the process
// comes back it simply re-registers.
type Registry struct {
	deadAfter int
	client    *http.Client

	// mu guards the ring and the worker map. Probes run outside the
	// lock (an HTTP round-trip must never block routing) and re-acquire
	// it to apply results.
	mu      sync.Mutex
	workers map[string]*workerEntry
	ring    *Ring

	evictions atomic.Uint64
}

// NewRegistry builds an empty registry. deadAfter is how many
// consecutive probe failures evict a worker (<= 0 selects 3); client is
// used for health probes (nil selects a default with the caller's
// responsibility to set timeouts).
func NewRegistry(deadAfter int, replicas int, client *http.Client) *Registry {
	if deadAfter <= 0 {
		deadAfter = 3
	}
	if client == nil {
		client = http.DefaultClient
	}
	return &Registry{
		deadAfter: deadAfter,
		client:    client,
		workers:   map[string]*workerEntry{},
		ring:      NewRing(replicas),
	}
}

// Register adds a worker by its base URL and reports whether it was
// new. Re-registering a live worker refreshes nothing but is cheap and
// legal — workers heartbeat by re-registering.
func (r *Registry) Register(url string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.workers[url]; ok {
		return false
	}
	r.workers[url] = &workerEntry{url: url}
	r.ring.Add(url)
	return true
}

// Deregister removes a worker gracefully (no eviction counted): the
// worker announced it is going away, typically at the top of its own
// drain. Jobs it still holds will finish there; it just receives no new
// ones.
func (r *Registry) Deregister(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.workers[url]; !ok {
		return
	}
	delete(r.workers, url)
	r.ring.Remove(url)
}

// Evict force-removes a dead worker and counts the eviction.
func (r *Registry) Evict(url string) {
	r.mu.Lock()
	_, ok := r.workers[url]
	if ok {
		delete(r.workers, url)
		r.ring.Remove(url)
	}
	r.mu.Unlock()
	if ok {
		r.evictions.Add(1)
	}
}

// Evictions reports how many workers have been force-removed.
func (r *Registry) Evictions() uint64 { return r.evictions.Load() }

// ReportFailure records one failed interaction with a worker (a status
// poll or job forward that got a connection error, not an HTTP error).
// It shares the probe failure counter, so a worker that is dead to the
// data path is evicted without waiting for deadAfter probe ticks.
// Reports whether the worker was evicted by this call.
func (r *Registry) ReportFailure(url string) bool {
	evict := false
	r.mu.Lock()
	if e, ok := r.workers[url]; ok {
		e.failures++
		evict = e.failures >= r.deadAfter
		if evict {
			delete(r.workers, url)
			r.ring.Remove(url)
		}
	}
	r.mu.Unlock()
	if evict {
		r.evictions.Add(1)
	}
	return evict
}

// NoteAssigned adjusts the optimistic in-flight count for a worker:
// +1 when the router places a job there, -1 when the job leaves it
// (terminal or retried elsewhere). Unknown workers are ignored — the
// job outlived its worker.
func (r *Registry) NoteAssigned(url string, delta int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.workers[url]; ok {
		e.assigned += delta
		if e.assigned < 0 {
			e.assigned = 0
		}
	}
}

// Snapshot returns every live worker sorted by URL.
func (r *Registry) Snapshot() []WorkerInfo {
	r.mu.Lock()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, e := range r.workers {
		out = append(out, WorkerInfo{
			URL:      e.url,
			Draining: e.draining,
			Queued:   e.queued,
			Running:  e.running,
			Assigned: e.assigned,
			Failures: e.failures,
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Routable reports whether url is live and accepting work.
func (r *Registry) Routable(url string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.workers[url]
	return ok && !e.draining
}

// PickAffinity walks the ring from the fingerprint's position and
// returns the first routable worker, skipping exclude (the worker a
// retry is fleeing) and any worker that is draining. ok is false when
// no worker qualifies.
func (r *Registry) PickAffinity(fp uint64, exclude string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, url := range r.ring.Successors(fp) {
		if url == exclude {
			continue
		}
		if e, ok := r.workers[url]; ok && !e.draining {
			return url, true
		}
	}
	return "", false
}

// ProbeAll health-checks every worker once: GET {url}/v1/load with the
// registry's client. A reachable worker has its load and draining state
// refreshed (and its optimistic assigned count reset — the report now
// covers reality); an unreachable one accrues a failure and is evicted
// at deadAfter. The HTTP round-trips run outside the registry lock.
func (r *Registry) ProbeAll(ctx context.Context) {
	r.mu.Lock()
	urls := make([]string, 0, len(r.workers))
	for url := range r.workers {
		urls = append(urls, url)
	}
	r.mu.Unlock()
	sort.Strings(urls)

	for _, url := range urls {
		st, err := r.probe(ctx, url)
		r.mu.Lock()
		e, ok := r.workers[url]
		if !ok {
			r.mu.Unlock()
			continue
		}
		evict := false
		if err != nil {
			e.failures++
			evict = e.failures >= r.deadAfter
			if evict {
				delete(r.workers, url)
				r.ring.Remove(url)
			}
		} else {
			e.failures = 0
			e.queued = st.Queued
			e.running = st.Running
			e.draining = st.Draining
			e.assigned = 0
		}
		r.mu.Unlock()
		if evict {
			r.evictions.Add(1)
		}
	}
}

// probe fetches one worker's load report.
func (r *Registry) probe(ctx context.Context, url string) (loadStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/load", nil)
	if err != nil {
		return loadStatus{}, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return loadStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return loadStatus{}, fmt.Errorf("probe %s: status %d", url, resp.StatusCode)
	}
	var st loadStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return loadStatus{}, err
	}
	return st, nil
}
