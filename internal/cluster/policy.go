package cluster

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrNoWorkers is returned by every policy when no live, non-draining
// worker is available; the router maps it to 503.
var ErrNoWorkers = errors.New("cluster: no routable workers")

// Policy picks the worker for one job placement. fp is the job's
// machine-config fingerprint; exclude names a worker the job must not
// return to (the one a retry is fleeing; empty on first placement).
// Implementations must be safe for concurrent use and must never return
// a draining or excluded worker.
type Policy interface {
	Name() string
	Pick(fp uint64, reg *Registry, exclude string) (string, error)
}

// Policies lists the registered routing policy names, in the order the
// -policy flag documents them.
func Policies() []string {
	return []string{"fingerprint", "least-loaded", "round-robin"}
}

// PolicyByName builds the named policy.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "fingerprint", "fingerprint-affinity":
		return affinityPolicy{}, nil
	case "least-loaded":
		return leastLoadedPolicy{}, nil
	case "round-robin":
		return &roundRobinPolicy{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown routing policy %q (have %v)", name, Policies())
}

// affinityPolicy consistent-hashes the machine-config fingerprint onto
// the worker ring: every job for the same machine config lands on the
// same worker, so that worker's resident Suite (and its single-flight
// result cache) stays hot. On owner death the key falls through to the
// ring successor — and only keys the dead worker owned move.
type affinityPolicy struct{}

func (affinityPolicy) Name() string { return "fingerprint" }

func (affinityPolicy) Pick(fp uint64, reg *Registry, exclude string) (string, error) {
	if url, ok := reg.PickAffinity(fp, exclude); ok {
		return url, nil
	}
	return "", ErrNoWorkers
}

// leastLoadedPolicy routes to the candidate with the fewest queued +
// running + optimistically-assigned jobs, breaking ties by URL so
// placement is deterministic for tests. It never considers draining or
// excluded workers.
type leastLoadedPolicy struct{}

func (leastLoadedPolicy) Name() string { return "least-loaded" }

func (leastLoadedPolicy) Pick(fp uint64, reg *Registry, exclude string) (string, error) {
	best := ""
	var bestLoad int64
	for _, w := range reg.Snapshot() {
		if w.Draining || w.URL == exclude {
			continue
		}
		if best == "" || w.Load() < bestLoad {
			best, bestLoad = w.URL, w.Load()
		}
	}
	if best == "" {
		return "", ErrNoWorkers
	}
	return best, nil
}

// roundRobinPolicy cycles through the routable workers in URL order.
// The counter is global, not per-fingerprint: the point of round-robin
// is spreading a homogeneous stream, not affinity.
type roundRobinPolicy struct {
	next atomic.Uint64
}

func (*roundRobinPolicy) Name() string { return "round-robin" }

func (p *roundRobinPolicy) Pick(fp uint64, reg *Registry, exclude string) (string, error) {
	candidates := make([]string, 0, 8)
	for _, w := range reg.Snapshot() {
		if w.Draining || w.URL == exclude {
			continue
		}
		candidates = append(candidates, w.URL)
	}
	if len(candidates) == 0 {
		return "", ErrNoWorkers
	}
	return candidates[(p.next.Add(1)-1)%uint64(len(candidates))], nil
}
