// Package cluster turns latteccd into a fleet: a stateless router
// (cmd/latteroute) fronts N workers, placing jobs by consistent-hashing
// the machine-config fingerprint so each worker's resident Suite cache
// stays hot, with pluggable routing policies, health-checked worker
// registration, and retry-on-another-node for jobs lost to a worker
// death.
//
// The determinism contract is what makes the cluster trivially correct:
// every worker returns the bit-identical StateHash for the same
// (workload, policy, variant, config), so replicas are perfectly
// substitutable — a retried job cannot change its answer, only its
// latency. The router therefore never coordinates workers; it only
// places, watches, and (on loss) replaces.
//
// The package sits strictly above the determinism boundary: it may read
// clocks and speak HTTP, and lattelint bans any cycle-level package
// from importing it.
package cluster

import (
	"sort"
)

// defaultReplicas is how many virtual points each worker contributes to
// the ring. 64 keeps the expected load imbalance between workers under
// a few percent while Add/Remove stay microsecond-cheap.
const defaultReplicas = 64

// ringPoint is one virtual node: a position on the 64-bit ring owned by
// a worker.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over worker IDs. Keys are machine-
// config fingerprints; Lookup maps a key to the first worker clockwise
// from the key's position, so adding or removing one of N workers moves
// only ~1/N of the key space. Ring is not safe for concurrent use; the
// Registry serialises access under its own lock.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by (hash, node)
	nodes    map[string]bool
}

// NewRing builds an empty ring with the given virtual-node count per
// worker (<= 0 selects the default).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	return &Ring{replicas: replicas, nodes: map[string]bool{}}
}

// Len reports the number of distinct workers on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Has reports whether node is on the ring.
func (r *Ring) Has(node string) bool { return r.nodes[node] }

// Nodes returns the distinct workers on the ring, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Add places node's virtual points on the ring. Adding a node twice is
// a no-op, so re-registration (a worker's heartbeat) is idempotent.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: pointHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes node's virtual points; keys it owned fall through to
// their next clockwise worker, everything else keeps its assignment.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	keep := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			keep = append(keep, p)
		}
	}
	r.points = keep
}

// Lookup maps key to its owning worker: the first point clockwise from
// the key's ring position. ok is false on an empty ring.
func (r *Ring) Lookup(key uint64) (string, bool) {
	succ := r.walk(key, 1)
	if len(succ) == 0 {
		return "", false
	}
	return succ[0], true
}

// Successors returns every distinct worker in ring order starting from
// key's position — the fail-over order for fingerprint-affinity
// routing: index 0 is the owner, index 1 the worker the key falls to if
// the owner is draining or dead, and so on.
func (r *Ring) Successors(key uint64) []string {
	return r.walk(key, len(r.nodes))
}

// walk collects up to max distinct workers clockwise from key.
func (r *Ring) walk(key uint64, max int) []string {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, max)
	seen := make(map[string]bool, max)
	for n := 0; n < len(r.points) && len(out) < max; n++ {
		p := r.points[(start+n)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// FNV-1a, the same construction the invariant hasher uses: stable
// across processes and Go versions, which is what makes assignments
// reproducible in tests and across router restarts.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// pointHash spreads one (worker, replica) virtual node over the ring.
func pointHash(node string, replica int) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= fnvPrime
	}
	h ^= uint64('#')
	h *= fnvPrime
	for s := 0; s < 64; s += 8 {
		h ^= uint64(replica>>s) & 0xff
		h *= fnvPrime
	}
	return h
}

// keyHash re-mixes a fingerprint before the ring search; fingerprints
// are already hashes, but mixing decorrelates them from the point
// distribution.
func keyHash(key uint64) uint64 {
	h := uint64(fnvOffset)
	for s := 0; s < 64; s += 8 {
		h ^= (key >> s) & 0xff
		h *= fnvPrime
	}
	return h
}
