package cluster

import (
	"fmt"
	"testing"
)

// ringKeys synthesises a deterministic population of fingerprint-like
// keys: FNV-mixed so they spread over the ring the way real
// machine-config fingerprints do.
func ringKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = pointHash(fmt.Sprintf("key-%d", i), i)
	}
	return keys
}

func ringWith(nodes ...string) *Ring {
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// TestRingLookupDeterministic pins the core property everything else
// leans on: the same ring maps the same key to the same worker, every
// time, in any build.
func TestRingLookupDeterministic(t *testing.T) {
	a := ringWith("w1", "w2", "w3")
	b := ringWith("w3", "w1", "w2") // insertion order must not matter
	for _, k := range ringKeys(500) {
		na, ok := a.Lookup(k)
		if !ok {
			t.Fatal("lookup failed on non-empty ring")
		}
		nb, _ := b.Lookup(k)
		if na != nb {
			t.Fatalf("key %#x: assignment depends on insertion order (%s vs %s)", k, na, nb)
		}
	}
}

// TestRingJoinMovesFewKeys is the consistent-hashing contract from the
// issue: adding one worker to N steals only ~1/(N+1) of the key space,
// and every moved key moves TO the new worker, never between old ones.
func TestRingJoinMovesFewKeys(t *testing.T) {
	const nKeys = 2000
	keys := ringKeys(nKeys)
	r := ringWith("w1", "w2", "w3", "w4")

	before := make(map[uint64]string, nKeys)
	for _, k := range keys {
		before[k], _ = r.Lookup(k)
	}

	r.Add("w5")
	moved := 0
	for _, k := range keys {
		now, _ := r.Lookup(k)
		if now != before[k] {
			moved++
			if now != "w5" {
				t.Fatalf("key %#x moved between old workers (%s -> %s) on join", k, before[k], now)
			}
		}
	}
	// Expect ~1/5 of keys to move; allow generous slack for hash
	// variance but fail on a rebalance-the-world bug (>40%) or a
	// nothing-moved bug (<5%).
	if lo, hi := nKeys*5/100, nKeys*40/100; moved < lo || moved > hi {
		t.Fatalf("join moved %d/%d keys, want roughly 1/5 (accepted %d..%d)", moved, nKeys, lo, hi)
	}

	// Removing the worker again restores the original assignment
	// exactly: leave is the mirror image of join.
	r.Remove("w5")
	for _, k := range keys {
		if now, _ := r.Lookup(k); now != before[k] {
			t.Fatalf("key %#x did not return to %s after leave (got %s)", k, before[k], now)
		}
	}
}

// TestRingLeaveOnlyMovesOwnedKeys: removing a worker reassigns only the
// keys it owned; everyone else's assignment is untouched.
func TestRingLeaveOnlyMovesOwnedKeys(t *testing.T) {
	keys := ringKeys(2000)
	r := ringWith("w1", "w2", "w3", "w4")
	before := make(map[uint64]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Lookup(k)
	}
	r.Remove("w2")
	for _, k := range keys {
		now, _ := r.Lookup(k)
		if before[k] == "w2" {
			if now == "w2" {
				t.Fatalf("key %#x still assigned to removed worker", k)
			}
		} else if now != before[k] {
			t.Fatalf("key %#x moved (%s -> %s) though its owner stayed", k, before[k], now)
		}
	}
}

// TestRingBalance: 64 virtual nodes per worker keep the load split
// sane — no worker owns more than ~2x its fair share of a large key
// population.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(4000)
	nodes := []string{"w1", "w2", "w3", "w4"}
	r := ringWith(nodes...)
	counts := map[string]int{}
	for _, k := range keys {
		n, _ := r.Lookup(k)
		counts[n]++
	}
	fair := len(keys) / len(nodes)
	for _, n := range nodes {
		if c := counts[n]; c > 2*fair || c < fair/4 {
			t.Errorf("worker %s owns %d keys, fair share %d — virtual nodes not spreading", n, c, fair)
		}
	}
}

// TestRingSuccessorsOrder: Successors starts at the owner and lists
// every distinct worker exactly once — the fail-over order for
// affinity placement.
func TestRingSuccessorsOrder(t *testing.T) {
	r := ringWith("w1", "w2", "w3")
	for _, k := range ringKeys(100) {
		succ := r.Successors(k)
		if len(succ) != 3 {
			t.Fatalf("key %#x: %d successors, want 3", k, len(succ))
		}
		owner, _ := r.Lookup(k)
		if succ[0] != owner {
			t.Fatalf("key %#x: successors[0]=%s, owner=%s", k, succ[0], owner)
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %#x: worker %s listed twice", k, s)
			}
			seen[s] = true
		}
	}
}

// TestRingEdgeCases: empty ring, idempotent add/remove, single node.
func TestRingEdgeCases(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Lookup(42); ok {
		t.Fatal("lookup on empty ring claimed success")
	}
	if s := r.Successors(42); len(s) != 0 {
		t.Fatalf("empty ring has %d successors", len(s))
	}

	r.Add("w1")
	r.Add("w1") // heartbeat re-registration must not duplicate points
	if got := len(r.points); got != defaultReplicas {
		t.Fatalf("double add produced %d points, want %d", got, defaultReplicas)
	}
	if n, ok := r.Lookup(7); !ok || n != "w1" {
		t.Fatalf("single-node ring routed to %q", n)
	}
	r.Remove("nope") // removing an unknown node is a no-op
	if r.Len() != 1 {
		t.Fatalf("ring lost nodes removing a stranger: len=%d", r.Len())
	}
	r.Remove("w1")
	if r.Len() != 0 || len(r.points) != 0 {
		t.Fatalf("ring not empty after removing last node: len=%d points=%d", r.Len(), len(r.points))
	}
}
