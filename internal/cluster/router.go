package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"lattecc/internal/server"
	"lattecc/internal/sim"
)

// Config parameterises a Router.
type Config struct {
	// BaseConfig is the machine the fingerprint of a submission is
	// computed against (the same base the workers were started with —
	// typically sim.DefaultConfig, or the tiny machine in CI). A router
	// whose base differs from its workers' still routes correctly, just
	// with affinity keys that differ from the workers' own fingerprints.
	BaseConfig sim.Config
	// Policy names the routing policy: fingerprint (default),
	// least-loaded, or round-robin.
	Policy string
	// MaxInFlight bounds cluster-wide admission: at most this many
	// non-terminal jobs at once; overflow answers 429 with Retry-After
	// (default 256).
	MaxInFlight int
	// RetryLimit is how many times one job may be re-placed on another
	// worker after losing its current one (default 3). Retries are safe
	// because any replica returns bit-identical results.
	RetryLimit int
	// HealthInterval is the worker probe cadence (default 1s);
	// ProbeTimeout bounds each probe round-trip (default 2s).
	HealthInterval time.Duration
	ProbeTimeout   time.Duration
	// DeadAfter is how many consecutive probe failures evict a worker
	// from the ring (default 3).
	DeadAfter int
	// PollInterval is the per-job status watch cadence (default 150ms).
	PollInterval time.Duration
	// RingReplicas is the virtual-node count per worker (<= 0 default).
	RingReplicas int
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// JobView is a cluster job as rendered to clients. The first five
// fields mirror server.JobStatus field for field, so a client written
// against a single worker (cmd/latteclient) works unchanged against the
// router.
type JobView struct {
	ID      string             `json:"id"`
	Status  string             `json:"status"`
	Error   string             `json:"error,omitempty"`
	Runs    int                `json:"runs"`
	Results []server.RunResult `json:"results,omitempty"`

	Fingerprint string `json:"fingerprint"`
	Worker      string `json:"worker,omitempty"`
	WorkerJob   string `json:"worker_job,omitempty"`
	Retries     int    `json:"retries"`
}

// RegisterRequest is the body of POST /v1/workers: a worker announcing
// its base URL.
type RegisterRequest struct {
	URL string `json:"url"`
}

// RegisterResponse acknowledges a (re-)registration.
type RegisterResponse struct {
	Registered bool `json:"registered"` // false: already known (heartbeat)
	Workers    int  `json:"workers"`
}

// cjob is one admitted cluster job: the original request body (kept so
// the job can be re-submitted verbatim to another worker), its current
// placement, and the latest status observed from the owning worker.
type cjob struct {
	id    string
	body  []byte
	fp    uint64
	fpHex string
	runs  int

	// mu guards the placement and status fields; critical sections are
	// pure field access so watchers and HTTP handlers never contend for
	// long.
	mu sync.Mutex //lint:mutex nocalls
	//lint:guards mu
	worker string
	//lint:guards mu
	workerJob string
	//lint:guards mu
	retries int
	//lint:guards mu
	terminal bool
	//lint:guards mu
	last server.JobStatus
}

func (j *cjob) owner() (worker, workerJob string, terminal bool) {
	j.mu.Lock()
	worker, workerJob, terminal = j.worker, j.workerJob, j.terminal
	j.mu.Unlock()
	return worker, workerJob, terminal
}

func (j *cjob) setOwner(worker, workerJob string) {
	j.mu.Lock()
	j.worker = worker
	j.workerJob = workerJob
	j.mu.Unlock()
}

func (j *cjob) noteRetry() int {
	j.mu.Lock()
	j.retries++
	n := j.retries
	j.mu.Unlock()
	return n
}

func (j *cjob) setSnapshot(st server.JobStatus) {
	j.mu.Lock()
	j.last = st
	j.mu.Unlock()
}

// finish marks the job terminal with its final status. Reports false if
// the job was already terminal (double finalization is a bug shield,
// not an expected path).
func (j *cjob) finish(st server.JobStatus) bool {
	j.mu.Lock()
	if j.terminal {
		j.mu.Unlock()
		return false
	}
	j.terminal = true
	j.last = st
	j.mu.Unlock()
	return true
}

func (j *cjob) view() JobView {
	j.mu.Lock()
	v := JobView{
		ID:          j.id,
		Status:      j.last.Status,
		Error:       j.last.Error,
		Runs:        j.runs,
		Results:     j.last.Results,
		Fingerprint: j.fpHex,
		Worker:      j.worker,
		WorkerJob:   j.workerJob,
		Retries:     j.retries,
	}
	j.mu.Unlock()
	if v.Status == "" {
		v.Status = "queued"
	}
	return v
}

// Router is the stateless front of a latteccd fleet: it holds no
// simulation state and no result cache of its own — only the routing
// table (live workers) and the in-flight job ledger that retry and
// drain need. Create with New, serve Handler(), stop with Shutdown.
type Router struct {
	cfg     Config
	mux     *http.ServeMux
	reg     *Registry
	policy  Policy
	client  *http.Client // forwards, status polls (bounded timeout)
	stream  *http.Client // SSE proxying (no timeout; request-context bound)
	metrics *routerMetrics

	mu sync.Mutex //lint:mutex nocalls
	//lint:guards mu
	jobs map[string]*cjob
	//lint:guards mu
	inflight int

	draining  atomic.Bool
	admit     sync.RWMutex // write-held by Shutdown to fence admission
	nextID    atomic.Uint64
	watcherWg sync.WaitGroup
	healthWg  sync.WaitGroup
	stopCh    chan struct{}
	stopOnce  sync.Once
}

// New builds a Router and starts its health-check loop.
func New(cfg Config) (*Router, error) {
	if cfg.Policy == "" {
		cfg.Policy = "fingerprint"
	}
	pol, err := PolicyByName(cfg.Policy)
	if err != nil {
		return nil, err
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.RetryLimit <= 0 {
		cfg.RetryLimit = 3
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 150 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	client := &http.Client{Timeout: 10 * time.Second}
	rt := &Router{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		reg:     NewRegistry(cfg.DeadAfter, cfg.RingReplicas, &http.Client{Timeout: cfg.ProbeTimeout}),
		policy:  pol,
		client:  client,
		stream:  &http.Client{},
		metrics: &routerMetrics{},
		jobs:    map[string]*cjob{},
		stopCh:  make(chan struct{}),
	}

	rt.mux.HandleFunc("POST /v1/runs", rt.handleSubmit)
	rt.mux.HandleFunc("GET /v1/runs/{id}", rt.handleStatus)
	rt.mux.HandleFunc("GET /v1/runs/{id}/events", rt.handleEvents)
	rt.mux.HandleFunc("POST /v1/workers", rt.handleRegister)
	rt.mux.HandleFunc("DELETE /v1/workers", rt.handleDeregister)
	rt.mux.HandleFunc("GET /v1/workers", rt.handleWorkers)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	rt.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if rt.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})

	rt.healthWg.Add(1)
	go rt.healthLoop()
	return rt, nil
}

// Handler returns the router's HTTP surface.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Registry exposes the worker registry (tests, metrics).
func (rt *Router) Registry() *Registry { return rt.reg }

// healthLoop probes the fleet until the router is closed.
func (rt *Router) healthLoop() {
	defer rt.healthWg.Done()
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stopCh:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
			rt.reg.ProbeAll(ctx)
			cancel()
		}
	}
}

// Shutdown drains the router: new submissions are rejected with 503
// immediately, in-flight jobs run to a terminal state (retrying onto
// surviving workers if theirs die mid-drain), and the health loop stops
// last. Returns an error if ctx expires first.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.admit.Lock()
	rt.draining.Store(true)
	rt.admit.Unlock()

	done := make(chan struct{})
	go func() {
		rt.watcherWg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("cluster: drain incomplete: %w", ctx.Err())
	}
	rt.Close()
	return nil
}

// Close hard-stops the router: watchers and the health loop exit at
// their next poll tick without waiting for jobs to finish. Shutdown
// calls it after a clean drain; tests call it directly.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stopCh) })
	rt.healthWg.Wait()
}

// --- placement --------------------------------------------------------

// errRejected carries a worker's deterministic rejection (HTTP 4xx) of
// a forwarded submission back to the client verbatim: a request one
// worker rejects as malformed is rejected identically by every worker.
type errRejected struct {
	code int
	msg  string
}

func (e *errRejected) Error() string { return e.msg }

// place picks a worker for j (excluding the one a retry is fleeing) and
// forwards the original submission body. Placement failures rotate to
// the next candidate; a 4xx from a worker is final.
func (rt *Router) place(j *cjob, exclude string) error {
	for attempt := 0; attempt < rt.cfg.RetryLimit+1; attempt++ {
		target, err := rt.policy.Pick(j.fp, rt.reg, exclude)
		if err != nil {
			return err
		}
		wid, err := rt.forward(target, j.body)
		if err == nil {
			j.setOwner(target, wid)
			rt.reg.NoteAssigned(target, 1)
			rt.cfg.Logf("cluster: job %s -> %s (%s)", j.id, target, wid)
			return nil
		}
		var rej *errRejected
		if errors.As(err, &rej) && rej.code < http.StatusInternalServerError && rej.code != http.StatusTooManyRequests && rej.code != http.StatusServiceUnavailable {
			return err
		}
		// Connection failure, 429, 503, or 5xx: count it against the
		// worker and rotate to another candidate.
		if !errors.As(err, &rej) {
			rt.reg.ReportFailure(target)
		}
		exclude = target
	}
	return fmt.Errorf("cluster: no worker accepted job %s", j.id)
}

// forward submits j's body to one worker and returns the worker-local
// job ID.
func (rt *Router) forward(workerURL string, body []byte) (string, error) {
	resp, err := rt.client.Post(workerURL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return "", &errRejected{code: resp.StatusCode, msg: string(bytes.TrimSpace(msg))}
	}
	var ack server.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return "", fmt.Errorf("cluster: bad submit ack from %s: %w", workerURL, err)
	}
	return ack.ID, nil
}

// errJobLost marks a worker that is reachable but no longer knows the
// job — it restarted and lost its in-memory state.
var errJobLost = errors.New("cluster: worker lost the job")

// fetchStatus polls one worker-local job.
func (rt *Router) fetchStatus(workerURL, workerJob string) (server.JobStatus, error) {
	resp, err := rt.client.Get(workerURL + "/v1/runs/" + workerJob)
	if err != nil {
		return server.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return server.JobStatus{}, errJobLost
	}
	if resp.StatusCode != http.StatusOK {
		return server.JobStatus{}, fmt.Errorf("cluster: status %d from %s", resp.StatusCode, workerURL)
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return server.JobStatus{}, err
	}
	return st, nil
}

// watch drives one cluster job to a terminal state: poll the owning
// worker, mirror its status, and — when the worker dies or loses the
// job — re-place the job on another worker. Safe because of the
// determinism contract: a re-run returns bit-identical results, so a
// retry can only repeat the answer, never change it.
func (rt *Router) watch(j *cjob) {
	defer rt.watcherWg.Done()
	defer rt.release(j)
	failures := 0
	t := time.NewTicker(rt.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stopCh:
			return
		case <-t.C:
		}
		worker, workerJob, terminal := j.owner()
		if terminal {
			return
		}
		st, err := rt.fetchStatus(worker, workerJob)
		switch {
		case err == nil && (st.Status == "done" || st.Status == "failed"):
			rt.finalize(j, st)
			return
		case err == nil:
			j.setSnapshot(st)
			failures = 0
		case errors.Is(err, errJobLost):
			if !rt.retryElsewhere(j, worker, "worker lost the job") {
				return
			}
			failures = 0
		default:
			failures++
			// Two consecutive data-path failures: give up on this
			// worker for this job (the registry eviction threshold
			// runs in parallel on its own probe counter).
			if failures >= 2 {
				rt.reg.ReportFailure(worker)
				if !rt.retryElsewhere(j, worker, err.Error()) {
					return
				}
				failures = 0
			}
		}
	}
}

// retryElsewhere re-places a lost job on another worker. Returns false
// when the job reached a terminal (failed) state instead — retry budget
// exhausted, or no live workers to retry on.
func (rt *Router) retryElsewhere(j *cjob, deadWorker, cause string) bool {
	rt.reg.NoteAssigned(deadWorker, -1)
	if n := j.noteRetry(); n > rt.cfg.RetryLimit {
		rt.finalize(j, server.JobStatus{
			Status: "failed",
			Error:  fmt.Sprintf("lost worker %d times (last: %s; worker %s)", n, cause, deadWorker),
		})
		return false
	}
	rt.metrics.retries.Add(1)
	rt.cfg.Logf("cluster: job %s lost worker %s (%s); retrying elsewhere", j.id, deadWorker, cause)
	if err := rt.place(j, deadWorker); err != nil {
		rt.finalize(j, server.JobStatus{
			Status: "failed",
			Error:  fmt.Sprintf("retry after losing %s failed: %v", deadWorker, err),
		})
		return false
	}
	return true
}

// finalize caches a job's terminal status and releases its admission
// slot.
func (rt *Router) finalize(j *cjob, st server.JobStatus) {
	if !j.finish(st) {
		return
	}
	if st.Status == "failed" {
		rt.metrics.jobsFailed.Add(1)
	} else {
		rt.metrics.jobsCompleted.Add(1)
	}
}

// release returns j's admission slot and load attribution when its
// watcher exits for any reason (terminal job, or router close).
func (rt *Router) release(j *cjob) {
	worker, _, terminal := j.owner()
	if terminal && worker != "" {
		rt.reg.NoteAssigned(worker, -1)
	}
	rt.mu.Lock()
	rt.inflight--
	rt.mu.Unlock()
}

// --- HTTP handlers ----------------------------------------------------

func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Same admission fence as the worker daemon: Shutdown flips draining
	// under the write half, so no watcher can spawn behind the drain.
	rt.admit.RLock()
	defer rt.admit.RUnlock()
	if rt.draining.Load() {
		rt.metrics.rejectedDraining.Add(1)
		writeJSONError(w, http.StatusServiceUnavailable, "router is draining")
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		rt.metrics.rejectedInvalid.Add(1)
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	// Decode just enough to count runs and compute the affinity
	// fingerprint; full validation (workload/policy names) is the
	// worker's job, and its 4xx answers are relayed verbatim.
	var req server.SubmitRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		rt.metrics.rejectedInvalid.Add(1)
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	runs := len(req.Runs)
	if req.Workload != "" || req.Policy != "" {
		runs = 1
	}
	if runs == 0 {
		rt.metrics.rejectedInvalid.Add(1)
		writeJSONError(w, http.StatusBadRequest, "no runs submitted")
		return
	}
	cfg, err := req.Config.Apply(rt.cfg.BaseConfig)
	if err != nil {
		rt.metrics.rejectedInvalid.Add(1)
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	fp := server.FingerprintConfig(cfg)

	rt.mu.Lock()
	full := rt.inflight >= rt.cfg.MaxInFlight
	if !full {
		rt.inflight++
	}
	rt.mu.Unlock()
	if full {
		rt.metrics.rejectedFull.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, http.StatusTooManyRequests, "cluster at max in-flight jobs")
		return
	}

	j := &cjob{
		id:    fmt.Sprintf("cjob-%06d", rt.nextID.Add(1)),
		body:  body,
		fp:    fp,
		fpHex: fmt.Sprintf("0x%016x", fp),
		runs:  runs,
	}
	if err := rt.place(j, ""); err != nil {
		rt.mu.Lock()
		rt.inflight--
		rt.mu.Unlock()
		var rej *errRejected
		switch {
		case errors.As(err, &rej):
			rt.metrics.rejectedInvalid.Add(1)
			writeJSONError(w, rej.code, rej.msg)
		case errors.Is(err, ErrNoWorkers):
			rt.metrics.rejectedNoWorkers.Add(1)
			writeJSONError(w, http.StatusServiceUnavailable, "no routable workers")
		default:
			rt.metrics.rejectedNoWorkers.Add(1)
			writeJSONError(w, http.StatusServiceUnavailable, err.Error())
		}
		return
	}

	rt.mu.Lock()
	rt.jobs[j.id] = j
	rt.mu.Unlock()
	rt.watcherWg.Add(1)
	go rt.watch(j)

	rt.metrics.jobsRouted.Add(1)
	worker, _, _ := j.owner()
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, JobView{
		ID:          j.id,
		Status:      "queued",
		Runs:        runs,
		Fingerprint: j.fpHex,
		Worker:      worker,
	})
}

func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := rt.jobByID(r.PathValue("id"))
	if j == nil {
		writeJSONError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, j.view())
}

// handleEvents proxies the owning worker's SSE stream. If the worker
// dies mid-stream the proxy re-attaches to the job's new owner, whose
// replay starts from the beginning — frames are therefore delivered
// at-least-once across a retry, never lost. If the job is already
// terminal and its worker gone, a single synthetic terminal frame is
// emitted from the router's cached result.
func (rt *Router) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := rt.jobByID(r.PathValue("id"))
	if j == nil {
		writeJSONError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSONError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		worker, workerJob, terminal := j.owner()
		if err := rt.proxyStream(r.Context(), w, fl, worker, workerJob); err == nil {
			return // worker stream completed: the job is terminal there
		}
		if r.Context().Err() != nil {
			return
		}
		if terminal {
			v := j.view()
			data, _ := json.Marshal(v)
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", v.Status, data)
			fl.Flush()
			return
		}
		// Mid-retry: wait a tick for the new placement, then re-attach.
		select {
		case <-r.Context().Done():
			return
		case <-rt.stopCh:
			return
		case <-time.After(rt.cfg.PollInterval):
		}
	}
}

// proxyStream copies one worker's SSE byte stream to the client,
// flushing as frames arrive. A nil return means the worker closed the
// stream cleanly (its job reached a terminal state).
func (rt *Router) proxyStream(ctx context.Context, w io.Writer, fl http.Flusher, workerURL, workerJob string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, workerURL+"/v1/runs/"+workerJob+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := rt.stream.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: events status %d from %s", resp.StatusCode, workerURL)
	}
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return nil // client went away; treat as complete
			}
			fl.Flush()
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}

func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad register body: %v", err))
		return
	}
	u, err := url.Parse(req.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("worker url must be absolute http(s), got %q", req.URL))
		return
	}
	workerURL := u.Scheme + "://" + u.Host
	if isNew := rt.reg.Register(workerURL); isNew {
		rt.metrics.workersRegistered.Add(1)
		rt.cfg.Logf("cluster: worker %s joined (%d live)", workerURL, len(rt.reg.Snapshot()))
	}
	writeJSON(w, RegisterResponse{Registered: true, Workers: len(rt.reg.Snapshot())})
}

func (rt *Router) handleDeregister(w http.ResponseWriter, r *http.Request) {
	workerURL := r.URL.Query().Get("url")
	if workerURL == "" {
		writeJSONError(w, http.StatusBadRequest, "missing url query parameter")
		return
	}
	rt.reg.Deregister(workerURL)
	rt.cfg.Logf("cluster: worker %s left (%d live)", workerURL, len(rt.reg.Snapshot()))
	writeJSON(w, RegisterResponse{Registered: false, Workers: len(rt.reg.Snapshot())})
}

func (rt *Router) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"policy":  rt.policy.Name(),
		"workers": rt.reg.Snapshot(),
	})
}

func (rt *Router) jobByID(id string) *cjob {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.jobs[id]
}

// Inflight reports the number of non-terminal cluster jobs (tests).
func (rt *Router) Inflight() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.inflight
}

func writeJSON(w http.ResponseWriter, v any) {
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
