package sim

import (
	"runtime"
	"sync"
)

// smPool runs the parallel phase (tickCompute) of each cycle epoch
// across a set of persistent worker goroutines. Workers are started once
// per Run and signalled per epoch over channels — not spawned per cycle —
// so the steady-state cost of an epoch is two channel operations per
// worker. SMs are partitioned statically round-robin; partition 0 is
// executed by the coordinator (the goroutine calling epoch) so a pool of
// k workers uses k-1 extra goroutines.
//
// Determinism: workers only touch SM-private state (see sm), so the
// epoch result is independent of scheduling. A panic inside a worker is
// trapped and re-raised on the coordinator; when several partitions
// panic in the same epoch, the one from the lowest SM id wins, so even
// failures are bit-reproducible across worker counts.
type smPool struct {
	parts [][]*sm       // parts[0] runs on the coordinator
	start []chan uint64 // start[i] wakes worker i (i >= 1); closed to stop
	done  chan struct{} // one token per finished worker epoch
	wg    sync.WaitGroup

	mu sync.Mutex //lint:mutex nocalls
	//lint:guards mu
	trap *smPanic
}

// smPanic is one trapped worker panic.
type smPanic struct {
	smID int
	val  interface{}
}

// newSMPool partitions sms round-robin across jobs workers and starts
// the jobs-1 non-coordinator goroutines.
func newSMPool(sms []*sm, jobs int) *smPool {
	p := &smPool{
		parts: make([][]*sm, jobs),
		start: make([]chan uint64, jobs),
		done:  make(chan struct{}, jobs),
	}
	for i, m := range sms {
		w := i % jobs
		p.parts[w] = append(p.parts[w], m)
	}
	for w := 1; w < jobs; w++ {
		p.start[w] = make(chan uint64, 1)
		p.wg.Add(1)
		go func(w int) {
			defer p.wg.Done()
			for now := range p.start[w] {
				p.runPart(w, now)
				p.done <- struct{}{}
			}
		}(w)
	}
	return p
}

// runPart ticks one partition, trapping any panic for deterministic
// re-raise at the barrier.
func (p *smPool) runPart(w int, now uint64) {
	var cur *sm
	defer func() {
		if r := recover(); r != nil {
			id := 0
			if cur != nil {
				id = cur.id
			}
			p.record(id, r)
		}
	}()
	for _, m := range p.parts[w] {
		cur = m
		m.tickCompute(now)
	}
}

// record publishes a trapped panic; the lowest SM id wins ties between
// partitions so the surfaced failure is worker-count-invariant.
func (p *smPool) record(smID int, val interface{}) {
	p.mu.Lock()
	if p.trap == nil || smID < p.trap.smID {
		p.trap = &smPanic{smID: smID, val: val}
	}
	p.mu.Unlock()
}

// epoch runs phase A of one cycle: every SM's tickCompute, in parallel,
// with a full barrier before returning. If any SM panicked, the panic is
// re-raised here — on the coordinator — so callers (and the harness's
// recover wrapper) see the same control flow as in serial mode.
func (p *smPool) epoch(now uint64) {
	for w := 1; w < len(p.parts); w++ {
		p.start[w] <- now
	}
	p.runPart(0, now)
	for w := 1; w < len(p.parts); w++ {
		<-p.done
	}
	p.mu.Lock()
	trap := p.trap
	p.trap = nil
	p.mu.Unlock()
	if trap != nil {
		//lint:allow panic-audit re-raising a trapped SM panic on the coordinator preserves the serial failure contract
		panic(trap.val)
	}
}

// close stops and joins the workers. Safe to call exactly once.
func (p *smPool) close() {
	for w := 1; w < len(p.parts); w++ {
		close(p.start[w])
	}
	p.wg.Wait()
}

// effectiveSMJobs resolves Config.SMJobs to the worker count actually
// used: never more workers than SMs, never more than GOMAXPROCS (extra
// workers would only add barrier latency), and at least 1.
func (c *Config) effectiveSMJobs() int {
	jobs := c.SMJobs
	if jobs > c.NumSMs {
		jobs = c.NumSMs
	}
	if n := runtime.GOMAXPROCS(0); jobs > n {
		jobs = n
	}
	if jobs < 1 {
		jobs = 1
	}
	return jobs
}
