package sim

import (
	"testing"

	"lattecc/internal/workload"
)

// TestScenarioWorkloadsSMJobsParity extends the epoch-engine parity
// contract to the scenario-diversity workload classes: a multi-kernel
// sequence (MKS), a concurrent-kernel Mix (MKM), and an adversarial
// mid-phase compressibility flip (AVF). Each must hash identically for
// any SM worker count under the full adaptive controller — the flip and
// Mix paths feed the per-SM pipelines differently from the flat suite,
// so they get their own parity pin.
func TestScenarioWorkloadsSMJobsParity(t *testing.T) {
	withRealParallelism(t, 4)
	for _, build := range []func() *workload.Spec{workload.MKS, workload.MKM, workload.AVF} {
		spec := build()
		t.Run(spec.Name(), func(t *testing.T) {
			cfg := smallConfig()
			cfg.NumSMs = 4
			cfg.MaxInstructions = 60_000
			hashes := map[int]uint64{}
			for _, jobs := range []int{1, 2, cfg.NumSMs} {
				c := cfg
				c.SMJobs = jobs
				res := New(c, spec, latteFactory).Run()
				if res.Instructions == 0 {
					t.Fatalf("jobs=%d: empty run", jobs)
				}
				hashes[jobs] = res.StateHash()
			}
			for _, jobs := range []int{2, cfg.NumSMs} {
				if hashes[jobs] != hashes[1] {
					t.Errorf("StateHash(SMJobs=%d)=%#x != StateHash(SMJobs=1)=%#x",
						jobs, hashes[jobs], hashes[1])
				}
			}
		})
	}
}
