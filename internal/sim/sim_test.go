package sim

import (
	"encoding/binary"
	"reflect"
	"testing"

	"lattecc/internal/core"
	"lattecc/internal/modes"
	"lattecc/internal/policy"
	"lattecc/internal/trace"
)

// testData backs lines with BDI-friendly stride data.
type testData struct{}

func (testData) Line(lineAddr uint64) []byte {
	b := make([]byte, 128)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(lineAddr)<<8|uint32(i))
	}
	return b
}

// loopProgram issues `iters` rounds of one coalesced load over a working
// set of `wsLines` lines followed by `alu` ALU ops.
type loopProgram struct {
	iters, alu, wsLines int
	base                uint64
	i, j                int
	phase               int
}

func (p *loopProgram) Next() (trace.Inst, bool) {
	if p.i >= p.iters {
		return trace.Inst{}, false
	}
	if p.phase == 0 {
		p.phase = 1
		p.j = 0
		line := p.base + uint64(p.i%p.wsLines)
		return trace.Inst{Op: trace.OpLoad, Addrs: []uint64{line * 128}}, true
	}
	p.j++
	if p.j >= p.alu {
		p.phase = 0
		p.i++
	}
	return trace.Inst{Op: trace.OpALU, Lat: 1}, true
}

// testWorkload is a single-kernel workload with configurable parallelism.
type testWorkload struct {
	name    string
	blocks  int
	warps   int
	iters   int
	alu     int
	wsLines int
	spread  uint64 // address spread between warps (lines)
}

func (w testWorkload) Name() string             { return w.name }
func (w testWorkload) Category() trace.Category { return trace.CSens }
func (w testWorkload) Data() trace.DataSource   { return testData{} }
func (w testWorkload) Kernels() []trace.Kernel {
	return []trace.Kernel{{
		Name:          w.name + "-k0",
		Blocks:        w.blocks,
		WarpsPerBlock: w.warps,
		Program: func(block, warp int) trace.Program {
			base := uint64(block*w.warps+warp) * w.spread
			return &loopProgram{iters: w.iters, alu: w.alu, wsLines: w.wsLines, base: base}
		},
	}}
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumSMs = 2
	cfg.MaxInstructions = 5_000_000
	cfg.MaxCycles = 5_000_000
	return cfg
}

func baselineFactory(numSets int) modes.Controller {
	return policy.NewStatic(modes.None, "Uncompressed", 256, 10)
}

func bdiFactory(numSets int) modes.Controller {
	return policy.NewStatic(modes.LowLat, "Static-BDI", 256, 10)
}

func latteFactory(numSets int) modes.Controller {
	return core.New(core.DefaultConfig(numSets))
}

func run(t *testing.T, cfg Config, w trace.Workload, f ControllerFactory) Result {
	t.Helper()
	return New(cfg, w, f).Run()
}

func TestRunCompletes(t *testing.T) {
	w := testWorkload{name: "tiny", blocks: 4, warps: 2, iters: 50, alu: 3, wsLines: 8, spread: 64}
	res := run(t, smallConfig(), w, baselineFactory)
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	// 4 blocks * 2 warps * 50 iters * (1 load + 3 alu) = 1600 instructions.
	if res.Instructions != 1600 {
		t.Fatalf("instructions = %d, want 1600", res.Instructions)
	}
	if len(res.Kernels) != 1 || res.Kernels[0].Cycles == 0 {
		t.Fatalf("kernel results: %+v", res.Kernels)
	}
}

func TestDeterminism(t *testing.T) {
	w := testWorkload{name: "det", blocks: 6, warps: 4, iters: 80, alu: 2, wsLines: 64, spread: 16}
	r1 := run(t, smallConfig(), w, latteFactory)
	r2 := run(t, smallConfig(), w, latteFactory)
	r1.ToleranceSeries, r2.ToleranceSeries = nil, nil
	r1.CapacitySeries, r2.CapacitySeries = nil, nil
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("non-deterministic simulation:\n%+v\nvs\n%+v", r1, r2)
	}
}

func TestWarpParallelismHidesMemoryLatency(t *testing.T) {
	// Same per-warp program; 1 warp vs 16 warps per block. With latency
	// hiding, 16 warps must achieve much higher IPC.
	mk := func(warps int) Result {
		w := testWorkload{name: "lat", blocks: 2, warps: warps, iters: 100,
			alu: 4, wsLines: 512, spread: 4096} // streaming: mostly misses
		return run(t, smallConfig(), w, baselineFactory)
	}
	one := mk(1)
	many := mk(16)
	if many.IPC() < 4*one.IPC() {
		t.Fatalf("16 warps should hide latency: IPC %0.3f vs %0.3f", many.IPC(), one.IPC())
	}
}

func TestHitLatencyToleranceDependsOnWarpCount(t *testing.T) {
	// The Figure 1 mechanism: added hit latency hurts a low-parallelism
	// workload much more than a high-parallelism one.
	mk := func(warps int, extra uint64) Result {
		cfg := smallConfig()
		cfg.Cache.ExtraHitLatency = extra
		// Tiny per-warp working set (all hits after warmup), enough
		// iterations that steady state dominates the cold misses.
		w := testWorkload{name: "sweep", blocks: 2, warps: warps, iters: 2000,
			alu: 1, wsLines: 4, spread: 4}
		return run(t, cfg, w, baselineFactory)
	}
	slowdown := func(warps int) float64 {
		base := mk(warps, 0)
		slow := mk(warps, 9)
		return base.IPC() / slow.IPC()
	}
	sd1 := slowdown(1)
	sd24 := slowdown(24)
	if sd1 < 2 {
		t.Fatalf("single warp must suffer from +9 hit latency, slowdown %.2f", sd1)
	}
	if sd24-1 > (sd1-1)/3 {
		t.Fatalf("24 warps should hide most of the hit latency: %.2f vs %.2f", sd24, sd1)
	}
}

func TestCompressionReducesMissesWhenSetOverflows(t *testing.T) {
	// Working set of 2x L1 capacity with highly compressible lines: the
	// compressed cache holds it, the baseline thrashes.
	cfg := smallConfig()
	cfg.NumSMs = 1
	lines := 2 * cfg.Cache.SizeBytes / cfg.Cache.LineSize
	w := testWorkload{name: "cap", blocks: 1, warps: 4, iters: 2000,
		alu: 1, wsLines: lines / 4, spread: uint64(lines / 4)}
	base := run(t, cfg, w, baselineFactory)
	bdi := run(t, cfg, w, bdiFactory)
	if bdi.Cache.Misses >= base.Cache.Misses {
		t.Fatalf("BDI should reduce misses: %d vs baseline %d", bdi.Cache.Misses, base.Cache.Misses)
	}
	if bdi.Cache.Misses > base.Cache.Misses*3/4 {
		t.Fatalf("expected a substantial miss reduction, got %d vs %d", bdi.Cache.Misses, base.Cache.Misses)
	}
}

func TestInstructionBudgetStopsRun(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxInstructions = 500
	w := testWorkload{name: "budget", blocks: 8, warps: 8, iters: 10000, alu: 8, wsLines: 4, spread: 4}
	res := run(t, cfg, w, baselineFactory)
	if res.Instructions < 500 || res.Instructions > 600 {
		t.Fatalf("instructions = %d, want ~500 (budget)", res.Instructions)
	}
}

func TestMultiKernelSequencing(t *testing.T) {
	w := multiKernelWorkload{}
	res := run(t, smallConfig(), w, baselineFactory)
	if len(res.Kernels) != 2 {
		t.Fatalf("want 2 kernel results, got %d", len(res.Kernels))
	}
	if res.Kernels[0].Name != "k0" || res.Kernels[1].Name != "k1" {
		t.Fatalf("kernel names: %+v", res.Kernels)
	}
	if res.Kernels[1].Start < res.Kernels[0].Cycles {
		t.Fatal("kernels must execute sequentially")
	}
}

type multiKernelWorkload struct{}

func (multiKernelWorkload) Name() string             { return "mk" }
func (multiKernelWorkload) Category() trace.Category { return trace.CInSens }
func (multiKernelWorkload) Data() trace.DataSource   { return testData{} }
func (multiKernelWorkload) Kernels() []trace.Kernel {
	prog := func(block, warp int) trace.Program {
		return &loopProgram{iters: 20, alu: 2, wsLines: 4, base: uint64(warp) * 8}
	}
	return []trace.Kernel{
		{Name: "k0", Blocks: 2, WarpsPerBlock: 2, Program: prog},
		{Name: "k1", Blocks: 2, WarpsPerBlock: 2, Program: prog},
	}
}

func TestLatteControllerRunsEndToEnd(t *testing.T) {
	cfg := smallConfig()
	cfg.SampleEvery = 256
	w := testWorkload{name: "latte", blocks: 8, warps: 8, iters: 500, alu: 2, wsLines: 96, spread: 96}
	res := run(t, cfg, w, latteFactory)
	if res.Policy != "LATTE-CC" {
		t.Fatalf("policy = %q", res.Policy)
	}
	var eps uint64
	for _, n := range res.ModeEPs {
		eps += n
	}
	if eps == 0 {
		t.Fatal("LATTE-CC should have decided at least one EP")
	}
	if res.ToleranceSeries == nil || res.ToleranceSeries.Len() == 0 {
		t.Fatal("tolerance series must be sampled")
	}
	if res.CapacitySeries == nil || res.CapacitySeries.Len() == 0 {
		t.Fatal("capacity series must be sampled")
	}
}

func TestDivergentLoadConsumesLSUBandwidth(t *testing.T) {
	// A fully divergent load (32 lines) must take far longer than a
	// coalesced one even when all accesses hit.
	mk := func(divergent bool) Result {
		cfg := smallConfig()
		cfg.NumSMs = 1
		w := divergedWorkload{divergent: divergent}
		return run(t, cfg, w, baselineFactory)
	}
	co := mk(false)
	div := mk(true)
	if div.Cycles < 5*co.Cycles/2 {
		t.Fatalf("divergent loads should serialize through the LSU: %d vs %d cycles", div.Cycles, co.Cycles)
	}
	if div.LoadTxns <= co.LoadTxns {
		t.Fatal("divergent run must produce more transactions")
	}
}

type divergedWorkload struct{ divergent bool }

func (d divergedWorkload) Name() string             { return "div" }
func (d divergedWorkload) Category() trace.Category { return trace.CSens }
func (d divergedWorkload) Data() trace.DataSource   { return testData{} }
func (d divergedWorkload) Kernels() []trace.Kernel {
	return []trace.Kernel{{
		Name: "k", Blocks: 1, WarpsPerBlock: 1,
		Program: func(block, warp int) trace.Program {
			i := 0
			return trace.FuncProgram(func() (trace.Inst, bool) {
				if i >= 3000 {
					return trace.Inst{}, false
				}
				i++
				if d.divergent {
					addrs := make([]uint64, 32)
					for j := range addrs {
						addrs[j] = uint64(j%16) * 128 // 16-line hot set, divergent
					}
					return trace.Inst{Op: trace.OpLoad, Addrs: addrs}, true
				}
				return trace.Inst{Op: trace.OpLoad, Addrs: []uint64{uint64(i%16) * 128}}, true
			})
		},
	}}
}

func TestStoresDoNotBlockWarps(t *testing.T) {
	cfg := smallConfig()
	cfg.NumSMs = 1
	res := run(t, cfg, storeWorkload{}, baselineFactory)
	// 200 stores + 200 ALU from one warp: with non-blocking stores this
	// finishes in roughly 400-500 cycles, nowhere near 200 * DRAM latency.
	if res.Cycles > 5000 {
		t.Fatalf("stores appear to block: %d cycles", res.Cycles)
	}
	if res.StoreTxns != 200 {
		t.Fatalf("store txns = %d, want 200", res.StoreTxns)
	}
}

type storeWorkload struct{}

func (storeWorkload) Name() string             { return "st" }
func (storeWorkload) Category() trace.Category { return trace.CInSens }
func (storeWorkload) Data() trace.DataSource   { return testData{} }
func (storeWorkload) Kernels() []trace.Kernel {
	return []trace.Kernel{{
		Name: "k", Blocks: 1, WarpsPerBlock: 1,
		Program: func(block, warp int) trace.Program {
			i := 0
			return trace.FuncProgram(func() (trace.Inst, bool) {
				if i >= 400 {
					return trace.Inst{}, false
				}
				i++
				if i%2 == 0 {
					return trace.Inst{Op: trace.OpStore, Addrs: []uint64{uint64(i) * 128}}, true
				}
				return trace.Inst{Op: trace.OpALU, Lat: 1}, true
			})
		},
	}}
}

func TestOccupancyLimits(t *testing.T) {
	// 100 blocks of 8 warps on 2 SMs with 8-block/48-warp limits: at most
	// 6 blocks fit per SM at a time (48/8); the run must still complete.
	w := testWorkload{name: "occ", blocks: 100, warps: 8, iters: 10, alu: 2, wsLines: 4, spread: 8}
	res := run(t, smallConfig(), w, baselineFactory)
	want := uint64(100 * 8 * 10 * 3) // iters * (1 load + 2 ALU)
	if res.Instructions != want {
		t.Fatalf("instructions = %d, want %d (all blocks must run)", res.Instructions, want)
	}
}

func TestConfigValidatePanics(t *testing.T) {
	cfg := smallConfig()
	cfg.ToleranceWindow = 0
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(cfg, testWorkload{name: "x", blocks: 1, warps: 1, iters: 1, alu: 1, wsLines: 1, spread: 1}, baselineFactory)
}

func TestRoundRobinScheduler(t *testing.T) {
	// RR must still complete work correctly, and with all warps ready it
	// switches every issue (run length 1), unlike GTO's greedy runs.
	mk := func(kind SchedulerKind) Result {
		cfg := smallConfig()
		cfg.Scheduler = kind
		w := testWorkload{name: "rr", blocks: 2, warps: 8, iters: 300, alu: 4, wsLines: 4, spread: 4}
		return run(t, cfg, w, baselineFactory)
	}
	gto := mk(SchedGTO)
	rr := mk(SchedRR)
	if gto.Instructions != rr.Instructions {
		t.Fatalf("instruction counts differ: %d vs %d", gto.Instructions, rr.Instructions)
	}
	if rr.Cycles == 0 || gto.Cycles == 0 {
		t.Fatal("empty runs")
	}
	// Both schedulers must be deterministic.
	rr2 := mk(SchedRR)
	if rr.Cycles != rr2.Cycles {
		t.Fatal("RR scheduling not deterministic")
	}
}

type barrierWorkload struct{ withBarrier bool }

func (b barrierWorkload) Name() string             { return "bar" }
func (b barrierWorkload) Category() trace.Category { return trace.CInSens }
func (b barrierWorkload) Data() trace.DataSource   { return testData{} }
func (b barrierWorkload) Kernels() []trace.Kernel {
	return []trace.Kernel{{
		Name: "k", Blocks: 1, WarpsPerBlock: 2,
		Program: func(block, warp int) trace.Program {
			var insts []trace.Inst
			// Warp 0 is slow (long ALU chain), warp 1 is fast.
			n := 10
			if warp == 0 {
				n = 500
			}
			for i := 0; i < n; i++ {
				insts = append(insts, trace.Inst{Op: trace.OpALU, Lat: 1})
			}
			if b.withBarrier {
				insts = append(insts, trace.Inst{Op: trace.OpBarrier})
			}
			// Post-barrier work.
			for i := 0; i < 50; i++ {
				insts = append(insts, trace.Inst{Op: trace.OpALU, Lat: 1})
			}
			return trace.NewSliceProgram(insts)
		},
	}}
}

func TestBarrierSynchronizesBlock(t *testing.T) {
	cfg := smallConfig()
	cfg.NumSMs = 1
	with := run(t, cfg, barrierWorkload{withBarrier: true}, baselineFactory)
	without := run(t, cfg, barrierWorkload{withBarrier: false}, baselineFactory)
	// With the barrier, the fast warp's tail work cannot overlap the slow
	// warp's long chain, so the run is longer.
	if with.Cycles <= without.Cycles {
		t.Fatalf("barrier run %d cycles, free run %d — barrier must serialize",
			with.Cycles, without.Cycles)
	}
	if with.Instructions != without.Instructions+2 {
		t.Fatalf("instruction counts: %d vs %d (+2 barriers)", with.Instructions, without.Instructions)
	}
}

func TestBarrierWithRetiredSibling(t *testing.T) {
	// One warp exits before the barrier; the other must not deadlock.
	w := &divergentExitWorkload{}
	res := run(t, smallConfig(), w, baselineFactory)
	if res.Cycles == 0 {
		t.Fatal("deadlock")
	}
}

type divergentExitWorkload struct{}

func (divergentExitWorkload) Name() string             { return "dx" }
func (divergentExitWorkload) Category() trace.Category { return trace.CInSens }
func (divergentExitWorkload) Data() trace.DataSource   { return testData{} }
func (divergentExitWorkload) Kernels() []trace.Kernel {
	return []trace.Kernel{{
		Name: "k", Blocks: 1, WarpsPerBlock: 2,
		Program: func(block, warp int) trace.Program {
			if warp == 0 {
				// Exits without reaching the barrier.
				return trace.NewSliceProgram([]trace.Inst{{Op: trace.OpALU, Lat: 1}})
			}
			return trace.NewSliceProgram([]trace.Inst{
				{Op: trace.OpALU, Lat: 100},
				{Op: trace.OpBarrier},
				{Op: trace.OpALU, Lat: 1},
			})
		},
	}}
}

func TestTinyStructuralResources(t *testing.T) {
	// MSHRs=1 and L1Ports=1 exercise every structural-stall path; the
	// run must still complete with the right instruction count.
	cfg := smallConfig()
	cfg.MSHRs = 1
	cfg.L1Ports = 1
	w := testWorkload{name: "tiny-res", blocks: 4, warps: 8, iters: 150, alu: 1, wsLines: 64, spread: 64}
	res := run(t, cfg, w, baselineFactory)
	want := uint64(4 * 8 * 150 * 2)
	if res.Instructions != want {
		t.Fatalf("instructions = %d, want %d", res.Instructions, want)
	}
	if res.MSHRStallCycles == 0 {
		t.Fatal("a single MSHR must cause structural stalls on this workload")
	}
	// Generous config must be faster.
	fast := run(t, smallConfig(), w, baselineFactory)
	if fast.Cycles >= res.Cycles {
		t.Fatalf("more MSHRs/ports must help: %d vs %d cycles", fast.Cycles, res.Cycles)
	}
}

func TestToleranceProbeRange(t *testing.T) {
	// The tolerance estimate must stay within [0, ToleranceCap] and be
	// higher for a many-warp compute-dense workload than a serial one.
	probe := func(warps, alu int) float64 {
		cfg := smallConfig()
		cfg.NumSMs = 1
		cfg.SampleEvery = 64
		w := testWorkload{name: "tol", blocks: 1, warps: warps, iters: 800, alu: alu, wsLines: 4, spread: 4}
		res := run(t, cfg, w, baselineFactory)
		pts := res.ToleranceSeries.Points()
		if len(pts) == 0 {
			t.Fatal("no tolerance samples")
		}
		var sum, max float64
		for _, p := range pts {
			if p.Value < 0 {
				t.Fatalf("negative tolerance %v", p.Value)
			}
			if p.Value > max {
				max = p.Value
			}
			sum += p.Value
		}
		if max > cfg.ToleranceCap {
			t.Fatalf("tolerance %v exceeds cap %v", max, cfg.ToleranceCap)
		}
		return sum / float64(len(pts))
	}
	serial := probe(1, 1)
	parallel := probe(24, 6)
	if parallel <= serial {
		t.Fatalf("24 busy warps must show more tolerance than 1: %.2f vs %.2f", parallel, serial)
	}
}

func TestWriteThroughConfigRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.WriteThroughL1 = true
	res := run(t, cfg, storeWorkload{}, baselineFactory)
	if res.StoreTxns == 0 {
		t.Fatal("stores must flow under write-through too")
	}
}
