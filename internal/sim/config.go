package sim

import (
	"fmt"

	"lattecc/internal/cache"
	"lattecc/internal/compress"
	"lattecc/internal/invariant"
	"lattecc/internal/mem"
	"lattecc/internal/modes"
)

// Config describes the simulated GPU (Table II defaults via DefaultConfig).
type Config struct {
	NumSMs int // 15
	// Scheduler selects the warp scheduling policy: SchedGTO (default,
	// greedy-then-oldest, Table II) or SchedRR (round-robin, the paper's
	// Section III-B2 alternative where latency tolerance degenerates to
	// the ready-warp count).
	Scheduler       SchedulerKind
	MaxWarpsPerSM   int // 48
	MaxBlocksPerSM  int // 8
	SchedulersPerSM int // 2
	WarpSize        int // 32 threads

	// L1Ports is the number of L1 transactions an SM can start per cycle
	// (the load-store-unit bandwidth); memory-divergent warps serialize
	// through it.
	L1Ports int
	// WriteThroughL1 switches stores from the paper's write-avoid policy
	// (bypass L1 entirely, Section IV-C3) to write-through: write hits
	// update the cached line, which forces compressed lines to expand
	// and can evict neighbours. The paper reports the choice has
	// negligible performance impact; the "writepolicy" experiment
	// verifies that here.
	WriteThroughL1 bool
	// MSHRs is the number of outstanding L1 misses per SM.
	MSHRs int

	Cache cache.Config
	Mem   mem.Config

	// ToleranceWindow is the cycle window over which Equation 4's terms
	// are averaged before feeding the controller.
	ToleranceWindow uint64
	// ToleranceCap bounds the tolerance estimate (cycles); a pipeline
	// cannot hide more latency than its schedulers can cover.
	ToleranceCap float64

	// MaxInstructions ends the run after this many warp instructions
	// (the paper simulates 1B instructions or completion).
	MaxInstructions uint64
	// MaxCycles is a deadlock guard.
	MaxCycles uint64

	// FlushL1AtKernelBoundary invalidates L1 contents between kernels.
	FlushL1AtKernelBoundary bool

	// SampleEvery controls the over-time probes (Figures 5 and 16): every
	// SampleEvery cycles SM0's tolerance and effective capacity are
	// sampled into the result series. 0 disables sampling.
	SampleEvery uint64

	// Trace, when non-nil, receives every L1 access (package tracefile's
	// Writer implements it) for offline trace-driven replay.
	Trace AccessRecorder

	// SMJobs is the worker count for the intra-simulation epoch engine:
	// phase A of every cycle (per-SM compute) runs across this many
	// persistent goroutines, with a deterministic memory-port barrier
	// between cycles (DESIGN.md §12). Results are bit-identical for any
	// value — StateHash(SMJobs=k) == StateHash(SMJobs=1) — so this is
	// purely a wall-clock knob. 0 or 1 runs serial with zero pool
	// overhead; values above NumSMs or GOMAXPROCS are clamped. With
	// SMJobs > 1 the workload's DataSource must tolerate concurrent
	// Line/LineInto calls (every source in this module is a pure
	// function of the address, so that holds).
	SMJobs int
}

// AccessRecorder receives the simulator's L1 access stream.
type AccessRecorder interface {
	Record(sm int, cycle uint64, addr uint64, write bool)
}

// DefaultConfig returns the Table II machine with the given codecs wired
// into the L1 (LowLat=BDI, HighCap=SC unless overridden by the caller).
func DefaultConfig() Config {
	var codecs [modes.NumModes]compress.Codec
	codecs[modes.LowLat] = compress.NewBDI()
	codecs[modes.HighCap] = compress.NewSC()
	return Config{
		NumSMs:          15,
		MaxWarpsPerSM:   48,
		MaxBlocksPerSM:  8,
		SchedulersPerSM: 2,
		WarpSize:        32,
		L1Ports:         2,
		MSHRs:           32,
		Cache: cache.Config{
			SizeBytes:  16 * 1024,
			LineSize:   128,
			Ways:       4,
			HitLatency: 4,
			Codecs:     codecs,
		},
		Mem:                     mem.DefaultConfig(),
		ToleranceWindow:         256,
		ToleranceCap:            256,
		MaxInstructions:         20_000_000,
		MaxCycles:               50_000_000,
		FlushL1AtKernelBoundary: true,
		SampleEvery:             0,
	}
}

// Validate panics on inconsistent configurations.
func (c Config) Validate() {
	if c.NumSMs <= 0 || c.MaxWarpsPerSM <= 0 || c.MaxBlocksPerSM <= 0 ||
		c.SchedulersPerSM <= 0 || c.L1Ports <= 0 || c.MSHRs <= 0 {
		panic(fmt.Sprintf("sim: bad config %+v", c))
	}
	if c.Cache.LineSize != c.Mem.LineSize {
		panic("sim: L1 and memory line sizes differ")
	}
	if c.ToleranceWindow == 0 {
		panic("sim: zero tolerance window")
	}
	if c.SMJobs < 0 {
		panic(fmt.Sprintf("sim: negative SMJobs %d", c.SMJobs))
	}
}

// Fingerprint folds the scalar machine parameters of the config into one
// key: every run that resolves to the same machine shares the same
// fingerprint. It keys resident daemon suites, fingerprint-affinity
// routing in the cluster, and persistent result-store entries — the
// three layers must agree on the key, which is why the fold lives here.
// Codec wiring and trace hooks are runtime wiring, deliberately not part
// of the key. SMJobs is likewise excluded: the epoch engine makes
// results bit-identical across worker counts, so cached results are
// shared across sm_jobs overrides.
func (c Config) Fingerprint() uint64 {
	h := invariant.NewHash()
	h.Int(int64(c.NumSMs))
	h.Byte(byte(c.Scheduler))
	h.Int(int64(c.MaxWarpsPerSM))
	h.Int(int64(c.MaxBlocksPerSM))
	h.Int(int64(c.SchedulersPerSM))
	h.Int(int64(c.WarpSize))
	h.Int(int64(c.L1Ports))
	if c.WriteThroughL1 {
		h.Byte(1)
	} else {
		h.Byte(0)
	}
	h.Int(int64(c.MSHRs))
	h.Int(int64(c.Cache.SizeBytes))
	h.Int(int64(c.Cache.LineSize))
	h.Int(int64(c.Cache.Ways))
	h.Uint64(c.Cache.HitLatency)
	h.Uint64(c.Cache.ExtraHitLatency)
	h.Uint64(c.Cache.DecompInitInterval)
	h.Int(int64(c.Cache.DecompBufferEntries))
	h.Int(int64(c.Mem.LineSize))
	h.Int(int64(c.Mem.L2SizeBytes))
	h.Int(int64(c.Mem.L2Ways))
	h.Int(int64(c.Mem.L2Banks))
	h.Uint64(c.Mem.L2Latency)
	h.Uint64(c.Mem.L2Service)
	h.Int(int64(c.Mem.DRAMChannels))
	h.Uint64(c.Mem.DRAMLatency)
	h.Uint64(c.Mem.DRAMService)
	h.Uint64(c.ToleranceWindow)
	h.Float64(c.ToleranceCap)
	h.Uint64(c.MaxInstructions)
	h.Uint64(c.MaxCycles)
	if c.FlushL1AtKernelBoundary {
		h.Byte(1)
	} else {
		h.Byte(0)
	}
	h.Uint64(c.SampleEvery)
	return h.Sum()
}

// SchedulerKind selects the warp scheduling policy.
type SchedulerKind uint8

const (
	// SchedGTO is greedy-then-oldest: stay on the current warp until it
	// stalls, then pick the oldest ready warp (Table II's scheduler).
	SchedGTO SchedulerKind = iota
	// SchedRR is loose round-robin: one instruction per ready warp in
	// turn.
	SchedRR
)

// ControllerFactory builds one compression controller per SM. numSets is
// the SM's L1 set count.
type ControllerFactory func(numSets int) modes.Controller

// freshCodecs returns a new codec array matching cfg's, so each run gets
// independent SC state. Stateless codecs are shared safely but SC carries
// a VFT and code book per SM.
func (c Config) freshCodecs() [modes.NumModes]compress.Codec {
	var out [modes.NumModes]compress.Codec
	for m, codec := range c.Cache.Codecs {
		if codec == nil {
			continue
		}
		switch codec.(type) {
		case *compress.SC:
			out[m] = compress.NewSC()
		case *compress.BDI:
			out[m] = compress.NewBDI()
		case *compress.BPC:
			out[m] = compress.NewBPC()
		case *compress.FPC:
			out[m] = compress.NewFPC()
		case *compress.CPACK:
			out[m] = compress.NewCPACK()
		default:
			out[m] = codec
		}
	}
	return out
}
