package sim

import (
	"fmt"
	"runtime"
	"testing"

	"lattecc/internal/trace"
)

// withRealParallelism raises GOMAXPROCS so effectiveSMJobs does not
// clamp the pool to 1 on single-core runners — the whole point is to
// exercise real cross-goroutine interleavings.
func withRealParallelism(t *testing.T, procs int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(0)
	if prev < procs {
		runtime.GOMAXPROCS(procs)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	}
}

// parityWL is a multi-kernel test workload (testWorkload is single-kernel).
type parityWL struct {
	name    string
	kernels []trace.Kernel
}

func (w parityWL) Name() string            { return w.name }
func (parityWL) Category() trace.Category  { return trace.CSens }
func (w parityWL) Kernels() []trace.Kernel { return w.kernels }
func (parityWL) Data() trace.DataSource    { return testData{} }

// parityWorkload is larger and more irregular than the other test
// workloads: two kernels, mixed phases, stores, barriers, divergence,
// and enough warps that SMs genuinely interleave through the LSU, the
// MSHRs, and the shared L2 banks.
func parityWorkload() trace.Workload {
	kernelA := trace.Kernel{
		Name:          "parity-a",
		Blocks:        12,
		WarpsPerBlock: 4,
		Program: func(block, warp int) trace.Program {
			insts := make([]trace.Inst, 0, 260)
			base := uint64(block*4+warp) * 37
			for i := 0; i < 60; i++ {
				line := (base + uint64(i)*7) % 2048
				insts = append(insts, trace.Inst{Op: trace.OpLoad, Addrs: []uint64{line * 128}})
				insts = append(insts, trace.Inst{Op: trace.OpALU, Lat: uint32(1 + i%5)})
				if i%9 == 0 {
					insts = append(insts, trace.Inst{Op: trace.OpStore, Addrs: []uint64{(line + 4096) * 128}})
				}
				if i%20 == 19 {
					insts = append(insts, trace.Inst{Op: trace.OpBarrier})
				}
			}
			return trace.NewSliceProgram(insts)
		},
	}
	kernelB := trace.Kernel{
		Name:          "parity-b",
		Blocks:        8,
		WarpsPerBlock: 6,
		Program: func(block, warp int) trace.Program {
			insts := make([]trace.Inst, 0, 200)
			seed := uint64(block*6 + warp)
			for i := 0; i < 40; i++ {
				// Divergent loads: up to 4 distinct lines per instruction.
				n := 1 + int((seed+uint64(i))%4)
				addrs := make([]uint64, 0, n)
				for j := 0; j < n; j++ {
					line := (seed*131 + uint64(i)*17 + uint64(j)*911) % 4096
					addrs = append(addrs, line*128)
				}
				insts = append(insts, trace.Inst{Op: trace.OpLoad, Addrs: addrs})
				insts = append(insts, trace.Inst{Op: trace.OpALU, Lat: 2})
			}
			return trace.NewSliceProgram(insts)
		},
	}
	return parityWL{name: "parity", kernels: []trace.Kernel{kernelA, kernelB}}
}

// TestSMJobsParity is the tentpole's core contract: for every controller
// flavour, StateHash(SMJobs=k) must equal StateHash(SMJobs=1) bit for
// bit (ISSUE 7 acceptance criterion). The harness-level companion,
// TestSMJobsParityAllPolicies, covers the full policy list on real
// workloads; this one uses a structurally nasty synthetic workload and
// also pins MSHR/LSU pressure. Runs under -race in CI, which doubles as
// the data-race gate on the epoch engine.
func TestSMJobsParity(t *testing.T) {
	withRealParallelism(t, 4)

	factories := map[string]ControllerFactory{
		"baseline": baselineFactory,
		"bdi":      bdiFactory,
		"latte":    latteFactory,
	}
	for name, factory := range factories {
		t.Run(name, func(t *testing.T) {
			for _, tight := range []bool{false, true} {
				cfg := smallConfig()
				cfg.NumSMs = 4
				cfg.SampleEvery = 64 // series must be jobs-invariant too
				if tight {
					cfg.MSHRs = 2
					cfg.L1Ports = 1
				}
				hashes := map[int]uint64{}
				for _, jobs := range []int{1, 2, cfg.NumSMs} {
					c := cfg
					c.SMJobs = jobs
					res := New(c, parityWorkload(), factory).Run()
					hashes[jobs] = res.StateHash()
					if res.Instructions == 0 {
						t.Fatalf("jobs=%d: empty run", jobs)
					}
				}
				for _, jobs := range []int{2, cfg.NumSMs} {
					if hashes[jobs] != hashes[1] {
						t.Errorf("tight=%v: StateHash(SMJobs=%d)=%#x != StateHash(SMJobs=1)=%#x",
							tight, jobs, hashes[jobs], hashes[1])
					}
				}
			}
		})
	}
}

// TestSMJobsClamp pins effectiveSMJobs' clamping rules.
func TestSMJobsClamp(t *testing.T) {
	withRealParallelism(t, 4)
	cfg := DefaultConfig()
	cfg.NumSMs = 3
	cfg.SMJobs = 64
	if got := cfg.effectiveSMJobs(); got != 3 {
		t.Errorf("SMJobs=64, NumSMs=3: effective %d, want 3 (NumSMs clamp)", got)
	}
	cfg.SMJobs = 0
	if got := cfg.effectiveSMJobs(); got != 1 {
		t.Errorf("SMJobs=0: effective %d, want 1", got)
	}
	cfg.SMJobs = -1
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Validate should panic on negative SMJobs")
			}
		}()
		cfg.Validate()
	}()
}

// TestSMJobsPanicPropagates: a panic inside a worker (here the MaxCycles
// guard cannot fire in phase A, so use a poisoned program) must surface
// on the Run caller like in serial mode, for any jobs value.
func TestSMJobsPanicPropagates(t *testing.T) {
	withRealParallelism(t, 4)
	poison := trace.Kernel{
		Name:          "poison",
		Blocks:        4,
		WarpsPerBlock: 1,
		Program: func(block, warp int) trace.Program {
			n := 0
			return trace.FuncProgram(func() (trace.Inst, bool) {
				n++
				if n > 3 && block == 2 {
					//lint:allow panic-audit test fixture: deliberate worker-side panic
					panic(fmt.Sprintf("poisoned program on block %d", block))
				}
				return trace.Inst{Op: trace.OpALU, Lat: 1}, true
			})
		},
	}
	w := parityWL{name: "poison", kernels: []trace.Kernel{poison}}
	for _, jobs := range []int{1, 4} {
		cfg := smallConfig()
		cfg.NumSMs = 4
		cfg.SMJobs = jobs
		got := func() (r interface{}) {
			defer func() { r = recover() }()
			New(cfg, w, baselineFactory).Run()
			return nil
		}()
		s, ok := got.(string)
		if !ok || s != "poisoned program on block 2" {
			t.Errorf("jobs=%d: recovered %v, want the poisoned-program panic", jobs, got)
		}
	}
}
