package sim

// WarpCandidate is one warp as the scheduler selection logic sees it:
// its id and whether it can issue this cycle. Candidates are presented
// in scheduler scan order (the SM's resident-warp order, which is age
// order — ids strictly increase along the slice).
type WarpCandidate struct {
	ID    int
	Ready bool
}

// PickWarp is the warp selection function shared by the SM model and
// the differential oracle: given the scheduling policy, the id of the
// last issued warp (-1 initially), and the candidates in scan order, it
// returns the index of the chosen candidate, or ok=false when no
// candidate is ready.
//
// GTO (greedy-then-oldest) sticks with the last issued warp while it is
// ready, otherwise takes the first ready candidate in scan order (the
// oldest). RR (loose round-robin) takes the first ready candidate whose
// id follows the last issued warp's, wrapping to the first ready one.
func PickWarp(kind SchedulerKind, lastWarp int, cands []WarpCandidate) (int, bool) {
	if kind == SchedRR {
		first := -1         // first ready candidate in scan order
		nextAfterLast := -1 // first ready candidate in scan order with id > lastWarp
		for i := range cands {
			if !cands[i].Ready {
				continue
			}
			if first < 0 {
				first = i
			}
			if nextAfterLast < 0 && cands[i].ID > lastWarp {
				nextAfterLast = i
			}
		}
		if first < 0 {
			return -1, false
		}
		if nextAfterLast >= 0 {
			return nextAfterLast, true
		}
		return first, true
	}
	// SchedGTO. Warp ids are unique, so the greedy hit can return as soon
	// as it is found — later candidates cannot change the answer.
	first := -1 // first ready candidate in scan order (the oldest)
	for i := range cands {
		if !cands[i].Ready {
			continue
		}
		if cands[i].ID == lastWarp {
			return i, true
		}
		if first < 0 {
			first = i
		}
	}
	if first < 0 {
		return -1, false
	}
	return first, true
}
