// Package sim is the cycle-level GPU model: streaming multiprocessors with
// greedy-then-oldest warp schedulers, per-SM compressed L1 data caches,
// MSHRs, a load-store unit with bounded L1 bandwidth, and the shared
// L2/DRAM system of package mem. It substitutes for GPGPU-Sim in the
// paper's methodology (see DESIGN.md).
package sim

import (
	"fmt"

	"lattecc/internal/cache"
	"lattecc/internal/invariant"
	"lattecc/internal/mem"
	"lattecc/internal/modes"
	"lattecc/internal/stats"
	"lattecc/internal/trace"
)

// KernelResult records one kernel's execution interval.
type KernelResult struct {
	Name   string
	Cycles uint64
	Start  uint64
}

// Result is the outcome of one simulation run.
type Result struct {
	Policy       string
	Workload     string
	Cycles       uint64
	Instructions uint64

	Cache cache.Stats // aggregated over SMs
	Mem   mem.Stats

	Kernels []KernelResult

	// LoadTxns/StoreTxns count coalesced L1/LSU transactions.
	LoadTxns  uint64
	StoreTxns uint64
	// MSHRStallCycles counts LSU head-of-line blocking on full MSHRs.
	MSHRStallCycles uint64

	// ToleranceSeries and CapacitySeries sample SM0 over time when
	// Config.SampleEvery > 0 (Figures 5 and 16).
	ToleranceSeries *stats.Series
	CapacitySeries  *stats.Series

	// ModeEPs aggregates, across SMs, how many adaptive EPs each mode won
	// (zero for non-adaptive controllers).
	ModeEPs [modes.NumModes]uint64
	// EPLog is SM0's per-EP decision log (Figure 15 agreement analysis);
	// EPKernels gives the kernel index of each entry.
	EPLog     []modes.Mode
	EPKernels []int32
	// Switches counts mode changes across all SMs.
	Switches uint64
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// StateHash folds every field of the result into one FNV-1a value. Two
// runs of the same workload, policy, and configuration must produce the
// same hash — the harness's determinism self-check compares hashes
// instead of diffing every counter, and any nondeterminism (map-order
// iteration, wall-clock leakage, data races) shows up as a mismatch.
func (r Result) StateHash() uint64 {
	h := invariant.NewHash()
	h.String(r.Policy)
	h.String(r.Workload)
	h.Uint64(r.Cycles)
	h.Uint64(r.Instructions)

	h.Uint64(r.Cache.Accesses)
	h.Uint64(r.Cache.Hits)
	h.Uint64(r.Cache.Misses)
	h.Uint64(r.Cache.CompressedHits)
	h.Uint64(r.Cache.DecompWait)
	h.Uint64(r.Cache.DecompBusy)
	h.Uint64(r.Cache.DecompBufferHits)
	h.Uint64(r.Cache.Evictions)
	h.Uint64(r.Cache.Fills)
	h.Uint64(r.Cache.FlushedLines)
	h.Uint64(r.Cache.WriteExpansions)
	h.Uint64(r.Cache.UncompressedSize)
	h.Uint64(r.Cache.CompressedSize)
	for m := 0; m < modes.NumModes; m++ {
		h.Uint64(r.Cache.InsertsByMode[m])
		h.Uint64(r.Cache.HitsByMode[m])
		h.Uint64(r.Cache.SubBlocksByMode[m])
		h.Uint64(r.ModeEPs[m])
	}

	h.Uint64(r.Mem.L2Accesses)
	h.Uint64(r.Mem.L2Hits)
	h.Uint64(r.Mem.L2Misses)
	h.Uint64(r.Mem.L2Writes)
	h.Uint64(r.Mem.DRAMReads)
	h.Uint64(r.Mem.DRAMWrites)
	h.Uint64(r.Mem.BytesL1L2)
	h.Uint64(r.Mem.BytesL2DRAM)

	h.Uint64(uint64(len(r.Kernels)))
	for _, k := range r.Kernels {
		h.String(k.Name)
		h.Uint64(k.Cycles)
		h.Uint64(k.Start)
	}

	h.Uint64(r.LoadTxns)
	h.Uint64(r.StoreTxns)
	h.Uint64(r.MSHRStallCycles)
	h.Uint64(r.Switches)

	h.Uint64(uint64(len(r.EPLog)))
	for _, m := range r.EPLog {
		h.Byte(byte(m))
	}
	h.Uint64(uint64(len(r.EPKernels)))
	for _, k := range r.EPKernels {
		h.Int(int64(k))
	}

	for _, s := range []*stats.Series{r.ToleranceSeries, r.CapacitySeries} {
		if s == nil {
			h.Byte(0)
			continue
		}
		pts := s.Points()
		h.Uint64(uint64(len(pts)))
		for _, p := range pts {
			h.Uint64(p.Cycle)
			h.Float64(p.Value)
		}
	}
	return h.Sum()
}

// Sim drives one workload through the configured GPU.
type Sim struct {
	cfg  Config
	mem  *mem.System
	arb  *mem.Arbiter
	sms  []*sm
	work trace.Workload
}

// New builds a simulator for one workload. factory builds the compression
// controller for each SM (use the same policy for all SMs, as the paper
// does).
func New(cfg Config, work trace.Workload, factory ControllerFactory) *Sim {
	cfg.Validate()
	m := mem.New(cfg.Mem)
	s := &Sim{cfg: cfg, mem: m, work: work}
	numSets := cfg.Cache.SizeBytes / (cfg.Cache.LineSize * cfg.Cache.Ways)
	data := work.Data()
	ports := make([]*mem.Port, cfg.NumSMs)
	for i := 0; i < cfg.NumSMs; i++ {
		cacheCfg := cfg.Cache
		cacheCfg.Codecs = cfg.freshCodecs()
		ctrl := factory(numSets)
		ports[i] = mem.NewPort(cfg.L1Ports)
		s.sms = append(s.sms, newSM(i, &s.cfg, ctrl, cacheCfg, ports[i], data))
	}
	s.arb = mem.NewArbiter(m, ports)
	return s
}

// Run executes every kernel of the workload and returns the result.
//
// Each cycle is a two-phase epoch (DESIGN.md §12). Phase A ticks every
// SM against only its own state — in parallel across effectiveSMJobs
// workers when Config.SMJobs > 1 — with memory traffic queued on per-SM
// ports. Phase B, at the barrier, drains the ports through the arbiter
// in (SM id, issue order) and commits each SM in id order; the budget,
// sampling, dispatch, and liveness checks all run here, where every SM's
// state is settled. The result is bit-identical for any worker count.
func (s *Sim) Run() Result {
	res := Result{
		Workload: s.work.Name(),
		Policy:   s.sms[0].ctrl.Name(),
	}
	if s.cfg.SampleEvery > 0 {
		res.ToleranceSeries = stats.NewSeries("tolerance", 4096)
		res.CapacitySeries = stats.NewSeries("effective-capacity", 4096)
	}

	var pool *smPool
	if jobs := s.cfg.effectiveSMJobs(); jobs > 1 {
		pool = newSMPool(s.sms, jobs)
		defer pool.close()
	}

	now := uint64(0)
	var totalInsts uint64
	budgetExhausted := false

	for ki, k := range s.work.Kernels() {
		k.Validate()
		if budgetExhausted {
			break
		}
		for _, m := range s.sms {
			if ks, ok := m.ctrl.(interface{ KernelStart(int) }); ok {
				ks.KernelStart(ki)
			}
		}
		start := now
		nextBlock := 0

		// Initial wave: fill every SM as far as occupancy allows.
		dispatch := func() {
			for nextBlock < k.Blocks {
				launched := false
				for _, m := range s.sms {
					if nextBlock >= k.Blocks {
						break
					}
					if m.launchBlock(k, nextBlock) {
						nextBlock++
						launched = true
					}
				}
				if !launched {
					return
				}
			}
		}
		dispatch()

		for {
			// Phase A: parallel compute against SM-private state.
			if pool != nil {
				pool.epoch(now)
			} else {
				for _, m := range s.sms {
					m.tickCompute(now)
				}
			}
			// Phase B: serial merge at the barrier.
			s.arb.Drain(now)
			busy := false
			var cycleInsts uint64
			for _, m := range s.sms {
				m.commit(now)
				cycleInsts += m.cycleInsts
				if m.busy() {
					busy = true
				}
			}
			totalInsts += cycleInsts
			now++

			if nextBlock < k.Blocks {
				dispatch()
				busy = true
			}
			if s.cfg.SampleEvery > 0 && now%s.cfg.SampleEvery == 0 {
				sm0 := s.sms[0]
				res.ToleranceSeries.Add(now, sm0.lastTolerance)
				res.CapacitySeries.Add(now, sm0.l1.EffectiveCapacityRatio())
			}
			if totalInsts >= s.cfg.MaxInstructions {
				for _, m := range s.sms {
					m.forceFinish()
				}
				budgetExhausted = true
				break
			}
			if now >= s.cfg.MaxCycles {
				//lint:allow panic-audit deadlock guard; a wedged simulation has no error path back to the caller
				panic(fmt.Sprintf("sim: cycle guard exceeded (%d cycles, %d insts, workload %s)",
					now, totalInsts, s.work.Name()))
			}
			if !busy {
				break
			}
			// Fast-forward across provably idle cycles: when every SM's
			// LSU is drained and nothing — fill arrival, warp wake-up,
			// tolerance-window boundary, sample point, cycle guard — can
			// happen before cycle `next`, the intervening cycles are
			// no-ops in every SM, the arbiter (empty ports), and the
			// dispatcher (block slots only free on a retire, which needs
			// a ready warp). Jumping `now` there is therefore invisible
			// to every counter, the trace stream, and StateHash; it only
			// removes the empty scheduler scans that dominate memory-
			// bound stall phases.
			if next := s.nextInterestingCycle(now); next > now {
				now = next
			}
		}

		res.Kernels = append(res.Kernels, KernelResult{Name: k.Name, Cycles: now - start, Start: start})
		for _, m := range s.sms {
			m.compactWarps()
			if s.cfg.FlushL1AtKernelBoundary {
				m.l1.Flush()
			}
		}
	}

	res.Cycles = now
	res.Instructions = totalInsts
	res.Mem = s.mem.Stats()
	for i, m := range s.sms {
		// Stats.Add covers every field (reflection-checked in package
		// cache), unlike the hand-rolled loop it replaced, which silently
		// dropped fields added after it was written.
		res.Cache.Add(m.l1.Stats())
		res.LoadTxns += m.loadTxns
		res.StoreTxns += m.storeTxns
		res.MSHRStallCycles += m.stallMSHR

		if lc, ok := m.ctrl.(interface {
			EPsInMode() [modes.NumModes]uint64
			EPLog() []modes.Mode
			EPKernels() []int32
			Switches() uint64
		}); ok {
			eps := lc.EPsInMode()
			for mo := range eps {
				res.ModeEPs[mo] += eps[mo]
			}
			res.Switches += lc.Switches()
			if i == 0 {
				res.EPLog = lc.EPLog()
				res.EPKernels = lc.EPKernels()
			}
		}
	}
	return res
}

// nextInterestingCycle returns the earliest cycle > now at which any SM
// can make progress, or now when the very next cycle already has work
// queued. Besides the per-SM events (sm.nextEvent) it stops one cycle
// short of a SampleEvery boundary and of MaxCycles: the series probe and
// the deadlock guard both run between cycles, after `now` is advanced,
// so the cycle just before each boundary must execute normally for those
// checks to observe the same `now` a cycle-by-cycle run produces.
func (s *Sim) nextInterestingCycle(now uint64) uint64 {
	next := ^uint64(0)
	for _, m := range s.sms {
		e := m.nextEvent()
		if e <= now {
			return now
		}
		if e < next {
			next = e
		}
	}
	if s.cfg.SampleEvery > 0 {
		if b := (now/s.cfg.SampleEvery+1)*s.cfg.SampleEvery - 1; b < next {
			next = b
		}
	}
	if s.cfg.MaxCycles > 0 && s.cfg.MaxCycles-1 < next {
		next = s.cfg.MaxCycles - 1
	}
	if next <= now {
		return now
	}
	return next
}
