package sim

import (
	"container/heap"

	"lattecc/internal/cache"
	"lattecc/internal/mem"
	"lattecc/internal/modes"
	"lattecc/internal/trace"
)

// warp is one resident warp's execution state.
type warp struct {
	id        int
	sched     int // owning scheduler
	blockSlot int
	prog      trace.Program
	cur       trace.Inst
	hasCur    bool
	done      bool

	nextFree     uint64 // cycle at which the warp may issue again
	blockedOnMem bool   // waiting for an in-flight memory request
	atBarrier    bool   // waiting for the rest of its thread block
	insts        uint64
}

// ready reports whether the warp can issue at cycle now.
func (w *warp) ready(now uint64) bool {
	return !w.done && !w.blockedOnMem && !w.atBarrier && w.nextFree <= now
}

// memReq is a warp memory instruction draining through the LSU: its
// remaining coalesced transactions and the latest data-ready time so far.
type memReq struct {
	w        *warp
	addrs    []uint64
	next     int
	readyMax uint64
	isStore  bool
}

// fillEvent is a pending L1 fill (miss response).
type fillEvent struct {
	at       uint64
	lineAddr uint64
}

type fillHeap []fillEvent

func (h fillHeap) Len() int            { return len(h) }
func (h fillHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h fillHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *fillHeap) Push(x interface{}) { *h = append(*h, x.(fillEvent)) }
func (h *fillHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// blockSlot tracks one resident thread block.
type blockSlot struct {
	active    bool
	remaining int // warps not yet done
	atBarrier int // warps currently waiting at the block barrier
}

// schedState is one warp scheduler's GTO and tolerance-probe state.
type schedState struct {
	lastWarp int // id of the last issued warp (-1 initially)

	// Equation 4 accumulators over the tolerance window.
	readySum uint64 // sum over cycles of (ready warps - 1 issuing), clamped at 0
	issues   uint64
	switches uint64
}

// sm is one streaming multiprocessor.
type sm struct {
	id     int
	cfg    *Config
	l1     *cache.Cache
	ctrl   modes.Controller
	mem    *mem.System
	data   trace.DataSource
	warps  []*warp
	slots  []blockSlot
	scheds []schedState

	// mshr maps lineAddr -> fill completion cycle. Determinism audit:
	// the map is only ever used for keyed lookup, insert, delete, and
	// len() — never iterated — so Go's randomized map order cannot leak
	// into timing. Fill completions drain through the fills heap, which
	// orders strictly by cycle.
	lsu   []*memReq
	mshr  map[uint64]uint64
	fills fillHeap

	hitSample uint64 // hit counter for VFT sampling

	// probe window bookkeeping
	windowStart   uint64
	lastTolerance float64
	nextWarpID    int

	instructions uint64
	loadTxns     uint64
	storeTxns    uint64
	stallMSHR    uint64

	// per-cycle scheduler scratch, reused to keep schedule allocation-free
	candScratch []WarpCandidate
	warpScratch []*warp
}

func newSM(id int, cfg *Config, ctrl modes.Controller, cacheCfg cache.Config, m *mem.System, data trace.DataSource) *sm {
	s := &sm{
		id:     id,
		cfg:    cfg,
		ctrl:   ctrl,
		mem:    m,
		data:   data,
		l1:     cache.New(cacheCfg, ctrl),
		slots:  make([]blockSlot, cfg.MaxBlocksPerSM),
		scheds: make([]schedState, cfg.SchedulersPerSM),
		mshr:   make(map[uint64]uint64),
	}
	for i := range s.scheds {
		s.scheds[i].lastWarp = -1
	}
	return s
}

// freeWarpSlots returns how many more warps the SM can host.
func (s *sm) freeWarpSlots() int {
	return s.cfg.MaxWarpsPerSM - len(s.warps)
}

// freeBlockSlot returns an inactive block slot index or -1.
func (s *sm) freeBlockSlot() int {
	for i := range s.slots {
		if !s.slots[i].active {
			return i
		}
	}
	return -1
}

// launchBlock installs a block's warps onto the SM.
func (s *sm) launchBlock(k trace.Kernel, block int) bool {
	slot := s.freeBlockSlot()
	if slot < 0 || s.freeWarpSlots() < k.WarpsPerBlock {
		return false
	}
	s.slots[slot] = blockSlot{active: true, remaining: k.WarpsPerBlock}
	for wi := 0; wi < k.WarpsPerBlock; wi++ {
		w := &warp{
			id:        s.nextWarpID,
			sched:     s.nextWarpID % s.cfg.SchedulersPerSM,
			blockSlot: slot,
			prog:      k.Program(block, wi),
		}
		s.nextWarpID++
		s.warps = append(s.warps, w)
	}
	return true
}

// compactWarps drops retired warps so the scheduler scan stays O(resident).
func (s *sm) compactWarps() {
	live := s.warps[:0]
	for _, w := range s.warps {
		if !w.done {
			live = append(live, w)
		}
	}
	s.warps = live
}

// busy reports whether the SM still has work (live warps or in-flight
// memory activity).
func (s *sm) busy() bool {
	if len(s.lsu) > 0 || len(s.fills) > 0 {
		return true
	}
	for _, w := range s.warps {
		if !w.done {
			return true
		}
	}
	return false
}

// tick advances the SM by one cycle. It returns the number of
// instructions issued this cycle.
func (s *sm) tick(now uint64) uint64 {
	s.applyFills(now)
	s.drainLSU(now)
	issued := s.schedule(now)
	s.probeTolerance(now)
	return issued
}

// applyFills installs miss responses whose data has arrived.
func (s *sm) applyFills(now uint64) {
	for len(s.fills) > 0 && s.fills[0].at <= now {
		ev := heap.Pop(&s.fills).(fillEvent)
		delete(s.mshr, ev.lineAddr)
		lineSize := uint64(s.cfg.Cache.LineSize)
		s.l1.Fill(ev.lineAddr*lineSize, s.data.Line(ev.lineAddr), now)
	}
}

// drainLSU processes up to L1Ports transactions from the LSU queue.
func (s *sm) drainLSU(now uint64) {
	budget := s.cfg.L1Ports
	for budget > 0 && len(s.lsu) > 0 {
		req := s.lsu[0]
		if req.isStore {
			if s.cfg.Trace != nil {
				s.cfg.Trace.Record(s.id, now, req.addrs[req.next], true)
			}
			if s.cfg.WriteThroughL1 {
				// Write-through: a write hit updates (and expands) the
				// cached copy before the store proceeds to L2.
				s.l1.WriteTouch(req.addrs[req.next], now)
			}
			// Stores always go to L2 (write-avoid bypasses L1 entirely,
			// Section IV-C3).
			s.mem.Write(req.addrs[req.next], now)
			s.storeTxns++
			req.next++
		} else {
			if !s.loadTxn(req, now) {
				// MSHR full: head-of-line block until entries free up.
				s.stallMSHR++
				return
			}
			s.loadTxns++
			req.next++
		}
		budget--
		if req.next >= len(req.addrs) {
			s.lsu = s.lsu[1:]
			if !req.isStore {
				w := req.w
				w.blockedOnMem = false
				w.nextFree = req.readyMax
			}
		}
	}
}

// loadTxn performs one load transaction; it returns false if the
// transaction needs an MSHR and none is free.
func (s *sm) loadTxn(req *memReq, now uint64) bool {
	addr := req.addrs[req.next]
	lineSize := uint64(s.cfg.Cache.LineSize)
	lineAddr := addr / lineSize

	if s.cfg.Trace != nil {
		s.cfg.Trace.Record(s.id, now, addr, false)
	}
	res := s.l1.Access(addr, now)
	if res.Hit {
		if res.Ready > req.readyMax {
			req.readyMax = res.Ready
		}
		// Sample hit values into the high-capacity VFT (1 in 16 hits):
		// the table tracks value *use* frequency, and hit-dominated
		// phases would otherwise never refresh it.
		s.hitSample++
		if s.hitSample&0xF == 0 {
			s.l1.TrainHighCap(s.data.Line(lineAddr))
		}
		return true
	}
	// Miss: merge into an in-flight fetch if one exists.
	if fillAt, ok := s.mshr[lineAddr]; ok {
		ready := fillAt + s.cfg.Cache.HitLatency
		if ready > req.readyMax {
			req.readyMax = ready
		}
		return true
	}
	if len(s.mshr) >= s.cfg.MSHRs {
		return false
	}
	fillAt := s.mem.Read(addr, now)
	s.mshr[lineAddr] = fillAt
	heap.Push(&s.fills, fillEvent{at: fillAt, lineAddr: lineAddr})
	s.ctrl.RecordMissLatency(fillAt - now)
	ready := fillAt + s.cfg.Cache.HitLatency
	if ready > req.readyMax {
		req.readyMax = ready
	}
	return true
}

// schedule runs each warp scheduler once (one issue per scheduler per
// cycle, Table II: 2 schedulers per SM). The selection itself lives in
// PickWarp so the differential oracle exercises the exact production
// logic; this method only gathers candidates and does the accounting.
func (s *sm) schedule(now uint64) uint64 {
	var issued uint64
	for si := range s.scheds {
		st := &s.scheds[si]

		cands := s.candScratch[:0]
		byCand := s.warpScratch[:0]
		ready := 0
		for _, w := range s.warps {
			if w.sched != si {
				continue
			}
			r := w.ready(now)
			if r {
				ready++
			}
			cands = append(cands, WarpCandidate{ID: w.id, Ready: r})
			byCand = append(byCand, w)
		}
		s.candScratch, s.warpScratch = cands, byCand
		// Tolerance probe: ready warps on this scheduler.
		if ready > 0 {
			st.readySum += uint64(ready - 1)
		}
		idx, ok := PickWarp(s.cfg.Scheduler, st.lastWarp, cands)
		if !ok {
			continue
		}
		pick := byCand[idx]
		if pick.id != st.lastWarp {
			st.switches++
			st.lastWarp = pick.id
		}
		if s.issue(pick, now) {
			st.issues++
			issued++
		}
	}
	return issued
}

// issue executes one instruction from the warp; it returns false when the
// warp had no instruction left (it retires instead).
func (s *sm) issue(w *warp, now uint64) bool {
	if !w.hasCur {
		inst, ok := w.prog.Next()
		if !ok {
			s.retire(w)
			return false
		}
		w.cur, w.hasCur = inst, true
	}
	inst := w.cur
	w.hasCur = false
	w.insts++
	s.instructions++

	switch inst.Op {
	case trace.OpALU:
		lat := uint64(inst.Lat)
		if lat == 0 {
			lat = 1
		}
		w.nextFree = now + lat
	case trace.OpLoad:
		if len(inst.Addrs) == 0 {
			w.nextFree = now + 1
			return true
		}
		w.blockedOnMem = true
		s.lsu = append(s.lsu, &memReq{w: w, addrs: inst.Addrs})
	case trace.OpStore:
		w.nextFree = now + 1
		if len(inst.Addrs) > 0 {
			s.lsu = append(s.lsu, &memReq{w: w, addrs: inst.Addrs, isStore: true})
		}
	case trace.OpBarrier:
		s.arriveBarrier(w, now)
	default:
		w.nextFree = now + 1
	}
	return true
}

// arriveBarrier parks the warp at its block's barrier, releasing the
// whole block once every live warp has arrived.
func (s *sm) arriveBarrier(w *warp, now uint64) {
	slot := &s.slots[w.blockSlot]
	w.atBarrier = true
	slot.atBarrier++
	if slot.atBarrier < slot.remaining {
		return
	}
	// Last arrival: release everyone next cycle.
	slot.atBarrier = 0
	for _, o := range s.warps {
		if !o.done && o.blockSlot == w.blockSlot && o.atBarrier {
			o.atBarrier = false
			o.nextFree = now + 1
		}
	}
}

// retire marks a warp finished and frees its block slot when the whole
// block has drained.
func (s *sm) retire(w *warp) {
	if w.done {
		return
	}
	w.done = true
	slot := &s.slots[w.blockSlot]
	slot.remaining--
	if slot.remaining == 0 {
		slot.active = false
		s.compactWarps() // free warp slots so waiting blocks can launch
		return
	}
	// A warp can retire while siblings wait at a barrier (divergent exit);
	// if it was the last one missing, release the block.
	if slot.atBarrier > 0 && slot.atBarrier >= slot.remaining {
		slot.atBarrier = 0
		for _, o := range s.warps {
			if !o.done && o.blockSlot == w.blockSlot && o.atBarrier {
				o.atBarrier = false
				o.nextFree = 0
			}
		}
	}
}

// forceFinish terminates all warps (instruction budget exhausted).
func (s *sm) forceFinish() {
	for _, w := range s.warps {
		if !w.done {
			s.retire(w)
		}
	}
	s.lsu = nil
}

// probeTolerance folds the Equation 4 terms into the controller at window
// boundaries:
//
//	latency_tolerance = avg_warps_available × avg_execution_cycles_per_schedule
//
// For a GTO scheduler, a stalled warp is covered for roughly (other ready
// warps) × (cycles each runs before switching) cycles. With a round-robin
// scheduler the run length is 1 and the estimate degenerates to the ready
// warp count, matching the paper's Section III-B2 discussion.
func (s *sm) probeTolerance(now uint64) {
	if now < s.windowStart+s.cfg.ToleranceWindow {
		return
	}
	window := float64(now - s.windowStart)
	if window <= 0 {
		window = 1
	}
	var tol float64
	for si := range s.scheds {
		st := &s.scheds[si]
		avgReady := float64(st.readySum) / window
		execPerSched := 1.0
		if st.switches > 0 {
			execPerSched = float64(st.issues) / float64(st.switches)
		}
		t := avgReady * execPerSched
		if t > tol {
			tol = t
		}
		st.readySum, st.issues, st.switches = 0, 0, 0
	}
	if tol > s.cfg.ToleranceCap {
		tol = s.cfg.ToleranceCap
	}
	s.ctrl.RecordTolerance(tol)
	s.lastTolerance = tol
	s.windowStart = now
}
