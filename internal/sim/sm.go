package sim

import (
	"lattecc/internal/cache"
	"lattecc/internal/mem"
	"lattecc/internal/modes"
	"lattecc/internal/trace"
)

// Warp blocking flags. The scheduler scan is the hottest loop in the
// simulator, so the three blocking conditions share one byte next to
// nextFree: readiness is a single flags==0 test plus a time compare.
const (
	wDone       uint8 = 1 << iota // retired
	wBlockedMem                   // waiting for an in-flight memory request
	wAtBarrier                    // waiting for the rest of its thread block
)

// warp is one resident warp's execution state.
type warp struct {
	id        int
	sched     int // owning scheduler
	blockSlot int
	prog      trace.Program
	cur       trace.Inst
	hasCur    bool

	nextFree uint64 // cycle at which the warp may issue again
	flags    uint8  // wDone | wBlockedMem | wAtBarrier; 0 = schedulable
	insts    uint64
}

// ready reports whether the warp can issue at cycle now.
func (w *warp) ready(now uint64) bool {
	return w.flags == 0 && w.nextFree <= now
}

// wake lowers scheduler si's sleep bound: one of its warps may become
// ready at cycle `at`, so schedule must scan again no later than that.
func (s *sm) wake(si int, at uint64) {
	if at < s.scheds[si].nextWake {
		s.scheds[si].nextWake = at
	}
}

// activeInsert adds a newly schedulable warp (flags just cleared) to its
// scheduler's active list, keeping warp-id order. Warp ids only grow, so
// schedWarps is id-ordered and the active list mirrors that.
func (s *sm) activeInsert(w *warp) {
	ws := s.schedActive[w.sched]
	lo, hi := 0, len(ws)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ws[mid].id < w.id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	ws = append(ws, nil)
	copy(ws[lo+1:], ws[lo:])
	ws[lo] = w
	s.schedActive[w.sched] = ws
}

// activeRemove drops a warp that just blocked (or retired) from its
// scheduler's active list. Tolerates absence: forceFinish retires warps
// that are already blocked and therefore already off the list.
func (s *sm) activeRemove(w *warp) {
	ws := s.schedActive[w.sched]
	lo, hi := 0, len(ws)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ws[mid].id < w.id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(ws) || ws[lo] != w {
		return
	}
	copy(ws[lo:], ws[lo+1:])
	ws[len(ws)-1] = nil
	s.schedActive[w.sched] = ws[:len(ws)-1]
}

// memReqAddrCap bounds the inline address buffer: a warp has 32 threads,
// so a memory instruction coalesces into at most 32 transactions.
const memReqAddrCap = 32

// memReq is a warp memory instruction draining through the LSU: its
// remaining coalesced transactions and the latest data-ready time so far.
// Requests are pooled per SM and their addresses copied into the inline
// buffer at issue, so the LSU allocates nothing in steady state (and the
// program generator may reuse its Addrs backing array, per the
// trace.Program contract).
type memReq struct {
	w        *warp
	addrs    []uint64 // aliases buf except for >32-way requests
	next     int
	readyMax uint64
	// pending counts port loads issued on behalf of this request whose
	// fill time the arbiter has not resolved yet. A fully drained request
	// with pending > 0 parks on the deferred list until the epoch commit.
	pending int
	isStore bool
	buf     [memReqAddrCap]uint64
}

// fillEvent is a pending L1 fill (miss response).
type fillEvent struct {
	at       uint64
	lineAddr uint64
}

// fillHeap is a binary min-heap on fillEvent.at with concrete push/pop
// (container/heap's interface indirection boxed every event).
type fillHeap []fillEvent

func (h *fillHeap) push(ev fillEvent) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].at <= s[i].at {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

// pop removes and returns the earliest event. Ties on at are broken by
// heap layout — deterministic, since the push sequence is.
func (h *fillHeap) pop() fillEvent {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && s[r].at < s[l].at {
			c = r
		}
		if s[i].at <= s[c].at {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}

// mshrEntry is one outstanding L1 miss. While the epoch's port is still
// undrained the fill time is unknown and the entry is pending, pointing
// at the pendingLoad that will resolve it at the barrier.
type mshrEntry struct {
	lineAddr uint64
	fillAt   uint64 // valid once pending is false
	pending  bool
	pendIdx  int32 // index into sm.pend while pending
}

// pendingLoad tracks one port load issued this cycle: which port slot
// holds its arbiter-assigned fill time, which MSHR it fills, and the LSU
// requests waiting on it.
type pendingLoad struct {
	portIdx  int
	mshrIdx  int
	lineAddr uint64
	waiters  []*memReq
}

// traceRec is one buffered L1 access record; the shared Config.Trace
// recorder is only touched at the barrier, in SM order, so the emitted
// stream is identical to the serial simulator's.
type traceRec struct {
	addr  uint64
	write bool
}

// blockSlot tracks one resident thread block.
type blockSlot struct {
	active    bool
	remaining int // warps not yet done
	atBarrier int // warps currently waiting at the block barrier
}

// schedState is one warp scheduler's GTO and tolerance-probe state.
type schedState struct {
	lastWarp int // id of the last issued warp (-1 initially)

	// nextWake is a lower bound on the next cycle any of this scheduler's
	// warps can be ready. When a scan finds zero ready warps it records
	// the earliest nextFree among unblocked warps here, and schedule
	// skips the scan entirely until that cycle; every event that can make
	// a warp ready sooner (fill unblock, barrier release, block launch)
	// lowers the bound through sm.wake. Purely a cache of what the scan
	// would conclude, so skipping changes no observable behavior — the
	// skipped cycles contribute nothing to readySum either way.
	nextWake uint64

	// Equation 4 accumulators over the tolerance window.
	readySum uint64 // sum over cycles of (ready warps - 1 issuing), clamped at 0
	issues   uint64
	switches uint64
}

// sm is one streaming multiprocessor. During the parallel phase of a
// cycle epoch an sm touches only its own state (plus read-only config
// and the read-only data source): memory traffic goes to the per-SM
// port, never to the shared mem.System.
type sm struct {
	id     int
	cfg    *Config
	l1     *cache.Cache
	ctrl   modes.Controller
	port   *mem.Port
	data   trace.DataSource
	warps  []*warp
	slots  []blockSlot
	scheds []schedState
	// schedWarps holds each scheduler's warps (same membership and order
	// as the warps slice filtered by sched), so schedule scans only its
	// own warps instead of skipping over every other scheduler's.
	schedWarps [][]*warp
	// schedActive is the schedulable subset of schedWarps (flags == 0),
	// kept in warp-id order — the same order a filtered scan of
	// schedWarps produces, so PickWarp sees identical candidates. It is
	// maintained incrementally at block/unblock transitions (at most one
	// warp blocks per scheduler per cycle), which turns the per-cycle
	// scheduler scan from O(resident warps) into O(schedulable warps).
	schedActive [][]*warp
	liveWarps   int

	// lsu is the in-order load/store queue; lsuHead indexes the current
	// front so dequeuing doesn't reslice away buffer capacity.
	lsu     []*memReq
	lsuHead int
	reqFree []*memReq // memReq pool

	// mshr holds outstanding misses. A linear scan over at most
	// Config.MSHRs (32) entries beats map hashing at this size, and a
	// slice has no iteration-order hazard. Entries are only removed in
	// applyFills, when no pendingLoad holds an index into the slice.
	mshr  []mshrEntry
	fills fillHeap

	// pend / deferred are the epoch-barrier handoff: loads awaiting the
	// arbiter's fill times and fully-drained requests whose warps unblock
	// at commit. waiterPool recycles the waiter slices.
	pend       []pendingLoad
	deferred   []*memReq
	waiterPool [][]*memReq

	// cycleInsts is the instruction count of the last tickCompute,
	// harvested by Run at the barrier.
	cycleInsts uint64

	hitSample uint64 // hit counter for VFT sampling

	// probe window bookkeeping
	windowStart   uint64
	lastTolerance float64
	nextWarpID    int

	instructions uint64
	loadTxns     uint64
	storeTxns    uint64
	stallMSHR    uint64

	// lineFill + lineBuf render line data into a per-SM scratch buffer
	// when the data source supports it (the cache never retains fill
	// slices, so reuse is safe).
	lineFill trace.LineFiller
	lineBuf  []byte

	// traceBuf defers Config.Trace records to the barrier.
	traceBuf []traceRec

	// per-cycle scheduler scratch, reused to keep schedule allocation-free
	candScratch []WarpCandidate
	pickScratch []*warp
}

func newSM(id int, cfg *Config, ctrl modes.Controller, cacheCfg cache.Config, port *mem.Port, data trace.DataSource) *sm {
	s := &sm{
		id:          id,
		cfg:         cfg,
		ctrl:        ctrl,
		port:        port,
		data:        data,
		l1:          cache.New(cacheCfg, ctrl),
		slots:       make([]blockSlot, cfg.MaxBlocksPerSM),
		scheds:      make([]schedState, cfg.SchedulersPerSM),
		schedWarps:  make([][]*warp, cfg.SchedulersPerSM),
		schedActive: make([][]*warp, cfg.SchedulersPerSM),
		mshr:        make([]mshrEntry, 0, cfg.MSHRs),
	}
	for i := range s.scheds {
		s.scheds[i].lastWarp = -1
	}
	if lf, ok := data.(trace.LineFiller); ok {
		s.lineFill = lf
		s.lineBuf = make([]byte, cfg.Cache.LineSize)
	}
	return s
}

// line returns the backing data of lineAddr, using the per-SM scratch
// buffer when the source supports in-place rendering.
func (s *sm) line(lineAddr uint64) []byte {
	if s.lineFill != nil {
		s.lineFill.LineInto(s.lineBuf, lineAddr)
		return s.lineBuf
	}
	return s.data.Line(lineAddr)
}

// allocReq takes a request from the pool (fields zeroed by releaseReq).
func (s *sm) allocReq() *memReq {
	if n := len(s.reqFree); n > 0 {
		r := s.reqFree[n-1]
		s.reqFree = s.reqFree[:n-1]
		return r
	}
	return new(memReq)
}

// releaseReq returns a finished request to the pool.
func (s *sm) releaseReq(r *memReq) {
	r.w = nil
	r.addrs = nil
	r.next = 0
	r.readyMax = 0
	r.pending = 0
	r.isStore = false
	s.reqFree = append(s.reqFree, r)
}

// newMemReq builds a pooled request, copying the instruction's addresses
// out of the program's (reusable) backing array.
func (s *sm) newMemReq(w *warp, addrs []uint64, store bool) *memReq {
	r := s.allocReq()
	r.w = w
	r.isStore = store
	if len(addrs) <= memReqAddrCap {
		n := copy(r.buf[:], addrs)
		r.addrs = r.buf[:n]
	} else {
		r.addrs = append([]uint64(nil), addrs...)
	}
	return r
}

// freeWarpSlots returns how many more warps the SM can host.
func (s *sm) freeWarpSlots() int {
	return s.cfg.MaxWarpsPerSM - len(s.warps)
}

// freeBlockSlot returns an inactive block slot index or -1.
func (s *sm) freeBlockSlot() int {
	for i := range s.slots {
		if !s.slots[i].active {
			return i
		}
	}
	return -1
}

// launchBlock installs a block's warps onto the SM.
func (s *sm) launchBlock(k trace.Kernel, block int) bool {
	slot := s.freeBlockSlot()
	if slot < 0 || s.freeWarpSlots() < k.WarpsPerBlock {
		return false
	}
	s.slots[slot] = blockSlot{active: true, remaining: k.WarpsPerBlock}
	ws := make([]warp, k.WarpsPerBlock)
	for wi := range ws {
		w := &ws[wi]
		w.id = s.nextWarpID
		w.sched = s.nextWarpID % s.cfg.SchedulersPerSM
		w.blockSlot = slot
		w.prog = k.Program(block, wi)
		s.nextWarpID++
		s.warps = append(s.warps, w)
		s.schedWarps[w.sched] = append(s.schedWarps[w.sched], w)
		s.activeInsert(w)
		s.wake(w.sched, 0) // fresh warps are ready immediately
	}
	s.liveWarps += k.WarpsPerBlock
	return true
}

// compactWarps drops retired warps so the scheduler scan stays O(resident).
func (s *sm) compactWarps() {
	live := s.warps[:0]
	for _, w := range s.warps {
		if w.flags&wDone == 0 {
			live = append(live, w)
		}
	}
	for i := len(live); i < len(s.warps); i++ {
		s.warps[i] = nil
	}
	s.warps = live
	for si := range s.schedWarps {
		lw := s.schedWarps[si][:0]
		for _, w := range s.schedWarps[si] {
			if w.flags&wDone == 0 {
				lw = append(lw, w)
			}
		}
		for i := len(lw); i < len(s.schedWarps[si]); i++ {
			s.schedWarps[si][i] = nil
		}
		s.schedWarps[si] = lw
	}
}

// busy reports whether the SM still has work (live warps or in-flight
// memory activity). Only valid after commit, like every cross-SM read.
func (s *sm) busy() bool {
	return s.liveWarps > 0 || len(s.lsu) > s.lsuHead || len(s.fills) > 0
}

// nextEvent returns the earliest cycle at which this SM can do any work:
// the next pending fill, the next cycle a schedulable warp becomes ready,
// or the tolerance-window boundary (probeTolerance fires there and must
// observe the same `now` as a cycle-by-cycle run). A queued LSU request
// makes every cycle busy, so the method returns 0 in that case. Only
// valid after commit, when pend/deferred/traceBuf are empty and every
// blockedOnMem warp still has its request in the LSU queue — which is
// what lets Sim.Run prove cycles up to the returned value are no-ops and
// fast-forward across them without changing a single counter.
func (s *sm) nextEvent() uint64 {
	if s.lsuHead < len(s.lsu) {
		return 0
	}
	next := s.windowStart + s.cfg.ToleranceWindow
	if len(s.fills) > 0 && s.fills[0].at < next {
		next = s.fills[0].at
	}
	for _, w := range s.warps {
		if w.flags != 0 {
			continue
		}
		if w.nextFree < next {
			next = w.nextFree
		}
	}
	return next
}

// tickCompute is the parallel half of one cycle: fills, LSU drain into
// the port, and scheduling, all against SM-private state. The issued
// instruction count lands in cycleInsts for the barrier to harvest.
func (s *sm) tickCompute(now uint64) {
	s.applyFills(now)
	s.drainLSU(now)
	s.cycleInsts = s.schedule(now)
}

// commit is the serial half of one cycle, run at the epoch barrier after
// the arbiter has drained the ports: resolve this cycle's fill times,
// unblock drained warps, fold the tolerance probe, and flush buffered
// trace records. Commit runs in SM id order, which keeps the controller
// call sequence and the trace stream identical to the serial simulator.
func (s *sm) commit(now uint64) {
	for i := range s.pend {
		p := &s.pend[i]
		fillAt := s.port.FillAt(p.portIdx)
		e := &s.mshr[p.mshrIdx]
		e.fillAt = fillAt
		e.pending = false
		s.fills.push(fillEvent{at: fillAt, lineAddr: p.lineAddr})
		s.ctrl.RecordMissLatency(fillAt - now)
		ready := fillAt + s.cfg.Cache.HitLatency
		for _, req := range p.waiters {
			if ready > req.readyMax {
				req.readyMax = ready
			}
			req.pending--
		}
		s.waiterPool = append(s.waiterPool, p.waiters[:0])
		p.waiters = nil
	}
	s.pend = s.pend[:0]
	s.port.Reset()

	for i, req := range s.deferred {
		w := req.w
		w.flags &^= wBlockedMem
		w.nextFree = req.readyMax
		if w.flags == 0 {
			s.activeInsert(w)
		}
		s.wake(w.sched, req.readyMax)
		s.releaseReq(req)
		s.deferred[i] = nil
	}
	s.deferred = s.deferred[:0]

	s.probeTolerance(now)

	if len(s.traceBuf) > 0 {
		for _, tr := range s.traceBuf {
			s.cfg.Trace.Record(s.id, now, tr.addr, tr.write)
		}
		s.traceBuf = s.traceBuf[:0]
	}
}

// applyFills installs miss responses whose data has arrived.
func (s *sm) applyFills(now uint64) {
	for len(s.fills) > 0 && s.fills[0].at <= now {
		ev := s.fills.pop()
		s.mshrRemove(ev.lineAddr)
		lineSize := uint64(s.cfg.Cache.LineSize)
		s.l1.Fill(ev.lineAddr*lineSize, s.line(ev.lineAddr), now)
	}
}

// mshrLookup returns the index of lineAddr's MSHR or -1.
func (s *sm) mshrLookup(lineAddr uint64) int {
	for i := range s.mshr {
		if s.mshr[i].lineAddr == lineAddr {
			return i
		}
	}
	return -1
}

// mshrRemove frees lineAddr's MSHR (swap-remove; only called from
// applyFills, when no pendingLoad holds MSHR indices).
func (s *sm) mshrRemove(lineAddr uint64) {
	if i := s.mshrLookup(lineAddr); i >= 0 {
		n := len(s.mshr) - 1
		s.mshr[i] = s.mshr[n]
		s.mshr = s.mshr[:n]
	}
}

// drainLSU processes up to L1Ports transactions from the LSU queue.
func (s *sm) drainLSU(now uint64) {
	budget := s.cfg.L1Ports
	for budget > 0 && s.lsuHead < len(s.lsu) {
		req := s.lsu[s.lsuHead]
		if req.isStore {
			addr := req.addrs[req.next]
			if s.cfg.Trace != nil {
				s.traceBuf = append(s.traceBuf, traceRec{addr: addr, write: true})
			}
			if s.cfg.WriteThroughL1 {
				// Write-through: a write hit updates (and expands) the
				// cached copy before the store proceeds to L2.
				s.l1.WriteTouch(addr, now)
			}
			// Stores always go to L2 (write-avoid bypasses L1 entirely,
			// Section IV-C3).
			s.port.PushStore(addr)
			s.storeTxns++
			req.next++
		} else {
			if !s.loadTxn(req, now) {
				// MSHR full: head-of-line block until entries free up.
				s.stallMSHR++
				return
			}
			s.loadTxns++
			req.next++
		}
		budget--
		if req.next >= len(req.addrs) {
			s.lsu[s.lsuHead] = nil
			s.lsuHead++
			if s.lsuHead == len(s.lsu) {
				s.lsu = s.lsu[:0]
				s.lsuHead = 0
			}
			switch {
			case req.isStore:
				s.releaseReq(req)
			case req.pending == 0:
				// Every transaction hit or merged into an already-resolved
				// fill: the ready time is final. It is always > now, so
				// unblocking here vs at commit cannot change scheduling.
				w := req.w
				w.flags &^= wBlockedMem
				w.nextFree = req.readyMax
				if w.flags == 0 {
					s.activeInsert(w)
				}
				s.wake(w.sched, req.readyMax)
				s.releaseReq(req)
			default:
				s.deferred = append(s.deferred, req)
			}
		}
	}
}

// loadTxn performs one load transaction; it returns false if the
// transaction needs an MSHR and none is free.
func (s *sm) loadTxn(req *memReq, now uint64) bool {
	addr := req.addrs[req.next]
	lineSize := uint64(s.cfg.Cache.LineSize)
	lineAddr := addr / lineSize

	if s.cfg.Trace != nil {
		s.traceBuf = append(s.traceBuf, traceRec{addr: addr})
	}
	res := s.l1.Access(addr, now)
	if res.Hit {
		if res.Ready > req.readyMax {
			req.readyMax = res.Ready
		}
		// Sample hit values into the high-capacity VFT (1 in 16 hits):
		// the table tracks value *use* frequency, and hit-dominated
		// phases would otherwise never refresh it.
		s.hitSample++
		if s.hitSample&0xF == 0 {
			s.l1.TrainHighCap(s.line(lineAddr))
		}
		return true
	}
	// Miss: merge into an in-flight fetch if one exists.
	if mi := s.mshrLookup(lineAddr); mi >= 0 {
		e := &s.mshr[mi]
		if e.pending {
			// Fill time unknown until the arbiter drains the port: join
			// the waiter list, resolved at commit.
			p := &s.pend[e.pendIdx]
			p.waiters = append(p.waiters, req)
			req.pending++
			return true
		}
		ready := e.fillAt + s.cfg.Cache.HitLatency
		if ready > req.readyMax {
			req.readyMax = ready
		}
		return true
	}
	if len(s.mshr) >= s.cfg.MSHRs {
		return false
	}
	portIdx := s.port.PushLoad(addr)
	var waiters []*memReq
	if n := len(s.waiterPool); n > 0 {
		waiters = s.waiterPool[n-1]
		s.waiterPool = s.waiterPool[:n-1]
	}
	s.pend = append(s.pend, pendingLoad{
		portIdx:  portIdx,
		mshrIdx:  len(s.mshr),
		lineAddr: lineAddr,
		waiters:  append(waiters, req),
	})
	s.mshr = append(s.mshr, mshrEntry{
		lineAddr: lineAddr,
		pending:  true,
		pendIdx:  int32(len(s.pend) - 1),
	})
	req.pending++
	return true
}

// schedule runs each warp scheduler once (one issue per scheduler per
// cycle, Table II: 2 schedulers per SM). The selection itself lives in
// PickWarp so the differential oracle exercises the exact production
// logic; this method only gathers candidates and does the accounting.
func (s *sm) schedule(now uint64) uint64 {
	var issued uint64
	for si := range s.scheds {
		st := &s.scheds[si]
		if st.nextWake > now {
			// Proven asleep: no warp of this scheduler can be ready
			// before nextWake, so the scan below would find nothing.
			continue
		}
		ws := s.schedActive[si]
		if len(ws) == 0 {
			continue
		}
		// PickWarp ignores non-ready candidates entirely (first/greedy/
		// round-robin are all computed over the ready subsequence), so
		// feeding it only the ready warps picks the same warp while
		// skipping the per-cycle candidate writes for blocked ones —
		// the common case in memory-bound phases. The active list holds
		// exactly the flags==0 warps in id order, so only the nextFree
		// time gate remains to check.
		cands := s.candScratch[:0]
		picks := s.pickScratch[:0]
		wake := ^uint64(0)
		for _, w := range ws {
			if w.nextFree <= now {
				cands = append(cands, WarpCandidate{ID: w.id, Ready: true})
				picks = append(picks, w)
			} else if w.nextFree < wake {
				wake = w.nextFree
			}
		}
		s.candScratch = cands
		s.pickScratch = picks
		if len(cands) == 0 {
			// Sleep until the earliest unblocked warp's nextFree; blocked
			// warps wake the scheduler through sm.wake when they unblock.
			st.nextWake = wake
			continue
		}
		// Tolerance probe: ready warps on this scheduler.
		st.readySum += uint64(len(cands) - 1)
		idx, ok := PickWarp(s.cfg.Scheduler, st.lastWarp, cands)
		if !ok {
			continue
		}
		pick := picks[idx]
		if pick.id != st.lastWarp {
			st.switches++
			st.lastWarp = pick.id
		}
		if s.issue(pick, now) {
			st.issues++
			issued++
		}
	}
	return issued
}

// issue executes one instruction from the warp; it returns false when the
// warp had no instruction left (it retires instead).
func (s *sm) issue(w *warp, now uint64) bool {
	if !w.hasCur {
		inst, ok := w.prog.Next()
		if !ok {
			s.retire(w)
			return false
		}
		w.cur, w.hasCur = inst, true
	}
	inst := w.cur
	w.hasCur = false
	w.insts++
	s.instructions++

	switch inst.Op {
	case trace.OpALU:
		lat := uint64(inst.Lat)
		if lat == 0 {
			lat = 1
		}
		w.nextFree = now + lat
	case trace.OpLoad:
		if len(inst.Addrs) == 0 {
			w.nextFree = now + 1
			return true
		}
		w.flags |= wBlockedMem
		s.activeRemove(w)
		s.lsu = append(s.lsu, s.newMemReq(w, inst.Addrs, false))
	case trace.OpStore:
		w.nextFree = now + 1
		if len(inst.Addrs) > 0 {
			s.lsu = append(s.lsu, s.newMemReq(w, inst.Addrs, true))
		}
	case trace.OpBarrier:
		s.arriveBarrier(w, now)
	default:
		w.nextFree = now + 1
	}
	return true
}

// arriveBarrier parks the warp at its block's barrier, releasing the
// whole block once every live warp has arrived.
func (s *sm) arriveBarrier(w *warp, now uint64) {
	slot := &s.slots[w.blockSlot]
	w.flags |= wAtBarrier
	s.activeRemove(w)
	slot.atBarrier++
	if slot.atBarrier < slot.remaining {
		return
	}
	// Last arrival: release everyone next cycle.
	slot.atBarrier = 0
	for _, o := range s.warps {
		if o.flags&(wDone|wAtBarrier) == wAtBarrier && o.blockSlot == w.blockSlot {
			o.flags &^= wAtBarrier
			o.nextFree = now + 1
			if o.flags == 0 {
				s.activeInsert(o)
			}
			s.wake(o.sched, now+1)
		}
	}
}

// retire marks a warp finished and frees its block slot when the whole
// block has drained.
func (s *sm) retire(w *warp) {
	if w.flags&wDone != 0 {
		return
	}
	w.flags |= wDone
	s.activeRemove(w)
	s.liveWarps--
	slot := &s.slots[w.blockSlot]
	slot.remaining--
	if slot.remaining == 0 {
		slot.active = false
		s.compactWarps() // free warp slots so waiting blocks can launch
		return
	}
	// A warp can retire while siblings wait at a barrier (divergent exit);
	// if it was the last one missing, release the block.
	if slot.atBarrier > 0 && slot.atBarrier >= slot.remaining {
		slot.atBarrier = 0
		for _, o := range s.warps {
			if o.flags&(wDone|wAtBarrier) == wAtBarrier && o.blockSlot == w.blockSlot {
				o.flags &^= wAtBarrier
				o.nextFree = 0
				if o.flags == 0 {
					s.activeInsert(o)
				}
				s.wake(o.sched, 0)
			}
		}
	}
}

// forceFinish terminates all warps (instruction budget exhausted). Run
// calls it at the barrier, after commit, so pend and deferred are empty.
func (s *sm) forceFinish() {
	// retire may compact the warp lists when a block drains, so restart
	// the scan after each retirement instead of ranging a stale header.
	for s.liveWarps > 0 {
		for _, w := range s.warps {
			if w.flags&wDone == 0 {
				s.retire(w)
				break
			}
		}
	}
	for i := s.lsuHead; i < len(s.lsu); i++ {
		s.releaseReq(s.lsu[i])
		s.lsu[i] = nil
	}
	s.lsu = s.lsu[:0]
	s.lsuHead = 0
}

// probeTolerance folds the Equation 4 terms into the controller at window
// boundaries:
//
//	latency_tolerance = avg_warps_available × avg_execution_cycles_per_schedule
//
// For a GTO scheduler, a stalled warp is covered for roughly (other ready
// warps) × (cycles each runs before switching) cycles. With a round-robin
// scheduler the run length is 1 and the estimate degenerates to the ready
// warp count, matching the paper's Section III-B2 discussion.
func (s *sm) probeTolerance(now uint64) {
	if now < s.windowStart+s.cfg.ToleranceWindow {
		return
	}
	window := float64(now - s.windowStart)
	if window <= 0 {
		window = 1
	}
	var tol float64
	for si := range s.scheds {
		st := &s.scheds[si]
		avgReady := float64(st.readySum) / window
		execPerSched := 1.0
		if st.switches > 0 {
			execPerSched = float64(st.issues) / float64(st.switches)
		}
		t := avgReady * execPerSched
		if t > tol {
			tol = t
		}
		st.readySum, st.issues, st.switches = 0, 0, 0
	}
	if tol > s.cfg.ToleranceCap {
		tol = s.cfg.ToleranceCap
	}
	s.ctrl.RecordTolerance(tol)
	s.lastTolerance = tol
	s.windowStart = now
}
