package oracle

import (
	"bytes"
	"fmt"
	"testing"

	"lattecc/internal/core"
	"lattecc/internal/modes"
	"lattecc/internal/policy"
	"lattecc/internal/sim"
	"lattecc/internal/trace"
	"lattecc/internal/tracefile"
	"lattecc/internal/workload"
)

// Metamorphic properties of the scenario engine: relations that must
// hold between runs on transformed workload specs, without knowing the
// correct output of either run.

// scnConfig is the small machine the scenario metamorphic tests run on.
func scnConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.NumSMs = 2
	cfg.MaxInstructions = 40_000
	return cfg
}

// scnRegions builds two regions with sharply different compressibility
// plus a third for flip targets.
func scnRegions() []workload.Region {
	return []workload.Region{
		{Start: 0, Lines: 1 << 12, Style: workload.StyleDictFloat, Seed: 0x51, Dict: 96},
		{Start: 1 << 16, Lines: 1 << 12, Style: workload.StyleRandom, Seed: 0x52},
		{Start: 1 << 17, Lines: 1 << 11, Style: workload.StyleStrideInt, Seed: 0x53},
	}
}

func latteFactory(n int) modes.Controller { return core.New(core.DefaultConfig(n)) }

func runScn(t *testing.T, spec *workload.Spec, f sim.ControllerFactory) sim.Result {
	t.Helper()
	return sim.New(scnConfig(), spec, f).Run()
}

// neutralHash strips the label-carrying fields (workload name, kernel
// names) from a result and hashes the rest — the invariant part under a
// pure relabeling.
func neutralHash(r sim.Result) uint64 {
	r.Workload = "W"
	ks := make([]sim.KernelResult, len(r.Kernels))
	copy(ks, r.Kernels)
	for i := range ks {
		ks[i].Name = fmt.Sprintf("k%d", i)
	}
	r.Kernels = ks
	return r.StateHash()
}

// TestMetamorphicFlipDegeneracy: the flip mechanism must be exactly the
// identity in its two degenerate configurations — FlipEvery = 0
// (disabled) and FlipEvery >= Iters (the first flip boundary is never
// reached) — and when FlipRegion == Region (flipping to the same
// target). All three must be bit-identical to the un-flipped spec under
// the full adaptive controller.
func TestMetamorphicFlipDegeneracy(t *testing.T) {
	const iters = 900
	mk := func(flipEvery, flipRegion int) *workload.Spec {
		return &workload.Spec{
			WName: "flip-degen", Cat: trace.CSens, Regions: scnRegions(),
			KernelSeq: []workload.KernelSpec{{
				Name: "k", Blocks: 6, WarpsPerBlock: 3,
				Phases: []workload.Phase{{
					Kind: workload.PhaseReuse, Region: 0, Iters: iters,
					ALU: 2, WSLines: 16,
					FlipEvery: flipEvery, FlipRegion: flipRegion,
				}},
			}},
		}
	}
	base := runScn(t, mk(0, 0), latteFactory).StateHash()
	for _, tc := range []struct {
		name                 string
		flipEvery, flipRegion int
	}{
		{"never-reached", iters, 1},
		{"beyond-iters", iters * 4, 1},
		{"same-target", 10, 0},
	} {
		if got := runScn(t, mk(tc.flipEvery, tc.flipRegion), latteFactory).StateHash(); got != base {
			t.Errorf("%s: FlipEvery=%d FlipRegion=%d changed StateHash %#x -> %#x; flip must be identity here",
				tc.name, tc.flipEvery, tc.flipRegion, base, got)
		}
	}
	// Sanity that the probe itself bites: an actual flip to the random
	// region must perturb the run, otherwise the degeneracy checks above
	// are vacuous.
	if got := runScn(t, mk(40, 1), latteFactory).StateHash(); got == base {
		t.Fatal("FlipEvery=40 to the random region left StateHash unchanged — flip mechanism inert?")
	}
}

// TestMetamorphicKernelPrefixInvariance: kernels execute strictly in
// sequence, so appending a kernel must not change anything the machine
// did before the boundary — the recorded access trace of [K1] must be a
// byte prefix of the recorded access trace of [K1, K2].
func TestMetamorphicKernelPrefixInvariance(t *testing.T) {
	regions := scnRegions()
	k1 := workload.KernelSpec{
		Name: "k1", Blocks: 4, WarpsPerBlock: 2,
		Phases: []workload.Phase{{Kind: workload.PhaseReuse, Region: 0, Iters: 300, ALU: 1, WSLines: 12}},
	}
	k2 := workload.KernelSpec{
		Name: "k2", Blocks: 4, WarpsPerBlock: 2,
		Phases: []workload.Phase{{Kind: workload.PhaseStream, Region: 1, Iters: 200}},
	}
	capture := func(kernels []workload.KernelSpec) []byte {
		var buf bytes.Buffer
		tw, err := tracefile.NewWriter(&buf, "PFX")
		if err != nil {
			t.Fatal(err)
		}
		cfg := scnConfig()
		cfg.Trace = tw
		spec := &workload.Spec{WName: "prefix", Cat: trace.CSens, Regions: regions, KernelSeq: kernels}
		sim.New(cfg, spec, latteFactory).Run()
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	short := capture([]workload.KernelSpec{k1})
	full := capture([]workload.KernelSpec{k1, k2})
	if len(full) <= len(short) {
		t.Fatalf("appending k2 did not extend the trace (%d vs %d bytes)", len(full), len(short))
	}
	if !bytes.HasPrefix(full, short) {
		t.Fatalf("trace of [k1] (%d bytes) is not a prefix of trace of [k1,k2] (%d bytes): appending a kernel retroactively changed earlier accesses",
			len(short), len(full))
	}
}

// TestMetamorphicTraceRelabelInvariance: renaming a trace-corpus entry
// is a pure relabeling — two replay workloads packaged from the same
// access stream under different names must behave identically in every
// field except the labels themselves.
func TestMetamorphicTraceRelabelInvariance(t *testing.T) {
	regions := scnRegions()
	spec := &workload.Spec{
		WName: "relabel-src", Cat: trace.CSens, Regions: regions,
		KernelSeq: []workload.KernelSpec{{
			Name: "k", Blocks: 4, WarpsPerBlock: 2,
			Phases: []workload.Phase{
				{Kind: workload.PhaseReuse, Region: 0, Iters: 250, ALU: 1, WSLines: 10},
				{Kind: workload.PhaseStore, Region: 2, Iters: 60},
			},
		}},
	}
	load := func(name string) *tracefile.ReplayWorkload {
		var buf bytes.Buffer
		tw, err := tracefile.NewWriter(&buf, name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := scnConfig()
		cfg.Trace = tw
		sim.New(cfg, spec, latteFactory).Run()
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		meta, err := tracefile.EncodeCorpusMeta(tracefile.CorpusEntry{
			Name: name, Source: spec.WName, Category: spec.Cat,
			Blocks: 4, WarpsPerBlock: 2, ALUGapCap: 8, Regions: regions,
		}, buf.Bytes(), tw.Count())
		if err != nil {
			t.Fatal(err)
		}
		rw, err := tracefile.LoadWorkloadBytes(buf.Bytes(), meta)
		if err != nil {
			t.Fatal(err)
		}
		return rw
	}
	a := sim.New(scnConfig(), load("RWA"), latteFactory).Run()
	b := sim.New(scnConfig(), load("RWB"), latteFactory).Run()
	if a.StateHash() == b.StateHash() {
		t.Fatal("differently named replay workloads hashed identically — names are no longer part of the result?")
	}
	if ha, hb := neutralHash(a), neutralHash(b); ha != hb {
		t.Fatalf("relabeling a trace-corpus entry changed behaviour beyond the labels: neutral hash %#x vs %#x", ha, hb)
	}
}

// TestMetamorphicKernelPermutation: for an engineered pair of kernels
// with disjoint data regions, working sets far below cache capacity, and
// a state-free static policy, execution order must not change aggregate
// machine behaviour — each kernel runs against effectively cold, non-
// conflicting state either way.
func TestMetamorphicKernelPermutation(t *testing.T) {
	regions := scnRegions()
	none := func(int) modes.Controller { return policy.NewStatic(modes.None, "perm-none", 1024, 8) }
	ka := workload.KernelSpec{
		Name: "ka", Blocks: 4, WarpsPerBlock: 2,
		Phases: []workload.Phase{{Kind: workload.PhaseReuse, Region: 0, Iters: 200, ALU: 1, WSLines: 4}},
	}
	kb := workload.KernelSpec{
		Name: "kb", Blocks: 4, WarpsPerBlock: 2,
		Phases: []workload.Phase{{Kind: workload.PhaseReuse, Region: 1, Iters: 200, ALU: 1, WSLines: 4}},
	}
	run := func(kernels []workload.KernelSpec) sim.Result {
		spec := &workload.Spec{WName: "perm", Cat: trace.CSens, Regions: regions, KernelSeq: kernels}
		return sim.New(scnConfig(), spec, none).Run()
	}
	fwd := run([]workload.KernelSpec{ka, kb})
	rev := run([]workload.KernelSpec{kb, ka})

	if fwd.Cycles != rev.Cycles || fwd.Instructions != rev.Instructions {
		t.Errorf("permuting independent kernels changed cycles/instructions: %d/%d vs %d/%d",
			fwd.Cycles, fwd.Instructions, rev.Cycles, rev.Instructions)
	}
	if fwd.Cache != rev.Cache {
		t.Errorf("permuting independent kernels changed cache stats:\n%+v\n%+v", fwd.Cache, rev.Cache)
	}
	if fwd.Mem != rev.Mem {
		t.Errorf("permuting independent kernels changed memory stats:\n%+v\n%+v", fwd.Mem, rev.Mem)
	}
	// Per-kernel intervals must match under the name-keyed pairing.
	byName := func(r sim.Result) map[string]uint64 {
		out := make(map[string]uint64, len(r.Kernels))
		for _, k := range r.Kernels {
			out[k.Name] = k.Cycles
		}
		return out
	}
	fk, rk := byName(fwd), byName(rev)
	for _, name := range []string{"ka", "kb"} {
		if fk[name] != rk[name] {
			t.Errorf("kernel %s: cycles depend on launch order (%d vs %d)", name, fk[name], rk[name])
		}
	}
}
