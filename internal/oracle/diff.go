package oracle

import (
	"bytes"
	"fmt"
	"math/rand"

	"lattecc/internal/cache"
	"lattecc/internal/compress"
	"lattecc/internal/core"
	"lattecc/internal/modes"
	"lattecc/internal/policy"
	"lattecc/internal/sim"
	"lattecc/internal/trace"
	"lattecc/internal/tracefile"
	"lattecc/internal/workload"
)

// script holds pre-generated controller decisions. The optimized cache
// consumes them through a scriptedController (one InsertMode per Fill,
// one RecordAccess per Access); the differential driver feeds the same
// entries to the reference model explicitly. Independent cursors keep the
// two in lockstep without sharing mutable state.
type script struct {
	insertModes []modes.Mode
	directives  []modes.Directive
}

// scriptedController replays a script through the modes.Controller
// interface for the optimized cache.
type scriptedController struct {
	s       *script
	modeIdx int
	dirIdx  int
}

func (c *scriptedController) Name() string { return "oracle-script" }

func (c *scriptedController) InsertMode(set int) modes.Mode {
	m := c.s.insertModes[c.modeIdx]
	c.modeIdx++
	return m
}

func (c *scriptedController) RecordAccess(set int, hit bool, lineMode modes.Mode, extraLat uint64, now uint64) modes.Directive {
	d := c.s.directives[c.dirIdx]
	c.dirIdx++
	return d
}

func (c *scriptedController) RecordMissLatency(lat uint64) {}
func (c *scriptedController) RecordTolerance(tol float64)  {}

// DiffCodecs runs every codec against its bit-at-a-time reference decoder
// on n generated lines, checking that (a) the optimized round trip
// reproduces the input, (b) the reference decoder agrees on the encoded
// bytes, and (c) sizes stay in (0, LineSize]. The SC instance is trained
// progressively and rebuilt periodically so code-book generations beyond
// the first are covered.
func DiffCodecs(seed int64, n int) *Divergence {
	rng := rand.New(rand.NewSource(seed))
	sc := compress.NewSC()
	stateless := []struct {
		codec compress.Codec
		ref   func([]byte) ([]byte, error)
	}{
		{compress.NewBDI(), RefDecodeBDI},
		{compress.NewFPC(), RefDecodeFPC},
		{compress.NewCPACK(), RefDecodeCPACK},
		{compress.NewBPC(), RefDecodeBPC},
	}

	for step := 0; step < n; step++ {
		line := GenLine(rng)
		sc.Train(line)
		if step%37 == 36 {
			sc.Rebuild()
		}

		for _, s := range stateless {
			name := "codec:" + s.codec.Name()
			enc := s.codec.Compress(line)
			if enc.Size <= 0 || enc.Size > compress.LineSize {
				return diverge(name, seed, step, "compressed size %d outside (0, %d]", enc.Size, compress.LineSize)
			}
			dec, err := s.codec.Decompress(enc)
			if err != nil {
				return diverge(name, seed, step, "optimized round trip failed: %v", err)
			}
			if !bytes.Equal(dec, line) {
				return diverge(name, seed, step, "optimized round trip changed bytes at offset %d", firstDiff(dec, line))
			}
			ref, err := s.ref(enc.Data)
			if err != nil {
				return diverge(name, seed, step, "reference decoder rejected encoding: %v", err)
			}
			if !bytes.Equal(ref, line) {
				return diverge(name, seed, step, "reference decode disagrees at offset %d", firstDiff(ref, line))
			}
		}

		name := "codec:" + sc.Name()
		enc := sc.Compress(line)
		if enc.Size <= 0 || enc.Size > compress.LineSize {
			return diverge(name, seed, step, "compressed size %d outside (0, %d]", enc.Size, compress.LineSize)
		}
		if enc.Generation != sc.Generation() {
			return diverge(name, seed, step, "encoding tagged generation %d, codec at %d", enc.Generation, sc.Generation())
		}
		dec, err := sc.Decompress(enc)
		if err != nil {
			return diverge(name, seed, step, "optimized round trip failed: %v", err)
		}
		if !bytes.Equal(dec, line) {
			return diverge(name, seed, step, "optimized round trip changed bytes at offset %d", firstDiff(dec, line))
		}
		if enc.Raw {
			if !bytes.Equal(enc.Data, line) {
				return diverge(name, seed, step, "raw SC encoding is not the verbatim line")
			}
		} else {
			ref, err := RefDecodeSC(enc.Data, sc.CodeBook())
			if err != nil {
				return diverge(name, seed, step, "reference decoder rejected encoding: %v", err)
			}
			if !bytes.Equal(ref, line) {
				return diverge(name, seed, step, "reference decode disagrees at offset %d", firstDiff(ref, line))
			}
		}
	}
	return nil
}

// firstDiff returns the first differing byte offset (or -1).
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

// genDirective draws one controller directive: usually none, sometimes a
// code-book rebuild (with and without the flush), sometimes a sampling
// flush of a random set.
func genDirective(rng *rand.Rand, numSets int) modes.Directive {
	switch rng.Intn(20) {
	case 0:
		return modes.Directive{RebuildHighCap: true, FlushHighCap: true}
	case 1:
		return modes.Directive{RebuildHighCap: true}
	case 2:
		return modes.Directive{FlushMismatch: []modes.SetMode{{
			Set:              rng.Intn(numSets),
			Mode:             modes.Mode(rng.Intn(modes.NumModes)),
			KeepUncompressed: rng.Intn(2) == 0,
		}}}
	default:
		return modes.Directive{}
	}
}

// DiffCache executes the optimized compressed cache and RefCache side by
// side for ops operations over a randomized small geometry, diffing the
// access results, fill modes, statistics, occupancy, and per-set recency
// snapshots at every step.
func DiffCache(seed int64, ops int) *Divergence {
	rng := rand.New(rand.NewSource(seed))

	numSets := []int{2, 4, 8}[rng.Intn(3)]
	ways := []int{2, 4}[rng.Intn(2)]
	cfg := cache.Config{
		SizeBytes:             compress.LineSize * ways * numSets,
		LineSize:              compress.LineSize,
		Ways:                  ways,
		HitLatency:            uint64(10 + rng.Intn(30)),
		ExtraHitLatency:       uint64(rng.Intn(3)),
		CapacityOnly:          rng.Intn(4) == 0,
		LatencyOnly:           rng.Intn(4) == 0,
		UnboundedDecompressor: rng.Intn(4) == 0,
		DecompInitInterval:    uint64(rng.Intn(4)),
		DecompBufferEntries:   rng.Intn(5),
	}
	// Two codec sets with independent SC state, trained in lockstep.
	useSC := rng.Intn(2) == 0
	dropLowLat := rng.Intn(8) == 0 // exercise the nil-codec degrade path
	mkCodecs := func() [modes.NumModes]compress.Codec {
		var cs [modes.NumModes]compress.Codec
		if !dropLowLat {
			cs[modes.LowLat] = compress.NewBDI()
		}
		if useSC {
			cs[modes.HighCap] = compress.NewSC()
		} else {
			cs[modes.HighCap] = compress.NewBPC()
		}
		return cs
	}
	optCfg, refCfg := cfg, cfg
	optCfg.Codecs = mkCodecs()
	refCfg.Codecs = mkCodecs()

	// Pre-generate the whole operation script so both models consume
	// byte-identical decisions.
	type op struct {
		kind int // 0 access, 1 fill, 2 write touch, 3 flush
		addr uint64
		data []byte
		adv  uint64
	}
	poolLines := numSets * ways * 3
	scr := &script{}
	opsList := make([]op, ops)
	for i := range opsList {
		o := op{adv: uint64(rng.Intn(4))}
		o.addr = uint64(rng.Intn(poolLines)) * uint64(cfg.LineSize)
		if rng.Intn(8) == 0 { // occasionally leave the hot pool
			o.addr = uint64(rng.Intn(poolLines*16)) * uint64(cfg.LineSize)
		}
		switch r := rng.Intn(100); {
		case r < 45:
			o.kind = 0
			scr.directives = append(scr.directives, genDirective(rng, numSets))
		case r < 85:
			o.kind = 1
			o.data = GenLine(rng)
			scr.insertModes = append(scr.insertModes, modes.Mode(rng.Intn(modes.NumModes)))
		case r < 97:
			o.kind = 2
		default:
			o.kind = 3
		}
		opsList[i] = o
	}

	opt := cache.New(optCfg, &scriptedController{s: scr})
	ref := NewRefCache(refCfg)

	var now uint64
	fillIdx, dirIdx := 0, 0
	for step, o := range opsList {
		now += o.adv
		switch o.kind {
		case 0:
			or := opt.Access(o.addr, now)
			rr := ref.Access(o.addr, now)
			ref.ApplyDirective(scr.directives[dirIdx])
			dirIdx++
			if or != rr {
				return diverge("cache", seed, step, "access(%#x, now=%d): optimized %+v, reference %+v", o.addr, now, or, rr)
			}
		case 1:
			om := opt.Fill(o.addr, o.data, now)
			rm := ref.Fill(o.addr, o.data, now, scr.insertModes[fillIdx])
			fillIdx++
			if om != rm {
				return diverge("cache", seed, step, "fill(%#x, now=%d): optimized stored %v, reference %v", o.addr, now, om, rm)
			}
		case 2:
			opt.WriteTouch(o.addr, now)
			ref.WriteTouch(o.addr, now)
		case 3:
			opt.Flush()
			ref.Flush()
		}

		if os, rs := opt.Stats(), ref.Stats(); os != rs {
			return diverge("cache", seed, step, "stats diverged after op %d (%s):\noptimized %+v\nreference %+v", step, opName(o.kind), os, rs)
		}
		if ov, rv := opt.ValidLines(), ref.ValidLines(); ov != rv {
			return diverge("cache", seed, step, "valid-line count: optimized %d, reference %d", ov, rv)
		}
		for si := 0; si < numSets; si++ {
			if msg := diffSetViews(opt.SnapshotSet(si), ref.SnapshotSet(si)); msg != "" {
				return diverge("cache", seed, step, "set %d after op %d (%s): %s", si, step, opName(o.kind), msg)
			}
		}
	}
	return nil
}

// opName labels a cache script op for divergence messages.
func opName(kind int) string {
	switch kind {
	case 0:
		return "access"
	case 1:
		return "fill"
	case 2:
		return "write-touch"
	default:
		return "flush"
	}
}

// diffSetViews compares two set snapshots field by field, returning ""
// when identical.
func diffSetViews(a, b cache.SetView) string {
	if a.FreeSub != b.FreeSub || a.TotalSub != b.TotalSub {
		return fmt.Sprintf("occupancy: optimized free %d/%d, reference free %d/%d",
			a.FreeSub, a.TotalSub, b.FreeSub, b.TotalSub)
	}
	if len(a.Lines) != len(b.Lines) {
		return fmt.Sprintf("line count: optimized %d, reference %d", len(a.Lines), len(b.Lines))
	}
	for i := range a.Lines {
		if a.Lines[i] != b.Lines[i] {
			return fmt.Sprintf("recency slot %d: optimized %+v, reference %+v", i, a.Lines[i], b.Lines[i])
		}
	}
	return ""
}

// optSched replays the SM's scheduler accounting (sm.schedule) around the
// optimized PickWarp, with every pick assumed to issue.
type optSched struct {
	kind     sim.SchedulerKind
	lastWarp int
	readySum uint64
	issues   uint64
	switches uint64
}

func (o *optSched) step(cands []sim.WarpCandidate) (int, bool) {
	ready := 0
	for _, c := range cands {
		if c.Ready {
			ready++
		}
	}
	if ready > 0 {
		o.readySum += uint64(ready - 1)
	}
	idx, ok := sim.PickWarp(o.kind, o.lastWarp, cands)
	if !ok {
		return -1, false
	}
	id := cands[idx].ID
	if id != o.lastWarp {
		o.switches++
		o.lastWarp = id
	}
	o.issues++
	return id, true
}

// DiffSchedulers single-steps the optimized warp selection against the
// reference scheduler for both policies over steps cycles of randomized
// ready masks, warp retirement, and warp launch, comparing the issued
// warp and every Equation 4 accumulator each cycle.
func DiffSchedulers(seed int64, steps int) *Divergence {
	for _, kind := range []sim.SchedulerKind{sim.SchedGTO, sim.SchedRR} {
		name := "sched:GTO"
		if kind == sim.SchedRR {
			name = "sched:RR"
		}
		rng := rand.New(rand.NewSource(seed))
		opt := &optSched{kind: kind, lastWarp: -1}
		ref := NewRefScheduler(kind)

		ids := []int{}
		nextID := 0
		for len(ids) < 6 {
			ids = append(ids, nextID)
			nextID++
		}
		cands := make([]sim.WarpCandidate, 0, 16)
		for step := 0; step < steps; step++ {
			// Retire or launch warps occasionally; ids stay sorted because
			// new warps always take the next id (launch order).
			if len(ids) > 1 && rng.Intn(10) == 0 {
				drop := rng.Intn(len(ids))
				ids = append(ids[:drop], ids[drop+1:]...)
			}
			if len(ids) < 12 && rng.Intn(10) == 0 {
				ids = append(ids, nextID)
				nextID++
			}
			cands = cands[:0]
			for _, id := range ids {
				cands = append(cands, sim.WarpCandidate{ID: id, Ready: rng.Intn(3) > 0})
			}

			oid, ook := opt.step(cands)
			rid, rok := ref.Step(cands)
			if ook != rok || oid != rid {
				return diverge(name, seed, step, "pick: optimized (%d, %v), reference (%d, %v) with cands %+v",
					oid, ook, rid, rok, cands)
			}
			if opt.lastWarp != ref.LastWarp || opt.switches != ref.Switches ||
				opt.issues != ref.Issues || opt.readySum != ref.ReadySum {
				return diverge(name, seed, step,
					"accounting: optimized last=%d sw=%d iss=%d rdy=%d, reference last=%d sw=%d iss=%d rdy=%d",
					opt.lastWarp, opt.switches, opt.issues, opt.readySum,
					ref.LastWarp, ref.Switches, ref.Issues, ref.ReadySum)
			}
		}
	}
	return nil
}

// DiffSMJobs runs randomized tiny end-to-end simulations serial
// (SMJobs=1) and parallel (SMJobs ∈ {2, NumSMs}) and requires
// bit-identical StateHashes — the epoch engine's determinism contract
// (DESIGN.md §12) checked from the outside, over random machine shapes,
// controllers, and workloads rather than the fixed golden suite. On a
// single-core runner effectiveSMJobs clamps the pool away and the check
// degenerates to serial-vs-serial; CI provides the real parallelism (and
// the race detector).
func DiffSMJobs(seed int64, runs int) *Divergence {
	styles := []workload.ValueStyle{
		workload.StyleZeroHeavy, workload.StyleSmallInt, workload.StyleStrideInt,
		workload.StylePointer, workload.StyleDictFloat, workload.StyleExpFloat,
		workload.StyleRandom,
	}
	for run := 0; run < runs; run++ {
		rng := rand.New(rand.NewSource(seed + int64(run)*7919))

		cfg := sim.DefaultConfig()
		cfg.NumSMs = 2 + rng.Intn(3)
		cfg.MaxWarpsPerSM = 16 + 8*rng.Intn(3)
		cfg.L1Ports = 1 + rng.Intn(2)
		cfg.MSHRs = []int{2, 8, 32}[rng.Intn(3)]
		cfg.WriteThroughL1 = rng.Intn(2) == 0
		if rng.Intn(2) == 0 {
			cfg.Scheduler = sim.SchedRR
		}
		if rng.Intn(2) == 0 {
			cfg.SampleEvery = 128 // the sampled series must be invariant too
		}
		cfg.MaxInstructions = uint64(20_000 + rng.Intn(30_000))
		cfg.MaxCycles = 5_000_000

		regions := []workload.Region{
			{Start: 0, Lines: uint64(1024 + rng.Intn(3072)), Style: styles[rng.Intn(len(styles))], Seed: rng.Uint64()},
			{Start: 1 << 16, Lines: uint64(2048 + rng.Intn(2048)), Style: styles[rng.Intn(len(styles))], Seed: rng.Uint64()},
		}
		phases := []workload.Phase{
			{Kind: workload.PhaseReuse, Region: 0, Iters: 40 + rng.Intn(40), ALU: rng.Intn(3),
				ALULat: 1 + uint32(rng.Intn(4)), WSLines: 16 + rng.Intn(120),
				Shared: rng.Intn(2) == 0, Divergence: 1 + rng.Intn(4)},
			{Kind: workload.PhaseStream, Region: 1, Iters: 30 + rng.Intn(30), ALU: rng.Intn(2)},
			{Kind: workload.PhaseStore, Region: 1, Iters: 10 + rng.Intn(20)},
		}
		if rng.Intn(2) == 0 {
			phases = append(phases, workload.Phase{Kind: workload.PhaseBarrier, Iters: 1 + rng.Intn(3)})
		}
		spec := &workload.Spec{
			WName:   "smjobs-rand",
			Regions: regions,
			KernelSeq: []workload.KernelSpec{{
				Name:          "k0",
				Blocks:        4 + rng.Intn(8),
				WarpsPerBlock: 2 + rng.Intn(4),
				Phases:        phases,
			}},
		}

		factories := []struct {
			name string
			f    sim.ControllerFactory
		}{
			{"static-none", func(int) modes.Controller { return policy.NewStatic(modes.None, "oracle-none", 1024, 8) }},
			{"static-lowlat", func(int) modes.Controller { return policy.NewStatic(modes.LowLat, "oracle-lowlat", 1024, 8) }},
			{"static-highcap", func(int) modes.Controller { return policy.NewStatic(modes.HighCap, "oracle-highcap", 1024, 8) }},
			{"latte", func(n int) modes.Controller { return core.New(core.DefaultConfig(n)) }},
		}
		pick := factories[rng.Intn(len(factories))]

		runHash := func(jobs int) uint64 {
			c := cfg
			c.SMJobs = jobs
			return sim.New(c, spec, pick.f).Run().StateHash()
		}
		base := runHash(1)
		for _, jobs := range []int{2, cfg.NumSMs} {
			if got := runHash(jobs); got != base {
				return diverge("smjobs", seed, run,
					"StateHash(SMJobs=%d)=%#x != StateHash(SMJobs=1)=%#x (controller %s, %d SMs, sched %v)",
					jobs, got, base, pick.name, cfg.NumSMs, cfg.Scheduler)
			}
		}
	}
	return nil
}

// DiffScenarios runs randomized scenario-diversity workloads — multi-
// kernel sequences, concurrent-kernel mixes (KernelSpec.Mix), and
// adversarial compressibility flips (Phase.FlipEvery) — through the
// end-to-end simulator and checks the determinism contracts the scenario
// engine extends: (a) serial vs SM-parallel StateHash parity over every
// scenario class, (b) bit-identical trace capture across repeated runs,
// and (c) capture→replay round trips where the packaged ReplayWorkload
// is itself deterministic and SMJobs-invariant. Divergences carry the
// seed and run index for replay.
func DiffScenarios(seed int64, runs int) *Divergence {
	styles := []workload.ValueStyle{
		workload.StyleZeroHeavy, workload.StyleSmallInt, workload.StyleStrideInt,
		workload.StylePointer, workload.StyleDictFloat, workload.StyleExpFloat,
		workload.StyleRandom,
	}
	for run := 0; run < runs; run++ {
		rng := rand.New(rand.NewSource(seed + int64(run)*104729))

		cfg := sim.DefaultConfig()
		cfg.NumSMs = 2 + rng.Intn(2)
		cfg.MaxInstructions = uint64(12_000 + rng.Intn(12_000))
		cfg.MaxCycles = 5_000_000

		regions := []workload.Region{
			{Start: 0, Lines: uint64(1024 + rng.Intn(2048)), Style: styles[rng.Intn(len(styles))], Seed: rng.Uint64()},
			{Start: 1 << 16, Lines: uint64(1024 + rng.Intn(2048)), Style: styles[rng.Intn(len(styles))], Seed: rng.Uint64()},
			{Start: 1 << 17, Lines: uint64(512 + rng.Intn(1024)), Style: styles[rng.Intn(len(styles))], Seed: rng.Uint64()},
		}
		// 1-3 kernels; each either a flat phase list (possibly with an
		// adversarial flip) or a 2-program concurrent mix.
		mkPhases := func() []workload.Phase {
			ph := workload.Phase{
				Kind: workload.PhaseReuse, Region: rng.Intn(len(regions)),
				Iters: 60 + rng.Intn(120), ALU: rng.Intn(4), WSLines: 4 + rng.Intn(40),
			}
			if rng.Intn(2) == 0 {
				ph.FlipEvery = 5 + rng.Intn(60)
				ph.FlipRegion = rng.Intn(len(regions))
			}
			out := []workload.Phase{ph}
			if rng.Intn(2) == 0 {
				out = append(out, workload.Phase{
					Kind: workload.PhaseStream, Region: rng.Intn(len(regions)), Iters: 20 + rng.Intn(40),
				})
			}
			return out
		}
		var kernels []workload.KernelSpec
		for ki, nk := 0, 1+rng.Intn(3); ki < nk; ki++ {
			ks := workload.KernelSpec{
				Name:   fmt.Sprintf("scn-k%d", ki),
				Blocks: 3 + rng.Intn(5), WarpsPerBlock: 2 + rng.Intn(3),
			}
			if rng.Intn(3) == 0 {
				ks.Mix = [][]workload.Phase{mkPhases(), mkPhases()}
			} else {
				ks.Phases = mkPhases()
			}
			kernels = append(kernels, ks)
		}
		spec := &workload.Spec{WName: "scenario-rand", Regions: regions, KernelSeq: kernels}

		factories := []struct {
			name string
			f    sim.ControllerFactory
		}{
			{"static-none", func(int) modes.Controller { return policy.NewStatic(modes.None, "oracle-none", 1024, 8) }},
			{"static-lowlat", func(int) modes.Controller { return policy.NewStatic(modes.LowLat, "oracle-lowlat", 1024, 8) }},
			{"static-highcap", func(int) modes.Controller { return policy.NewStatic(modes.HighCap, "oracle-highcap", 1024, 8) }},
			{"latte", func(n int) modes.Controller { return core.New(core.DefaultConfig(n)) }},
			{"latte-kreset", func(n int) modes.Controller {
				kc := core.DefaultConfig(n)
				kc.KernelBoundaryReset = true
				return core.New(kc)
			}},
		}
		pick := factories[rng.Intn(len(factories))]

		runHash := func(jobs int, wl trace.Workload) uint64 {
			c := cfg
			c.SMJobs = jobs
			return sim.New(c, wl, pick.f).Run().StateHash()
		}

		// (a) Serial vs SM-parallel parity over the scenario spec.
		base := runHash(1, spec)
		for _, jobs := range []int{2, cfg.NumSMs} {
			if got := runHash(jobs, spec); got != base {
				return diverge("scenario", seed, run,
					"StateHash(SMJobs=%d)=%#x != StateHash(SMJobs=1)=%#x (controller %s, %d kernels)",
					jobs, got, base, pick.name, len(kernels))
			}
		}

		// (b) Capture determinism: two serial recordings of the same run
		// must be byte-identical.
		captureOnce := func() (*bytes.Buffer, uint64, *Divergence) {
			var buf bytes.Buffer
			tw, err := tracefile.NewWriter(&buf, "SCN")
			if err != nil {
				return nil, 0, diverge("scenario", seed, run, "trace writer: %v", err)
			}
			c := cfg
			c.Trace = tw
			sim.New(c, spec, pick.f).Run()
			if err := tw.Flush(); err != nil {
				return nil, 0, diverge("scenario", seed, run, "trace flush: %v", err)
			}
			return &buf, tw.Count(), nil
		}
		buf1, count, d := captureOnce()
		if d != nil {
			return d
		}
		buf2, _, d := captureOnce()
		if d != nil {
			return d
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			return diverge("scenario", seed, run,
				"repeated capture produced different bytes (%d vs %d, controller %s)",
				buf1.Len(), buf2.Len(), pick.name)
		}

		// (c) Capture→replay round trip: package the recording as a corpus
		// entry; the replay workload must load, be deterministic, and stay
		// SMJobs-invariant.
		meta, err := tracefile.EncodeCorpusMeta(tracefile.CorpusEntry{
			Name: "SCN", Source: spec.WName, Category: spec.Category(),
			Blocks: 2 + rng.Intn(3), WarpsPerBlock: 2,
			ALUGapCap: uint32(rng.Intn(64)), Regions: regions,
		}, buf1.Bytes(), count)
		if err != nil {
			return diverge("scenario", seed, run, "corpus meta: %v", err)
		}
		rw, err := tracefile.LoadWorkloadBytes(buf1.Bytes(), meta)
		if err != nil {
			return diverge("scenario", seed, run, "corpus load: %v", err)
		}
		rbase := runHash(1, rw)
		if again := runHash(1, rw); again != rbase {
			return diverge("scenario", seed, run,
				"replay workload not deterministic: %#x vs %#x (controller %s)", again, rbase, pick.name)
		}
		if got := runHash(2, rw); got != rbase {
			return diverge("scenario", seed, run,
				"replay StateHash(SMJobs=2)=%#x != serial %#x (controller %s)", got, rbase, pick.name)
		}
	}
	return nil
}

// DiffAll runs every differential suite at the given scale (number of
// base iterations; each suite multiplies it to its natural unit). It
// returns the first divergence found, or nil.
func DiffAll(seed int64, scale int) *Divergence {
	if d := DiffCodecs(seed, 8*scale); d != nil {
		return d
	}
	// Several cache geometries: the config is drawn from the seed, so
	// distinct derived seeds cover distinct corners (capacity-only,
	// latency-only, nil low-latency codec, BPC high-capacity...).
	for i := int64(0); i < 4; i++ {
		if d := DiffCache(seed+100*i+1, 16*scale); d != nil {
			return d
		}
	}
	if d := DiffSchedulers(seed+1000, 16*scale); d != nil {
		return d
	}
	if d := DiffSMJobs(seed+2000, scale/8+1); d != nil {
		return d
	}
	if d := DiffScenarios(seed+3000, scale/8+1); d != nil {
		return d
	}
	return nil
}
