package oracle

import (
	"fmt"

	"lattecc/internal/compress"
)

// This file holds the bit-at-a-time reference decoders. Each one is an
// independent re-implementation of its codec's documented stream format:
// it shares no reader, no helper and no table with internal/compress, so
// a bug in the optimized decoder (or encoder) surfaces as a differential
// mismatch instead of cancelling itself out.

// refBits reads a byte stream one bit at a time, most significant bit
// of each byte first — the format every codec's software stream uses.
type refBits struct {
	data []byte
	pos  int // absolute bit position
}

func (b *refBits) read(n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		byteIdx := b.pos >> 3
		if byteIdx >= len(b.data) {
			return 0, fmt.Errorf("ref: stream exhausted at bit %d", b.pos)
		}
		bit := b.data[byteIdx] >> (7 - b.pos&7) & 1
		v = v<<1 | uint64(bit)
		b.pos++
	}
	return v, nil
}

// refSignExtend interprets the low n bits of v as an n-bit two's
// complement value.
func refSignExtend(v uint64, n int) int64 {
	if n < 64 && v&(1<<(n-1)) != 0 {
		v |= ^uint64(0) << n
	}
	return int64(v)
}

// RefDecodeBDI decodes a BDI stream: one encoding-id byte, then the
// payload. Base-delta payloads are base | per-block mask | deltas, all
// little-endian, deltas sign-extended; mask bit i set means block i is
// base-relative, clear means zero-relative (immediate).
func RefDecodeBDI(data []byte) ([]byte, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("ref bdi: empty stream")
	}
	out := make([]byte, compress.LineSize)
	encID := data[0]
	payload := data[1:]
	// encoding ids in header order: zeros, rep8, b8d1, b8d2, b8d4, b4d1, b4d2, b2d1, raw
	var baseSz, deltaSz int
	switch encID {
	case 0: // zeros
		return out, nil
	case 1: // rep8
		if len(payload) < 8 {
			return nil, fmt.Errorf("ref bdi: rep8 needs 8 payload bytes, have %d", len(payload))
		}
		for off := 0; off < compress.LineSize; off++ {
			out[off] = payload[off%8]
		}
		return out, nil
	case 8: // raw
		if len(payload) < compress.LineSize {
			return nil, fmt.Errorf("ref bdi: raw needs %d payload bytes, have %d", compress.LineSize, len(payload))
		}
		copy(out, payload[:compress.LineSize])
		return out, nil
	case 2:
		baseSz, deltaSz = 8, 1
	case 3:
		baseSz, deltaSz = 8, 2
	case 4:
		baseSz, deltaSz = 8, 4
	case 5:
		baseSz, deltaSz = 4, 1
	case 6:
		baseSz, deltaSz = 4, 2
	case 7:
		baseSz, deltaSz = 2, 1
	default:
		return nil, fmt.Errorf("ref bdi: unknown encoding id %d", encID)
	}
	n := compress.LineSize / baseSz
	maskLen := (n + 7) / 8
	if len(payload) < baseSz+maskLen+n*deltaSz {
		return nil, fmt.Errorf("ref bdi: truncated base-delta payload")
	}
	base := refLEInt(payload[:baseSz])
	mask := payload[baseSz : baseSz+maskLen]
	deltas := payload[baseSz+maskLen:]
	for i := 0; i < n; i++ {
		d := refLEInt(deltas[i*deltaSz : (i+1)*deltaSz])
		v := d
		if mask[i/8]>>(i%8)&1 == 1 {
			v = base + d
		}
		for b := 0; b < baseSz; b++ {
			out[i*baseSz+b] = byte(uint64(v) >> (8 * b))
		}
	}
	return out, nil
}

// refLEInt reads a little-endian byte slice as a sign-extended integer.
func refLEInt(b []byte) int64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return refSignExtend(v, len(b)*8)
}

// RefDecodeFPC decodes an FPC stream: per entry a 3-bit prefix selecting
// a pattern, then that pattern's payload bits, until 32 words are
// produced. Zero runs (prefix 0) carry a 3-bit run-minus-1 count.
func RefDecodeFPC(data []byte) ([]byte, error) {
	r := &refBits{data: data}
	out := make([]byte, compress.LineSize)
	w := 0
	for w < compress.WordsPerLine {
		prefix, err := r.read(3)
		if err != nil {
			return nil, fmt.Errorf("ref fpc: %w", err)
		}
		var v uint32
		switch prefix {
		case 0: // zero run
			rn, err := r.read(3)
			if err != nil {
				return nil, fmt.Errorf("ref fpc: %w", err)
			}
			run := int(rn) + 1
			if w+run > compress.WordsPerLine {
				return nil, fmt.Errorf("ref fpc: zero run of %d overflows at word %d", run, w)
			}
			w += run
			continue
		case 1: // 4-bit sign-extended
			p, err := r.read(4)
			if err != nil {
				return nil, fmt.Errorf("ref fpc: %w", err)
			}
			v = uint32(refSignExtend(p, 4))
		case 2: // 8-bit sign-extended
			p, err := r.read(8)
			if err != nil {
				return nil, fmt.Errorf("ref fpc: %w", err)
			}
			v = uint32(refSignExtend(p, 8))
		case 3: // 16-bit sign-extended
			p, err := r.read(16)
			if err != nil {
				return nil, fmt.Errorf("ref fpc: %w", err)
			}
			v = uint32(refSignExtend(p, 16))
		case 4: // halfword zero: upper half significant
			p, err := r.read(16)
			if err != nil {
				return nil, fmt.Errorf("ref fpc: %w", err)
			}
			v = uint32(p) << 16
		case 5: // two sign-extended bytes, one per halfword
			p, err := r.read(16)
			if err != nil {
				return nil, fmt.Errorf("ref fpc: %w", err)
			}
			hi := uint32(refSignExtend(p>>8, 8)) & 0xFFFF
			lo := uint32(refSignExtend(p&0xFF, 8)) & 0xFFFF
			v = hi<<16 | lo
		case 6: // repeated byte
			p, err := r.read(8)
			if err != nil {
				return nil, fmt.Errorf("ref fpc: %w", err)
			}
			v = uint32(p) * 0x01010101
		case 7: // verbatim word
			p, err := r.read(32)
			if err != nil {
				return nil, fmt.Errorf("ref fpc: %w", err)
			}
			v = uint32(p)
		}
		putLE32(out, w, v)
		w++
	}
	return out, nil
}

// RefDecodeCPACK decodes a CPACK stream. A first byte of 0xFF marks the
// all-zero line; anything else is the software marker byte followed by
// per-word codes against a 16-entry FIFO dictionary that this decoder
// rebuilds exactly as the encoder filled it.
func RefDecodeCPACK(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("ref cpack: empty stream")
	}
	out := make([]byte, compress.LineSize)
	if data[0] == 0xFF {
		return out, nil
	}
	r := &refBits{data: data, pos: 8}
	var dict []uint32 // index 0 = most recently pushed
	push := func(v uint32) {
		dict = append([]uint32{v}, dict...)
		if len(dict) > 16 {
			dict = dict[:16]
		}
	}
	lookup := func() (uint32, error) {
		idx, err := r.read(4)
		if err != nil {
			return 0, err
		}
		if int(idx) >= len(dict) {
			return 0, fmt.Errorf("ref cpack: dictionary index %d out of range %d", idx, len(dict))
		}
		return dict[idx], nil
	}
	for w := 0; w < compress.WordsPerLine; w++ {
		c, err := r.read(2)
		if err != nil {
			return nil, fmt.Errorf("ref cpack: %w", err)
		}
		var v uint32
		switch c {
		case 0b00: // zero word
		case 0b01: // verbatim, pushed
			p, err := r.read(32)
			if err != nil {
				return nil, fmt.Errorf("ref cpack: %w", err)
			}
			v = uint32(p)
			push(v)
		case 0b10: // full dictionary match, not pushed
			m, err := lookup()
			if err != nil {
				return nil, err
			}
			v = m
		case 0b11: // extended codes 11xx
			ext, err := r.read(2)
			if err != nil {
				return nil, fmt.Errorf("ref cpack: %w", err)
			}
			switch ext {
			case 0b00: // zzzx: low byte literal
				p, err := r.read(8)
				if err != nil {
					return nil, fmt.Errorf("ref cpack: %w", err)
				}
				v = uint32(p)
				push(v)
			case 0b01: // mmxx: match upper 2 bytes, low 2 literal
				m, err := lookup()
				if err != nil {
					return nil, err
				}
				p, err := r.read(16)
				if err != nil {
					return nil, fmt.Errorf("ref cpack: %w", err)
				}
				v = m&0xFFFF0000 | uint32(p)
				push(v)
			case 0b10: // mmmx: match upper 3 bytes, low 1 literal
				m, err := lookup()
				if err != nil {
					return nil, err
				}
				p, err := r.read(8)
				if err != nil {
					return nil, fmt.Errorf("ref cpack: %w", err)
				}
				v = m&0xFFFFFF00 | uint32(p)
				push(v)
			default:
				return nil, fmt.Errorf("ref cpack: reserved code 1111")
			}
		}
		putLE32(out, w, v)
	}
	return out, nil
}

// RefDecodeBPC decodes a BPC stream: the FPC-like base word, then the
// 33 DBX planes from the most significant downward, each rebuilt into
// its DBP plane by XOR with the previously decoded (higher) DBP plane,
// and finally the inverse delta transform.
func RefDecodeBPC(data []byte) ([]byte, error) {
	const numDeltas = compress.WordsPerLine - 1 // 31
	const numPlanes = 33                        // 33-bit signed deltas
	allOnes := uint64(1)<<numDeltas - 1

	r := &refBits{data: data}
	code, err := r.read(3)
	if err != nil {
		return nil, fmt.Errorf("ref bpc: %w", err)
	}
	var base uint32
	switch code {
	case 0b000:
	case 0b001:
		p, err := r.read(4)
		if err != nil {
			return nil, fmt.Errorf("ref bpc: %w", err)
		}
		base = uint32(refSignExtend(p, 4))
	case 0b010:
		p, err := r.read(8)
		if err != nil {
			return nil, fmt.Errorf("ref bpc: %w", err)
		}
		base = uint32(refSignExtend(p, 8))
	case 0b011:
		p, err := r.read(16)
		if err != nil {
			return nil, fmt.Errorf("ref bpc: %w", err)
		}
		base = uint32(refSignExtend(p, 16))
	case 0b111:
		p, err := r.read(32)
		if err != nil {
			return nil, fmt.Errorf("ref bpc: %w", err)
		}
		base = uint32(p)
	default:
		return nil, fmt.Errorf("ref bpc: bad base code %03b", code)
	}

	var dbp [numPlanes]uint64
	prev := uint64(0) // DBP[numPlanes] defined as 0
	k := numPlanes - 1
	setPlane := func(dbx uint64) {
		dbp[k] = dbx ^ prev
		prev = dbp[k]
		k--
	}
	for k >= 0 {
		b, err := r.read(1)
		if err != nil {
			return nil, fmt.Errorf("ref bpc: %w", err)
		}
		if b == 1 { // 1 + raw plane
			dbx, err := r.read(numDeltas)
			if err != nil {
				return nil, fmt.Errorf("ref bpc: %w", err)
			}
			setPlane(dbx)
			continue
		}
		b, err = r.read(1)
		if err != nil {
			return nil, fmt.Errorf("ref bpc: %w", err)
		}
		if b == 1 { // 01 + 5b: zero run of 2-33 planes
			rn, err := r.read(5)
			if err != nil {
				return nil, fmt.Errorf("ref bpc: %w", err)
			}
			for j := 0; j < int(rn)+2; j++ {
				if k < 0 {
					return nil, fmt.Errorf("ref bpc: zero run overflows planes")
				}
				setPlane(0)
			}
			continue
		}
		b, err = r.read(1)
		if err != nil {
			return nil, fmt.Errorf("ref bpc: %w", err)
		}
		if b == 1 { // 001: single zero plane
			setPlane(0)
			continue
		}
		sub, err := r.read(2)
		if err != nil {
			return nil, fmt.Errorf("ref bpc: %w", err)
		}
		switch sub {
		case 0b00: // 00000: all-ones DBX plane
			setPlane(allOnes)
		case 0b01: // 00001: DBP plane is zero
			dbp[k] = 0
			prev = 0
			k--
		case 0b10: // 00010 + 5b: two consecutive ones
			pos, err := r.read(5)
			if err != nil {
				return nil, fmt.Errorf("ref bpc: %w", err)
			}
			setPlane(0b11 << pos)
		case 0b11: // 00011 + 5b: single one
			pos, err := r.read(5)
			if err != nil {
				return nil, fmt.Errorf("ref bpc: %w", err)
			}
			setPlane(1 << pos)
		}
	}

	// Inverse transforms: planes -> deltas -> words.
	out := make([]byte, compress.LineSize)
	putLE32(out, 0, base)
	cur := base
	for i := 0; i < numDeltas; i++ {
		var ud uint64
		for p := 0; p < numPlanes; p++ {
			ud |= dbp[p] >> i & 1 << p
		}
		d := refSignExtend(ud, numPlanes)
		cur = uint32(int64(cur) + d)
		putLE32(out, i+1, cur)
	}
	return out, nil
}

// RefDecodeSC decodes an SC stream against a published code book
// (compress.SC.CodeBook): bits accumulate one at a time and are matched
// by linear scan over the book's canonical entries; the escape entry
// prefixes a 32-bit literal. Raw-encoded lines never reach this decoder
// (their Data is the verbatim line).
func RefDecodeSC(data []byte, book []compress.CodeEntry) ([]byte, error) {
	if len(book) == 0 {
		return nil, fmt.Errorf("ref sc: empty code book")
	}
	maxLen := uint(0)
	for _, e := range book {
		if e.Len > maxLen {
			maxLen = e.Len
		}
	}
	r := &refBits{data: data}
	out := make([]byte, compress.LineSize)
	for w := 0; w < compress.WordsPerLine; w++ {
		var code uint64
		var n uint
		var hit *compress.CodeEntry
		for hit == nil {
			if n >= maxLen {
				return nil, fmt.Errorf("ref sc: no code matches after %d bits", n)
			}
			b, err := r.read(1)
			if err != nil {
				return nil, fmt.Errorf("ref sc: %w", err)
			}
			code = code<<1 | b
			n++
			for i := range book {
				if book[i].Len == n && book[i].Bits == code {
					hit = &book[i]
					break
				}
			}
		}
		v := hit.Value
		if hit.Escape {
			lit, err := r.read(32)
			if err != nil {
				return nil, fmt.Errorf("ref sc: %w", err)
			}
			v = uint32(lit)
		}
		putLE32(out, w, v)
	}
	return out, nil
}
