// Package oracle is LATTE-CC's differential-conformance layer: small,
// obviously-correct reference implementations of the simulator's
// correctness-critical cores, plus differential runners that execute the
// optimized implementations side by side with the references on
// generated inputs and report the first divergence with a replayable
// seed.
//
// Three references live here:
//
//   - RefCache: a naive compressed-cache model — lines kept in a plain
//     recency-ordered list per set, free space recounted from scratch on
//     every query, LRU found by walking the list (internal/cache keeps
//     counters and incremental accounting instead).
//   - RefDecode*: bit-at-a-time reference decoders for the BDI, FPC,
//     CPACK, BPC and SC payload formats, sharing no code with the
//     optimized codecs in internal/compress.
//   - RefScheduler: a single-stepped reference warp scheduler for GTO
//     and RR that re-derives each pick from the policy's specification
//     rather than internal/sim's single-pass scan.
//
// The references trade every optimization for obviousness: quadratic
// walks, per-query recounts, linear code-book scans. They are test
// infrastructure — never importable from the cycle-level model — but
// they are still subject to the determinism lint rules, because a
// nondeterministic oracle cannot replay the divergence it just found.
//
// Entry points: DiffCodecs, DiffCache, DiffSchedulers, DiffAll. Each
// takes a seed; a non-nil *Divergence pins the component, step and seed
// so `go test -run TestReplaySeed -seed ...`-style reruns reproduce the
// failure exactly.
package oracle

import (
	"fmt"
	"math/rand"

	"lattecc/internal/compress"
)

// Divergence reports the first disagreement between an optimized
// implementation and its reference model.
type Divergence struct {
	// Component names what diverged: "codec:BDI", "cache", "sched:GTO".
	Component string
	// Seed replays the exact input sequence (see ReplayDivergence in the
	// package tests and the README's Verification section).
	Seed int64
	// Step is the zero-based input/operation index at which state first
	// differed.
	Step int
	// Detail describes the mismatch (expected vs got).
	Detail string
}

// Error implements error with replay instructions embedded.
func (d *Divergence) Error() string {
	return fmt.Sprintf("oracle divergence in %s at step %d (replay with seed %d): %s",
		d.Component, d.Step, d.Seed, d.Detail)
}

// diverge builds a Divergence.
func diverge(component string, seed int64, step int, format string, args ...interface{}) *Divergence {
	return &Divergence{
		Component: component,
		Seed:      seed,
		Step:      step,
		Detail:    fmt.Sprintf(format, args...),
	}
}

// GenLine produces one cache line from a seeded generator, drawn from
// value-distribution classes chosen to exercise every codec encoding:
// uniform noise (incompressible), narrow strides (BDI base-delta, BPC
// planes), repeated words (CPACK dictionary, FPC RepBytes), zero-heavy
// lines (zero runs and zero-line detection), float-like bit patterns,
// and a small shared value pool (SC's value locality).
func GenLine(rng *rand.Rand) []byte {
	line := make([]byte, compress.LineSize)
	switch rng.Intn(7) {
	case 0: // uniform random: mostly incompressible
		for i := range line {
			line[i] = byte(rng.Intn(256))
		}
	case 1: // small-stride 32-bit sequence
		base := rng.Uint32()
		stride := uint32(rng.Intn(256)) - 128
		for i := 0; i < compress.WordsPerLine; i++ {
			putLE32(line, i, base+uint32(i)*stride)
		}
	case 2: // one repeated 8-byte value
		var pat [8]byte
		rng.Read(pat[:])
		for off := 0; off < compress.LineSize; off += 8 {
			copy(line[off:], pat[:])
		}
	case 3: // zero-heavy with sparse small values
		for i := 0; i < compress.WordsPerLine; i++ {
			if rng.Intn(4) == 0 {
				putLE32(line, i, uint32(rng.Intn(1<<8)))
			}
		}
	case 4: // float-like: common exponent, noisy mantissa
		exp := uint32(rng.Intn(256)) << 23
		for i := 0; i < compress.WordsPerLine; i++ {
			putLE32(line, i, exp|uint32(rng.Intn(1<<23)))
		}
	case 5: // small value pool: dictionary and Huffman locality
		var pool [4]uint32
		for i := range pool {
			pool[i] = rng.Uint32()
		}
		for i := 0; i < compress.WordsPerLine; i++ {
			putLE32(line, i, pool[rng.Intn(len(pool))])
		}
	case 6: // halfword patterns: FPC HalfZero / TwoSE8
		for i := 0; i < compress.WordsPerLine; i++ {
			if rng.Intn(2) == 0 {
				putLE32(line, i, uint32(rng.Intn(1<<16))<<16)
			} else {
				lo := uint32(int8(rng.Intn(256))) & 0xFFFF
				hi := uint32(int8(rng.Intn(256))) & 0xFFFF
				putLE32(line, i, hi<<16|lo)
			}
		}
	}
	return line
}

// putLE32 writes word i of a line little-endian, independently of the
// compress package's helpers.
func putLE32(line []byte, i int, v uint32) {
	line[i*4+0] = byte(v)
	line[i*4+1] = byte(v >> 8)
	line[i*4+2] = byte(v >> 16)
	line[i*4+3] = byte(v >> 24)
}

// le32 reads word i of a line.
func le32(line []byte, i int) uint32 {
	return uint32(line[i*4]) | uint32(line[i*4+1])<<8 | uint32(line[i*4+2])<<16 | uint32(line[i*4+3])<<24
}
