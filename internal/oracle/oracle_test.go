package oracle

import (
	"math/rand"
	"strings"
	"testing"

	"lattecc/internal/compress"
)

// newTestRand builds the same deterministic generator the runners use.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Short deterministic corpus: fixed seeds, small scales, runs on every
// `go test ./...`. The long randomized corpus lives in conformance_test.go
// behind LATTECC_CONFORMANCE.

func TestDiffCodecsShortCorpus(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		if d := DiffCodecs(seed, 200); d != nil {
			t.Fatal(d)
		}
	}
}

func TestDiffCacheShortCorpus(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		if d := DiffCache(seed, 400); d != nil {
			t.Fatal(d)
		}
	}
}

func TestDiffSchedulersShortCorpus(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		if d := DiffSchedulers(seed, 500); d != nil {
			t.Fatal(d)
		}
	}
}

func TestDiffScenariosShortCorpus(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		if d := DiffScenarios(seed, 2); d != nil {
			t.Fatal(d)
		}
	}
}

func TestDiffAllShortCorpus(t *testing.T) {
	if d := DiffAll(42, 8); d != nil {
		t.Fatal(d)
	}
}

func TestDivergenceErrorCarriesReplaySeed(t *testing.T) {
	d := diverge("codec:BDI", 1234, 17, "expected %d got %d", 1, 2)
	msg := d.Error()
	for _, want := range []string{"codec:BDI", "step 17", "seed 1234", "expected 1 got 2"} {
		if !strings.Contains(msg, want) {
			t.Errorf("divergence message %q missing %q", msg, want)
		}
	}
}

// TestGenLineExercisesCompressibility guards the input generator itself:
// a generator that only emitted incompressible noise would let every
// compressed-path bug through. Over a modest corpus each codec must
// produce at least some genuinely compressed (non-raw) encodings.
func TestGenLineExercisesCompressibility(t *testing.T) {
	rng := newTestRand(7)
	codecs := []compress.Codec{
		compress.NewBDI(), compress.NewFPC(), compress.NewCPACK(), compress.NewBPC(),
	}
	compressed := make([]int, len(codecs))
	for i := 0; i < 300; i++ {
		line := GenLine(rng)
		for ci, c := range codecs {
			if enc := c.Compress(line); !enc.Raw && enc.Size < compress.LineSize {
				compressed[ci]++
			}
		}
	}
	for ci, c := range codecs {
		if compressed[ci] < 50 {
			t.Errorf("%s: only %d/300 generated lines compressed — generator too adversarial", c.Name(), compressed[ci])
		}
	}
}

// TestRefDecodersRejectTamperedPayloads is the in-tree half of the
// acceptance check (the other half — seeding a mutation into the
// optimized implementations and watching the runner flag it — was done by
// temporary patching and cannot stay committed): flipping a payload bit
// must change the reference decode or raise an error, never silently
// reproduce the original line.
func TestRefDecodersRejectTamperedPayloads(t *testing.T) {
	rng := newTestRand(11)
	refs := []struct {
		name string
		c    compress.Codec
		ref  func([]byte) ([]byte, error)
	}{
		{"bdi", compress.NewBDI(), RefDecodeBDI},
		{"fpc", compress.NewFPC(), RefDecodeFPC},
		{"cpack", compress.NewCPACK(), RefDecodeCPACK},
		{"bpc", compress.NewBPC(), RefDecodeBPC},
	}
	for _, r := range refs {
		caught, ignored := 0, 0
		for i := 0; i < 100; i++ {
			line := GenLine(rng)
			enc := r.c.Compress(line)
			tampered := append([]byte(nil), enc.Data...)
			bit := rng.Intn(len(tampered) * 8)
			tampered[bit/8] ^= 1 << (bit % 8)
			dec, err := r.ref(tampered)
			if err != nil || !bytesEqual(dec, line) {
				caught++
			} else {
				// Flips in padding/slack bits of the final byte legally
				// leave the decode unchanged; they must stay a minority.
				ignored++
			}
		}
		if caught < 80 {
			t.Errorf("%s: only %d/100 payload bit flips changed the reference decode (%d ignored)", r.name, caught, ignored)
		}
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
