package oracle

import (
	"testing"

	"lattecc/internal/cache"
	"lattecc/internal/compress"
	"lattecc/internal/harness"
	"lattecc/internal/modes"
	"lattecc/internal/sim"
	"lattecc/internal/workload"
)

// Metamorphic properties: relations that must hold between runs on
// transformed inputs, without knowing the correct output of either run.

// TestMetamorphicZeroPadMonotone: zeroing a suffix of a line's words must
// never increase the compressed size — for the codecs where the format
// guarantees it. FPC absorbs zero words into zero-run tokens (≤ the
// replaced token's width) and CPACK emits 2-bit zero codes (the minimum
// token width), so both are suffix-zeroing monotone. BDI, BPC and SC are
// deliberately excluded: zeroing words can break a line-wide property a
// cheaper encoding depended on (BDI: all-deltas-fit; BPC: a smooth delta
// sequence gets a step discontinuity; SC: zero may be a cold value in
// this period's code book). TestZeroPadMonotoneCounterexample pins that
// exclusion to a live witness.
func TestMetamorphicZeroPadMonotone(t *testing.T) {
	codecs := []compress.Codec{compress.NewFPC(), compress.NewCPACK()}
	for seed := int64(1); seed <= 40; seed++ {
		rng := newTestRand(seed)
		line := GenLine(rng)
		for _, c := range codecs {
			prev := c.Compress(line).Size
			padded := append([]byte(nil), line...)
			for w := compress.WordsPerLine - 1; w >= 0; w-- {
				putLE32(padded, w, 0)
				size := c.Compress(padded).Size
				if size > prev {
					t.Fatalf("seed %d %s: zeroing words [%d:] grew size %d -> %d",
						seed, c.Name(), w, prev, size)
				}
				prev = size
			}
		}
	}
}

// TestZeroPadMonotoneCounterexample documents why BDI is excluded from
// the monotone property: there must exist a line whose size grows when a
// suffix is zeroed (zeros escape the narrow-delta range of the base).
// If BDI ever becomes monotone this test fails, signalling the exclusion
// above should be revisited.
func TestZeroPadMonotoneCounterexample(t *testing.T) {
	bdi := compress.NewBDI()
	for seed := int64(1); seed <= 200; seed++ {
		rng := newTestRand(seed)
		line := GenLine(rng)
		orig := bdi.Compress(line).Size
		padded := append([]byte(nil), line...)
		for w := compress.WordsPerLine - 1; w >= 0; w-- {
			putLE32(padded, w, 0)
			if bdi.Compress(padded).Size > orig {
				return // witness found: BDI is genuinely non-monotone
			}
		}
	}
	t.Fatal("no BDI zero-padding counterexample found — exclusion may be obsolete")
}

// TestMetamorphicTagRelabelInvariance: adding a set-preserving constant
// family to every line address must not change any observable cache
// behaviour — hits, latencies, statistics, occupancy, recency order —
// only the tags themselves, which must relabel exactly.
func TestMetamorphicTagRelabelInvariance(t *testing.T) {
	const ops = 600
	for seed := int64(1); seed <= 6; seed++ {
		rng := newTestRand(seed)

		numSets := 4
		cfg := cache.Config{
			SizeBytes:           compress.LineSize * 4 * numSets,
			LineSize:            compress.LineSize,
			Ways:                4,
			HitLatency:          20,
			DecompBufferEntries: 2,
		}
		mk := func() [modes.NumModes]compress.Codec {
			var cs [modes.NumModes]compress.Codec
			cs[modes.LowLat] = compress.NewBDI()
			cs[modes.HighCap] = compress.NewSC()
			return cs
		}
		cfgA, cfgB := cfg, cfg
		cfgA.Codecs = mk()
		cfgB.Codecs = mk()

		// relabel preserves the set index (offset is a multiple of
		// numSets) and injectivity (strictly increasing in lineAddr).
		relabel := func(lineAddr uint64) uint64 {
			return lineAddr + uint64(numSets)*997*(lineAddr+1)
		}

		scr := &script{}
		type op struct {
			kind     int
			lineAddr uint64
			data     []byte
		}
		opsList := make([]op, ops)
		for i := range opsList {
			o := op{lineAddr: uint64(rng.Intn(numSets * 12))}
			switch r := rng.Intn(100); {
			case r < 45:
				o.kind = 0
				scr.directives = append(scr.directives, genDirective(rng, numSets))
			case r < 90:
				o.kind = 1
				o.data = GenLine(rng)
				scr.insertModes = append(scr.insertModes, modes.Mode(rng.Intn(modes.NumModes)))
			default:
				o.kind = 2
			}
			opsList[i] = o
		}

		// Both caches consume the same script through separate cursors.
		a := cache.New(cfgA, &scriptedController{s: scr})
		b := cache.New(cfgB, &scriptedController{s: scr})

		var now uint64
		for step, o := range opsList {
			now += 2
			addrA := o.lineAddr * uint64(cfg.LineSize)
			addrB := relabel(o.lineAddr) * uint64(cfg.LineSize)
			switch o.kind {
			case 0:
				ra, rb := a.Access(addrA, now), b.Access(addrB, now)
				if ra != rb {
					t.Fatalf("seed %d step %d: access results differ: %+v vs %+v", seed, step, ra, rb)
				}
			case 1:
				ma, mb := a.Fill(addrA, o.data, now), b.Fill(addrB, o.data, now)
				if ma != mb {
					t.Fatalf("seed %d step %d: fill modes differ: %v vs %v", seed, step, ma, mb)
				}
			case 2:
				a.WriteTouch(addrA, now)
				b.WriteTouch(addrB, now)
			}
			if sa, sb := a.Stats(), b.Stats(); sa != sb {
				t.Fatalf("seed %d step %d: stats differ:\n%+v\n%+v", seed, step, sa, sb)
			}
		}
		for si := 0; si < numSets; si++ {
			va, vb := a.SnapshotSet(si), b.SnapshotSet(si)
			// Map the original tags forward; everything else must match.
			for i := range va.Lines {
				va.Lines[i].Tag = relabel(va.Lines[i].Tag)
			}
			if msg := diffSetViews(va, vb); msg != "" {
				t.Fatalf("seed %d set %d: %s", seed, si, msg)
			}
		}
	}
}

// metaSuiteRuns is the small cross-product the harness-level metamorphic
// tests exercise: cheap workloads under compressing policies.
func metaSuiteRuns() []harness.RunRequest {
	names := workload.Names()
	if len(names) > 2 {
		names = names[:2]
	}
	var reqs []harness.RunRequest
	for _, w := range names {
		for _, p := range []harness.Policy{harness.Uncompressed, harness.StaticBDI} {
			reqs = append(reqs, harness.RunRequest{Workload: w, Policy: p})
		}
	}
	return reqs
}

func metaConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.NumSMs = 2
	cfg.MaxInstructions = 30_000
	return cfg
}

// TestMetamorphicJobsInvariance: suite results must be bit-identical
// whether runs execute serially or through a 4-worker pool.
func TestMetamorphicJobsInvariance(t *testing.T) {
	reqs := metaSuiteRuns()
	hashes := make([][]uint64, 2)
	for i, jobs := range []int{1, 4} {
		s := harness.NewSuite(metaConfig())
		s.Jobs = jobs
		s.Prefetch(reqs...)
		if err := s.RunAll(); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for _, r := range reqs {
			res, err := s.Run(r.Workload, r.Policy, r.Variant)
			if err != nil {
				t.Fatalf("jobs=%d %s/%s: %v", jobs, r.Workload, r.Policy, err)
			}
			hashes[i] = append(hashes[i], res.StateHash())
		}
	}
	for k, r := range reqs {
		if hashes[0][k] != hashes[1][k] {
			t.Errorf("%s/%s: state hash differs between -jobs 1 (%#x) and -jobs 4 (%#x)",
				r.Workload, r.Policy, hashes[0][k], hashes[1][k])
		}
	}
}

// TestMetamorphicRunOrderInvariance: executing the same run set in
// reverse order on a fresh suite must produce identical state hashes —
// runs share no hidden state.
func TestMetamorphicRunOrderInvariance(t *testing.T) {
	reqs := metaSuiteRuns()
	run := func(order []harness.RunRequest) map[harness.RunRequest]uint64 {
		s := harness.NewSuite(metaConfig())
		out := make(map[harness.RunRequest]uint64)
		for _, r := range order {
			res, err := s.Run(r.Workload, r.Policy, r.Variant)
			if err != nil {
				t.Fatalf("%s/%s: %v", r.Workload, r.Policy, err)
			}
			out[r] = res.StateHash()
		}
		return out
	}
	fwd := run(reqs)
	rev := make([]harness.RunRequest, len(reqs))
	for i, r := range reqs {
		rev[len(reqs)-1-i] = r
	}
	bwd := run(rev)
	for _, r := range reqs {
		if fwd[r] != bwd[r] {
			t.Errorf("%s/%s: state hash depends on run order (%#x vs %#x)",
				r.Workload, r.Policy, fwd[r], bwd[r])
		}
	}
}
