package oracle

import (
	"fmt"

	"lattecc/internal/cache"
	"lattecc/internal/compress"
	"lattecc/internal/modes"
)

// RefCache is the naive reference model of the compressed L1
// (internal/cache). Per set it keeps the valid lines in one plain slice
// in recency order — index 0 is the least recently used line and the
// next victim — and recounts free space by walking that slice whenever
// it needs it. No LRU counters, no incremental occupancy, no controller
// coupling: insertion modes and directives arrive as explicit arguments
// so the differential driver can feed both models the same decisions.
//
// The model's own SC codec instance must be distinct from the optimized
// cache's: both observe identical training data in identical order, so
// their code books and generations stay in lockstep without sharing
// state.
type RefCache struct {
	cfg      cache.Config
	numSets  int
	tagCap   int // tags per set: Ways × cache.TagFactor
	totalSub int // data sub-blocks per set
	sets     [][]refLine
	stats    cache.Stats
	validCnt int

	decompFree uint64
	decompBuf  []uint64
}

// refLine is one cached line in the reference model.
type refLine struct {
	tag       uint64
	mode      modes.Mode
	subBlocks int
	gen       uint64
}

// NewRefCache builds the reference model for one cache geometry.
func NewRefCache(cfg cache.Config) *RefCache {
	numSets := cfg.SizeBytes / (cfg.LineSize * cfg.Ways)
	if numSets <= 0 || cfg.LineSize%cache.SubBlockSize != 0 {
		panic(fmt.Sprintf("oracle: bad cache geometry %+v", cfg))
	}
	return &RefCache{
		cfg:      cfg,
		numSets:  numSets,
		tagCap:   cfg.Ways * cache.TagFactor,
		totalSub: cfg.Ways * cfg.LineSize / cache.SubBlockSize,
		sets:     make([][]refLine, numSets),
	}
}

// Stats returns a copy of the mirrored counters.
func (c *RefCache) Stats() cache.Stats { return c.stats }

// ValidLines recounts the valid lines from scratch (the optimized cache
// keeps a counter; the reference walks every set every time).
func (c *RefCache) ValidLines() int {
	n := 0
	for si := range c.sets {
		n += len(c.sets[si])
	}
	if n != c.validCnt {
		panic(fmt.Sprintf("oracle: refcache internal count drift: %d vs %d", n, c.validCnt))
	}
	return n
}

// fullSub is an uncompressed line's sub-block footprint.
func (c *RefCache) fullSub() int { return c.cfg.LineSize / cache.SubBlockSize }

// usedSub recounts one set's allocated sub-blocks by list walk.
func (c *RefCache) usedSub(si int) int {
	used := 0
	for _, l := range c.sets[si] {
		used += l.subBlocks
	}
	return used
}

// freeSub is the set's free data space, recounted from scratch.
func (c *RefCache) freeSub(si int) int { return c.totalSub - c.usedSub(si) }

// setOf maps an address to its set and line address.
func (c *RefCache) setOf(addr uint64) (si int, lineAddr uint64) {
	lineAddr = addr / uint64(c.cfg.LineSize)
	return int(lineAddr % uint64(c.numSets)), lineAddr
}

// find returns the index of lineAddr in set si, or -1.
func (c *RefCache) find(si int, lineAddr uint64) int {
	for i, l := range c.sets[si] {
		if l.tag == lineAddr {
			return i
		}
	}
	return -1
}

// remove deletes index i from set si preserving recency order.
func (c *RefCache) remove(si, i int) {
	s := c.sets[si]
	c.sets[si] = append(s[:i], s[i+1:]...)
	c.validCnt--
}

// Access mirrors Cache.Access minus the controller call: the driver
// applies the controller's directive afterwards via ApplyDirective.
func (c *RefCache) Access(addr uint64, now uint64) cache.Result {
	si, lineAddr := c.setOf(addr)
	c.stats.Accesses++

	res := cache.Result{}
	if i := c.find(si, lineAddr); i >= 0 {
		l := c.sets[si][i]
		// Move to most-recently-used position (end of the list).
		c.remove(si, i)
		c.sets[si] = append(c.sets[si], l)
		c.validCnt++
		res.Hit = true
		res.LineMode = l.mode
		if l.mode != modes.None && !c.cfg.CapacityOnly {
			if c.bufHas(lineAddr) {
				c.stats.DecompBufferHits++
			} else {
				res.ExtraLatency = c.decompress(l.mode, now)
				c.stats.CompressedHits++
				c.bufAdd(lineAddr)
			}
		}
	}
	if res.Hit {
		c.stats.Hits++
		c.stats.HitsByMode[res.LineMode]++
		res.Ready = now + c.cfg.HitLatency + c.cfg.ExtraHitLatency + res.ExtraLatency
	} else {
		c.stats.Misses++
	}
	return res
}

// decompress mirrors the shared decompression unit's initiation-interval
// queue (Equation 3).
func (c *RefCache) decompress(m modes.Mode, now uint64) uint64 {
	codec := c.cfg.Codecs[m]
	if codec == nil {
		return 0
	}
	lat := uint64(codec.DecompLatency())
	c.stats.DecompBusy += lat
	if c.cfg.UnboundedDecompressor {
		return lat
	}
	ii := c.cfg.DecompInitInterval
	if ii == 0 {
		ii = 2
	}
	start := now
	if c.decompFree > now {
		start = c.decompFree
	}
	c.decompFree = start + ii
	c.stats.DecompWait += start - now
	return start - now + lat
}

func (c *RefCache) bufHas(lineAddr uint64) bool {
	for _, a := range c.decompBuf {
		if a == lineAddr {
			return true
		}
	}
	return false
}

func (c *RefCache) bufAdd(lineAddr uint64) {
	n := c.cfg.DecompBufferEntries
	if n <= 0 {
		return
	}
	if len(c.decompBuf) >= n {
		c.decompBuf = c.decompBuf[1:]
	}
	c.decompBuf = append(c.decompBuf, lineAddr)
}

func (c *RefCache) bufDrop(lineAddr uint64) {
	for i, a := range c.decompBuf {
		if a == lineAddr {
			c.decompBuf = append(c.decompBuf[:i], c.decompBuf[i+1:]...)
			return
		}
	}
}

// Fill mirrors Cache.Fill with the controller's insertion mode passed
// explicitly. It returns the mode actually stored (incompressible lines
// degrade to uncompressed).
func (c *RefCache) Fill(addr uint64, data []byte, now uint64, mode modes.Mode) modes.Mode {
	si, lineAddr := c.setOf(addr)

	if sc, ok := c.cfg.Codecs[modes.HighCap].(*compress.SC); ok {
		sc.Train(data)
	}

	sub := c.fullSub()
	var gen uint64
	if mode != modes.None {
		codec := c.cfg.Codecs[mode]
		if codec == nil {
			mode = modes.None
		} else {
			enc := codec.Compress(data)
			gen = enc.Generation
			if c.cfg.LatencyOnly {
				sub = c.fullSub()
			} else {
				sub = (enc.Size + cache.SubBlockSize - 1) / cache.SubBlockSize
			}
			c.stats.UncompressedSize += uint64(c.cfg.LineSize)
			c.stats.CompressedSize += uint64(enc.Size)
			if enc.Raw {
				mode = modes.None
			}
		}
	} else {
		c.stats.UncompressedSize += uint64(c.cfg.LineSize)
		c.stats.CompressedSize += uint64(c.cfg.LineSize)
	}

	if i := c.find(si, lineAddr); i >= 0 {
		c.remove(si, i)
	}
	c.bufDrop(lineAddr)

	// Make room: a free tag and enough free sub-blocks, evicting from
	// the front of the recency list (the LRU end).
	for c.freeSub(si) < sub || len(c.sets[si]) >= c.tagCap {
		if len(c.sets[si]) == 0 {
			panic("oracle: refcache cannot make room in an empty set")
		}
		c.remove(si, 0)
		c.stats.Evictions++
	}

	c.sets[si] = append(c.sets[si], refLine{tag: lineAddr, mode: mode, subBlocks: sub, gen: gen})
	c.validCnt++
	c.stats.Fills++
	c.stats.InsertsByMode[mode]++
	c.stats.SubBlocksByMode[mode] += uint64(sub)
	return mode
}

// ApplyDirective mirrors Cache.applyDirective, operating on this model's
// own SC instance.
func (c *RefCache) ApplyDirective(dir modes.Directive) {
	if dir.RebuildHighCap {
		sc, ok := c.cfg.Codecs[modes.HighCap].(*compress.SC)
		if !ok {
			return
		}
		if !sc.Rebuild() {
			return
		}
	}
	if dir.FlushHighCap {
		c.decompBuf = c.decompBuf[:0]
		for si := range c.sets {
			keep := c.sets[si][:0]
			for _, l := range c.sets[si] {
				if l.mode == modes.HighCap {
					c.validCnt--
					c.stats.FlushedLines++
				} else {
					keep = append(keep, l)
				}
			}
			c.sets[si] = keep
		}
	}
	for _, sm := range dir.FlushMismatch {
		if sm.Set < 0 || sm.Set >= c.numSets {
			continue
		}
		keep := c.sets[sm.Set][:0]
		for _, l := range c.sets[sm.Set] {
			drop := l.mode != sm.Mode
			if sm.KeepUncompressed && l.mode == modes.None {
				drop = false
			}
			if drop {
				c.validCnt--
				c.stats.FlushedLines++
			} else {
				keep = append(keep, l)
			}
		}
		c.sets[sm.Set] = keep
	}
}

// WriteTouch mirrors the write-through expansion path: a write hit on a
// compressed line grows it to full size, evicting other LRU lines, or
// drops the line when the set cannot absorb the growth. Recency is
// deliberately not updated (the optimized cache leaves lru untouched).
func (c *RefCache) WriteTouch(addr uint64, now uint64) {
	si, lineAddr := c.setOf(addr)
	i := c.find(si, lineAddr)
	if i < 0 {
		return
	}
	if c.sets[si][i].mode == modes.None {
		return
	}
	grow := c.fullSub() - c.sets[si][i].subBlocks
	for c.freeSub(si) < grow {
		// Evict the least recently used line other than the touched one.
		victim := 0
		if victim == i {
			victim = 1
		}
		if victim >= len(c.sets[si]) {
			// Nothing else to evict: drop the written line itself.
			c.remove(si, i)
			c.stats.Evictions++
			return
		}
		c.remove(si, victim)
		c.stats.Evictions++
		if victim < i {
			i--
		}
	}
	c.sets[si][i].mode = modes.None
	c.sets[si][i].subBlocks = c.fullSub()
	c.stats.WriteExpansions++
}

// Flush mirrors Cache.Flush (kernel boundary): everything goes, nothing
// is counted as an eviction.
func (c *RefCache) Flush() {
	c.decompBuf = c.decompBuf[:0]
	for si := range c.sets {
		c.validCnt -= len(c.sets[si])
		c.sets[si] = nil
	}
}

// SnapshotSet renders one set in the optimized cache's SetView form so
// the differential driver can compare them directly. The reference list
// is already in LRU-first order.
func (c *RefCache) SnapshotSet(si int) cache.SetView {
	v := cache.SetView{FreeSub: c.freeSub(si), TotalSub: c.totalSub}
	for _, l := range c.sets[si] {
		v.Lines = append(v.Lines, cache.LineView{
			Tag: l.tag, Mode: l.mode, SubBlocks: l.subBlocks, Gen: l.gen,
		})
	}
	return v
}

// NumSets returns the set count.
func (c *RefCache) NumSets() int { return c.numSets }
