package oracle

import "lattecc/internal/sim"

// RefPickWarp re-derives one warp-scheduler pick from the policy
// specification, by explicit searches over the candidate ids rather than
// internal/sim's single-pass scan:
//
//   - GTO: issue the last issued warp if it is ready; otherwise issue the
//     oldest ready warp (minimum id — warp ids are assigned in launch
//     order).
//   - RR: issue the ready warp with the smallest id strictly greater than
//     the last issued warp's; if none exists, wrap to the oldest ready
//     warp.
//
// It returns the chosen warp id (not a slice index) so it is meaningful
// regardless of candidate ordering. Candidates must have unique ids; the
// SM presents them in age order, which is where the optimized scan-order
// shortcut gets its correctness — the oracle does not rely on it.
func RefPickWarp(kind sim.SchedulerKind, lastWarp int, cands []sim.WarpCandidate) (int, bool) {
	minReady := -1
	minAfter := -1
	lastReady := false
	for _, c := range cands {
		if !c.Ready {
			continue
		}
		if c.ID == lastWarp {
			lastReady = true
		}
		if minReady < 0 || c.ID < minReady {
			minReady = c.ID
		}
		if c.ID > lastWarp && (minAfter < 0 || c.ID < minAfter) {
			minAfter = c.ID
		}
	}
	if minReady < 0 {
		return -1, false
	}
	if kind == sim.SchedRR {
		if minAfter >= 0 {
			return minAfter, true
		}
		return minReady, true
	}
	if lastReady {
		return lastWarp, true
	}
	return minReady, true
}

// RefScheduler single-steps one warp scheduler, mirroring the per-cycle
// accounting of the SM's schedState (lastWarp, Equation 4 accumulators)
// with every pick re-derived by RefPickWarp.
type RefScheduler struct {
	Kind     sim.SchedulerKind
	LastWarp int

	ReadySum uint64
	Issues   uint64
	Switches uint64
}

// NewRefScheduler starts a scheduler with no issue history.
func NewRefScheduler(kind sim.SchedulerKind) *RefScheduler {
	return &RefScheduler{Kind: kind, LastWarp: -1}
}

// Step consumes one cycle's candidate list and returns the issued warp id
// (ok=false when the scheduler stalls). The differential driver assumes
// every pick issues successfully; issue-port conflicts are SM pipeline
// behaviour, not scheduler policy.
func (r *RefScheduler) Step(cands []sim.WarpCandidate) (int, bool) {
	ready := 0
	for _, c := range cands {
		if c.Ready {
			ready++
		}
	}
	if ready > 0 {
		r.ReadySum += uint64(ready - 1)
	}
	id, ok := RefPickWarp(r.Kind, r.LastWarp, cands)
	if !ok {
		return -1, false
	}
	if id != r.LastWarp {
		r.Switches++
		r.LastWarp = id
	}
	r.Issues++
	return id, true
}
