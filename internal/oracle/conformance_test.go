package oracle

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestConformanceCorpus is the nightly-style long randomized corpus: a
// fresh base seed per invocation (logged for replay), many rounds of the
// full differential suite. Gated behind LATTECC_CONFORMANCE so ordinary
// `go test ./...` runs stay fast and deterministic.
//
// Environment:
//
//	LATTECC_CONFORMANCE=1     enable the corpus
//	LATTECC_ORACLE_SEED=N     replay a specific base seed
//	LATTECC_ORACLE_ROUNDS=N   rounds (default 24)
//	LATTECC_SEED_FILE=path    where to record a divergence seed
//	                          (default divergence_seed.txt)
func TestConformanceCorpus(t *testing.T) {
	if os.Getenv("LATTECC_CONFORMANCE") == "" {
		t.Skip("long randomized corpus disabled; set LATTECC_CONFORMANCE=1")
	}
	seed := time.Now().UnixNano()
	if s := os.Getenv("LATTECC_ORACLE_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad LATTECC_ORACLE_SEED %q: %v", s, err)
		}
		seed = v
	}
	rounds := 24
	if s := os.Getenv("LATTECC_ORACLE_ROUNDS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("bad LATTECC_ORACLE_ROUNDS %q", s)
		}
		rounds = v
	}
	t.Logf("conformance corpus: base seed %d, %d rounds (replay with LATTECC_ORACLE_SEED=%d)",
		seed, rounds, seed)

	for round := 0; round < rounds; round++ {
		roundSeed := seed + int64(round)*9973
		if d := DiffAll(roundSeed, 32); d != nil {
			recordDivergenceSeed(t, d)
			t.Fatalf("round %d: %v", round, d)
		}
	}
}

// recordDivergenceSeed writes the replay seed to the artifact file CI
// uploads on failure.
func recordDivergenceSeed(t *testing.T, d *Divergence) {
	t.Helper()
	path := os.Getenv("LATTECC_SEED_FILE")
	if path == "" {
		path = "divergence_seed.txt"
	}
	body := fmt.Sprintf("component=%s\nseed=%d\nstep=%d\ndetail=%s\nreplay=LATTECC_ORACLE_COMPONENT=%s LATTECC_ORACLE_SEED=%d go test ./internal/oracle/ -run TestReplayDivergence -v\n",
		d.Component, d.Seed, d.Step, d.Detail, d.Component, d.Seed)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Logf("could not record divergence seed to %s: %v", path, err)
	} else {
		t.Logf("divergence seed recorded to %s", path)
	}
}

// TestReplayDivergence re-executes one component's differential runner
// on a recorded seed. The runners derive every choice from the seed and
// generate scripts as prefixes, so a longer replay run revisits the
// original divergence step exactly.
func TestReplayDivergence(t *testing.T) {
	comp := os.Getenv("LATTECC_ORACLE_COMPONENT")
	if comp == "" {
		t.Skip("set LATTECC_ORACLE_COMPONENT and LATTECC_ORACLE_SEED (see divergence_seed.txt)")
	}
	seed, err := strconv.ParseInt(os.Getenv("LATTECC_ORACLE_SEED"), 10, 64)
	if err != nil {
		t.Fatalf("bad LATTECC_ORACLE_SEED %q: %v", os.Getenv("LATTECC_ORACLE_SEED"), err)
	}
	var d *Divergence
	switch {
	case strings.HasPrefix(comp, "codec"):
		d = DiffCodecs(seed, 4096)
	case comp == "cache":
		d = DiffCache(seed, 8192)
	case strings.HasPrefix(comp, "sched"):
		d = DiffSchedulers(seed, 8192)
	case comp == "smjobs":
		d = DiffSMJobs(seed, 16)
	default:
		t.Fatalf("unknown component %q", comp)
	}
	if d == nil {
		t.Fatalf("seed %d no longer diverges for %s", seed, comp)
	}
	t.Fatalf("reproduced: %v", d)
}
