package modes

import "testing"

func TestModeStrings(t *testing.T) {
	cases := map[Mode]string{
		None:    "none",
		LowLat:  "low-latency",
		HighCap: "high-capacity",
		Mode(9): "mode(9)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestValid(t *testing.T) {
	for _, m := range All() {
		if !m.Valid() {
			t.Errorf("%v must be valid", m)
		}
	}
	if Mode(NumModes).Valid() {
		t.Error("NumModes must not be a valid mode")
	}
}

func TestAllOrder(t *testing.T) {
	all := All()
	if all[0] != None || all[1] != LowLat || all[2] != HighCap {
		t.Fatalf("All() order = %v; decision priority depends on it", all)
	}
}
