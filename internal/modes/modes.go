// Package modes defines the compression operating modes and the controller
// interface shared by the compressed cache, the LATTE-CC core, and the
// baseline compression-management policies.
//
// LATTE-CC (HPCA 2018) selects among exactly three operating modes at
// runtime: no compression, a low-latency compression algorithm (BDI in the
// paper), and a high-capacity compression algorithm (SC, or BPC in the
// flexibility study). The rest of the system is agnostic to which concrete
// codec backs each mode, so the mode itself is the unit of decision.
package modes

import "fmt"

// Mode identifies one of the three compression operating modes.
type Mode uint8

const (
	// None stores lines uncompressed (the baseline cache behaviour).
	None Mode = iota
	// LowLat stores lines with the low-latency codec (BDI in the paper).
	LowLat
	// HighCap stores lines with the high-capacity codec (SC in the paper,
	// BPC in the LATTE-CC-BDI-BPC variant).
	HighCap

	// NumModes is the number of operating modes.
	NumModes = 3
)

// String returns the paper's name for the mode.
func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case LowLat:
		return "low-latency"
	case HighCap:
		return "high-capacity"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Valid reports whether m is one of the three defined modes.
func (m Mode) Valid() bool { return m < NumModes }

// All lists the three modes in decision-priority order (the order the
// learning phase dedicates sampling sets to them).
func All() [NumModes]Mode { return [NumModes]Mode{None, LowLat, HighCap} }

// Directive is returned by a Controller after it observes an access. It
// lets the controller request structural actions from the cache without the
// cache depending on the controller's internals.
type Directive struct {
	// FlushHighCap asks the cache to invalidate every line held in the
	// high-capacity mode. LATTE-CC issues this when the SC value-frequency
	// table is rebuilt at a period boundary: lines encoded with the old
	// Huffman code book can no longer be decoded (Section IV-C2).
	// Low-latency (BDI) lines decode without any code book and survive.
	FlushHighCap bool
	// RebuildHighCap asks the high-capacity codec to regenerate its code
	// tables from the value-frequency statistics gathered this period.
	RebuildHighCap bool
	// FlushMismatch asks the cache to invalidate, in each listed set,
	// every line whose mode differs from the set's sampling mode.
	// LATTE-CC issues this when its sampling window opens: each dedicated
	// set then holds only lines of the mode it is labelled with, so the
	// learning phase measures that mode's capacity instead of the
	// incumbent's leftovers. Lines already in the right mode survive,
	// keeping the flush cheap for the incumbent's own sets.
	FlushMismatch []SetMode
}

// SetMode pairs a set index with a mode for FlushMismatch. When
// KeepUncompressed is set, uncompressed lines survive regardless of Mode:
// they carry no decompression penalty, so evicting them would only cost
// misses (the end-of-sampling cleanup uses this form).
type SetMode struct {
	Set              int
	Mode             Mode
	KeepUncompressed bool
}

// Controller decides, per cache set and point in time, which compression
// mode newly inserted lines should use. Implementations include the
// LATTE-CC adaptive controller, the static policies, and the adaptive
// baselines (Adaptive-Hit-Count, Adaptive-CMP).
//
// The compressed cache invokes the controller in three places:
//
//   - InsertMode when a fill must pick a compression mode,
//   - RecordAccess on every L1 access (the unit that advances LATTE-CC's
//     experimental phases),
//   - RecordMissLatency / RecordTolerance as the measurement feeds.
type Controller interface {
	// Name identifies the policy in reports ("LATTE-CC", "Static-BDI", ...).
	Name() string

	// InsertMode returns the compression mode to apply to a line being
	// inserted into the given set. During LATTE-CC's learning phase the
	// dedicated sampling sets each force their own mode; follower sets use
	// the current winning prediction.
	InsertMode(set int) Mode

	// RecordAccess informs the controller of an L1 data cache access.
	// hit reports whether the access hit; lineMode is the mode the hit
	// line was stored with (undefined on misses); extraLat is the
	// decompression penalty (latency + queue wait, Equation 3) the access
	// experienced; set is the accessed set; now is the current SM cycle.
	// The returned directive may request a flush of compressed lines
	// (SC code book rebuild).
	RecordAccess(set int, hit bool, lineMode Mode, extraLat uint64, now uint64) Directive

	// RecordMissLatency reports the observed service latency, in cycles,
	// of a completed L1 miss. LATTE-CC uses the running average as the
	// miss_latency term of AMAT_GPU.
	RecordMissLatency(lat uint64)

	// RecordTolerance reports the current latency-tolerance estimate of
	// the SM pipeline, in cycles (Equation 4 of the paper).
	RecordTolerance(tol float64)
}

// Snapshotter is implemented by controllers that expose their current mode
// decision for instrumentation (Figure 15's agreement analysis).
type Snapshotter interface {
	// CurrentMode returns the mode follower sets are using right now.
	CurrentMode() Mode
}
