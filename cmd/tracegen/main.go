// Command tracegen deterministically (re)generates the committed trace
// corpus under testdata/traces: for each table entry it runs the source
// workload on a small fixed machine with the L1 access hook recording,
// then writes <NAME>.lct plus the <NAME>.json sidecar (geometry, data
// regions, record count, checksum) that tracefile.LoadCorpus validates
// against.
//
// Usage:
//
//	tracegen -dir testdata/traces          # regenerate the corpus files
//	tracegen -dir testdata/traces -check   # verify committed bytes reproduce
//
// -check is the CI gate: capture is deterministic (serial simulation,
// fixed config), so the committed corpus must be byte-identical to a
// fresh regeneration — any drift means either the simulator's access
// stream changed (regenerate and re-golden) or the files were corrupted.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lattecc/internal/harness"
	"lattecc/internal/modes"
	"lattecc/internal/policy"
	"lattecc/internal/sim"
	"lattecc/internal/tracefile"
	"lattecc/internal/workload"
)

// corpusSpec is one corpus entry to capture.
type corpusSpec struct {
	Name          string // corpus workload name (and file stem)
	Source        string // synthetic workload to record
	Blocks        int    // replay geometry
	WarpsPerBlock int
	GapCap        uint32 // replay pacing cap (cycles per inter-record ALU)
}

// corpus is the committed corpus table. Names sort after the synthetic
// suite's abbreviations on purpose (T-prefix), keeping golden diffs
// readable when the corpus is registered.
var corpus = []corpusSpec{
	{Name: "TBO", Source: "BO", Blocks: 8, WarpsPerBlock: 4, GapCap: 16},
	{Name: "TSS", Source: "SS", Blocks: 8, WarpsPerBlock: 4, GapCap: 16},
}

// capture records one corpus entry, returning the trace bytes and the
// sidecar bytes.
func capture(e corpusSpec) (lct, meta []byte, err error) {
	wl, err := workload.ByName(e.Source)
	if err != nil {
		return nil, nil, err
	}
	spec, ok := wl.(*workload.Spec)
	if !ok {
		return nil, nil, fmt.Errorf("source %s is not a synthetic spec", e.Source)
	}
	var buf bytes.Buffer
	tw, err := tracefile.NewWriter(&buf, e.Name)
	if err != nil {
		return nil, nil, err
	}
	// Small fixed machine, serial stepping, uncompressed policy: the
	// capture must be bit-deterministic and policy-neutral (the access
	// stream is the workload's, not a controller artifact).
	cfg := sim.DefaultConfig()
	cfg.NumSMs = 2
	cfg.MaxInstructions = 60_000
	cfg.Trace = tw
	sim.New(cfg, wl, func(int) modes.Controller {
		return policy.NewStatic(modes.None, string(harness.Uncompressed), 256, 10)
	}).Run()
	if err := tw.Flush(); err != nil {
		return nil, nil, err
	}
	meta, err = tracefile.EncodeCorpusMeta(tracefile.CorpusEntry{
		Name: e.Name, Source: e.Source, Category: wl.Category(),
		Blocks: e.Blocks, WarpsPerBlock: e.WarpsPerBlock,
		ALUGapCap: e.GapCap, Regions: spec.Regions,
	}, buf.Bytes(), tw.Count())
	if err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), meta, nil
}

func main() {
	var (
		dir   = flag.String("dir", "testdata/traces", "corpus directory")
		check = flag.Bool("check", false, "verify the committed corpus reproduces byte-for-byte instead of writing")
	)
	flag.Parse()

	fail := false
	for _, e := range corpus {
		lct, meta, err := capture(e)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		lctPath := filepath.Join(*dir, e.Name+".lct")
		metaPath := filepath.Join(*dir, e.Name+".json")
		if *check {
			for _, f := range []struct {
				path string
				want []byte
			}{{lctPath, lct}, {metaPath, meta}} {
				got, err := os.ReadFile(f.path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "tracegen: %v (regenerate without -check)\n", err)
					fail = true
					continue
				}
				if !bytes.Equal(got, f.want) {
					fmt.Fprintf(os.Stderr, "tracegen: %s differs from a fresh capture (%d vs %d bytes) — regenerate and commit\n",
						f.path, len(got), len(f.want))
					fail = true
				}
			}
			// The committed pair must also load through the corpus validator.
			if _, err := tracefile.LoadWorkload(lctPath, metaPath); err != nil {
				fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
				fail = true
			}
			if !fail {
				fmt.Printf("tracegen: %s OK (%d trace bytes)\n", e.Name, len(lct))
			}
			continue
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(lctPath, lct, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(metaPath, meta, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("tracegen: wrote %s (%d trace bytes)\n", lctPath, len(lct))
	}
	if fail {
		os.Exit(1)
	}
}
