// Command lattelint runs LATTE-CC's simulator-aware static analyses
// (package internal/lint) over the module: determinism, panic-audit,
// config-mutation, stats-integrity, lock-contract (with the module-wide
// lock-order companion), goroutine-hygiene, and hotpath-alloc. See
// DESIGN.md § Determinism & verification and § Machine-checked
// concurrency and allocation contracts for what each rule enforces and
// how to suppress a finding with //lint:allow.
//
// Usage:
//
//	lattelint ./...                 # whole module
//	lattelint ./internal/sim        # one package
//	lattelint -rules                # list rules and exit
//
//	lattelint -escape               # escape gate over ./internal/...
//	lattelint -escape -escape-update  # regenerate the baseline
//
// The escape gate compiles the requested packages with
// -gcflags=-m=2, attributes the compiler's heap-escape diagnostics to
// //lint:hotpath functions, and diffs the resulting report against
// internal/lint/testdata/escapes_baseline.txt. -escape-current writes
// the freshly generated report to a file (CI uploads it as an artifact
// on failure).
//
// Exit status is 1 when any finding (or an unjustified //lint:allow, or
// an escape-baseline drift) remains, 0 on a clean tree.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"lattecc/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "list rules and exit")
	escape := flag.Bool("escape", false, "run the -gcflags=-m=2 escape gate instead of the AST rules")
	escapeBaseline := flag.String("escape-baseline", filepath.Join("internal", "lint", "testdata", "escapes_baseline.txt"),
		"baseline report path, relative to the module root")
	escapeUpdate := flag.Bool("escape-update", false, "rewrite the escape baseline instead of diffing against it")
	escapeCurrent := flag.String("escape-current", "", "also write the current escape report to this file")
	flag.Parse()

	if *listRules {
		for _, r := range lint.Rules() {
			fmt.Printf("%-18s %s\n", r.Name, r.Doc)
		}
		return
	}

	patterns := flag.Args()
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lattelint:", err)
		os.Exit(2)
	}

	if *escape {
		os.Exit(runEscapeGate(root, patterns, *escapeBaseline, *escapeUpdate, *escapeCurrent))
	}

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lattelint:", err)
		os.Exit(2)
	}

	findings := lint.Run(pkgs)
	for _, p := range pkgs {
		findings = append(findings, lint.MissingReasons(p)...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lattelint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// runEscapeGate builds the target packages with escape-analysis
// diagnostics enabled, renders the per-//lint:hotpath-function report,
// and compares (or rewrites) the committed baseline. Returns the
// process exit code.
func runEscapeGate(root string, patterns []string, baselinePath string, update bool, currentPath string) int {
	if len(patterns) == 0 {
		// The annotated hot paths live under internal/; cmd/ binaries
		// are cold by definition.
		patterns = []string{"./internal/cache", "./internal/compress"}
	}
	pkgs, err := lint.Load(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lattelint: -escape:", err)
		return 2
	}
	funcs := lint.HotpathFuncs(pkgs, root)
	if len(funcs) == 0 {
		fmt.Fprintln(os.Stderr, "lattelint: -escape: no //lint:hotpath functions in", strings.Join(patterns, " "))
		return 2
	}

	args := append([]string{"build", "-gcflags=-m=2"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lattelint: -escape: go %s failed: %v\n%s", strings.Join(args, " "), err, out)
		return 2
	}
	diags, err := lint.ParseEscapes(strings.NewReader(string(out)))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lattelint: -escape:", err)
		return 2
	}
	report := lint.EscapeReport(funcs, diags)

	if currentPath != "" {
		if err := os.WriteFile(currentPath, []byte(report), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "lattelint: -escape:", err)
			return 2
		}
	}

	baselineFile := filepath.Join(root, baselinePath)
	if update {
		if err := os.WriteFile(baselineFile, []byte(report), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "lattelint: -escape:", err)
			return 2
		}
		fmt.Printf("lattelint: wrote %s (%d hotpath function(s))\n", baselinePath, len(funcs))
		return 0
	}

	baseline, err := os.ReadFile(baselineFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lattelint: -escape: %v (run with -escape-update to create it)\n", err)
		return 2
	}
	if diff := lint.DiffReports(string(baseline), report); diff != "" {
		fmt.Printf("lattelint: escape report drifted from %s:\n%s", baselinePath, diff)
		fmt.Fprintln(os.Stderr, "lattelint: escape gate failed; regenerate with -escape -escape-update if the change is intended")
		return 1
	}
	fmt.Printf("lattelint: escape gate clean (%d hotpath function(s))\n", len(funcs))
	return 0
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
