// Command lattelint runs LATTE-CC's simulator-aware static analyses
// (package internal/lint) over the module: determinism, panic-audit,
// config-mutation, and stats-integrity. See DESIGN.md § Determinism &
// verification for what each rule enforces and how to suppress a
// finding with //lint:allow.
//
// Usage:
//
//	lattelint ./...                 # whole module
//	lattelint ./internal/sim        # one package
//	lattelint -rules                # list rules and exit
//
// Exit status is 1 when any finding (or an unjustified //lint:allow)
// remains, 0 on a clean tree.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lattecc/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "list rules and exit")
	flag.Parse()

	if *listRules {
		for _, r := range lint.Rules() {
			fmt.Printf("%-16s %s\n", r.Name, r.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lattelint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lattelint:", err)
		os.Exit(2)
	}

	findings := lint.Run(pkgs)
	for _, p := range pkgs {
		findings = append(findings, lint.MissingReasons(p)...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lattelint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
