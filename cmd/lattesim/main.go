// Command lattesim runs one benchmark under one compression-management
// policy on the simulated GPU and reports performance, cache, memory, and
// energy statistics.
//
// Usage:
//
//	lattesim -workload SS -policy LATTE-CC
//	lattesim -workload FW -policy Static-BDI -sms 8 -l1 48
//	lattesim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lattecc/internal/energy"
	"lattecc/internal/harness"
	"lattecc/internal/modes"
	"lattecc/internal/sim"
	"lattecc/internal/stats"
	"lattecc/internal/tracefile"
	"lattecc/internal/workload"
)

func main() {
	var (
		list         = flag.Bool("list", false, "list workloads and policies")
		workloadName = flag.String("workload", "SS", "benchmark abbreviation (see -list)")
		specFile     = flag.String("spec", "", "run a JSON workload definition instead of a built-in benchmark")
		policyName   = flag.String("policy", "LATTE-CC", "compression policy (see -list)")
		sms          = flag.Int("sms", 0, "override SM count (default: Table II's 15)")
		l1KB         = flag.Int("l1", 0, "override L1 size in KB (default 16)")
		capOnly      = flag.Bool("capacity-only", false, "zero decompression latency (Figure 3 study)")
		latOnly      = flag.Bool("latency-only", false, "no capacity benefit (Figure 4 study)")
		extraHit     = flag.Uint64("extra-hit-latency", 0, "added L1 hit latency (Figure 1 study)")
		smJobs       = flag.Int("smjobs", 0, "worker goroutines ticking SMs inside each simulation (0/1 = serial; results are bit-identical for any value)")
		jsonOut      = flag.Bool("json", false, "emit the full result as JSON")
		traceDir     = flag.String("trace-dir", "", "trace-corpus directory: register every <NAME>.lct/<NAME>.json pair as a replay workload")
	)
	flag.Parse()

	if *traceDir != "" {
		// Startup-only registration, before any suite exists.
		if _, err := tracefile.RegisterCorpus(*traceDir); err != nil {
			fmt.Fprintf(os.Stderr, "lattesim: %v\n", err)
			os.Exit(2)
		}
	}

	if *list {
		fmt.Println("workloads:", strings.Join(harness.Workloads(), " "))
		fmt.Println("policies: ", strings.Join(policyNames(), " "))
		return
	}

	cfg := sim.DefaultConfig()
	if *sms > 0 {
		cfg.NumSMs = *sms
	}
	if *l1KB > 0 {
		cfg.Cache.SizeBytes = *l1KB * 1024
	}
	if *smJobs < 0 {
		fmt.Fprintln(os.Stderr, "lattesim: -smjobs must be >= 0")
		os.Exit(2)
	}
	cfg.SMJobs = *smJobs

	suite := harness.NewSuite(cfg)
	v := harness.Variant{
		CapacityOnly:    *capOnly,
		LatencyOnly:     *latOnly,
		ExtraHitLatency: *extraHit,
	}

	start := time.Now()
	var res, base sim.Result
	var err error
	if *specFile != "" {
		spec, lerr := workload.LoadSpecFile(*specFile)
		if lerr != nil {
			fmt.Fprintln(os.Stderr, "lattesim:", lerr)
			os.Exit(1)
		}
		runCfg := cfg
		runCfg.Cache.CapacityOnly = v.CapacityOnly
		runCfg.Cache.LatencyOnly = v.LatencyOnly
		runCfg.Cache.ExtraHitLatency = v.ExtraHitLatency
		res, err = harness.RunWorkload(runCfg, spec, harness.Policy(*policyName))
		if err == nil {
			base, err = harness.RunWorkload(cfg, spec, harness.Uncompressed)
		}
	} else {
		res, err = suite.Run(*workloadName, harness.Policy(*policyName), v)
		if err == nil {
			base, err = suite.Run(*workloadName, harness.Uncompressed, harness.Variant{})
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lattesim:", err)
		os.Exit(1)
	}
	wall := time.Since(start)

	params := energy.DefaultParams()
	eRun := energy.Evaluate(res, params)
	eBase := energy.Evaluate(base, params)

	if *jsonOut {
		out := struct {
			sim.Result
			Speedup          float64          `json:"speedup"`
			NormalizedEnergy float64          `json:"normalizedEnergy"`
			Energy           energy.Breakdown `json:"energy"`
			WallTime         string           `json:"wallTime"`
		}{
			Result:           res,
			Speedup:          float64(base.Cycles) / float64(res.Cycles),
			NormalizedEnergy: energy.Normalized(eRun, eBase),
			Energy:           eRun,
			WallTime:         wall.Round(time.Millisecond).String(),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "lattesim:", err)
			os.Exit(1)
		}
		return
	}

	t := stats.NewTable("metric", "value")
	t.AddRow("workload", res.Workload)
	t.AddRow("policy", res.Policy)
	t.AddRow("cycles", res.Cycles)
	t.AddRow("instructions", res.Instructions)
	t.AddRow("IPC", res.IPC())
	t.AddRow("speedup vs baseline", float64(base.Cycles)/float64(res.Cycles))
	t.AddRow("L1 accesses", res.Cache.Accesses)
	t.AddRow("L1 hit rate", res.Cache.HitRate())
	t.AddRow("L1 miss reduction", 1-float64(res.Cache.Misses)/float64(max(base.Cache.Misses, 1)))
	t.AddRow("avg compression ratio", res.Cache.AvgCompressionRatio())
	t.AddRow("compressed hits", res.Cache.CompressedHits)
	t.AddRow("decompression queue wait", res.Cache.DecompWait)
	t.AddRow("L2 accesses", res.Mem.L2Accesses)
	t.AddRow("DRAM reads", res.Mem.DRAMReads)
	t.AddRow("energy vs baseline", energy.Normalized(eRun, eBase))
	for _, m := range modes.All() {
		t.AddRow(fmt.Sprintf("inserts in %v mode", m), res.Cache.InsertsByMode[m])
	}
	if n := res.ModeEPs[0] + res.ModeEPs[1] + res.ModeEPs[2]; n > 0 {
		for _, m := range modes.All() {
			t.AddRow(fmt.Sprintf("adaptive EPs won by %v", m), res.ModeEPs[m])
		}
		t.AddRow("mode switches", res.Switches)
	}
	t.AddRow("simulation wall time", wall.Round(time.Millisecond).String())
	fmt.Print(t.String())
}

func policyNames() []string {
	return []string{
		string(harness.Uncompressed), string(harness.StaticBDI),
		string(harness.StaticSC), string(harness.StaticBPC),
		string(harness.LatteCC), string(harness.LatteBDIBPC),
		string(harness.AdaptiveHits), string(harness.AdaptiveCMP),
		string(harness.KernelOpt),
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
