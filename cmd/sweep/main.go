// Command sweep runs a configuration-parameter sweep over selected
// workloads and a policy, emitting one CSV row per point — the tool
// behind the sensitivity studies (Section V-E style).
//
// Usage:
//
//	sweep -param l1kb -values 8,16,32,48 -workloads SS,FW -policy LATTE-CC
//	sweep -param decomp-ii -values 1,2,4,8,14 -workloads SS -jobs 8
//	sweep -list-params
//
// Every (value, workload) run is enumerated up front and drained
// through one shared worker pool across the per-value suites, then the
// CSV rows print serially from the caches — row order and contents are
// independent of -jobs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"lattecc/internal/harness"
	"lattecc/internal/resultstore"
	"lattecc/internal/sim"
	"lattecc/internal/tracefile"
)

// params maps sweepable parameter names to config mutators.
var params = map[string]struct {
	desc  string
	apply func(cfg *sim.Config, v int)
}{
	"sms": {"number of SMs",
		func(c *sim.Config, v int) { c.NumSMs = v }},
	"l1kb": {"L1 data cache size in KB",
		func(c *sim.Config, v int) { c.Cache.SizeBytes = v * 1024 }},
	"l1ports": {"LSU transactions per cycle",
		func(c *sim.Config, v int) { c.L1Ports = v }},
	"mshrs": {"outstanding misses per SM",
		func(c *sim.Config, v int) { c.MSHRs = v }},
	"decomp-ii": {"decompressor initiation interval (cycles)",
		func(c *sim.Config, v int) { c.Cache.DecompInitInterval = uint64(v) }},
	"extra-hit-latency": {"added L1 hit latency (cycles)",
		func(c *sim.Config, v int) { c.Cache.ExtraHitLatency = uint64(v) }},
	"warps": {"max warps per SM",
		func(c *sim.Config, v int) { c.MaxWarpsPerSM = v }},
	"l2kb": {"L2 size in KB",
		func(c *sim.Config, v int) { c.Mem.L2SizeBytes = v * 1024 }},
}

func main() {
	var (
		listParams = flag.Bool("list-params", false, "list sweepable parameters")
		param      = flag.String("param", "", "parameter to sweep (see -list-params)")
		values     = flag.String("values", "", "comma-separated integer values")
		workloads  = flag.String("workloads", "SS,FW", "comma-separated benchmark names")
		policyName = flag.String("policy", "LATTE-CC", "policy to measure (speedup vs Uncompressed)")
		jobs       = flag.Int("jobs", runtime.GOMAXPROCS(0), "max concurrent simulations (must be >= 1)")
		smJobs     = flag.Int("smjobs", 0, "worker goroutines ticking SMs inside each simulation (0/1 = serial; results are bit-identical for any value)")
		store      = flag.String("store", "", "persistent result-store directory shared by every sweep point (empty = off)")
		traceDir   = flag.String("trace-dir", "", "trace-corpus directory: register every <NAME>.lct/<NAME>.json pair as a replay workload")
	)
	flag.Parse()
	if *traceDir != "" {
		// Startup-only registration, before any suite exists.
		if _, err := tracefile.RegisterCorpus(*traceDir); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(2)
		}
	}
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "sweep: -jobs must be >= 1, got %d\n", *jobs)
		os.Exit(2)
	}
	if *smJobs < 0 {
		fmt.Fprintf(os.Stderr, "sweep: -smjobs must be >= 0, got %d\n", *smJobs)
		os.Exit(2)
	}

	if *listParams {
		names := make([]string, 0, len(params))
		for n := range params {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%-18s %s\n", n, params[n].desc)
		}
		return
	}

	p, ok := params[*param]
	if !ok {
		fmt.Fprintf(os.Stderr, "sweep: unknown parameter %q (use -list-params)\n", *param)
		os.Exit(2)
	}
	var vals []int
	for _, f := range strings.Split(*values, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: bad value %q: %v\n", f, err)
			os.Exit(2)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		fmt.Fprintln(os.Stderr, "sweep: no values given")
		os.Exit(2)
	}
	var names []string
	for _, n := range strings.Split(*workloads, ",") {
		names = append(names, strings.TrimSpace(n))
	}

	// All sweep points share one store: each suite's config fingerprint
	// keys its entries, so points never collide and a repeated sweep (or
	// one overlapping an earlier sweep's points) loads instead of
	// re-simulating.
	var st *resultstore.Store
	if *store != "" {
		var err error
		st, err = resultstore.Open(*store, resultstore.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: opening result store: %v\n", err)
			os.Exit(2)
		}
	}

	// One suite per sweep point; prefetch every (value, workload) pair,
	// then drain them all through a single shared pool.
	suites := make([]*harness.Suite, len(vals))
	for i, v := range vals {
		cfg := sim.DefaultConfig()
		cfg.SMJobs = *smJobs
		p.apply(&cfg, v)
		suites[i] = harness.NewSuite(cfg)
		if st != nil {
			suites[i].Store = st
		}
		suites[i].Prefetch(append(
			reqsFor(names, harness.Uncompressed),
			reqsFor(names, harness.Policy(*policyName))...)...)
	}
	if err := harness.RunAllSuites(*jobs, suites...); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	fmt.Printf("param,value,workload,policy,cycles,ipc,hitrate,speedup\n")
	for i, v := range vals {
		suite := suites[i]
		for _, name := range names {
			base, err := suite.Run(name, harness.Uncompressed, harness.Variant{})
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
			res, err := suite.Run(name, harness.Policy(*policyName), harness.Variant{})
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
			fmt.Printf("%s,%d,%s,%s,%d,%.4f,%.4f,%.4f\n",
				*param, v, name, *policyName,
				res.Cycles, res.IPC(), res.Cache.HitRate(),
				float64(base.Cycles)/float64(res.Cycles))
		}
	}
}

// reqsFor enumerates names under one policy with the plain variant.
func reqsFor(names []string, p harness.Policy) []harness.RunRequest {
	reqs := make([]harness.RunRequest, len(names))
	for i, n := range names {
		reqs[i] = harness.RunRequest{Workload: n, Policy: p}
	}
	return reqs
}
