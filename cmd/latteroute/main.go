// Command latteroute fronts a fleet of latteccd workers with a
// stateless routing layer: jobs are placed by consistent-hashing the
// machine-config fingerprint (so each worker's resident Suite cache
// stays hot), workers register themselves and are health-checked out of
// the ring when they die, and jobs lost to a worker death are retried
// on another node — safe because every worker returns bit-identical
// StateHashes for the same (workload, policy, variant, config).
//
// Usage:
//
//	latteroute                             # route on :8500, fingerprint affinity
//	latteroute -policy least-loaded        # spread a homogeneous stream
//	latteccd -tiny -addr :8501 -join http://127.0.0.1:8500   # a worker joins
//
// API (client-compatible with a single latteccd worker):
//
//	POST   /v1/runs              submit a run or batch; 202 with a cluster job ID
//	GET    /v1/runs/{id}         job status and results
//	GET    /v1/runs/{id}/events  SSE progress, proxied from the owning worker
//	POST   /v1/workers           worker registration (latteccd -join does this)
//	DELETE /v1/workers?url=...   graceful worker departure
//	GET    /v1/workers           fleet membership and load
//	GET    /metrics              router counters + aggregated worker scrapes
//	GET    /healthz, /readyz     probes (readyz answers 503 while draining)
//
// SIGINT/SIGTERM drains: new submissions get 503, in-flight jobs run to
// completion (retrying onto surviving workers if theirs die), then the
// process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lattecc/internal/cluster"
	"lattecc/internal/sim"
)

func main() {
	var (
		addr     = flag.String("addr", ":8500", "listen address")
		policy   = flag.String("policy", "fingerprint", "routing policy: fingerprint | least-loaded | round-robin")
		inflight = flag.Int("max-inflight", 256, "cluster-wide cap on non-terminal jobs (overflow answers 429)")
		retries  = flag.Int("retries", 3, "times one job may be re-placed after losing its worker")
		health   = flag.Duration("health-interval", time.Second, "worker health-probe cadence")
		dead     = flag.Int("dead-after", 3, "consecutive failed probes before a worker is evicted")
		poll     = flag.Duration("poll", 150*time.Millisecond, "per-job status watch cadence")
		drain    = flag.Duration("drain", 2*time.Minute, "shutdown drain budget for in-flight jobs")
		quick    = flag.Bool("quick", false, "fingerprint against the smaller 2-SM machine (match the workers' -quick)")
		tiny     = flag.Bool("tiny", false, "fingerprint against the CI golden-gate machine (match the workers' -tiny)")
	)
	flag.Parse()

	cfg := sim.DefaultConfig()
	if *quick || *tiny {
		cfg.NumSMs = 2
	}
	if *tiny {
		cfg.MaxInstructions = 120_000
	}

	rt, err := cluster.New(cluster.Config{
		BaseConfig:     cfg,
		Policy:         *policy,
		MaxInFlight:    *inflight,
		RetryLimit:     *retries,
		HealthInterval: *health,
		DeadAfter:      *dead,
		PollInterval:   *poll,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "latteroute: %v\n", err)
		os.Exit(2)
	}
	hs := &http.Server{Addr: *addr, Handler: rt.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "latteroute: routing on %s (policy=%s max-inflight=%d)\n", *addr, *policy, *inflight)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "latteroute: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "latteroute: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drainErr := rt.Shutdown(drainCtx)
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "latteroute: http shutdown: %v\n", err)
	}
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "latteroute: %v\n", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "latteroute: drained, bye")
}
