// Command cachesim records L1 access traces from full simulations and
// replays them through the compressed cache alone — fast trace-driven
// cache-policy studies.
//
// Usage:
//
//	cachesim -record ss.trace -workload SS            # one full simulation
//	cachesim -replay ss.trace -policy Static-BDI      # milliseconds
//	cachesim -replay ss.trace -compare                # all static policies
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lattecc/internal/core"
	"lattecc/internal/harness"
	"lattecc/internal/modes"
	"lattecc/internal/policy"
	"lattecc/internal/sim"
	"lattecc/internal/stats"
	"lattecc/internal/tracefile"
	"lattecc/internal/workload"
)

func main() {
	var (
		record       = flag.String("record", "", "record a trace to this file (needs -workload)")
		replay       = flag.String("replay", "", "replay a trace from this file")
		workloadName = flag.String("workload", "SS", "benchmark to record")
		policyName   = flag.String("policy", "LATTE-CC", "policy to replay under")
		compare      = flag.Bool("compare", false, "replay under every policy and tabulate")
	)
	flag.Parse()

	switch {
	case *record != "":
		if err := doRecord(*record, *workloadName); err != nil {
			fmt.Fprintln(os.Stderr, "cachesim:", err)
			os.Exit(1)
		}
	case *replay != "":
		if err := doReplay(*replay, *policyName, *compare); err != nil {
			fmt.Fprintln(os.Stderr, "cachesim:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doRecord(path, workloadName string) error {
	wl, err := workload.ByName(workloadName)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tw, err := tracefile.NewWriter(f, workloadName)
	if err != nil {
		return err
	}
	cfg := sim.DefaultConfig()
	cfg.Trace = tw
	start := time.Now()
	res := sim.New(cfg, wl, func(int) modes.Controller {
		return policy.NewStatic(modes.None, string(harness.Uncompressed), 256, 10)
	}).Run()
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d accesses from %s (%d cycles) to %s in %v\n",
		tw.Count(), workloadName, res.Cycles, path, time.Since(start).Round(time.Millisecond))
	return nil
}

// replayFactory builds controllers for the trace-replay policies.
func replayFactory(p harness.Policy) (func(int) modes.Controller, error) {
	switch p {
	case harness.Uncompressed:
		return func(int) modes.Controller {
			return policy.NewStatic(modes.None, string(p), 256, 10)
		}, nil
	case harness.StaticBDI:
		return func(int) modes.Controller {
			return policy.NewStatic(modes.LowLat, string(p), 256, 10)
		}, nil
	case harness.StaticSC:
		return func(int) modes.Controller {
			return policy.NewStatic(modes.HighCap, string(p), 256, 10)
		}, nil
	case harness.LatteCC:
		return func(n int) modes.Controller { return core.New(core.DefaultConfig(n)) }, nil
	default:
		return nil, fmt.Errorf("policy %q not supported for replay (use Uncompressed, Static-BDI, Static-SC, or LATTE-CC)", p)
	}
}

func doReplay(path, policyName string, compare bool) error {
	pols := []harness.Policy{harness.Policy(policyName)}
	if compare {
		pols = []harness.Policy{harness.Uncompressed, harness.StaticBDI, harness.StaticSC, harness.LatteCC}
	}
	t := stats.NewTable("policy", "accesses", "hit-rate", "comp-ratio", "evictions", "replay-time")
	for _, p := range pols {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		r, err := tracefile.NewReader(f)
		if err != nil {
			f.Close()
			return err
		}
		wl, err := workload.ByName(r.Workload())
		if err != nil {
			f.Close()
			return fmt.Errorf("trace was recorded from unknown workload: %w", err)
		}
		factory, err := replayFactory(p)
		if err != nil {
			f.Close()
			return err
		}
		start := time.Now()
		rep, err := tracefile.Replay(r, sim.DefaultConfig().Cache, factory, wl.Data(), string(p))
		f.Close()
		if err != nil {
			return err
		}
		t.AddRow(string(p), rep.Cache.Accesses, rep.Cache.HitRate(),
			rep.Cache.AvgCompressionRatio(), rep.Cache.Evictions,
			time.Since(start).Round(time.Millisecond).String())
	}
	fmt.Print(t.String())
	return nil
}
